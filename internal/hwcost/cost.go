// Hardware cost accounting. The paper's argument is economic — concurrent
// test patterns earn their keep because they are cheap relative to taking a
// device offline for functional test — so the simulator carries an explicit
// spend meter next to its fidelity models. Every tile-level operation
// (crossbar activation, DAC/ADC conversion, cell write, readout scan)
// charges an integer-denominated Cost into a Counter, attributed to one of
// three classes: Serving (revenue inference), Monitor (concurrent-test
// readouts) and Repair (scrubs, remaps, reprogramming, retraining).
//
// Design constraints, in order:
//
//   - Numerically invisible: counters are integers and never touch the
//     float64 data path, so enabling accounting cannot move a single output
//     bit. The golden bit-identity suites run with counters attached.
//   - Allocation-free and lock-free on the hot path: a charge is a handful
//     of atomic adds on pre-existing fields. Snapshots are atomic loads
//     concurrent with charging — no locks, no stop-the-world.
//   - Deterministic folds: costs are unsigned integers, so summing shard
//     counters is associative and commutative — a pooled Meter folds to
//     exactly the serial total regardless of worker interleaving (the same
//     identity the training engine's gradient folds rely on, made trivial
//     by leaving IEEE arithmetic out of it).
//
// Units are documented per field; energy uses fixed femtojoule-per-event
// coefficients in the range published for ISAAC-class designs, so EnergyFJ
// is a modeled (relative) figure, not a measured one. See DESIGN.md §14.
//
// This package is a dependency leaf (it imports only nn, tensor and the
// runtime):
// the simulated accelerator (internal/reram), the inference engine and the
// training engine all charge into it without importing each other. The reram
// package re-exports every name here under type aliases, so device-facing
// code keeps writing reram.Cost / reram.Counter.
package hwcost

import (
	"sync/atomic"

	"reramtest/internal/nn"
	"reramtest/internal/tensor"
)

// Modeled per-event energy coefficients in femtojoules. Fixed integers keep
// the accounting exact; absolute values are order-of-magnitude picks from the
// ISAAC/PRIME literature (cell read ~1 fJ, cell write ~8 fJ, 8-bit DAC ~4 fJ,
// 8-bit ADC ~16 fJ) — the gates only ever compare like against like.
const (
	EnergyCellReadFJ  = 1
	EnergyCellWriteFJ = 8
	EnergyDACFJ       = 4
	EnergyADCFJ       = 16
)

// Per-precision conversion energy. The sticker coefficients above price a
// conversion fed from a full-width float64 word — converter plus the digital
// staging that shuttles 8-byte operands to and from it. A plan compiled on
// the int8 tier hands the converters ready-made 8-bit codes: no mantissa
// rounding network, a quarter of the staging toggles, so its conversions are
// modeled at a quarter of the sticker energy. The float32 tier keeps the
// sticker conversion energy (the converter itself still quantizes an analog
// word; narrowing the float changes nothing at the DAC input latch) but
// halves the digital buffer traffic — see ElemBytes.
const (
	EnergyDACI8FJ = 1
	EnergyADCI8FJ = 4
)

// ConvEnergy returns the modeled per-conversion DAC and ADC energy for a
// plan precision.
func ConvEnergy(p tensor.Precision) (dacFJ, adcFJ uint64) {
	if p == tensor.I8 {
		return EnergyDACI8FJ, EnergyADCI8FJ
	}
	return EnergyDACFJ, EnergyADCFJ
}

// ElemBytes returns the digital buffer width of one element on a plan
// precision: 8 bytes for float64, 4 for float32, 1 for int8 codes.
func ElemBytes(p tensor.Precision) uint64 {
	switch p {
	case tensor.F32:
		return 4
	case tensor.I8:
		return 1
	default:
		return 8
	}
}

// Cost is one integer-denominated hardware spend total. The zero value is
// free. Costs add field-wise; no field ever carries IEEE arithmetic, so sums
// are exact and order-independent.
type Cost struct {
	// ComputeCycles counts crossbar activation cycles (one per tile pair per
	// row-tile pass — the differential arrays fire together).
	ComputeCycles uint64 `json:"computeCycles"`
	// DACConversions counts word-line input conversions.
	DACConversions uint64 `json:"dacConversions"`
	// ADCConversions counts bitline output conversions.
	ADCConversions uint64 `json:"adcConversions"`
	// CrossbarReads counts cell read activations (cells on driven word-lines).
	CrossbarReads uint64 `json:"crossbarReads"`
	// CrossbarWrites counts cell write pulses.
	CrossbarWrites uint64 `json:"crossbarWrites"`
	// EnergyFJ is the modeled energy in femtojoules (see the coefficients).
	EnergyFJ uint64 `json:"energyFJ"`
	// BufferBytes counts digital buffer traffic in bytes (inputs staged to
	// the DACs plus partial sums drained from the ADCs, 8 bytes per float).
	BufferBytes uint64 `json:"bufferBytes"`
}

// Add accumulates o into c field-wise.
func (c *Cost) Add(o Cost) {
	c.ComputeCycles += o.ComputeCycles
	c.DACConversions += o.DACConversions
	c.ADCConversions += o.ADCConversions
	c.CrossbarReads += o.CrossbarReads
	c.CrossbarWrites += o.CrossbarWrites
	c.EnergyFJ += o.EnergyFJ
	c.BufferBytes += o.BufferBytes
}

// Plus returns c + o.
func (c Cost) Plus(o Cost) Cost {
	c.Add(o)
	return c
}

// Minus returns c − o field-wise. It is the delta of two snapshots of one
// monotone counter; the caller guarantees o ≤ c field-wise.
func (c Cost) Minus(o Cost) Cost {
	c.ComputeCycles -= o.ComputeCycles
	c.DACConversions -= o.DACConversions
	c.ADCConversions -= o.ADCConversions
	c.CrossbarReads -= o.CrossbarReads
	c.CrossbarWrites -= o.CrossbarWrites
	c.EnergyFJ -= o.EnergyFJ
	c.BufferBytes -= o.BufferBytes
	return c
}

// Scale returns c with every field multiplied by n (n samples of a modeled
// per-sample cost).
func (c Cost) Scale(n uint64) Cost {
	c.ComputeCycles *= n
	c.DACConversions *= n
	c.ADCConversions *= n
	c.CrossbarReads *= n
	c.CrossbarWrites *= n
	c.EnergyFJ *= n
	c.BufferBytes *= n
	return c
}

// IsZero reports whether every field is zero.
func (c Cost) IsZero() bool { return c == Cost{} }

// Class attributes a charge to the activity that caused it.
type Class int

// Attribution classes. ClassServing is the default: a counter charges to it
// unless the layer that knows better (the health runtime around a test
// readout, the supervisor around a repair) switches the class for the
// duration of the operation.
const (
	ClassServing Class = iota
	ClassMonitor
	ClassRepair
	numClasses
)

// String names the class for telemetry.
func (c Class) String() string {
	switch c {
	case ClassServing:
		return "serving"
	case ClassMonitor:
		return "monitor"
	case ClassRepair:
		return "repair"
	default:
		return "unknown"
	}
}

// CostBreakdown is a per-class snapshot of cumulative spend.
type CostBreakdown struct {
	Serving Cost `json:"serving"`
	Monitor Cost `json:"monitor"`
	Repair  Cost `json:"repair"`
}

// Total returns the class-summed spend.
func (b CostBreakdown) Total() Cost {
	return b.Serving.Plus(b.Monitor).Plus(b.Repair)
}

// Add accumulates o into b class-wise.
func (b *CostBreakdown) Add(o CostBreakdown) {
	b.Serving.Add(o.Serving)
	b.Monitor.Add(o.Monitor)
	b.Repair.Add(o.Repair)
}

// Plus returns b + o.
func (b CostBreakdown) Plus(o CostBreakdown) CostBreakdown {
	b.Add(o)
	return b
}

// Minus returns b − o class-wise (delta of two snapshots of one monotone
// counter).
func (b CostBreakdown) Minus(o CostBreakdown) CostBreakdown {
	b.Serving = b.Serving.Minus(o.Serving)
	b.Monitor = b.Monitor.Minus(o.Monitor)
	b.Repair = b.Repair.Minus(o.Repair)
	return b
}

// ByClass returns one class's spend.
func (b CostBreakdown) ByClass(cl Class) Cost {
	switch cl {
	case ClassMonitor:
		return b.Monitor
	case ClassRepair:
		return b.Repair
	default:
		return b.Serving
	}
}

// costCells is one class's set of atomic accumulators, field-for-field with
// Cost.
type costCells struct {
	cycles, dac, adc, reads, writes, energy, buffer atomic.Uint64
}

func (s *costCells) add(c Cost) {
	if c.ComputeCycles != 0 {
		s.cycles.Add(c.ComputeCycles)
	}
	if c.DACConversions != 0 {
		s.dac.Add(c.DACConversions)
	}
	if c.ADCConversions != 0 {
		s.adc.Add(c.ADCConversions)
	}
	if c.CrossbarReads != 0 {
		s.reads.Add(c.CrossbarReads)
	}
	if c.CrossbarWrites != 0 {
		s.writes.Add(c.CrossbarWrites)
	}
	if c.EnergyFJ != 0 {
		s.energy.Add(c.EnergyFJ)
	}
	if c.BufferBytes != 0 {
		s.buffer.Add(c.BufferBytes)
	}
}

func (s *costCells) load() Cost {
	return Cost{
		ComputeCycles:  s.cycles.Load(),
		DACConversions: s.dac.Load(),
		ADCConversions: s.adc.Load(),
		CrossbarReads:  s.reads.Load(),
		CrossbarWrites: s.writes.Load(),
		EnergyFJ:       s.energy.Load(),
		BufferBytes:    s.buffer.Load(),
	}
}

func (s *costCells) store(c Cost) {
	s.cycles.Store(c.ComputeCycles)
	s.dac.Store(c.DACConversions)
	s.adc.Store(c.ADCConversions)
	s.reads.Store(c.CrossbarReads)
	s.writes.Store(c.CrossbarWrites)
	s.energy.Store(c.EnergyFJ)
	s.buffer.Store(c.BufferBytes)
}

// Counter is a lock-free per-device cost accumulator: one set of atomic
// cells per attribution class plus the current class. Charging is wait-free
// (a few atomic adds, zero allocations); Snapshot is atomic loads and may
// run concurrently with charging from any goroutine. A nil *Counter is a
// valid no-op sink, so unmetered paths pay one branch.
type Counter struct {
	class atomic.Int64
	cells [numClasses]costCells
}

// NewCounter returns a zeroed counter attributing to ClassServing.
func NewCounter() *Counter { return &Counter{} }

// Charge accumulates c into the counter's current class. Safe on a nil
// receiver (no-op).
func (k *Counter) Charge(c Cost) {
	if k == nil {
		return
	}
	k.cells[k.class.Load()].add(c)
}

// ChargeClass accumulates c into an explicit class regardless of the current
// one. Safe on a nil receiver (no-op).
func (k *Counter) ChargeClass(cl Class, c Cost) {
	if k == nil {
		return
	}
	k.cells[cl].add(c)
}

// SetClass switches the attribution class for subsequent charges and returns
// the previous class so callers can restore it:
//
//	prev := ctr.SetClass(hwcost.ClassMonitor)
//	defer ctr.SetClass(prev)
//
// Safe on a nil receiver (returns ClassServing).
func (k *Counter) SetClass(cl Class) (prev Class) {
	if k == nil {
		return ClassServing
	}
	return Class(k.class.Swap(int64(cl)))
}

// Class returns the current attribution class.
func (k *Counter) Class() Class {
	if k == nil {
		return ClassServing
	}
	return Class(k.class.Load())
}

// Snapshot returns the cumulative per-class spend. It is safe concurrent
// with charging; each field is individually atomic (the snapshot is not a
// single linearization point across fields, which monotone accounting never
// needs). Safe on a nil receiver (returns zero).
func (k *Counter) Snapshot() CostBreakdown {
	if k == nil {
		return CostBreakdown{}
	}
	return CostBreakdown{
		Serving: k.cells[ClassServing].load(),
		Monitor: k.cells[ClassMonitor].load(),
		Repair:  k.cells[ClassRepair].load(),
	}
}

// Restore overwrites the counter with a snapshot (journal replay after a
// supervisor crash). Not intended to race with charging: restore happens
// before the device re-enters service.
func (k *Counter) Restore(b CostBreakdown) {
	if k == nil {
		return
	}
	k.cells[ClassServing].store(b.Serving)
	k.cells[ClassMonitor].store(b.Monitor)
	k.cells[ClassRepair].store(b.Repair)
}

// Meter is a per-worker sharded counter for pooled pipelines: worker i
// charges Shard(i) with zero cross-worker contention, and Fold sums the
// shards in ascending index order. Because every field is an unsigned
// integer, the fold is exact and identical to serial accumulation no matter
// how the workers interleaved — the cost-accounting analogue of the training
// engine's fixed-order gradient folds.
type Meter struct {
	shards []Counter
}

// NewMeter returns a meter with n shards (n ≥ 1).
func NewMeter(n int) *Meter {
	if n < 1 {
		n = 1
	}
	return &Meter{shards: make([]Counter, n)}
}

// Shards returns the shard count.
func (m *Meter) Shards() int { return len(m.shards) }

// Shard returns shard i's counter.
func (m *Meter) Shard(i int) *Counter { return &m.shards[i] }

// Fold sums every shard's snapshot in ascending shard order.
func (m *Meter) Fold() CostBreakdown {
	var b CostBreakdown
	for i := range m.shards {
		b.Add(m.shards[i].Snapshot())
	}
	return b
}

// DefaultTileRows/Cols mirror the simulator's default crossbar organisation;
// cost models fall back to them when the caller passes no tile dims.
const (
	DefaultTileRows = 128
	DefaultTileCols = 128
)

// MatVecCost returns the modeled per-pass cost of driving one (out × in)
// tiled linear layer on the analog path, excluding the data-dependent
// crossbar reads the crossbar arrays charge themselves (active word-lines ×
// columns). This is also the model the digital engines use for a per-sample
// charge when serving from the weight-level readout: there the read term is
// included at its dense upper bound because no DAC sparsity gate runs.
// tileRows/tileCols ≤ 0 select the defaults.
func MatVecCost(out, in, tileRows, tileCols int, denseReads bool) Cost {
	return MatVecCostPrec(out, in, tileRows, tileCols, denseReads, tensor.F64)
}

// MatVecCostPrec is MatVecCost priced at a plan precision: the event counts
// are identical (the tiling does not change with the numeric tier), but
// conversions charge the tier's energy coefficients and buffer traffic
// charges the tier's element width. MatVecCostPrec(..., tensor.F64) is
// exactly MatVecCost — the sticker model stays the committed baseline.
func MatVecCostPrec(out, in, tileRows, tileCols int, denseReads bool, p tensor.Precision) Cost {
	if tileRows <= 0 {
		tileRows = DefaultTileRows
	}
	if tileCols <= 0 {
		tileCols = DefaultTileCols
	}
	rowTiles := uint64((in + tileRows - 1) / tileRows)
	colTiles := uint64((out + tileCols - 1) / tileCols)
	c := Cost{
		// one activation cycle per tile pair per row-tile pass
		ComputeCycles: rowTiles * colTiles,
		// each input element converted once, reused across the tile row
		DACConversions: uint64(in),
		// each tile pair drains both polarities' bitlines per row-tile pass
		ADCConversions: 2 * rowTiles * colTiles * uint64(tileCols),
		// inputs staged in, outputs drained out, at the tier's element width
		BufferBytes: uint64(in+out) * ElemBytes(p),
	}
	if denseReads {
		c.CrossbarReads = 2 * uint64(in) * uint64(out)
	}
	dacFJ, adcFJ := ConvEnergy(p)
	c.EnergyFJ = c.DACConversions*dacFJ + c.ADCConversions*adcFJ +
		c.CrossbarReads*EnergyCellReadFJ
	return c
}

// ModelLayerCost is the per-sample forward hardware model of one compute
// layer, shared by the digital engines: weight-bearing layers price as
// crossbar matvecs at the dense read upper bound (those engines serve from
// the weight-level readout, where no DAC sparsity gate runs), a convolution
// prices one matvec per output spatial position, and digital peripheral ops
// price as buffer traffic only.
func ModelLayerCost(l nn.Layer, inVol, outVol, tileRows, tileCols int) Cost {
	return ModelLayerCostPrec(l, inVol, outVol, tileRows, tileCols, tensor.F64)
}

// ModelLayerCostPrec is ModelLayerCost priced at a plan precision, so a
// shard that compiled its engines on a fast tier rolls cheaper conversions
// and narrower buffer traffic up through its /statsz cost breakdown instead
// of the f64 sticker numbers. ModelLayerCostPrec(..., tensor.F64) is exactly
// ModelLayerCost.
func ModelLayerCostPrec(l nn.Layer, inVol, outVol, tileRows, tileCols int, p tensor.Precision) Cost {
	switch ll := l.(type) {
	case *nn.Dense:
		return MatVecCostPrec(ll.Out(), ll.In(), tileRows, tileCols, true, p)
	case *nn.Conv2D:
		g := ll.Geom()
		spatial := g.OutH() * g.OutW()
		ckk := g.InC * g.KH * g.KW
		return MatVecCostPrec(ll.OutC(), ckk, tileRows, tileCols, true, p).Scale(uint64(spatial))
	default:
		return Cost{BufferBytes: uint64(inVol+outVol) * ElemBytes(p)}
	}
}

// ReadCost is the data-dependent crossbar charge: cells activated on driven
// word-lines plus their read energy.
func ReadCost(activeCells uint64) Cost {
	return Cost{CrossbarReads: activeCells, EnergyFJ: activeCells * EnergyCellReadFJ}
}

// WriteCost is the cell-write charge for programming/scrub/remap pulses.
func WriteCost(cells uint64) Cost {
	return Cost{CrossbarWrites: cells, EnergyFJ: cells * EnergyCellWriteFJ}
}
