// Package netserve is the network-facing tier over the in-process serving
// frontend (internal/serve): the layer that turns "a chaos-gated concurrent
// server over one fleet" into an operable service — multiple serve.Server
// shards (each wrapping its own fleet of self-testing accelerators) behind
// one dispatcher, with per-tenant admission quotas, typed error → HTTP
// status mapping, request-scoped deadlines propagated from client headers,
// bounded retry-with-backoff across shards, and graceful shard drain when a
// fleet supervisor retires its devices mid-traffic.
//
// The request path, outside-in:
//
//   - Validation. A request that never made sense (bad width, oversized
//     batch, missing tenant) is refused with ErrInvalid before touching
//     quota or shard state.
//   - Quota. Each tenant owns a token bucket denominated in batch rows.
//     An empty bucket answers ErrQuota (HTTP 429) — the tenant was never
//     admitted, so the invariant set the soak audits counts it separately.
//   - Dispatch. Consistent-hash-by-tenant (default) keeps a tenant's
//     traffic on one shard so its quota pressure and cache locality stay
//     put; least-loaded dispatch is available where tenant affinity matters
//     less than tail latency. Draining and closed shards are never picked.
//   - Retry. A shard-level fault (ErrNoDevices, ErrOverloaded, ErrFaulted,
//     a shard mid-drain answering ErrClosed) is retried on a different
//     shard after a doubling backoff, at most RetryMax times, while the
//     request's deadline allows. Deadline expiries are never retried, and
//     monitor-class requests are never retried at all: a test-pattern
//     readout preempts real monitoring state on its device, so replaying it
//     elsewhere is not idempotent.
//   - Drain. DrainShard (or a fleet that retires every device mid-traffic,
//     detected on the dispatch-failure path) marks the shard, stops new
//     placements, drains its admitted requests via serve.Close, and the
//     hash ring rebalances its tenants onto the survivors. Close drains
//     every shard the same way.
//
// Every admitted request reaches exactly one terminal, typed outcome —
// Admitted == Completed + Overloaded + Deadlines + Unavailable + Faulted —
// and every frontend answer carries one of the closed set of wire kinds.
// campaign.RunNetSoak drives ~10⁶-request seeded campaigns with tenant
// mixes, fault storms and mid-campaign drains against a live listener to
// hold the tier to that contract.
package netserve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"reramtest/internal/fleet"
	"reramtest/internal/journal"
	"reramtest/internal/monitor"
	"reramtest/internal/reram"
	"reramtest/internal/serve"
	"reramtest/internal/tensor"
)

// Policy selects the dispatcher.
type Policy int

const (
	// HashTenant (default): consistent hashing of the tenant name over a
	// ring of virtual nodes — a tenant sticks to one shard until that shard
	// drains, and a drain moves only the drained shard's tenants.
	HashTenant Policy = iota
	// LeastLoaded: pick the live shard with the fewest in-flight requests;
	// ties break toward the lowest shard index for determinism.
	LeastLoaded
)

// String names the policy.
func (p Policy) String() string {
	if p == LeastLoaded {
		return "least-loaded"
	}
	return "hash-tenant"
}

// Config tunes the frontend.
type Config struct {
	// Policy selects the dispatcher (default HashTenant).
	Policy Policy
	// VNodes is the virtual nodes per shard on the hash ring (0 → 16).
	VNodes int
	// Quota is the per-tenant admission quota (zero value disables).
	Quota QuotaConfig
	// RetryMax bounds retries after a shard-level fault: a request makes at
	// most 1+RetryMax placements (0 → 1; use NoRetry to disable).
	RetryMax int
	// NoRetry disables cross-shard retries entirely.
	NoRetry bool
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt and always cut short by the request deadline (0 → 1ms).
	RetryBackoff time.Duration
	// MaxRows bounds the rows of one request batch (0 → 64).
	MaxRows int
	// DefaultDeadline applies to requests that brought no deadline (0 → 1s).
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (0 → 30s).
	MaxDeadline time.Duration
}

// Validate rejects configurations the frontend cannot operate under.
func (c Config) Validate() error {
	if c.Policy != HashTenant && c.Policy != LeastLoaded {
		return fmt.Errorf("netserve: unknown dispatch policy %d", c.Policy)
	}
	if c.VNodes < 0 || c.RetryMax < 0 || c.MaxRows < 0 {
		return fmt.Errorf("netserve: VNodes/RetryMax/MaxRows must be ≥ 0")
	}
	if c.RetryBackoff < 0 || c.DefaultDeadline < 0 || c.MaxDeadline < 0 {
		return fmt.Errorf("netserve: durations must be ≥ 0")
	}
	return c.Quota.Validate()
}

func (c Config) withDefaults() Config {
	if c.VNodes == 0 {
		c.VNodes = 16
	}
	if c.RetryMax == 0 {
		c.RetryMax = 1
	}
	if c.NoRetry {
		c.RetryMax = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.MaxRows == 0 {
		c.MaxRows = 64
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 30 * time.Second
	}
	return c
}

// ShardSpec describes one shard to commission: its own devices, fleet and
// serving configuration. Shards are independent failure domains — separate
// supervisors, separate journals, separate breakers.
type ShardSpec struct {
	Name    string
	Devices []fleet.Device
	Fleet   fleet.Config
	Serve   serve.Config
	// Journal is this shard's durable WAL (nil: no durability).
	Journal *journal.Writer
	// Store, when set, takes precedence over Journal: the shard journals
	// through a snapshot-compacting store and degrades to memory-only on
	// persistent disk faults instead of failing, surfacing Unjournaled
	// through Status, /v1/healthz and /statsz.
	Store *journal.Store
}

// Request is one tier-level inference request.
type Request struct {
	Tenant   string
	Priority serve.Priority
	X        *tensor.Tensor
}

// Result is one tier-level answer.
type Result struct {
	Probs    *tensor.Tensor
	Shard    string
	Device   string
	Status   monitor.Status
	Degraded bool
	Hedged   bool
	Retried  bool // serve-layer retry (faulted primary, same shard)
	Attempts int  // tier-level placements made (1 = no cross-shard retry)
	// Cost is the measured hardware spend of the winning attempt (see
	// serve.Response.Cost). The tier accumulates the same figure into its
	// per-tenant/per-shard cost table, so client-observed spend and the
	// tier's telemetry agree exactly.
	Cost reram.Cost
}

// CostStats is the tier's spend telemetry at response granularity: what each
// tenant's completed requests cost, what each shard's completed requests
// cost, and the fleet total. All three views are accumulated under one lock
// from the same response stream, so sum(Tenants) == sum(Shards) == Fleet
// exactly — the identity the network soak gates on. Abandoned hedge attempts
// charge device counters but never complete a response, so they appear in
// device telemetry (serve.Server.CostStats) and not here.
type CostStats struct {
	Fleet   reram.Cost            `json:"fleet"`
	Tenants map[string]reram.Cost `json:"tenants"`
	Shards  map[string]reram.Cost `json:"shards"`
}

// costTable accumulates completed-response spend. One mutex suffices: the
// critical section is seven integer adds per map entry, dwarfed by the
// inference that produced the figures.
type costTable struct {
	mu      sync.Mutex
	tenants map[string]reram.Cost
	shards  map[string]reram.Cost
	fleet   reram.Cost
}

func newCostTable() *costTable {
	return &costTable{tenants: make(map[string]reram.Cost), shards: make(map[string]reram.Cost)}
}

func (t *costTable) add(tenant, shard string, c reram.Cost) {
	if c.IsZero() {
		return
	}
	t.mu.Lock()
	t.tenants[tenant] = t.tenants[tenant].Plus(c)
	t.shards[shard] = t.shards[shard].Plus(c)
	t.fleet.Add(c)
	t.mu.Unlock()
}

func (t *costTable) snapshot() CostStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := CostStats{
		Fleet:   t.fleet,
		Tenants: make(map[string]reram.Cost, len(t.tenants)),
		Shards:  make(map[string]reram.Cost, len(t.shards)),
	}
	for k, v := range t.tenants {
		out.Tenants[k] = v
	}
	for k, v := range t.shards {
		out.Shards[k] = v
	}
	return out
}

// Stats is a snapshot of the tier's lifetime counters. The invariants the
// network soak audits:
//
//	Received == Invalid + QuotaRejected + ClosedRejected + Admitted
//	Admitted == Completed + Overloaded + Deadlines + Unavailable + Faulted
//	Internal == 0
type Stats struct {
	Received       uint64
	Invalid        uint64
	QuotaRejected  uint64
	ClosedRejected uint64
	Admitted       uint64

	Completed         uint64
	CompletedDegraded uint64
	Overloaded        uint64
	Deadlines         uint64
	Unavailable       uint64 // no eligible device/shard, or a shard closed out from under the last attempt
	Faulted           uint64

	Internal uint64 // untyped errors surfaced to clients — a contract violation

	Retries    uint64 // cross-shard retry placements launched
	AutoDrains uint64 // shards drained because their fleet retired every device
	Drains     uint64 // total shard drains (auto + requested + Close)
}

// Terminal sums the terminal outcomes of admitted requests.
func (st Stats) Terminal() uint64 {
	return st.Completed + st.Overloaded + st.Deadlines + st.Unavailable + st.Faulted
}

// shard is one serve.Server under the tier.
type shard struct {
	name     string
	idx      int
	srv      *serve.Server
	draining atomic.Bool
	inflight atomic.Int64
	drainOne sync.Once
	drainErr error
}

// live reports whether the dispatcher may place new requests here.
func (sh *shard) live() bool { return !sh.draining.Load() }

// ringSlot is one virtual node on the consistent-hash ring.
type ringSlot struct {
	hash uint64
	idx  int // shard index
}

// Frontend is the sharded network-facing tier. All exported methods are safe
// for concurrent use.
type Frontend struct {
	cfg    Config
	shards []*shard
	byName map[string]*shard
	ring   []ringSlot
	inDim  int

	quotas *quotaTable
	costs  *costTable

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	received, invalid, quotaRejected, closedRejected atomic.Uint64
	admitted, completed, completedDegraded           atomic.Uint64
	overloaded, deadlines, unavailable, faulted      atomic.Uint64
	internal, retries, autoDrains, drains            atomic.Uint64
}

// New commissions the tier: one serve.Server per spec, the quota table, and
// the dispatch ring. Every shard must agree on the model input width — a
// request is routable to any of them.
func New(specs []ShardSpec, cfg Config) (*Frontend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(specs) == 0 {
		return nil, errors.New("netserve: no shards")
	}
	f := &Frontend{
		cfg:    cfg,
		byName: make(map[string]*shard, len(specs)),
		quotas: newQuotaTable(cfg.Quota, nil),
		costs:  newCostTable(),
	}
	for i, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("netserve: shard %d has no name", i)
		}
		if _, dup := f.byName[spec.Name]; dup {
			return nil, fmt.Errorf("netserve: duplicate shard name %q", spec.Name)
		}
		if len(spec.Devices) == 0 {
			return nil, fmt.Errorf("netserve: shard %q has no devices", spec.Name)
		}
		inDim := spec.Devices[0].Reference().InDim()
		if i == 0 {
			f.inDim = inDim
		} else if inDim != f.inDim {
			return nil, fmt.Errorf("netserve: shard %q input width %d differs from %d — requests could not rebalance across shards",
				spec.Name, inDim, f.inDim)
		}
		var srv *serve.Server
		var err error
		if spec.Store != nil {
			// degraded commissioning (ErrUnjournaled) still yields a live
			// shard — it serves memory-only and flags itself via Status
			srv, err = serve.NewStore(spec.Devices, spec.Fleet, spec.Serve, spec.Store)
			if err != nil && !errors.Is(err, fleet.ErrUnjournaled) {
				return nil, fmt.Errorf("netserve: commission shard %q: %w", spec.Name, err)
			}
		} else {
			srv, err = serve.New(spec.Devices, spec.Fleet, spec.Serve, spec.Journal)
			if err != nil {
				return nil, fmt.Errorf("netserve: commission shard %q: %w", spec.Name, err)
			}
		}
		sh := &shard{name: spec.Name, idx: i, srv: srv}
		f.shards = append(f.shards, sh)
		f.byName[spec.Name] = sh
	}
	// the ring is built once: draining shards are skipped at lookup time, so
	// membership changes never rebuild it (and never race lookups)
	for i, sh := range f.shards {
		for v := 0; v < cfg.VNodes; v++ {
			f.ring = append(f.ring, ringSlot{hash: hash64(sh.name + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(f.ring, func(a, b int) bool { return f.ring[a].hash < f.ring[b].hash })
	return f, nil
}

// hash64 is FNV-1a over s.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// pick chooses the shard for tenant, skipping avoided indices and non-live
// shards. nil means no live shard can take the request.
func (f *Frontend) pick(tenant string, avoided map[int]bool) *shard {
	if f.cfg.Policy == LeastLoaded {
		var best *shard
		for _, sh := range f.shards {
			if !sh.live() || avoided[sh.idx] {
				continue
			}
			if best == nil || sh.inflight.Load() < best.inflight.Load() {
				best = sh
			}
		}
		return best
	}
	if len(f.ring) == 0 {
		return nil
	}
	h := hash64(tenant)
	pos := sort.Search(len(f.ring), func(i int) bool { return f.ring[i].hash >= h })
	seen := make(map[int]bool, len(f.shards))
	for k := 0; k < len(f.ring); k++ {
		slot := f.ring[(pos+k)%len(f.ring)]
		if seen[slot.idx] {
			continue
		}
		seen[slot.idx] = true
		sh := f.shards[slot.idx]
		if sh.live() && !avoided[slot.idx] {
			return sh
		}
		if len(seen) == len(f.shards) {
			break
		}
	}
	return nil
}

// retryable reports whether err may be retried on another shard for a
// request of the given priority. Monitor-class requests are never retried:
// a test-pattern readout preempts the monitoring state of the device it
// lands on, so replaying it elsewhere is not idempotent. Deadline expiries
// are never retried for anyone.
func retryable(err error, prio serve.Priority) bool {
	if prio == serve.Monitor {
		return false
	}
	switch {
	case errors.Is(err, serve.ErrDeadline):
		return false
	case errors.Is(err, serve.ErrNoDevices), errors.Is(err, serve.ErrOverloaded),
		errors.Is(err, serve.ErrFaulted), errors.Is(err, serve.ErrClosed):
		return true
	}
	return false
}

// Do runs one request through the tier: validation, quota, dispatch, bounded
// cross-shard retry. It blocks until the request reaches a terminal typed
// outcome. Safe for concurrent use.
func (f *Frontend) Do(ctx context.Context, req Request) (Result, error) {
	f.received.Add(1)
	if f.closed.Load() {
		f.closedRejected.Add(1)
		return Result{}, fmt.Errorf("netserve: rejected at the door: %w", ErrFrontendClosed)
	}
	if req.Tenant == "" {
		f.invalid.Add(1)
		return Result{}, fmt.Errorf("netserve: request names no tenant: %w", ErrInvalid)
	}
	if req.X == nil || req.X.Rank() != 2 || req.X.Dim(1) != f.inDim {
		f.invalid.Add(1)
		return Result{}, fmt.Errorf("netserve: input batch must be (N, %d): %w", f.inDim, ErrInvalid)
	}
	rows := req.X.Dim(0)
	if rows < 1 || rows > f.cfg.MaxRows {
		f.invalid.Add(1)
		return Result{}, fmt.Errorf("netserve: batch of %d rows outside [1, %d]: %w", rows, f.cfg.MaxRows, ErrInvalid)
	}
	if !f.quotas.Allow(req.Tenant, float64(rows)) {
		f.quotaRejected.Add(1)
		return Result{}, fmt.Errorf("netserve: tenant %q over admission quota: %w", req.Tenant, ErrQuota)
	}
	f.admitted.Add(1)

	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.cfg.DefaultDeadline)
		defer cancel()
	}

	var lastErr error
	avoided := make(map[int]bool, 2)
	backoff := f.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		sh := f.pick(req.Tenant, avoided)
		if sh == nil {
			if lastErr == nil {
				lastErr = fmt.Errorf("netserve: no live shard for tenant %q: %w", req.Tenant, serve.ErrNoDevices)
			}
			break
		}
		sh.inflight.Add(1)
		resp, err := sh.srv.Do(ctx, req.X, req.Priority)
		sh.inflight.Add(-1)
		if err == nil {
			f.completed.Add(1)
			if resp.Degraded {
				f.completedDegraded.Add(1)
			}
			f.costs.add(req.Tenant, sh.name, resp.Cost)
			return Result{
				Probs:    resp.Probs,
				Shard:    sh.name,
				Device:   resp.Device,
				Status:   resp.Status,
				Degraded: resp.Degraded,
				Hedged:   resp.Hedged,
				Retried:  resp.Retried,
				Attempts: attempt + 1,
				Cost:     resp.Cost,
			}, nil
		}
		lastErr = fmt.Errorf("netserve: shard %s: %w", sh.name, err)
		if errors.Is(err, serve.ErrNoDevices) {
			// the shard had nothing to offer — if its fleet has retired every
			// device this starvation is permanent and the shard is drained out
			// of the ring; a transient quarantine is left to heal in place
			f.noteStarved(sh)
		}
		if attempt >= f.cfg.RetryMax || !retryable(err, req.Priority) || ctx.Err() != nil {
			break
		}
		avoided[sh.idx] = true
		f.retries.Add(1)
		if !sleepCtx(ctx, backoff) {
			break
		}
		backoff *= 2
	}
	f.countTerminal(lastErr)
	return Result{}, lastErr
}

// countTerminal attributes exactly one terminal counter per admitted request.
func (f *Frontend) countTerminal(err error) {
	switch {
	case errors.Is(err, serve.ErrDeadline):
		f.deadlines.Add(1)
	case errors.Is(err, serve.ErrOverloaded):
		f.overloaded.Add(1)
	case errors.Is(err, serve.ErrFaulted):
		f.faulted.Add(1)
	case errors.Is(err, serve.ErrNoDevices), errors.Is(err, serve.ErrClosed):
		f.unavailable.Add(1)
	default:
		// not part of the typed contract; counted so the soak can gate on it
		f.internal.Add(1)
	}
}

// sleepCtx sleeps for d or until ctx is done; false means ctx won.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// noteStarved checks whether a shard that just answered ErrNoDevices is
// permanently starved (every device retired by its fleet supervisor) and if
// so drains it asynchronously — the graceful-rebalance path for mid-traffic
// retirement.
func (f *Frontend) noteStarved(sh *shard) {
	if sh.draining.Load() || f.closed.Load() {
		return
	}
	if len(sh.srv.Retired()) < len(sh.srv.Devices()) {
		return // at least one device could still come back
	}
	f.autoDrains.Add(1)
	go f.drainShard(sh)
}

// drainShard gracefully retires one shard: mark it (the dispatcher stops
// placing new requests), then close its server — serve.Close answers every
// already-admitted request before returning. Requests that picked the shard
// in the instant before the mark land on serve.ErrClosed and are retried on
// a neighbouring shard.
func (f *Frontend) drainShard(sh *shard) error {
	sh.drainOne.Do(func() {
		sh.draining.Store(true)
		f.drains.Add(1)
		sh.drainErr = sh.srv.Close()
	})
	return sh.drainErr
}

// DrainShard gracefully drains one shard by name and returns its drain
// result. Idempotent; concurrent callers share one drain.
func (f *Frontend) DrainShard(name string) error {
	sh, ok := f.byName[name]
	if !ok {
		return fmt.Errorf("netserve: unknown shard %q", name)
	}
	return f.drainShard(sh)
}

// Tick runs one supervised monitoring round on every live shard and returns
// the per-shard results. Draining shards are skipped — their supervisors are
// already shutting down.
func (f *Frontend) Tick() map[string][]fleet.RoundResult {
	out := make(map[string][]fleet.RoundResult, len(f.shards))
	for _, sh := range f.shards {
		if !sh.live() {
			continue
		}
		res, _ := sh.srv.Tick() // journaling errors surface via shard status
		out[sh.name] = res
	}
	return out
}

// ShardStatus is one shard's operational snapshot.
type ShardStatus struct {
	Name        string
	Draining    bool
	InFlight    int64
	Unjournaled bool   // shard lost its journal and is running memory-only
	Precision   string // numeric tier label ("f64", "f32", "i8")
	Serving     []string
	Quarantined []string
	Retired     []string
	Stats       serve.Stats
}

// Status snapshots every shard.
func (f *Frontend) Status() []ShardStatus {
	out := make([]ShardStatus, 0, len(f.shards))
	for _, sh := range f.shards {
		out = append(out, ShardStatus{
			Name:        sh.name,
			Draining:    sh.draining.Load(),
			InFlight:    sh.inflight.Load(),
			Unjournaled: sh.srv.Unjournaled(),
			Precision:   sh.srv.Precision().String(),
			Serving:     sh.srv.Serving(),
			Quarantined: sh.srv.Quarantined(),
			Retired:     sh.srv.Retired(),
			Stats:       sh.srv.Stats(),
		})
	}
	return out
}

// ShardNames returns the shards in commissioning order.
func (f *Frontend) ShardNames() []string {
	out := make([]string, len(f.shards))
	for i, sh := range f.shards {
		out[i] = sh.name
	}
	return out
}

// InDim reports the model input width every shard serves.
func (f *Frontend) InDim() int { return f.inDim }

// Stats snapshots the tier's lifetime counters.
func (f *Frontend) Stats() Stats {
	return Stats{
		Received:          f.received.Load(),
		Invalid:           f.invalid.Load(),
		QuotaRejected:     f.quotaRejected.Load(),
		ClosedRejected:    f.closedRejected.Load(),
		Admitted:          f.admitted.Load(),
		Completed:         f.completed.Load(),
		CompletedDegraded: f.completedDegraded.Load(),
		Overloaded:        f.overloaded.Load(),
		Deadlines:         f.deadlines.Load(),
		Unavailable:       f.unavailable.Load(),
		Faulted:           f.faulted.Load(),
		Internal:          f.internal.Load(),
		Retries:           f.retries.Load(),
		AutoDrains:        f.autoDrains.Load(),
		Drains:            f.drains.Load(),
	}
}

// CostStats snapshots the tier's per-tenant/per-shard/fleet spend telemetry.
func (f *Frontend) CostStats() CostStats { return f.costs.snapshot() }

// DeviceCosts snapshots every device's cumulative per-class spend, keyed
// shard then device ID. Unlike CostStats (response granularity), this reads
// the live device counters, so it also includes monitor and repair work and
// the serving spend of abandoned hedge attempts.
func (f *Frontend) DeviceCosts() map[string]map[string]reram.CostBreakdown {
	out := make(map[string]map[string]reram.CostBreakdown, len(f.shards))
	for _, sh := range f.shards {
		out[sh.name] = sh.srv.CostStats()
	}
	return out
}

// Close drains the whole tier: new requests are refused with
// ErrFrontendClosed, every shard drains concurrently (each admitted request
// still reaches its terminal outcome), and the first error any drain
// produced is returned. Idempotent and safe for concurrent callers — all of
// them share the one drain and its result.
func (f *Frontend) Close() error {
	f.closeOnce.Do(func() {
		f.closed.Store(true)
		errs := make([]error, len(f.shards))
		var wg sync.WaitGroup
		for i, sh := range f.shards {
			wg.Add(1)
			go func(i int, sh *shard) {
				defer wg.Done()
				errs[i] = f.drainShard(sh)
			}(i, sh)
		}
		wg.Wait()
		f.closeErr = errors.Join(errs...)
	})
	return f.closeErr
}
