package netserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"reramtest/internal/fleet"
	"reramtest/internal/journal"
	"reramtest/internal/models"
	"reramtest/internal/rng"
	"reramtest/internal/serve"
)

// storeTier builds a one-shard frontend journaling through a snapshot store
// over an injectable filesystem.
func storeTier(t *testing.T) (*Frontend, *journal.ErrFS) {
	t.Helper()
	pats := tierPatterns()
	ref := models.MLP(rng.New(1), 16, []int{12}, 5)
	devices := make([]fleet.Device, 2)
	for i := range devices {
		devices[i] = &tierDevice{id: fmt.Sprintf("s0-dev%d", i), net: ref.Clone(), patterns: pats}
	}
	efs := journal.NewErrFS(nil)
	store, _, err := journal.OpenStore(filepath.Join(t.TempDir(), "shard.wal"),
		journal.StoreConfig{FS: efs})
	if err != nil {
		t.Fatal(err)
	}
	fcfg := tierFleetConfig()
	fcfg.CompactEvery = 2
	f, err := New([]ShardSpec{{
		Name:    "shard-0",
		Devices: devices,
		Fleet:   fcfg,
		Serve:   serve.Config{Workers: 2, HedgeAfter: time.Hour},
		Store:   store,
	}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, efs
}

// TestTierSurfacesUnjournaledShard drives a store-backed shard onto a
// persistently full disk and checks the degradation is visible everywhere an
// operator would look: Status, /v1/healthz and /statsz — while the shard
// itself keeps serving (healthz stays 200).
func TestTierSurfacesUnjournaledShard(t *testing.T) {
	f, efs := storeTier(t)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	f.Tick()
	if st := f.Status()[0]; st.Unjournaled {
		t.Fatal("shard unjournaled before any fault")
	}

	efs.SetNoSpace(true)
	f.Tick()
	f.Tick() // degraded ticks keep running memory-only

	st := f.Status()[0]
	if !st.Unjournaled {
		t.Fatal("shard status does not flag the lost journal")
	}
	if st.Draining {
		t.Fatal("durability loss must not drain the shard")
	}
	if len(st.Serving) == 0 {
		t.Fatal("unjournaled shard stopped serving")
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200: an unjournaled shard is degraded, not down", resp.StatusCode)
	}
	var hz struct {
		Shards []struct {
			Name        string `json:"name"`
			Unjournaled bool   `json:"unjournaled"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if len(hz.Shards) != 1 || !hz.Shards[0].Unjournaled {
		t.Fatalf("healthz shards = %+v, want shard-0 unjournaled", hz.Shards)
	}

	resp2, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sz struct {
		Unjournaled []string `json:"unjournaled"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&sz); err != nil {
		t.Fatal(err)
	}
	if len(sz.Unjournaled) != 1 || sz.Unjournaled[0] != "shard-0" {
		t.Fatalf("statsz unjournaled = %v, want [shard-0]", sz.Unjournaled)
	}
}
