package netserve

import (
	"errors"
	"net/http"

	"reramtest/internal/serve"
)

// The frontend's own sentinels. Together with the serve-layer set
// (serve.ErrOverloaded, ErrDeadline, ErrNoDevices, ErrFaulted, ErrClosed)
// they form the complete typed-error contract the network soak audits: every
// request the tier admits terminates in a 200 or an error matching exactly
// one of these, and StatusFor maps each onto one HTTP status code.
var (
	// ErrInvalid: the request never made sense — bad JSON, missing tenant,
	// wrong input width, batch over MaxRows. Never admitted, never retried.
	ErrInvalid = errors.New("netserve: invalid request")

	// ErrQuota: the tenant's token bucket is empty. The request was never
	// admitted; the client should back off for at least RetryAfter.
	ErrQuota = errors.New("netserve: tenant quota exhausted")

	// ErrFrontendClosed: the request arrived after Close began draining the
	// tier (distinct from serve.ErrClosed, which names a single shard mid-
	// drain and is retried onto its neighbours).
	ErrFrontendClosed = errors.New("netserve: frontend closed")
)

// errorKind is the wire name for an error class — stable strings the load
// generator and dashboards key on.
func errorKind(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrInvalid):
		return "invalid"
	case errors.Is(err, ErrQuota):
		return "quota"
	case errors.Is(err, ErrFrontendClosed):
		return "closed"
	case errors.Is(err, serve.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, serve.ErrDeadline):
		return "deadline"
	case errors.Is(err, serve.ErrNoDevices):
		return "no_devices"
	case errors.Is(err, serve.ErrClosed):
		return "closed"
	case errors.Is(err, serve.ErrFaulted):
		return "faulted"
	default:
		return "internal"
	}
}

// KnownKinds is the closed set of wire error kinds a healthy tier may emit.
// Anything outside it (the "internal" fallback) is an untyped error escaping
// the contract — the soak gates on never seeing one.
var KnownKinds = []string{"ok", "invalid", "quota", "closed", "overloaded",
	"deadline", "no_devices", "faulted"}

// StatusFor maps a frontend error onto its HTTP status code and wire kind:
//
//	nil               → 200 ok        (Degraded answers are 200 + flag)
//	ErrInvalid        → 400 invalid
//	ErrQuota          → 429 quota     (with Retry-After)
//	serve.ErrOverloaded → 429 overloaded (with Retry-After)
//	serve.ErrDeadline → 504 deadline
//	serve.ErrNoDevices → 503 no_devices
//	ErrFrontendClosed / serve.ErrClosed → 503 closed
//	serve.ErrFaulted  → 502 faulted
//	anything else     → 500 internal  (a contract violation, gated to zero)
func StatusFor(err error) (code int, kind string) {
	kind = errorKind(err)
	switch kind {
	case "ok":
		return http.StatusOK, kind
	case "invalid":
		return http.StatusBadRequest, kind
	case "quota", "overloaded":
		return http.StatusTooManyRequests, kind
	case "deadline":
		return http.StatusGatewayTimeout, kind
	case "no_devices", "closed":
		return http.StatusServiceUnavailable, kind
	case "faulted":
		return http.StatusBadGateway, kind
	default:
		return http.StatusInternalServerError, kind
	}
}
