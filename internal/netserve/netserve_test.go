package netserve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"reramtest/internal/fleet"
	"reramtest/internal/health"
	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/serve"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// tierDevice is a scripted accelerator for tier tests: injectable crashes
// and slow readouts, mutex-guarded because tests mutate the script while the
// tier drives traffic.
type tierDevice struct {
	id       string
	net      *nn.Network
	patterns *testgen.PatternSet

	mu    sync.Mutex
	crash bool
	delay time.Duration
}

func (d *tierDevice) ID() string                    { return d.id }
func (d *tierDevice) Reference() *nn.Network        { return d.net }
func (d *tierDevice) Patterns() *testgen.PatternSet { return d.patterns }
func (d *tierDevice) Repairer() health.Repairer     { return nil }

func (d *tierDevice) set(f func(*tierDevice)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f(d)
}

func (d *tierDevice) Infer() monitor.Infer {
	return func(x *tensor.Tensor) *tensor.Tensor {
		d.mu.Lock()
		crash, delay := d.crash, d.delay
		d.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		if crash {
			panic("tierDevice: injected crash")
		}
		return nn.Softmax(d.net.Forward(x))
	}
}

func tierPatterns() *testgen.PatternSet {
	return &testgen.PatternSet{
		Name: "tier", Method: "plain",
		X:      tensor.RandUniform(rng.New(2), 0, 1, 8, 16),
		Labels: make([]int, 8),
	}
}

func tierFleetConfig() fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Health.Sleep = func(time.Duration) {}
	return cfg
}

// newTier builds a frontend of `shards` shards × `devPerShard` devices and
// returns the frontend plus the devices by shard.
func newTier(t *testing.T, shards, devPerShard int, cfg Config) (*Frontend, [][]*tierDevice) {
	t.Helper()
	pats := tierPatterns()
	ref := models.MLP(rng.New(1), 16, []int{12}, 5)
	devs := make([][]*tierDevice, shards)
	specs := make([]ShardSpec, shards)
	for s := 0; s < shards; s++ {
		wrapped := make([]fleet.Device, devPerShard)
		devs[s] = make([]*tierDevice, devPerShard)
		for i := 0; i < devPerShard; i++ {
			d := &tierDevice{id: fmt.Sprintf("s%d-dev%d", s, i), net: ref.Clone(), patterns: pats}
			devs[s][i] = d
			wrapped[i] = d
		}
		specs[s] = ShardSpec{
			Name:    fmt.Sprintf("shard-%d", s),
			Devices: wrapped,
			Fleet:   tierFleetConfig(),
			Serve:   serve.Config{Workers: 2, HedgeAfter: time.Hour},
		}
	}
	f, err := New(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, devs
}

func tierBatch(rows int) *tensor.Tensor {
	return tensor.RandUniform(rng.New(7), 0, 1, rows, 16)
}

// tenantFor probes tenant names until one hashes onto the wanted shard.
func tenantFor(t *testing.T, f *Frontend, shard string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if sh := f.pick(name, nil); sh != nil && sh.name == shard {
			return name
		}
	}
	t.Fatalf("no tenant hashes onto %s", shard)
	return ""
}

func TestHashTenantAffinity(t *testing.T) {
	f, _ := newTier(t, 3, 1, Config{})
	defer f.Close()
	for _, tenant := range []string{"alice", "bob", "carol", "dave"} {
		var home string
		for i := 0; i < 5; i++ {
			res, err := f.Do(context.Background(), Request{Tenant: tenant, X: tierBatch(1)})
			if err != nil {
				t.Fatal(err)
			}
			if home == "" {
				home = res.Shard
			} else if res.Shard != home {
				t.Fatalf("tenant %s moved from %s to %s with no drain", tenant, home, res.Shard)
			}
		}
	}
}

func TestLeastLoadedSpreadsLoad(t *testing.T) {
	f, devs := newTier(t, 2, 1, Config{Policy: LeastLoaded})
	defer f.Close()
	// pin shard 0's device so its in-flight count stays high
	gateDelay := 50 * time.Millisecond
	devs[0][0].set(func(d *tierDevice) { d.delay = gateDelay })

	var wg sync.WaitGroup
	shardsSeen := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := f.Do(context.Background(), Request{Tenant: "t", X: tierBatch(1)})
			if err == nil {
				shardsSeen <- res.Shard
			}
		}()
		time.Sleep(2 * time.Millisecond) // let in-flight counts differentiate
	}
	wg.Wait()
	close(shardsSeen)
	counts := map[string]int{}
	for s := range shardsSeen {
		counts[s]++
	}
	if counts["shard-1"] == 0 {
		t.Fatalf("least-loaded dispatch never used the fast shard: %v", counts)
	}
}

func TestQuotaIsolatesTenants(t *testing.T) {
	f, _ := newTier(t, 2, 1, Config{Quota: QuotaConfig{Rate: 0.001, Burst: 3}})
	defer f.Close()

	// greedy burns its 3-row bucket, then eats ErrQuota
	for i := 0; i < 3; i++ {
		if _, err := f.Do(context.Background(), Request{Tenant: "greedy", X: tierBatch(1)}); err != nil {
			t.Fatalf("in-quota request %d: %v", i, err)
		}
	}
	_, err := f.Do(context.Background(), Request{Tenant: "greedy", X: tierBatch(1)})
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota request returned %v, want ErrQuota", err)
	}
	// a different tenant's bucket is untouched
	if _, err := f.Do(context.Background(), Request{Tenant: "modest", X: tierBatch(1)}); err != nil {
		t.Fatalf("other tenant starved by greedy's quota: %v", err)
	}
	st := f.Stats()
	if st.QuotaRejected != 1 {
		t.Fatalf("quota rejections: %+v", st)
	}
	if st.Received != st.Invalid+st.QuotaRejected+st.ClosedRejected+st.Admitted {
		t.Fatalf("admission accounting broken: %+v", st)
	}
}

func TestQuotaBucketRefills(t *testing.T) {
	clock := time.Unix(0, 0)
	q := newQuotaTable(QuotaConfig{Rate: 10, Burst: 5}, func() time.Time { return clock })
	if !q.Allow("t", 5) {
		t.Fatal("full bucket refused its burst")
	}
	if q.Allow("t", 1) {
		t.Fatal("empty bucket admitted")
	}
	clock = clock.Add(300 * time.Millisecond) // refills 3 rows
	if !q.Allow("t", 3) {
		t.Fatal("refilled bucket refused 3 rows")
	}
	if q.Allow("t", 1) {
		t.Fatal("bucket over-refilled")
	}
	clock = clock.Add(time.Hour)
	if q.Allow("t", 6) {
		t.Fatal("bucket exceeded its burst depth after a long idle")
	}
	if !q.Allow("t", 5) {
		t.Fatal("bucket did not cap at burst")
	}
}

func TestCrossShardRetryOnFaultedShard(t *testing.T) {
	f, devs := newTier(t, 2, 1, Config{})
	defer f.Close()
	tenant := tenantFor(t, f, "shard-0")
	devs[0][0].set(func(d *tierDevice) { d.crash = true })

	res, err := f.Do(context.Background(), Request{Tenant: tenant, X: tierBatch(1)})
	if err != nil {
		t.Fatalf("request not rescued by cross-shard retry: %v", err)
	}
	if res.Shard != "shard-1" || res.Attempts != 2 {
		t.Fatalf("rescue came from %s in %d attempts, want shard-1 in 2", res.Shard, res.Attempts)
	}
	if st := f.Stats(); st.Retries != 1 || st.Completed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMonitorClassNeverRetried(t *testing.T) {
	f, devs := newTier(t, 2, 1, Config{})
	defer f.Close()
	tenant := tenantFor(t, f, "shard-0")
	devs[0][0].set(func(d *tierDevice) { d.crash = true })

	_, err := f.Do(context.Background(), Request{Tenant: tenant, Priority: serve.Monitor, X: tierBatch(1)})
	if !errors.Is(err, serve.ErrFaulted) {
		t.Fatalf("monitor-class fault returned %v, want ErrFaulted surfaced unretried", err)
	}
	if st := f.Stats(); st.Retries != 0 {
		t.Fatalf("monitor-class request was retried: %+v", st)
	}
}

func TestDeadlineNeverRetried(t *testing.T) {
	f, devs := newTier(t, 2, 1, Config{})
	defer f.Close()
	for _, row := range devs {
		row[0].set(func(d *tierDevice) { d.delay = 200 * time.Millisecond })
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := f.Do(ctx, Request{Tenant: "t", X: tierBatch(1)})
	if !errors.Is(err, serve.ErrDeadline) {
		t.Fatalf("expired request returned %v, want ErrDeadline", err)
	}
	if st := f.Stats(); st.Retries != 0 || st.Deadlines != 1 {
		t.Fatalf("deadline expiry was retried: %+v", st)
	}
}

func TestDrainShardRebalancesTenants(t *testing.T) {
	f, _ := newTier(t, 2, 1, Config{})
	defer f.Close()
	tenant := tenantFor(t, f, "shard-0")

	if err := f.DrainShard("shard-0"); err != nil {
		t.Fatal("drain:", err)
	}
	res, err := f.Do(context.Background(), Request{Tenant: tenant, X: tierBatch(1)})
	if err != nil {
		t.Fatalf("tenant stranded after its home shard drained: %v", err)
	}
	if res.Shard != "shard-1" {
		t.Fatalf("tenant rebalanced to %s, want shard-1", res.Shard)
	}
	// drain is idempotent and shared
	if err := f.DrainShard("shard-0"); err != nil {
		t.Fatal("second drain:", err)
	}
	if st := f.Stats(); st.Drains != 1 {
		t.Fatalf("one drain counted %d times", st.Drains)
	}
	if err := f.DrainShard("nope"); err == nil {
		t.Fatal("unknown shard drained")
	}
}

func TestDrainUnderTrafficNoSilentDrops(t *testing.T) {
	before := runtime.NumGoroutine()
	f, _ := newTier(t, 3, 2, Config{})

	var wg sync.WaitGroup
	var untyped, failed int
	var mu sync.Mutex
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := f.Do(context.Background(),
				Request{Tenant: fmt.Sprintf("t-%d", i%6), X: tierBatch(1 + i%3)})
			if err != nil {
				mu.Lock()
				failed++
				if _, kind := StatusFor(err); kind == "internal" {
					untyped++
				}
				mu.Unlock()
			}
		}(i)
		if i == 16 {
			go f.DrainShard("shard-0") // drain races the traffic
		}
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Admitted != st.Terminal() {
		t.Fatalf("silent drops across drain: %+v", st)
	}
	if untyped != 0 {
		t.Fatalf("%d untyped error(s) escaped during drain (of %d failures)", untyped, failed)
	}
	if st.Internal != 0 {
		t.Fatalf("frontend counted %d untyped terminal(s): %+v", st.Internal, st)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
}

func TestCloseIdempotentAndTyped(t *testing.T) {
	f, _ := newTier(t, 2, 1, Config{})
	const closers = 6
	errs := make([]error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f.Close()
		}(i)
	}
	wg.Wait()
	for i := 1; i < closers; i++ {
		if !errors.Is(errs[i], errs[0]) && errs[i] != errs[0] {
			t.Fatalf("closer %d got %v, closer 0 got %v", i, errs[i], errs[0])
		}
	}
	_, err := f.Do(context.Background(), Request{Tenant: "t", X: tierBatch(1)})
	if !errors.Is(err, ErrFrontendClosed) {
		t.Fatalf("Do after Close returned %v, want ErrFrontendClosed", err)
	}
	if code, kind := StatusFor(err); code != 503 || kind != "closed" {
		t.Fatalf("closed maps to (%d, %s), want (503, closed)", code, kind)
	}
}

func TestValidationRejectsBeforeAdmission(t *testing.T) {
	f, _ := newTier(t, 1, 1, Config{MaxRows: 4})
	defer f.Close()
	cases := []Request{
		{Tenant: "", X: tierBatch(1)},             // no tenant
		{Tenant: "t", X: nil},                     // no batch
		{Tenant: "t", X: tensor.New(1, 7)},        // wrong width
		{Tenant: "t", X: tierBatch(5)},            // over MaxRows
		{Tenant: "t", X: tensor.New(16)}, // wrong rank
	}
	for i, req := range cases {
		_, err := f.Do(context.Background(), req)
		if !errors.Is(err, ErrInvalid) {
			t.Fatalf("case %d returned %v, want ErrInvalid", i, err)
		}
	}
	st := f.Stats()
	if st.Admitted != 0 || st.Invalid != uint64(len(cases)) {
		t.Fatalf("invalid requests admitted: %+v", st)
	}
}

func TestStatusForTable(t *testing.T) {
	cases := []struct {
		err  error
		code int
		kind string
	}{
		{nil, 200, "ok"},
		{ErrInvalid, 400, "invalid"},
		{ErrQuota, 429, "quota"},
		{ErrFrontendClosed, 503, "closed"},
		{serve.ErrOverloaded, 429, "overloaded"},
		{serve.ErrDeadline, 504, "deadline"},
		{serve.ErrNoDevices, 503, "no_devices"},
		{serve.ErrClosed, 503, "closed"},
		{serve.ErrFaulted, 502, "faulted"},
		{fmt.Errorf("wrapped: %w", serve.ErrDeadline), 504, "deadline"},
		{errors.New("mystery"), 500, "internal"},
	}
	for _, c := range cases {
		code, kind := StatusFor(c.err)
		if code != c.code || kind != c.kind {
			t.Errorf("StatusFor(%v) = (%d, %s), want (%d, %s)", c.err, code, kind, c.code, c.kind)
		}
	}
}

func TestNewValidation(t *testing.T) {
	pats := tierPatterns()
	ref := models.MLP(rng.New(1), 16, []int{12}, 5)
	dev := func(id string) fleet.Device {
		return &tierDevice{id: id, net: ref.Clone(), patterns: pats}
	}
	spec := func(name string) ShardSpec {
		return ShardSpec{Name: name, Devices: []fleet.Device{dev(name + "-d")}, Fleet: tierFleetConfig()}
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty tier accepted")
	}
	if _, err := New([]ShardSpec{spec("")}, Config{}); err == nil {
		t.Fatal("unnamed shard accepted")
	}
	if _, err := New([]ShardSpec{spec("a"), spec("a")}, Config{}); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
	if _, err := New([]ShardSpec{spec("a")}, Config{RetryBackoff: -1}); err == nil {
		t.Fatal("negative backoff accepted")
	}
	// mismatched input widths across shards must be refused
	other := models.MLP(rng.New(1), 8, []int{6}, 3)
	bad := ShardSpec{Name: "b", Fleet: tierFleetConfig(),
		Devices: []fleet.Device{&tierDevice{id: "b-d", net: other, patterns: &testgen.PatternSet{
			Name: "t8", Method: "plain",
			X:      tensor.RandUniform(rng.New(3), 0, 1, 8, 8),
			Labels: make([]int, 8),
		}}}}
	if _, err := New([]ShardSpec{spec("a"), bad}, Config{}); err == nil {
		t.Fatal("mismatched shard input widths accepted")
	}
}

// waitFor polls cond with a hard 5s cap.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
