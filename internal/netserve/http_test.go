package netserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// httpTier wraps a small frontend in a live test server.
func httpTier(t *testing.T, cfg Config) (*Frontend, [][]*tierDevice, *httptest.Server) {
	t.Helper()
	f, devs := newTier(t, 2, 1, cfg)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() { ts.Close(); f.Close() })
	return f, devs, ts
}

func postInfer(t *testing.T, ts *httptest.Server, body string, hdr map[string]string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("undecodable response body: %v", err)
	}
	return resp, decoded
}

func inferBody(tenant string, rows, width int) string {
	row := make([]float64, width)
	for i := range row {
		row[i] = 0.25
	}
	input := make([][]float64, rows)
	for i := range input {
		input[i] = row
	}
	b, _ := json.Marshal(map[string]any{"tenant": tenant, "input": input})
	return string(b)
}

func TestHTTPHappyPath(t *testing.T) {
	_, _, ts := httpTier(t, Config{})
	resp, body := postInfer(t, ts, inferBody("alice", 2, 16), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %v", resp.StatusCode, body)
	}
	probs, ok := body["probs"].([]any)
	if !ok || len(probs) != 2 {
		t.Fatalf("bad probs in %v", body)
	}
	if body["shard"] == "" || body["device"] == "" {
		t.Fatalf("response names no placement: %v", body)
	}
	if served := resp.Header.Get("X-Served-By"); served == "" {
		t.Fatal("no X-Served-By header")
	}
	if body["status"] != "HEALTHY" {
		t.Fatalf("status %v, want HEALTHY", body["status"])
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, _, ts := httpTier(t, Config{MaxRows: 4, Quota: QuotaConfig{Rate: 0.001, Burst: 2}})

	// 400: bad JSON, bad width, oversized batch, bad priority, bad deadline
	for i, c := range []struct {
		body string
		hdr  map[string]string
	}{
		{"{not json", nil},
		{inferBody("t", 1, 7), nil},
		{inferBody("t", 5, 16), nil},
		{`{"tenant":"t","priority":"turbo","input":[[1]]}`, nil},
		{inferBody("t", 1, 16), map[string]string{DeadlineHeader: "soon"}},
		{inferBody("t", 1, 16), map[string]string{DeadlineHeader: "-5"}},
	} {
		resp, body := postInfer(t, ts, c.body, c.hdr)
		if resp.StatusCode != http.StatusBadRequest || body["error"] != "invalid" {
			t.Fatalf("case %d: status %d error %v, want 400 invalid", i, resp.StatusCode, body["error"])
		}
	}

	// 429 quota after the burst is gone, with Retry-After
	for i := 0; i < 2; i++ {
		if resp, body := postInfer(t, ts, inferBody("q", 1, 16), nil); resp.StatusCode != 200 {
			t.Fatalf("in-quota request %d: %d %v", i, resp.StatusCode, body)
		}
	}
	resp, body := postInfer(t, ts, inferBody("q", 1, 16), nil)
	if resp.StatusCode != http.StatusTooManyRequests || body["error"] != "quota" {
		t.Fatalf("over-quota: status %d error %v, want 429 quota", resp.StatusCode, body["error"])
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// 405-equivalent: GET on /v1/infer is invalid
	getResp, err := ts.Client().Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/infer = %d", getResp.StatusCode)
	}
}

func TestHTTPDeadlinePropagation(t *testing.T) {
	_, devs, ts := httpTier(t, Config{})
	for _, row := range devs {
		row[0].set(func(d *tierDevice) { d.delay = 300 * time.Millisecond })
	}
	start := time.Now()
	resp, body := postInfer(t, ts, inferBody("t", 1, 16), map[string]string{DeadlineHeader: "25"})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout || body["error"] != "deadline" {
		t.Fatalf("status %d error %v, want 504 deadline", resp.StatusCode, body["error"])
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("504 took %v — the header deadline did not propagate", elapsed)
	}
}

func TestHTTPFaultedShardMaps502(t *testing.T) {
	f, devs, ts := httpTier(t, Config{NoRetry: true})
	tenant := tenantFor(t, f, "shard-0")
	devs[0][0].set(func(d *tierDevice) { d.crash = true })
	resp, body := postInfer(t, ts, inferBody(tenant, 1, 16), nil)
	if resp.StatusCode != http.StatusBadGateway || body["error"] != "faulted" {
		t.Fatalf("status %d error %v, want 502 faulted", resp.StatusCode, body["error"])
	}
}

func TestHTTPHealthzAndStats(t *testing.T) {
	f, _, ts := httpTier(t, Config{})
	if _, err := f.Do(context.Background(), Request{Tenant: "t", X: tierBatch(1)}); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Closed bool `json:"closed"`
		Shards []struct {
			Name     string   `json:"name"`
			Draining bool     `json:"draining"`
			Serving  []string `json:"serving"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(health.Shards) != 2 {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Completed != 1 || st.Admitted != st.Terminal() {
		t.Fatalf("stats over the wire: %+v", st)
	}

	// drain everything: healthz flips to 503
	f.DrainShard("shard-0")
	f.DrainShard("shard-1")
	resp, err = ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with every shard draining = %d, want 503", resp.StatusCode)
	}
}
