package netserve

import (
	"fmt"
	"sync"
	"time"
)

// QuotaConfig tunes per-tenant admission quotas: a classic token bucket,
// denominated in batch rows (a 16-row request spends 16 tokens), layered in
// front of the shards' dual-priority queues. Quotas answer a different
// question than queue bounds: the queues protect the devices from aggregate
// overload, the buckets protect tenants from each other — one tenant
// flooding the tier burns its own bucket dry and starts eating 429s while
// everyone else's traffic still lands.
type QuotaConfig struct {
	// Rate is each tenant's sustained allowance in rows per second
	// (0 disables quotas entirely).
	Rate float64
	// Burst is the bucket depth in rows (0 → max(Rate, 1)): how far a tenant
	// may briefly exceed its sustained rate.
	Burst float64
}

// Validate rejects quota configurations the tier cannot operate under.
func (q QuotaConfig) Validate() error {
	if q.Rate < 0 || q.Burst < 0 {
		return fmt.Errorf("netserve: quota Rate and Burst must be ≥ 0")
	}
	return nil
}

func (q QuotaConfig) withDefaults() QuotaConfig {
	if q.Rate > 0 && q.Burst == 0 {
		q.Burst = q.Rate
		if q.Burst < 1 {
			q.Burst = 1
		}
	}
	return q
}

// quotaTable holds one token bucket per tenant, created lazily on first
// sight. All methods are safe for concurrent use.
type quotaTable struct {
	mu      sync.Mutex
	cfg     QuotaConfig
	now     func() time.Time // injectable clock for deterministic tests
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(cfg QuotaConfig, now func() time.Time) *quotaTable {
	if now == nil {
		now = time.Now
	}
	return &quotaTable{cfg: cfg.withDefaults(), now: now, buckets: make(map[string]*bucket)}
}

// Allow charges cost rows against tenant's bucket: true admits the request,
// false is a quota rejection. A disabled quota (Rate 0) admits everything. A
// cost larger than the whole bucket depth can never be admitted — Allow
// returns false immediately rather than stalling the tenant forever.
func (t *quotaTable) Allow(tenant string, cost float64) bool {
	if t.cfg.Rate <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	b, ok := t.buckets[tenant]
	if !ok {
		b = &bucket{tokens: t.cfg.Burst, last: now}
		t.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * t.cfg.Rate
		if b.tokens > t.cfg.Burst {
			b.tokens = t.cfg.Burst
		}
	}
	b.last = now
	if b.tokens < cost {
		return false
	}
	b.tokens -= cost
	return true
}

// Tenants reports how many distinct tenants have been seen.
func (t *quotaTable) Tenants() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buckets)
}
