package netserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"reramtest/internal/reram"
	"reramtest/internal/serve"
	"reramtest/internal/tensor"
)

// The HTTP/JSON wire protocol.
//
//	POST /v1/infer
//	  headers: X-Deadline-Ms: <int>   request deadline, clamped to MaxDeadline
//	  body:    {"tenant":"t", "priority":"bulk"|"monitor", "input":[[...]]}
//	  200:     {"probs":[[...]], "shard":"s0", "device":"accel-00",
//	            "status":"healthy", "degraded":false, "hedged":false,
//	            "retried":false, "attempts":1}
//	  4xx/5xx: {"error":"<kind>", "message":"..."}  (kind ∈ KnownKinds)
//	GET /v1/healthz   per-shard serving/quarantined/retired/draining snapshot
//	GET /v1/stats     the tier's lifetime counters
//	GET /statsz       full telemetry: lifetime counters, per-tenant/per-shard
//	                  response-granular hardware cost, and every device's live
//	                  per-class counter snapshot
//
// Degraded answers are 200s: the paper's economics keep drifting silicon in
// service, so the flag rides in the body and the X-Degraded header and the
// caller decides what the answer is worth.

// inferRequest is the POST /v1/infer body.
type inferRequest struct {
	Tenant   string      `json:"tenant"`
	Priority string      `json:"priority,omitempty"`
	Input    [][]float64 `json:"input"`
}

// inferResponse is the 200 body.
type inferResponse struct {
	Probs    [][]float64 `json:"probs"`
	Shard    string      `json:"shard"`
	Device   string      `json:"device"`
	Status   string      `json:"status"`
	Degraded bool        `json:"degraded"`
	Hedged   bool        `json:"hedged,omitempty"`
	Retried  bool        `json:"retried,omitempty"`
	Attempts int         `json:"attempts"`
	// Cost is the measured hardware spend of the attempt that served this
	// answer; clients summing it across completed requests reproduce the
	// tier's per-tenant figure exactly (see CostStats).
	Cost reram.Cost `json:"cost"`
}

// errorResponse is every non-200 body.
type errorResponse struct {
	Error   string `json:"error"`
	Message string `json:"message"`
}

// DeadlineHeader carries the client's end-to-end deadline in milliseconds;
// it is clamped to Config.MaxDeadline and propagated through context into
// the shard, the fleet router and the device attempt.
const DeadlineHeader = "X-Deadline-Ms"

// Handler returns the tier's HTTP handler.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", f.handleInfer)
	mux.HandleFunc("/v1/healthz", f.handleHealthz)
	mux.HandleFunc("/v1/stats", f.handleStats)
	mux.HandleFunc("/statsz", f.handleStatsz)
	return mux
}

// writeError renders one typed error as its mapped status + JSON body.
func writeError(w http.ResponseWriter, err error) {
	code, kind := StatusFor(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: kind, Message: err.Error()})
}

// handleInfer is the request path: decode, build the deadline context, run
// the tier, encode.
func (f *Frontend) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, fmt.Errorf("netserve: %s not allowed on /v1/infer: %w", r.Method, ErrInvalid))
		return
	}
	var body inferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&body); err != nil {
		f.received.Add(1)
		f.invalid.Add(1)
		writeError(w, fmt.Errorf("netserve: undecodable body: %v: %w", err, ErrInvalid))
		return
	}
	x, err := tensorFromRows(body.Input, f.inDim)
	if err != nil {
		f.received.Add(1)
		f.invalid.Add(1)
		writeError(w, err)
		return
	}
	prio := serve.Bulk
	switch body.Priority {
	case "", "bulk":
	case "monitor":
		prio = serve.Monitor
	default:
		f.received.Add(1)
		f.invalid.Add(1)
		writeError(w, fmt.Errorf("netserve: unknown priority %q: %w", body.Priority, ErrInvalid))
		return
	}

	ctx := r.Context()
	if raw := r.Header.Get(DeadlineHeader); raw != "" {
		ms, perr := strconv.Atoi(raw)
		if perr != nil || ms <= 0 {
			f.received.Add(1)
			f.invalid.Add(1)
			writeError(w, fmt.Errorf("netserve: bad %s %q: %w", DeadlineHeader, raw, ErrInvalid))
			return
		}
		d := time.Duration(ms) * time.Millisecond
		if d > f.cfg.MaxDeadline {
			d = f.cfg.MaxDeadline
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	res, err := f.Do(ctx, Request{Tenant: body.Tenant, Priority: prio, X: x})
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Served-By", res.Shard+"/"+res.Device)
	if res.Degraded {
		w.Header().Set("X-Degraded", "true")
	}
	json.NewEncoder(w).Encode(inferResponse{
		Probs:    rowsFromTensor(res.Probs),
		Shard:    res.Shard,
		Device:   res.Device,
		Status:   res.Status.String(),
		Degraded: res.Degraded,
		Hedged:   res.Hedged,
		Retried:  res.Retried,
		Attempts: res.Attempts,
		Cost:     res.Cost,
	})
}

// handleHealthz reports per-shard operational state; 200 while any shard is
// live, 503 once every shard is draining or the tier is closed.
func (f *Frontend) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type shardHealth struct {
		Name        string   `json:"name"`
		Draining    bool     `json:"draining"`
		InFlight    int64    `json:"in_flight"`
		Unjournaled bool     `json:"unjournaled"`
		Precision   string   `json:"precision"`
		Serving     []string `json:"serving"`
		Quarantined []string `json:"quarantined"`
		Retired     []string `json:"retired"`
	}
	statuses := f.Status()
	out := struct {
		Closed bool          `json:"closed"`
		Shards []shardHealth `json:"shards"`
	}{Closed: f.closed.Load()}
	anyLive := false
	for _, st := range statuses {
		if !st.Draining {
			anyLive = true
		}
		out.Shards = append(out.Shards, shardHealth{
			Name: st.Name, Draining: st.Draining, InFlight: st.InFlight,
			Unjournaled: st.Unjournaled, Precision: st.Precision,
			Serving: st.Serving, Quarantined: st.Quarantined, Retired: st.Retired,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if !anyLive || out.Closed {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(out)
}

// handleStats dumps the tier's lifetime counters.
func (f *Frontend) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(f.Stats())
}

// handleStatsz dumps the full telemetry surface in one scrape: the tier's
// lifetime counters, the response-granular cost table (tenant/shard/fleet,
// internally consistent by construction) and every device's live per-class
// counter snapshot (which additionally carries monitor/repair spend and the
// serving spend of abandoned hedges). Shards that lost their journal and run
// memory-only are listed under "unjournaled" so scrapers can alert on
// durability loss without parsing per-shard health.
func (f *Frontend) handleStatsz(w http.ResponseWriter, r *http.Request) {
	var unjournaled []string
	precisions := make(map[string]string)
	for _, st := range f.Status() {
		if st.Unjournaled {
			unjournaled = append(unjournaled, st.Name)
		}
		precisions[st.Name] = st.Precision
	}
	out := struct {
		Stats       Stats                                     `json:"stats"`
		Cost        CostStats                                 `json:"cost"`
		Devices     map[string]map[string]reram.CostBreakdown `json:"devices"`
		Precisions  map[string]string                         `json:"precisions"`
		Unjournaled []string                                  `json:"unjournaled,omitempty"`
	}{Stats: f.Stats(), Cost: f.CostStats(), Devices: f.DeviceCosts(), Precisions: precisions, Unjournaled: unjournaled}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// tensorFromRows validates and packs the wire input into an (N, inDim)
// batch.
func tensorFromRows(rows [][]float64, inDim int) (*tensor.Tensor, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("netserve: empty input batch: %w", ErrInvalid)
	}
	x := tensor.New(len(rows), inDim)
	data := x.Data()
	for i, row := range rows {
		if len(row) != inDim {
			return nil, fmt.Errorf("netserve: input row %d has %d values, want %d: %w",
				i, len(row), inDim, ErrInvalid)
		}
		copy(data[i*inDim:(i+1)*inDim], row)
	}
	return x, nil
}

// rowsFromTensor unpacks an (N, K) batch for the wire.
func rowsFromTensor(t *tensor.Tensor) [][]float64 {
	if t == nil {
		return nil
	}
	n, k := t.Dim(0), t.Dim(1)
	data := t.Data()
	out := make([][]float64, n)
	for i := range out {
		out[i] = append([]float64(nil), data[i*k:(i+1)*k]...)
	}
	return out
}
