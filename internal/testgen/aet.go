package testgen

import (
	"fmt"

	"reramtest/internal/dataset"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tengine"
	"reramtest/internal/tensor"
)

// AETConfig controls the adversarial-example baseline.
type AETConfig struct {
	// Epsilon is the FGSM perturbation magnitude in pixel units.
	Epsilon float64
	// Clamp bounds pixels to [0, 1] after perturbation.
	Clamp bool
}

// DefaultAETConfig matches the RRAMedy-style baseline with the commonly
// cited FGSM strength ε = 0.1. The step pushes the image across the decision
// boundary so it reliably fools the clean model — which is what an
// adversarial *test* wants — but, as the paper's sensitivity analysis
// observes, the fooled prediction is only coarsely coupled to the weights,
// so its confidence drift under small weight errors lags the purpose-built
// C-TP/O-TP patterns.
func DefaultAETConfig() AETConfig { return AETConfig{Epsilon: 0.1, Clamp: true} }

// GenerateAET reproduces the prior-art baseline [9]: m test images are drawn
// uniformly at random from pool and perturbed with the fast gradient sign
// method, x' = x + ε·sign(∇ₓ L(f(x), y)). Adversarial examples sit close to
// decision boundaries, so their outputs respond to weight errors more than
// plain images do — but, as the paper shows, far less sharply than C-TP or
// O-TP.
func GenerateAET(net *nn.Network, pool *dataset.Dataset, m int, cfg AETConfig, r *rng.RNG) *PatternSet {
	if m <= 0 || m > pool.N() {
		panic(fmt.Sprintf("testgen: GenerateAET needs 0 < m ≤ %d, got %d", pool.N(), m))
	}
	perm := r.Perm(pool.N())[:m]
	dim := pool.SampleDim()
	x := tensor.New(m, dim)
	labels := make([]int, m)
	xd, pd := x.Data(), pool.X.Data()
	for j, i := range perm {
		copy(xd[j*dim:(j+1)*dim], pd[i*dim:(i+1)*dim])
		labels[j] = pool.Y[i]
	}
	// one batched FGSM step on the copies
	grad := InputGradient(net, x, labels)
	gd := grad.Data()
	for i := range xd {
		if gd[i] > 0 {
			xd[i] += cfg.Epsilon
		} else if gd[i] < 0 {
			xd[i] -= cfg.Epsilon
		}
	}
	if cfg.Clamp {
		x.ClampInPlace(0, 1)
	}
	return &PatternSet{Name: fmt.Sprintf("aet-%s-%d", pool.Name, m), Method: "aet", X: x, Labels: labels}
}

// InputGradient returns ∇ₓ of the cross-entropy loss of net's logits against
// labels, for a whole (M, D) batch. The network's weight gradients are left
// untouched (the plan is compiled without parameter folds). The batch runs
// through a compiled train plan with an input-gradient tap, bit-identical to
// the legacy per-layer Forward/CrossEntropy/ZeroGrad/Backward sequence; the
// returned tensor is a view into the plan's workspace, valid until the plan
// is garbage-collected (it is copied by nothing here, so callers that need
// the values past their next use should Clone).
func InputGradient(net *nn.Network, x *tensor.Tensor, labels []int) *tensor.Tensor {
	eng := tengine.MustCompile(net, tengine.Options{MaxBatch: x.Dim(0), InputGrad: true, NoParamGrads: true})
	eng.ForwardBackward(x, labels)
	return eng.InputGrad()
}
