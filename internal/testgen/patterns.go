// Package testgen implements the paper's test-pattern generators — the core
// contribution of the reproduction:
//
//   - C-TP ("corner data" test patterns, §III-A): inference-set images ranked
//     by ascending standard deviation of their output logits; the flattest
//     logit vectors sit closest to all decision surfaces simultaneously and
//     flip most easily under weight errors.
//   - O-TP (optimization-based test patterns, §III-B, Algorithm 1): patterns
//     synthesised from white noise by gradient descent on the input, driven
//     to look maximally ambiguous to the clean model (uniform soft label)
//     while maximally confident to a reference fault model (hard label).
//   - AET (baseline, [9]): FGSM adversarial examples built from random test
//     images.
//
// All three return a PatternSet: a small batch of images run concurrently
// with normal traffic whose confidence drift against golden outputs reveals
// the accelerator's fault status.
package testgen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"reramtest/internal/tensor"
)

// PatternSet is a named batch of test patterns, stored like a dataset batch:
// (M, D) with D the flattened image size.
type PatternSet struct {
	Name   string
	Method string // "ctp", "otp", "aet", "plain"
	X      *tensor.Tensor
	// Labels holds per-pattern metadata: for C-TP/AET the source image's
	// true class, for O-TP the hard-label target class.
	Labels []int
}

// M returns the number of patterns.
func (p *PatternSet) M() int { return p.X.Dim(0) }

// Dim returns the flattened pattern size.
func (p *PatternSet) Dim() int { return p.X.Dim(1) }

// Head returns a PatternSet containing only the first m patterns (sharing
// no storage with the original).
func (p *PatternSet) Head(m int) *PatternSet {
	if m > p.M() {
		m = p.M()
	}
	d := p.Dim()
	x := tensor.New(m, d)
	copy(x.Data(), p.X.Data()[:m*d])
	return &PatternSet{Name: p.Name, Method: p.Method, X: x, Labels: append([]int(nil), p.Labels[:m]...)}
}

const patternMagic = 0x52525450 // "RRTP" — ReRam Test Patterns

// Save writes the pattern set to path in a little-endian binary format.
func (p *PatternSet) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("testgen: creating %s: %w", path, err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := binary.Write(w, binary.LittleEndian, uint32(patternMagic)); err != nil {
		return err
	}
	for _, s := range []string{p.Name, p.Method} {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, s); err != nil {
			return err
		}
	}
	m, d := p.M(), p.Dim()
	for _, v := range []uint32{uint32(m), uint32(d)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, y := range p.Labels {
		if err := binary.Write(w, binary.LittleEndian, int32(y)); err != nil {
			return err
		}
	}
	buf := make([]byte, 8*p.X.Len())
	for i, v := range p.X.Data() {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	return w.Flush()
}

// LoadPatternSet reads a pattern set written by Save.
func LoadPatternSet(path string) (*PatternSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("testgen: opening %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("testgen: reading %s: %w", path, err)
	}
	if magic != patternMagic {
		return nil, fmt.Errorf("testgen: %s has magic 0x%08x, want 0x%08x", path, magic, patternMagic)
	}
	readStr := func() (string, error) {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		if n > 1<<16 {
			return "", fmt.Errorf("string length %d implausibly large", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	p := &PatternSet{}
	if p.Name, err = readStr(); err != nil {
		return nil, fmt.Errorf("testgen: reading %s: %w", path, err)
	}
	if p.Method, err = readStr(); err != nil {
		return nil, fmt.Errorf("testgen: reading %s: %w", path, err)
	}
	var m, d uint32
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
		return nil, err
	}
	p.Labels = make([]int, m)
	for i := range p.Labels {
		var y int32
		if err := binary.Read(r, binary.LittleEndian, &y); err != nil {
			return nil, err
		}
		p.Labels[i] = int(y)
	}
	buf := make([]byte, 8*int(m)*int(d))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("testgen: reading %s data: %w", path, err)
	}
	p.X = tensor.New(int(m), int(d))
	xd := p.X.Data()
	for i := range xd {
		xd[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return p, nil
}

// WritePGM dumps pattern i as a binary PGM grayscale image (for multichannel
// patterns the channel mean is written), reproducing the paper's Fig. 2
// visualisation of O-TP noise patterns.
func (p *PatternSet) WritePGM(path string, i, c, h, w int) error {
	if i < 0 || i >= p.M() {
		return fmt.Errorf("testgen: pattern index %d out of range [0,%d)", i, p.M())
	}
	if c*h*w != p.Dim() {
		return fmt.Errorf("testgen: shape %dx%dx%d does not match pattern dim %d", c, h, w, p.Dim())
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("testgen: creating %s: %w", path, err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", w, h)
	data := p.X.Data()[i*p.Dim() : (i+1)*p.Dim()]
	plane := h * w
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			v := 0.0
			for ch := 0; ch < c; ch++ {
				v += data[ch*plane+py*w+px]
			}
			v /= float64(c)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			if err := bw.WriteByte(byte(v*255 + 0.5)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
