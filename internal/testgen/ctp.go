package testgen

import (
	"fmt"
	"sort"

	"reramtest/internal/dataset"
	"reramtest/internal/engine"
	"reramtest/internal/nn"
	"reramtest/internal/tensor"
)

// SelectCTP picks the paper's "corner data" test patterns from pool: the m
// images whose output logit vectors have the smallest standard deviation
// under net (§III-A). A flat logit vector means the input sits at a similar
// distance from every decision surface, so any weight error flips its class
// (or shifts its confidences) without directional bias.
//
// The paper's ideal needs only m = n (the class count) patterns, but because
// real inference sets rarely contain perfectly equidistant corner data it
// selects m ≥ n; the evaluation uses m = 50.
func SelectCTP(net *nn.Network, pool *dataset.Dataset, m int) *PatternSet {
	return SelectCTPAt(net, pool, m, tensor.F64)
}

// SelectCTPAt is SelectCTP with the ranking sweep compiled on an explicit
// precision tier. Scoring is a ranking, not a readout — a bounded-ULP logit
// is more than accurate enough to order corner data — so the F32 tier is a
// safe speedup here; it stays opt-in because the chosen pattern set can
// differ at ties. The reference selection everywhere else in the repo keeps
// tensor.F64.
func SelectCTPAt(net *nn.Network, pool *dataset.Dataset, m int, prec tensor.Precision) *PatternSet {
	if m <= 0 || m > pool.N() {
		panic(fmt.Sprintf("testgen: SelectCTP needs 0 < m ≤ %d, got %d", pool.N(), m))
	}
	idx, _ := RankByLogitStdAt(net, pool, prec)
	chosen := idx[:m]
	dim := pool.SampleDim()
	x := tensor.New(m, dim)
	labels := make([]int, m)
	xd, pd := x.Data(), pool.X.Data()
	for j, i := range chosen {
		copy(xd[j*dim:(j+1)*dim], pd[i*dim:(i+1)*dim])
		labels[j] = pool.Y[i]
	}
	return &PatternSet{Name: fmt.Sprintf("ctp-%s-%d", pool.Name, m), Method: "ctp", X: x, Labels: labels}
}

// RankByLogitStd scores every pool image by the standard deviation of its
// logit vector under net and returns sample indices sorted ascending (most
// "corner-like" first) together with the per-index scores in that order.
func RankByLogitStd(net *nn.Network, pool *dataset.Dataset) (idx []int, score []float64) {
	return RankByLogitStdAt(net, pool, tensor.F64)
}

// RankByLogitStdAt is RankByLogitStd with the sweep compiled on an explicit
// precision tier (see SelectCTPAt). A network the tier cannot compile falls
// back to the reference path rather than failing the scan.
func RankByLogitStdAt(net *nn.Network, pool *dataset.Dataset, prec tensor.Precision) (idx []int, score []float64) {
	n := pool.N()
	dim := pool.SampleDim()
	scores := make([]float64, n)
	const batch = 64
	pd := pool.X.Data()
	// sweep the pool through a batch-inference plan: on the F64 tier the
	// same bits as net.Forward, but the whole scan reuses one set of
	// workspaces
	eng, engErr := engine.Compile(net, engine.Options{MaxBatch: batch, Precision: prec})
	for s := 0; s < n; s += batch {
		e := s + batch
		if e > n {
			e = n
		}
		x := tensor.FromSlice(pd[s*dim:e*dim], e-s, dim)
		var logits *tensor.Tensor
		if engErr == nil {
			logits, _ = eng.ForwardBatch(nil, x) // e > s: never empty
		} else {
			logits = net.Forward(x)
		}
		k := logits.Dim(1)
		ld := logits.Data()
		for j := 0; j < e-s; j++ {
			row := tensor.FromSlice(ld[j*k:(j+1)*k], k)
			scores[s+j] = row.Std()
		}
	}
	idx = make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ordered := make([]float64, n)
	for j, i := range idx {
		ordered[j] = scores[i]
	}
	return idx, ordered
}

// SelectPlain picks the first m images of pool unchanged — the "original
// testing images" baseline the paper contrasts against in Fig. 8.
func SelectPlain(pool *dataset.Dataset, m int) *PatternSet {
	if m > pool.N() {
		m = pool.N()
	}
	dim := pool.SampleDim()
	x := tensor.New(m, dim)
	copy(x.Data(), pool.X.Data()[:m*dim])
	return &PatternSet{
		Name: fmt.Sprintf("plain-%s-%d", pool.Name, m), Method: "plain",
		X: x, Labels: append([]int(nil), pool.Y[:m]...),
	}
}
