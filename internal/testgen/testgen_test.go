package testgen

import (
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"reramtest/internal/dataset"
	"reramtest/internal/faults"
	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// trainedToy returns a small trained classifier and its datasets — shared by
// the generator tests, trained once.
func trainedToy(t *testing.T) (*nn.Network, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.DefaultDigitsConfig(600)
	train := dataset.SynthDigits(100, cfg)
	net := models.MLP(rng.New(3), train.SampleDim(), []int{48}, 10)
	sgd := opt.NewSGD(net.Params(), 0.05, 0.9, 0)
	r := rng.New(4)
	for epoch := 0; epoch < 4; epoch++ {
		for _, b := range train.Batches(32, r) {
			logits := net.Forward(b.X)
			_, grad := nn.CrossEntropy(logits, b.Y)
			net.ZeroGrad()
			net.Backward(grad)
			sgd.Step()
		}
	}
	return net, dataset.SynthDigits(101, dataset.DefaultDigitsConfig(300))
}

func TestRankByLogitStdSorted(t *testing.T) {
	net, pool := trainedToy(t)
	idx, scores := RankByLogitStd(net, pool)
	if len(idx) != pool.N() || len(scores) != pool.N() {
		t.Fatalf("rank lengths %d/%d", len(idx), len(scores))
	}
	if !sort.Float64sAreSorted(scores) {
		t.Fatal("scores not ascending")
	}
	// idx must be a permutation
	seen := make([]bool, pool.N())
	for _, i := range idx {
		if seen[i] {
			t.Fatal("duplicate index in ranking")
		}
		seen[i] = true
	}
}

func TestSelectCTPPicksFlattestLogits(t *testing.T) {
	net, pool := trainedToy(t)
	p := SelectCTP(net, pool, 10)
	if p.M() != 10 || p.Method != "ctp" {
		t.Fatalf("bad pattern set %+v", p)
	}
	// every selected pattern's logit std must be ≤ the pool median
	_, scores := RankByLogitStd(net, pool)
	median := scores[len(scores)/2]
	for i := 0; i < p.M(); i++ {
		x := tensor.FromSlice(p.X.Data()[i*p.Dim():(i+1)*p.Dim()], 1, p.Dim())
		logits := net.Forward(x)
		std := tensor.FromSlice(logits.Data(), logits.Len()).Std()
		if std > median {
			t.Fatalf("C-TP pattern %d has logit std %v above pool median %v", i, std, median)
		}
	}
}

func TestSelectCTPBadCountPanics(t *testing.T) {
	net, pool := trainedToy(t)
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 did not panic")
		}
	}()
	SelectCTP(net, pool, 0)
}

func TestGenerateAETPerturbationBounded(t *testing.T) {
	net, pool := trainedToy(t)
	cfg := AETConfig{Epsilon: 0.08, Clamp: true}
	p := GenerateAET(net, pool, 20, cfg, rng.New(7))
	if p.M() != 20 || p.Method != "aet" {
		t.Fatalf("bad AET set %+v", p)
	}
	if p.X.Min() < 0 || p.X.Max() > 1 {
		t.Fatal("AET patterns left the pixel box")
	}
	// each pattern differs from SOME source image by at most ε per pixel;
	// verify against its recorded source label's consistency instead: the
	// perturbation magnitude per pixel never exceeds ε.
	// Reconstruct: the pattern must be within ε (plus clamping) of an
	// original pool image. Check min-L∞ against the whole pool.
	dim := pool.SampleDim()
	for i := 0; i < 3; i++ { // spot-check a few patterns
		pd := p.X.Data()[i*dim : (i+1)*dim]
		best := math.Inf(1)
		for s := 0; s < pool.N(); s++ {
			sd := pool.X.Data()[s*dim : (s+1)*dim]
			worst := 0.0
			for j := range pd {
				if d := math.Abs(pd[j] - sd[j]); d > worst {
					worst = d
				}
			}
			if worst < best {
				best = worst
			}
		}
		if best > cfg.Epsilon+1e-9 {
			t.Fatalf("AET pattern %d is %.4f from nearest source, ε=%v", i, best, cfg.Epsilon)
		}
	}
}

func TestGenerateAETDeterministic(t *testing.T) {
	net, pool := trainedToy(t)
	a := GenerateAET(net, pool, 5, DefaultAETConfig(), rng.New(9))
	b := GenerateAET(net, pool, 5, DefaultAETConfig(), rng.New(9))
	if !a.X.Equal(b.X) {
		t.Fatal("AET not deterministic for fixed seed")
	}
}

func TestGenerateOTPDrivesCleanModelToUniform(t *testing.T) {
	net, _ := trainedToy(t)
	ref := faults.MakeFaulty(net, faults.LogNormal{Sigma: 0.4}, 11)
	cfg := DefaultOTPConfig()
	cfg.MaxIters = 400
	p, res := GenerateOTP(net, ref, 10, cfg, rng.New(13))
	if p.M() != 10 || p.Method != "otp" {
		t.Fatalf("bad OTP set %+v", p)
	}
	if p.X.Min() < 0 || p.X.Max() > 1 {
		t.Fatal("OTP patterns left the pixel box")
	}
	// the clean model must be far more confused by OTP than by random noise
	noise := tensor.RandUniform(rng.New(14), 0, 1, 10, p.Dim())
	if flat, rand := meanProbStd(net, p.X), meanProbStd(net, noise); flat >= rand/2 {
		t.Fatalf("OTP flatness %v not clearly below random-noise flatness %v", flat, rand)
	}
	if res.Iters == 0 {
		t.Fatal("no iterations recorded")
	}
	if len(res.CleanStd) != 10 || len(res.FaultL1) != 10 {
		t.Fatalf("result stats lengths %d/%d", len(res.CleanStd), len(res.FaultL1))
	}
}

func TestGenerateOTPLabelsCycleClasses(t *testing.T) {
	net, _ := trainedToy(t)
	ref := faults.MakeFaulty(net, faults.LogNormal{Sigma: 0.4}, 15)
	cfg := DefaultOTPConfig()
	cfg.MaxIters = 30
	cfg.PerClass = 2
	p, _ := GenerateOTP(net, ref, 10, cfg, rng.New(17))
	if p.M() != 20 {
		t.Fatalf("PerClass=2 over 10 classes gave %d patterns", p.M())
	}
	for i, y := range p.Labels {
		if y != i%10 {
			t.Fatalf("label[%d]=%d, want %d", i, y, i%10)
		}
	}
}

func meanProbStd(net *nn.Network, x *tensor.Tensor) float64 {
	probs := nn.Softmax(net.Forward(x))
	m, k := probs.Dim(0), probs.Dim(1)
	sum := 0.0
	for i := 0; i < m; i++ {
		sum += tensor.FromSlice(probs.Data()[i*k:(i+1)*k], k).Std()
	}
	return sum / float64(m)
}

func TestSelectPlain(t *testing.T) {
	_, pool := trainedToy(t)
	p := SelectPlain(pool, 7)
	if p.M() != 7 || p.Method != "plain" {
		t.Fatalf("bad plain set %+v", p)
	}
	if !tensor.FromSlice(p.X.Data(), 7*p.Dim()).Equal(tensor.FromSlice(pool.X.Data()[:7*p.Dim()], 7*p.Dim())) {
		t.Fatal("plain patterns differ from pool head")
	}
}

func TestPatternSetHead(t *testing.T) {
	_, pool := trainedToy(t)
	p := SelectPlain(pool, 10)
	h := p.Head(4)
	if h.M() != 4 || len(h.Labels) != 4 {
		t.Fatalf("Head(4) gave %d patterns", h.M())
	}
	h.X.Fill(0)
	if p.X.Sum() == 0 {
		t.Fatal("Head shares storage")
	}
	if big := p.Head(99); big.M() != 10 {
		t.Fatalf("Head(99) of 10 gave %d", big.M())
	}
}

func TestPatternSetSaveLoadRoundTrip(t *testing.T) {
	_, pool := trainedToy(t)
	p := SelectPlain(pool, 5)
	p.Labels = []int{4, 3, 2, 1, 0}
	path := filepath.Join(t.TempDir(), "p.bin")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	q, err := LoadPatternSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Method != p.Method {
		t.Fatalf("metadata mismatch: %q/%q", q.Name, q.Method)
	}
	if !q.X.Equal(p.X) {
		t.Fatal("pattern data mismatch after round trip")
	}
	for i := range p.Labels {
		if q.Labels[i] != p.Labels[i] {
			t.Fatal("labels mismatch after round trip")
		}
	}
}

func TestLoadPatternSetRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(path, []byte("not a pattern set"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPatternSet(path); err == nil {
		t.Fatal("garbage file loaded without error")
	}
}

func TestWritePGM(t *testing.T) {
	_, pool := trainedToy(t)
	p := SelectPlain(pool, 2)
	path := filepath.Join(t.TempDir(), "img.pgm")
	if err := p.WritePGM(path, 0, 1, 28, 28); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:2]) != "P5" {
		t.Fatalf("PGM magic %q", data[:2])
	}
	// header + 784 pixel bytes
	if len(data) < 784 {
		t.Fatalf("PGM too small: %d bytes", len(data))
	}
	if err := p.WritePGM(path, 5, 1, 28, 28); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := p.WritePGM(path, 0, 3, 28, 28); err == nil {
		t.Fatal("wrong shape accepted")
	}
}

func TestInputGradientMatchesNumeric(t *testing.T) {
	net, pool := trainedToy(t)
	x := pool.Input(0).Clone()
	labels := []int{pool.Y[0]}
	grad := InputGradient(net, x, labels)
	xd := x.Data()
	const h = 1e-6
	for _, i := range []int{0, 100, 400, 783} {
		orig := xd[i]
		xd[i] = orig + h
		lp, _ := nn.CrossEntropy(net.Forward(x), labels)
		xd[i] = orig - h
		lm, _ := nn.CrossEntropy(net.Forward(x), labels)
		xd[i] = orig
		want := (lp - lm) / (2 * h)
		if got := grad.Data()[i]; math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("input grad[%d]=%v, numeric %v", i, got, want)
		}
	}
}
