package testgen

import (
	"math"
	"testing"

	"reramtest/internal/faults"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// legacyOTP replicates Algorithm 1 as it ran before the training engine:
// layer-wise Forward/ZeroGrad/Backward per term, fresh tensors every
// iteration, convergence statistics through tensor.Std on row views. It is
// the reference arm for the engine-migration bit-identity gate.
func legacyOTP(clean, faulty *nn.Network, classes int, cfg OTPConfig, r *rng.RNG) (*tensor.Tensor, OTPResult) {
	m := classes * cfg.PerClass
	x := tensor.RandUniform(r, 0, 1, m, clean.InDim())
	labels := make([]int, m)
	for j := range labels {
		labels[j] = j % classes
	}
	soft := nn.UniformLabels(m, classes)
	hard := nn.OneHot(labels, classes)

	res := OTPResult{CleanStd: make([]float64, m), FaultL1: make([]float64, m)}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		zClean := clean.Forward(x)
		loss1, g1 := nn.SoftCrossEntropy(zClean, soft)
		clean.ZeroGrad()
		gx1 := clean.Backward(g1)

		zFault := faulty.Forward(x)
		loss2, g2 := nn.SoftCrossEntropy(zFault, hard)
		faulty.ZeroGrad()
		gx2 := faulty.Backward(g2)

		xd, d1, d2 := x.Data(), gx1.Data(), gx2.Data()
		for i := range xd {
			xd[i] -= cfg.LR * (cfg.Alpha*d1[i] + (1-cfg.Alpha)*d2[i])
			if xd[i] < 0 {
				xd[i] = 0
			} else if xd[i] > 1 {
				xd[i] = 1
			}
		}
		res.Iters = iter
		res.FinalLoss = cfg.Alpha*loss1 + (1-cfg.Alpha)*loss2

		pClean := nn.Softmax(zClean)
		pFault := nn.Softmax(zFault)
		cd, fd, hd := pClean.Data(), pFault.Data(), hard.Data()
		ok := true
		for j := 0; j < m; j++ {
			row := tensor.FromSlice(cd[j*classes:(j+1)*classes], classes)
			res.CleanStd[j] = row.Std()
			l1 := 0.0
			for c := 0; c < classes; c++ {
				l1 += math.Abs(fd[j*classes+c] - hd[j*classes+c])
			}
			l1 /= float64(classes)
			res.FaultL1[j] = l1
			if res.CleanStd[j] >= cfg.Eps1 || l1 >= cfg.Eps2 {
				ok = false
			}
		}
		if ok {
			res.Converged = true
			break
		}
	}
	return x, res
}

// TestGenerateOTPMatchesLegacyAlgorithm: the engine-backed GenerateOTP must
// retrace the legacy optimization step for step — identical patterns,
// iteration count, convergence flag, loss and per-pattern statistics, down to
// the last bit. The legacy arm reads the convergence softmax off the logits
// tensor the network returned; the engine arm reads it off the plan's logit
// workspace — both see the same bits, so the loop breaks on the same
// iteration.
func TestGenerateOTPMatchesLegacyAlgorithm(t *testing.T) {
	net, _ := trainedToy(t)
	cfg := DefaultOTPConfig()
	cfg.MaxIters = 60 // enough iterations to expose any drift, fast enough for CI
	legacyClean := net.Clone()
	legacyFault := faults.MakeFaulty(net, faults.LogNormal{Sigma: 0.4}, 33)
	engineClean := net.Clone()
	engineFault := faults.MakeFaulty(net, faults.LogNormal{Sigma: 0.4}, 33)

	wantX, wantRes := legacyOTP(legacyClean, legacyFault, 10, cfg, rng.New(55))
	got, gotRes := GenerateOTP(engineClean, engineFault, 10, cfg, rng.New(55))

	if !got.X.Equal(wantX) {
		t.Fatal("engine-backed OTP patterns diverge from legacy algorithm")
	}
	if gotRes.Iters != wantRes.Iters || gotRes.Converged != wantRes.Converged {
		t.Fatalf("trajectory diverged: got %d iters (conv=%v), legacy %d (conv=%v)",
			gotRes.Iters, gotRes.Converged, wantRes.Iters, wantRes.Converged)
	}
	if math.Float64bits(gotRes.FinalLoss) != math.Float64bits(wantRes.FinalLoss) {
		t.Errorf("final loss %v != legacy %v", gotRes.FinalLoss, wantRes.FinalLoss)
	}
	for j := range wantRes.CleanStd {
		if math.Float64bits(gotRes.CleanStd[j]) != math.Float64bits(wantRes.CleanStd[j]) {
			t.Errorf("CleanStd[%d] %v != legacy %v", j, gotRes.CleanStd[j], wantRes.CleanStd[j])
		}
		if math.Float64bits(gotRes.FaultL1[j]) != math.Float64bits(wantRes.FaultL1[j]) {
			t.Errorf("FaultL1[%d] %v != legacy %v", j, gotRes.FaultL1[j], wantRes.FaultL1[j])
		}
	}
}
