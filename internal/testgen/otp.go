package testgen

import (
	"fmt"
	"math"

	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tengine"
	"reramtest/internal/tensor"
)

// OTPConfig holds the hyper-parameters of Algorithm 1.
type OTPConfig struct {
	// Alpha weighs the clean-model soft-label term against the fault-model
	// hard-label term in Eq. 1; the paper uses 0.5 (equal importance).
	Alpha float64
	// Eps1 bounds the standard deviation of the clean model's output
	// confidences: below it the clean model is "extremely confused".
	Eps1 float64
	// Eps2 bounds the L1 distance between the fault model's confidences and
	// the hard target: below it the fault model is "very confident".
	Eps2 float64
	// LR is the gradient-descent step size on the input.
	LR float64
	// MaxIters bounds the optimization loop.
	MaxIters int
	// PerClass is k, the number of patterns per class; the paper finds k = 1
	// suffices, giving n patterns for an n-class problem.
	PerClass int
}

// DefaultOTPConfig returns the paper's published hyper-parameters
// (α = 0.5, ε₁ = ε₂ = 1e-3) with a step size and iteration budget that
// converge on both evaluation models.
func DefaultOTPConfig() OTPConfig {
	return OTPConfig{Alpha: 0.5, Eps1: 1e-3, Eps2: 1e-3, LR: 0.5, MaxIters: 600, PerClass: 1}
}

// OTPResult reports how Algorithm 1 converged.
type OTPResult struct {
	Iters     int       // iterations actually run
	Converged bool      // both ε constraints met before MaxIters
	CleanStd  []float64 // final per-pattern std of clean-model confidences
	FaultL1   []float64 // final per-pattern L1 distance to the hard target
	FinalLoss float64   // final combined Eq. 1 loss
}

// GenerateOTP runs Algorithm 1: starting from uniform random noise, it
// optimizes k·n input patterns so the clean model outputs a near-uniform
// confidence vector on each (no bias toward any weights, hence free to
// respond to any error) while the reference fault model confidently assigns
// pattern (c, j) to class c (accumulated error pushes confidences toward a
// hard decision). Pattern updates are plain gradient descent on the combined
// cross-entropy loss of Eq. 1, clamped to the valid pixel box [0, 1].
//
// faulty is a representative fault model f_{w'} (the paper derives it from
// the clean model with its programming-variation injector); it steers the
// patterns toward directions in which accumulating weight errors move the
// outputs, and is needed only at generation time in the cloud.
func GenerateOTP(clean, faulty *nn.Network, classes int, cfg OTPConfig, r *rng.RNG) (*PatternSet, OTPResult) {
	if classes <= 1 {
		panic(fmt.Sprintf("testgen: GenerateOTP needs ≥2 classes, got %d", classes))
	}
	if cfg.PerClass <= 0 {
		cfg.PerClass = 1
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 600
	}
	m := classes * cfg.PerClass
	dim := clean.InDim()

	// line 4 of Algorithm 1: random-noise initial patterns in the input box
	x := tensor.RandUniform(r, 0, 1, m, dim)
	labels := make([]int, m)
	for j := range labels {
		labels[j] = j % classes
	}
	soft := nn.UniformLabels(m, classes) // l: equal confidence for all classes
	hard := nn.OneHot(labels, classes)   // l': one hard label per pattern

	// the optimization loop runs up to 600 full forward+backward iterations;
	// compiled train plans with an input-gradient tap keep every one of them
	// allocation-free and bit-identical to the legacy per-layer path
	ce := tengine.MustCompile(clean, tengine.Options{MaxBatch: m, InputGrad: true, NoParamGrads: true})
	fe := tengine.MustCompile(faulty, tengine.Options{MaxBatch: m, InputGrad: true, NoParamGrads: true})
	pClean := tensor.New(m, classes) // reused softmax buffers for convergence
	pFault := tensor.New(m, classes)

	res := OTPResult{CleanStd: make([]float64, m), FaultL1: make([]float64, m)}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		// term 1: clean model vs uniform soft labels (m > 0: never empty)
		loss1, _ := ce.ForwardBackwardSoft(x, soft)
		// term 2: fault model vs hard labels
		loss2, _ := fe.ForwardBackwardSoft(x, hard)

		// combined Eq. 1 gradient step, projected back into the pixel box
		xd, d1, d2 := x.Data(), ce.InputGrad().Data(), fe.InputGrad().Data()
		for i := range xd {
			xd[i] -= cfg.LR * (cfg.Alpha*d1[i] + (1-cfg.Alpha)*d2[i])
			if xd[i] < 0 {
				xd[i] = 0
			} else if xd[i] > 1 {
				xd[i] = 1
			}
		}
		res.Iters = iter
		res.FinalLoss = cfg.Alpha*loss1 + (1-cfg.Alpha)*loss2

		// line 16: convergence when the clean outputs are flat and the fault
		// outputs match the hard target
		pClean.CopyFrom(ce.Logits())
		nn.SoftmaxInPlace(pClean)
		pFault.CopyFrom(fe.Logits())
		nn.SoftmaxInPlace(pFault)
		if converged(pClean, pFault, hard, classes, cfg, &res) {
			res.Converged = true
			break
		}
	}
	name := fmt.Sprintf("otp-%s-%d", clean.Name(), m)
	return &PatternSet{Name: name, Method: "otp", X: x, Labels: labels}, res
}

// converged evaluates the two ε constraints on softmax confidences and
// records the per-pattern statistics in res. The per-row standard deviation
// is computed inline with tensor.Std's exact loop (mean, then population
// variance) so the check stays allocation-free without moving a bit.
func converged(pClean, pFault, hard *tensor.Tensor, classes int, cfg OTPConfig, res *OTPResult) bool {
	m := pClean.Dim(0)
	cd, fd, hd := pClean.Data(), pFault.Data(), hard.Data()
	ok := true
	for j := 0; j < m; j++ {
		row := cd[j*classes : (j+1)*classes]
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		mean := sum / float64(classes)
		sq := 0.0
		for _, v := range row {
			d := v - mean
			sq += d * d
		}
		res.CleanStd[j] = math.Sqrt(sq / float64(classes))
		l1 := 0.0
		for c := 0; c < classes; c++ {
			l1 += math.Abs(fd[j*classes+c] - hd[j*classes+c])
		}
		l1 /= float64(classes)
		res.FaultL1[j] = l1
		if res.CleanStd[j] >= cfg.Eps1 || l1 >= cfg.Eps2 {
			ok = false
		}
	}
	return ok
}
