package repair

import (
	"math"
	"strings"
	"testing"

	"reramtest/internal/dataset"
	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/rng"
)

// legacyRetrain replicates the pre-engine RetrainAround loop verbatim:
// slice-of-batches iteration, layer-wise Forward/Backward, freeze, unfused
// Step, restore. Reference arm for the engine-migration bit-identity gate.
func legacyRetrain(net *nn.Network, stuck StuckMask, train *dataset.Dataset, cfg RetrainConfig) float64 {
	r := rng.New(cfg.Seed)
	sgd := opt.NewSGD(net.Params(), cfg.LR, cfg.Momentum, 0)
	restoreStuck := SnapshotStuck(net, stuck)
	net.SetTraining(true)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, b := range train.Batches(cfg.BatchSize, r) {
			logits := net.Forward(b.X)
			_, grad := nn.CrossEntropy(logits, b.Y)
			net.ZeroGrad()
			net.Backward(grad)
			freezeStuckGradients(net, stuck)
			sgd.Step()
			restoreStuck()
		}
	}
	net.SetTraining(false)
	return net.Accuracy(train.X, train.Y, 64)
}

// maskSomeWeights marks ~frac of every weight tensor as stuck at value v.
func maskSomeWeights(net *nn.Network, frac, v float64, seed int64) StuckMask {
	r := rng.New(seed)
	stuck := make(StuckMask)
	for _, p := range net.Params() {
		mask := make([]bool, p.Value.Len())
		if strings.HasSuffix(p.Name, ".weight") {
			d := p.Value.Data()
			for j := range d {
				if r.Bernoulli(frac) {
					d[j] = v
					mask[j] = true
				}
			}
		}
		stuck[p.Name] = mask
	}
	return stuck
}

// TestRetrainEngineMatchesLegacy: RetrainAround on the compiled engine must
// reproduce the legacy loop's final weights and accuracy bit-for-bit,
// including the freeze→step→restore interaction with momentum.
func TestRetrainEngineMatchesLegacy(t *testing.T) {
	train := dataset.SynthDigits(80, dataset.DefaultDigitsConfig(64))
	build := func() (*nn.Network, StuckMask) {
		net := buildToyNet(train)
		stuck := maskSomeWeights(net, 0.15, 0, 21)
		return net, stuck
	}
	cfg := RetrainConfig{Epochs: 2, BatchSize: 16, LR: 0.01, Momentum: 0.9, Seed: 17}
	legacyNet, legacyStuck := build()
	subjectNet, subjectStuck := build()
	wantAcc := legacyRetrain(legacyNet, legacyStuck, train, cfg)
	gotAcc := RetrainAround(subjectNet, subjectStuck, train, nil, cfg)
	if math.Float64bits(wantAcc) != math.Float64bits(gotAcc) {
		t.Errorf("accuracy %v != legacy %v", gotAcc, wantAcc)
	}
	lp, sp := legacyNet.Params(), subjectNet.Params()
	for i := range lp {
		if !sp[i].Value.Equal(lp[i].Value) {
			t.Errorf("weights of %s diverge from legacy retrain loop", lp[i].Name)
		}
	}
}

func buildToyNet(train *dataset.Dataset) *nn.Network {
	return models.MLP(rng.New(12), train.SampleDim(), []int{32}, train.Classes)
}

// TestRetrainStuckFrozenUnderMomentum is the regression the freeze/restore
// sandwich exists for: with momentum enabled, velocity accumulated before a
// cell's gradient is zeroed could still drift the weight on later steps. The
// stuck cells carry a distinctive nonzero fault value and must hold it to the
// exact bit through a multi-epoch engine-driven retrain.
func TestRetrainStuckFrozenUnderMomentum(t *testing.T) {
	train := dataset.SynthDigits(81, dataset.DefaultDigitsConfig(64))
	net := buildToyNet(train)
	const faultVal = 0.4375 // exactly representable, unmistakably nonzero
	stuck := maskSomeWeights(net, 0.2, faultVal, 22)
	cfg := RetrainConfig{Epochs: 3, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 5}
	RetrainAround(net, stuck, train, nil, cfg)
	frozen, moved := 0, 0
	for _, p := range net.Params() {
		mask := stuck[p.Name]
		d := p.Value.Data()
		for j, s := range mask {
			if !s {
				continue
			}
			frozen++
			if d[j] != faultVal {
				moved++
			}
		}
	}
	if frozen == 0 {
		t.Fatal("mask marked no cells; test is vacuous")
	}
	if moved != 0 {
		t.Fatalf("%d of %d stuck cells drifted off their fault value under momentum", moved, frozen)
	}
}
