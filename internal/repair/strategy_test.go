package repair

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"reramtest/internal/dataset"
	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
)

func TestDiagnoseStuckRejectsBadTolerance(t *testing.T) {
	net := models.MLP(rng.New(11), 8, nil, 3)
	accel := reram.NewAccelerator(net, idealConfig(), 12)
	for _, tol := range []float64{0, -0.5} {
		mask, err := DiagnoseStuck(accel, net, tol)
		if mask != nil || err == nil {
			t.Fatalf("tol=%g: want nil mask + error, got mask=%v err=%v", tol, mask, err)
		}
		var de *DiagnosisError
		if !errors.As(err, &de) || de.Reason != "tolerance" {
			t.Fatalf("tol=%g: want *DiagnosisError{tolerance}, got %v", tol, err)
		}
		if !IsTyped(err) {
			t.Fatalf("tol=%g: diagnosis error must count as typed", tol)
		}
	}
}

func TestDiagnoseStuckRejectsDegenerateLayer(t *testing.T) {
	net := models.MLP(rng.New(13), 8, []int{6}, 3)
	accel := reram.NewAccelerator(net, idealConfig(), 14)
	// an all-zero weight matrix collapses the stuck threshold to zero: every
	// cell would read stuck and the mask would be garbage
	var zeroed string
	for _, p := range net.Params() {
		if strings.HasSuffix(p.Name, ".weight") {
			p.Value.Zero()
			zeroed = p.Name
			break
		}
	}
	mask, err := DiagnoseStuck(accel, net, 0.25)
	if mask != nil || err == nil {
		t.Fatalf("want nil mask + error for degenerate layer, got mask=%v err=%v", mask, err)
	}
	var de *DiagnosisError
	if !errors.As(err, &de) || de.Reason != "degenerate" || de.Param != zeroed {
		t.Fatalf("want *DiagnosisError{degenerate, %s}, got %v", zeroed, err)
	}
	if !IsTyped(err) {
		t.Fatal("degenerate-layer error must count as typed")
	}
}

func TestDiagnoseStuckAllowsZeroBiases(t *testing.T) {
	// freshly-initialised Dense biases are all-zero by construction; they
	// live in digital logic and must not trip the degenerate-layer check
	net := models.MLP(rng.New(15), 8, []int{6}, 3)
	accel := reram.NewAccelerator(net, idealConfig(), 16)
	if _, err := DiagnoseStuck(accel, net, 0.25); err != nil {
		t.Fatalf("zero biases misdiagnosed as degenerate: %v", err)
	}
}

// cancelOnWrite cancels a context the first time anything is logged —
// RetrainAroundCtx logs at the end of each epoch, so the cancellation lands
// mid-retrain, between epochs.
type cancelOnWrite struct{ cancel context.CancelFunc }

func (c *cancelOnWrite) Write(p []byte) (int, error) {
	c.cancel()
	return len(p), nil
}

func TestRetrainAroundCtxCancelRestoresState(t *testing.T) {
	// net with a dropout layer so training mode is observable: in training
	// mode two forwards of the same input differ (fresh Bernoulli masks);
	// in eval mode they are bit-identical
	r := rng.New(21)
	train := dataset.SynthDigits(60, dataset.DefaultDigitsConfig(400))
	net := nn.NewNetwork("toy", train.SampleDim(),
		nn.NewDense("fc1", r, train.SampleDim(), 24),
		nn.NewReLU("relu1"),
		nn.NewDropout("drop1", r.Split(), 0.3),
		nn.NewDense("fc2", r, 24, 10),
	)
	sgd := opt.NewSGD(net.Params(), 0.05, 0.9, 0)
	for _, b := range train.Batches(32, rng.New(22)) {
		logits := net.Forward(b.X)
		_, grad := nn.CrossEntropy(logits, b.Y)
		net.ZeroGrad()
		net.Backward(grad)
		sgd.Step()
	}

	// damage: SA0-freeze a fifth of the first layer
	stuck := make(StuckMask)
	dr := rng.New(23)
	for _, p := range net.Params() {
		mask := make([]bool, p.Value.Len())
		if p.Name == "fc1.weight" {
			d := p.Value.Data()
			for j := range d {
				if dr.Bernoulli(0.2) {
					d[j] = 0
					mask[j] = true
				}
			}
		}
		stuck[p.Name] = mask
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := DefaultRetrainConfig()
	cfg.Epochs = 3
	cfg.Log = &cancelOnWrite{cancel: cancel} // fires after epoch 1
	acc, err := RetrainAroundCtx(ctx, net, stuck, train, nil, cfg)
	if err == nil {
		t.Fatal("canceled retrain returned nil error")
	}
	if acc != 0 {
		t.Fatalf("canceled retrain returned accuracy %v", acc)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	var se *Error
	if !errors.As(err, &se) || se.Strategy != "retrain" {
		t.Fatalf("want typed *Error{retrain}, got %v", err)
	}
	if !IsTyped(err) {
		t.Fatal("cancellation error must count as typed")
	}

	// frozen positions must hold their fault values exactly after the abort
	for _, p := range net.Params() {
		mask := stuck[p.Name]
		d := p.Value.Data()
		for j, s := range mask {
			if s && d[j] != 0 {
				t.Fatalf("cancel leaked frozen weight %s[%d]=%v", p.Name, j, d[j])
			}
		}
	}

	// and the network must be back in eval mode: dropout off ⇒ deterministic
	x := train.Head(4).X
	a := net.Forward(x).Data()
	b := net.Forward(x).Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("network left in training mode after cancel (dropout still active)")
		}
	}
}

func TestIsTyped(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, true},
		{&Error{Strategy: "scrub", Op: "scrub", Err: errors.New("x")}, true},
		{fmt.Errorf("wrap: %w", &Error{Strategy: "remap", Op: "remap", Err: errors.New("y")}), true},
		{&DiagnosisError{Reason: "tolerance"}, true},
		{context.Canceled, true},
		{context.DeadlineExceeded, true},
		{errors.New("plain"), false},
		{fmt.Errorf("untyped %d", 7), false},
	}
	for _, c := range cases {
		if got := IsTyped(c.err); got != c.want {
			t.Errorf("IsTyped(%v)=%v, want %v", c.err, got, c.want)
		}
	}
}

// fakeScrubber scripts the Scrubber surface.
type fakeScrubber struct{ scanned, rewritten int }

func (f *fakeScrubber) ScrubSoftErrors(tol float64) (int, int) { return f.scanned, f.rewritten }

func TestScrubStrategy(t *testing.T) {
	s := NewScrub(&fakeScrubber{scanned: 100, rewritten: 7}, 0.1)
	if s.Name() != "scrub" || s.Cost() != CostScrub {
		t.Fatalf("scrub identity wrong: %s/%d", s.Name(), s.Cost())
	}
	if s.Applicable(Diagnosis{Commissioning: true, Drifted: 5}) {
		t.Fatal("scrub applicable at commissioning")
	}
	if s.Applicable(Diagnosis{Status: monitor.Degraded}) {
		t.Fatal("scrub applicable with no drifted cells")
	}
	d := Diagnosis{Status: monitor.Degraded, Drifted: 5}
	if !s.Applicable(d) {
		t.Fatal("scrub not applicable to drifted cells")
	}
	rep, err := s.Apply(context.Background(), d)
	if err != nil {
		t.Fatalf("scrub apply: %v", err)
	}
	if rep.Strategy != "scrub" || rep.Cells != 7 {
		t.Fatalf("scrub report wrong: %+v", rep)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Apply(ctx, d); !IsTyped(err) || err == nil {
		t.Fatalf("canceled scrub must return a typed error, got %v", err)
	}
}

// fakeRemapper scripts the Remapper surface.
type fakeRemapper struct{ remapped, corrected, uncorrectable int }

func (f *fakeRemapper) RemapStuck(maxPerLine int, tol float64) (int, int, int) {
	return f.remapped, f.corrected, f.uncorrectable
}

func TestRemapStrategy(t *testing.T) {
	s := NewRemap(&fakeRemapper{remapped: 2, corrected: 3, uncorrectable: 1}, 4, 0.1)
	if s.Name() != "remap" || s.Cost() != CostRemap {
		t.Fatalf("remap identity wrong: %s/%d", s.Name(), s.Cost())
	}
	if s.Applicable(Diagnosis{Status: monitor.Impaired}) {
		t.Fatal("remap applicable with no stuck cells")
	}
	d := Diagnosis{Status: monitor.Impaired, Stuck: 9}
	if !s.Applicable(d) {
		t.Fatal("remap not applicable to stuck cells")
	}
	rep, err := s.Apply(context.Background(), d)
	if err != nil {
		t.Fatalf("remap apply: %v", err)
	}
	if rep.Strategy != "remap" || rep.Cells != 5 {
		t.Fatalf("remap report wrong: %+v", rep)
	}
	if !strings.Contains(rep.Detail, "1 uncorrectable") {
		t.Fatalf("remap detail missing uncorrectable count: %q", rep.Detail)
	}
}

func TestFuncStrategyAdapter(t *testing.T) {
	called := false
	s := Func{
		StrategyName: "custom",
		StrategyCost: 3,
		When:         func(d Diagnosis) bool { return d.Stuck > 0 },
		Do: func(ctx context.Context, d Diagnosis) (Report, error) {
			called = true
			return Report{Strategy: "custom"}, nil
		},
	}
	if s.Name() != "custom" || s.Cost() != 3 {
		t.Fatalf("func identity wrong: %s/%d", s.Name(), s.Cost())
	}
	if s.Applicable(Diagnosis{}) || !s.Applicable(Diagnosis{Stuck: 1}) {
		t.Fatal("func applicability not delegated to When")
	}
	if _, err := s.Apply(context.Background(), Diagnosis{Stuck: 1}); err != nil || !called {
		t.Fatalf("func apply not delegated: err=%v called=%v", err, called)
	}
}

func TestDiagnosisString(t *testing.T) {
	if got := (Diagnosis{Commissioning: true}).String(); got != "commissioning" {
		t.Fatalf("commissioning diagnosis string %q", got)
	}
	d := Diagnosis{Status: monitor.Degraded, Drifted: 3, Stuck: 2, Spares: 1}
	for _, want := range []string{"degraded", "drifted=3", "stuck=2", "spares=1"} {
		if !strings.Contains(strings.ToLower(d.String()), want) {
			t.Fatalf("diagnosis %q missing %q", d.String(), want)
		}
	}
}
