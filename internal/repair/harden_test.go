package repair

import (
	"context"
	"strings"
	"testing"

	"reramtest/internal/nn"
	"reramtest/internal/rng"
)

func TestHardenDropConnectKeepsAccuracy(t *testing.T) {
	net, train := trainToy(t)
	before := net.Accuracy(train.X, train.Y, 64)
	cfg := DefaultHardenConfig()
	cfg.Epochs = 2
	cfg.DropP = 0.15
	after := HardenDropConnect(net, train, nil, cfg)
	if after < before-0.05 {
		t.Fatalf("hardening degraded accuracy %.2f→%.2f", before, after)
	}
}

func TestHardenDropConnectImprovesFaultTolerance(t *testing.T) {
	// two copies of the same trained model: one hardened, one fine-tuned
	// without masking (same schedule, so compute is matched). Under random
	// SA0-style weight zeroing the hardened model must hold accuracy at
	// least as well on average.
	net, train := trainToy(t)
	plain := net.Clone()
	hardened := net.Clone()

	hcfg := DefaultHardenConfig()
	hcfg.Epochs = 3
	hcfg.DropP = 0.2
	HardenDropConnect(hardened, train, nil, hcfg)
	// matched-compute control: the same schedule with masking off
	pcfg := hcfg
	pcfg.DropP = 0
	HardenDropConnect(plain, train, nil, pcfg)

	// mean accuracy under random SA0 damage, averaged over mask seeds
	damagedAcc := func(model *nn.Network) float64 {
		sum := 0.0
		const trials = 5
		for trial := 0; trial < trials; trial++ {
			victim := model.Clone()
			dr := rng.New(int64(100 + trial))
			for _, p := range victim.Params() {
				if !strings.HasSuffix(p.Name, ".weight") {
					continue
				}
				d := p.Value.Data()
				for j := range d {
					if dr.Bernoulli(0.15) {
						d[j] = 0
					}
				}
			}
			sum += victim.Accuracy(train.X, train.Y, 64)
		}
		return sum / trials
	}
	ph, pp := damagedAcc(hardened), damagedAcc(plain)
	if ph < pp-0.01 {
		t.Fatalf("hardened model under damage %.3f worse than plain %.3f", ph, pp)
	}
}

func TestHardenStrategyCommissioningOnly(t *testing.T) {
	net, train := trainToy(t)
	cfg := DefaultHardenConfig()
	cfg.Epochs = 1
	s := NewHardenStrategy(net, train, nil, cfg)
	if s.Name() != "harden" || s.Cost() != CostHarden {
		t.Fatalf("harden identity wrong: %s/%d", s.Name(), s.Cost())
	}
	if s.Applicable(Diagnosis{Stuck: 5}) {
		t.Fatal("harden applicable to a deployed device")
	}
	if !s.Applicable(Diagnosis{Commissioning: true}) {
		t.Fatal("harden not applicable at commissioning")
	}
	rep, err := s.Apply(context.Background(), Diagnosis{Commissioning: true})
	if err != nil {
		t.Fatalf("harden apply: %v", err)
	}
	if rep.Strategy != "harden" || rep.NewRef != net {
		t.Fatalf("harden report wrong: %+v", rep)
	}
}
