package repair

import (
	"context"
	"fmt"
	"io"

	"reramtest/internal/dataset"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/rng"
	"reramtest/internal/tengine"
)

// RetrainConfig controls fault-aware fine-tuning.
type RetrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	Seed      int64
	Log       io.Writer
}

// DefaultRetrainConfig returns a short fine-tuning schedule: repair is a
// touch-up of an already-trained model, not training from scratch.
func DefaultRetrainConfig() RetrainConfig {
	return RetrainConfig{Epochs: 2, BatchSize: 32, LR: 0.005, Momentum: 0.9, Seed: 17}
}

// RetrainAround fine-tunes net's weights on train while keeping every
// position marked in stuck frozen at its current (faulty) value — the
// paper's fault-aware retraining repair [8]: the healthy weights learn to
// compensate for the cells that cannot be fixed. net is modified in place;
// the returned accuracy is measured on eval (or train when eval is nil).
//
// Positions absent from the mask (e.g. biases, which live in digital logic)
// train normally.
func RetrainAround(net *nn.Network, stuck StuckMask, train, eval *dataset.Dataset, cfg RetrainConfig) float64 {
	acc, err := RetrainAroundCtx(context.Background(), net, stuck, train, eval, cfg)
	if err != nil {
		// background context never cancels, so this is unreachable; keep the
		// legacy signature total anyway
		return 0
	}
	return acc
}

// RetrainAroundCtx is RetrainAround with cooperative cancellation: ctx is
// checked before every batch, and on cancellation the stuck positions are
// restored (via the SnapshotStuck restore closure) and the network is taken
// out of training mode before returning, so no frozen-gradient or
// training-mode state leaks out of an aborted retrain. The non-stuck weights
// keep whatever fine-tuning they had received — the caller decides whether
// to deploy or discard the partially-trained network; nothing here touches
// the hardware. The returned error is typed (*Error wrapping ctx.Err()).
func RetrainAroundCtx(ctx context.Context, net *nn.Network, stuck StuckMask, train, eval *dataset.Dataset, cfg RetrainConfig) (float64, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	r := rng.New(cfg.Seed)
	sgd := opt.NewSGD(net.Params(), cfg.LR, cfg.Momentum, 0)
	restoreStuck := SnapshotStuck(net, stuck)
	net.SetTraining(true)
	// the fine-tuning loop runs through a compiled training plan: one
	// ForwardBackward leaves the batch gradient in every Param.Grad (same
	// bits as the legacy ZeroGrad+Backward), so the freeze→step→restore
	// sandwich keeps its exact legacy ordering and semantics
	eng := tengine.MustCompile(net, tengine.Options{MaxBatch: cfg.BatchSize})
	it := train.BatchIterator(cfg.BatchSize)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		total, batches := 0.0, 0
		it.Reset(r)
		for {
			if err := ctx.Err(); err != nil {
				restoreStuck()
				net.SetTraining(false)
				return 0, &Error{Strategy: "retrain", Op: "train", Err: err}
			}
			bx, by, ok := it.Next()
			if !ok {
				break
			}
			loss, _ := eng.ForwardBackward(bx, by) // iterator batches are never empty
			freezeStuckGradients(net, stuck)
			sgd.StepAndZero()
			restoreStuck() // momentum-proof: hold faulty cells exactly
			total += loss
			batches++
		}
		fmt.Fprintf(logw, "retrain epoch %d/%d: loss=%.4f\n", epoch+1, cfg.Epochs, total/float64(batches))
	}
	net.SetTraining(false)
	if eval == nil {
		eval = train
	}
	return net.Accuracy(eval.X, eval.Y, 64), nil
}

// freezeStuckGradients zeroes the gradient of every stuck position so the
// optimizer never tries to move a weight the hardware cannot realise.
func freezeStuckGradients(net *nn.Network, stuck StuckMask) {
	for _, p := range net.Params() {
		mask, ok := stuck[p.Name]
		if !ok {
			continue
		}
		g := p.Grad.Data()
		for j, s := range mask {
			if s {
				g[j] = 0
			}
		}
	}
}

// SnapshotStuck captures the current values at stuck positions and returns
// a restore function that writes them back — called after every optimizer
// step so that even momentum (whose velocity can move a weight after its
// gradient is zeroed) cannot drift a frozen cell.
func SnapshotStuck(net *nn.Network, stuck StuckMask) func() {
	type frozen struct {
		data []float64
		idx  []int
		vals []float64
	}
	var all []frozen
	for _, p := range net.Params() {
		mask, ok := stuck[p.Name]
		if !ok {
			continue
		}
		f := frozen{data: p.Value.Data()}
		for j, s := range mask {
			if s {
				f.idx = append(f.idx, j)
				f.vals = append(f.vals, f.data[j])
			}
		}
		if len(f.idx) > 0 {
			all = append(all, f)
		}
	}
	return func() {
		for _, f := range all {
			for k, j := range f.idx {
				f.data[j] = f.vals[k]
			}
		}
	}
}
