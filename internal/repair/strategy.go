// Pluggable repair strategies. The paper's severity-tiered repair story
// (§I: hardware redundancy, error correction, fault-aware remapping,
// cloud-edge retraining) is wider than the single RetrainAround this package
// started with — each fault class has a cheaper, more targeted answer than
// full retraining, and a fleet that can only retrain burns its lifetime
// repair budget on drift that one scrub pass would have cleared.
//
// A Strategy is one such mechanism behind a common interface: it names
// itself, says whether the current Diagnosis is the fault class it treats,
// quotes its Cost in the fleet's repair-budget currency, and Applies itself
// against the hardware. The supervised runtime (internal/health) drives an
// ordered ladder of strategies — cheapest first, escalating on verification
// failure — and the fleet charges each device's lifetime budget by Cost()
// instead of a flat per-attempt unit, so a device is retired only when the
// cheapest strategy that could still help exceeds what remains.
//
// Four strategies exist, in escalation (= cost) order:
//
//   - drop-connect hardening (harden.go): commissioning-time fault-aware
//     training (arXiv:2404.15498) — free at runtime, applied before faults
//     arrive.
//   - soft-error scrub (NewScrub): sweep the arrays for cells whose
//     conductance left its tolerance band (drift, disturb flips) and rewrite
//     just those cells in place (arXiv:2412.03089's online correction).
//   - stuck-at remap (NewRemap): switch crossbar lines with too many stuck
//     cells onto spare word-lines, weight-correcting isolated stuck cells
//     through their differential partner when spares run out.
//   - fault-aware retraining (NewRetrain / RetrainAroundCtx): the expensive
//     cloud-edge path, unchanged in mechanics but now the ladder's last
//     software resort instead of its only move.
package repair

import (
	"context"
	"errors"
	"fmt"

	"reramtest/internal/dataset"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/reram"
)

// Strategy costs in the fleet's repair-budget currency. One unit is "one
// array write pass worth of disturbance": a scrub rewrites only out-of-band
// cells, a remap additionally burns spare lines and recalibrates ADCs, a
// retraining round costs data movement and training compute on top of a full
// redeploy (the paper's cloud-edge collaborative path).
const (
	CostHarden  = 0 // commissioning-time: charged to manufacturing, not the field budget
	CostScrub   = 1
	CostRemap   = 2
	CostRetrain = 4
)

// Diagnosis is what the supervised runtime knows about a device when it
// must pick a repair: the debounced severity plus the cheap hardware census
// the strategies key their applicability on.
type Diagnosis struct {
	// Commissioning marks a pre-deployment diagnosis: the device is healthy
	// and strategies that harden (rather than repair) apply.
	Commissioning bool
	// Status is the runtime's confirmed severity.
	Status monitor.Status
	// Drifted counts healthy cells whose conductance sits outside the scrub
	// tolerance band — the soft-error/drift population a scrub rewrites.
	Drifted int
	// Stuck counts stuck cells whose induced weight error is still
	// uncompensated (neither remapped to a spare line nor corrected through
	// the differential partner).
	Stuck int
	// Spares is the number of spare crossbar lines still available.
	Spares int
}

// String renders the diagnosis on one line.
func (d Diagnosis) String() string {
	if d.Commissioning {
		return "commissioning"
	}
	return fmt.Sprintf("status=%s drifted=%d stuck=%d spares=%d", d.Status, d.Drifted, d.Stuck, d.Spares)
}

// Strategy is one pluggable repair mechanism. Implementations must be safe
// to call repeatedly (an escalation ladder may revisit a device every round)
// but are single-goroutine objects like the hardware they drive.
type Strategy interface {
	// Name identifies the strategy in attempts, journals and scorecards.
	Name() string
	// Applicable reports whether this strategy treats the diagnosed fault
	// class. An inapplicable strategy is skipped by the ladder at zero cost.
	Applicable(d Diagnosis) bool
	// Cost is the repair-budget charge for one Apply, in the same units as
	// the fleet's lifetime RepairBudget. It is charged when Apply runs,
	// whether or not the repair verifies.
	Cost() int
	// Apply executes the repair against the hardware. A non-nil
	// Report.NewRef means the deployed reference weights changed and the
	// monitor must be recommissioned. Errors must be typed (see Error):
	// the lifetime soak gates on zero untyped errors escaping a strategy.
	Apply(ctx context.Context, d Diagnosis) (Report, error)
}

// Error is the typed failure every strategy wraps its errors in: which
// strategy, which operation, and the underlying cause. errors.Is/As unwrap
// to the cause, so context cancellation stays detectable through the wrap.
type Error struct {
	Strategy string // strategy (or diagnostic) name
	Op       string // operation that failed ("diagnose", "train", "deploy", ...)
	Err      error
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("repair: %s %s: %v", e.Strategy, e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// DiagnosisError is the typed rejection DiagnoseStuck returns for inputs it
// cannot diagnose: a non-positive tolerance or a degenerate (empty or
// all-zero) parameter whose stuck threshold would be meaningless. The old
// behaviour — silently returning a mask that was empty or marked every cell
// stuck — fed garbage straight into retraining.
type DiagnosisError struct {
	Reason string  // "tolerance" or "degenerate"
	Param  string  // offending parameter name (degenerate layers)
	Tol    float64 // offending tolerance (tolerance errors)
}

// Error implements error.
func (e *DiagnosisError) Error() string {
	switch e.Reason {
	case "tolerance":
		return fmt.Sprintf("repair: diagnose: tolerance must be > 0, got %g", e.Tol)
	case "degenerate":
		return fmt.Sprintf("repair: diagnose: parameter %q is degenerate (empty or all-zero), stuck threshold undefined", e.Param)
	default:
		return fmt.Sprintf("repair: diagnose: %s", e.Reason)
	}
}

// IsTyped reports whether err belongs to the repair subsystem's typed error
// vocabulary: a strategy *Error, a *DiagnosisError, or a context
// cancellation/deadline (the caller-initiated aborts). The lifetime soak's
// zero-untyped-errors gate counts everything else as a contract violation.
func IsTyped(err error) bool {
	if err == nil {
		return true
	}
	var se *Error
	var de *DiagnosisError
	return errors.As(err, &se) || errors.As(err, &de) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Report fields specific to the strategy suite are on the shared Report
// type (repair.go): Strategy, Cells and NewRef.

// Func adapts closures to the Strategy interface — the device adapters
// (campaign plants, example rigs) use it to bind device-specific state (RNG
// streams, datasets, reference-model slots) into a strategy without a new
// type each time.
type Func struct {
	StrategyName string
	StrategyCost int
	When         func(Diagnosis) bool
	Do           func(ctx context.Context, d Diagnosis) (Report, error)
}

// Name implements Strategy.
func (f Func) Name() string { return f.StrategyName }

// Applicable implements Strategy.
func (f Func) Applicable(d Diagnosis) bool { return f.When != nil && f.When(d) }

// Cost implements Strategy.
func (f Func) Cost() int { return f.StrategyCost }

// Apply implements Strategy.
func (f Func) Apply(ctx context.Context, d Diagnosis) (Report, error) { return f.Do(ctx, d) }

// Scrubber is the hardware surface the soft-error scrub drives: sweep every
// healthy cell, rewrite the ones whose conductance left the tolerance band.
// *reram.Accelerator implements it.
type Scrubber interface {
	ScrubSoftErrors(tol float64) (scanned, rewritten int)
}

// scrub is the online soft-error correction strategy.
type scrub struct {
	hw  Scrubber
	tol float64
}

// NewScrub builds the soft-error scrub strategy over hw. tol is the
// conductance tolerance band as a fraction of the device's conductance
// window; cells outside it are rewritten in place. Applicable whenever the
// diagnosis reports drifted cells on a deployed device.
func NewScrub(hw Scrubber, tol float64) Strategy { return &scrub{hw: hw, tol: tol} }

func (s *scrub) Name() string { return "scrub" }
func (s *scrub) Cost() int    { return CostScrub }

func (s *scrub) Applicable(d Diagnosis) bool {
	return !d.Commissioning && d.Drifted > 0
}

func (s *scrub) Apply(ctx context.Context, _ Diagnosis) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, &Error{Strategy: s.Name(), Op: "scrub", Err: err}
	}
	scanned, rewritten := s.hw.ScrubSoftErrors(s.tol)
	return Report{
		Action: Reprogram, Strategy: s.Name(), Cells: rewritten,
		AccBefore: -1, AccAfter: -1,
		Detail: fmt.Sprintf("scrubbed %d/%d cells", rewritten, scanned),
	}, nil
}

// Remapper is the hardware surface the stuck-at remap drives: move lines
// with too many stuck cells onto spares, weight-correct the rest through the
// differential partner. *reram.Accelerator implements it.
type Remapper interface {
	RemapStuck(maxPerLine int, tol float64) (remapped, corrected, uncorrectable int)
}

// remap is the redundant-line stuck-at remapping strategy.
type remap struct {
	hw         Remapper
	maxPerLine int
	tol        float64
}

// NewRemap builds the stuck-at remapping strategy over hw. Lines holding
// more than maxPerLine stuck cells are switched onto spare word-lines;
// remaining stuck cells are corrected through their differential partner
// when the required conductance fits the window. tol is the residual
// weight-error band (fraction of the conductance window) below which a
// stuck cell counts as compensated. Applicable whenever the diagnosis
// reports uncompensated stuck cells.
func NewRemap(hw Remapper, maxPerLine int, tol float64) Strategy {
	return &remap{hw: hw, maxPerLine: maxPerLine, tol: tol}
}

func (s *remap) Name() string { return "remap" }
func (s *remap) Cost() int    { return CostRemap }

func (s *remap) Applicable(d Diagnosis) bool {
	return !d.Commissioning && d.Stuck > 0
}

func (s *remap) Apply(ctx context.Context, _ Diagnosis) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, &Error{Strategy: s.Name(), Op: "remap", Err: err}
	}
	remapped, corrected, uncorrectable := s.hw.RemapStuck(s.maxPerLine, s.tol)
	return Report{
		Action: Replace, Strategy: s.Name(), Cells: remapped + corrected,
		AccBefore: -1, AccAfter: -1,
		Detail: fmt.Sprintf("remapped %d lines, corrected %d cells, %d uncorrectable", remapped, corrected, uncorrectable),
	}, nil
}

// retrainStrategy is fault-aware retraining as a ladder rung.
type retrainStrategy struct {
	accel       *reram.Accelerator
	ref         func() *nn.Network // current reference weights
	train, eval *dataset.Dataset
	tol         float64              // DiagnoseStuck tolerance
	cfg         func() RetrainConfig // per-application config (fresh seed each round)
}

// NewRetrain builds the fault-aware retraining strategy: diagnose stuck
// cells (tol as in DiagnoseStuck), fine-tune the readout weights around them
// on train, redeploy, and hand the new reference back for recommissioning.
// ref must return the current reference network; cfg is called per
// application so the caller can thread a fresh seed. Applicable on any
// deployed device — it is the ladder's last software resort.
func NewRetrain(accel *reram.Accelerator, ref func() *nn.Network, train, eval *dataset.Dataset, tol float64, cfg func() RetrainConfig) Strategy {
	return &retrainStrategy{accel: accel, ref: ref, train: train, eval: eval, tol: tol, cfg: cfg}
}

func (s *retrainStrategy) Name() string { return "retrain" }
func (s *retrainStrategy) Cost() int    { return CostRetrain }

func (s *retrainStrategy) Applicable(d Diagnosis) bool { return !d.Commissioning }

func (s *retrainStrategy) Apply(ctx context.Context, _ Diagnosis) (Report, error) {
	stuck, err := DiagnoseStuck(s.accel, s.ref(), s.tol)
	if err != nil {
		return Report{}, &Error{Strategy: s.Name(), Op: "diagnose", Err: err}
	}
	faulty := s.accel.ReadoutNetwork()
	acc, err := RetrainAroundCtx(ctx, faulty, stuck, s.train, s.eval, s.cfg())
	if err != nil {
		// the retrained network was never deployed: the hardware still runs
		// the old reference, so a canceled retrain leaves no half-repair
		return Report{}, err
	}
	s.accel.ProgramNetwork(faulty)
	return Report{
		Action: Retrain, Strategy: s.Name(), Stuck: stuck.Count(), NewRef: faulty,
		AccBefore: -1, AccAfter: acc,
		Detail: fmt.Sprintf("retrained around %d stuck cells", stuck.Count()),
	}, nil
}
