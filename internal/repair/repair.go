// Package repair implements the repair mechanisms the paper's monitor exists
// to dispatch (§I: "various repair mechanisms, including hardware redundancy,
// error correction, fault-aware remapping and cloud-edge collaborative model
// retraining ... are tailored for different stages based on the severity of
// the fault model"). Together with internal/monitor it closes the loop:
// detect → classify severity → apply the cheapest adequate repair → verify.
//
// Three mechanisms are provided, in increasing cost order:
//
//   - Reprogram: rewrite all crossbar conductances to their targets. Fixes
//     drift and accumulated soft errors; cannot fix stuck cells. Cost: one
//     write pass, no data needed.
//   - Retrain: diagnose stuck cells (DiagnoseStuck), then fault-aware
//     fine-tuning (the paper's reference [8]) — gradient descent on the
//     deployed weights with the stuck cells frozen at their fault values,
//     letting the healthy weights compensate. Cost: training data and
//     compute (the paper's "cloud-edge collaborative" path).
//   - Replace: when retraining cannot recover the accuracy target the
//     planner recommends hardware service — spare-array remapping (the
//     paper's reference [7]) or module replacement; physical spare-row
//     redundancy is modelled as a recommendation only.
package repair

import (
	"fmt"
	"strings"

	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/reram"
)

// Action identifies one repair mechanism.
type Action int

// Repair actions in increasing cost order.
const (
	// NoAction: the accelerator is healthy.
	NoAction Action = iota
	// Reprogram rewrites crossbar conductances (fixes drift/soft errors).
	Reprogram
	// Retrain fine-tunes healthy weights around frozen faults.
	Retrain
	// Replace recommends hardware service: spare-array remapping or module
	// replacement, beyond what software repair can recover.
	Replace
)

// String names the action.
func (a Action) String() string {
	switch a {
	case NoAction:
		return "none"
	case Reprogram:
		return "reprogram"
	case Retrain:
		return "retrain"
	case Replace:
		return "replace"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// PlanFor maps the monitor's health classification to the cheapest repair
// that addresses it, following the paper's severity-tiered repair story:
// mild degradation is usually drift (reprogrammable); an impaired device
// has accumulated hard faults that need the cloud-edge retraining path; a
// critical one is past software repair.
func PlanFor(status monitor.Status) Action {
	switch status {
	case monitor.Healthy:
		return NoAction
	case monitor.Degraded:
		return Reprogram
	case monitor.Impaired:
		return Retrain
	default:
		return Replace
	}
}

// StuckMask records, per network parameter, which weight positions sit on
// stuck cells (true = stuck, must not be trained or trusted).
type StuckMask map[string][]bool

// Count returns the number of stuck positions across all parameters.
func (m StuckMask) Count() int {
	n := 0
	for _, mask := range m {
		for _, s := range mask {
			if s {
				n++
			}
		}
	}
	return n
}

// DiagnoseStuck identifies stuck weight positions on an accelerator by a
// write-read-write test: reprogram the arrays, read the effective weights,
// then compare against a second readout after reprogramming again. Cells
// that refuse to track their target on both writes are reported stuck. This
// is the classic march-style test specialised to the differential weight
// mapping: healthy cells land within tol of the target each time; stuck
// cells sit pinned at an extreme.
//
// The accelerator is left reprogrammed (a side effect the caller wants
// anyway, since diagnosis is always followed by a repair attempt).
//
// A non-positive tol or a degenerate target parameter (empty, or all-zero
// so the stuck threshold collapses to 0 and every cell would read stuck)
// returns a *DiagnosisError before touching the hardware — silently
// producing a garbage mask used to feed those inputs straight into
// retraining.
func DiagnoseStuck(accel *reram.Accelerator, target *nn.Network, tol float64) (StuckMask, error) {
	if tol <= 0 {
		return nil, &DiagnosisError{Reason: "tolerance", Tol: tol}
	}
	for _, p := range target.Params() {
		// only rank-2 weight matrices live on crossbars; biases stay in
		// digital logic, read back exactly, and are legitimately all-zero
		// at initialisation
		if p.Value.Rank() != 2 {
			continue
		}
		degenerate := true
		for _, v := range p.Value.Data() {
			if v != 0 {
				degenerate = false
				break
			}
		}
		if degenerate {
			return nil, &DiagnosisError{Reason: "degenerate", Param: p.Name}
		}
	}
	accel.Reprogram()
	first := accel.ReadoutNetwork()
	accel.Reprogram()
	second := accel.ReadoutNetwork()

	mask := make(StuckMask)
	tp, fp, sp := target.Params(), first.Params(), second.Params()
	for i, p := range tp {
		want := p.Value.Data()
		got1 := fp[i].Value.Data()
		got2 := sp[i].Value.Data()
		// threshold scales with the layer's weight range: a cell is stuck
		// when it misses its target by more than tol × max|w| on both
		// writes — SA1 cells sit a full conductance window away, SA0 cells
		// miss by the weight's own magnitude
		maxAbs := 0.0
		for _, v := range want {
			if a := abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		thresh := tol * maxAbs
		m := make([]bool, len(want))
		for j := range want {
			m[j] = abs(got1[j]-want[j]) > thresh && abs(got2[j]-want[j]) > thresh
		}
		mask[p.Name] = m
	}
	return mask, nil
}

// Report summarises one repair round.
type Report struct {
	Action    Action
	Strategy  string // strategy name when produced by a Strategy; "" otherwise
	Stuck     int    // stuck cells diagnosed (Remap/Retrain)
	Cells     int    // cells rewritten / lines remapped (strategy repairs)
	AccBefore float64 // accuracy before repair (if measured; -1 otherwise)
	AccAfter  float64 // accuracy after repair (if measured; -1 otherwise)
	// NewRef, when non-nil, is a replacement reference network (fault-aware
	// retraining deployed new weights): the monitor must be recommissioned
	// against it before the repair can verify.
	NewRef *nn.Network
	Detail string
}

// String renders the report on one line.
func (r Report) String() string {
	parts := []string{fmt.Sprintf("action=%s", r.Action)}
	if r.Strategy != "" {
		parts = append(parts, fmt.Sprintf("strategy=%s", r.Strategy))
	}
	if r.Stuck > 0 {
		parts = append(parts, fmt.Sprintf("stuck=%d", r.Stuck))
	}
	if r.AccBefore >= 0 && r.AccAfter >= 0 {
		parts = append(parts, fmt.Sprintf("accuracy %.1f%%→%.1f%%", 100*r.AccBefore, 100*r.AccAfter))
	}
	if r.Detail != "" {
		parts = append(parts, r.Detail)
	}
	return strings.Join(parts, " ")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
