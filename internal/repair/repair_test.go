package repair

import (
	"strings"
	"testing"

	"reramtest/internal/dataset"
	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
)

func TestPlanForSeverityLadder(t *testing.T) {
	cases := map[monitor.Status]Action{
		monitor.Healthy:  NoAction,
		monitor.Degraded: Reprogram,
		monitor.Impaired: Retrain,
		monitor.Critical: Replace,
	}
	for status, want := range cases {
		if got := PlanFor(status); got != want {
			t.Errorf("PlanFor(%s)=%s, want %s", status, got, want)
		}
	}
}

func TestActionStrings(t *testing.T) {
	for a, want := range map[Action]string{
		NoAction: "none", Reprogram: "reprogram", Retrain: "retrain", Replace: "replace",
	} {
		if a.String() != want {
			t.Errorf("Action(%d).String()=%q", int(a), a.String())
		}
	}
}

func idealConfig() reram.Config {
	cfg := reram.DefaultConfig()
	cfg.TileRows, cfg.TileCols = 32, 32
	cfg.DACBits, cfg.ADCBits = 0, 0
	cfg.Device.ProgramSigma = 0
	cfg.Device.DriftRate = 0
	cfg.Device.DriftJitter = 0
	cfg.Device.SoftErrorRate = 0
	return cfg
}

// mustDiagnose fails the test on a diagnosis error — the well-formed-input
// path every existing test exercises.
func mustDiagnose(t *testing.T, accel *reram.Accelerator, net *nn.Network, tol float64) StuckMask {
	t.Helper()
	mask, err := DiagnoseStuck(accel, net, tol)
	if err != nil {
		t.Fatalf("DiagnoseStuck: %v", err)
	}
	return mask
}

func TestDiagnoseStuckFindsInjectedFaults(t *testing.T) {
	net := models.MLP(rng.New(1), 16, []int{12}, 4)
	accel := reram.NewAccelerator(net, idealConfig(), 7)
	// healthy device: nothing stuck
	mask := mustDiagnose(t, accel, net, 0.25)
	if n := mask.Count(); n != 0 {
		t.Fatalf("healthy accelerator diagnosed %d stuck cells", n)
	}
	// inject a visible fraction of stuck cells
	accel.InjectStuckAt(0.05, 0.05)
	mask = mustDiagnose(t, accel, net, 0.25)
	if n := mask.Count(); n == 0 {
		t.Fatal("diagnosis found no stuck cells after injection")
	}
	// diagnosis must cover every parameter name of the network
	for _, p := range net.Params() {
		if _, ok := mask[p.Name]; !ok {
			t.Fatalf("mask missing parameter %s", p.Name)
		}
	}
}

func TestDiagnoseStuckSurvivesProgrammingNoise(t *testing.T) {
	net := models.MLP(rng.New(2), 16, []int{12}, 4)
	cfg := idealConfig()
	cfg.Device.ProgramSigma = 0.03 // realistic write noise
	accel := reram.NewAccelerator(net, cfg, 8)
	mask := mustDiagnose(t, accel, net, 0.35)
	// write noise must not masquerade as stuck cells (a few strays allowed)
	total := 0
	for _, m := range mask {
		total += len(m)
	}
	if frac := float64(mask.Count()) / float64(total); frac > 0.02 {
		t.Fatalf("noise misdiagnosed as %.1f%% stuck cells", 100*frac)
	}
}

// trainToy fits a small classifier the retraining tests can damage.
func trainToy(t *testing.T) (*nn.Network, *dataset.Dataset) {
	t.Helper()
	train := dataset.SynthDigits(60, dataset.DefaultDigitsConfig(500))
	net := models.MLP(rng.New(3), train.SampleDim(), []int{32}, 10)
	sgd := opt.NewSGD(net.Params(), 0.05, 0.9, 0)
	r := rng.New(4)
	for epoch := 0; epoch < 4; epoch++ {
		for _, b := range train.Batches(32, r) {
			logits := net.Forward(b.X)
			_, grad := nn.CrossEntropy(logits, b.Y)
			net.ZeroGrad()
			net.Backward(grad)
			sgd.Step()
		}
	}
	return net, train
}

func TestRetrainAroundRecoversAccuracy(t *testing.T) {
	net, train := trainToy(t)
	clean := net.Accuracy(train.X, train.Y, 64)
	if clean < 0.9 {
		t.Fatalf("toy model failed to train: %.2f", clean)
	}

	// damage: zero out 20% of the first layer's weights (SA0-style) and
	// freeze them
	stuck := make(StuckMask)
	r := rng.New(5)
	for _, p := range net.Params() {
		mask := make([]bool, p.Value.Len())
		if strings.HasSuffix(p.Name, ".weight") {
			d := p.Value.Data()
			for j := range d {
				if r.Bernoulli(0.2) {
					d[j] = 0
					mask[j] = true
				}
			}
		}
		stuck[p.Name] = mask
	}
	damaged := net.Accuracy(train.X, train.Y, 64)
	if damaged >= clean {
		t.Fatalf("damage did not reduce accuracy: %.2f vs %.2f", damaged, clean)
	}

	cfg := DefaultRetrainConfig()
	cfg.Epochs = 3
	repaired := RetrainAround(net, stuck, train, nil, cfg)
	if repaired <= damaged+0.01 {
		t.Fatalf("retraining did not recover accuracy: %.2f (damaged %.2f)", repaired, damaged)
	}

	// frozen positions must still hold their fault values exactly
	for _, p := range net.Params() {
		mask := stuck[p.Name]
		d := p.Value.Data()
		for j, s := range mask {
			if s && d[j] != 0 {
				t.Fatalf("retraining moved frozen weight %s[%d] to %v", p.Name, j, d[j])
			}
		}
	}
}

func TestRetrainWithEmptyMaskIsOrdinaryFineTune(t *testing.T) {
	net, train := trainToy(t)
	before := net.Accuracy(train.X, train.Y, 64)
	cfg := DefaultRetrainConfig()
	cfg.Epochs = 1
	after := RetrainAround(net, StuckMask{}, train, nil, cfg)
	if after < before-0.05 {
		t.Fatalf("fine-tune with empty mask degraded accuracy %.2f→%.2f", before, after)
	}
}

func TestStuckMaskCount(t *testing.T) {
	m := StuckMask{
		"a": {true, false, true},
		"b": {false},
	}
	if m.Count() != 2 {
		t.Fatalf("Count=%d, want 2", m.Count())
	}
}

func TestSnapshotStuckRestores(t *testing.T) {
	net := models.MLP(rng.New(6), 4, nil, 2)
	p := net.Params()[0]
	mask := make([]bool, p.Value.Len())
	mask[0], mask[3] = true, true
	stuck := StuckMask{p.Name: mask}
	v0, v3 := p.Value.Data()[0], p.Value.Data()[3]
	restore := SnapshotStuck(net, stuck)
	p.Value.Fill(99)
	restore()
	d := p.Value.Data()
	if d[0] != v0 || d[3] != v3 {
		t.Fatal("restore did not put frozen values back")
	}
	if d[1] != 99 {
		t.Fatal("restore touched non-frozen positions")
	}
}

func TestReportString(t *testing.T) {
	rep := Report{Action: Retrain, Stuck: 12, AccBefore: 0.7, AccAfter: 0.95}
	s := rep.String()
	for _, want := range []string{"retrain", "stuck=12", "70.0%", "95.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}
