package repair

import (
	"context"
	"fmt"
	"io"

	"reramtest/internal/dataset"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/rng"
	"reramtest/internal/tengine"
)

// HardenConfig controls commissioning-time drop-connect hardening.
type HardenConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// DropP is the per-element weight drop probability per step — set it at
	// or above the stuck-cell rate the deployment expects to ride through.
	DropP float64
	Seed  int64
	Log   io.Writer
}

// DefaultHardenConfig returns a short hardening schedule: like retraining,
// hardening is a touch-up of an already-trained model.
func DefaultHardenConfig() HardenConfig {
	return HardenConfig{Epochs: 2, BatchSize: 32, LR: 0.005, Momentum: 0.9, DropP: 0.1, Seed: 29}
}

// HardenDropConnect fine-tunes net under per-element Bernoulli weight
// dropping (tengine.DropConnect) — fault-aware training that bakes stuck-at
// tolerance into the weights before the model is ever programmed onto
// hardware. net is modified in place; the returned accuracy is measured on
// eval (or train when eval is nil) with masking off.
func HardenDropConnect(net *nn.Network, train, eval *dataset.Dataset, cfg HardenConfig) float64 {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	r := rng.New(cfg.Seed)
	sgd := opt.NewSGD(net.Params(), cfg.LR, cfg.Momentum, 0)
	net.SetTraining(true)
	eng := tengine.MustCompile(net, tengine.Options{MaxBatch: cfg.BatchSize})
	dc := tengine.NewDropConnect(eng, cfg.DropP, r.Split())
	it := train.BatchIterator(cfg.BatchSize)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		total, batches := 0.0, 0
		it.Reset(r)
		for {
			bx, by, ok := it.Next()
			if !ok {
				break
			}
			loss, _ := dc.Step(bx, by) // iterator batches are never empty
			total += loss
			sgd.StepAndZero()
			batches++
		}
		fmt.Fprintf(logw, "harden epoch %d/%d: loss=%.4f\n", epoch+1, cfg.Epochs, total/float64(batches))
	}
	net.SetTraining(false)
	if eval == nil {
		eval = train
	}
	return net.Accuracy(eval.X, eval.Y, 64)
}

// NewHardenStrategy adapts commissioning-time hardening to the Strategy
// interface so it can sit on the ladder as its zero-cost first rung: it is
// applicable only to a commissioning diagnosis (a deployed device cannot be
// hardened in the field — the weights would need the cloud-edge path, which
// is what the retrain strategy already is).
func NewHardenStrategy(net *nn.Network, train, eval *dataset.Dataset, cfg HardenConfig) Strategy {
	return Func{
		StrategyName: "harden",
		StrategyCost: CostHarden,
		When:         func(d Diagnosis) bool { return d.Commissioning },
		Do: func(ctx context.Context, _ Diagnosis) (Report, error) {
			if err := ctx.Err(); err != nil {
				return Report{}, &Error{Strategy: "harden", Op: "train", Err: err}
			}
			acc := HardenDropConnect(net, train, eval, cfg)
			return Report{
				Action: Retrain, Strategy: "harden", NewRef: net,
				AccBefore: -1, AccAfter: acc,
				Detail: fmt.Sprintf("drop-connect hardened at p=%.2f", cfg.DropP),
			}, nil
		},
	}
}
