// Package detect implements the paper's fault-detection machinery: golden
// output capture, the six SDC detection criteria (§IV-A "Metrics"), the
// confidence-distance measurements of Fig. 3, the detection rate of Fig. 4-6
// and Table III, and the coefficient-of-variation stability metric of
// Table IV.
//
// The flow mirrors the concurrent-test deployment: at commissioning time the
// ideal (fault-free) model's softmax confidences on the test-pattern set are
// captured as the golden reference; at run time the same patterns are pushed
// through the possibly-degraded accelerator and the divergence between the
// two confidence sets is scored.
package detect

import (
	"fmt"
	"math"

	"reramtest/internal/engine"
	"reramtest/internal/nn"
	"reramtest/internal/stats"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// Criterion is one of the paper's six SDC detection rules.
type Criterion int

// The six detection criteria of §IV-A.
const (
	// SDC1 flags a fault when any pattern's top-1 class changes.
	SDC1 Criterion = iota
	// SDC5 flags a fault when any pattern's ranked top-5 class list changes.
	SDC5
	// SDCT5 flags a fault when the mean top-ranked confidence distance
	// exceeds 5%.
	SDCT5
	// SDCT10 flags a fault when the mean top-ranked confidence distance
	// exceeds 10%.
	SDCT10
	// SDCA3 flags a fault when the mean all-class confidence distance
	// exceeds 3% (introduced by the paper for O-TP, whose golden top-1 is
	// deliberately meaningless).
	SDCA3
	// SDCA5 is SDCA3 with a 5% threshold.
	SDCA5
)

// AllCriteria lists the criteria in the order the paper's Table III reports
// them.
var AllCriteria = []Criterion{SDC1, SDC5, SDCT5, SDCT10, SDCA3, SDCA5}

// String returns the paper's name for the criterion.
func (c Criterion) String() string {
	switch c {
	case SDC1:
		return "SDC-1"
	case SDC5:
		return "SDC-5"
	case SDCT5:
		return "SDC-T5%"
	case SDCT10:
		return "SDC-T10%"
	case SDCA3:
		return "SDC-A3%"
	case SDCA5:
		return "SDC-A5%"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// topK returns the indices of the k largest entries of row, in descending
// order (ties broken by class index for determinism).
func topK(row []float64, k int) []int {
	if k > len(row) {
		k = len(row)
	}
	out := make([]int, 0, k)
	used := make([]bool, len(row))
	for len(out) < k {
		best, bi := math.Inf(-1), -1
		for j, v := range row {
			if !used[j] && v > best {
				best, bi = v, j
			}
		}
		if bi == -1 {
			// every remaining entry is NaN (NaN compares false against
			// anything): fall back to the first unused index so a poisoned
			// readout still yields a well-formed — and golden-divergent —
			// ranking instead of an out-of-range panic
			for j := range row {
				if !used[j] {
					bi = j
					break
				}
			}
		}
		used[bi] = true
		out = append(out, bi)
	}
	return out
}

// Golden is the commissioning-time reference: the ideal model's confidences
// on the pattern set.
type Golden struct {
	Patterns *testgen.PatternSet
	Probs    *tensor.Tensor // (M, n) softmax confidences
	Classes  int
	Top1     []int
	Top5     [][]int

	// eng is the cached batch-inference plan Observe compiles on first use
	// and rebinds across the fault-model sweep: every model in a
	// DetectionRate or DistanceStats pass shares the ideal model's
	// architecture, so one set of workspaces serves the whole sweep.
	eng *engine.Engine
	// prec is the tier Observe's sweep engine compiles on (zero: the f64
	// reference). See UsePrecision.
	prec tensor.Precision
}

// UsePrecision opts the observation sweep onto a fast numeric tier: every
// subsequent Observe compiles (or recompiles) its cached engine at p. The
// golden reference itself always stays the f64 Capture — only the target
// readout moves, so the measured distances include the tier's own rounding.
// That is the point: a deployment scoring drift on an f32 readout should
// gate against golden values through the same arithmetic it will serve with.
// Fault sweeps that mutate weights in place remain safe because Observe
// re-syncs the tier's parameter caches on every rebind.
func (g *Golden) UsePrecision(p tensor.Precision) {
	if p == g.prec {
		return
	}
	g.prec = p
	g.eng = nil // next Observe compiles on the new tier
}

// Capture runs the pattern set through the ideal model and records its
// softmax confidences and top-k rankings.
func Capture(ideal *nn.Network, patterns *testgen.PatternSet) *Golden {
	logits := ideal.Forward(patterns.X)
	probs := nn.Softmax(logits)
	m, n := probs.Dim(0), probs.Dim(1)
	g := &Golden{Patterns: patterns, Probs: probs, Classes: n,
		Top1: make([]int, m), Top5: make([][]int, m)}
	pd := probs.Data()
	for i := 0; i < m; i++ {
		row := pd[i*n : (i+1)*n]
		t5 := topK(row, 5)
		g.Top5[i] = t5
		g.Top1[i] = t5[0]
	}
	return g
}

// Observation is the result of running the pattern set on a target
// (possibly faulty) model and comparing against the golden reference.
type Observation struct {
	// TopDist is the mean over patterns of |p_t[c*] − p_i[c*]| where c* is
	// the golden top-1 class: the paper's top-ranked confidence distance
	// (SDC-T measurements, Fig. 3 left panels).
	TopDist float64
	// AllDist is the mean over patterns and classes of |p_t[c] − p_i[c]|:
	// the paper's all-confidence distance (SDC-A measurements, Fig. 3 right
	// panels).
	AllDist float64
	// Top1Changes counts patterns whose top-1 class flipped.
	Top1Changes int
	// Top5Changes counts patterns whose ranked top-5 list changed.
	Top5Changes int
	// PerPatternTop holds |Δ confidence| of the golden top class, per
	// pattern (used by the Fig. 7 pattern-count sweep).
	PerPatternTop []float64
	// PerPatternAll holds the per-pattern mean all-class distance.
	PerPatternAll []float64
	// NonFinite counts NaN/Inf confidence entries in the observed batch.
	// Each such entry contributes the maximum per-class distance (1.0)
	// instead of poisoning the aggregate with NaN — a fault model emitting
	// NaN logits must never look Healthy.
	NonFinite int
}

// Observe runs the patterns through target and scores the divergence from
// the golden reference. The forward pass goes through a cached batch
// inference engine whose outputs are bit-identical to target.Forward, so
// every distance, flag and fingerprint matches the per-sample path exactly.
func (g *Golden) Observe(target *nn.Network) Observation {
	return g.ObserveProbs(g.probsOf(target))
}

// probsOf computes target's softmax confidences on the pattern batch,
// reusing the cached engine when target matches its compiled architecture
// and falling back to the plain training-path forward for networks with no
// batched inference semantics.
func (g *Golden) probsOf(target *nn.Network) *tensor.Tensor {
	if g.eng != nil && g.eng.Rebind(target) == nil {
		// Rebind re-syncs the fast tiers' converted parameter caches, so a
		// sweep that mutates one network in place between Observes still
		// reads fresh weights.
		return g.eng.Probs(g.Patterns.X)
	}
	eng, err := engine.Compile(target, engine.Options{Precision: g.prec})
	if err != nil {
		return nn.Softmax(target.Forward(g.Patterns.X))
	}
	g.eng = eng
	return eng.Probs(g.Patterns.X)
}

// ObserveProbs scores an externally produced (M, n) confidence batch — e.g.
// from the ReRAM crossbar simulator — against the golden reference.
func (g *Golden) ObserveProbs(probs *tensor.Tensor) Observation {
	m, n := g.Probs.Dim(0), g.Classes
	if probs.Len() != m*n {
		panic(fmt.Sprintf("detect: observation shape %v does not match golden (%d, %d)", probs.Shape(), m, n))
	}
	o := Observation{PerPatternTop: make([]float64, m), PerPatternAll: make([]float64, m)}
	gd, td := g.Probs.Data(), probs.Data()
	for i := 0; i < m; i++ {
		grow := gd[i*n : (i+1)*n]
		trow := td[i*n : (i+1)*n]
		cstar := g.Top1[i]
		o.PerPatternTop[i] = classDist(trow[cstar], grow[cstar])
		all := 0.0
		for c := 0; c < n; c++ {
			if !isFinite(trow[c]) {
				o.NonFinite++
			}
			all += classDist(trow[c], grow[c])
		}
		o.PerPatternAll[i] = all / float64(n)
		t5 := topK(trow, 5)
		if t5[0] != g.Top1[i] {
			o.Top1Changes++
		}
		for k := range t5 {
			if t5[k] != g.Top5[i][k] {
				o.Top5Changes++
				break
			}
		}
	}
	o.TopDist = stats.Mean(o.PerPatternTop)
	o.AllDist = stats.Mean(o.PerPatternAll)
	return o
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// classDist is the per-class confidence distance |t − g|, capped at the
// maximum possible softmax divergence (1.0) when the observed confidence is
// NaN or infinite. Without the cap a single NaN entry turns the mean
// distance into NaN, every threshold comparison into false, and a severely
// broken accelerator into "Healthy".
func classDist(t, g float64) float64 {
	if !isFinite(t) {
		return 1
	}
	return math.Abs(t - g)
}

// Detect applies one criterion to the observation.
func (o Observation) Detect(c Criterion) bool {
	switch c {
	case SDC1:
		return o.Top1Changes > 0
	case SDC5:
		return o.Top5Changes > 0
	case SDCT5:
		return o.TopDist > 0.05
	case SDCT10:
		return o.TopDist > 0.10
	case SDCA3:
		return o.AllDist > 0.03
	case SDCA5:
		return o.AllDist > 0.05
	default:
		panic(fmt.Sprintf("detect: unknown criterion %d", int(c)))
	}
}

// DetectionRate runs the golden pattern set against every fault model and
// returns, per criterion, the fraction of fault models flagged — the paper's
// headline metric (#detected / #total).
func (g *Golden) DetectionRate(faultModels []*nn.Network, criteria []Criterion) map[Criterion]float64 {
	counts := make(map[Criterion]int, len(criteria))
	for _, fm := range faultModels {
		o := g.Observe(fm)
		for _, c := range criteria {
			if o.Detect(c) {
				counts[c]++
			}
		}
	}
	out := make(map[Criterion]float64, len(criteria))
	for _, c := range criteria {
		out[c] = float64(counts[c]) / float64(len(faultModels))
	}
	return out
}

// DistanceStats collects the confidence distances of every fault model and
// summarises them; the CV field reproduces Table IV's stability metric.
func (g *Golden) DistanceStats(faultModels []*nn.Network) (top, all stats.Summary) {
	tops := make([]float64, len(faultModels))
	alls := make([]float64, len(faultModels))
	for i, fm := range faultModels {
		o := g.Observe(fm)
		tops[i] = o.TopDist
		alls[i] = o.AllDist
	}
	return stats.Summarize(tops), stats.Summarize(alls)
}
