package detect

import (
	"math"
	"testing"

	"reramtest/internal/faults"
	"reramtest/internal/models"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// TestUsePrecisionSweep: an F32-tier observation sweep must stay a rounding
// error from the f64 reference on a clean model, keep seeing in-place weight
// mutations across Observes (the cache re-sync contract), and fall back to
// the reference path for networks the tier cannot compile.
func TestUsePrecisionSweep(t *testing.T) {
	net := models.MLP(rng.New(1), 12, []int{8}, 6)
	g := Capture(net, testPatterns(5, 12))
	g.UsePrecision(tensor.F32)

	o := g.Observe(net)
	if o.Top1Changes != 0 || o.Top5Changes != 0 {
		t.Fatalf("f32 self-observation flipped rankings: %+v", o)
	}
	if o.AllDist > 1e-5 || o.TopDist > 1e-5 {
		t.Fatalf("f32 self-observation distance too large: all=%g top=%g", o.AllDist, o.TopDist)
	}

	// in-place corruption between Observes must register — the sweep engine
	// re-syncs its converted caches on every rebind
	target := net.Clone()
	clean := g.Observe(target)
	faults.LogNormal{Sigma: 0.5}.Apply(target, rng.New(9))
	dirty := g.Observe(target)
	if !(dirty.AllDist > clean.AllDist+0.01) {
		t.Fatalf("f32 sweep missed the injected fault: clean=%g dirty=%g", clean.AllDist, dirty.AllDist)
	}

	// f64 reference agrees on the corrupted distances within tier noise
	gRef := Capture(net, g.Patterns)
	refDirty := gRef.Observe(target)
	if math.Abs(refDirty.AllDist-dirty.AllDist) > 1e-4 {
		t.Fatalf("f32 sweep distance %g too far from f64 %g", dirty.AllDist, refDirty.AllDist)
	}

	// switching back to the reference tier reproduces f64 exactly
	g.UsePrecision(0)
	back := g.Observe(target)
	if back.AllDist != refDirty.AllDist {
		t.Fatalf("f64 tier after UsePrecision(F64) diverges: %g vs %g", back.AllDist, refDirty.AllDist)
	}
}
