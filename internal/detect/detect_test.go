package detect

import (
	"math"
	"testing"

	"reramtest/internal/faults"
	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

func testPatterns(m, dim int) *testgen.PatternSet {
	return &testgen.PatternSet{
		Name: "t", Method: "plain",
		X:      tensor.RandUniform(rng.New(5), 0, 1, m, dim),
		Labels: make([]int, m),
	}
}

func TestTopK(t *testing.T) {
	row := []float64{0.1, 0.5, 0.2, 0.05, 0.15}
	got := topK(row, 3)
	want := []int{1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topK=%v, want %v", got, want)
		}
	}
	// ties break by class index
	tied := topK([]float64{0.3, 0.3, 0.4}, 3)
	if tied[0] != 2 || tied[1] != 0 || tied[2] != 1 {
		t.Fatalf("tie-breaking wrong: %v", tied)
	}
	// k larger than row
	if len(topK([]float64{1, 2}, 5)) != 2 {
		t.Fatal("topK over-long k not clamped")
	}
}

func TestObserveIdenticalModelIsZero(t *testing.T) {
	net := models.MLP(rng.New(1), 12, []int{8}, 6)
	g := Capture(net, testPatterns(5, 12))
	o := g.Observe(net)
	if o.TopDist != 0 || o.AllDist != 0 || o.Top1Changes != 0 || o.Top5Changes != 0 {
		t.Fatalf("self-observation non-zero: %+v", o)
	}
	for _, c := range AllCriteria {
		if o.Detect(c) {
			t.Fatalf("criterion %s fired on the ideal model", c)
		}
	}
}

func TestObserveDetectsCorruptedModel(t *testing.T) {
	net := models.MLP(rng.New(2), 12, []int{8}, 6)
	g := Capture(net, testPatterns(10, 12))
	faulty := faults.MakeFaulty(net, faults.LogNormal{Sigma: 2}, 3)
	o := g.Observe(faulty)
	if o.AllDist <= 0 || o.TopDist <= 0 {
		t.Fatalf("massive corruption produced zero distance: %+v", o)
	}
}

func TestCriterionThresholds(t *testing.T) {
	cases := []struct {
		o    Observation
		c    Criterion
		want bool
	}{
		{Observation{Top1Changes: 1}, SDC1, true},
		{Observation{Top1Changes: 0}, SDC1, false},
		{Observation{Top5Changes: 1}, SDC5, true},
		{Observation{TopDist: 0.06}, SDCT5, true},
		{Observation{TopDist: 0.04}, SDCT5, false},
		{Observation{TopDist: 0.11}, SDCT10, true},
		{Observation{TopDist: 0.09}, SDCT10, false},
		{Observation{AllDist: 0.031}, SDCA3, true},
		{Observation{AllDist: 0.029}, SDCA3, false},
		{Observation{AllDist: 0.051}, SDCA5, true},
		{Observation{AllDist: 0.049}, SDCA5, false},
	}
	for _, c := range cases {
		if got := c.o.Detect(c.c); got != c.want {
			t.Errorf("%s on %+v = %v, want %v", c.c, c.o, got, c.want)
		}
	}
}

func TestCriterionStrings(t *testing.T) {
	wants := map[Criterion]string{
		SDC1: "SDC-1", SDC5: "SDC-5", SDCT5: "SDC-T5%",
		SDCT10: "SDC-T10%", SDCA3: "SDC-A3%", SDCA5: "SDC-A5%",
	}
	for c, want := range wants {
		if c.String() != want {
			t.Errorf("%d.String()=%q, want %q", int(c), c.String(), want)
		}
	}
}

func TestObserveProbsShapeMismatchPanics(t *testing.T) {
	net := models.MLP(rng.New(3), 6, nil, 3)
	g := Capture(net, testPatterns(2, 6))
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	g.ObserveProbs(tensor.New(3, 3))
}

func TestDetectionRateCounts(t *testing.T) {
	net := models.MLP(rng.New(4), 12, []int{8}, 6)
	g := Capture(net, testPatterns(10, 12))
	// mix of heavily corrupted and identical models
	fms := []*nn.Network{
		faults.MakeFaulty(net, faults.LogNormal{Sigma: 3}, 1),
		net.Clone(),
		faults.MakeFaulty(net, faults.LogNormal{Sigma: 3}, 2),
		net.Clone(),
	}
	rates := g.DetectionRate(fms, []Criterion{SDCA3})
	// corrupted models at σ=3 must be detected; clones must not
	if r := rates[SDCA3]; math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("detection rate %v, want 0.5", r)
	}
}

func TestDistanceStats(t *testing.T) {
	net := models.MLP(rng.New(5), 12, []int{8}, 6)
	g := Capture(net, testPatterns(8, 12))
	fms := faults.MakeFaultySet(net, faults.LogNormal{Sigma: 0.5}, 6, 11)
	top, all := g.DistanceStats(fms)
	if top.N != 6 || all.N != 6 {
		t.Fatalf("stats over %d/%d models, want 6", top.N, all.N)
	}
	if top.Mean <= 0 || all.Mean <= 0 {
		t.Fatal("zero mean distance for corrupted models")
	}
	if all.Min > all.Max {
		t.Fatal("summary min > max")
	}
}

func TestGoldenTop5Recorded(t *testing.T) {
	net := models.MLP(rng.New(6), 10, nil, 7)
	g := Capture(net, testPatterns(3, 10))
	for i, t5 := range g.Top5 {
		if len(t5) != 5 {
			t.Fatalf("golden top5[%d] has %d entries", i, len(t5))
		}
		if t5[0] != g.Top1[i] {
			t.Fatalf("top5[0] != top1 for pattern %d", i)
		}
	}
}

func TestPerPatternDistancesMatchAggregates(t *testing.T) {
	net := models.MLP(rng.New(7), 12, []int{8}, 5)
	g := Capture(net, testPatterns(6, 12))
	faulty := faults.MakeFaulty(net, faults.LogNormal{Sigma: 0.5}, 13)
	o := g.Observe(faulty)
	sumTop, sumAll := 0.0, 0.0
	for i := range o.PerPatternTop {
		sumTop += o.PerPatternTop[i]
		sumAll += o.PerPatternAll[i]
	}
	if math.Abs(sumTop/6-o.TopDist) > 1e-12 {
		t.Fatal("TopDist is not the mean of per-pattern values")
	}
	if math.Abs(sumAll/6-o.AllDist) > 1e-12 {
		t.Fatal("AllDist is not the mean of per-pattern values")
	}
}

func TestMoreSevereFaultsLargerDistance(t *testing.T) {
	net := models.MLP(rng.New(8), 16, []int{12}, 6)
	g := Capture(net, testPatterns(20, 16))
	mean := func(sigma float64) float64 {
		fms := faults.MakeFaultySet(net, faults.LogNormal{Sigma: sigma}, 10, 17)
		s := 0.0
		for _, fm := range fms {
			s += g.Observe(fm).AllDist
		}
		return s / 10
	}
	if small, large := mean(0.05), mean(1.0); large <= small {
		t.Fatalf("distance not increasing with σ: %v vs %v", small, large)
	}
}

func TestObserveDeterministic(t *testing.T) {
	net := models.MLP(rng.New(9), 12, []int{8}, 5)
	g := Capture(net, testPatterns(10, 12))
	faulty := faults.MakeFaulty(net, faults.LogNormal{Sigma: 0.4}, 21)
	a := g.Observe(faulty)
	b := g.Observe(faulty)
	if a.TopDist != b.TopDist || a.AllDist != b.AllDist ||
		a.Top1Changes != b.Top1Changes || a.Top5Changes != b.Top5Changes {
		t.Fatal("repeated observation of the same model differs")
	}
}

func TestDistancesBounded(t *testing.T) {
	// confidences live in [0,1], so per-class |Δ| ≤ 1 and both the mean
	// all-class distance and the top-ranked distance are bounded by 1
	net := models.MLP(rng.New(10), 12, []int{8}, 5)
	g := Capture(net, testPatterns(10, 12))
	faulty := faults.MakeFaulty(net, faults.LogNormal{Sigma: 5}, 23)
	o := g.Observe(faulty)
	if o.TopDist < 0 || o.TopDist > 1 || o.AllDist < 0 || o.AllDist > 1 {
		t.Fatalf("distances out of [0,1]: %+v", o)
	}
}

func TestClassDistCapsNonFinite(t *testing.T) {
	if classDist(math.NaN(), 0.5) != 1 || classDist(math.Inf(1), 0.5) != 1 {
		t.Fatal("non-finite target confidence not capped at distance 1")
	}
	t1, g1 := 0.7, 0.5
	if classDist(t1, g1) != math.Abs(t1-g1) {
		t.Fatal("finite distance altered")
	}
}

func TestObserveProbsCountsNonFinite(t *testing.T) {
	net := models.MLP(rng.New(11), 12, []int{8}, 5)
	g := Capture(net, testPatterns(4, 12))
	probs := g.Probs.Clone()
	probs.Data()[0] = math.NaN()
	probs.Data()[7] = math.Inf(1)
	o := g.ObserveProbs(probs)
	if o.NonFinite != 2 {
		t.Fatalf("NonFinite=%d, want 2", o.NonFinite)
	}
	if math.IsNaN(o.AllDist) || math.IsInf(o.AllDist, 0) {
		t.Fatalf("aggregate distance not finite: %v", o.AllDist)
	}
	if o.AllDist <= 0 || o.AllDist > 1 {
		t.Fatalf("poisoned entries should contribute capped distance: %v", o.AllDist)
	}
}

func TestTopKAllNaNRowDoesNotPanic(t *testing.T) {
	row := []float64{math.NaN(), math.NaN(), math.NaN()}
	got := topK(row, 3)
	if len(got) != 3 {
		t.Fatalf("topK on all-NaN row returned %v", got)
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 3 || seen[i] {
			t.Fatalf("topK on all-NaN row returned invalid indices %v", got)
		}
		seen[i] = true
	}
}
