package fleet

import (
	"testing"

	"reramtest/internal/monitor"
)

// dispatchCounts drains n dispatches and tallies placements.
func dispatchCounts(r *Router, n int) map[string]int {
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		id, _, ok := r.Dispatch()
		if !ok {
			break
		}
		counts[id]++
		r.Complete(id)
	}
	return counts
}

// TestRouterCostAwareWeighting pins the composite schedule: health dominates,
// cost rebalances within a health tier, and the historical weighting is
// untouched when the mode is off.
func TestRouterCostAwareWeighting(t *testing.T) {
	entries := []RouteEntry{
		// cheap healthy: at the median on both axes → 3·2+1+1 = 8 slots
		{ID: "cheap", Status: monitor.Healthy, EnergyRate: 10, CycleRate: 5},
		// expensive healthy: above both medians → 3·2 = 6 slots
		{ID: "spendy", Status: monitor.Healthy, EnergyRate: 100, CycleRate: 50},
		// cheap degraded: 3·1+1+1 = 5 slots — still below every healthy device
		{ID: "limpy", Status: monitor.Degraded, EnergyRate: 10, CycleRate: 5},
	}

	r := NewRouter(1)
	r.SetCostAware(true)
	r.Update(entries)
	counts := dispatchCounts(r, 19)
	if counts["cheap"] != 8 || counts["spendy"] != 6 || counts["limpy"] != 5 {
		t.Fatalf("cost-aware slot split = %v, want cheap:8 spendy:6 limpy:5", counts)
	}
	if counts["limpy"] >= counts["spendy"] {
		t.Fatalf("cost bonus let a Degraded device outrank a Healthy one: %v", counts)
	}

	// off: the historical 2/2/1 health-only weighting, byte-for-byte
	r2 := NewRouter(1)
	r2.Update(entries)
	counts2 := dispatchCounts(r2, 5)
	if counts2["cheap"] != 2 || counts2["spendy"] != 2 || counts2["limpy"] != 1 {
		t.Fatalf("historical slot split = %v, want cheap:2 spendy:2 limpy:1", counts2)
	}
}

// TestRouterCostAwareUnmetered pins the degenerate case: every rate zero
// (unmetered fleet) means every serving device sits at the median and earns
// both bonuses — the schedule reduces to 3× the health weighting, preserving
// the health-only dispatch RATIO exactly.
func TestRouterCostAwareUnmetered(t *testing.T) {
	entries := []RouteEntry{
		{ID: "a", Status: monitor.Healthy},
		{ID: "b", Status: monitor.Degraded},
	}
	r := NewRouter(1)
	r.SetCostAware(true)
	r.Update(entries)
	counts := dispatchCounts(r, 13)
	if counts["a"] != 8 || counts["b"] != 5 {
		t.Fatalf("unmetered cost-aware split = %v, want a:8 b:5", counts)
	}
}

// TestRouterCostAwareDeterministic: same entries, same dispatch sequence.
func TestRouterCostAwareDeterministic(t *testing.T) {
	entries := []RouteEntry{
		{ID: "x", Status: monitor.Healthy, EnergyRate: 1, CycleRate: 1},
		{ID: "y", Status: monitor.Healthy, EnergyRate: 9, CycleRate: 9},
	}
	seq := func() []string {
		r := NewRouter(1)
		r.SetCostAware(true)
		r.Update(entries)
		var out []string
		for i := 0; i < 14; i++ {
			id, _, ok := r.Dispatch()
			if !ok {
				break
			}
			out = append(out, id)
			r.Complete(id)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch sequence diverged at %d: %v vs %v", i, a, b)
		}
	}
}
