// Package fleet scales the hardened single-accelerator runtime
// (internal/health) to the deployment the paper's economics assume: a
// datacenter of ReRAM accelerators, each drifting and failing independently,
// monitored concurrently with live traffic. A Supervisor runs one
// health.Runtime per accelerator across a bounded worker pool, trips a
// per-device circuit breaker when the sensor path itself keeps failing
// (quarantining the device instead of burning retry budgets), routes
// inference requests only to Healthy/Degraded-but-serving devices with
// graceful load shedding, and journals every durable state transition
// through internal/journal so a supervisor crash loses nothing: replaying
// the journal reconstructs the fleet's confirmed statuses, hysteresis
// streaks, repair budgets and breaker positions exactly.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"reramtest/internal/health"
	"reramtest/internal/journal"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/reram"
	"reramtest/internal/testgen"
)

// Device is one accelerator under fleet supervision. Implementations must
// tolerate their methods being called from a worker goroutine, but never
// from more than one at a time (the supervisor partitions work per device).
type Device interface {
	// ID names the device uniquely within the fleet.
	ID() string
	// Infer is the monitored readout path. Campaign-backed devices route it
	// through a per-plant batch inference engine (internal/engine): the whole
	// pattern set flows through preallocated per-layer workspaces in one
	// call, bit-identical to a per-sample forward, so every journaled
	// distance and fingerprint is unchanged while the per-tick readout cost
	// drops. Engines are single-goroutine objects, which is exactly the
	// one-worker-per-device contract above.
	Infer() monitor.Infer
	// Repairer executes repair actions against this device (nil disables
	// repair).
	Repairer() health.Repairer
	// Reference is the model the device's monitor must be commissioned
	// against right now (it changes after a retraining repair).
	Reference() *nn.Network
	// Patterns is the concurrent-test stimulus set.
	Patterns() *testgen.PatternSet
}

// CostMetered is the optional Device facet exposing the hardware cost
// counter the device's engines charge. When a device implements it, the
// supervisor attaches the counter to the device's health runtime (so readout
// and repair work land in the right attribution classes), journals its
// snapshot in every tick record, restores it on Resume, and feeds per-tick
// spend rates to the cost-aware router.
type CostMetered interface {
	CostCounter() *reram.Counter
}

// Config tunes the fleet supervisor.
type Config struct {
	// Workers bounds the tick worker pool (0 → min(4, fleet size)).
	Workers int
	// Health tunes each device's hardened runtime.
	Health health.Config
	// Monitor sets each device's decision thresholds.
	Monitor monitor.Config
	// BreakerOpenAfter is how many consecutive sensor-fault rounds trip a
	// device's breaker open (0 → 2).
	BreakerOpenAfter int
	// BreakerCooldown is how many rounds an open breaker waits before a
	// half-open probe (0 → 3).
	BreakerCooldown int
	// RepairBudget is each device's lifetime repair allowance; exhausting it
	// retires the device to hardware service (0 → 6). Against a plain
	// health.Repairer it is counted in (apply, verify) cycles; against a
	// health.StrategyRepairer it is counted in strategy cost units
	// (repair.CostScrub, repair.CostRemap, …), so a cheap scrub spends less
	// lifetime than a cloud-edge retrain.
	RepairBudget int
	// MinServing is the load-shedding floor: the router refuses to dispatch
	// when fewer devices serve (0 → 1).
	MinServing int
	// CostAwareRouting switches the router to the composite placement score:
	// health weight plus a bonus for devices spending at or below the fleet
	// median energy and cycle rates since the last schedule rebuild. Off, the
	// router uses pure health-weighted round-robin (the historical behaviour).
	CostAwareRouting bool
	// CompactEvery is the auto-compaction cadence in ticks when the fleet
	// journals through a journal.Store: every CompactEvery-th tick folds the
	// WAL into a fresh snapshot generation even before the size threshold
	// (journal.StoreConfig.CompactBytes) arms. 0 leaves compaction purely
	// size-triggered. Ignored on the plain Writer path.
	CompactEvery int
}

// DefaultConfig returns fleet-reasonable parameters over the default
// hardened runtime.
func DefaultConfig() Config {
	return Config{
		Health:           health.DefaultConfig(),
		Monitor:          monitor.DefaultConfig(),
		BreakerOpenAfter: 2,
		BreakerCooldown:  3,
		RepairBudget:     6,
		MinServing:       1,
	}
}

// Validate rejects configurations the supervisor cannot operate under.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("fleet: Workers must be ≥ 0, got %d", c.Workers)
	}
	if c.BreakerOpenAfter < 0 || c.BreakerCooldown < 0 {
		return fmt.Errorf("fleet: breaker parameters must be ≥ 0")
	}
	if c.RepairBudget < 0 {
		return fmt.Errorf("fleet: RepairBudget must be ≥ 0, got %d", c.RepairBudget)
	}
	if c.MinServing < 0 {
		return fmt.Errorf("fleet: MinServing must be ≥ 0, got %d", c.MinServing)
	}
	if c.CompactEvery < 0 {
		return fmt.Errorf("fleet: CompactEvery must be ≥ 0, got %d", c.CompactEvery)
	}
	if err := c.Health.Validate(); err != nil {
		return err
	}
	return c.Monitor.Validate()
}

// withDefaults fills zero fields.
func (c Config) withDefaults(fleetSize int) Config {
	if c.Workers == 0 {
		c.Workers = 4
		if fleetSize < 4 {
			c.Workers = fleetSize
		}
	}
	if c.BreakerOpenAfter == 0 {
		c.BreakerOpenAfter = 2
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 3
	}
	if c.RepairBudget == 0 {
		c.RepairBudget = 6
	}
	if c.MinServing == 0 {
		c.MinServing = 1
	}
	return c
}

// deviceState is the supervisor's per-device bookkeeping.
type deviceState struct {
	dev       Device
	rt        *health.Runtime
	budget    int
	breaker   Breaker
	retired   bool
	decisions []RepairDecision // most recent maxDecisionLog strategy choices

	// counter is the device's cost counter when it is CostMetered (nil
	// otherwise); lastCost is its total at the previous schedule rebuild and
	// lastRate the spend between the last two rebuilds — the router's
	// placement signal.
	counter  *reram.Counter
	lastCost reram.Cost
	lastRate reram.Cost
}

// logDecision appends one repair decision, keeping only the newest
// maxDecisionLog entries.
func (ds *deviceState) logDecision(d RepairDecision) {
	ds.decisions = append(ds.decisions, d)
	if len(ds.decisions) > maxDecisionLog {
		ds.decisions = ds.decisions[len(ds.decisions)-maxDecisionLog:]
	}
}

// RoundResult is one device's outcome for one fleet tick.
type RoundResult struct {
	Device    string
	Round     int
	Confirmed monitor.Status
	Raw       monitor.Status

	SensorFault bool
	Rejected    int

	// Quarantined: the breaker was open (or the device retired) this round,
	// so no supervised monitoring ran.
	Quarantined bool
	// Probe/ProbeOK: a half-open breaker probe ran this round and its
	// outcome.
	Probe   bool
	ProbeOK bool
	// Tripped: this round's sensor fault opened the breaker.
	Tripped bool

	Repaired, Recovered, GaveUp bool
	Attempts                    int // repair cycles spent this round
	CostSpent                   int // budget units charged this round
	BudgetLeft                  int
	Retired                     bool
}

// String renders the result on one line.
func (r RoundResult) String() string {
	switch {
	case r.Retired:
		return fmt.Sprintf("%s r%d: RETIRED (budget exhausted) confirmed=%s", r.Device, r.Round, r.Confirmed)
	case r.Probe:
		verdict := "failed, breaker re-opened"
		if r.ProbeOK {
			verdict = "ok, breaker closed"
		}
		return fmt.Sprintf("%s r%d: quarantine probe %s", r.Device, r.Round, verdict)
	case r.Tripped:
		return fmt.Sprintf("%s r%d: raw=%s sensor fault → breaker TRIPPED, quarantined", r.Device, r.Round, r.Raw)
	case r.Quarantined:
		return fmt.Sprintf("%s r%d: quarantined (breaker open)", r.Device, r.Round)
	default:
		extra := ""
		if r.Repaired {
			extra = fmt.Sprintf(" repaired(attempts=%d recovered=%v budgetLeft=%d)", r.Attempts, r.Recovered, r.BudgetLeft)
		}
		if r.Tripped {
			extra += " [breaker TRIPPED]"
		}
		return fmt.Sprintf("%s r%d: confirmed=%s raw=%s%s", r.Device, r.Round, r.Confirmed, r.Raw, extra)
	}
}

// ErrUnjournaled marks the moment a supervisor loses its journal to a
// persistent disk fault and degrades to memory-only operation: the fleet
// keeps supervising and serving — availability over durability — but a crash
// from here on loses everything since the last successful group commit. The
// error is returned exactly once (by the Tick or compaction that hit the
// fault); afterwards the condition is visible through Unjournaled and
// JournalError, and surfaces operationally via /statsz.
var ErrUnjournaled = errors.New("fleet: journal lost to disk fault — supervising memory-only")

// Supervisor runs the fleet. It is not safe for concurrent use: Tick,
// Dispatch and Complete belong to one owner goroutine (the internal worker
// pool never escapes a Tick call).
type Supervisor struct {
	cfg     Config
	jw      *journal.Writer
	store   *journal.Store
	order   []string
	states  map[string]*deviceState
	router  *Router
	round   int
	resumes int

	// prevSnapRound is the round of the newest valid snapshot generation:
	// the next compaction keeps WAL records strictly after it, which is what
	// makes a fallback to that generation lossless (see journal.Store).
	prevSnapRound int
	// unjournaled/journalErr: degrade-to-memory state (see ErrUnjournaled).
	unjournaled bool
	journalErr  error
	// compactErr is the last compaction failure that did NOT poison the WAL
	// (e.g. a torn snapshot rename) — journaling continues, compaction will
	// be retried, operators can see the condition.
	compactErr error
}

// New commissions a supervisor over devices. jw may be nil (no durability:
// acceptable for tests and throwaway sims, never for deployment). The
// commissioning itself is journaled so a fleet that crashes before its first
// tick still replays.
func New(devices []Device, cfg Config, jw *journal.Writer) (*Supervisor, error) {
	s, err := build(devices, cfg, jw)
	if err != nil {
		return nil, err
	}
	if err := s.appendRecord(recordCommission); err != nil {
		return nil, err
	}
	return s, nil
}

// Resume reconstructs a supervisor from a crashed predecessor's journal
// records (as returned by journal.OpenAppend or journal.Replay on the same
// file; pass the reopened writer as jw so journaling continues). Every
// journaled device must be present in devices and its freshly captured
// commission fingerprint must match the journaled one — a mismatch means
// the monitor would be comparing the accelerator against a model the
// journal was not written for, and the resume is refused. Devices absent
// from the journal are commissioned fresh.
func Resume(devices []Device, cfg Config, jw *journal.Writer, payloads [][]byte) (*Supervisor, error) {
	snaps, round, err := ReplayRecords(payloads)
	if err != nil {
		return nil, err
	}
	s, err := build(devices, cfg, jw)
	if err != nil {
		return nil, err
	}
	if err := s.restore(snaps, round); err != nil {
		return nil, err
	}
	return s, nil
}

// NewStore commissions a supervisor journaling through a snapshot-compacting
// journal.Store instead of a bare Writer. If the commissioning record itself
// cannot be journaled (the disk is already faulting), the supervisor is
// still returned, live but memory-only, alongside an error matching
// ErrUnjournaled — the caller chooses between refusing to start and serving
// without durability.
func NewStore(devices []Device, cfg Config, store *journal.Store) (*Supervisor, error) {
	s, err := build(devices, cfg, nil)
	if err != nil {
		return nil, err
	}
	s.store = store
	s.prevSnapRound = -1
	if err := s.appendRecord(recordCommission); err != nil {
		if errors.Is(err, ErrUnjournaled) {
			return s, err
		}
		return nil, err
	}
	return s, nil
}

// ResumeStore reconstructs a supervisor from a Store recovery: the newest
// valid snapshot generation is folded first, then the WAL tail past it
// (ReplayRecovered). A snapshot-less recovery — a legacy WAL written by the
// bare-Writer path, or a fleet that never compacted — resumes from records
// alone, so old journals keep resuming unchanged through this path. The
// same fingerprint discipline as Resume applies.
func ResumeStore(devices []Device, cfg Config, store *journal.Store, rec journal.Recovered) (*Supervisor, error) {
	snaps, round, err := ReplayRecovered(rec)
	if err != nil {
		return nil, err
	}
	s, err := build(devices, cfg, nil)
	if err != nil {
		return nil, err
	}
	s.store = store
	s.prevSnapRound = -1
	if rec.Snapshot != nil {
		s.prevSnapRound = int(rec.SnapshotSeq)
	}
	if err := s.restore(snaps, round); err != nil {
		return nil, err
	}
	return s, nil
}

// restore folds replayed snapshots into a freshly built supervisor.
func (s *Supervisor) restore(snaps map[string]DeviceSnapshot, round int) error {
	s.round = round
	s.resumes = 1
	for id, snap := range snaps {
		ds, ok := s.states[id]
		if !ok {
			return fmt.Errorf("fleet: journal names device %q not present in the fleet", id)
		}
		if got := ds.rt.Monitor().Fingerprint(); got != snap.Fingerprint {
			return fmt.Errorf("fleet: device %q commission fingerprint %x does not match journaled %x — wrong reference model",
				id, got, snap.Fingerprint)
		}
		if err := ds.rt.RestoreState(snap.State); err != nil {
			return fmt.Errorf("fleet: device %q: %w", id, err)
		}
		ds.budget = snap.Budget
		ds.breaker = snap.Breaker
		ds.retired = snap.Retired
		ds.decisions = append([]RepairDecision(nil), snap.Decisions...)
		// the journaled spend is the durable truth: charges after the last
		// group commit died with the crash, exactly like every other field
		ds.counter.Restore(snap.Cost)
	}
	s.router.Update(s.servingEntries())
	return nil
}

// build commissions runtimes without journaling.
func build(devices []Device, cfg Config, jw *journal.Writer) (*Supervisor, error) {
	if len(devices) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinServing > len(devices) {
		// an impossible load-shedding floor would make the router shed every
		// request forever — a config bug better rejected at commissioning than
		// discovered as a 100% error rate in production
		return nil, fmt.Errorf("fleet: MinServing %d exceeds fleet size %d — the router could never dispatch",
			cfg.MinServing, len(devices))
	}
	cfg = cfg.withDefaults(len(devices))
	s := &Supervisor{
		cfg:    cfg,
		jw:     jw,
		states: make(map[string]*deviceState, len(devices)),
		router: NewRouter(cfg.MinServing),
	}
	s.router.SetCostAware(cfg.CostAwareRouting)
	for _, dev := range devices {
		id := dev.ID()
		if id == "" {
			return nil, errors.New("fleet: device with empty ID")
		}
		if _, dup := s.states[id]; dup {
			return nil, fmt.Errorf("fleet: duplicate device ID %q", id)
		}
		mon, err := monitor.New(dev.Reference(), dev.Patterns(), nil, cfg.Monitor)
		if err != nil {
			return nil, fmt.Errorf("fleet: commission %s: %w", id, err)
		}
		rt, err := health.New(mon, cfg.Health)
		if err != nil {
			return nil, fmt.Errorf("fleet: commission %s: %w", id, err)
		}
		s.order = append(s.order, id)
		ds := &deviceState{dev: dev, rt: rt, budget: cfg.RepairBudget}
		if cm, ok := dev.(CostMetered); ok {
			ds.counter = cm.CostCounter()
			rt.SetCostCounter(ds.counter)
		}
		s.states[id] = ds
	}
	s.router.Update(s.servingEntries())
	return s, nil
}

// Tick runs one supervised monitoring round across the fleet: every device
// concurrently (bounded by cfg.Workers), then one atomic group-commit
// journal record, then a router update. Results are returned in
// commissioning order. A journaling failure is returned after the round's
// state is already updated in memory — the caller must treat it as fatal
// for durability guarantees.
func (s *Supervisor) Tick() ([]RoundResult, error) { return s.TickCtx(context.Background()) }

// TickCtx is Tick with a cancellation context, plumbed into every device's
// supervised round (health.SuperviseBudgetCtx): a ctx canceled mid-tick cuts
// readout retry/backoff sleeps and stops repair escalation between attempts,
// so a draining frontend is never stuck behind a full backoff schedule. The
// round still completes structurally — every device produces a result and
// the tick is journaled — because a half-recorded tick would be worse than a
// slow one.
func (s *Supervisor) TickCtx(ctx context.Context) ([]RoundResult, error) {
	s.round++
	results := make([]RoundResult, len(s.order))

	var wg sync.WaitGroup
	sem := make(chan struct{}, s.cfg.Workers)
	for i, id := range s.order {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, ds *deviceState) {
			defer func() { <-sem; wg.Done() }()
			results[i] = s.tickDevice(ctx, ds)
		}(i, s.states[id])
	}
	wg.Wait()

	err := s.appendRecord(recordTick)
	if err == nil {
		err = s.maybeCompact()
	}
	s.router.Update(s.servingEntries())
	return results, err
}

// tickDevice runs one device's share of a tick. It touches only ds (and the
// device behind it), so devices proceed in parallel safely.
func (s *Supervisor) tickDevice(ctx context.Context, ds *deviceState) RoundResult {
	res := RoundResult{Device: ds.dev.ID(), Round: s.round}

	if ds.retired {
		res.Quarantined, res.Retired = true, true
		res.Confirmed = ds.rt.Confirmed()
		res.BudgetLeft = ds.budget
		return res
	}

	switch ds.breaker.State {
	case BreakerOpen:
		if !ds.breaker.Due(s.round, s.cfg.BreakerCooldown) {
			res.Quarantined = true
			res.Confirmed = ds.rt.Confirmed()
			res.BudgetLeft = ds.budget
			return res
		}
		ds.breaker.BeginProbe()
		fallthrough
	case BreakerHalfOpen:
		// cooled down: one cheap single-attempt probe instead of a full
		// retry-burning round
		res.Probe = true
		err := ds.rt.Probe(ds.dev.Infer())
		res.ProbeOK = err == nil
		ds.breaker.ProbeResult(res.ProbeOK, s.round)
		res.Quarantined = !res.ProbeOK
		res.Confirmed = ds.rt.Confirmed()
		res.BudgetLeft = ds.budget
		return res
	}

	// the whole remaining lifetime budget is granted: the runtime caps its
	// own spend (MaxRepairAttempts cycles on the action path; cost units and
	// MaxRepairAttempts both on the strategy-ladder path) and reports the
	// actual charge back in Episode.CostSpent
	ep := ds.rt.SuperviseBudgetCtx(ctx, ds.dev.Infer(), ds.dev.Repairer(), ds.budget)
	ds.budget -= ep.CostSpent
	for _, att := range ep.Attempts {
		name := att.Strategy
		if name == "" {
			name = att.Action.String()
		}
		ds.logDecision(RepairDecision{
			Round:    s.round,
			Strategy: name,
			Cost:     att.Cost,
			Verified: att.Verified,
			Failed:   att.ApplyErr != nil,
		})
	}

	res.Confirmed = ds.rt.Confirmed()
	res.Raw = ep.Trigger.Raw
	res.SensorFault = ep.Trigger.SensorFault
	res.Rejected = ep.Trigger.Rejected
	res.Repaired = ep.Repaired()
	res.Recovered = ep.Recovered
	res.GaveUp = ep.GaveUp
	res.Attempts = len(ep.Attempts)
	res.CostSpent = ep.CostSpent
	res.BudgetLeft = ds.budget

	res.Tripped = ds.breaker.ObserveRound(ep.Trigger.SensorFault, s.round, s.cfg.BreakerOpenAfter)
	res.Quarantined = res.Tripped
	if ep.GaveUp && (ep.RetireAdvised || ds.budget <= 0) {
		// either the lifetime budget is gone, or the runtime determined no
		// applicable strategy fits what remains: permanent quarantine,
		// hardware service required
		ds.retired = true
		res.Retired = true
	}
	return res
}

// currentRecord captures the fleet's full durable state as one record of the
// given kind.
func (s *Supervisor) currentRecord(kind string) Record {
	rec := Record{Type: kind, Round: s.round, Devices: make([]DeviceRecord, 0, len(s.order))}
	for _, id := range s.order {
		ds := s.states[id]
		rec.Devices = append(rec.Devices, DeviceRecord{
			Device:      id,
			Fingerprint: ds.rt.Monitor().Fingerprint(),
			State:       ds.rt.ExportState(),
			Budget:      ds.budget,
			Breaker:     ds.breaker,
			Retired:     ds.retired,
			Decisions:   append([]RepairDecision(nil), ds.decisions...),
			Cost:        ds.counter.Snapshot(),
		})
	}
	return rec
}

// Checkpoint renders the fleet's full durable state as one snapshot-record
// payload — what Compact publishes as a snapshot generation, and what
// operators can pull for an out-of-band state dump.
func (s *Supervisor) Checkpoint() ([]byte, error) {
	return encodeRecord(s.currentRecord(recordSnapshot))
}

// appendRecord journals the fleet's full durable state as one atomic record
// and syncs it to stable storage (group commit). On the Store path a
// journaling failure degrades the supervisor to memory-only operation (see
// ErrUnjournaled) instead of propagating raw I/O errors forever.
func (s *Supervisor) appendRecord(kind string) error {
	if (s.jw == nil && s.store == nil) || s.unjournaled {
		return nil
	}
	payload, err := encodeRecord(s.currentRecord(kind))
	if err != nil {
		return err
	}
	if s.store != nil {
		if err := s.store.Append(payload); err != nil {
			return s.degrade(err)
		}
		if err := s.store.Sync(); err != nil {
			return s.degrade(err)
		}
		return nil
	}
	if err := s.jw.Append(payload); err != nil {
		return err
	}
	return s.jw.Sync()
}

// degrade flips the supervisor into memory-only mode and returns the
// one-time ErrUnjournaled notification.
func (s *Supervisor) degrade(cause error) error {
	s.unjournaled = true
	s.journalErr = cause
	return fmt.Errorf("%w (cause: %v)", ErrUnjournaled, cause)
}

// maybeCompact runs auto-compaction when the WAL crossed its size threshold
// or the configured tick cadence came due.
func (s *Supervisor) maybeCompact() error {
	if s.store == nil || s.unjournaled {
		return nil
	}
	due := s.store.ShouldCompact()
	if s.cfg.CompactEvery > 0 && s.round > 0 && s.round%s.cfg.CompactEvery == 0 {
		due = true
	}
	if !due {
		return nil
	}
	return s.CompactNow()
}

// CompactNow folds the current fleet state into a fresh snapshot generation
// and rewrites the WAL to hold only the records after the previous
// generation — the retention that makes a one-generation fallback lossless.
// A failure that leaves the WAL healthy (say, a torn snapshot rename) is
// returned and remembered (CompactionError) but journaling continues; a
// failure that poisons the WAL degrades to memory-only like any other
// journaling loss.
func (s *Supervisor) CompactNow() error {
	if s.store == nil {
		return errors.New("fleet: CompactNow without a journal.Store")
	}
	if s.unjournaled {
		return fmt.Errorf("fleet: compact: %w", ErrUnjournaled)
	}
	payload, err := s.Checkpoint()
	if err != nil {
		return err
	}
	prev := s.prevSnapRound
	err = s.store.Compact(payload, uint64(s.round), func(rec []byte) bool {
		return recordRound(rec) > prev
	})
	if err != nil {
		if s.store.Err() != nil {
			return s.degrade(err)
		}
		s.compactErr = err
		return err
	}
	s.prevSnapRound = s.round
	s.compactErr = nil
	return nil
}

// servingEntries lists the devices eligible to serve traffic right now:
// breaker closed, not retired, confirmed status at worst Degraded — each
// annotated with its hardware spend since the previous schedule rebuild (the
// cost-aware router's placement signal; zero for unmetered devices).
func (s *Supervisor) servingEntries() []RouteEntry {
	entries := make([]RouteEntry, 0, len(s.order))
	for _, id := range s.order {
		ds := s.states[id]
		if ds.counter != nil {
			total := ds.counter.Snapshot().Total()
			delta := total.Minus(ds.lastCost)
			ds.lastCost = total
			ds.lastRate = delta
		}
		if ds.retired || ds.breaker.State != BreakerClosed {
			continue
		}
		if st := ds.rt.Confirmed(); st <= monitor.Degraded {
			entries = append(entries, RouteEntry{
				ID:         id,
				Status:     st,
				EnergyRate: ds.lastRate.EnergyFJ,
				CycleRate:  ds.lastRate.ComputeCycles,
			})
		}
	}
	return entries
}

// CostOf returns one metered device's cumulative hardware spend by class
// (zero breakdown, false when the device is unknown or unmetered).
func (s *Supervisor) CostOf(id string) (reram.CostBreakdown, bool) {
	ds, ok := s.states[id]
	if !ok || ds.counter == nil {
		return reram.CostBreakdown{}, false
	}
	return ds.counter.Snapshot(), true
}

// FleetCost sums every metered device's cumulative spend.
func (s *Supervisor) FleetCost() reram.CostBreakdown {
	var total reram.CostBreakdown
	for _, id := range s.order {
		total.Add(s.states[id].counter.Snapshot())
	}
	return total
}

// Dispatch routes one inference request through the health-aware router.
// ok=false means the fleet is shedding load.
func (s *Supervisor) Dispatch() (id string, ok bool) {
	id, _, ok = s.router.Dispatch()
	return id, ok
}

// DispatchAvoiding routes one request anywhere except `avoid` (the hedged
// retry: a request's second attempt must never land on the device that just
// stalled or faulted on it) and also reports the chosen device's serving
// status, so the frontend can flag responses produced by a
// Degraded-but-serving accelerator. Routing and the status snapshot come
// from the router's own schedule — safe to call from request goroutines
// concurrently with ticks.
func (s *Supervisor) DispatchAvoiding(avoid string) (id string, status monitor.Status, ok bool) {
	return s.router.DispatchAvoiding(avoid)
}

// DispatchAvoidingErr is DispatchAvoiding with a typed refusal: a failed
// placement returns an error matching ErrNoEligibleDevice explaining whether
// MinServing shedding, total quarantine or the avoided-candidate rule left
// the request nowhere to go. The serving frontend maps it into its own
// sentinel set so both layers' errors stay matchable end to end.
func (s *Supervisor) DispatchAvoidingErr(avoid string) (id string, status monitor.Status, err error) {
	return s.router.DispatchAvoidingErr(avoid)
}

// ReportServingFault feeds one serving-path failure on id — a panic, a
// poisoned or missing response observed by the inference frontend — into the
// device's circuit breaker, exactly as a monitoring-round sensor fault
// would. Enough consecutive serving faults (BreakerOpenAfter, shared with
// the monitoring path) trip the breaker: the device is quarantined and
// leaves the dispatch schedule immediately, without waiting for the next
// monitoring tick to notice. It reports whether this fault tripped the
// breaker.
//
// Like Tick, this belongs to the supervisor's owner goroutine (the serving
// frontend serialises it behind its backend lock).
func (s *Supervisor) ReportServingFault(id string) (tripped bool) {
	ds, ok := s.states[id]
	if !ok || ds.retired || ds.breaker.State != BreakerClosed {
		return false
	}
	tripped = ds.breaker.ObserveRound(true, s.round, s.cfg.BreakerOpenAfter)
	if tripped {
		s.router.Update(s.servingEntries())
	}
	return tripped
}

// Complete retires one in-flight request from id.
func (s *Supervisor) Complete(id string) { s.router.Complete(id) }

// Router exposes the router for drain/in-flight inspection.
func (s *Supervisor) Router() *Router { return s.router }

// Round returns the number of completed fleet ticks.
func (s *Supervisor) Round() int { return s.round }

// Resumed reports whether this supervisor was reconstructed from a journal.
func (s *Supervisor) Resumed() bool { return s.resumes > 0 }

// Unjournaled reports whether a disk fault forced the supervisor into
// memory-only operation: still serving, no longer durable.
func (s *Supervisor) Unjournaled() bool { return s.unjournaled }

// JournalError returns the disk fault that cost the supervisor its journal
// (nil while durable).
func (s *Supervisor) JournalError() error { return s.journalErr }

// CompactionError returns the most recent compaction failure that left the
// WAL healthy (nil after a clean compaction; poisoning failures degrade to
// memory-only instead and show up in JournalError).
func (s *Supervisor) CompactionError() error { return s.compactErr }

// Store exposes the snapshot-compacting journal store when the supervisor
// runs over one (nil on the bare-Writer and unjournaled paths).
func (s *Supervisor) Store() *journal.Store { return s.store }

// DeviceIDs returns the fleet members in commissioning order.
func (s *Supervisor) DeviceIDs() []string { return append([]string(nil), s.order...) }

// Serving returns the IDs currently eligible for traffic.
func (s *Supervisor) Serving() []string {
	entries := s.servingEntries()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out
}

// Retired returns the IDs permanently withdrawn from service: repair budget
// exhausted or retirement advised by the strategy ladder. Unlike a
// quarantine, retirement never heals — a fleet whose every device is retired
// is starved for good, which is the signal a sharded frontend uses to drain
// the whole shard instead of waiting for a recovery that cannot come.
func (s *Supervisor) Retired() []string {
	var out []string
	for _, id := range s.order {
		if s.states[id].retired {
			out = append(out, id)
		}
	}
	return out
}

// Quarantined returns the IDs currently not serving: breaker open/half-open
// or retired.
func (s *Supervisor) Quarantined() []string {
	var out []string
	for _, id := range s.order {
		ds := s.states[id]
		if ds.retired || ds.breaker.State != BreakerClosed {
			out = append(out, id)
		}
	}
	return out
}

// Snapshot captures every device's current durable state, keyed by ID —
// the in-memory twin of what a tick record journals. Crash/restart soaks
// compare Snapshot maps between a replayed fleet and an uninterrupted one.
func (s *Supervisor) Snapshot() map[string]DeviceSnapshot {
	out := make(map[string]DeviceSnapshot, len(s.order))
	for _, id := range s.order {
		ds := s.states[id]
		out[id] = DeviceSnapshot{
			Round:       s.round,
			Fingerprint: ds.rt.Monitor().Fingerprint(),
			State:       ds.rt.ExportState(),
			Budget:      ds.budget,
			Breaker:     ds.breaker,
			Retired:     ds.retired,
			Decisions:   append([]RepairDecision(nil), ds.decisions...),
			Cost:        ds.counter.Snapshot(),
		}
	}
	return out
}

// StatusOf returns the confirmed status of one device (and whether the ID
// is known).
func (s *Supervisor) StatusOf(id string) (monitor.Status, bool) {
	ds, ok := s.states[id]
	if !ok {
		return 0, false
	}
	return ds.rt.Confirmed(), true
}

// RuntimeOf exposes a device's hardened runtime for inspection (read-mostly).
func (s *Supervisor) RuntimeOf(id string) (*health.Runtime, bool) {
	ds, ok := s.states[id]
	if !ok {
		return nil, false
	}
	return ds.rt, true
}
