package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"reramtest/internal/journal"
	"reramtest/internal/reram"
)

// precostFixture is the committed WAL written by the pre-cost-accounting
// schema: structurally a journal produced today, with every "cost" key
// stripped from the device records. Regenerate with
//
//	FLEET_REGEN_FIXTURES=1 go test ./internal/fleet -run RegenPrecostFixture
const precostFixture = "testdata/precost.wal"

// meteredFake wraps a scripted device with a live cost counter, making it
// fleet.CostMetered so the supervisor journals and restores its spend.
type meteredFake struct {
	*fakeDevice
	ctr *reram.Counter
}

func (d meteredFake) CostCounter() *reram.Counter { return d.ctr }

func asMetered(devs []*fakeDevice) ([]Device, []*reram.Counter) {
	out := make([]Device, len(devs))
	ctrs := make([]*reram.Counter, len(devs))
	for i, d := range devs {
		ctrs[i] = reram.NewCounter()
		out[i] = meteredFake{fakeDevice: d, ctr: ctrs[i]}
	}
	return out, ctrs
}

// TestRegenPrecostFixture rewrites the committed fixture: run a real
// supervised fleet, then strip the "cost" key from every journaled device —
// producing byte-wise what a pre-cost supervisor would have written.
func TestRegenPrecostFixture(t *testing.T) {
	if os.Getenv("FLEET_REGEN_FIXTURES") == "" {
		t.Skip("set FLEET_REGEN_FIXTURES=1 to rewrite testdata/precost.wal")
	}
	dir := t.TempDir()
	jw, err := journal.Create(filepath.Join(dir, "live.wal"))
	if err != nil {
		t.Fatal(err)
	}
	devs := testFleet(2)
	s, err := New(asDevices(devs), testConfig(), jw)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		advance(devs, round)
		if _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	payloads, _, err := journal.Replay(filepath.Join(dir, "live.wal"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for _, p := range payloads {
		var rec map[string]any
		// UseNumber: the fingerprint is a full-width uint64 and must not
		// round-trip through float64
		dec := json.NewDecoder(bytes.NewReader(p))
		dec.UseNumber()
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if devices, ok := rec["devices"].([]any); ok {
			for _, d := range devices {
				delete(d.(map[string]any), "cost")
			}
		}
		stripped, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(journal.Encode(stripped))
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(precostFixture, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestResumeJournalWithoutCostFields is the schema-evolution gate: a WAL
// written before cost accounting existed must Resume cleanly, backfilling a
// zero cost breakdown — no error, no invented spend, and the restored
// counter actually reset to the journaled (zero) truth.
func TestResumeJournalWithoutCostFields(t *testing.T) {
	raw, err := os.ReadFile(precostFixture)
	if err != nil {
		t.Fatalf("committed fixture missing: %v", err)
	}
	payloads, consumed := journal.DecodeAll(raw)
	if consumed != len(raw) || len(payloads) < 2 {
		t.Fatalf("fixture damaged: %d/%d bytes, %d records", consumed, len(raw), len(payloads))
	}
	for i, p := range payloads {
		if bytes.Contains(p, []byte(`"cost"`)) {
			t.Fatalf("fixture record %d carries a cost key — no longer old-format", i)
		}
	}

	snaps, round, err := ReplayRecords(payloads)
	if err != nil {
		t.Fatalf("old-format WAL failed replay: %v", err)
	}
	if round != 3 || len(snaps) != 2 {
		t.Fatalf("replayed round %d with %d devices, want 3 with 2", round, len(snaps))
	}
	for id, snap := range snaps {
		if !snap.Cost.Total().IsZero() {
			t.Fatalf("device %s: old WAL backfilled non-zero cost %+v", id, snap.Cost)
		}
	}

	// resume with metered devices whose counters are deliberately dirty: the
	// journaled truth (zero) must win over in-memory residue
	devs := testFleet(2)
	metered, ctrs := asMetered(devs)
	for _, c := range ctrs {
		c.Charge(reram.Cost{ComputeCycles: 999, EnergyFJ: 999})
	}
	jw, err := journal.Create(filepath.Join(t.TempDir(), "resumed.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	s, err := Resume(metered, testConfig(), jw, payloads)
	if err != nil {
		t.Fatalf("Resume over old-format WAL: %v", err)
	}
	for _, c := range ctrs {
		if !c.Snapshot().Total().IsZero() {
			t.Fatalf("resume did not restore the journaled zero spend: %+v", c.Snapshot())
		}
	}

	// and the resumed supervisor journals the NEW schema from here on: the
	// next tick's record carries cost for every device
	advance(devs, 4)
	if _, err := s.Tick(); err != nil {
		t.Fatal(err)
	}
	for id, snap := range s.Snapshot() {
		if snap.Round != 4 {
			t.Fatalf("device %s did not advance past the resumed round: %+v", id, snap)
		}
	}
}
