package fleet

import "reramtest/internal/monitor"

// RouteEntry is one serving-eligible accelerator the supervisor offers the
// router after a tick: breaker closed, not retired, confirmed status at
// worst Degraded.
type RouteEntry struct {
	ID     string
	Status monitor.Status
}

// Router dispatches inference requests across the serving members of the
// fleet with health-aware weighting: a Healthy accelerator receives twice
// the share of a Degraded-but-serving one, and devices the health layer has
// condemned (Impaired/Critical, quarantined, retired) receive nothing — the
// supervisor never even offers them. When fewer than minServing devices
// remain the router sheds load outright rather than overdriving survivors or
// routing into known-bad silicon.
//
// The router also carries per-device in-flight counts so a device leaving
// the serving set drains visibly: no new requests land on it, and the
// supervisor can wait for Drained before handing it to repair or service.
//
// Like the supervisor that owns it, a Router is not safe for concurrent use.
type Router struct {
	minServing int
	schedule   []string // weighted round-robin expansion
	cursor     int
	inflight   map[string]int
	routed     int
	sheds      int
}

// NewRouter returns a router that sheds when fewer than minServing devices
// serve (minServing < 1 is treated as 1).
func NewRouter(minServing int) *Router {
	if minServing < 1 {
		minServing = 1
	}
	return &Router{minServing: minServing, inflight: make(map[string]int)}
}

// weightFor maps a serving status to its dispatch weight.
func weightFor(s monitor.Status) int {
	switch s {
	case monitor.Healthy:
		return 2
	case monitor.Degraded:
		return 1
	default:
		return 0 // Impaired/Critical never serve
	}
}

// Update rebuilds the dispatch schedule from this tick's serving set. Order
// is preserved (the supervisor passes devices in commissioning order), so
// the schedule — and therefore routing — is deterministic.
func (r *Router) Update(entries []RouteEntry) {
	r.schedule = r.schedule[:0]
	serving := 0
	for _, e := range entries {
		w := weightFor(e.Status)
		if w == 0 {
			continue
		}
		serving++
		for i := 0; i < w; i++ {
			r.schedule = append(r.schedule, e.ID)
		}
	}
	if serving < r.minServing {
		// graceful shed: better to reject load than to route it into a fleet
		// too damaged to answer honestly
		r.schedule = r.schedule[:0]
	}
	if len(r.schedule) == 0 {
		r.cursor = 0
	} else {
		r.cursor %= len(r.schedule)
	}
}

// Dispatch routes one request: it returns the chosen device, or ok=false
// when the fleet is shedding load.
func (r *Router) Dispatch() (id string, ok bool) {
	if len(r.schedule) == 0 {
		r.sheds++
		return "", false
	}
	id = r.schedule[r.cursor]
	r.cursor = (r.cursor + 1) % len(r.schedule)
	r.inflight[id]++
	r.routed++
	return id, true
}

// Complete retires one in-flight request from id.
func (r *Router) Complete(id string) {
	if r.inflight[id] > 0 {
		r.inflight[id]--
	}
}

// InFlight returns the number of requests currently outstanding on id.
func (r *Router) InFlight(id string) int { return r.inflight[id] }

// Drained reports whether id has no outstanding requests — a quarantined
// device must reach this state before invasive repair or replacement.
func (r *Router) Drained(id string) bool { return r.inflight[id] == 0 }

// Stats returns lifetime dispatch counters: requests routed and requests
// shed.
func (r *Router) Stats() (routed, sheds int) { return r.routed, r.sheds }
