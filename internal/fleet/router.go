package fleet

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"reramtest/internal/monitor"
)

// ErrNoEligibleDevice is the typed refusal the router returns when it has no
// legal placement for a request: MinServing shedding emptied the schedule, or
// the only scheduled candidate is the one the caller must avoid. The serving
// frontend wraps it in its own ErrNoDevices sentinel, so callers can match
// either layer's error (errors.Is on both holds).
var ErrNoEligibleDevice = errors.New("fleet: no eligible serving device")

// RouteEntry is one serving-eligible accelerator the supervisor offers the
// router after a tick: breaker closed, not retired, confirmed status at
// worst Degraded.
type RouteEntry struct {
	ID     string
	Status monitor.Status
	// EnergyRate and CycleRate are the device's hardware spend (modeled
	// femtojoules and crossbar activation cycles) since the previous schedule
	// rebuild. Zero for unmetered devices. Only the cost-aware schedule reads
	// them.
	EnergyRate uint64
	CycleRate  uint64
}

// Router dispatches inference requests across the serving members of the
// fleet with health-aware weighting: a Healthy accelerator receives twice
// the share of a Degraded-but-serving one, and devices the health layer has
// condemned (Impaired/Critical, quarantined, retired) receive nothing — the
// supervisor never even offers them. When fewer than minServing devices
// remain the router sheds load outright rather than overdriving survivors or
// routing into known-bad silicon.
//
// The router also carries per-device in-flight counts so a device leaving
// the serving set drains visibly: no new requests land on it, and the
// supervisor can wait for Drained before handing it to repair or service.
//
// Unlike the supervisor that owns it, a Router IS safe for concurrent use:
// the serving frontend (internal/serve) dispatches from many worker
// goroutines while the supervisor's owner goroutine rebuilds the schedule
// after each tick. All methods serialise on one internal mutex — the
// schedule is a handful of string slots, so the critical sections are
// nanoseconds against inference calls that are micro- to milliseconds.
type Router struct {
	mu         sync.Mutex
	minServing int
	costAware  bool
	schedule   []string // weighted round-robin expansion
	status     map[string]monitor.Status
	cursor     int
	inflight   map[string]int
	routed     int
	sheds      int
	offered    int // serving devices the supervisor offered at the last Update
}

// NewRouter returns a router that sheds when fewer than minServing devices
// serve (minServing < 1 is treated as 1).
func NewRouter(minServing int) *Router {
	if minServing < 1 {
		minServing = 1
	}
	return &Router{minServing: minServing, inflight: make(map[string]int),
		status: make(map[string]monitor.Status)}
}

// SetCostAware switches the router between pure health-weighted round-robin
// (false, the historical behaviour) and the cost-aware composite schedule
// (see weightCostAware). Takes effect at the next Update.
func (r *Router) SetCostAware(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.costAware = on
}

// weightFor maps a serving status to its dispatch weight.
func weightFor(s monitor.Status) int {
	switch s {
	case monitor.Healthy:
		return 2
	case monitor.Degraded:
		return 1
	default:
		return 0 // Impaired/Critical never serve
	}
}

// weightCostAware is the composite placement score: 3× the health weight,
// plus one bonus slot each for spending at or below the serving set's median
// energy rate and median cycle rate since the last rebuild. All-integer and
// computed from a deterministic median, so the schedule stays reproducible;
// health dominates by construction (a Healthy device scores ≥ 6, a Degraded
// one ≤ 5), cost only rebalances within a health tier.
func weightCostAware(e RouteEntry, medianEnergy, medianCycles uint64) int {
	w := weightFor(e.Status)
	if w == 0 {
		return 0
	}
	score := 3 * w
	if e.EnergyRate <= medianEnergy {
		score++
	}
	if e.CycleRate <= medianCycles {
		score++
	}
	return score
}

// medianRate returns the lower median of rates (empty → 0) without mutating
// the input.
func medianRate(rates []uint64) uint64 {
	if len(rates) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), rates...)
	slices.Sort(sorted)
	return sorted[(len(sorted)-1)/2]
}

// Update rebuilds the dispatch schedule from this tick's serving set. Order
// is preserved (the supervisor passes devices in commissioning order), so
// the schedule — and therefore routing — is deterministic.
func (r *Router) Update(entries []RouteEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.schedule = r.schedule[:0]
	clear(r.status)
	var medianEnergy, medianCycles uint64
	if r.costAware {
		energies := make([]uint64, 0, len(entries))
		cycles := make([]uint64, 0, len(entries))
		for _, e := range entries {
			if weightFor(e.Status) == 0 {
				continue
			}
			energies = append(energies, e.EnergyRate)
			cycles = append(cycles, e.CycleRate)
		}
		medianEnergy, medianCycles = medianRate(energies), medianRate(cycles)
	}
	serving := 0
	for _, e := range entries {
		w := weightFor(e.Status)
		if r.costAware {
			w = weightCostAware(e, medianEnergy, medianCycles)
		}
		if w == 0 {
			continue
		}
		serving++
		r.status[e.ID] = e.Status
		for i := 0; i < w; i++ {
			r.schedule = append(r.schedule, e.ID)
		}
	}
	r.offered = serving
	if serving < r.minServing {
		// graceful shed: better to reject load than to route it into a fleet
		// too damaged to answer honestly
		r.schedule = r.schedule[:0]
		clear(r.status)
	}
	if len(r.schedule) == 0 {
		r.cursor = 0
	} else {
		r.cursor %= len(r.schedule)
	}
}

// Dispatch routes one request: it returns the chosen device and its serving
// status, or ok=false when the fleet is shedding load.
func (r *Router) Dispatch() (id string, status monitor.Status, ok bool) {
	return r.DispatchAvoiding("")
}

// DispatchAvoiding is Dispatch with one device excluded — the hedged-retry
// path: a request whose first attempt stalled or faulted on `avoid` must
// land anywhere else (quarantined devices are never in the schedule to begin
// with). ok=false when the schedule is empty or offers only the avoided
// device; the caller then has no legal second placement and reports a typed
// error instead of doubling down on the suspect accelerator.
func (r *Router) DispatchAvoiding(avoid string) (id string, status monitor.Status, ok bool) {
	id, status, err := r.DispatchAvoidingErr(avoid)
	return id, status, err == nil
}

// DispatchAvoidingErr is DispatchAvoiding with a typed refusal: when no legal
// placement exists it returns an error matching ErrNoEligibleDevice that says
// why — MinServing shedding emptied the schedule, every serving device is
// quarantined, or the only candidate is the avoided one.
func (r *Router) DispatchAvoidingErr(avoid string) (id string, status monitor.Status, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for probe := 0; probe < len(r.schedule); probe++ {
		candidate := r.schedule[r.cursor]
		r.cursor = (r.cursor + 1) % len(r.schedule)
		if candidate == avoid {
			continue
		}
		r.inflight[candidate]++
		r.routed++
		return candidate, r.status[candidate], nil
	}
	r.sheds++
	switch {
	case len(r.schedule) == 0 && r.offered < r.minServing:
		return "", 0, fmt.Errorf("%w: shedding load, %d device(s) serving < MinServing floor %d",
			ErrNoEligibleDevice, r.offered, r.minServing)
	case len(r.schedule) == 0:
		return "", 0, fmt.Errorf("%w: empty dispatch schedule", ErrNoEligibleDevice)
	default:
		return "", 0, fmt.Errorf("%w: only candidate %q is excluded from this placement",
			ErrNoEligibleDevice, avoid)
	}
}

// Complete retires one in-flight request from id.
func (r *Router) Complete(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inflight[id] > 0 {
		r.inflight[id]--
	}
}

// InFlight returns the number of requests currently outstanding on id.
func (r *Router) InFlight(id string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inflight[id]
}

// Drained reports whether id has no outstanding requests — a quarantined
// device must reach this state before invasive repair or replacement.
func (r *Router) Drained(id string) bool { return r.InFlight(id) == 0 }

// Serving returns the number of distinct devices in the current schedule.
func (r *Router) Serving() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.status)
}

// Stats returns lifetime dispatch counters: requests routed and requests
// shed.
func (r *Router) Stats() (routed, sheds int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.routed, r.sheds
}
