package fleet

import (
	"encoding/json"
	"fmt"

	"reramtest/internal/health"
	"reramtest/internal/journal"
	"reramtest/internal/reram"
)

// RepairDecision is one journaled strategy choice: which rung of the repair
// ladder ran on which round, what it charged against the lifetime budget,
// and how it ended. The decision log is what makes crash recovery honest
// about repair history — after a restart the resumed supervisor knows not
// just the remaining budget but how it was spent.
type RepairDecision struct {
	Round    int    `json:"round"`
	Strategy string `json:"strategy"`
	Cost     int    `json:"cost"`
	Verified bool   `json:"verified,omitempty"`
	Failed   bool   `json:"failed,omitempty"` // the apply itself errored
}

// maxDecisionLog caps the per-device decision history carried in every
// journal record. Group commits rewrite full device state each tick, so an
// unbounded log would grow every record for the device's whole life; 64
// decisions is deeper than any plausible escalation history while keeping
// records O(1).
const maxDecisionLog = 64

// DeviceRecord is one device's durable state inside a journal record:
// hysteresis snapshot, remaining repair budget, breaker position,
// retirement flag, the recent repair-strategy decision log and the current
// commission fingerprint (stimulus patterns + golden confidences hashed
// bit-exactly; it moves when a retraining repair recommissions the monitor).
type DeviceRecord struct {
	Device      string           `json:"device"`
	Fingerprint uint64           `json:"fingerprint"`
	State       health.State     `json:"state"`
	Budget      int              `json:"budget"`
	Breaker     Breaker          `json:"breaker"`
	Retired     bool             `json:"retired,omitempty"`
	Decisions   []RepairDecision `json:"decisions,omitempty"`
	// Cost is the device's cumulative hardware spend by attribution class.
	// Journals written before cost accounting existed simply omit the key;
	// replay backfills the zero breakdown, so old WALs resume cleanly with
	// the meter restarting from zero.
	Cost reram.CostBreakdown `json:"cost"`
}

// Record is one journaled durable state transition for the whole fleet.
// Three kinds exist today:
//
//   - "commission": written once when the supervisor first arms the fleet.
//   - "tick": written after every supervised fleet round.
//   - "snapshot": the full fleet state as a compaction anchor — the payload
//     of a journal.Store snapshot generation, never appended to the WAL
//     itself. Structurally identical to a tick (every record already carries
//     full state; group commit made ticks self-contained from day one), so
//     replay treats all three the same way.
//
// A tick is journaled as ONE record covering every device — a group commit.
// The CRC framing of internal/journal makes each record atomic, so a crash
// mid-write tears the whole tick off, never half a fleet: after replay every
// device agrees on which round was the last durable one. Records are JSON
// inside the framing: the framing proves integrity, the JSON keeps the
// schema greppable in the field. Replay is last-record-wins.
type Record struct {
	Type    string         `json:"type"`
	Round   int            `json:"round"`
	Devices []DeviceRecord `json:"devices"`
}

// Record types.
const (
	recordCommission = "commission"
	recordTick       = "tick"
	recordSnapshot   = "snapshot"
)

// encodeRecord renders a record as its journal payload.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode %s record: %w", rec.Type, err)
	}
	return payload, nil
}

// DeviceSnapshot is the replayed durable state of one device: what the
// journal proves the supervisor knew when it last reached stable storage.
type DeviceSnapshot struct {
	Round       int
	Fingerprint uint64
	State       health.State
	Budget      int
	Breaker     Breaker
	Retired     bool
	Decisions   []RepairDecision
	// Cost is the cumulative per-class hardware spend as of the snapshot
	// (zero for journals predating cost accounting).
	Cost reram.CostBreakdown
}

// Validate rejects snapshots that could not have been journaled by a
// correct supervisor — the defense in depth above the journal's CRC layer.
func (s DeviceSnapshot) Validate() error {
	if s.Round < 0 {
		return fmt.Errorf("fleet: snapshot round %d < 0", s.Round)
	}
	if s.Budget < 0 {
		return fmt.Errorf("fleet: snapshot budget %d < 0", s.Budget)
	}
	if err := s.State.Validate(); err != nil {
		return err
	}
	if len(s.Decisions) > maxDecisionLog {
		return fmt.Errorf("fleet: snapshot decision log %d exceeds cap %d", len(s.Decisions), maxDecisionLog)
	}
	for i, d := range s.Decisions {
		if d.Round < 0 {
			return fmt.Errorf("fleet: snapshot decision %d: negative round %d", i, d.Round)
		}
		if d.Strategy == "" {
			return fmt.Errorf("fleet: snapshot decision %d names no strategy", i)
		}
		if d.Cost < 0 {
			return fmt.Errorf("fleet: snapshot decision %d: negative cost %d", i, d.Cost)
		}
	}
	return s.Breaker.Validate()
}

// ReplayRecords folds journal payloads into per-device snapshots (later
// records win) and returns the last fully committed round. Unknown record
// types are skipped for forward compatibility; a payload that does not parse
// as JSON is an error — the CRC framing already proved it was written
// intact, so garbage here means a software bug, not a torn write.
func ReplayRecords(payloads [][]byte) (snaps map[string]DeviceSnapshot, round int, err error) {
	return foldRecords(make(map[string]DeviceSnapshot), 0, -1, payloads)
}

// ReplayRecovered folds a journal.Store recovery: the snapshot record first
// (when one exists), then every WAL record from a round the snapshot does
// not already cover. Records at or below the snapshot's sequence are stale —
// a crash between snapshot publish and WAL rewrite legitimately leaves them
// behind — and are skipped rather than replayed backwards over newer state.
// A snapshot-less recovery (legacy WAL, or a fleet too young to have
// compacted) degenerates to plain ReplayRecords.
func ReplayRecovered(rec journal.Recovered) (snaps map[string]DeviceSnapshot, round int, err error) {
	snaps = make(map[string]DeviceSnapshot)
	if rec.Snapshot == nil {
		return foldRecords(snaps, 0, -1, rec.Records)
	}
	snaps, round, err = foldRecords(snaps, 0, -1, [][]byte{rec.Snapshot})
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: snapshot generation %d: %w", rec.SnapshotGen, err)
	}
	return foldRecords(snaps, round, int(rec.SnapshotSeq), rec.Records)
}

// foldRecords is the shared replay fold: last record wins, records with a
// round at or below minRound are skipped (minRound < 0 disables filtering).
func foldRecords(snaps map[string]DeviceSnapshot, round, minRound int, payloads [][]byte) (map[string]DeviceSnapshot, int, error) {
	for i, p := range payloads {
		var rec Record
		if err := json.Unmarshal(p, &rec); err != nil {
			return nil, 0, fmt.Errorf("fleet: journal record %d unparseable: %w", i, err)
		}
		switch rec.Type {
		case recordCommission, recordTick, recordSnapshot:
			if rec.Round < 0 {
				return nil, 0, fmt.Errorf("fleet: journal record %d: negative round %d", i, rec.Round)
			}
			if minRound >= 0 && rec.Round <= minRound {
				continue // superseded by the snapshot the caller already folded
			}
			for _, d := range rec.Devices {
				if d.Device == "" {
					return nil, 0, fmt.Errorf("fleet: journal record %d names no device", i)
				}
				snap := DeviceSnapshot{
					Round:       rec.Round,
					Fingerprint: d.Fingerprint,
					State:       d.State,
					Budget:      d.Budget,
					Breaker:     d.Breaker,
					Retired:     d.Retired,
					Decisions:   append([]RepairDecision(nil), d.Decisions...),
					Cost:        d.Cost,
				}
				if err := snap.Validate(); err != nil {
					return nil, 0, fmt.Errorf("fleet: journal record %d for %s: %w", i, d.Device, err)
				}
				snaps[d.Device] = snap
			}
			round = rec.Round
		default:
			// future record type: skip, do not fail the whole replay
		}
	}
	return snaps, round, nil
}

// recordRound parses only the round of a journal payload — the compaction
// keep-predicate's key. An unparseable payload returns a huge round so the
// predicate keeps it: dropping a record the supervisor cannot read would be
// silent data loss, keeping it is merely a few wasted WAL bytes.
func recordRound(p []byte) int {
	var rec struct {
		Round *int `json:"round"`
	}
	if json.Unmarshal(p, &rec) != nil || rec.Round == nil {
		return 1 << 62
	}
	return *rec.Round
}
