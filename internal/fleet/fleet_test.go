package fleet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"reramtest/internal/health"
	"reramtest/internal/journal"
	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// fakeDevice is a scripted accelerator: persistent damage appears at a fixed
// round (cleared by a successful repair), the sensor path dies over a fixed
// round window, and everything is a pure function of the externally advanced
// round plus the device's own mutable state — so the same script replays
// identically across a supervisor crash, exactly like physical hardware
// whose state survives the monitoring process.
type fakeDevice struct {
	id       string
	net      *nn.Network
	patterns *testgen.PatternSet

	round            int
	damageFrom       int // round at which persistent damage appears (0 = never)
	damaged          bool
	deadFrom, deadTo int // sensor-dead window [from, to] (0 = never)

	repairs     int
	failRepairs bool // repair tooling broken: every Apply errors
}

func (d *fakeDevice) ID() string                    { return d.id }
func (d *fakeDevice) Reference() *nn.Network        { return d.net }
func (d *fakeDevice) Patterns() *testgen.PatternSet { return d.patterns }
func (d *fakeDevice) Repairer() health.Repairer     { return d }

// SetRound advances scripted time (the test's injection hook, like the
// campaign plant's SetRound).
func (d *fakeDevice) SetRound(r int) {
	d.round = r
	if d.damageFrom > 0 && r == d.damageFrom {
		d.damaged = true
	}
}

func (d *fakeDevice) sensorDead() bool {
	return d.deadFrom > 0 && d.round >= d.deadFrom && d.round <= d.deadTo
}

func (d *fakeDevice) Infer() monitor.Infer {
	return func(x *tensor.Tensor) *tensor.Tensor {
		if d.sensorDead() {
			panic("fakeDevice: sensor dead")
		}
		probs := nn.Softmax(d.net.Forward(x))
		if d.damaged {
			probs.Apply(func(v float64) float64 { return v + 0.2 })
		}
		return probs
	}
}

func (d *fakeDevice) Apply(repair.Action) (*nn.Network, error) {
	d.repairs++
	if d.failRepairs {
		return nil, errors.New("fakeDevice: repair tooling offline")
	}
	d.damaged = false
	return nil, nil
}

// testFleet builds n scripted devices with identical (but separately owned)
// tiny reference models — nn.Network forward passes use per-layer scratch
// buffers, so concurrent device rounds must never share one instance.
func testFleet(n int) []*fakeDevice {
	patterns := &testgen.PatternSet{
		Name: "t", Method: "plain",
		X:      tensor.RandUniform(rng.New(2), 0, 1, 8, 16),
		Labels: make([]int, 8),
	}
	devs := make([]*fakeDevice, n)
	for i := range devs {
		devs[i] = &fakeDevice{id: fmt.Sprintf("accel-%02d", i),
			net: models.MLP(rng.New(1), 16, []int{12}, 5), patterns: patterns}
	}
	return devs
}

func asDevices(devs []*fakeDevice) []Device {
	out := make([]Device, len(devs))
	for i, d := range devs {
		out[i] = d
	}
	return out
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Health.Sleep = func(time.Duration) {}
	return cfg
}

func advance(devs []*fakeDevice, round int) {
	for _, d := range devs {
		d.SetRound(round)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	var b Breaker
	if b.ObserveRound(true, 1, 2) {
		t.Fatal("tripped after one fault with openAfter=2")
	}
	if b.ObserveRound(false, 2, 2) || b.Faults != 0 {
		t.Fatal("clean round did not reset the fault streak")
	}
	b.ObserveRound(true, 3, 2)
	if !b.ObserveRound(true, 4, 2) {
		t.Fatal("two consecutive faults did not trip")
	}
	if b.State != BreakerOpen || b.OpenedAt != 4 || b.Trips != 1 {
		t.Fatalf("post-trip breaker: %+v", b)
	}
	if b.Due(5, 3) {
		t.Fatal("due before cooldown elapsed")
	}
	if !b.Due(7, 3) {
		t.Fatal("not due after cooldown")
	}
	b.BeginProbe()
	b.ProbeResult(false, 7)
	if b.State != BreakerOpen || b.OpenedAt != 7 {
		t.Fatalf("failed probe did not re-open with a fresh cooldown: %+v", b)
	}
	b.BeginProbe()
	b.ProbeResult(true, 10)
	if b.State != BreakerClosed || b.Faults != 0 {
		t.Fatalf("successful probe did not close: %+v", b)
	}
	if err := (Breaker{State: BreakerState(7)}).Validate(); err == nil {
		t.Fatal("out-of-range breaker state validated")
	}
}

func TestRouterWeightingAndShed(t *testing.T) {
	r := NewRouter(1)
	r.Update([]RouteEntry{
		{ID: "h", Status: monitor.Healthy},
		{ID: "d", Status: monitor.Degraded},
		{ID: "x", Status: monitor.Impaired}, // must never be scheduled
	})
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		id, status, ok := r.Dispatch()
		if !ok {
			t.Fatal("shed with two serving devices")
		}
		if id == "d" && status != monitor.Degraded {
			t.Fatalf("dispatch to d reported status %s", status)
		}
		counts[id]++
	}
	if counts["x"] != 0 {
		t.Fatalf("routed %d requests to an Impaired device", counts["x"])
	}
	if counts["h"] != 2*counts["d"] {
		t.Fatalf("health-aware weighting off: healthy=%d degraded=%d", counts["h"], counts["d"])
	}

	// drain bookkeeping
	if r.Drained("h") {
		t.Fatal("in-flight device reported drained")
	}
	for i := 0; i < counts["h"]; i++ {
		r.Complete("h")
	}
	if !r.Drained("h") {
		t.Fatalf("device with completed requests not drained: %d in flight", r.InFlight("h"))
	}

	// shed below the serving floor
	r = NewRouter(2)
	r.Update([]RouteEntry{{ID: "h", Status: monitor.Healthy}})
	if _, _, ok := r.Dispatch(); ok {
		t.Fatal("dispatched below MinServing")
	}
	if _, sheds := r.Stats(); sheds != 1 {
		t.Fatalf("shed not counted: %d", sheds)
	}
}

func TestRouterDispatchAvoiding(t *testing.T) {
	r := NewRouter(1)
	r.Update([]RouteEntry{
		{ID: "a", Status: monitor.Healthy},
		{ID: "b", Status: monitor.Healthy},
	})
	for i := 0; i < 50; i++ {
		id, _, ok := r.DispatchAvoiding("a")
		if !ok || id == "a" {
			t.Fatalf("hedge dispatch %d landed on the avoided device (id=%q ok=%v)", i, id, ok)
		}
	}
	// only the avoided device serves → no legal hedge placement
	r.Update([]RouteEntry{{ID: "a", Status: monitor.Healthy}})
	if id, _, ok := r.DispatchAvoiding("a"); ok {
		t.Fatalf("hedge with no alternate dispatched to %q", id)
	}
}

// TestRouterConcurrentRouteAndUpdate hammers Dispatch/Complete from many
// goroutines while the serving set is concurrently rebuilt — the shape of
// traffic the serving frontend puts on the router. Run under -race (the
// fleet package is in RACE_PKGS) this is the regression test for the
// router's internal locking; the invariant checked here is that every
// dispatched ID is one the router was ever offered.
func TestRouterConcurrentRouteAndUpdate(t *testing.T) {
	r := NewRouter(1)
	sets := [][]RouteEntry{
		{{ID: "a", Status: monitor.Healthy}, {ID: "b", Status: monitor.Degraded}},
		{{ID: "b", Status: monitor.Healthy}},
		{{ID: "a", Status: monitor.Degraded}, {ID: "c", Status: monitor.Healthy}},
		{}, // full shed
	}
	r.Update(sets[0])
	known := map[string]bool{"a": true, "b": true, "c": true}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				avoid := ""
				if i%3 == 0 {
					avoid = "a"
				}
				if id, _, ok := r.DispatchAvoiding(avoid); ok {
					if !known[id] || (avoid != "" && id == avoid) {
						panic(fmt.Sprintf("dispatched to %q (avoid=%q)", id, avoid))
					}
					r.Complete(id)
				}
			}
		}(w)
	}
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; ; i++ {
		r.Update(sets[i%len(sets)])
		if i%100 == 0 {
			r.Serving()
			r.Stats()
			r.Drained("a")
			if routed, _ := r.Stats(); (routed > 5000 && i > 2000) || time.Now().After(deadline) {
				break
			}
		}
	}
	close(stop)
	wg.Wait()
	if routed, _ := r.Stats(); routed == 0 {
		t.Fatal("concurrent hammer routed nothing — test exercised no dispatches")
	}
}

func TestMinServingValidatedAgainstFleetSize(t *testing.T) {
	devs := testFleet(2)
	cfg := testConfig()
	cfg.MinServing = 3
	if _, err := New(asDevices(devs), cfg, nil); err == nil {
		t.Fatal("MinServing above fleet size accepted — the router could never dispatch")
	}
	cfg.MinServing = 2
	if _, err := New(asDevices(devs), cfg, nil); err != nil {
		t.Fatalf("MinServing == fleet size rejected: %v", err)
	}
}

// TestReportServingFaultTripsBreaker: serving-path failures feed the same
// breaker the monitoring path uses; enough of them quarantine the device
// without waiting for a monitoring tick.
func TestReportServingFaultTripsBreaker(t *testing.T) {
	devs := testFleet(2)
	cfg := testConfig()
	cfg.BreakerOpenAfter = 2
	sup, err := New(asDevices(devs), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	advance(devs, 1)
	if _, err := sup.Tick(); err != nil {
		t.Fatal(err)
	}
	id := devs[0].id
	if sup.ReportServingFault(id) {
		t.Fatal("breaker tripped after a single serving fault with openAfter=2")
	}
	if !sup.ReportServingFault(id) {
		t.Fatal("second consecutive serving fault did not trip the breaker")
	}
	for _, q := range sup.Quarantined() {
		if q == id {
			// quarantined device must be out of the schedule immediately
			for i := 0; i < 20; i++ {
				if got, ok := sup.Dispatch(); ok && got == id {
					t.Fatal("quarantined device still dispatched")
				}
			}
			return
		}
	}
	t.Fatalf("tripped device %s not quarantined: %v", id, sup.Quarantined())
}

// TestQuarantineAndProbeRecovery: a sensor-dead window trips the breaker;
// while open the device receives zero traffic and no full monitoring rounds
// (retry budgets are not burned); after cooldown a probe closes the breaker
// and the device eventually serves again.
func TestQuarantineAndProbeRecovery(t *testing.T) {
	devs := testFleet(3)
	devs[1].deadFrom, devs[1].deadTo = 3, 6
	sup, err := New(asDevices(devs), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}

	var tripped, probed, closedAgain bool
	for round := 1; round <= 16; round++ {
		advance(devs, round)
		results, err := sup.Tick()
		if err != nil {
			t.Fatal(err)
		}
		r1 := results[1]
		if r1.Tripped {
			tripped = true
		}
		if r1.Probe {
			probed = true
			if r1.ProbeOK {
				closedAgain = true
			}
		}
		// routing invariant: traffic only ever lands on serving devices
		for i := 0; i < 8; i++ {
			id, ok := sup.Dispatch()
			if !ok {
				continue
			}
			st, _ := sup.StatusOf(id)
			if st > monitor.Degraded {
				t.Fatalf("round %d: routed to %s with confirmed %s", round, id, st)
			}
			for _, q := range sup.Quarantined() {
				if id == q {
					t.Fatalf("round %d: routed to quarantined %s", round, id)
				}
			}
			sup.Complete(id)
		}
	}
	if !tripped {
		t.Fatal("sensor-dead window never tripped the breaker")
	}
	if !probed || !closedAgain {
		t.Fatalf("breaker never probed back closed: probed=%v closed=%v", probed, closedAgain)
	}
	// the monitoring path must be fully restored: device 1 serving again
	found := false
	for _, id := range sup.Serving() {
		found = found || id == devs[1].id
	}
	if !found {
		t.Fatalf("device with recovered sensor not serving: serving=%v quarantined=%v",
			sup.Serving(), sup.Quarantined())
	}
}

// TestRetireOnBudgetExhaustion: a device whose repairs always fail burns its
// lifetime budget and is permanently retired, while the rest of the fleet
// keeps serving.
func TestRetireOnBudgetExhaustion(t *testing.T) {
	devs := testFleet(2)
	devs[0].damageFrom = 2
	devs[0].failRepairs = true
	cfg := testConfig()
	cfg.RepairBudget = 4
	sup, err := New(asDevices(devs), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	retiredAt := 0
	for round := 1; round <= 14; round++ {
		advance(devs, round)
		results, err := sup.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Retired && retiredAt == 0 {
			retiredAt = round
		}
		if retiredAt > 0 && round > retiredAt && (results[0].Repaired || results[0].Probe) {
			t.Fatalf("round %d: retired device still being worked on: %+v", round, results[0])
		}
	}
	if retiredAt == 0 {
		t.Fatal("budget-exhausted device never retired")
	}
	snap := sup.Snapshot()[devs[0].id]
	if snap.Budget != 0 || !snap.Retired {
		t.Fatalf("retired snapshot: %+v", snap)
	}
	// the healthy peer still serves alone
	if serving := sup.Serving(); len(serving) != 1 || serving[0] != devs[1].id {
		t.Fatalf("healthy peer not serving: %v", serving)
	}
}

// driveFleet runs a scripted 3-device scenario for `ticks` rounds against a
// journal at path, crashing and resuming the supervisor after every round in
// crashAfter (the devices — the hardware — survive each crash). It returns
// the per-round confirmed-status matrix and the final supervisor.
func driveFleet(t *testing.T, devs []*fakeDevice, path string, ticks int, crashAfter map[int]bool, corruptTail bool) ([][]monitor.Status, *Supervisor) {
	t.Helper()
	jw, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := New(asDevices(devs), testConfig(), jw)
	if err != nil {
		t.Fatal(err)
	}
	var matrix [][]monitor.Status
	for round := 1; round <= ticks; round++ {
		advance(devs, round)
		results, err := sup.Tick()
		if err != nil {
			t.Fatal(err)
		}
		row := make([]monitor.Status, len(results))
		for i, r := range results {
			row[i] = r.Confirmed
		}
		matrix = append(matrix, row)

		if crashAfter[round] {
			// crash: the supervisor process dies...
			if err := jw.Close(); err != nil {
				t.Fatal(err)
			}
			if corruptTail {
				// ...possibly mid-write: a torn, garbage tail on the journal
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{0xA7, 0x13, 0x37, 0xde, 0xad}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}
			// ...and a fresh process replays the journal
			var payloads [][]byte
			var truncated int
			jw, payloads, truncated, err = journal.OpenAppend(path)
			if err != nil {
				t.Fatal(err)
			}
			if corruptTail && truncated == 0 {
				t.Fatal("corrupt tail not truncated on reopen")
			}
			resumed, err := Resume(asDevices(devs), testConfig(), jw, payloads)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Round() != round {
				t.Fatalf("resumed at round %d, crashed after %d", resumed.Round(), round)
			}
			// resume fidelity: the replayed fleet must equal the crashed one
			if !reflect.DeepEqual(resumed.Snapshot(), sup.Snapshot()) {
				t.Fatalf("replayed snapshot diverges after round %d:\n%+v\nvs\n%+v",
					round, resumed.Snapshot(), sup.Snapshot())
			}
			sup = resumed
		}
	}
	return matrix, sup
}

// scriptedScenario builds the shared crash-equivalence scenario: damage on
// one device, a sensor-dead window on another, a quiet third.
func scriptedScenario() []*fakeDevice {
	devs := testFleet(3)
	devs[0].damageFrom = 4
	devs[1].deadFrom, devs[1].deadTo = 7, 9
	return devs
}

// TestCrashRestartEquivalence is the PR's core property test: for every
// crash point k, killing the supervisor after round k and replaying its
// journal must yield exactly the confirmed-status sequence and final
// durable state of an uninterrupted run.
func TestCrashRestartEquivalence(t *testing.T) {
	const ticks = 14
	base, baseSup := driveFleet(t, scriptedScenario(),
		filepath.Join(t.TempDir(), "base.wal"), ticks, nil, false)
	baseSnap := baseSup.Snapshot()

	for k := 1; k < ticks; k++ {
		k := k
		t.Run(fmt.Sprintf("crashAfter=%d", k), func(t *testing.T) {
			got, sup := driveFleet(t, scriptedScenario(),
				filepath.Join(t.TempDir(), "crash.wal"), ticks, map[int]bool{k: true}, k%2 == 0)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("confirmed-status sequences diverge:\nuninterrupted %v\ncrashed       %v", base, got)
			}
			snap := sup.Snapshot()
			if !reflect.DeepEqual(snap, baseSnap) {
				t.Fatalf("final durable state diverges:\n%+v\nvs\n%+v", snap, baseSnap)
			}
		})
	}
}

// TestDoubleCrash: two crashes in one campaign, both with corrupt tails.
func TestDoubleCrash(t *testing.T) {
	const ticks = 14
	base, _ := driveFleet(t, scriptedScenario(),
		filepath.Join(t.TempDir(), "base.wal"), ticks, nil, false)
	got, _ := driveFleet(t, scriptedScenario(),
		filepath.Join(t.TempDir(), "crash2.wal"), ticks, map[int]bool{5: true, 10: true}, true)
	if !reflect.DeepEqual(got, base) {
		t.Fatalf("double-crash run diverged:\n%v\nvs\n%v", base, got)
	}
}

// TestResumeRejectsWrongReference: a journal written for one reference model
// must not silently resume against another.
func TestResumeRejectsWrongReference(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.wal")
	devs := testFleet(2)
	jw, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := New(asDevices(devs), testConfig(), jw)
	if err != nil {
		t.Fatal(err)
	}
	advance(devs, 1)
	if _, err := sup.Tick(); err != nil {
		t.Fatal(err)
	}
	jw.Close()

	// "restart" with device 0 pointing at a different model
	devs[0].net = models.MLP(rng.New(99), 16, []int{12}, 5)
	jw2, payloads, _, err := journal.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	if _, err := Resume(asDevices(devs), testConfig(), jw2, payloads); err == nil {
		t.Fatal("resume accepted a journal for a different reference model")
	}
}

func TestReplayRecordsRejectsGarbage(t *testing.T) {
	if _, _, err := ReplayRecords([][]byte{[]byte("not json")}); err == nil {
		t.Fatal("unparseable record accepted")
	}
	if _, _, err := ReplayRecords([][]byte{[]byte(`{"type":"tick","round":1,"devices":[{"device":"a","budget":-4}]}`)}); err == nil {
		t.Fatal("negative budget accepted")
	}
	// unknown types are skipped, not fatal
	snaps, round, err := ReplayRecords([][]byte{[]byte(`{"type":"future-thing","round":9}`)})
	if err != nil || round != 0 || len(snaps) != 0 {
		t.Fatalf("unknown record type: snaps=%d round=%d err=%v", len(snaps), round, err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.RepairBudget = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative RepairBudget accepted")
	}
	bad = DefaultConfig()
	bad.Health.EscalateAfter = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid embedded health config accepted")
	}
	if _, err := New(nil, DefaultConfig(), nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
	devs := testFleet(2)
	devs[1].id = devs[0].id
	if _, err := New(asDevices(devs), testConfig(), nil); err == nil {
		t.Fatal("duplicate device IDs accepted")
	}
}
