package fleet

import (
	"errors"
	"strings"
	"testing"

	"reramtest/internal/monitor"
)

// The router's refusals must be typed (ErrNoEligibleDevice) and must say why
// the placement failed — MinServing shedding, empty schedule or the
// avoided-candidate rule.

func TestDispatchErrTypedOnMinServingShed(t *testing.T) {
	r := NewRouter(2)
	r.Update([]RouteEntry{{ID: "only", Status: monitor.Healthy}})

	_, _, err := r.DispatchAvoidingErr("")
	if err == nil {
		t.Fatal("dispatch under MinServing shed returned no error")
	}
	if !errors.Is(err, ErrNoEligibleDevice) {
		t.Fatalf("shed error %v does not match ErrNoEligibleDevice", err)
	}
	if !strings.Contains(err.Error(), "MinServing") {
		t.Fatalf("shed error %q does not name the MinServing floor", err)
	}
}

func TestDispatchErrTypedOnAvoidExhaustion(t *testing.T) {
	r := NewRouter(1)
	r.Update([]RouteEntry{{ID: "a", Status: monitor.Healthy}})

	_, _, err := r.DispatchAvoidingErr("a")
	if err == nil {
		t.Fatal("dispatch avoiding the only candidate returned no error")
	}
	if !errors.Is(err, ErrNoEligibleDevice) {
		t.Fatalf("avoid-exhausted error %v does not match ErrNoEligibleDevice", err)
	}
	if !strings.Contains(err.Error(), `"a"`) {
		t.Fatalf("avoid-exhausted error %q does not name the excluded device", err)
	}

	// a legal placement still works and the boolean wrapper agrees
	id, _, ok := r.DispatchAvoiding("")
	if !ok || id != "a" {
		t.Fatalf("unavoided dispatch = (%q, %v), want (a, true)", id, ok)
	}
}

func TestDispatchErrTypedOnEmptyFleet(t *testing.T) {
	r := NewRouter(1)
	r.Update(nil)
	_, _, err := r.DispatchAvoidingErr("")
	if !errors.Is(err, ErrNoEligibleDevice) {
		t.Fatalf("empty-schedule error %v does not match ErrNoEligibleDevice", err)
	}
}
