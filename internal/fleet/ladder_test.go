package fleet

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"reramtest/internal/health"
	"reramtest/internal/journal"
	"reramtest/internal/monitor"
	"reramtest/internal/repair"
)

// ladderDevice is a fakeDevice whose repairer exposes a strategy ladder
// (scrub → remap → retrain) with scripted applicability and outcome: damage
// clears only when the rung named fixedBy applies.
type ladderDevice struct {
	*fakeDevice
	drifted, stuck int // scripted diagnosis
	fixedBy        string
	applied        []string
}

func (d *ladderDevice) Repairer() health.Repairer { return d }

func (d *ladderDevice) Diagnose(monitor.Status) repair.Diagnosis {
	return repair.Diagnosis{Drifted: d.drifted, Stuck: d.stuck}
}

func (d *ladderDevice) rung(name string, cost int, when func(repair.Diagnosis) bool) repair.Strategy {
	return repair.Func{
		StrategyName: name, StrategyCost: cost, When: when,
		Do: func(context.Context, repair.Diagnosis) (repair.Report, error) {
			d.applied = append(d.applied, name)
			if name == d.fixedBy {
				d.damaged = false
			}
			return repair.Report{Strategy: name}, nil
		},
	}
}

func (d *ladderDevice) Strategies() []repair.Strategy {
	return []repair.Strategy{
		d.rung("scrub", repair.CostScrub, func(dg repair.Diagnosis) bool { return dg.Drifted > 0 }),
		d.rung("remap", repair.CostRemap, func(dg repair.Diagnosis) bool { return dg.Stuck > 0 }),
		d.rung("retrain", repair.CostRetrain, func(dg repair.Diagnosis) bool { return !dg.Commissioning }),
	}
}

func ladderFleet(n int) ([]*ladderDevice, []Device) {
	base := testFleet(n)
	devs := make([]*ladderDevice, n)
	out := make([]Device, n)
	for i, fd := range base {
		devs[i] = &ladderDevice{fakeDevice: fd}
		out[i] = devs[i]
	}
	return devs, out
}

// TestFleetMixedCostBudgetAccounting is the budget-accounting gate for
// mixed-cost repairs: the lifetime budget must decrement by the sum of
// strategy Cost() values actually applied — not by the attempt count — and
// the decision log must record every rung with its cost and verdict.
func TestFleetMixedCostBudgetAccounting(t *testing.T) {
	devs, asDev := ladderFleet(1)
	devs[0].damageFrom = 2
	devs[0].drifted, devs[0].stuck = 1, 1
	devs[0].fixedBy = "retrain"
	cfg := testConfig()
	cfg.RepairBudget = 10
	sup, err := New(asDev, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	var repairRound RoundResult
	for round := 1; round <= 10 && !repairRound.Repaired; round++ {
		advance([]*fakeDevice{devs[0].fakeDevice}, round)
		results, err := sup.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Repaired {
			repairRound = results[0]
		}
	}
	if !repairRound.Repaired || !repairRound.Recovered {
		t.Fatalf("ladder repair never ran/recovered: %+v", repairRound)
	}
	wantCost := repair.CostScrub + repair.CostRemap + repair.CostRetrain
	if repairRound.Attempts != 3 || repairRound.CostSpent != wantCost {
		t.Fatalf("repair round attempts=%d cost=%d, want 3/%d", repairRound.Attempts, repairRound.CostSpent, wantCost)
	}
	if repairRound.BudgetLeft != 10-wantCost {
		t.Fatalf("budget decremented by attempts, not cost: left=%d want=%d", repairRound.BudgetLeft, 10-wantCost)
	}

	snap := sup.Snapshot()[devs[0].id]
	if snap.Budget != 10-wantCost {
		t.Fatalf("snapshot budget %d, want %d", snap.Budget, 10-wantCost)
	}
	wantLog := []string{"scrub", "remap", "retrain"}
	wantCosts := []int{repair.CostScrub, repair.CostRemap, repair.CostRetrain}
	if len(snap.Decisions) != len(wantLog) {
		t.Fatalf("decision log %+v, want 3 entries", snap.Decisions)
	}
	for i, d := range snap.Decisions {
		if d.Strategy != wantLog[i] || d.Cost != wantCosts[i] {
			t.Fatalf("decision %d = %+v, want %s/%d", i, d, wantLog[i], wantCosts[i])
		}
		if d.Failed {
			t.Fatalf("decision %d marked failed: %+v", i, d)
		}
	}
	if !snap.Decisions[2].Verified || snap.Decisions[0].Verified {
		t.Fatalf("verification verdicts wrong in log: %+v", snap.Decisions)
	}
}

// TestFleetRetiresWhenCheapestStrategyExceedsBudget: a device is retired the
// moment no applicable strategy fits the remaining budget — with budget still
// unspent — instead of bleeding the rest one doomed episode at a time.
func TestFleetRetiresWhenCheapestStrategyExceedsBudget(t *testing.T) {
	devs, asDev := ladderFleet(2)
	devs[0].damageFrom = 2
	devs[0].stuck = 1 // remap (cost 2) and retrain (cost 4) apply; scrub never
	devs[0].fixedBy = ""
	cfg := testConfig()
	cfg.RepairBudget = 3
	sup, err := New(asDev, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	retired := RoundResult{}
	for round := 1; round <= 10 && !retired.Retired; round++ {
		for _, d := range devs {
			d.SetRound(round)
		}
		results, err := sup.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Retired {
			retired = results[0]
		}
	}
	if !retired.Retired {
		t.Fatal("device with unaffordable repairs never retired")
	}
	// remap (cost 2) ran once and failed to verify; the cheapest applicable
	// rung (remap again, cost 2) exceeds the remaining 1 → retire with budget
	// still positive
	if retired.BudgetLeft != 1 {
		t.Fatalf("retired with budget %d, want 1 (early retirement, not bleed-to-zero)", retired.BudgetLeft)
	}
	if got := devs[0].applied; len(got) != 1 || got[0] != "remap" {
		t.Fatalf("applied %v, want exactly one remap", got)
	}
	// the healthy peer keeps serving
	if serving := sup.Serving(); len(serving) != 1 || serving[0] != devs[1].id {
		t.Fatalf("healthy peer not serving alone: %v", serving)
	}
}

// TestDecisionLogSurvivesCrashResume: journaled strategy decisions must
// replay exactly — the crash/restart parity the lifetime soak gates on.
func TestDecisionLogSurvivesCrashResume(t *testing.T) {
	devs, asDev := ladderFleet(1)
	devs[0].damageFrom = 2
	devs[0].drifted = 1
	devs[0].fixedBy = "retrain"
	path := filepath.Join(t.TempDir(), "ladder.wal")
	jw, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.RepairBudget = 10
	sup, err := New(asDev, cfg, jw)
	if err != nil {
		t.Fatal(err)
	}
	sawRepair := false
	for round := 1; round <= 8; round++ {
		devs[0].SetRound(round)
		results, err := sup.Tick()
		if err != nil {
			t.Fatal(err)
		}
		sawRepair = sawRepair || results[0].Repaired
	}
	if !sawRepair {
		t.Fatal("scenario never repaired — decision log empty, test proves nothing")
	}
	before := sup.Snapshot()
	if len(before[devs[0].id].Decisions) == 0 {
		t.Fatal("no decisions journaled")
	}

	// crash: close the journal, replay it into a fresh supervisor over the
	// surviving hardware
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	jw2, payloads, _, err := journal.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(asDev, cfg, jw2, payloads)
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	if !reflect.DeepEqual(resumed.Snapshot(), before) {
		t.Fatalf("decision log diverged across crash/resume:\n%+v\nvs\n%+v", resumed.Snapshot(), before)
	}
}

func TestDecisionLogCapped(t *testing.T) {
	ds := &deviceState{}
	for i := 0; i < maxDecisionLog+36; i++ {
		ds.logDecision(RepairDecision{Round: i, Strategy: "scrub", Cost: 1})
	}
	if len(ds.decisions) != maxDecisionLog {
		t.Fatalf("decision log length %d, want cap %d", len(ds.decisions), maxDecisionLog)
	}
	if ds.decisions[0].Round != 36 {
		t.Fatalf("cap did not keep the newest entries: oldest round %d, want 36", ds.decisions[0].Round)
	}
	// an over-long journaled log must be rejected by snapshot validation
	snap := DeviceSnapshot{Decisions: make([]RepairDecision, maxDecisionLog+1)}
	for i := range snap.Decisions {
		snap.Decisions[i] = RepairDecision{Strategy: "scrub"}
	}
	if err := snap.Validate(); err == nil {
		t.Fatal("oversized decision log validated")
	}
}
