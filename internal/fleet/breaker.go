package fleet

import "fmt"

// BreakerState is the circuit-breaker position for one accelerator's
// monitoring path.
type BreakerState int

// Breaker states. Closed is normal supervised monitoring. Open means the
// sensor path failed too many consecutive rounds: the device is quarantined
// and the supervisor stops burning full retry budgets on it. HalfOpen is the
// cooled-down trial state: one cheap single-attempt probe decides between
// closing (sensor recovered) and re-opening (still dead).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is a per-device circuit breaker over the sensor path. Its fields
// are exported because the breaker is part of the journaled durable state;
// mutate it only through its methods.
type Breaker struct {
	State BreakerState `json:"state"`
	// Faults counts consecutive sensor-fault rounds while closed.
	Faults int `json:"faults"`
	// OpenedAt is the fleet round of the most recent open transition.
	OpenedAt int `json:"openedAt"`
	// Trips counts lifetime closed→open transitions.
	Trips int `json:"trips"`
}

// Validate rejects breaker snapshots no supervisor could have journaled.
func (b Breaker) Validate() error {
	if b.State < BreakerClosed || b.State > BreakerHalfOpen {
		return fmt.Errorf("fleet: breaker state out of range: %d", int(b.State))
	}
	if b.Faults < 0 || b.OpenedAt < 0 || b.Trips < 0 {
		return fmt.Errorf("fleet: negative breaker counters: %+v", b)
	}
	return nil
}

// ObserveRound folds one supervised round's sensor verdict into a closed
// breaker and reports whether this round tripped it open.
func (b *Breaker) ObserveRound(sensorFault bool, round, openAfter int) (tripped bool) {
	if b.State != BreakerClosed {
		return false
	}
	if !sensorFault {
		b.Faults = 0
		return false
	}
	b.Faults++
	if b.Faults >= openAfter {
		b.State = BreakerOpen
		b.OpenedAt = round
		b.Trips++
		b.Faults = 0
		return true
	}
	return false
}

// Due reports whether an open breaker has cooled long enough at round to try
// a half-open probe.
func (b *Breaker) Due(round, cooldown int) bool {
	return b.State == BreakerOpen && round-b.OpenedAt >= cooldown
}

// BeginProbe moves a due breaker to half-open.
func (b *Breaker) BeginProbe() { b.State = BreakerHalfOpen }

// ProbeResult folds the half-open probe outcome: success closes the breaker,
// failure re-opens it and restarts the cooldown clock from round.
func (b *Breaker) ProbeResult(ok bool, round int) {
	if ok {
		b.State = BreakerClosed
		b.Faults = 0
		return
	}
	b.State = BreakerOpen
	b.OpenedAt = round
}
