package fleet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"reramtest/internal/journal"
	"reramtest/internal/monitor"
)

// snapfallDir is the committed fixture of a compacted durable-state family
// whose NEWEST snapshot generation is corrupt: fleet.wal plus generations 1
// and 2, with generation 2's bytes flipped. Recovery must fall back to
// generation 1 and reconstruct the exact same fleet state from gen 1 + the
// WAL tail — the lossless one-generation-fallback property. Regenerate with
//
//	FLEET_REGEN_FIXTURES=1 go test ./internal/fleet -run RegenSnapfallFixture
const snapfallDir = "testdata/snapfall"

func storeTestConfig() journal.StoreConfig {
	return journal.StoreConfig{CompactBytes: 1 << 14}
}

// driveFleetStore is driveFleet over the snapshot-compacting Store path:
// same scripted scenario, same crash semantics, but recovery goes through
// OpenStore + ResumeStore and compaction runs every 4 ticks.
func driveFleetStore(t *testing.T, devs []*fakeDevice, path string, ticks int, crashAfter map[int]bool, corruptTail bool) ([][]monitor.Status, *Supervisor) {
	t.Helper()
	cfg := testConfig()
	cfg.CompactEvery = 4
	st, _, err := journal.OpenStore(path, storeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewStore(asDevices(devs), cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	var matrix [][]monitor.Status
	for round := 1; round <= ticks; round++ {
		advance(devs, round)
		results, err := sup.Tick()
		if err != nil {
			t.Fatal(err)
		}
		row := make([]monitor.Status, len(results))
		for i, r := range results {
			row[i] = r.Confirmed
		}
		matrix = append(matrix, row)

		if crashAfter[round] {
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if corruptTail {
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{0xA7, 0x13, 0x37, 0xde, 0xad}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}
			var rec journal.Recovered
			st, rec, err = journal.OpenStore(path, storeTestConfig())
			if err != nil {
				t.Fatal(err)
			}
			if corruptTail && rec.Truncated == 0 {
				t.Fatal("corrupt tail not truncated on reopen")
			}
			resumed, err := ResumeStore(asDevices(devs), cfg, st, rec)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Round() != round {
				t.Fatalf("resumed at round %d, crashed after %d", resumed.Round(), round)
			}
			if !reflect.DeepEqual(resumed.Snapshot(), sup.Snapshot()) {
				t.Fatalf("replayed snapshot diverges after round %d:\n%+v\nvs\n%+v",
					round, resumed.Snapshot(), sup.Snapshot())
			}
			sup = resumed
		}
	}
	return matrix, sup
}

// TestStoreCrashRestartEquivalence is TestCrashRestartEquivalence run over
// the Store path: for every crash point — including ones landing right on a
// compaction round, where recovery must fold snapshot + tail rather than
// the full history — the crashed-and-resumed run must match the
// uninterrupted one bit for bit. The uninterrupted Store arm is also checked
// against the bare-Writer arm, proving snapshots and compaction never
// perturb supervision itself.
func TestStoreCrashRestartEquivalence(t *testing.T) {
	const ticks = 14
	writerBase, writerSup := driveFleet(t, scriptedScenario(),
		filepath.Join(t.TempDir(), "writer.wal"), ticks, nil, false)
	base, baseSup := driveFleetStore(t, scriptedScenario(),
		filepath.Join(t.TempDir(), "base.wal"), ticks, nil, false)
	if !reflect.DeepEqual(base, writerBase) {
		t.Fatalf("Store path changed supervision outcomes:\nwriter %v\nstore  %v", writerBase, base)
	}
	baseSnap := baseSup.Snapshot()
	if !reflect.DeepEqual(baseSnap, writerSup.Snapshot()) {
		t.Fatal("Store path changed final durable state")
	}
	if baseSup.Store().Generation() < 3 {
		t.Fatalf("14 ticks at CompactEvery=4 produced only generation %d — compaction not exercised",
			baseSup.Store().Generation())
	}

	for k := 1; k < ticks; k++ {
		k := k
		t.Run(fmt.Sprintf("crashAfter=%d", k), func(t *testing.T) {
			got, sup := driveFleetStore(t, scriptedScenario(),
				filepath.Join(t.TempDir(), "crash.wal"), ticks, map[int]bool{k: true}, k%2 == 0)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("confirmed-status sequences diverge:\nuninterrupted %v\ncrashed       %v", base, got)
			}
			if !reflect.DeepEqual(sup.Snapshot(), baseSnap) {
				t.Fatalf("final durable state diverges:\n%+v\nvs\n%+v", sup.Snapshot(), baseSnap)
			}
		})
	}
}

// TestStoreAutoCompactionBoundsWAL: pure size-triggered compaction (no tick
// cadence) must keep the WAL within ~2× the threshold for the fleet's whole
// lifetime — threshold's worth of retained previous-generation records plus
// threshold's worth of new growth before the next trigger.
func TestStoreAutoCompactionBoundsWAL(t *testing.T) {
	const threshold = 8 << 10
	st, _, err := journal.OpenStore(filepath.Join(t.TempDir(), "fleet.wal"),
		journal.StoreConfig{CompactBytes: threshold})
	if err != nil {
		t.Fatal(err)
	}
	devs := scriptedScenario()
	sup, err := NewStore(asDevices(devs), testConfig(), st)
	if err != nil {
		t.Fatal(err)
	}
	var maxRecord int64
	for round := 1; round <= 60; round++ {
		advance(devs, round)
		before := st.Size()
		if _, err := sup.Tick(); err != nil {
			t.Fatal(err)
		}
		if grew := st.Size() - before; grew > maxRecord {
			maxRecord = grew
		}
		if limit := int64(2*threshold) + maxRecord; st.Size() > limit {
			t.Fatalf("round %d: WAL at %d bytes exceeds bound %d (threshold %d)",
				round, st.Size(), limit, threshold)
		}
	}
	if st.Generation() < 2 {
		t.Fatalf("60 ticks never re-compacted (generation %d)", st.Generation())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreDegradeToMemoryOnDiskFault: a persistent disk fault mid-run must
// surface exactly once as ErrUnjournaled, flip the supervisor to memory-only
// — still supervising, still serving — and leave the durable truth at the
// last successfully committed round.
func TestStoreDegradeToMemoryOnDiskFault(t *testing.T) {
	efs := journal.NewErrFS(nil)
	path := filepath.Join(t.TempDir(), "fleet.wal")
	st, _, err := journal.OpenStore(path, journal.StoreConfig{FS: efs})
	if err != nil {
		t.Fatal(err)
	}
	devs := testFleet(2)
	s, err := NewStore(asDevices(devs), testConfig(), st)
	if err != nil {
		t.Fatal(err)
	}
	advance(devs, 1)
	if _, err := s.Tick(); err != nil {
		t.Fatal(err)
	}

	efs.SetNoSpace(true)
	advance(devs, 2)
	_, err = s.Tick()
	if !errors.Is(err, ErrUnjournaled) {
		t.Fatalf("tick over a full disk returned %v, want ErrUnjournaled", err)
	}
	if !s.Unjournaled() {
		t.Fatal("supervisor not flagged Unjournaled")
	}
	if !errors.Is(s.JournalError(), journal.ErrInjected) {
		t.Fatalf("JournalError %v does not surface the injected fault", s.JournalError())
	}

	// exactly once: later ticks run clean, memory-only
	for round := 3; round <= 5; round++ {
		advance(devs, round)
		if _, err := s.Tick(); err != nil {
			t.Fatalf("round %d after degrade: %v", round, err)
		}
	}
	if serving := s.Serving(); len(serving) != 2 {
		t.Fatalf("degraded fleet stopped serving: %v", serving)
	}
	if s.Round() != 5 {
		t.Fatalf("degraded fleet at round %d, want 5", s.Round())
	}
	if err := s.CompactNow(); !errors.Is(err, ErrUnjournaled) {
		t.Fatalf("compaction on a degraded fleet returned %v", err)
	}

	// the disk holds exactly the pre-fault history: recovery lands on round 1
	st.Close() // poisoned: returns the sticky error, nothing left to save
	st2, rec, err := journal.OpenStore(path, journal.StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	resumed, err := ResumeStore(asDevices(testFleet(2)), testConfig(), st2, rec)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Round() != 1 {
		t.Fatalf("durable truth at round %d, want 1 (the last synced tick)", resumed.Round())
	}
	if resumed.Unjournaled() {
		t.Fatal("fresh resume inherited the Unjournaled flag")
	}
}

// TestStoreResumeLegacySnapshotlessWAL: the committed pre-snapshot fixture —
// a WAL written by the bare-Writer path, no snapshot family at all — must
// resume through the Store exactly as it did through Resume, then start
// compacting like any modern fleet.
func TestStoreResumeLegacySnapshotlessWAL(t *testing.T) {
	raw, err := os.ReadFile(precostFixture)
	if err != nil {
		t.Fatalf("committed fixture missing: %v", err)
	}
	path := filepath.Join(t.TempDir(), "legacy.wal")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, rec, err := journal.OpenStore(path, journal.StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || rec.SnapshotsSkipped != 0 {
		t.Fatalf("legacy WAL grew a snapshot: %+v", rec)
	}
	cfg := testConfig()
	cfg.CompactEvery = 2
	devs := testFleet(2)
	s, err := ResumeStore(asDevices(devs), cfg, st, rec)
	if err != nil {
		t.Fatalf("ResumeStore over legacy WAL: %v", err)
	}
	if s.Round() != 3 || !s.Resumed() {
		t.Fatalf("legacy resume landed at round %d (resumed=%v), want 3", s.Round(), s.Resumed())
	}

	// the resumed fleet modernises itself: round 4 hits the cadence and
	// publishes the family's first snapshot generation
	advance(devs, 4)
	if _, err := s.Tick(); err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 1 {
		t.Fatalf("post-resume compaction wrote generation %d, want 1", st.Generation())
	}
	want := s.Snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2, err := journal.OpenStore(path, journal.StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec2.Snapshot == nil || rec2.SnapshotGen != 1 || rec2.SnapshotSeq != 4 {
		t.Fatalf("modernised family did not recover snapshot-first: %+v", rec2)
	}
	s2, err := ResumeStore(asDevices(testFleet(2)), cfg, st2, rec2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2.Snapshot(), want) {
		t.Fatalf("snapshot-first resume diverges from pre-crash state:\n%+v\nvs\n%+v", s2.Snapshot(), want)
	}
}

// TestRegenSnapfallFixture rewrites the committed corrupt-newest-generation
// fixture: a real compacted run, then generation 2's bytes flipped on disk.
func TestRegenSnapfallFixture(t *testing.T) {
	if os.Getenv("FLEET_REGEN_FIXTURES") == "" {
		t.Skip("set FLEET_REGEN_FIXTURES=1 to rewrite testdata/snapfall")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.wal")
	st, _, err := journal.OpenStore(path, journal.StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.CompactEvery = 3
	devs := scriptedScenario()
	s, err := NewStore(asDevices(devs), cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 8; round++ {
		advance(devs, round)
		if _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// generations 1 (round 3) and 2 (round 6) exist; corrupt the newest
	newest := fmt.Sprintf("%s.snap-%016x", path, 2)
	img, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-5] ^= 0xFF
	if err := os.WriteFile(newest, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(snapfallDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(snapfallDir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(snapfallDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// copySnapfall clones the committed fixture into a temp dir (recovery
// mutates the family — temp cleanup, tail truncation — and the committed
// bytes must stay pristine).
func copySnapfall(t *testing.T) string {
	t.Helper()
	entries, err := os.ReadDir(snapfallDir)
	if err != nil {
		t.Fatalf("committed fixture missing: %v", err)
	}
	dir := t.TempDir()
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(snapfallDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestStoreResumeFallsBackOnCorruptSnapshotFixture: recovery over the
// committed fixture must skip the corrupt generation 2, resume from
// generation 1 + the WAL tail, and land on EXACTLY the state an
// uninterrupted run reaches — the corruption costs an alarm counter, zero
// data.
func TestStoreResumeFallsBackOnCorruptSnapshotFixture(t *testing.T) {
	dir := copySnapfall(t)
	st, rec, err := journal.OpenStore(filepath.Join(dir, "fleet.wal"), journal.StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotsSkipped != 1 {
		t.Fatalf("skipped %d generations, want 1 (the corrupt newest)", rec.SnapshotsSkipped)
	}
	if rec.SnapshotGen != 1 || rec.SnapshotSeq != 3 {
		t.Fatalf("fell back to generation %d at seq %d, want 1 at 3", rec.SnapshotGen, rec.SnapshotSeq)
	}
	cfg := testConfig()
	cfg.CompactEvery = 3
	devs := scriptedScenario()
	s, err := ResumeStore(asDevices(devs), cfg, st, rec)
	if err != nil {
		t.Fatalf("fallback resume: %v", err)
	}
	if s.Round() != 8 {
		t.Fatalf("fallback resume landed at round %d, want 8", s.Round())
	}

	// lossless: identical to an uninterrupted 8-round run of the same script
	baseDevs := scriptedScenario()
	base, err := New(asDevices(baseDevs), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 8; round++ {
		advance(baseDevs, round)
		if _, err := base.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(s.Snapshot(), base.Snapshot()) {
		t.Fatalf("fallback lost state:\nrecovered %+v\nexpected  %+v", s.Snapshot(), base.Snapshot())
	}

	// life goes on: the next cadence round compacts ABOVE the corrupt
	// generation
	advance(devs, 9)
	if _, err := s.Tick(); err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 3 {
		t.Fatalf("post-fallback compaction wrote generation %d, want 3", st.Generation())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRoundTrips: a Checkpoint payload replayed on its own must
// reconstruct exactly the Snapshot the supervisor holds — the property
// compaction stands on.
func TestCheckpointRoundTrips(t *testing.T) {
	devs := testFleet(2)
	s, err := New(asDevices(devs), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		advance(devs, round)
		if _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	payload, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	snaps, round, err := ReplayRecords([][]byte{payload})
	if err != nil {
		t.Fatal(err)
	}
	if round != 2 {
		t.Fatalf("checkpoint at round %d, want 2", round)
	}
	if !reflect.DeepEqual(snaps, s.Snapshot()) {
		t.Fatalf("checkpoint diverges from live snapshot:\n%+v\nvs\n%+v", snaps, s.Snapshot())
	}
}
