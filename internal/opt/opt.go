// Package opt provides the gradient-descent optimizers used to train the
// evaluation models and to drive the O-TP input-optimization loop
// (Algorithm 1 of the paper updates the test pattern with plain SGD; model
// training uses momentum or Adam).
package opt

import (
	"fmt"
	"math"

	"reramtest/internal/nn"
)

// Optimizer updates a fixed set of parameters from their accumulated
// gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// parameters, then the caller typically zeroes them.
	Step()
	// StepAndZero applies one update and zeroes each gradient in the same
	// pass — the fused, allocation-free variant the training engine's step
	// loop uses. Bit-identical to Step followed by zeroing every gradient.
	StepAndZero()
	// SetLR changes the learning rate (for schedules).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is plain stochastic gradient descent with optional momentum and weight
// decay.
type SGD struct {
	params   []*nn.Param
	lr       float64
	momentum float64
	decay    float64
	velocity [][]float64
}

// NewSGD builds an SGD optimizer over params. momentum=0 gives vanilla SGD.
func NewSGD(params []*nn.Param, lr, momentum, weightDecay float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("opt: SGD learning rate must be positive, got %v", lr))
	}
	s := &SGD{params: params, lr: lr, momentum: momentum, decay: weightDecay}
	if momentum != 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, p.Value.Len())
		}
	}
	return s
}

// Step applies one SGD update.
func (s *SGD) Step() {
	for i, p := range s.params {
		v, g := p.Value.Data(), p.Grad.Data()
		if s.velocity == nil {
			for j := range v {
				grad := g[j] + s.decay*v[j]
				v[j] -= s.lr * grad
			}
			continue
		}
		vel := s.velocity[i]
		for j := range v {
			grad := g[j] + s.decay*v[j]
			vel[j] = s.momentum*vel[j] - s.lr*grad
			v[j] += vel[j]
		}
	}
}

// StepAndZero applies one SGD update and zeroes the gradients in the same
// pass over the parameters (one fewer traversal than Step + ZeroGrad, same
// bits: the update reads g[j] before it is cleared).
func (s *SGD) StepAndZero() {
	for i, p := range s.params {
		v, g := p.Value.Data(), p.Grad.Data()
		if s.velocity == nil {
			for j := range v {
				grad := g[j] + s.decay*v[j]
				v[j] -= s.lr * grad
				g[j] = 0
			}
			continue
		}
		vel := s.velocity[i]
		for j := range v {
			grad := g[j] + s.decay*v[j]
			vel[j] = s.momentum*vel[j] - s.lr*grad
			v[j] += vel[j]
			g[j] = 0
		}
	}
}

// SetLR changes the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR returns the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// Adam is the Adam optimizer (Kingma & Ba 2015).
type Adam struct {
	params []*nn.Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   [][]float64
}

// NewAdam builds an Adam optimizer with the usual defaults
// (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(params []*nn.Param, lr float64) *Adam {
	if lr <= 0 {
		panic(fmt.Sprintf("opt: Adam learning rate must be positive, got %v", lr))
	}
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, p.Value.Len())
		a.v[i] = make([]float64, p.Value.Len())
	}
	return a
}

// Step applies one Adam update.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		val, g := p.Value.Data(), p.Grad.Data()
		m, v := a.m[i], a.v[i]
		for j := range val {
			m[j] = a.beta1*m[j] + (1-a.beta1)*g[j]
			v[j] = a.beta2*v[j] + (1-a.beta2)*g[j]*g[j]
			mh := m[j] / c1
			vh := v[j] / c2
			val[j] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
		}
	}
}

// StepAndZero applies one Adam update and zeroes the gradients in the same
// pass, bit-identical to Step followed by zeroing.
func (a *Adam) StepAndZero() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		val, g := p.Value.Data(), p.Grad.Data()
		m, v := a.m[i], a.v[i]
		for j := range val {
			m[j] = a.beta1*m[j] + (1-a.beta1)*g[j]
			v[j] = a.beta2*v[j] + (1-a.beta2)*g[j]*g[j]
			mh := m[j] / c1
			vh := v[j] / c2
			val[j] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
			g[j] = 0
		}
	}
}

// SetLR changes the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR returns the current learning rate.
func (a *Adam) LR() float64 { return a.lr }

// StepDecay returns a schedule that multiplies the base LR by factor every
// interval epochs: lr(e) = base * factor^(e/interval).
func StepDecay(base, factor float64, interval int) func(epoch int) float64 {
	return func(epoch int) float64 {
		return base * math.Pow(factor, float64(epoch/interval))
	}
}
