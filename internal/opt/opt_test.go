package opt

import (
	"math"
	"testing"

	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// quadParam builds a parameter initialised at x0 whose loss is ½‖x‖²
// (gradient = x), the canonical convex test problem.
func quadParam(x0 []float64) *nn.Param {
	return &nn.Param{
		Name:  "x",
		Value: tensor.FromSlice(append([]float64(nil), x0...), len(x0)),
		Grad:  tensor.New(len(x0)),
	}
}

func setQuadGrad(p *nn.Param) {
	copy(p.Grad.Data(), p.Value.Data())
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := quadParam([]float64{5, -3, 2})
	sgd := NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	for i := 0; i < 200; i++ {
		setQuadGrad(p)
		sgd.Step()
	}
	if n := p.Value.L2Norm(); n > 1e-6 {
		t.Fatalf("SGD did not converge, ‖x‖=%v", n)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := quadParam([]float64{5, -3, 2})
	sgd := NewSGD([]*nn.Param{p}, 0.05, 0.9, 0)
	for i := 0; i < 300; i++ {
		setQuadGrad(p)
		sgd.Step()
	}
	if n := p.Value.L2Norm(); n > 1e-6 {
		t.Fatalf("momentum SGD did not converge, ‖x‖=%v", n)
	}
}

func TestSGDMomentumFasterThanVanillaOnIllConditioned(t *testing.T) {
	// loss = ½(100·x₀² + x₁²): badly conditioned; momentum should reach a
	// lower loss than vanilla SGD in the same iteration budget.
	run := func(momentum float64) float64 {
		p := quadParam([]float64{1, 1})
		sgd := NewSGD([]*nn.Param{p}, 0.009, momentum, 0)
		for i := 0; i < 120; i++ {
			g := p.Grad.Data()
			v := p.Value.Data()
			g[0], g[1] = 100*v[0], v[1]
			sgd.Step()
		}
		v := p.Value.Data()
		return 50*v[0]*v[0] + 0.5*v[1]*v[1]
	}
	if lm, lv := run(0.9), run(0); lm >= lv {
		t.Fatalf("momentum loss %v not better than vanilla %v", lm, lv)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := quadParam([]float64{1})
	sgd := NewSGD([]*nn.Param{p}, 0.1, 0, 0.5)
	// zero task gradient: only decay acts
	p.Grad.Zero()
	sgd.Step()
	if got := p.Value.Data()[0]; math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("decay step got %v, want 0.95", got)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := quadParam([]float64{5, -3, 2})
	adam := NewAdam([]*nn.Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		setQuadGrad(p)
		adam.Step()
	}
	if n := p.Value.L2Norm(); n > 1e-3 {
		t.Fatalf("Adam did not converge, ‖x‖=%v", n)
	}
}

func TestAdamFirstStepSize(t *testing.T) {
	// Adam's bias correction makes the first step ≈ lr·sign(grad)
	p := quadParam([]float64{1})
	adam := NewAdam([]*nn.Param{p}, 0.01)
	setQuadGrad(p)
	adam.Step()
	if got := p.Value.Data()[0]; math.Abs(got-0.99) > 1e-6 {
		t.Fatalf("first Adam step landed at %v, want ≈0.99", got)
	}
}

func TestSetLR(t *testing.T) {
	p := quadParam([]float64{1})
	sgd := NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	sgd.SetLR(0.5)
	if sgd.LR() != 0.5 {
		t.Fatalf("SetLR not applied: %v", sgd.LR())
	}
	adam := NewAdam([]*nn.Param{p}, 0.1)
	adam.SetLR(0.2)
	if adam.LR() != 0.2 {
		t.Fatalf("Adam SetLR not applied: %v", adam.LR())
	}
}

func TestStepDecaySchedule(t *testing.T) {
	sched := StepDecay(1.0, 0.5, 3)
	wants := []float64{1, 1, 1, 0.5, 0.5, 0.5, 0.25}
	for e, want := range wants {
		if got := sched(e); math.Abs(got-want) > 1e-12 {
			t.Fatalf("sched(%d)=%v, want %v", e, got, want)
		}
	}
}

func TestBadLRPanics(t *testing.T) {
	p := quadParam([]float64{1})
	for _, f := range []func(){
		func() { NewSGD([]*nn.Param{p}, 0, 0, 0) },
		func() { NewAdam([]*nn.Param{p}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("non-positive LR did not panic")
				}
			}()
			f()
		}()
	}
}

func TestOptimizersTrainRealNetwork(t *testing.T) {
	// a 2D XOR-ish separation task: both optimizers should fit it
	r := rng.New(1)
	x := tensor.FromSlice([]float64{
		0, 0, 0, 1, 1, 0, 1, 1,
	}, 4, 2)
	y := []int{0, 1, 1, 0}
	for name, mk := range map[string]func(ps []*nn.Param) Optimizer{
		"sgd":  func(ps []*nn.Param) Optimizer { return NewSGD(ps, 0.3, 0.9, 0) },
		"adam": func(ps []*nn.Param) Optimizer { return NewAdam(ps, 0.05) },
	} {
		net := nn.NewNetwork("xor", 2,
			nn.NewDense("fc1", r, 2, 8), nn.NewTanh("t"), nn.NewDense("fc2", r, 8, 2))
		o := mk(net.Params())
		for i := 0; i < 800; i++ {
			logits := net.Forward(x)
			_, grad := nn.CrossEntropy(logits, y)
			net.ZeroGrad()
			net.Backward(grad)
			o.Step()
		}
		if acc := net.Accuracy(x, y, 4); acc != 1 {
			t.Errorf("%s failed to fit XOR, accuracy %v", name, acc)
		}
	}
}
