package opt

import (
	"testing"

	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// randParams builds a small deterministic parameter set with nonzero values.
func randParams(seed int64) []*nn.Param {
	r := rng.New(seed)
	var ps []*nn.Param
	for i, n := range []int{17, 5, 9} {
		ps = append(ps, &nn.Param{
			Name:  string(rune('a' + i)),
			Value: tensor.RandUniform(r, -1, 1, n),
			Grad:  tensor.New(n),
		})
	}
	return ps
}

func fillGrads(ps []*nn.Param, seed int64) {
	r := rng.New(seed)
	for _, p := range ps {
		g := p.Grad.Data()
		for j := range g {
			g[j] = r.Float64()*2 - 1
		}
	}
}

// TestStepAndZeroMatchesStep: for every optimizer variant, K steps of
// StepAndZero must leave bit-identical weights to K steps of Step followed by
// manual gradient zeroing, and must leave every gradient exactly zero.
func TestStepAndZeroMatchesStep(t *testing.T) {
	builders := []struct {
		name  string
		build func(ps []*nn.Param) Optimizer
	}{
		{"sgd-vanilla", func(ps []*nn.Param) Optimizer { return NewSGD(ps, 0.1, 0, 0) }},
		{"sgd-momentum-decay", func(ps []*nn.Param) Optimizer { return NewSGD(ps, 0.05, 0.9, 1e-4) }},
		{"adam", func(ps []*nn.Param) Optimizer { return NewAdam(ps, 0.01) }},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			want := randParams(1)
			got := randParams(1)
			wOpt := b.build(want)
			gOpt := b.build(got)
			for step := 0; step < 6; step++ {
				fillGrads(want, int64(10+step))
				fillGrads(got, int64(10+step))
				wOpt.Step()
				for _, p := range want {
					g := p.Grad.Data()
					for j := range g {
						g[j] = 0
					}
				}
				gOpt.StepAndZero()
			}
			for i := range want {
				if !got[i].Value.Equal(want[i].Value) {
					t.Errorf("param %s: StepAndZero weights diverge from Step", want[i].Name)
				}
				for j, g := range got[i].Grad.Data() {
					if g != 0 {
						t.Fatalf("param %s grad[%d] = %v after StepAndZero, want 0", got[i].Name, j, g)
					}
				}
			}
		})
	}
}

// TestStepAndZeroAllocFree: the fused step is the hot path of every training
// loop and must not touch the heap.
func TestStepAndZeroAllocFree(t *testing.T) {
	for _, b := range []struct {
		name  string
		build func(ps []*nn.Param) Optimizer
	}{
		{"sgd-momentum", func(ps []*nn.Param) Optimizer { return NewSGD(ps, 0.05, 0.9, 1e-4) }},
		{"adam", func(ps []*nn.Param) Optimizer { return NewAdam(ps, 0.01) }},
	} {
		t.Run(b.name, func(t *testing.T) {
			ps := randParams(2)
			o := b.build(ps)
			fillGrads(ps, 3)
			o.StepAndZero()
			if a := testing.AllocsPerRun(20, o.StepAndZero); a != 0 {
				t.Errorf("StepAndZero allocates %.1f objects/op, want 0", a)
			}
		})
	}
}
