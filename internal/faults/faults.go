// Package faults implements the weight-level error models the paper injects
// into trained networks to create "fault models":
//
//   - LogNormal: the programming-variation model w' = w·e^θ, θ ~ N(0, σ²),
//     from memristor resistance variation (paper §II-B and §IV-A).
//   - RandomSoft: run-time random soft errors — with probability p each
//     weight is replaced by a random value drawn from its layer's range
//     (paper §IV-A: p = 0.5%/1% on LeNet-5, 0.1%/0.3% on ConvNet-7).
//   - StuckAt: hard faults freezing a device at LRS (SA1 → maximal weight
//     magnitude) or HRS (SA0 → zero conductance contribution) (paper §II-B).
//   - Drift: gradual multiplicative resistance drift over time.
//
// Injectors mutate ReRAM-resident parameters only — tensors named
// "*.weight", since biases live in digital logic on every published
// crossbar design — and are applied to clones of the clean model, never to
// the original.
package faults

import (
	"fmt"
	"math"
	"strings"

	"reramtest/internal/nn"
	"reramtest/internal/rng"
)

// Injector mutates the ReRAM-resident weights of a network in place.
type Injector interface {
	// Name identifies the error model for reports, e.g. "lognormal(0.30)".
	Name() string
	// Apply corrupts net's weights using randomness from r.
	Apply(net *nn.Network, r *rng.RNG)
}

// weightParams returns the parameters an injector targets: crossbar-resident
// weight tensors, excluding biases.
func weightParams(net *nn.Network) []*nn.Param {
	var out []*nn.Param
	for _, p := range net.Params() {
		if strings.HasSuffix(p.Name, ".weight") {
			out = append(out, p)
		}
	}
	return out
}

// LogNormal is the paper's programming-variation model: every weight is
// multiplied by e^θ with θ ~ N(0, σ²).
type LogNormal struct {
	Sigma float64
}

// Name implements Injector.
func (l LogNormal) Name() string { return fmt.Sprintf("lognormal(%.2f)", l.Sigma) }

// Apply multiplies every weight by an independent lognormal factor.
func (l LogNormal) Apply(net *nn.Network, r *rng.RNG) {
	for _, p := range weightParams(net) {
		d := p.Value.Data()
		for i := range d {
			d[i] *= r.LogNormal(0, l.Sigma)
		}
	}
}

// RandomSoft models run-time random soft errors: with probability p a weight
// is replaced by a uniform random value spanning its tensor's value range —
// the digital-side view of a cell that has been disturbed to an arbitrary
// resistance level.
type RandomSoft struct {
	P float64
}

// Name implements Injector.
func (s RandomSoft) Name() string { return fmt.Sprintf("randomsoft(%.3f%%)", 100*s.P) }

// Apply corrupts each weight independently with probability P.
func (s RandomSoft) Apply(net *nn.Network, r *rng.RNG) {
	for _, p := range weightParams(net) {
		d := p.Value.Data()
		lo, hi := p.Value.Min(), p.Value.Max()
		for i := range d {
			if r.Bernoulli(s.P) {
				d[i] = r.Uniform(lo, hi)
			}
		}
	}
}

// StuckAt models hard device faults: with probability P0 a weight's cell is
// stuck at HRS (zero conductance contribution → weight 0) and with
// probability P1 stuck at LRS (full-scale conductance → ±max magnitude,
// keeping the original sign since sign lives in the differential pair
// assignment).
type StuckAt struct {
	P0 float64 // stuck-at-zero probability
	P1 float64 // stuck-at-one probability
}

// Name implements Injector.
func (s StuckAt) Name() string {
	return fmt.Sprintf("stuckat(sa0=%.3f%%, sa1=%.3f%%)", 100*s.P0, 100*s.P1)
}

// Apply freezes a random subset of weights at 0 or at the tensor's maximum
// magnitude.
func (s StuckAt) Apply(net *nn.Network, r *rng.RNG) {
	for _, p := range weightParams(net) {
		d := p.Value.Data()
		maxAbs := 0.0
		for _, v := range d {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		for i := range d {
			u := r.Float64()
			switch {
			case u < s.P0:
				d[i] = 0
			case u < s.P0+s.P1:
				if d[i] >= 0 {
					d[i] = maxAbs
				} else {
					d[i] = -maxAbs
				}
			}
		}
	}
}

// Drift models gradual resistance drift: after time t each weight decays
// toward zero by e^(-Rate·t) with additional lognormal jitter of width
// Jitter·sqrt(t), approximating the diffusion of filament states.
type Drift struct {
	Rate   float64 // deterministic decay rate per unit time
	Jitter float64 // stochastic lognormal σ per sqrt unit time
	T      float64 // elapsed time
}

// Name implements Injector.
func (d Drift) Name() string {
	return fmt.Sprintf("drift(rate=%.3f, jitter=%.3f, t=%.1f)", d.Rate, d.Jitter, d.T)
}

// Apply decays and jitters every weight.
func (d Drift) Apply(net *nn.Network, r *rng.RNG) {
	decay := math.Exp(-d.Rate * d.T)
	sigma := d.Jitter * math.Sqrt(d.T)
	for _, p := range weightParams(net) {
		data := p.Value.Data()
		for i := range data {
			data[i] *= decay * r.LogNormal(0, sigma)
		}
	}
}

// Compose chains several injectors into one.
type Compose []Injector

// Name implements Injector.
func (c Compose) Name() string {
	parts := make([]string, len(c))
	for i, inj := range c {
		parts[i] = inj.Name()
	}
	return strings.Join(parts, "+")
}

// Apply applies each component in order.
func (c Compose) Apply(net *nn.Network, r *rng.RNG) {
	for _, inj := range c {
		inj.Apply(net, r)
	}
}

// MakeFaulty clones clean and applies inj to the clone with a fresh RNG
// seeded by seed. The clean network is never modified.
func MakeFaulty(clean *nn.Network, inj Injector, seed int64) *nn.Network {
	faulty := clean.Clone()
	inj.Apply(faulty, rng.New(seed))
	return faulty
}

// MakeFaultySet builds count independent fault models of clean under inj,
// with seeds derived deterministically from baseSeed.
func MakeFaultySet(clean *nn.Network, inj Injector, count int, baseSeed int64) []*nn.Network {
	r := rng.New(baseSeed)
	out := make([]*nn.Network, count)
	for i := range out {
		out[i] = MakeFaulty(clean, inj, r.Int63())
	}
	return out
}
