package faults

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

func testNet() *nn.Network {
	return models.MLP(rng.New(1), 8, []int{16}, 4)
}

func weightSnapshot(net *nn.Network) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, p := range net.Params() {
		out = append(out, p.Value.Clone())
	}
	return out
}

func TestMakeFaultyLeavesCleanUntouched(t *testing.T) {
	clean := testNet()
	before := weightSnapshot(clean)
	_ = MakeFaulty(clean, LogNormal{Sigma: 0.5}, 42)
	for i, p := range clean.Params() {
		if !p.Value.Equal(before[i]) {
			t.Fatalf("MakeFaulty mutated clean param %s", p.Name)
		}
	}
}

func TestMakeFaultyDeterministic(t *testing.T) {
	clean := testNet()
	a := MakeFaulty(clean, LogNormal{Sigma: 0.3}, 7)
	b := MakeFaulty(clean, LogNormal{Sigma: 0.3}, 7)
	for i := range a.Params() {
		if !a.Params()[i].Value.Equal(b.Params()[i].Value) {
			t.Fatal("same seed produced different fault models")
		}
	}
	c := MakeFaulty(clean, LogNormal{Sigma: 0.3}, 8)
	if a.Params()[0].Value.Equal(c.Params()[0].Value) {
		t.Fatal("different seeds produced identical fault models")
	}
}

func TestLogNormalPreservesSignAndZero(t *testing.T) {
	clean := testNet()
	// plant exact zeros and fixed signs
	w := clean.Params()[0].Value
	w.Data()[0] = 0
	w.Data()[1] = 2
	w.Data()[2] = -3
	faulty := MakeFaulty(clean, LogNormal{Sigma: 0.5}, 3)
	fw := faulty.Params()[0].Value.Data()
	if fw[0] != 0 {
		t.Fatalf("lognormal changed zero weight to %v", fw[0])
	}
	if fw[1] <= 0 || fw[2] >= 0 {
		t.Fatalf("lognormal flipped signs: %v %v", fw[1], fw[2])
	}
}

func TestLogNormalMagnitude(t *testing.T) {
	// E[ln(w'/w)] = 0, std ≈ σ over many weights
	clean := models.MLP(rng.New(2), 64, []int{128}, 10)
	const sigma = 0.3
	faulty := MakeFaulty(clean, LogNormal{Sigma: sigma}, 5)
	var logs []float64
	for i, p := range clean.Params() {
		if !strings.HasSuffix(p.Name, ".weight") {
			continue
		}
		fd := faulty.Params()[i].Value.Data()
		for j, w := range p.Value.Data() {
			if w != 0 {
				logs = append(logs, math.Log(fd[j]/w))
			}
		}
	}
	mean, sq := 0.0, 0.0
	for _, v := range logs {
		mean += v
	}
	mean /= float64(len(logs))
	for _, v := range logs {
		sq += (v - mean) * (v - mean)
	}
	std := math.Sqrt(sq / float64(len(logs)))
	if math.Abs(mean) > 0.01 {
		t.Errorf("lognormal θ mean %v, want ≈0", mean)
	}
	if math.Abs(std-sigma) > 0.01 {
		t.Errorf("lognormal θ std %v, want ≈%v", std, sigma)
	}
}

func TestBiasesUntouched(t *testing.T) {
	clean := testNet()
	// make biases non-zero so corruption would be visible
	for _, p := range clean.Params() {
		if strings.HasSuffix(p.Name, ".bias") {
			p.Value.Fill(0.5)
		}
	}
	for _, inj := range []Injector{
		LogNormal{Sigma: 1},
		RandomSoft{P: 1},
		StuckAt{P0: 0.5, P1: 0.5},
		Drift{Rate: 1, Jitter: 1, T: 10},
	} {
		faulty := MakeFaulty(clean, inj, 11)
		for i, p := range clean.Params() {
			if strings.HasSuffix(p.Name, ".bias") {
				if !faulty.Params()[i].Value.Equal(p.Value) {
					t.Errorf("%s corrupted bias %s", inj.Name(), p.Name)
				}
			}
		}
	}
}

func TestRandomSoftRate(t *testing.T) {
	clean := models.MLP(rng.New(3), 64, []int{128}, 10)
	const p = 0.05
	faulty := MakeFaulty(clean, RandomSoft{P: p}, 13)
	changed, total := 0, 0
	for i, pr := range clean.Params() {
		if !strings.HasSuffix(pr.Name, ".weight") {
			continue
		}
		fd := faulty.Params()[i].Value.Data()
		for j, w := range pr.Value.Data() {
			total++
			if fd[j] != w {
				changed++
			}
		}
	}
	rate := float64(changed) / float64(total)
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("RandomSoft changed %.3f of weights, want ≈%v", rate, p)
	}
}

func TestRandomSoftStaysInRange(t *testing.T) {
	clean := testNet()
	w := clean.Params()[0].Value
	lo, hi := w.Min(), w.Max()
	faulty := MakeFaulty(clean, RandomSoft{P: 1}, 17)
	fw := faulty.Params()[0].Value
	if fw.Min() < lo-1e-12 || fw.Max() > hi+1e-12 {
		t.Fatalf("RandomSoft out of range [%v,%v]: [%v,%v]", lo, hi, fw.Min(), fw.Max())
	}
}

func TestStuckAtRates(t *testing.T) {
	clean := models.MLP(rng.New(4), 64, []int{128}, 10)
	faulty := MakeFaulty(clean, StuckAt{P0: 0.1, P1: 0.05}, 19)
	zeros, total := 0, 0
	for i, pr := range clean.Params() {
		if !strings.HasSuffix(pr.Name, ".weight") {
			continue
		}
		fd := faulty.Params()[i].Value.Data()
		cd := pr.Value.Data()
		for j := range fd {
			total++
			if fd[j] == 0 && cd[j] != 0 {
				zeros++
			}
		}
	}
	rate := float64(zeros) / float64(total)
	if math.Abs(rate-0.1) > 0.02 {
		t.Fatalf("SA0 rate %.3f, want ≈0.1", rate)
	}
}

func TestStuckAtSA1PreservesSign(t *testing.T) {
	clean := testNet()
	faulty := MakeFaulty(clean, StuckAt{P0: 0, P1: 1}, 23)
	for i, pr := range clean.Params() {
		if !strings.HasSuffix(pr.Name, ".weight") {
			continue
		}
		fd := faulty.Params()[i].Value.Data()
		for j, w := range pr.Value.Data() {
			if w > 0 && fd[j] < 0 || w < 0 && fd[j] > 0 {
				t.Fatal("SA1 flipped a weight sign")
			}
		}
	}
}

func TestDriftDecaysMagnitude(t *testing.T) {
	clean := testNet()
	faulty := MakeFaulty(clean, Drift{Rate: 0.1, Jitter: 0, T: 5}, 29)
	want := math.Exp(-0.5)
	for i, pr := range clean.Params() {
		if !strings.HasSuffix(pr.Name, ".weight") {
			continue
		}
		fd := faulty.Params()[i].Value.Data()
		for j, w := range pr.Value.Data() {
			if w == 0 {
				continue
			}
			if math.Abs(fd[j]/w-want) > 1e-12 {
				t.Fatalf("drift factor %v, want %v", fd[j]/w, want)
			}
		}
	}
}

func TestComposeAppliesAll(t *testing.T) {
	clean := testNet()
	inj := Compose{Drift{Rate: 0.1, Jitter: 0, T: 1}, StuckAt{P0: 1, P1: 0}}
	faulty := MakeFaulty(clean, inj, 31)
	// SA0 with P0=1 zeroes everything regardless of drift
	for i, pr := range clean.Params() {
		if strings.HasSuffix(pr.Name, ".weight") {
			if faulty.Params()[i].Value.L2Norm() != 0 {
				t.Fatal("compose did not apply final stuck-at")
			}
		}
	}
	if !strings.Contains(inj.Name(), "drift") || !strings.Contains(inj.Name(), "stuckat") {
		t.Fatalf("compose name %q missing parts", inj.Name())
	}
}

func TestMakeFaultySetIndependence(t *testing.T) {
	clean := testNet()
	set := MakeFaultySet(clean, LogNormal{Sigma: 0.3}, 5, 99)
	if len(set) != 5 {
		t.Fatalf("set size %d", len(set))
	}
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if set[i].Params()[0].Value.Equal(set[j].Params()[0].Value) {
				t.Fatalf("fault models %d and %d identical", i, j)
			}
		}
	}
	// deterministic regeneration
	set2 := MakeFaultySet(clean, LogNormal{Sigma: 0.3}, 5, 99)
	for i := range set {
		if !set[i].Params()[0].Value.Equal(set2[i].Params()[0].Value) {
			t.Fatal("MakeFaultySet not deterministic")
		}
	}
}

func TestAccuracyDegradesMonotonically(t *testing.T) {
	// sanity link to the paper's Table I: larger σ must not (on average)
	// *improve* accuracy. Use a tiny trained model and coarse σ levels.
	r := rng.New(6)
	train := 200
	dim := 16
	x := tensor.RandUniform(r, 0, 1, train, dim)
	y := make([]int, train)
	for i := 0; i < train; i++ {
		if x.Data()[i*dim] > 0.5 {
			y[i] = 1
		}
	}
	net := models.MLP(rng.New(7), dim, []int{16}, 2)
	// quick fit
	trainNet(net, x, y, 200)
	clean := net.Accuracy(x, y, 32)
	if clean < 0.9 {
		t.Fatalf("tiny model failed to fit: %v", clean)
	}
	accAt := func(sigma float64) float64 {
		sum := 0.0
		for _, fm := range MakeFaultySet(net, LogNormal{Sigma: sigma}, 10, 37) {
			sum += fm.Accuracy(x, y, 32)
		}
		return sum / 10
	}
	small, large := accAt(0.1), accAt(1.5)
	if large > small+0.02 {
		t.Fatalf("accuracy increased with error: σ=0.1→%.3f σ=1.5→%.3f", small, large)
	}
}

func trainNet(net *nn.Network, x *tensor.Tensor, y []int, iters int) {
	for i := 0; i < iters; i++ {
		logits := net.Forward(x)
		_, grad := nn.CrossEntropy(logits, y)
		net.ZeroGrad()
		net.Backward(grad)
		for _, p := range net.Params() {
			p.Value.AxpyInPlace(-0.5, p.Grad)
		}
	}
}

// Property: fault injection is a pure function of (clean weights, seed).
func TestInjectionPureFunctionProperty(t *testing.T) {
	clean := testNet()
	err := quick.Check(func(seed int64, sigmaRaw uint8) bool {
		sigma := 0.05 + float64(sigmaRaw%50)/100
		a := MakeFaulty(clean, LogNormal{Sigma: sigma}, seed)
		b := MakeFaulty(clean, LogNormal{Sigma: sigma}, seed)
		for i := range a.Params() {
			if !a.Params()[i].Value.Equal(b.Params()[i].Value) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10})
	if err != nil {
		t.Error(err)
	}
}

// Property: RandomSoft with p=0 is the identity.
func TestRandomSoftZeroProbabilityIdentity(t *testing.T) {
	clean := testNet()
	faulty := MakeFaulty(clean, RandomSoft{P: 0}, 5)
	for i, p := range clean.Params() {
		if !faulty.Params()[i].Value.Equal(p.Value) {
			t.Fatalf("p=0 injection changed %s", p.Name)
		}
	}
}
