package loadgen

import (
	"reflect"
	"testing"
	"time"

	"reramtest/internal/reram"
)

// fakeReport builds a deterministic report from a small integer seed so the
// associativity test exercises every merged field with distinct values.
func fakeReport(n uint64) Report {
	i := int(n)
	return Report{
		Sent: 10 * i, OK: 7 * i, Degraded: i, Hung: i % 2, Transport: i % 3,
		Untyped: 0, Storms: i,
		ByKind:   map[string]int{"ok": 7 * i, "deadline": 2 * i, "hung": i % 2},
		ByTenant: map[string]int{"a": 6 * i, "b": 4 * i},
		Cost: reram.Cost{ComputeCycles: 100 * n, DACConversions: 10 * n,
			ADCConversions: 20 * n, CrossbarReads: 30 * n, EnergyFJ: 1000 * n,
			BufferBytes: 64 * n},
		CostByTenant: map[string]reram.Cost{
			"a": {ComputeCycles: 60 * n, EnergyFJ: 600 * n},
			"b": {ComputeCycles: 40 * n, EnergyFJ: 400 * n},
		},
		Latencies: []time.Duration{time.Duration(i) * time.Millisecond},
		Elapsed:   time.Duration(i) * time.Second,
	}
}

// stripOrder clears the fields Merge does not promise an order or a derived
// value for, so DeepEqual compares only the associative content.
func stripOrder(r Report) Report {
	total := time.Duration(0)
	for _, l := range r.Latencies {
		total += l
	}
	r.Latencies = []time.Duration{total} // order-insensitive digest
	r.Throughput = 0                     // derived; recomputed per merge step
	return r
}

// TestMergeAssociative checks (a⊕b)⊕c == a⊕(b⊕c) field by field, including
// the per-tenant cost ledgers — the property campaign soaks rely on when
// folding per-phase reports in arbitrary groupings.
func TestMergeAssociative(t *testing.T) {
	a, b, c := fakeReport(1), fakeReport(2), fakeReport(3)

	left := fakeReport(1)
	left.Merge(b)
	left.Merge(c)

	bc := fakeReport(2)
	bc.Merge(c)
	right := fakeReport(1)
	right.Merge(bc)

	if !reflect.DeepEqual(stripOrder(left), stripOrder(right)) {
		t.Fatalf("merge not associative:\nleft  %+v\nright %+v", left, right)
	}

	// sanity: totals actually add across the three inputs
	wantSent := a.Sent + b.Sent + c.Sent
	if left.Sent != wantSent {
		t.Fatalf("merged Sent = %d, want %d", left.Sent, wantSent)
	}
	wantCost := a.Cost
	wantCost.Add(b.Cost)
	wantCost.Add(c.Cost)
	if left.Cost != wantCost {
		t.Fatalf("merged Cost = %+v, want %+v", left.Cost, wantCost)
	}
	wantA := a.CostByTenant["a"]
	wantA.Add(b.CostByTenant["a"])
	wantA.Add(c.CostByTenant["a"])
	if left.CostByTenant["a"] != wantA {
		t.Fatalf("merged tenant-a cost = %+v, want %+v", left.CostByTenant["a"], wantA)
	}
}

// TestMergeIntoZero checks merging into a zero-value report works (nil maps
// are materialised) — the shape campaign code uses for its running total.
func TestMergeIntoZero(t *testing.T) {
	var total Report
	total.Merge(fakeReport(2))
	if total.Sent != 20 || total.ByTenant["a"] != 12 {
		t.Fatalf("merge into zero value lost counters: %+v", total)
	}
	if total.CostByTenant["b"].EnergyFJ != 800 {
		t.Fatalf("merge into zero value lost tenant cost: %+v", total.CostByTenant)
	}
}
