package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Requests: 200, InDim: 4, Concurrency: 8, StormEvery: 3,
		Tenants: []TenantSpec{
			{Name: "a", Weight: 3, MaxRows: 2, MonitorP: 0.2},
			{Name: "b", Weight: 1, MaxRows: 4},
		},
	}
	r1, err := Generate(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Generate(42, cfg)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("same seed produced different schedules")
	}
	r3, _ := Generate(43, cfg)
	if reflect.DeepEqual(r1, r3) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateMixAndStorms(t *testing.T) {
	cfg := Config{
		Requests: 4000, InDim: 3, Concurrency: 10, StormEvery: 4, StormDeadlineMs: 2,
		DeadlineMs: 500,
		Tenants: []TenantSpec{
			{Name: "heavy", Weight: 3},
			{Name: "light", Weight: 1},
		},
	}
	reqs, err := Generate(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byTenant := map[string]int{}
	storms := 0
	for _, q := range reqs {
		byTenant[q.Tenant]++
		if q.Storm {
			storms++
			if q.DeadlineMs != 2 {
				t.Fatalf("storm request carries deadline %d, want 2", q.DeadlineMs)
			}
		} else if q.DeadlineMs != 500 {
			t.Fatalf("ordinary request carries deadline %d, want 500", q.DeadlineMs)
		}
		if len(q.Input) < 1 || len(q.Input[0]) != 3 {
			t.Fatalf("bad input shape %dx%d", len(q.Input), len(q.Input[0]))
		}
	}
	// 3:1 weights → heavy should land near 75% of 4000
	if byTenant["heavy"] < 2700 || byTenant["heavy"] > 3300 {
		t.Fatalf("heavy got %d of 4000, want ~3000", byTenant["heavy"])
	}
	// every 4th wave of 10 storms → ~1000 storm requests
	if storms < 900 || storms > 1100 {
		t.Fatalf("%d storm requests, want ~1000", storms)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(1, Config{Requests: 0, InDim: 4}); err == nil {
		t.Fatal("Requests=0 accepted")
	}
	if _, err := Generate(1, Config{Requests: 10, InDim: 0}); err == nil {
		t.Fatal("InDim=0 accepted")
	}
}

// scriptTarget classifies requests by a fixed rule, counting calls.
type scriptTarget struct {
	mu    sync.Mutex
	calls int
	fn    func(req Request) Outcome
}

func (s *scriptTarget) Serve(_ context.Context, req Request) Outcome {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return s.fn(req)
}

func TestRunAccountsEveryRequest(t *testing.T) {
	tgt := &scriptTarget{fn: func(req Request) Outcome {
		if req.Storm {
			return Outcome{Kind: "deadline", Code: 504}
		}
		return Outcome{Kind: "ok", Code: 200, Degraded: req.Monitor}
	}}
	cfg := Config{Requests: 500, InDim: 2, Concurrency: 25, StormEvery: 5,
		Tenants: []TenantSpec{{Name: "t", MonitorP: 0.5}}}
	rep, err := Run(context.Background(), 11, tgt, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 500 || tgt.calls != 500 {
		t.Fatalf("sent %d, target saw %d, want 500", rep.Sent, tgt.calls)
	}
	total := 0
	for _, n := range rep.ByKind {
		total += n
	}
	if total != rep.Sent {
		t.Fatalf("ByKind sums to %d, Sent %d — a request fell out of accounting", total, rep.Sent)
	}
	if rep.OK+rep.ByKind["deadline"] != 500 {
		t.Fatalf("ok %d + deadline %d != 500", rep.OK, rep.ByKind["deadline"])
	}
	if rep.Untyped != 0 {
		t.Fatalf("untyped %d on a fully-typed target", rep.Untyped)
	}
	if rep.Degraded == 0 {
		t.Fatal("MonitorP=0.5 produced zero degraded outcomes")
	}
	if rep.Storms == 0 || len(rep.Latencies) != rep.Sent-rep.ByKind["deadline"] {
		t.Fatalf("storms %d, latencies %d — storm waves must not pollute latency samples",
			rep.Storms, len(rep.Latencies))
	}
}

func TestRunFlagsUntypedOutcomes(t *testing.T) {
	tgt := &scriptTarget{fn: func(Request) Outcome { return Outcome{Kind: "gremlin", Code: 500} }}
	rep, err := Run(context.Background(), 1, tgt, Config{Requests: 10, InDim: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Untyped != 10 {
		t.Fatalf("untyped %d, want 10", rep.Untyped)
	}
}

func TestRunProgressHook(t *testing.T) {
	tgt := &scriptTarget{fn: func(Request) Outcome { return Outcome{Kind: "ok", Code: 200} }}
	var marks []int
	_, err := Run(context.Background(), 2, tgt, Config{Requests: 30, InDim: 2, Concurrency: 10},
		func(done int) { marks = append(marks, done) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(marks, []int{10, 20, 30}) {
		t.Fatalf("progress marks %v, want [10 20 30]", marks)
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tgt := &scriptTarget{fn: func(Request) Outcome { return Outcome{Kind: "ok"} }}
	if _, err := Run(ctx, 3, tgt, Config{Requests: 100, InDim: 2}, nil); err == nil {
		t.Fatal("cancelled context did not stop the campaign")
	}
}

func TestHTTPTargetClassifiesWire(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Tenant string `json:"tenant"`
		}
		json.NewDecoder(r.Body).Decode(&body)
		switch body.Tenant {
		case "ok":
			json.NewEncoder(w).Encode(map[string]any{"probs": [][]float64{{1}}, "degraded": true})
		case "quota":
			w.WriteHeader(429)
			json.NewEncoder(w).Encode(map[string]string{"error": "quota"})
		case "slow":
			time.Sleep(2 * time.Second)
		default:
			w.WriteHeader(500) // no JSON body at all
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	tgt := NewHTTPTarget(ts.URL, ts.Client())
	defer tgt.CloseIdle()

	ctx := context.Background()
	if out := tgt.Serve(ctx, Request{Tenant: "ok", DeadlineMs: 1000}); out.Kind != "ok" || !out.Degraded {
		t.Fatalf("ok case: %+v", out)
	}
	if out := tgt.Serve(ctx, Request{Tenant: "quota", DeadlineMs: 1000}); out.Kind != "quota" || out.Code != 429 {
		t.Fatalf("quota case: %+v", out)
	}
	if out := tgt.Serve(ctx, Request{Tenant: "none", DeadlineMs: 1000}); out.Kind != "http_500" {
		t.Fatalf("bodyless 500: %+v", out)
	}
	sctx, scancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer scancel()
	if out := tgt.Serve(sctx, Request{Tenant: "slow", DeadlineMs: 10}); out.Kind != "hung" {
		t.Fatalf("expired transport: %+v", out)
	}
}

func TestReportPercentiles(t *testing.T) {
	r := Report{}
	for i := 1; i <= 100; i++ {
		r.Latencies = append(r.Latencies, time.Duration(i)*time.Millisecond)
	}
	if p := r.P(0.50); p < 50*time.Millisecond || p > 52*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := r.P(0.99); p < 99*time.Millisecond {
		t.Fatalf("p99 = %v", p)
	}
	if (Report{}).P(0.99) != 0 {
		t.Fatal("empty report p99 != 0")
	}
}
