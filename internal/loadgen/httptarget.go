package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"reramtest/internal/reram"
)

// HTTPTarget drives a live netserve endpoint over its wire protocol.
type HTTPTarget struct {
	base   string
	client *http.Client
}

// NewHTTPTarget points the generator at a serving tier's base URL
// (e.g. "http://127.0.0.1:8080"). A nil client gets a dedicated one — the
// per-request context, not a client timeout, bounds each call, so hung
// detection stays in Run's hands.
func NewHTTPTarget(base string, client *http.Client) *HTTPTarget {
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	return &HTTPTarget{base: base, client: client}
}

// CloseIdle releases kept-alive connections; soaks call it before the
// goroutine-leak audit.
func (h *HTTPTarget) CloseIdle() {
	h.client.CloseIdleConnections()
}

// Serve posts one request to /v1/infer and classifies the reply.
func (h *HTTPTarget) Serve(ctx context.Context, req Request) Outcome {
	prio := "bulk"
	if req.Monitor {
		prio = "monitor"
	}
	body, err := json.Marshal(map[string]any{
		"tenant":   req.Tenant,
		"priority": prio,
		"input":    req.Input,
	})
	if err != nil {
		return Outcome{Kind: "transport"}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		return Outcome{Kind: "transport"}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Deadline-Ms", strconv.Itoa(req.DeadlineMs))

	resp, err := h.client.Do(hreq)
	if err != nil {
		// a context expiry here means the tier outlived deadline+grace
		if errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			return Outcome{Kind: "hung"}
		}
		return Outcome{Kind: "transport"}
	}
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusOK {
		var ok struct {
			Degraded bool       `json:"degraded"`
			Cost     reram.Cost `json:"cost"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&ok); derr != nil {
			return Outcome{Kind: "transport", Code: resp.StatusCode}
		}
		return Outcome{Kind: "ok", Code: resp.StatusCode, Degraded: ok.Degraded, Cost: ok.Cost}
	}
	var bad struct {
		Error string `json:"error"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&bad); derr != nil || bad.Error == "" {
		bad.Error = fmt.Sprintf("http_%d", resp.StatusCode)
	}
	return Outcome{Kind: bad.Error, Code: resp.StatusCode}
}
