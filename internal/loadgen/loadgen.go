// Package loadgen is the seeded load generator for the network-facing
// serving tier (internal/netserve): multi-tenant request campaigns with
// weighted tenant mixes, mixed priorities, per-request deadlines, and
// scheduled fault storms (waves of near-impossible deadlines), sustained to
// ~10⁶ requests from one seed. The same engine drives the standalone
// cmd/loadgen binary against any live endpoint and campaign.RunNetSoak's
// acceptance gate against an in-test listener — one traffic model, two
// harnesses.
//
// Determinism: the request *schedule* (tenant sequence, batch shapes,
// priorities, storm waves, payloads) is a pure function of the seed.
// Completion order and latencies are not — that is the point of measuring a
// live tier — but the accounting identities the soak audits (every request
// lands in exactly one outcome class, known kinds only) hold regardless.
package loadgen

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"reramtest/internal/reram"
	"reramtest/internal/rng"
)

// TenantSpec is one tenant's share of the traffic mix.
type TenantSpec struct {
	// Name keys the tenant's quota bucket and hash-ring placement.
	Name string
	// Weight is the tenant's relative share of requests (≤ 0 → 1).
	Weight float64
	// MaxRows bounds this tenant's per-request batch rows, drawn uniformly
	// from [1, MaxRows] (0 → 3).
	MaxRows int
	// MonitorP is the fraction of this tenant's requests sent at monitor
	// priority (test patterns / health probes).
	MonitorP float64
}

// Config parameterises one campaign.
type Config struct {
	// Tenants is the traffic mix (empty → one default tenant).
	Tenants []TenantSpec
	// Requests is the campaign size.
	Requests int
	// Concurrency is the in-flight fan-out (0 → 16).
	Concurrency int
	// InDim is the model input width requests must carry.
	InDim int
	// DeadlineMs rides every ordinary request (0 → 1000).
	DeadlineMs int
	// StormEvery makes every Nth wave a fault storm carrying StormDeadlineMs
	// instead (0 disables storms).
	StormEvery int
	// StormDeadlineMs is the storm deadline (0 → 2).
	StormDeadlineMs int
	// Grace is the hung-request slack: a request whose round trip outlives
	// its deadline by more than this counts as hung (0 → 250ms).
	Grace time.Duration
}

func (c Config) withDefaults() Config {
	if len(c.Tenants) == 0 {
		c.Tenants = []TenantSpec{{Name: "default"}}
	}
	for i := range c.Tenants {
		if c.Tenants[i].Weight <= 0 {
			c.Tenants[i].Weight = 1
		}
		if c.Tenants[i].MaxRows == 0 {
			c.Tenants[i].MaxRows = 3
		}
	}
	if c.Concurrency == 0 {
		c.Concurrency = 16
	}
	if c.DeadlineMs == 0 {
		c.DeadlineMs = 1000
	}
	if c.StormDeadlineMs == 0 {
		c.StormDeadlineMs = 2
	}
	if c.Grace == 0 {
		c.Grace = 250 * time.Millisecond
	}
	return c
}

// Validate rejects campaigns the generator cannot run.
func (c Config) Validate() error {
	if c.Requests < 1 {
		return fmt.Errorf("loadgen: Requests must be ≥ 1, got %d", c.Requests)
	}
	if c.InDim < 1 {
		return fmt.Errorf("loadgen: InDim must be ≥ 1, got %d", c.InDim)
	}
	if c.Concurrency < 0 || c.DeadlineMs < 0 || c.StormDeadlineMs < 0 || c.StormEvery < 0 {
		return fmt.Errorf("loadgen: negative knob")
	}
	return nil
}

// Request is one generated request, scheduled before any traffic flies.
type Request struct {
	Tenant     string
	Monitor    bool // monitor priority
	Input      [][]float64
	DeadlineMs int
	Storm      bool // part of a fault-storm wave
}

// Outcome is the terminal classification of one request, as observed from
// the client side.
type Outcome struct {
	// Kind is the wire error kind ("ok", "deadline", "quota", …) or one of
	// the client-side kinds "hung" (the transport gave up past
	// deadline+grace) and "transport" (connection-level failure).
	Kind string
	// Code is the HTTP status (0 for client-side failures).
	Code int
	// Degraded flags an ok answer served from degraded silicon.
	Degraded bool
	// Cost is the hardware spend the tier reported for the winning attempt
	// (zero for failed requests or unmetered tiers). Summed into the report's
	// client-observed cost ledger, which the soak gates reconcile against the
	// tier's own per-tenant table.
	Cost reram.Cost
}

// Target serves one generated request and classifies the result. Both the
// HTTP client (NewHTTPTarget) and in-process adapters implement it.
type Target interface {
	Serve(ctx context.Context, req Request) Outcome
}

// Report is one campaign's aggregate result.
type Report struct {
	Sent      int
	OK        int
	Degraded  int
	Hung      int
	Transport int
	Untyped   int            // outcomes outside the known-kind contract
	ByKind    map[string]int // every outcome kind → count
	ByTenant  map[string]int // requests sent per tenant
	Storms    int            // storm waves run

	// Cost is the total hardware spend the tier reported across this
	// campaign's ok answers, and CostByTenant its per-tenant split — the
	// client-observed side of the tier's cost ledger.
	Cost         reram.Cost
	CostByTenant map[string]reram.Cost

	// Latencies holds the non-storm round-trip times, in completion order —
	// raw so a soak can pool baseline and chaos passes before computing
	// percentiles.
	Latencies []time.Duration

	Elapsed    time.Duration
	Throughput float64 // requests/sec over the whole campaign
}

// Merge folds other into r. Counters and cost ledgers add, latency samples
// pool, elapsed times sum, and throughput is recomputed over the merged
// campaign. Merging is associative and commutative up to latency-sample order
// (all scalar fields are plain sums), so soaks can fold per-phase reports in
// any grouping and reconcile the same totals.
func (r *Report) Merge(other Report) {
	r.Sent += other.Sent
	r.OK += other.OK
	r.Degraded += other.Degraded
	r.Hung += other.Hung
	r.Transport += other.Transport
	r.Untyped += other.Untyped
	r.Storms += other.Storms
	if r.ByKind == nil {
		r.ByKind = make(map[string]int)
	}
	for k, n := range other.ByKind {
		r.ByKind[k] += n
	}
	if r.ByTenant == nil {
		r.ByTenant = make(map[string]int)
	}
	for t, n := range other.ByTenant {
		r.ByTenant[t] += n
	}
	r.Cost.Add(other.Cost)
	if len(other.CostByTenant) > 0 && r.CostByTenant == nil {
		r.CostByTenant = make(map[string]reram.Cost)
	}
	for t, c := range other.CostByTenant {
		merged := r.CostByTenant[t]
		merged.Add(c)
		r.CostByTenant[t] = merged
	}
	r.Latencies = append(r.Latencies, other.Latencies...)
	r.Elapsed += other.Elapsed
	if secs := r.Elapsed.Seconds(); secs > 0 {
		r.Throughput = float64(r.Sent) / secs
	}
}

// P returns the q-quantile (0 < q ≤ 1) of the non-storm latencies.
func (r Report) P(q float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted)) * q)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the report on a few lines.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent %d in %v (%.0f req/s): ok %d (degraded %d), hung %d, transport %d, untyped %d\n",
		r.Sent, r.Elapsed.Round(time.Millisecond), r.Throughput, r.OK, r.Degraded, r.Hung, r.Transport, r.Untyped)
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-12s %d\n", k, r.ByKind[k])
	}
	fmt.Fprintf(&b, "  p50 %v  p95 %v  p99 %v", r.P(0.50), r.P(0.95), r.P(0.99))
	return b.String()
}

// knownKinds is the closed outcome contract: the tier's wire kinds plus the
// two client-side classifications.
var knownKinds = map[string]bool{
	"ok": true, "invalid": true, "quota": true, "closed": true,
	"overloaded": true, "deadline": true, "no_devices": true, "faulted": true,
	"hung": true, "transport": true,
}

// Generate materialises the campaign's full request schedule from the seed.
// The schedule is deterministic; Run preserves per-wave ordering.
func Generate(seed int64, cfg Config) ([]Request, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	totalWeight := 0.0
	for _, t := range cfg.Tenants {
		totalWeight += t.Weight
	}
	reqs := make([]Request, cfg.Requests)
	for i := range reqs {
		wave := i / cfg.Concurrency
		storm := cfg.StormEvery > 0 && wave > 0 && wave%cfg.StormEvery == 0
		// weighted tenant pick from the seeded stream
		pick := r.Float64() * totalWeight
		ten := cfg.Tenants[len(cfg.Tenants)-1]
		for _, t := range cfg.Tenants {
			if pick < t.Weight {
				ten = t
				break
			}
			pick -= t.Weight
		}
		rows := 1 + r.Intn(ten.MaxRows)
		input := make([][]float64, rows)
		for q := range input {
			row := make([]float64, cfg.InDim)
			r.FillUniform(row, 0, 1)
			input[q] = row
		}
		deadline := cfg.DeadlineMs
		if storm {
			deadline = cfg.StormDeadlineMs
		}
		reqs[i] = Request{
			Tenant:     ten.Name,
			Monitor:    r.Bernoulli(ten.MonitorP),
			Input:      input,
			DeadlineMs: deadline,
			Storm:      storm,
		}
	}
	return reqs, nil
}

// Run drives one seeded campaign against target and aggregates the outcomes.
// Progress, when non-nil, is called between waves with the number of
// requests completed so far — the hook soaks use to trigger mid-campaign
// events (a shard drain, a chaos phase change) at a deterministic point in
// the schedule.
func Run(ctx context.Context, seed int64, target Target, cfg Config, progress func(done int)) (Report, error) {
	cfg = cfg.withDefaults()
	reqs, err := Generate(seed, cfg)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ByKind: make(map[string]int), ByTenant: make(map[string]int),
		CostByTenant: make(map[string]reram.Cost)}
	var mu sync.Mutex
	start := time.Now()

	for waveStart := 0; waveStart < len(reqs); waveStart += cfg.Concurrency {
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		end := waveStart + cfg.Concurrency
		if end > len(reqs) {
			end = len(reqs)
		}
		wave := reqs[waveStart:end]
		if wave[0].Storm {
			rep.Storms++
		}
		var wg sync.WaitGroup
		for _, req := range wave {
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				deadline := time.Duration(req.DeadlineMs) * time.Millisecond
				// the transport gives the tier until deadline+grace to answer;
				// past that the request is hung by definition
				rctx, cancel := context.WithTimeout(ctx, deadline+cfg.Grace)
				defer cancel()
				t0 := time.Now()
				out := target.Serve(rctx, req)
				elapsed := time.Since(t0)
				if out.Kind == "" {
					out.Kind = "transport"
				}
				if elapsed > deadline+cfg.Grace {
					out.Kind = "hung"
				}

				mu.Lock()
				defer mu.Unlock()
				rep.Sent++
				rep.ByTenant[req.Tenant]++
				rep.ByKind[out.Kind]++
				switch out.Kind {
				case "ok":
					rep.OK++
					if out.Degraded {
						rep.Degraded++
					}
					if !out.Cost.IsZero() {
						rep.Cost.Add(out.Cost)
						tc := rep.CostByTenant[req.Tenant]
						tc.Add(out.Cost)
						rep.CostByTenant[req.Tenant] = tc
					}
				case "hung":
					rep.Hung++
				case "transport":
					rep.Transport++
				}
				if !knownKinds[out.Kind] {
					rep.Untyped++
				}
				if !req.Storm {
					rep.Latencies = append(rep.Latencies, elapsed)
				}
			}(req)
		}
		wg.Wait()
		if progress != nil {
			progress(end)
		}
	}
	rep.Elapsed = time.Since(start)
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(rep.Sent) / secs
	}
	return rep, nil
}
