// Hardware cost accounting, re-exported. The accounting core lives in the
// dependency-leaf package internal/hwcost so that the training engine (which
// packages above the model layer import) can charge into the same counters
// without creating an import cycle through this package. Device-facing code
// keeps writing reram.Cost / reram.Counter: every name below is a type alias
// or thin wrapper, so the types are identical across package boundaries.
//
// See hwcost's package comment for the design constraints (numerically
// invisible, allocation-free hot path, deterministic folds) and DESIGN.md §14
// for units and charge points.
package reram

import (
	"reramtest/internal/hwcost"
	"reramtest/internal/nn"
	"reramtest/internal/tensor"
)

// Modeled per-event energy coefficients in femtojoules (see hwcost).
const (
	EnergyCellReadFJ  = hwcost.EnergyCellReadFJ
	EnergyCellWriteFJ = hwcost.EnergyCellWriteFJ
	EnergyDACFJ       = hwcost.EnergyDACFJ
	EnergyADCFJ       = hwcost.EnergyADCFJ
)

// Cost, CostBreakdown, Class, Counter and Meter are aliases of the hwcost
// types — identical types, not conversions, so values flow freely between
// packages that import either name.
type (
	Cost          = hwcost.Cost
	CostBreakdown = hwcost.CostBreakdown
	Class         = hwcost.Class
	Counter       = hwcost.Counter
	Meter         = hwcost.Meter
)

// Attribution classes (see hwcost.Class).
const (
	ClassServing = hwcost.ClassServing
	ClassMonitor = hwcost.ClassMonitor
	ClassRepair  = hwcost.ClassRepair
)

// NewCounter returns a zeroed counter attributing to ClassServing.
func NewCounter() *Counter { return hwcost.NewCounter() }

// NewMeter returns a meter with n shards (n ≥ 1).
func NewMeter(n int) *Meter { return hwcost.NewMeter(n) }

// MatVecCost is hwcost.MatVecCost with the tile organisation drawn from a
// simulator Config.
func MatVecCost(out, in int, cfg Config, denseReads bool) Cost {
	return hwcost.MatVecCost(out, in, cfg.TileRows, cfg.TileCols, denseReads)
}

// ModelLayerCost is hwcost.ModelLayerCost with the tile organisation drawn
// from a simulator Config.
func ModelLayerCost(l nn.Layer, inVol, outVol int, cfg Config) Cost {
	return hwcost.ModelLayerCost(l, inVol, outVol, cfg.TileRows, cfg.TileCols)
}

// ModelLayerCostPrec is hwcost.ModelLayerCostPrec with the tile organisation
// drawn from a simulator Config: the per-layer cost model priced at the
// numeric tier a plan actually compiled (int8 conversions are cheaper than
// the f64 sticker model, narrower elements mean less buffer traffic).
func ModelLayerCostPrec(l nn.Layer, inVol, outVol int, cfg Config, p tensor.Precision) Cost {
	return hwcost.ModelLayerCostPrec(l, inVol, outVol, cfg.TileRows, cfg.TileCols, p)
}

// readCost/writeCost are the tile-level charge helpers the crossbar and
// mapper use (see hwcost.ReadCost / hwcost.WriteCost).
func readCost(activeCells uint64) Cost { return hwcost.ReadCost(activeCells) }
func writeCost(cells uint64) Cost      { return hwcost.WriteCost(cells) }
