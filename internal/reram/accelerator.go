package reram

import (
	"fmt"

	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// Accelerator maps every weight-bearing layer of a trained network onto
// tiled ReRAM crossbars and executes inference on the simulated hardware.
// Pooling, activations and biases run in digital peripheral logic, as in
// ISAAC/PRIME-class designs.
type Accelerator struct {
	model   *nn.Network // digital skeleton (owns biases and digital layers)
	cfg     Config
	engines map[int]*TiledLinear // layer index → crossbar group
	hours   float64
}

// NewAccelerator programs net's weights into crossbars. net itself is cloned;
// later changes to net do not affect the accelerator.
func NewAccelerator(net *nn.Network, cfg Config, seed int64) *Accelerator {
	a := &Accelerator{model: net.Clone(), cfg: cfg, engines: make(map[int]*TiledLinear)}
	r := rng.New(seed)
	for li, layer := range a.model.Layers() {
		switch l := layer.(type) {
		case *nn.Conv2D:
			a.engines[li] = MapLinear(l.Params()[0].Value, cfg, r.Split())
		case *nn.Dense:
			// Dense weights are stored (In, Out); crossbar mapping wants
			// (Out, In) with inputs on word-lines.
			a.engines[li] = MapLinear(tensor.Transpose2D(l.Params()[0].Value), cfg, r.Split())
		}
	}
	return a
}

// Config returns the accelerator organisation.
func (a *Accelerator) Config() Config { return a.cfg }

// Hours returns the simulated in-field time elapsed.
func (a *Accelerator) Hours() float64 { return a.hours }

// TileCount returns the total number of crossbar arrays in the accelerator.
func (a *Accelerator) TileCount() int {
	n := 0
	for _, e := range a.engines {
		n += e.TileCount()
	}
	return n
}

// AdvanceTime ages every array by the given number of hours (drift and
// soft-error accumulation).
func (a *Accelerator) AdvanceTime(hours float64) {
	a.hours += hours
	for _, e := range a.engines {
		e.AdvanceTime(hours)
	}
}

// InjectStuckAt adds field stuck-at faults across all arrays.
func (a *Accelerator) InjectStuckAt(p0, p1 float64) {
	for _, e := range a.engines {
		e.InjectStuckAt(p0, p1)
	}
}

// InjectSoftErrors disturbs a fraction p of healthy cells across all arrays
// in one instantaneous shower. Reprogram clears the damage.
func (a *Accelerator) InjectSoftErrors(p float64) {
	for _, e := range a.engines {
		e.InjectSoftErrors(p)
	}
}

// Reprogram rewrites all arrays to their target conductances — the cheap
// repair action a monitor triggers when drift (not hard faults) dominates.
func (a *Accelerator) Reprogram() {
	for _, e := range a.engines {
		e.Reprogram()
	}
}

// ProgramNetwork re-deploys a full set of weights onto the existing arrays —
// the final step of the cloud-edge retraining repair. The source network
// must have the same architecture the accelerator was built from. Stuck
// cells ignore the write; healthy cells are reprogrammed (clearing drift and
// soft errors along the way). Digital-side parameters (biases) are updated
// too.
func (a *Accelerator) ProgramNetwork(net *nn.Network) {
	src := net.Params()
	dst := a.model.Params()
	if len(src) != len(dst) {
		panic(fmt.Sprintf("reram: ProgramNetwork got %d params, accelerator has %d", len(src), len(dst)))
	}
	for i, p := range dst {
		p.Value.CopyFrom(src[i].Value)
	}
	for li, layer := range a.model.Layers() {
		e, ok := a.engines[li]
		if !ok {
			continue
		}
		switch layer.(type) {
		case *nn.Conv2D:
			e.ProgramWeights(layer.Params()[0].Value)
		case *nn.Dense:
			e.ProgramWeights(tensor.Transpose2D(layer.Params()[0].Value))
		}
	}
}

// ReadoutNetwork exports the current effective weights into a copy of the
// model: the weight-level view of the hardware state. DAC/ADC quantization
// is not represented (use Infer for the full analog path).
func (a *Accelerator) ReadoutNetwork() *nn.Network {
	net := a.model.Clone()
	for li, layer := range net.Layers() {
		e, ok := a.engines[li]
		if !ok {
			continue
		}
		w := e.EffectiveWeights()
		switch layer.(type) {
		case *nn.Conv2D:
			layer.Params()[0].Value.CopyFrom(w)
		case *nn.Dense:
			layer.Params()[0].Value.CopyFrom(tensor.Transpose2D(w))
		}
	}
	return net
}

// Infer runs a (N, D) batch through the full analog path: convolutions and
// dense layers execute as crossbar MatVecs with DAC/ADC quantization;
// everything else runs on the digital skeleton's layers. Returns logits.
func (a *Accelerator) Infer(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	if x.Dim(1) != a.model.InDim() {
		panic(fmt.Sprintf("reram: Infer input %v, want (N, %d)", x.Shape(), a.model.InDim()))
	}
	cur := x
	for li, layer := range a.model.Layers() {
		engine, mapped := a.engines[li]
		if !mapped {
			cur = layer.Forward(cur)
			continue
		}
		switch l := layer.(type) {
		case *nn.Dense:
			out := tensor.New(n, l.Out())
			od, bias := out.Data(), l.Params()[1].Value.Data()
			cd := cur.Data()
			for s := 0; s < n; s++ {
				y := engine.MatVec(cd[s*l.In() : (s+1)*l.In()])
				row := od[s*l.Out() : (s+1)*l.Out()]
				for j := range row {
					row[j] = y[j] + bias[j]
				}
			}
			cur = out
		case *nn.Conv2D:
			g := l.Geom()
			outH, outW := g.OutH(), g.OutW()
			spatial := outH * outW
			ckk := g.InC * g.KH * g.KW
			inVol := g.InC * g.InH * g.InW
			cols := tensor.New(ckk, spatial)
			out := tensor.New(n, l.OutC()*spatial)
			od, bias := out.Data(), l.Params()[1].Value.Data()
			cd := cur.Data()
			vec := make([]float64, ckk)
			for s := 0; s < n; s++ {
				sample := tensor.FromSlice(cd[s*inVol:(s+1)*inVol], inVol)
				tensor.Im2Col(cols, sample, g)
				colsD := cols.Data()
				for p := 0; p < spatial; p++ {
					for r := 0; r < ckk; r++ {
						vec[r] = colsD[r*spatial+p]
					}
					y := engine.MatVec(vec)
					for oc := 0; oc < l.OutC(); oc++ {
						od[s*l.OutC()*spatial+oc*spatial+p] = y[oc] + bias[oc]
					}
				}
			}
			cur = out
		}
	}
	return cur
}
