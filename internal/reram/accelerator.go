package reram

import (
	"fmt"

	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// Accelerator maps every weight-bearing layer of a trained network onto
// tiled ReRAM crossbars and executes inference on the simulated hardware.
// Pooling, activations and biases run in digital peripheral logic, as in
// ISAAC/PRIME-class designs.
type Accelerator struct {
	model   *nn.Network // digital skeleton (owns biases and digital layers)
	cfg     Config
	engines map[int]*TiledLinear // layer index → crossbar group
	hours   float64

	// readout is the in-place-refreshed weight-level view returned by
	// RefreshReadout; readoutBufs stages each engine's (Out, In) effective
	// weights so repeated readouts allocate nothing.
	readout     *nn.Network
	readoutBufs map[int]*tensor.Tensor

	// ws holds per-layer inference workspaces, grown on demand by Infer so a
	// steady stream of same-size batches through the analog path allocates
	// nothing. Like the layers themselves, this makes an Accelerator a
	// single-goroutine object.
	ws map[int]*layerWorkspace

	// counter meters every tile operation (see cost.go). Always non-nil after
	// NewAccelerator; SetCounter swaps in a caller-owned one — the deployment
	// pattern where cumulative device spend must survive accelerator
	// replacement.
	counter *Counter
}

// layerWorkspace is the reusable state one Infer step needs: the output
// batch, plus the conv column/vector staging or digital-kernel scratch.
type layerWorkspace struct {
	buf  []float64      // output storage, cap >= n*outVol
	out  *tensor.Tensor // (n, outVol) view of buf
	n    int            // batch size the view was built for
	cols []float64      // conv: im2col staging (ckk*spatial)
	vec  []float64      // conv: one column (ckk)
	y    []float64      // crossbar MatVecInto destination (engine.Out)
}

// batch returns the (n, vol) output view, growing the backing buffer and
// rebuilding the tensor header only when the batch size changes.
func (w *layerWorkspace) batch(n, vol int) *tensor.Tensor {
	if need := n * vol; need > cap(w.buf) {
		w.buf = make([]float64, need)
		w.n = 0
	}
	if w.n != n {
		w.out = tensor.FromSlice(w.buf[:n*vol], n, vol)
		w.n = n
	}
	return w.out
}

// NewAccelerator programs net's weights into crossbars. net itself is cloned;
// later changes to net do not affect the accelerator.
func NewAccelerator(net *nn.Network, cfg Config, seed int64) *Accelerator {
	a := &Accelerator{model: net.Clone(), cfg: cfg, engines: make(map[int]*TiledLinear)}
	r := rng.New(seed)
	for li, layer := range a.model.Layers() {
		switch l := layer.(type) {
		case *nn.Conv2D:
			a.engines[li] = MapLinear(l.Params()[0].Value, cfg, r.Split())
		case *nn.Dense:
			// Dense weights are stored (In, Out); crossbar mapping wants
			// (Out, In) with inputs on word-lines.
			a.engines[li] = MapLinear(tensor.Transpose2D(l.Params()[0].Value), cfg, r.Split())
		}
	}
	// meter in-field spend from commissioning onward: the counter attaches
	// after MapLinear, so fabrication-time programming is deliberately free
	a.SetCounter(NewCounter())
	return a
}

// SetCounter swaps the accelerator's cost counter (propagated to every tile)
// for a caller-owned one. The counter meters in-field spend; it is attached
// after commissioning, so fabrication-time programming never charges.
func (a *Accelerator) SetCounter(c *Counter) {
	a.counter = c
	for _, e := range a.engines {
		e.SetCounter(c)
	}
}

// Counter returns the accelerator's cost counter.
func (a *Accelerator) Counter() *Counter { return a.counter }

// CommissionCost is the sticker write cost of programming every array cell
// once — what deploying (or redeploying) the full weight set costs. Initial
// fabrication-time commissioning happens before the counter attaches and is
// never charged; callers that commission a replacement part IN the field
// (module-swap repair) charge this explicitly so the fleet ledger sees the
// write pass the new part absorbed.
func (a *Accelerator) CommissionCost() Cost {
	var c Cost
	for _, e := range a.engines {
		c.Add(e.commissionCost())
	}
	return c
}

// Config returns the accelerator organisation.
func (a *Accelerator) Config() Config { return a.cfg }

// Hours returns the simulated in-field time elapsed.
func (a *Accelerator) Hours() float64 { return a.hours }

// TileCount returns the total number of crossbar arrays in the accelerator.
func (a *Accelerator) TileCount() int {
	n := 0
	for _, e := range a.engines {
		n += e.TileCount()
	}
	return n
}

// AdvanceTime ages every array by the given number of hours (drift and
// soft-error accumulation).
func (a *Accelerator) AdvanceTime(hours float64) {
	a.hours += hours
	for _, e := range a.engines {
		e.AdvanceTime(hours)
	}
}

// InjectStuckAt adds field stuck-at faults across all arrays.
func (a *Accelerator) InjectStuckAt(p0, p1 float64) {
	for _, e := range a.engines {
		e.InjectStuckAt(p0, p1)
	}
}

// InjectSoftErrors disturbs a fraction p of healthy cells across all arrays
// in one instantaneous shower. Reprogram clears the damage.
func (a *Accelerator) InjectSoftErrors(p float64) {
	for _, e := range a.engines {
		e.InjectSoftErrors(p)
	}
}

// Reprogram rewrites all arrays to their target conductances — the cheap
// repair action a monitor triggers when drift (not hard faults) dominates.
func (a *Accelerator) Reprogram() {
	for _, e := range a.engines {
		e.Reprogram()
	}
}

// ProgramNetwork re-deploys a full set of weights onto the existing arrays —
// the final step of the cloud-edge retraining repair. The source network
// must have the same architecture the accelerator was built from. Stuck
// cells ignore the write; healthy cells are reprogrammed (clearing drift and
// soft errors along the way). Digital-side parameters (biases) are updated
// too.
func (a *Accelerator) ProgramNetwork(net *nn.Network) {
	src := net.Params()
	dst := a.model.Params()
	if len(src) != len(dst) {
		panic(fmt.Sprintf("reram: ProgramNetwork got %d params, accelerator has %d", len(src), len(dst)))
	}
	for i, p := range dst {
		p.Value.CopyFrom(src[i].Value)
	}
	for li, layer := range a.model.Layers() {
		e, ok := a.engines[li]
		if !ok {
			continue
		}
		switch layer.(type) {
		case *nn.Conv2D:
			e.ProgramWeights(layer.Params()[0].Value)
		case *nn.Dense:
			e.ProgramWeights(tensor.Transpose2D(layer.Params()[0].Value))
		}
	}
}

// ReadoutNetwork exports the current effective weights into a copy of the
// model: the weight-level view of the hardware state. DAC/ADC quantization
// is not represented (use Infer for the full analog path). The returned
// network is a fresh clone the caller owns — retraining repairs mutate it
// freely. Read-only consumers that poll the hardware state repeatedly should
// prefer RefreshReadout, which reuses one cached clone.
func (a *Accelerator) ReadoutNetwork() *nn.Network {
	net := a.model.Clone()
	a.exportReadout(net)
	return net
}

// RefreshReadout updates and returns the accelerator's cached readout
// network. The same *nn.Network is refreshed in place on every call —
// digital parameters are re-synced from the model and crossbar weights are
// re-read through per-engine staging buffers, so steady-state refreshes
// allocate nothing. That pointer stability is what lets an inference engine
// compiled over the readout stay bound across refreshes: the kernels read
// the parameter tensors at call time and simply see the new values. Callers
// must not mutate the returned network; use ReadoutNetwork for an owned copy.
func (a *Accelerator) RefreshReadout() *nn.Network {
	if a.readout == nil {
		a.readout = a.model.Clone()
	} else {
		src := a.model.Params()
		for i, p := range a.readout.Params() {
			p.Value.CopyFrom(src[i].Value)
		}
	}
	a.exportReadout(a.readout)
	return a.readout
}

// exportReadout copies every engine's effective weights into dst's
// parameters, transposing dense layers back to their (In, Out) storage.
// dst must share the model's architecture.
func (a *Accelerator) exportReadout(dst *nn.Network) {
	if a.readoutBufs == nil {
		a.readoutBufs = make(map[int]*tensor.Tensor)
	}
	for li, layer := range dst.Layers() {
		e, ok := a.engines[li]
		if !ok {
			continue
		}
		buf := a.readoutBufs[li]
		if buf == nil {
			buf = tensor.New(e.Out, e.In)
			a.readoutBufs[li] = buf
		}
		e.EffectiveWeightsInto(buf)
		switch layer.(type) {
		case *nn.Conv2D:
			layer.Params()[0].Value.CopyFrom(buf)
		case *nn.Dense:
			tensor.Transpose2DInto(layer.Params()[0].Value, buf)
		}
	}
}

// Infer runs a (N, D) batch through the full analog path: convolutions and
// dense layers execute as crossbar MatVecs with DAC/ADC quantization;
// everything else runs through the digital skeleton's batched inference
// kernels. Returns the (N, classes) logits in a per-accelerator workspace
// that is reused by the next Infer call — callers that need the batch to
// outlive the next readout must Clone it. Reshape-only layers (Flatten,
// Dropout at inference) are elided: the batch is already flat.
func (a *Accelerator) Infer(x *tensor.Tensor) *tensor.Tensor {
	tensor.AssertDims("reram.Infer x", x, tensor.Wildcard, a.model.InDim())
	n := x.Dim(0)
	if a.ws == nil {
		a.ws = make(map[int]*layerWorkspace)
	}
	cur := x
	for li, layer := range a.model.Layers() {
		if p, ok := layer.(nn.InferencePassthrough); ok && p.InferencePassthrough() {
			continue
		}
		w := a.ws[li]
		if w == nil {
			w = &layerWorkspace{}
			a.ws[li] = w
		}
		engine, mapped := a.engines[li]
		if !mapped {
			bl, ok := layer.(nn.BatchInfer)
			if !ok {
				// no batched kernel: fall back to the training-path Forward
				cur = layer.Forward(cur)
				continue
			}
			outVol := volume(layer.OutputShape([]int{cur.Len() / n}))
			out := w.batch(n, outVol)
			if need := bl.InferScratch(); len(w.cols) < need {
				w.cols = make([]float64, need)
			}
			bl.ForwardBatchRange(out, cur, 0, n, w.cols)
			cur = out
			continue
		}
		switch l := layer.(type) {
		case *nn.Dense:
			out := w.batch(n, l.Out())
			if len(w.y) < l.Out() {
				w.y = make([]float64, l.Out())
			}
			od, bias := out.Data(), l.Params()[1].Value.Data()
			cd := cur.Data()
			for s := 0; s < n; s++ {
				engine.MatVecInto(w.y, cd[s*l.In():(s+1)*l.In()])
				row := od[s*l.Out() : (s+1)*l.Out()]
				for j := range row {
					row[j] = w.y[j] + bias[j]
				}
			}
			cur = out
		case *nn.Conv2D:
			g := l.Geom()
			spatial := g.OutH() * g.OutW()
			ckk := g.InC * g.KH * g.KW
			inVol := g.InC * g.InH * g.InW
			out := w.batch(n, l.OutC()*spatial)
			if len(w.cols) < ckk*spatial {
				w.cols = make([]float64, ckk*spatial)
			}
			if len(w.vec) < ckk {
				w.vec = make([]float64, ckk)
			}
			if len(w.y) < l.OutC() {
				w.y = make([]float64, l.OutC())
			}
			cols, vec, y := w.cols[:ckk*spatial], w.vec[:ckk], w.y[:l.OutC()]
			od, bias := out.Data(), l.Params()[1].Value.Data()
			cd := cur.Data()
			for s := 0; s < n; s++ {
				tensor.Im2ColInto(cols, cd[s*inVol:(s+1)*inVol], g)
				for p := 0; p < spatial; p++ {
					for r := 0; r < ckk; r++ {
						vec[r] = cols[r*spatial+p]
					}
					engine.MatVecInto(y, vec)
					for oc := 0; oc < l.OutC(); oc++ {
						od[s*l.OutC()*spatial+oc*spatial+p] = y[oc] + bias[oc]
					}
				}
			}
			cur = out
		}
	}
	return cur
}

func volume(shape []int) int {
	v := 1
	for _, d := range shape {
		v *= d
	}
	return v
}
