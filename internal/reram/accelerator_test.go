package reram

import (
	"math"
	"testing"

	"reramtest/internal/models"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

func idealConfig() Config {
	return Config{TileRows: 64, TileCols: 64, DACBits: 0, ADCBits: 0, Device: idealParams()}
}

func TestAcceleratorReadoutMatchesDigital(t *testing.T) {
	net := models.MLP(rng.New(1), 12, []int{10}, 4)
	a := NewAccelerator(net, idealConfig(), 7)
	x := tensor.RandUniform(rng.New(2), 0, 1, 3, 12)
	want := net.Forward(x)
	got := a.ReadoutNetwork().Forward(x)
	if !got.AllClose(want, 1e-9) {
		t.Fatal("ideal accelerator readout differs from digital network")
	}
}

func TestAcceleratorInferMatchesDigitalIdeal(t *testing.T) {
	net := models.MLP(rng.New(3), 12, []int{10}, 4)
	a := NewAccelerator(net, idealConfig(), 8)
	x := tensor.RandUniform(rng.New(4), 0, 1, 2, 12)
	want := net.Forward(x)
	got := a.Infer(x)
	if !got.AllClose(want, 1e-9) {
		t.Fatalf("ideal analog inference differs: %v vs %v", got.Data(), want.Data())
	}
}

func TestAcceleratorInferConvNetwork(t *testing.T) {
	net := models.LeNet5(rng.New(5))
	a := NewAccelerator(net, idealConfig(), 9)
	x := tensor.RandUniform(rng.New(6), 0, 1, 1, 784)
	want := net.Forward(x)
	got := a.Infer(x)
	if !got.AllClose(want, 1e-6) {
		t.Fatalf("conv analog inference max err %v", maxAbsDiff(got, want))
	}
}

func TestAcceleratorQuantizedInferClose(t *testing.T) {
	net := models.MLP(rng.New(7), 12, []int{10}, 4)
	cfg := idealConfig()
	cfg.DACBits, cfg.ADCBits = 8, 10
	a := NewAccelerator(net, cfg, 10)
	x := tensor.RandUniform(rng.New(8), 0, 1, 2, 12)
	want := net.Forward(x)
	got := a.Infer(x)
	// quantization error must be small relative to the logit scale
	scale := math.Max(1, want.Map(math.Abs).Max())
	if maxAbsDiff(got, want) > 0.1*scale {
		t.Fatalf("quantized inference error %v exceeds 10%% of scale %v", maxAbsDiff(got, want), scale)
	}
}

func TestAcceleratorCloneSemantics(t *testing.T) {
	net := models.MLP(rng.New(9), 8, nil, 3)
	a := NewAccelerator(net, idealConfig(), 11)
	// mutating the source network afterwards must not affect the accelerator
	net.Params()[0].Value.Fill(0)
	got := a.ReadoutNetwork().Params()[0].Value
	if got.L2Norm() == 0 {
		t.Fatal("accelerator shares weight storage with the source network")
	}
}

func TestAcceleratorDriftDegradesThenReprogramRecovers(t *testing.T) {
	net := models.MLP(rng.New(10), 10, []int{8}, 3)
	cfg := idealConfig()
	cfg.Device.DriftRate = 0.005
	a := NewAccelerator(net, cfg, 12)
	x := tensor.RandUniform(rng.New(11), 0, 1, 4, 10)
	before := a.ReadoutNetwork().Forward(x)
	a.AdvanceTime(500)
	if a.Hours() != 500 {
		t.Fatalf("Hours=%v", a.Hours())
	}
	drifted := a.ReadoutNetwork().Forward(x)
	if drifted.AllClose(before, 1e-9) {
		t.Fatal("drift had no effect on outputs")
	}
	a.Reprogram()
	restored := a.ReadoutNetwork().Forward(x)
	if !restored.AllClose(before, 1e-9) {
		t.Fatal("reprogramming did not restore outputs")
	}
}

func TestAcceleratorStuckAtDegrades(t *testing.T) {
	net := models.MLP(rng.New(12), 10, []int{8}, 3)
	a := NewAccelerator(net, idealConfig(), 13)
	x := tensor.RandUniform(rng.New(13), 0, 1, 4, 10)
	before := a.ReadoutNetwork().Forward(x)
	a.InjectStuckAt(0.05, 0.05)
	after := a.ReadoutNetwork().Forward(x)
	if after.AllClose(before, 1e-9) {
		t.Fatal("stuck-at faults had no effect")
	}
}

func TestAcceleratorTileCount(t *testing.T) {
	net := models.MLP(rng.New(14), 100, []int{80}, 10)
	cfg := idealConfig() // 64×64 tiles
	a := NewAccelerator(net, cfg, 14)
	// fc1: 100×80 → 2×2 tiles ×2 polarity = 8; fc2: 80×10 → 2×1 ×2 = 4
	if got := a.TileCount(); got != 12 {
		t.Fatalf("TileCount=%d, want 12", got)
	}
}

func TestProgramNetworkRedeploysWeights(t *testing.T) {
	net := models.MLP(rng.New(20), 10, []int{8}, 3)
	a := NewAccelerator(net, idealConfig(), 21)
	x := tensor.RandUniform(rng.New(22), 0, 1, 2, 10)

	// retrain stand-in: shift every weight, then redeploy
	retrained := net.Clone()
	for _, p := range retrained.Params() {
		p.Value.ScaleInPlace(0.5)
	}
	a.ProgramNetwork(retrained)
	want := retrained.Forward(x)
	got := a.ReadoutNetwork().Forward(x)
	if !got.AllClose(want, 1e-9) {
		t.Fatal("redeployed accelerator does not match retrained network")
	}
	// Reprogram must now restore the NEW weights, not the originals
	a.AdvanceTime(0)
	a.Reprogram()
	got = a.ReadoutNetwork().Forward(x)
	if !got.AllClose(want, 1e-9) {
		t.Fatal("reprogram after redeploy reverted to stale targets")
	}
}

func TestProgramNetworkStuckCellsPersist(t *testing.T) {
	net := models.MLP(rng.New(23), 10, []int{8}, 3)
	a := NewAccelerator(net, idealConfig(), 24)
	a.InjectStuckAt(0.1, 0.1)
	before := a.ReadoutNetwork()
	a.ProgramNetwork(net) // rewrite with the same weights
	after := a.ReadoutNetwork()
	// stuck positions must read identically before and after the write
	for i, p := range before.Params() {
		bd, ad := p.Value.Data(), after.Params()[i].Value.Data()
		clean := net.Params()[i].Value.Data()
		for j := range bd {
			stuckish := bd[j] != clean[j]
			if stuckish && bd[j] != ad[j] {
				t.Fatalf("stuck cell %s[%d] changed across redeploy: %v -> %v", p.Name, j, bd[j], ad[j])
			}
		}
	}
}
