package reram

import (
	"math"
	"testing"
	"testing/quick"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

func idealParams() DeviceParams {
	p := DefaultDeviceParams()
	p.ProgramSigma = 0
	p.DriftRate = 0
	p.DriftJitter = 0
	p.SoftErrorRate = 0
	return p
}

func TestQuantizerIdealPassThrough(t *testing.T) {
	q := Quantizer{Bits: 0}
	if q.Quantize(0.12345) != 0.12345 {
		t.Fatal("ideal quantizer modified value")
	}
	if q.Levels() != 0 {
		t.Fatal("ideal quantizer reports levels")
	}
}

func TestQuantizerSnapsAndSaturates(t *testing.T) {
	q := Quantizer{Bits: 2, Lo: 0, Hi: 3} // levels 0,1,2,3
	cases := map[float64]float64{
		-5: 0, 0: 0, 0.4: 0, 0.6: 1, 1.4: 1, 2.6: 3, 99: 3,
	}
	for in, want := range cases {
		if got := q.Quantize(in); got != want {
			t.Fatalf("Quantize(%v)=%v, want %v", in, got, want)
		}
	}
	if q.Levels() != 4 {
		t.Fatalf("2-bit levels=%d", q.Levels())
	}
}

// Property: quantization is idempotent, monotone and bounded.
func TestQuantizerProperties(t *testing.T) {
	q := Quantizer{Bits: 5, Lo: -1, Hi: 1}
	err := quick.Check(func(a, b float64) bool {
		a, b = math.Mod(a, 3), math.Mod(b, 3)
		qa, qb := q.Quantize(a), q.Quantize(b)
		if q.Quantize(qa) != qa { // idempotent
			return false
		}
		if a <= b && qa > qb { // monotone
			return false
		}
		return qa >= -1 && qa <= 1 // bounded
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestCrossbarProgramReadback(t *testing.T) {
	dev := idealParams()
	x := NewCrossbar(4, 4, dev, rng.New(1))
	g := tensor.Full(50e-6, 4, 4)
	x.Program(g)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got := x.Conductance(i, j); got != 50e-6 {
				t.Fatalf("cell (%d,%d) reads %v", i, j, got)
			}
		}
	}
}

func TestCrossbarProgramClamps(t *testing.T) {
	dev := idealParams()
	x := NewCrossbar(1, 2, dev, rng.New(2))
	g := tensor.FromSlice([]float64{1, -1}, 1, 2) // way out of range
	x.Program(g)
	if x.Conductance(0, 0) != dev.GOn {
		t.Fatalf("over-range programmed to %v", x.Conductance(0, 0))
	}
	if x.Conductance(0, 1) != dev.GOff {
		t.Fatalf("under-range programmed to %v", x.Conductance(0, 1))
	}
}

func TestCrossbarMatVec(t *testing.T) {
	dev := idealParams()
	x := NewCrossbar(2, 2, dev, rng.New(3))
	g := tensor.FromSlice([]float64{10e-6, 20e-6, 30e-6, 40e-6}, 2, 2)
	x.Program(g)
	out := make([]float64, 2)
	x.MatVec([]float64{1, 0.5}, out)
	if math.Abs(out[0]-(10e-6+0.5*30e-6)) > 1e-18 {
		t.Fatalf("bitline 0 current %v", out[0])
	}
	if math.Abs(out[1]-(20e-6+0.5*40e-6)) > 1e-18 {
		t.Fatalf("bitline 1 current %v", out[1])
	}
}

func TestStuckAtCellsIgnoreWrites(t *testing.T) {
	dev := idealParams()
	dev.SA0Rate, dev.SA1Rate = 0.3, 0.2
	x := NewCrossbar(20, 20, dev, rng.New(4))
	ok, sa0, sa1 := x.FaultCounts()
	if sa0 == 0 || sa1 == 0 {
		t.Fatalf("expected fabrication faults, got %d/%d/%d", ok, sa0, sa1)
	}
	x.Program(tensor.Full(50e-6, 20, 20))
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			g := x.Conductance(i, j)
			if g != 50e-6 && g != dev.GOff && g != dev.GOn {
				t.Fatalf("cell (%d,%d) conductance %v is neither written nor stuck", i, j, g)
			}
		}
	}
}

func TestInjectStuckAtIncreasesFaults(t *testing.T) {
	x := NewCrossbar(30, 30, idealParams(), rng.New(5))
	_, sa0Before, _ := x.FaultCounts()
	x.InjectStuckAt(0.2, 0.1)
	_, sa0After, sa1After := x.FaultCounts()
	if sa0After <= sa0Before || sa1After == 0 {
		t.Fatal("InjectStuckAt added no faults")
	}
}

func TestDriftMovesTowardHRS(t *testing.T) {
	dev := idealParams()
	dev.DriftRate = 0.01
	x := NewCrossbar(2, 2, dev, rng.New(6))
	x.Program(tensor.Full(80e-6, 2, 2))
	x.AdvanceTime(100)
	got := x.Conductance(0, 0)
	want := dev.GOff + (80e-6-dev.GOff)*math.Exp(-1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("drifted conductance %v, want %v", got, want)
	}
	if got >= 80e-6 {
		t.Fatal("drift did not reduce conductance")
	}
}

func TestSoftErrorEventsOccur(t *testing.T) {
	dev := idealParams()
	dev.SoftErrorRate = 0.05
	x := NewCrossbar(20, 20, dev, rng.New(7))
	x.Program(tensor.Full(50e-6, 20, 20))
	x.AdvanceTime(10)
	changed := 0
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if x.Conductance(i, j) != 50e-6 {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Fatal("no soft-error disturbances after 10h at rate 0.05/h")
	}
}

func TestReprogramRestores(t *testing.T) {
	dev := idealParams()
	dev.DriftRate = 0.01
	x := NewCrossbar(3, 3, dev, rng.New(8))
	x.Program(tensor.Full(70e-6, 3, 3))
	x.AdvanceTime(200)
	if x.Conductance(1, 1) == 70e-6 {
		t.Fatal("drift had no effect")
	}
	x.Reprogram()
	if x.Conductance(1, 1) != 70e-6 {
		t.Fatalf("reprogram restored to %v", x.Conductance(1, 1))
	}
}

func TestMapLinearEffectiveWeightsRoundTrip(t *testing.T) {
	cfg := Config{TileRows: 8, TileCols: 8, DACBits: 0, ADCBits: 0, Device: idealParams()}
	r := rng.New(9)
	w := tensor.Randn(r, 0, 0.5, 12, 10) // forces 2x2 tiling
	tl := MapLinear(w, cfg, r)
	if tl.TileCount() != 2*2*2 {
		t.Fatalf("tile count %d, want 8", tl.TileCount())
	}
	got := tl.EffectiveWeights()
	if !got.AllClose(w, 1e-9) {
		t.Fatalf("effective weights diverge: max err %v", maxAbsDiff(got, w))
	}
}

func TestMapLinearMatVecMatchesDigital(t *testing.T) {
	cfg := Config{TileRows: 16, TileCols: 16, DACBits: 0, ADCBits: 0, Device: idealParams()}
	r := rng.New(10)
	w := tensor.Randn(r, 0, 0.5, 5, 7)
	tl := MapLinear(w, cfg, r)
	x := make([]float64, 7)
	rng.New(11).FillUniform(x, 0, 1)
	got := tl.MatVec(x)
	want := tensor.MatVec(w, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("analog MatVec[%d]=%v, digital %v", i, got[i], want[i])
		}
	}
}

func TestMapLinearQuantizedMatVecClose(t *testing.T) {
	cfg := Config{TileRows: 16, TileCols: 16, DACBits: 8, ADCBits: 10, Device: idealParams()}
	r := rng.New(12)
	w := tensor.Randn(r, 0, 0.5, 6, 8)
	tl := MapLinear(w, cfg, r)
	x := make([]float64, 8)
	rng.New(13).FillUniform(x, 0, 1)
	got := tl.MatVec(x)
	want := tensor.MatVec(w, x)
	scale := 0.0
	for _, v := range want {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 0.05*(scale+1) {
			t.Fatalf("quantized MatVec[%d]=%v too far from %v", i, got[i], want[i])
		}
	}
}

func TestMapLinearProgrammingNoise(t *testing.T) {
	dev := idealParams()
	dev.ProgramSigma = 0.2
	cfg := Config{TileRows: 32, TileCols: 32, Device: dev}
	r := rng.New(14)
	w := tensor.Randn(r, 0, 0.5, 20, 20)
	tl := MapLinear(w, cfg, r)
	got := tl.EffectiveWeights()
	if got.AllClose(w, 1e-6) {
		t.Fatal("programming noise had no effect")
	}
	// but the weights are still correlated with the targets
	diff := maxAbsDiff(got, w)
	if diff > 3*0.5 {
		t.Fatalf("noise destroyed weights entirely: max err %v", diff)
	}
}

func TestZeroWeightMatrix(t *testing.T) {
	cfg := Config{TileRows: 8, TileCols: 8, Device: idealParams()}
	r := rng.New(15)
	tl := MapLinear(tensor.New(4, 4), cfg, r)
	got := tl.EffectiveWeights()
	if got.L2Norm() != 0 {
		t.Fatalf("all-zero layer read back non-zero: %v", got.Data())
	}
}

func maxAbsDiff(a, b *tensor.Tensor) float64 {
	m := 0.0
	for i, v := range a.Data() {
		if d := math.Abs(v - b.Data()[i]); d > m {
			m = d
		}
	}
	return m
}
