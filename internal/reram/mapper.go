package reram

import (
	"fmt"
	"math"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// Config describes the accelerator organisation: array geometry, converter
// resolutions and device parameters.
type Config struct {
	// TileRows/TileCols is the crossbar array size (ISAAC and PRIME use
	// 128×128).
	TileRows, TileCols int
	// DACBits quantizes word-line input voltages over [0, 1]; 0 = ideal.
	DACBits int
	// ADCBits quantizes per-bitline output currents; 0 = ideal.
	ADCBits int
	// Device holds the per-cell physical parameters.
	Device DeviceParams
}

// DefaultConfig returns a 128×128 organisation with 8-bit DACs/ADCs and
// default device physics.
func DefaultConfig() Config {
	return Config{TileRows: 128, TileCols: 128, DACBits: 8, ADCBits: 8, Device: DefaultDeviceParams()}
}

// TiledLinear maps one (Out, In) weight matrix onto a grid of differential
// crossbar pairs. Rows of each crossbar are inputs (word-lines), columns are
// outputs (bit-lines). Weights are sign-split: w = (G⁺−G⁻) · scale with the
// positive part programmed on the G⁺ array and the magnitude of the negative
// part on G⁻, both offset from GOff.
type TiledLinear struct {
	In, Out  int
	cfg      Config
	scale    float64 // weight units per siemens of differential conductance
	tiles    [][]tilePair
	rowTiles int
	colTiles int
	dac      Quantizer
	counter  *Counter // nil = unmetered; shared with every tile's crossbars
	passCost Cost     // data-independent per-MatVec charge, precomputed
	// MatVecInto staging, allocated once at map time. These make TiledLinear
	// a single-goroutine object, like the nn layers it stands in for.
	vin, ip, in []float64
}

// SetCounter attaches a cost counter to the layer and all of its crossbars;
// nil detaches. Conversion, cycle and buffer charges land at this layer
// (which owns the DACs/ADCs and staging buffers); read/write charges land in
// the crossbars they touch.
func (t *TiledLinear) SetCounter(c *Counter) {
	t.counter = c
	for _, row := range t.tiles {
		for i := range row {
			row[i].pos.SetCounter(c)
			row[i].neg.SetCounter(c)
		}
	}
}

type tilePair struct {
	pos, neg *Crossbar
	// adcPos/adcNeg quantize each array's bitline current over its own
	// full-scale range, calibrated from the programmed conductances.
	adcPos, adcNeg Quantizer
}

// MapLinear programs weight matrix w (Out, In) into a new tiled crossbar
// group. wmax scaling is per-matrix: the largest |w| maps to the full
// conductance window.
func MapLinear(w *tensor.Tensor, cfg Config, r *rng.RNG) *TiledLinear {
	if w.Rank() != 2 {
		panic(fmt.Sprintf("reram: MapLinear needs a rank-2 weight matrix, got %v", w.Shape()))
	}
	out, in := w.Dim(0), w.Dim(1)
	t := &TiledLinear{
		In: in, Out: out, cfg: cfg,
		rowTiles: (in + cfg.TileRows - 1) / cfg.TileRows,
		colTiles: (out + cfg.TileCols - 1) / cfg.TileCols,
		dac:      Quantizer{Bits: cfg.DACBits, Lo: 0, Hi: 1},
		passCost: MatVecCost(out, in, cfg, false),
		vin:      make([]float64, cfg.TileRows),
		ip:       make([]float64, cfg.TileCols),
		in:       make([]float64, cfg.TileCols),
	}
	t.tiles = make([][]tilePair, t.rowTiles)
	for rt := 0; rt < t.rowTiles; rt++ {
		t.tiles[rt] = make([]tilePair, t.colTiles)
		for ct := 0; ct < t.colTiles; ct++ {
			t.tiles[rt][ct] = tilePair{
				pos: NewCrossbar(cfg.TileRows, cfg.TileCols, cfg.Device, r.Split()),
				neg: NewCrossbar(cfg.TileRows, cfg.TileCols, cfg.Device, r.Split()),
			}
		}
	}
	t.ProgramWeights(w)
	return t
}

// ProgramWeights writes a new (Out, In) weight matrix into the EXISTING
// arrays — the re-deployment path after cloud-edge retraining. Stuck cells
// keep ignoring writes (which is exactly why fault-aware retraining froze
// them); every healthy cell is reprogrammed, so accumulated drift and soft
// errors are cleared as a side effect. ADCs are recalibrated to the new
// conductance ranges.
func (t *TiledLinear) ProgramWeights(w *tensor.Tensor) {
	if w.Rank() != 2 || w.Dim(0) != t.Out || w.Dim(1) != t.In {
		panic(fmt.Sprintf("reram: ProgramWeights got %v, want (%d, %d)", w.Shape(), t.Out, t.In))
	}
	cfg := t.cfg
	wmax := 0.0
	for _, v := range w.Data() {
		if a := math.Abs(v); a > wmax {
			wmax = a
		}
	}
	if wmax == 0 {
		wmax = 1 // all-zero layer: arbitrary scale, everything programs to GOff
	}
	gWindow := cfg.Device.GOn - cfg.Device.GOff
	t.scale = wmax / gWindow
	wd := w.Data()
	for rt := 0; rt < t.rowTiles; rt++ {
		for ct := 0; ct < t.colTiles; ct++ {
			gp := tensor.Full(cfg.Device.GOff, cfg.TileRows, cfg.TileCols)
			gn := tensor.Full(cfg.Device.GOff, cfg.TileRows, cfg.TileCols)
			gpd, gnd := gp.Data(), gn.Data()
			for i := 0; i < cfg.TileRows; i++ {
				gi := rt*cfg.TileRows + i // global input index
				if gi >= t.In {
					break
				}
				for j := 0; j < cfg.TileCols; j++ {
					gj := ct*cfg.TileCols + j // global output index
					if gj >= t.Out {
						break
					}
					v := wd[gj*t.In+gi]
					g := cfg.Device.GOff + math.Abs(v)/wmax*gWindow
					if v >= 0 {
						gpd[i*cfg.TileCols+j] = g
					} else {
						gnd[i*cfg.TileCols+j] = g
					}
				}
			}
			tp := &t.tiles[rt][ct]
			tp.pos.Program(gp)
			tp.neg.Program(gn)
			tp.adcPos = calibrateADC(tp.pos, cfg.ADCBits)
			tp.adcNeg = calibrateADC(tp.neg, cfg.ADCBits)
		}
	}
}

// calibrateADC sizes an ADC to the worst-case bitline current of the array:
// every word-line at full scale through the largest programmed conductance
// column sum.
func calibrateADC(x *Crossbar, bits int) Quantizer {
	if bits <= 0 {
		return Quantizer{}
	}
	maxCol := 0.0
	for j := 0; j < x.Cols; j++ {
		sum := 0.0
		for i := 0; i < x.Rows; i++ {
			sum += x.Conductance(i, j)
		}
		if sum > maxCol {
			maxCol = sum
		}
	}
	return Quantizer{Bits: bits, Lo: 0, Hi: maxCol}
}

// MatVec executes y = W·x on the analog path: DAC-quantized inputs drive the
// word-lines of each tile pair, per-bitline currents are ADC-quantized,
// differential pairs are subtracted and partial sums accumulated digitally.
// x must have length In; the result has length Out (bias-free — biases stay
// in digital logic).
//
// Word-line voltages are unsigned, so inputs are dynamically range-scaled:
// x is divided by max(x) before the DAC and the result rescaled digitally,
// the standard input-encoding trick in ISAAC-class designs. Negative inputs
// are clamped to zero — valid for this repository's ReLU pipelines, where
// every crossbar-facing activation is non-negative.
func (t *TiledLinear) MatVec(x []float64) []float64 {
	out := make([]float64, t.Out)
	t.MatVecInto(out, x)
	return out
}

// MatVecInto is MatVec writing into a caller-owned slice of length Out —
// the allocation-free path the accelerator's batched inference uses. It
// reuses the tile staging buffers allocated at map time, so it must not be
// called from more than one goroutine at a time.
func (t *TiledLinear) MatVecInto(out, x []float64) {
	if len(x) != t.In {
		panic(fmt.Sprintf("reram: MatVec input length %d, want %d", len(x), t.In))
	}
	if len(out) != t.Out {
		panic(fmt.Sprintf("reram: MatVec output length %d, want %d", len(out), t.Out))
	}
	for i := range out {
		out[i] = 0
	}
	vmax := 0.0
	for _, v := range x {
		if v > vmax {
			vmax = v
		}
	}
	if vmax == 0 {
		return // all word-lines idle: no conversions, no charge
	}
	// data-independent pass charge (conversions, cycles, buffer traffic);
	// the crossbars below charge their own data-dependent reads
	t.counter.Charge(t.passCost)
	vin, ip, in := t.vin, t.ip, t.in
	for rt := 0; rt < t.rowTiles; rt++ {
		// load, range-normalise and DAC-quantize this tile row's inputs
		for i := range vin {
			gi := rt*t.cfg.TileRows + i
			if gi < t.In && x[gi] > 0 {
				vin[i] = t.dac.Quantize(x[gi] / vmax)
			} else {
				vin[i] = 0
			}
		}
		for ct := 0; ct < t.colTiles; ct++ {
			tp := t.tiles[rt][ct]
			tp.pos.MatVec(vin, ip)
			tp.neg.MatVec(vin, in)
			tp.adcPos.QuantizeSlice(ip)
			tp.adcNeg.QuantizeSlice(in)
			for j := 0; j < t.cfg.TileCols; j++ {
				gj := ct*t.cfg.TileCols + j
				if gj >= t.Out {
					break
				}
				out[gj] += (ip[j] - in[j]) * t.scale * vmax
			}
		}
	}
}

// EffectiveWeights reads the weight matrix back from the arrays, reflecting
// programming variation, stuck-at faults, soft errors and drift — the
// weight-level view of the hardware's current state.
func (t *TiledLinear) EffectiveWeights() *tensor.Tensor {
	w := tensor.New(t.Out, t.In)
	t.EffectiveWeightsInto(w)
	return w
}

// EffectiveWeightsInto is EffectiveWeights writing into a caller-owned
// (Out, In) tensor — every element is overwritten, so the buffer can be
// reused across readouts without clearing.
func (t *TiledLinear) EffectiveWeightsInto(w *tensor.Tensor) {
	tensor.AssertDims("reram.EffectiveWeightsInto", w, t.Out, t.In)
	// a full differential scan: both polarities of every mapped cell read
	// once, the weight view drained to the digital buffer
	cells := 2 * uint64(t.In) * uint64(t.Out)
	t.counter.Charge(readCost(cells).Plus(Cost{BufferBytes: uint64(t.In) * uint64(t.Out) * 8}))
	wd := w.Data()
	for rt := 0; rt < t.rowTiles; rt++ {
		for ct := 0; ct < t.colTiles; ct++ {
			tp := t.tiles[rt][ct]
			for i := 0; i < t.cfg.TileRows; i++ {
				gi := rt*t.cfg.TileRows + i
				if gi >= t.In {
					break
				}
				for j := 0; j < t.cfg.TileCols; j++ {
					gj := ct*t.cfg.TileCols + j
					if gj >= t.Out {
						break
					}
					diff := tp.pos.Conductance(i, j) - tp.neg.Conductance(i, j)
					wd[gj*t.In+gi] = diff * t.scale
				}
			}
		}
	}
}

// AdvanceTime ages every tile.
func (t *TiledLinear) AdvanceTime(hours float64) {
	for _, row := range t.tiles {
		for _, tp := range row {
			tp.pos.AdvanceTime(hours)
			tp.neg.AdvanceTime(hours)
		}
	}
}

// InjectStuckAt adds field stuck-at faults to every tile.
func (t *TiledLinear) InjectStuckAt(p0, p1 float64) {
	for _, row := range t.tiles {
		for _, tp := range row {
			tp.pos.InjectStuckAt(p0, p1)
			tp.neg.InjectStuckAt(p0, p1)
		}
	}
}

// InjectSoftErrors disturbs a random fraction p of healthy cells in every
// tile (an instantaneous soft-error shower; cleared by Reprogram).
func (t *TiledLinear) InjectSoftErrors(p float64) {
	for _, row := range t.tiles {
		for _, tp := range row {
			tp.pos.InjectSoftErrors(p)
			tp.neg.InjectSoftErrors(p)
		}
	}
}

// Reprogram rewrites every tile to its target conductances (repair action).
func (t *TiledLinear) Reprogram() {
	for _, row := range t.tiles {
		for _, tp := range row {
			tp.pos.Reprogram()
			tp.neg.Reprogram()
		}
	}
}

// TileCount returns the number of crossbar arrays used (both polarities).
func (t *TiledLinear) TileCount() int { return 2 * t.rowTiles * t.colTiles }

// commissionCost is the write cost of programming every cell in every array
// once — what a full in-field (re)deployment of this layer's weights costs.
func (t *TiledLinear) commissionCost() Cost {
	var cells uint64
	for _, row := range t.tiles {
		for _, tp := range row {
			cells += uint64(tp.pos.Rows)*uint64(tp.pos.Cols) + uint64(tp.neg.Rows)*uint64(tp.neg.Cols)
		}
	}
	return writeCost(cells)
}
