package reram

import (
	"math"
	"testing"

	"reramtest/internal/models"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

func TestScrubRewritesDriftedCells(t *testing.T) {
	dev := idealParams()
	x := NewCrossbar(8, 8, dev, rng.New(31))
	x.Program(tensor.Full(40e-6, 8, 8))
	if n := x.DriftedCells(0.05); n != 0 {
		t.Fatalf("fresh array reports %d drifted cells", n)
	}
	x.InjectSoftErrors(0.4)
	drifted := x.DriftedCells(0.05)
	if drifted == 0 {
		t.Fatal("soft-error shower left no drifted cells")
	}
	scanned, rewritten := x.Scrub(0.05)
	if scanned != 64 {
		t.Fatalf("scanned %d cells, want 64", scanned)
	}
	if rewritten != drifted {
		t.Fatalf("rewrote %d cells, diagnosis said %d", rewritten, drifted)
	}
	if n := x.DriftedCells(0.05); n != 0 {
		t.Fatalf("%d cells still drifted after scrub", n)
	}
	// every cell is back inside the band (in-band survivors of the shower
	// are legitimately untouched; rewritten cells read the target exactly)
	band := 0.05 * (dev.GOn - dev.GOff)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if g := x.Conductance(i, j); math.Abs(g-40e-6) > band {
				t.Fatalf("cell (%d,%d) reads %v after scrub", i, j, g)
			}
		}
	}
}

func TestScrubSkipsStuckCells(t *testing.T) {
	dev := idealParams()
	x := NewCrossbar(4, 4, dev, rng.New(32))
	x.Program(tensor.Full(40e-6, 4, 4))
	x.state[0] = CellSA1 // pin one cell far from target
	scanned, rewritten := x.Scrub(0.01)
	if scanned != 15 || rewritten != 0 {
		t.Fatalf("scrub touched stuck cell: scanned=%d rewritten=%d", scanned, rewritten)
	}
	if g := x.Conductance(0, 0); g != dev.GOn {
		t.Fatalf("stuck cell moved to %v", g)
	}
}

func TestScrubConsumesNoRNGWhenClean(t *testing.T) {
	// a clean scrub must not perturb the crossbar's RNG stream, or golden
	// drift trajectories would change whenever a scrub is scheduled
	dev := idealParams()
	dev.DriftRate, dev.DriftJitter = 0.002, 0.01
	a := NewCrossbar(6, 6, dev, rng.New(33))
	b := NewCrossbar(6, 6, dev, rng.New(33))
	g := tensor.Full(40e-6, 6, 6)
	a.Program(g)
	b.Program(g)
	if _, rewritten := a.Scrub(0.5); rewritten != 0 {
		t.Fatalf("clean array rewrote %d cells", rewritten)
	}
	a.AdvanceTime(24)
	b.AdvanceTime(24)
	for i := range a.actual {
		if a.actual[i] != b.actual[i] {
			t.Fatal("clean scrub perturbed the RNG stream")
		}
	}
}

func TestRemapRowConsumesSparesAndRestoresLine(t *testing.T) {
	dev := idealParams()
	dev.SpareRows = 2
	x := NewCrossbar(4, 4, dev, rng.New(34))
	x.Program(tensor.Full(40e-6, 4, 4))
	// pin an entire word-line
	for j := 0; j < 4; j++ {
		x.state[1*4+j] = CellSA0
	}
	if x.SpareRowsLeft() != 2 {
		t.Fatalf("spares=%d, want 2", x.SpareRowsLeft())
	}
	if !x.RemapRow(1) {
		t.Fatal("remap refused with spares available")
	}
	if x.SpareRowsLeft() != 1 {
		t.Fatalf("spares=%d after one remap, want 1", x.SpareRowsLeft())
	}
	// the remapped line reads its targets again (ideal device, no fab faults)
	for j := 0; j < 4; j++ {
		if x.State(1, j) != CellOK {
			t.Fatalf("remapped cell (1,%d) still stuck", j)
		}
		if g := x.Conductance(1, j); g != 40e-6 {
			t.Fatalf("remapped cell (1,%d) reads %v", j, g)
		}
	}
	if !x.RemapRow(0) {
		t.Fatal("second remap refused")
	}
	if x.RemapRow(2) {
		t.Fatal("remap succeeded with no spares left")
	}
	if x.SpareRowsLeft() != 0 {
		t.Fatalf("spares=%d at exhaustion, want 0", x.SpareRowsLeft())
	}
}

func TestProgramCellClampsAndTracksTarget(t *testing.T) {
	dev := idealParams()
	x := NewCrossbar(2, 2, dev, rng.New(35))
	x.ProgramCell(0, 1, 2*dev.GOn) // above window: clamp to GOn
	if x.Target(0, 1) != dev.GOn || x.Conductance(0, 1) != dev.GOn {
		t.Fatalf("ProgramCell clamp failed: target=%v actual=%v", x.Target(0, 1), x.Conductance(0, 1))
	}
	// writing a stuck cell records intent but the readout stays pinned
	x.state[0] = CellSA0
	x.ProgramCell(0, 0, 50e-6)
	if x.Target(0, 0) != 50e-6 {
		t.Fatal("stuck cell write did not record target")
	}
	if x.Conductance(0, 0) != dev.GOff {
		t.Fatal("stuck cell came unpinned")
	}
}

// stuckPin pins cell (i, j) of the given polarity in every tile pair holder
// — test-only direct state injection for deterministic placement.
func stuckPin(tl *TiledLinear, rt, ct, i, j int, pos bool, s CellState) {
	tp := &tl.tiles[rt][ct]
	if pos {
		tp.pos.state[i*tp.pos.Cols+j] = s
	} else {
		tp.neg.state[i*tp.neg.Cols+j] = s
	}
}

func TestTiledRemapCorrectsThroughPartner(t *testing.T) {
	cfg := Config{TileRows: 8, TileCols: 8, DACBits: 0, ADCBits: 0, Device: idealParams()}
	r := rng.New(36)
	w := tensor.New(8, 8)
	w.Fill(0.5)
	w.Set(1.0, 0, 0) // wmax=1 so 0.5 maps to mid-window, not full scale
	tl := MapLinear(w, cfg, r)

	// pin one G⁺ cell at GOn: the positive weight 0.5 was mapped mid-window,
	// so the pair now reads high until the partner compensates
	stuckPin(tl, 0, 0, 2, 3, true, CellSA1)
	stuck, uncomp := tl.StuckStats(0.02)
	if stuck != 1 || uncomp != 1 {
		t.Fatalf("stats before repair: stuck=%d uncomp=%d, want 1/1", stuck, uncomp)
	}
	remapped, corrected, uncorrectable := tl.RemapStuck(4, 0.02)
	if remapped != 0 {
		t.Fatalf("one stuck cell triggered a line remap (threshold 4)")
	}
	if corrected != 1 || uncorrectable != 0 {
		t.Fatalf("corrected=%d uncorrectable=%d, want 1/0", corrected, uncorrectable)
	}
	if _, uncomp := tl.StuckStats(0.02); uncomp != 0 {
		t.Fatalf("%d pairs still uncompensated after correction", uncomp)
	}
	// the effective weight is back near its target
	got := tl.EffectiveWeights().At(3, 2)
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("corrected weight reads %v, want ≈0.5", got)
	}
}

func TestTiledRemapBothStuckIsUncorrectable(t *testing.T) {
	cfg := Config{TileRows: 4, TileCols: 4, DACBits: 0, ADCBits: 0, Device: idealParams()}
	w := tensor.New(4, 4)
	w.Fill(0.5)
	w.Set(1.0, 0, 0)
	tl := MapLinear(w, cfg, rng.New(37))
	stuckPin(tl, 0, 0, 1, 1, true, CellSA1)
	stuckPin(tl, 0, 0, 1, 1, false, CellSA0)
	_, corrected, uncorrectable := tl.RemapStuck(8, 0.02)
	if corrected != 0 || uncorrectable != 1 {
		t.Fatalf("both-stuck pair: corrected=%d uncorrectable=%d, want 0/1", corrected, uncorrectable)
	}
}

func TestTiledRemapUsesSparesForClusteredFaults(t *testing.T) {
	dev := idealParams()
	dev.SpareRows = 2
	cfg := Config{TileRows: 8, TileCols: 8, DACBits: 0, ADCBits: 0, Device: dev}
	w := tensor.New(8, 8)
	w.Fill(0.5)
	w.Set(1.0, 0, 0)
	tl := MapLinear(w, cfg, rng.New(38))
	// cluster: five stuck cells on one word-line of G⁺ — past maxPerLine 2
	for j := 0; j < 5; j++ {
		stuckPin(tl, 0, 0, 3, j, true, CellSA1)
	}
	sparesBefore := tl.SpareLines()
	remapped, _, uncorrectable := tl.RemapStuck(2, 0.02)
	if remapped != 1 {
		t.Fatalf("remapped %d lines, want 1", remapped)
	}
	if uncorrectable != 0 {
		t.Fatalf("%d uncorrectable after line remap", uncorrectable)
	}
	if got := tl.SpareLines(); got != sparesBefore-1 {
		t.Fatalf("spares %d→%d, want one consumed", sparesBefore, got)
	}
	if _, uncomp := tl.StuckStats(0.02); uncomp != 0 {
		t.Fatalf("%d pairs uncompensated after remap", uncomp)
	}
}

func TestAcceleratorScrubAndRemapSurfaces(t *testing.T) {
	dev := idealParams()
	dev.SpareRows = 1
	cfg := Config{TileRows: 16, TileCols: 16, DACBits: 0, ADCBits: 0, Device: dev}
	net := models.MLP(rng.New(39), 12, []int{10}, 4)
	accel := NewAccelerator(net, cfg, 40)

	// drift population: shower then scrub clears it
	accel.InjectSoftErrors(0.2)
	if accel.DriftedCells(0.05) == 0 {
		t.Fatal("shower left no drifted cells")
	}
	if _, rewritten := accel.ScrubSoftErrors(0.05); rewritten == 0 {
		t.Fatal("scrub rewrote nothing")
	}
	if n := accel.DriftedCells(0.05); n != 0 {
		t.Fatalf("%d drifted cells after scrub", n)
	}

	// stuck population: remap/correct reduces the uncompensated census
	accel.InjectStuckAt(0.03, 0.03)
	stuck, uncompBefore := accel.StuckStats(0.05)
	if stuck == 0 {
		t.Fatal("injection produced no stuck cells")
	}
	accel.RemapStuck(3, 0.05)
	stuckAfter, uncompAfter := accel.StuckStats(0.05)
	if uncompAfter > uncompBefore {
		t.Fatalf("remap increased uncompensated pairs %d→%d", uncompBefore, uncompAfter)
	}
	_ = stuckAfter
	if accel.SpareLines() < 0 {
		t.Fatal("negative spare count")
	}
}
