// Scrub and remap: the two in-place repair mechanisms cheaper than the
// cloud-edge retraining path.
//
// Scrubbing is online soft-error correction (the error-correction tier of
// the paper's repair story): sweep every healthy cell, compare its actual
// conductance against the stored programming target, and rewrite only the
// cells that left their tolerance band — drifted cells and disturb-flipped
// cells alike. Unlike Reprogram it touches a handful of cells instead of the
// whole array, so its cost (and its write-disturb exposure) scales with the
// damage, not the array size.
//
// Remapping is the hardware-redundancy tier: arrays are fabricated with
// spare word-lines (DeviceParams.SpareRows), and a line whose stuck-cell
// count makes fault-aware compensation hopeless is switched wholesale onto a
// spare. When spares run out, isolated stuck cells are instead
// weight-corrected through their differential partner: the pair encodes
// w ∝ G⁺−G⁻, so a cell pinned at an extreme can be cancelled by moving the
// healthy partner's target, as long as the required conductance fits the
// device window.
package reram

import "fmt"

// window returns the device conductance window GOn−GOff.
func (x *Crossbar) window() float64 { return x.dev.GOn - x.dev.GOff }

// DriftedCells counts healthy cells whose actual conductance sits further
// than tol×(GOn−GOff) from the programming target — the population a Scrub
// pass would rewrite. Read-only and RNG-free: safe to call from diagnosis.
func (x *Crossbar) DriftedCells(tol float64) int {
	band := tol * x.window()
	n := 0
	for i, a := range x.actual {
		if x.state[i] != CellOK {
			continue
		}
		if d := a - x.target[i]; d > band || d < -band {
			n++
		}
	}
	return n
}

// Scrub sweeps every healthy cell and rewrites the ones whose conductance
// left the tol×(GOn−GOff) band around the target, drawing fresh programming
// variation per rewritten cell. Returns the number of cells scanned
// (healthy cells) and rewritten. Stuck cells are skipped: a scrub cannot
// repair hard faults.
func (x *Crossbar) Scrub(tol float64) (scanned, rewritten int) {
	band := tol * x.window()
	for i, a := range x.actual {
		if x.state[i] != CellOK {
			continue
		}
		scanned++
		if d := a - x.target[i]; d > band || d < -band {
			g := x.target[i]
			if x.dev.ProgramSigma > 0 {
				g = clampG(g*x.r.LogNormal(0, x.dev.ProgramSigma), x.dev)
			}
			x.actual[i] = g
			rewritten++
		}
	}
	// a scrub reads every healthy cell and pulses only the out-of-band ones —
	// the cost profile that makes it the cheapest repair rung
	x.counter.Charge(readCost(uint64(scanned)).Plus(writeCost(uint64(rewritten))))
	return scanned, rewritten
}

// SpareRowsLeft returns the number of spare word-lines still available.
func (x *Crossbar) SpareRowsLeft() int { return x.spares }

// RemapRow switches word-line i onto a spare physical row: the spare's
// cells replace the faulty line's, fabrication stuck-at faults are drawn
// fresh for the spare (a spare line is ordinary silicon, not guaranteed
// perfect), and the line's target conductances are programmed onto it.
// Returns false without touching anything when no spares remain.
func (x *Crossbar) RemapRow(i int) bool {
	if i < 0 || i >= x.Rows {
		panic(fmt.Sprintf("reram: RemapRow index %d out of range [0,%d)", i, x.Rows))
	}
	if x.spares <= 0 {
		return false
	}
	x.spares--
	base := i * x.Cols
	for j := 0; j < x.Cols; j++ {
		idx := base + j
		u := x.r.Float64()
		switch {
		case u < x.dev.SA0Rate:
			x.state[idx] = CellSA0
		case u < x.dev.SA0Rate+x.dev.SA1Rate:
			x.state[idx] = CellSA1
		default:
			x.state[idx] = CellOK
		}
		g := x.target[idx]
		if x.dev.ProgramSigma > 0 {
			g = clampG(g*x.r.LogNormal(0, x.dev.ProgramSigma), x.dev)
		}
		x.actual[idx] = g
	}
	x.counter.Charge(writeCost(uint64(x.Cols)))
	return true
}

// ProgramCell writes one cell's target conductance (clamped to the device
// window, with programming variation). A stuck cell records the new target
// but its effective conductance stays pinned — exactly like a full Program.
func (x *Crossbar) ProgramCell(i, j int, g float64) {
	idx := i*x.Cols + j
	g = clampG(g, x.dev)
	x.target[idx] = g
	a := g
	if x.dev.ProgramSigma > 0 {
		a = clampG(g*x.r.LogNormal(0, x.dev.ProgramSigma), x.dev)
	}
	x.actual[idx] = a
	x.counter.Charge(writeCost(1))
}

// State returns the fault state of cell (i, j).
func (x *Crossbar) State(i, j int) CellState { return x.state[i*x.Cols+j] }

// Target returns the stored programming target of cell (i, j).
func (x *Crossbar) Target(i, j int) float64 { return x.target[i*x.Cols+j] }

// --- TiledLinear aggregation ---

// ScrubSoftErrors scrubs every tile of both polarities; see Crossbar.Scrub.
func (t *TiledLinear) ScrubSoftErrors(tol float64) (scanned, rewritten int) {
	for _, row := range t.tiles {
		for _, tp := range row {
			s, w := tp.pos.Scrub(tol)
			scanned += s
			rewritten += w
			s, w = tp.neg.Scrub(tol)
			scanned += s
			rewritten += w
		}
	}
	return scanned, rewritten
}

// DriftedCells counts out-of-band healthy cells across every tile.
func (t *TiledLinear) DriftedCells(tol float64) int {
	n := 0
	for _, row := range t.tiles {
		for _, tp := range row {
			n += tp.pos.DriftedCells(tol) + tp.neg.DriftedCells(tol)
		}
	}
	return n
}

// SpareLines sums the spare word-lines still available across every tile.
func (t *TiledLinear) SpareLines() int {
	n := 0
	for _, row := range t.tiles {
		for _, tp := range row {
			n += tp.pos.SpareRowsLeft() + tp.neg.SpareRowsLeft()
		}
	}
	return n
}

// StuckStats counts stuck cells across every tile, and how many differential
// pair positions holding a stuck cell are still uncompensated: their
// effective differential conductance misses the target differential by more
// than tol×(GOn−GOff). A remapped line or a corrected partner drives the
// pair back into the band, so uncompensated shrinks as repairs land even
// though stuck (a physical census) can only grow.
func (t *TiledLinear) StuckStats(tol float64) (stuck, uncompensated int) {
	for _, row := range t.tiles {
		for _, tp := range row {
			band := tol * tp.pos.window()
			for i := 0; i < tp.pos.Rows; i++ {
				for j := 0; j < tp.pos.Cols; j++ {
					ps, ns := tp.pos.State(i, j), tp.neg.State(i, j)
					if ps == CellOK && ns == CellOK {
						continue
					}
					if ps != CellOK {
						stuck++
					}
					if ns != CellOK {
						stuck++
					}
					err := (tp.pos.Conductance(i, j) - tp.neg.Conductance(i, j)) -
						(tp.pos.Target(i, j) - tp.neg.Target(i, j))
					if err > band || err < -band {
						uncompensated++
					}
				}
			}
		}
	}
	return stuck, uncompensated
}

// RemapStuck is the stuck-at repair pass over every tile. Lines holding more
// than maxPerLine uncompensated stuck cells are switched onto spare
// word-lines (per polarity: only arrays that actually hold stuck cells on
// the line burn a spare). Remaining uncompensated stuck cells are
// weight-corrected through the differential partner when the required
// partner conductance fits the device window; pairs with both cells stuck,
// or needing a conductance outside the window, are reported uncorrectable.
// ADCs of touched tiles are recalibrated. tol is the residual band below
// which a pair counts as already compensated (fraction of the window).
func (t *TiledLinear) RemapStuck(maxPerLine int, tol float64) (remapped, corrected, uncorrectable int) {
	for _, trow := range t.tiles {
		for ti := range trow {
			tp := &trow[ti]
			touched := false
			band := tol * tp.pos.window()
			dev := tp.pos.dev

			outOfBand := func(i, j int) bool {
				err := (tp.pos.Conductance(i, j) - tp.neg.Conductance(i, j)) -
					(tp.pos.Target(i, j) - tp.neg.Target(i, j))
				return err > band || err < -band
			}

			// pass 1: wholesale line remap where stuck cells cluster
			for i := 0; i < tp.pos.Rows; i++ {
				posStuck, negStuck := 0, 0
				for j := 0; j < tp.pos.Cols; j++ {
					ps, ns := tp.pos.State(i, j), tp.neg.State(i, j)
					if ps == CellOK && ns == CellOK {
						continue
					}
					if !outOfBand(i, j) {
						continue
					}
					if ps != CellOK {
						posStuck++
					}
					if ns != CellOK {
						negStuck++
					}
				}
				if posStuck+negStuck <= maxPerLine {
					continue
				}
				if posStuck > 0 && tp.pos.RemapRow(i) {
					remapped++
					touched = true
				}
				if negStuck > 0 && tp.neg.RemapRow(i) {
					remapped++
					touched = true
				}
			}

			// pass 2: differential weight correction for what remains
			for i := 0; i < tp.pos.Rows; i++ {
				for j := 0; j < tp.pos.Cols; j++ {
					ps, ns := tp.pos.State(i, j), tp.neg.State(i, j)
					if ps == CellOK && ns == CellOK {
						continue
					}
					if !outOfBand(i, j) {
						continue // already compensated
					}
					if ps != CellOK && ns != CellOK {
						uncorrectable++ // both pinned: no healthy partner
						continue
					}
					// the correction re-encodes the pair around the pinned
					// value: the healthy partner's target moves so the pair
					// difference is restored, and the stuck cell's target is
					// set to its pinned conductance so the stored pair intent
					// matches what the hardware now realises (and a later
					// Reprogram or Scrub preserves the correction)
					targetDiff := tp.pos.Target(i, j) - tp.neg.Target(i, j)
					if ps != CellOK {
						pinned := tp.pos.Conductance(i, j)
						want := pinned - targetDiff
						if want < dev.GOff || want > dev.GOn {
							uncorrectable++
							continue
						}
						tp.neg.ProgramCell(i, j, want)
						tp.pos.ProgramCell(i, j, pinned)
					} else {
						pinned := tp.neg.Conductance(i, j)
						want := pinned + targetDiff
						if want < dev.GOff || want > dev.GOn {
							uncorrectable++
							continue
						}
						tp.pos.ProgramCell(i, j, want)
						tp.neg.ProgramCell(i, j, pinned)
					}
					corrected++
					touched = true
				}
			}

			if touched {
				tp.adcPos = calibrateADC(tp.pos, t.cfg.ADCBits)
				tp.adcNeg = calibrateADC(tp.neg, t.cfg.ADCBits)
			}
		}
	}
	return remapped, corrected, uncorrectable
}

// --- Accelerator aggregation ---

// ScrubSoftErrors runs the online soft-error scrub across every array: each
// healthy cell whose conductance left the tol band around its programming
// target is rewritten in place. Implements repair.Scrubber.
func (a *Accelerator) ScrubSoftErrors(tol float64) (scanned, rewritten int) {
	for _, e := range a.engines {
		s, w := e.ScrubSoftErrors(tol)
		scanned += s
		rewritten += w
	}
	return scanned, rewritten
}

// DriftedCells counts, across every array, the healthy cells a scrub at tol
// would rewrite — the diagnosis input for the scrub strategy.
func (a *Accelerator) DriftedCells(tol float64) int {
	n := 0
	for _, e := range a.engines {
		n += e.DriftedCells(tol)
	}
	return n
}

// RemapStuck runs the stuck-at remap/correction pass across every array.
// Implements repair.Remapper.
func (a *Accelerator) RemapStuck(maxPerLine int, tol float64) (remapped, corrected, uncorrectable int) {
	for _, e := range a.engines {
		r, c, u := e.RemapStuck(maxPerLine, tol)
		remapped += r
		corrected += c
		uncorrectable += u
	}
	return remapped, corrected, uncorrectable
}

// StuckStats counts stuck cells and uncompensated stuck pair positions
// across every array — the diagnosis input for the remap strategy.
func (a *Accelerator) StuckStats(tol float64) (stuck, uncompensated int) {
	for _, e := range a.engines {
		s, u := e.StuckStats(tol)
		stuck += s
		uncompensated += u
	}
	return stuck, uncompensated
}

// SpareLines sums the spare word-lines still available across every array.
func (a *Accelerator) SpareLines() int {
	n := 0
	for _, e := range a.engines {
		n += e.SpareLines()
	}
	return n
}
