package reram

import (
	"sync"
	"testing"

	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

func TestCostArithmetic(t *testing.T) {
	a := Cost{ComputeCycles: 1, DACConversions: 2, ADCConversions: 3,
		CrossbarReads: 4, CrossbarWrites: 5, EnergyFJ: 6, BufferBytes: 7}
	b := a.Plus(a)
	if b != a.Scale(2) {
		t.Fatalf("Plus/Scale disagree: %+v vs %+v", b, a.Scale(2))
	}
	if b.Minus(a) != a {
		t.Fatalf("Minus is not Plus's inverse: %+v", b.Minus(a))
	}
	if !(Cost{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero misclassifies")
	}
	var bd CostBreakdown
	bd.Add(CostBreakdown{Serving: a, Monitor: a, Repair: a})
	if bd.Total() != a.Scale(3) {
		t.Fatalf("breakdown Total = %+v, want %+v", bd.Total(), a.Scale(3))
	}
	for cl, want := range map[Class]string{ClassServing: "serving", ClassMonitor: "monitor", ClassRepair: "repair"} {
		if cl.String() != want {
			t.Fatalf("Class(%d).String() = %q, want %q", cl, cl.String(), want)
		}
		if bd.ByClass(cl) != a {
			t.Fatalf("ByClass(%v) = %+v, want %+v", cl, bd.ByClass(cl), a)
		}
	}
}

func TestCounterClassAttribution(t *testing.T) {
	c := NewCounter()
	one := Cost{EnergyFJ: 1, CrossbarReads: 1}
	c.Charge(one) // default class is Serving
	prev := c.SetClass(ClassMonitor)
	if prev != ClassServing {
		t.Fatalf("SetClass returned prev %v, want serving", prev)
	}
	c.Charge(one.Scale(2))
	c.SetClass(ClassRepair)
	c.Charge(one.Scale(3))
	c.SetClass(prev)
	c.ChargeClass(ClassMonitor, one) // explicit class ignores the current one
	snap := c.Snapshot()
	if snap.Serving != one || snap.Monitor != one.Scale(3) || snap.Repair != one.Scale(3) {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.Total() != one.Scale(7) {
		t.Fatalf("total %+v, want %+v", snap.Total(), one.Scale(7))
	}

	c.Restore(CostBreakdown{Repair: one})
	if got := c.Snapshot(); got != (CostBreakdown{Repair: one}) {
		t.Fatalf("after Restore: %+v", got)
	}
}

func TestNilCounterIsNoOp(t *testing.T) {
	var c *Counter
	c.Charge(Cost{EnergyFJ: 1})
	c.ChargeClass(ClassRepair, Cost{EnergyFJ: 1})
	c.Restore(CostBreakdown{})
	if c.SetClass(ClassMonitor) != ClassServing || c.Class() != ClassServing {
		t.Fatal("nil counter class handling")
	}
	if !c.Snapshot().Total().IsZero() {
		t.Fatal("nil counter snapshot not zero")
	}
}

// TestMeterFoldMatchesSerial is the pooled-fold determinism identity: the
// same charge stream split across meter shards by any worker assignment must
// fold to exactly the serial single-counter total. Integer addition commutes,
// so this tests the plumbing (no drops, no double counts), not arithmetic.
func TestMeterFoldMatchesSerial(t *testing.T) {
	r := rng.New(11)
	charges := make([]Cost, 500)
	for i := range charges {
		charges[i] = Cost{
			ComputeCycles:  uint64(r.Intn(100)),
			DACConversions: uint64(r.Intn(100)),
			ADCConversions: uint64(r.Intn(100)),
			CrossbarReads:  uint64(r.Intn(1000)),
			CrossbarWrites: uint64(r.Intn(10)),
			EnergyFJ:       uint64(r.Intn(5000)),
			BufferBytes:    uint64(r.Intn(4096)),
		}
	}
	classes := []Class{ClassServing, ClassMonitor, ClassRepair}

	serial := NewCounter()
	for i, c := range charges {
		serial.ChargeClass(classes[i%3], c)
	}

	for _, workers := range []int{1, 3, 8} {
		m := NewMeter(workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(charges); i += workers {
					m.Shard(w).ChargeClass(classes[i%3], charges[i])
				}
			}(w)
		}
		wg.Wait()
		if got, want := m.Fold(), serial.Snapshot(); got != want {
			t.Fatalf("%d-shard fold %+v != serial %+v", workers, got, want)
		}
	}
}

// TestCounterRaceSurface exercises every concurrent access the contract
// allows under -race: one goroutine driving a metered device (MatVec +
// RefreshReadout, the single-goroutine hot path), several goroutines
// charging the same counter directly, one snapshotting continuously and one
// merging snapshots into a running breakdown.
func TestCounterRaceSurface(t *testing.T) {
	net := nn.NewNetwork("racer", 8,
		nn.NewDense("d0", rng.New(3), 8, 6),
	)
	accel := NewAccelerator(net, Config{TileRows: 8, TileCols: 8, Device: idealParams()}, 7)
	ctr := accel.Counter()
	x := tensor.RandUniform(rng.New(4), 0, 1, 4, 8)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // the device goroutine
		defer wg.Done()
		for i := 0; i < 200; i++ {
			accel.Infer(x)
			accel.RefreshReadout()
		}
	}()
	go func() { // an unrelated charger (e.g. a digital engine sharing the meter)
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			ctr.ChargeClass(ClassMonitor, Cost{EnergyFJ: 1})
		}
	}()
	go func() { // the telemetry scraper
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = ctr.Snapshot()
			}
		}
	}()
	go func() { // the fleet-level merger
		defer wg.Done()
		var agg CostBreakdown
		for {
			select {
			case <-done:
				_ = agg.Total()
				return
			default:
				agg.Add(ctr.Snapshot())
			}
		}
	}()
	// let the scraper/merger overlap the chargers, then stop them
	for i := 0; i < 100; i++ {
		_ = ctr.Snapshot()
	}
	close(done)
	wg.Wait()
}

// TestMeteringIsNumericallyInvisible: attaching a counter must not move a
// single output bit on the analog path or the readout.
func TestMeteringIsNumericallyInvisible(t *testing.T) {
	build := func() *Accelerator {
		cfg := DefaultConfig()
		cfg.TileRows, cfg.TileCols = 16, 16
		cfg.Device.ProgramSigma = 0.03
		net := nn.NewNetwork("inv", 12,
			nn.NewDense("d0", rng.New(5), 12, 10),
			nn.NewReLU("r0"),
			nn.NewDense("d1", rng.New(6), 10, 4),
		)
		return NewAccelerator(net, cfg, 99)
	}
	metered, plain := build(), build()
	plain.SetCounter(nil)

	x := tensor.RandUniform(rng.New(8), 0, 1, 5, 12)
	if !metered.Infer(x).Equal(plain.Infer(x)) {
		t.Fatal("metered analog inference diverged from unmetered")
	}
	mp, pp := metered.RefreshReadout().Params(), plain.RefreshReadout().Params()
	for i := range mp {
		if !mp[i].Value.Equal(pp[i].Value) {
			t.Fatalf("metered readout param %s diverged", mp[i].Name)
		}
	}
	if metered.Counter().Snapshot().Total().IsZero() {
		t.Fatal("metered accelerator charged nothing")
	}
}

// TestChargePointsCover asserts each charge point lands in the expected
// field, with the class the caller set.
func TestChargePointsCover(t *testing.T) {
	cfg := Config{TileRows: 8, TileCols: 8, DACBits: 8, ADCBits: 8, Device: idealParams()}
	cfg.Device.SpareRows = 2
	w := tensor.RandUniform(rng.New(2), -1, 1, 6, 8) // (Out=6, In=8): single tile
	tl := MapLinear(w, cfg, rng.New(3))
	ctr := NewCounter()
	tl.SetCounter(ctr)

	x := make([]float64, 8)
	for i := range x {
		x[i] = 0.5
	}
	out := make([]float64, 6)
	tl.MatVecInto(out, x)
	s := ctr.Snapshot().Serving
	if s.DACConversions != 8 || s.ADCConversions != 2*8 || s.ComputeCycles != 1 {
		t.Fatalf("matvec conversions: %+v", s)
	}
	if s.CrossbarReads != 2*8*8 { // all 8 word-lines driven, both polarities
		t.Fatalf("matvec reads: %+v", s)
	}
	if s.BufferBytes != (8+6)*8 || s.EnergyFJ == 0 {
		t.Fatalf("matvec buffer/energy: %+v", s)
	}

	// an all-zero input drives nothing and charges nothing
	before := ctr.Snapshot()
	tl.MatVecInto(out, make([]float64, 8))
	if ctr.Snapshot() != before {
		t.Fatal("idle pass charged")
	}

	prev := ctr.SetClass(ClassMonitor)
	buf := tensor.New(6, 8)
	tl.EffectiveWeightsInto(buf)
	m := ctr.Snapshot().Monitor
	if m.CrossbarReads != 2*8*6 || m.BufferBytes != 8*6*8 {
		t.Fatalf("readout charge: %+v", m)
	}
	ctr.SetClass(prev)

	ctr.SetClass(ClassRepair)
	tl.Reprogram()
	rep := ctr.Snapshot().Repair
	if rep.CrossbarWrites != 2*8*8 { // both full arrays rewritten
		t.Fatalf("reprogram writes: %+v", rep)
	}
	tl.InjectStuckAt(0.5, 0.3)
	pre := ctr.Snapshot().Repair
	tl.RemapStuck(1, 0.05)
	post := ctr.Snapshot().Repair
	if post.CrossbarWrites <= pre.CrossbarWrites {
		t.Fatal("remap pass charged no writes")
	}
	ctr.SetClass(ClassServing)
}

func TestChargeIsAllocationFree(t *testing.T) {
	ctr := NewCounter()
	c := Cost{ComputeCycles: 3, DACConversions: 4, ADCConversions: 5,
		CrossbarReads: 6, CrossbarWrites: 7, EnergyFJ: 8, BufferBytes: 9}
	if allocs := testing.AllocsPerRun(100, func() {
		ctr.Charge(c)
		_ = ctr.Snapshot()
	}); allocs != 0 {
		t.Fatalf("Charge+Snapshot allocates %.0f/op, want 0", allocs)
	}
}

func TestMatVecCostModel(t *testing.T) {
	cfg := Config{TileRows: 128, TileCols: 128, DACBits: 8, ADCBits: 8, Device: DefaultDeviceParams()}
	c := MatVecCost(130, 200, cfg, false) // 2 row tiles × 2 col tiles
	if c.ComputeCycles != 4 || c.DACConversions != 200 || c.ADCConversions != 2*4*128 {
		t.Fatalf("model: %+v", c)
	}
	if c.CrossbarReads != 0 {
		t.Fatal("sparse model charged reads")
	}
	d := MatVecCost(130, 200, cfg, true)
	if d.CrossbarReads != 2*130*200 {
		t.Fatalf("dense model reads: %+v", d)
	}
	if d.EnergyFJ <= c.EnergyFJ {
		t.Fatal("dense model not costlier")
	}
}
