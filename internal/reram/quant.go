package reram

import "fmt"

// Quantizer models a DAC or ADC: a uniform quantizer with 2^Bits levels over
// [Lo, Hi]. Bits ≤ 0 disables quantization (ideal converter).
type Quantizer struct {
	Bits   int
	Lo, Hi float64
}

// Quantize snaps v to the nearest representable level, saturating at the
// range bounds.
func (q Quantizer) Quantize(v float64) float64 {
	if q.Bits <= 0 {
		return v
	}
	if q.Hi <= q.Lo {
		return q.Lo
	}
	levels := float64(uint64(1)<<uint(q.Bits)) - 1
	if v <= q.Lo {
		return q.Lo
	}
	if v >= q.Hi {
		return q.Hi
	}
	step := (q.Hi - q.Lo) / levels
	n := (v - q.Lo) / step
	return q.Lo + float64(int64(n+0.5))*step
}

// QuantizeSlice quantizes every element of v in place.
func (q Quantizer) QuantizeSlice(v []float64) {
	if q.Bits <= 0 {
		return
	}
	for i := range v {
		v[i] = q.Quantize(v[i])
	}
}

// Levels returns the number of representable values.
func (q Quantizer) Levels() int {
	if q.Bits <= 0 {
		return 0
	}
	return 1 << uint(q.Bits)
}

// String describes the converter.
func (q Quantizer) String() string {
	if q.Bits <= 0 {
		return "ideal"
	}
	return fmt.Sprintf("%d-bit [%g, %g]", q.Bits, q.Lo, q.Hi)
}
