// Package reram simulates the ReRAM (memristor) crossbar accelerator the
// paper's concurrent test monitors. It models the device physics the paper's
// weight-level error abstractions come from:
//
//   - conductance-coded weights on differential cell pairs (G⁺, G⁻),
//   - lognormal programming variation at write time,
//   - stuck-at-0 (HRS) / stuck-at-1 (LRS) hard faults,
//   - resistance drift and random soft errors accumulating with time,
//   - DAC input quantization and per-bitline ADC output quantization,
//   - tile-partitioned matrix-vector execution for matrices larger than one
//     crossbar array.
//
// Two execution paths are provided. Infer runs true analog-path simulation
// (DAC → crossbar currents → ADC per tile) and is used by the runtime
// monitor demo. ReadoutNetwork exports the *effective* weights (after
// variation, faults and drift) back into an nn.Network clone, which is
// mathematically identical except for DAC/ADC quantization and is what the
// statistical sweeps use — exactly the weight-level abstraction of the
// paper's §IV error models.
package reram

import (
	"fmt"
	"math"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// CellState marks a device as healthy or stuck.
type CellState uint8

// Cell fault states.
const (
	CellOK  CellState = iota
	CellSA0           // stuck at HRS: conductance pinned to GOff
	CellSA1           // stuck at LRS: conductance pinned to GOn
)

// DeviceParams gathers the per-cell physical parameters.
type DeviceParams struct {
	// GOn is the low-resistance-state conductance in siemens.
	GOn float64
	// GOff is the high-resistance-state conductance in siemens.
	GOff float64
	// ProgramSigma is the lognormal σ of write-time conductance variation
	// (the paper's programming error source).
	ProgramSigma float64
	// SA0Rate and SA1Rate are fabrication-time stuck-at probabilities.
	SA0Rate, SA1Rate float64
	// DriftRate is the per-hour decay rate of (G−GOff) toward HRS.
	DriftRate float64
	// DriftJitter is the lognormal σ of drift accumulated per sqrt-hour.
	DriftJitter float64
	// SoftErrorRate is the per-cell per-hour probability of a disturb event
	// that reprograms the cell to a random conductance.
	SoftErrorRate float64
	// SpareRows is the number of redundant word-lines fabricated per array
	// for stuck-at remapping (the paper's hardware-redundancy repair tier).
	// Zero (the default) models an array without spares; the RemapRow repair
	// then always reports failure.
	SpareRows int
}

// DefaultDeviceParams returns TiO2-memristor-like values: 100 µS LRS, 1 µS
// HRS, and variation magnitudes in the range reported by the papers the
// target work cites.
func DefaultDeviceParams() DeviceParams {
	return DeviceParams{
		GOn: 100e-6, GOff: 1e-6,
		ProgramSigma: 0.0,
		SA0Rate:      0, SA1Rate: 0,
		DriftRate: 0.002, DriftJitter: 0.01,
		SoftErrorRate: 0,
	}
}

// Crossbar is one R×C array of ReRAM cells holding target and actual
// conductances.
type Crossbar struct {
	Rows, Cols int
	dev        DeviceParams
	target     []float64 // intended conductances
	actual     []float64 // programmed conductances incl. variation/drift
	state      []CellState
	spares     int      // spare word-lines still available for RemapRow
	counter    *Counter // nil = unmetered; see cost.go
	r          *rng.RNG
}

// SetCounter attaches a cost counter; nil detaches. Reads, writes and their
// energy charge here; conversions and cycles charge at the TiledLinear layer
// that owns the DACs/ADCs.
func (x *Crossbar) SetCounter(c *Counter) { x.counter = c }

// NewCrossbar allocates an array with every cell at HRS. Fabrication
// stuck-at faults are drawn immediately from dev's rates.
func NewCrossbar(rows, cols int, dev DeviceParams, r *rng.RNG) *Crossbar {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("reram: crossbar dims must be positive, got %dx%d", rows, cols))
	}
	if dev.GOn <= dev.GOff {
		panic(fmt.Sprintf("reram: GOn (%g) must exceed GOff (%g)", dev.GOn, dev.GOff))
	}
	x := &Crossbar{Rows: rows, Cols: cols, dev: dev,
		target: make([]float64, rows*cols),
		actual: make([]float64, rows*cols),
		state:  make([]CellState, rows*cols),
		spares: dev.SpareRows,
		r:      r,
	}
	for i := range x.target {
		x.target[i] = dev.GOff
		x.actual[i] = dev.GOff
		u := r.Float64()
		switch {
		case u < dev.SA0Rate:
			x.state[i] = CellSA0
		case u < dev.SA0Rate+dev.SA1Rate:
			x.state[i] = CellSA1
		}
	}
	return x
}

// Program writes the (Rows, Cols) target conductance matrix into the array,
// clamping to [GOff, GOn] and applying lognormal programming variation per
// cell. Stuck cells ignore the write.
func (x *Crossbar) Program(g *tensor.Tensor) {
	if g.Len() != x.Rows*x.Cols {
		panic(fmt.Sprintf("reram: Program got %v, want %dx%d", g.Shape(), x.Rows, x.Cols))
	}
	gd := g.Data()
	for i, v := range gd {
		if v < x.dev.GOff {
			v = x.dev.GOff
		} else if v > x.dev.GOn {
			v = x.dev.GOn
		}
		x.target[i] = v
		a := v
		if x.dev.ProgramSigma > 0 {
			a = clampG(v*x.r.LogNormal(0, x.dev.ProgramSigma), x.dev)
		}
		x.actual[i] = a
	}
	x.counter.Charge(writeCost(uint64(x.Rows) * uint64(x.Cols)))
}

// Conductance returns the effective conductance of cell (i, j), accounting
// for stuck-at state.
func (x *Crossbar) Conductance(i, j int) float64 {
	idx := i*x.Cols + j
	switch x.state[idx] {
	case CellSA0:
		return x.dev.GOff
	case CellSA1:
		return x.dev.GOn
	default:
		return x.actual[idx]
	}
}

// MatVec drives voltages v (length Rows, word-lines) and accumulates bitline
// currents into out (length Cols): out[j] = Σ_i v[i]·G(i,j). This is the
// analog dot-product the crossbar computes in one step.
func (x *Crossbar) MatVec(v, out []float64) {
	if len(v) != x.Rows || len(out) != x.Cols {
		panic(fmt.Sprintf("reram: MatVec dims v=%d out=%d, want %d/%d", len(v), len(out), x.Rows, x.Cols))
	}
	for j := range out {
		out[j] = 0
	}
	activeRows := 0
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		activeRows++
		row := x.actual[i*x.Cols : (i+1)*x.Cols]
		st := x.state[i*x.Cols : (i+1)*x.Cols]
		for j, g := range row {
			switch st[j] {
			case CellSA0:
				g = x.dev.GOff
			case CellSA1:
				g = x.dev.GOn
			}
			out[j] += vi * g
		}
	}
	x.counter.Charge(readCost(uint64(activeRows) * uint64(x.Cols)))
}

// AdvanceTime ages the array by hours: conductances drift toward HRS with
// stochastic jitter, and soft-error disturb events reprogram random cells.
func (x *Crossbar) AdvanceTime(hours float64) {
	if hours <= 0 {
		return
	}
	decay := math.Exp(-x.dev.DriftRate * hours)
	sigma := x.dev.DriftJitter * math.Sqrt(hours)
	pSoft := 1 - math.Exp(-x.dev.SoftErrorRate*hours)
	for i := range x.actual {
		if x.state[i] != CellOK {
			continue
		}
		if pSoft > 0 && x.r.Bernoulli(pSoft) {
			x.actual[i] = x.r.Uniform(x.dev.GOff, x.dev.GOn)
			continue
		}
		delta := x.actual[i] - x.dev.GOff
		if delta <= 0 {
			continue
		}
		f := decay
		if sigma > 0 {
			f *= x.r.LogNormal(0, sigma)
		}
		x.actual[i] = clampG(x.dev.GOff+delta*f, x.dev)
	}
}

// InjectSoftErrors disturbs a random fraction p of healthy cells to an
// arbitrary conductance — a burst ("shower") of disturb events from a
// voltage transient or particle strike. Unlike the per-hour SoftErrorRate
// accumulation in AdvanceTime, this models an instantaneous event; the
// damage persists until the array is reprogrammed.
func (x *Crossbar) InjectSoftErrors(p float64) {
	for i := range x.actual {
		if x.state[i] != CellOK {
			continue
		}
		if x.r.Bernoulli(p) {
			x.actual[i] = x.r.Uniform(x.dev.GOff, x.dev.GOn)
		}
	}
}

// InjectStuckAt marks additional random cells stuck (endurance failures
// appearing in the field).
func (x *Crossbar) InjectStuckAt(p0, p1 float64) {
	for i := range x.state {
		if x.state[i] != CellOK {
			continue
		}
		u := x.r.Float64()
		switch {
		case u < p0:
			x.state[i] = CellSA0
		case u < p0+p1:
			x.state[i] = CellSA1
		}
	}
}

// FaultCounts returns the number of healthy, SA0 and SA1 cells.
func (x *Crossbar) FaultCounts() (ok, sa0, sa1 int) {
	for _, s := range x.state {
		switch s {
		case CellSA0:
			sa0++
		case CellSA1:
			sa1++
		default:
			ok++
		}
	}
	return ok, sa0, sa1
}

// Reprogram rewrites the stored target conductances (a repair action after
// drift), drawing fresh programming variation.
func (x *Crossbar) Reprogram() {
	t := tensor.FromSlice(append([]float64(nil), x.target...), x.Rows, x.Cols)
	x.Program(t)
}

func clampG(g float64, dev DeviceParams) float64 {
	if g < dev.GOff {
		return dev.GOff
	}
	if g > dev.GOn {
		return dev.GOn
	}
	return g
}
