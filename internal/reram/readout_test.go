package reram

import (
	"testing"

	"reramtest/internal/models"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// TestMatVecIntoMatchesMatVec: the destination-passing path must be the
// bit-identical twin of the allocating one, including the vmax==0 zero fill
// when the destination holds stale values.
func TestMatVecIntoMatchesMatVec(t *testing.T) {
	r := rng.New(61)
	w := tensor.Randn(r, 0, 1, 20, 30)
	cfg := DefaultConfig()
	cfg.TileRows, cfg.TileCols = 16, 16
	tl := MapLinear(w, cfg, r.Split())
	x := make([]float64, 30)
	for i := range x {
		if i%3 != 0 {
			x[i] = float64(i) / 30
		}
	}
	want := tl.MatVec(x)
	got := make([]float64, 20)
	for i := range got {
		got[i] = -5 // stale contents must be overwritten
	}
	tl.MatVecInto(got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: MatVecInto %v, MatVec %v", i, got[i], want[i])
		}
	}
	zero := make([]float64, 30)
	tl.MatVecInto(got, zero)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("element %d not cleared for all-zero input: %v", i, v)
		}
	}
}

// TestEffectiveWeightsIntoMatches: same loop, caller-owned buffer.
func TestEffectiveWeightsIntoMatches(t *testing.T) {
	r := rng.New(62)
	w := tensor.Randn(r, 0, 1, 20, 30)
	cfg := DefaultConfig()
	cfg.TileRows, cfg.TileCols = 16, 16
	tl := MapLinear(w, cfg, r.Split())
	want := tl.EffectiveWeights()
	got := tensor.Full(-9, 20, 30)
	tl.EffectiveWeightsInto(got)
	if !got.Equal(want) {
		t.Fatal("EffectiveWeightsInto differs from EffectiveWeights")
	}
}

// TestRefreshReadoutMatchesReadoutNetwork: the cached, in-place-refreshed
// readout must carry exactly the parameters of a fresh clone, stay
// pointer-stable across refreshes, and track hardware and digital-side
// changes.
func TestRefreshReadoutMatchesReadoutNetwork(t *testing.T) {
	net := models.MLP(rng.New(63), 12, []int{10}, 4)
	cfg := DefaultConfig()
	cfg.TileRows, cfg.TileCols = 16, 16
	a := NewAccelerator(net, cfg, 64)

	sameParams := func(t *testing.T) {
		t.Helper()
		fresh := a.ReadoutNetwork()
		cached := a.RefreshReadout()
		fp, cp := fresh.Params(), cached.Params()
		if len(fp) != len(cp) {
			t.Fatalf("param count %d vs %d", len(cp), len(fp))
		}
		for i := range fp {
			if !cp[i].Value.Equal(fp[i].Value) {
				t.Fatalf("param %q differs between RefreshReadout and ReadoutNetwork", fp[i].Name)
			}
		}
	}
	sameParams(t)
	first := a.RefreshReadout()

	// hardware state changes must show up in the refreshed view
	a.AdvanceTime(500)
	a.InjectStuckAt(0.01, 0.01)
	sameParams(t)
	if a.RefreshReadout() != first {
		t.Fatal("RefreshReadout is not pointer-stable")
	}

	// digital-side redeployment (new biases) must be re-synced too
	retrained := net.Clone()
	for _, p := range retrained.Params() {
		p.Value.ScaleInPlace(0.9)
	}
	a.ProgramNetwork(retrained)
	sameParams(t)
}

// TestInferWorkspaceReuse: repeated analog inferences through the reused
// workspaces must reproduce a fresh accelerator's output bit for bit, across
// changing batch sizes.
func TestInferWorkspaceReuse(t *testing.T) {
	build := func() *Accelerator {
		return NewAccelerator(models.LeNet5(rng.New(65)), idealConfig(), 66)
	}
	warm := build()
	for _, n := range []int{2, 1, 3, 2} {
		x := tensor.RandUniform(rng.New(int64(70+n)), 0, 1, n, 784)
		// a fresh accelerator per batch has never reused a workspace
		want := build().Infer(x).Clone()
		got := warm.Infer(x)
		if !got.Equal(want) {
			t.Fatalf("n=%d: reused-workspace inference diverged", n)
		}
	}
}
