// Package dataset provides the image classification workloads the evaluation
// runs on. The paper uses MNIST (LeNet-5) and CIFAR10 (ConvNet-7); neither is
// redistributable inside this offline repository, so the package procedurally
// generates two stand-ins with the same tensor shapes and class counts:
//
//   - SynthDigits: 28×28 grayscale seven-segment-style digits with affine
//     jitter and pixel noise. LeNet-5 reaches ≈99% test accuracy on it,
//     matching the paper's MNIST operating point.
//   - SynthObjects: 32×32 RGB parametric shapes/textures with colour jitter
//     and heavy noise, tuned so ConvNet-7 lands near the paper's 81.6%.
//
// The methods under test (C-TP, O-TP, AET) depend only on the decision-
// boundary geometry of a trained classifier, not on what the images depict,
// so these substitutions preserve the behaviour the paper measures. An IDX
// reader (ReadIDXImages/ReadIDXLabels) is included so the real MNIST files
// drop in when present.
package dataset

import (
	"fmt"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// Dataset is a labelled image set stored as one (N, C*H*W) tensor.
type Dataset struct {
	Name    string
	Classes int
	C, H, W int
	X       *tensor.Tensor // (N, C*H*W), values in [0, 1]
	Y       []int          // len N, values in [0, Classes)
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.Y) }

// SampleDim returns the flattened per-sample size C*H*W.
func (d *Dataset) SampleDim() int { return d.C * d.H * d.W }

// Input returns sample i as a (1, C*H*W) tensor view (shares storage).
func (d *Dataset) Input(i int) *tensor.Tensor {
	dim := d.SampleDim()
	return tensor.FromSlice(d.X.Data()[i*dim:(i+1)*dim], 1, dim)
}

// Subset returns a new dataset containing the given sample indices (copies
// data).
func (d *Dataset) Subset(idx []int) *Dataset {
	dim := d.SampleDim()
	out := &Dataset{Name: d.Name, Classes: d.Classes, C: d.C, H: d.H, W: d.W,
		X: tensor.New(len(idx), dim), Y: make([]int, len(idx))}
	xd, od := d.X.Data(), out.X.Data()
	for j, i := range idx {
		copy(od[j*dim:(j+1)*dim], xd[i*dim:(i+1)*dim])
		out.Y[j] = d.Y[i]
	}
	return out
}

// Head returns the first n samples (or all if n >= N) as a view-free copy.
func (d *Dataset) Head(n int) *Dataset {
	if n > d.N() {
		n = d.N()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return d.Subset(idx)
}

// Batch is one mini-batch of training data.
type Batch struct {
	X *tensor.Tensor // (B, C*H*W)
	Y []int
}

// Batches splits the dataset into mini-batches. If r is non-nil the sample
// order is shuffled first. The batches copy data so callers may mutate them.
func (d *Dataset) Batches(batchSize int, r *rng.RNG) []Batch {
	if batchSize <= 0 {
		panic(fmt.Sprintf("dataset: batch size must be positive, got %d", batchSize))
	}
	order := make([]int, d.N())
	for i := range order {
		order[i] = i
	}
	if r != nil {
		r.Shuffle(order)
	}
	dim := d.SampleDim()
	xd := d.X.Data()
	var out []Batch
	for s := 0; s < len(order); s += batchSize {
		e := s + batchSize
		if e > len(order) {
			e = len(order)
		}
		b := Batch{X: tensor.New(e-s, dim), Y: make([]int, e-s)}
		bd := b.X.Data()
		for j, i := range order[s:e] {
			copy(bd[j*dim:(j+1)*dim], xd[i*dim:(i+1)*dim])
			b.Y[j] = d.Y[i]
		}
		out = append(out, b)
	}
	return out
}

// BatchIter is a reusable mini-batch iterator over a dataset. Unlike Batches
// it owns one batch-sized workspace and fills it in place every Next call, so
// an entire training run allocates a fixed amount of memory instead of
// rebuilding every batch tensor every epoch. Reset re-shuffles with exactly
// the RNG stream Batches consumes (identity order, then one Fisher–Yates
// shuffle), so a loop over the iterator visits bit-identical batches in the
// same order as the legacy slice-of-batches loop.
//
// The returned tensors and label slices are views into the iterator's
// workspace, valid until the next Next or Reset; callers may mutate the batch
// contents (they are copies of the dataset rows) but must not retain them.
type BatchIter struct {
	d         *Dataset
	batchSize int
	order     []int
	pos       int
	xBuf      []float64
	yBuf      []int
	x         *tensor.Tensor // cached (b, dim) view of xBuf
	xN        int            // batch size the cached view was built for
}

// BatchIterator builds an iterator producing batches of batchSize samples
// (the final batch of an epoch may be smaller). Call Reset before the first
// Next.
func (d *Dataset) BatchIterator(batchSize int) *BatchIter {
	if batchSize <= 0 {
		panic(fmt.Sprintf("dataset: batch size must be positive, got %d", batchSize))
	}
	if batchSize > d.N() {
		batchSize = d.N()
	}
	return &BatchIter{
		d:         d,
		batchSize: batchSize,
		order:     make([]int, d.N()),
		pos:       d.N(), // exhausted until the first Reset
		xBuf:      make([]float64, batchSize*d.SampleDim()),
		yBuf:      make([]int, batchSize),
	}
}

// Reset rewinds the iterator for a new epoch. If r is non-nil the sample
// order is rebuilt and shuffled, consuming r identically to
// Batches(batchSize, r); nil keeps dataset order.
func (it *BatchIter) Reset(r *rng.RNG) {
	for i := range it.order {
		it.order[i] = i
	}
	if r != nil {
		r.Shuffle(it.order)
	}
	it.pos = 0
}

// Next fills the workspace with the next batch and returns it as a (B, dim)
// tensor view plus the matching labels. ok is false when the epoch is
// exhausted. Full-size batches reuse a cached view and allocate nothing; the
// view header is rebuilt only when the batch size changes (at most once per
// epoch, for the tail).
func (it *BatchIter) Next() (x *tensor.Tensor, y []int, ok bool) {
	if it.pos >= len(it.order) {
		return nil, nil, false
	}
	end := it.pos + it.batchSize
	if end > len(it.order) {
		end = len(it.order)
	}
	b := end - it.pos
	dim := it.d.SampleDim()
	xd := it.d.X.Data()
	for j, i := range it.order[it.pos:end] {
		copy(it.xBuf[j*dim:(j+1)*dim], xd[i*dim:(i+1)*dim])
		it.yBuf[j] = it.d.Y[i]
	}
	it.pos = end
	if it.x == nil || it.xN != b {
		it.x = tensor.FromSlice(it.xBuf[:b*dim], b, dim)
		it.xN = b
	}
	return it.x, it.yBuf[:b], true
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Validate checks internal consistency and label ranges.
func (d *Dataset) Validate() error {
	if d.X.Len() != d.N()*d.SampleDim() {
		return fmt.Errorf("dataset %s: tensor volume %d != %d samples × %d", d.Name, d.X.Len(), d.N(), d.SampleDim())
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("dataset %s: label %d of sample %d out of range [0,%d)", d.Name, y, i, d.Classes)
		}
	}
	return nil
}
