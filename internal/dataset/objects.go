package dataset

import (
	"math"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// ObjectsConfig controls SynthObjects generation.
type ObjectsConfig struct {
	N          int     // number of images
	Noise      float64 // Gaussian pixel-noise std (0.18 default)
	ColorBleed float64 // how much fg/bg colours may overlap, 0..1 (0.45 default)
	Jitter     float64 // centre jitter in pixels (4.0 default)
	Distract   float64 // probability of a random distractor blob (0.5 default)
	MorphP     float64 // probability of an ambiguous two-class blend (0.04 default)
}

// DefaultObjectsConfig returns the generation parameters used by all
// experiments. The noise/bleed levels are tuned so ConvNet-7 test accuracy
// lands near the paper's CIFAR10 figure (≈81%) rather than saturating.
// MorphP blends two class shapes at near-equal opacity with a coin-flip
// label, seeding the dataset with genuine decision-boundary "corner data"
// for the C-TP selector to mine.
func DefaultObjectsConfig(n int) ObjectsConfig {
	return ObjectsConfig{N: n, Noise: 0.19, ColorBleed: 0.50, Jitter: 4.0, Distract: 0.6, MorphP: 0.03}
}

// SynthObjects renders a deterministic 10-class dataset of 32×32 RGB
// parametric shapes and textures: the repository's CIFAR10 stand-in.
//
// Classes: 0 disc, 1 square, 2 triangle, 3 horizontal stripes, 4 vertical
// stripes, 5 diagonal stripes, 6 checkerboard, 7 radial gradient, 8 ring,
// 9 cross.
func SynthObjects(seed int64, cfg ObjectsConfig) *Dataset {
	const H, W = 32, 32
	r := rng.New(seed)
	d := &Dataset{Name: "synth-objects", Classes: 10, C: 3, H: H, W: W,
		X: tensor.New(cfg.N, 3*H*W), Y: make([]int, cfg.N)}
	xd := d.X.Data()
	for i := 0; i < cfg.N; i++ {
		img := xd[i*3*H*W : (i+1)*3*H*W]
		if r.Bernoulli(cfg.MorphP) {
			a := r.Intn(10)
			b := (a + 1 + r.Intn(9)) % 10
			d.Y[i] = renderMorphObject(img, H, W, a, b, r, cfg)
			continue
		}
		class := i % 10
		d.Y[i] = class
		renderObject(img, H, W, class, r, cfg)
	}
	return d
}

// color is an RGB triple in [0,1].
type color [3]float64

func randColor(r *rng.RNG) color {
	return color{r.Float64(), r.Float64(), r.Float64()}
}

// contrastColor draws a colour at least (1-bleed) away from base in L1 mean.
func contrastColor(r *rng.RNG, base color, bleed float64) color {
	for tries := 0; tries < 32; tries++ {
		c := randColor(r)
		d := (math.Abs(c[0]-base[0]) + math.Abs(c[1]-base[1]) + math.Abs(c[2]-base[2])) / 3
		if d >= 0.35*(1-bleed) {
			return c
		}
	}
	return color{1 - base[0], 1 - base[1], 1 - base[2]}
}

func renderObject(img []float64, h, w, class int, r *rng.RNG, cfg ObjectsConfig) {
	cx := float64(w)/2 + r.Uniform(-cfg.Jitter, cfg.Jitter)
	cy := float64(h)/2 + r.Uniform(-cfg.Jitter, cfg.Jitter)
	size := r.Uniform(7, 12)
	phase := r.Uniform(0, 6)
	period := r.Uniform(4, 7)
	paintObject(img, h, w, objectMask(class, cx, cy, size, phase, period), r, cfg)
}

// renderMorphObject blends the masks of two classes at near-equal opacity —
// a genuinely ambiguous image — and returns its coin-flip label.
func renderMorphObject(img []float64, h, w, a, b int, r *rng.RNG, cfg ObjectsConfig) int {
	cx := float64(w)/2 + r.Uniform(-cfg.Jitter, cfg.Jitter)
	cy := float64(h)/2 + r.Uniform(-cfg.Jitter, cfg.Jitter)
	size := r.Uniform(7, 12)
	phase := r.Uniform(0, 6)
	period := r.Uniform(4, 7)
	ma := objectMask(a, cx, cy, size, phase, period)
	mb := objectMask(b, cx, cy, size, phase, period)
	wa := r.Uniform(0.4, 0.6)
	blend := func(x, y float64) float64 {
		return wa*ma(x, y) + (1-wa)*mb(x, y)
	}
	paintObject(img, h, w, blend, r, cfg)
	if r.Bernoulli(0.5) {
		return a
	}
	return b
}

// objectMask returns the foreground-fraction function of one shape class.
func objectMask(class int, cx, cy, size, phase, period float64) func(x, y float64) float64 {
	switch class {
	case 0: // disc
		return func(x, y float64) float64 {
			return softIn(math.Hypot(x-cx, y-cy), size)
		}
	case 1: // square
		return func(x, y float64) float64 {
			d := math.Max(math.Abs(x-cx), math.Abs(y-cy))
			return softIn(d, size*0.9)
		}
	case 2: // triangle (upward)
		return func(x, y float64) float64 {
			// inside if below the two upper edges and above the base
			dy := y - (cy - size)
			if dy < 0 || y > cy+size*0.7 {
				return 0
			}
			halfWidth := dy * 0.7
			if math.Abs(x-cx) <= halfWidth {
				return 1
			}
			return 0
		}
	case 3: // horizontal stripes
		return func(x, y float64) float64 {
			return stripe(y+phase, period)
		}
	case 4: // vertical stripes
		return func(x, y float64) float64 {
			return stripe(x+phase, period)
		}
	case 5: // diagonal stripes
		return func(x, y float64) float64 {
			return stripe((x+y)/math.Sqrt2+phase, period)
		}
	case 6: // checkerboard
		return func(x, y float64) float64 {
			a := int(math.Floor((x+phase)/period)) + int(math.Floor((y+phase)/period))
			if a%2 == 0 {
				return 1
			}
			return 0
		}
	case 7: // radial gradient
		return func(x, y float64) float64 {
			d := math.Hypot(x-cx, y-cy) / (size * 1.6)
			if d > 1 {
				d = 1
			}
			return 1 - d
		}
	case 8: // ring
		return func(x, y float64) float64 {
			d := math.Hypot(x-cx, y-cy)
			if math.Abs(d-size) <= size*0.3 {
				return 1
			}
			return 0
		}
	case 9: // cross
		return func(x, y float64) float64 {
			arm := size * 0.35
			if math.Abs(x-cx) <= arm && math.Abs(y-cy) <= size {
				return 1
			}
			if math.Abs(y-cy) <= arm && math.Abs(x-cx) <= size {
				return 1
			}
			return 0
		}
	default:
		panic("dataset: unknown object class")
	}
}

// paintObject fills the image from a foreground-fraction mask: random
// contrasting colours, an optional distractor blob, and pixel noise.
func paintObject(img []float64, h, w int, mask func(x, y float64) float64, r *rng.RNG, cfg ObjectsConfig) {
	bg := randColor(r)
	fg := contrastColor(r, bg, cfg.ColorBleed)
	plane := h * w

	// optional distractor blob, painted with a third colour
	var dMask func(x, y float64) float64
	var dc color
	if r.Bernoulli(cfg.Distract) {
		dc = randColor(r)
		dx := r.Uniform(3, float64(w)-3)
		dy := r.Uniform(3, float64(h)-3)
		ds := r.Uniform(2, 4)
		dMask = func(x, y float64) float64 {
			return softIn(math.Hypot(x-dx, y-dy), ds)
		}
	}

	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			m := mask(float64(px), float64(py))
			var c color
			for ch := 0; ch < 3; ch++ {
				c[ch] = bg[ch]*(1-m) + fg[ch]*m
			}
			if dMask != nil {
				dm := dMask(float64(px), float64(py))
				for ch := 0; ch < 3; ch++ {
					c[ch] = c[ch]*(1-dm) + dc[ch]*dm
				}
			}
			for ch := 0; ch < 3; ch++ {
				v := c[ch] + r.Normal(0, cfg.Noise)
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				img[ch*plane+py*w+px] = v
			}
		}
	}
}

// softIn returns 1 inside radius, linear falloff over one pixel, 0 outside.
func softIn(d, radius float64) float64 {
	switch {
	case d <= radius:
		return 1
	case d <= radius+1:
		return radius + 1 - d
	default:
		return 0
	}
}

// stripe returns a square-wave stripe pattern of the given period.
func stripe(t, period float64) float64 {
	if math.Mod(math.Mod(t, 2*period)+2*period, 2*period) < period {
		return 1
	}
	return 0
}
