package dataset

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

func TestSynthDigitsDeterminism(t *testing.T) {
	a := SynthDigits(42, DefaultDigitsConfig(50))
	b := SynthDigits(42, DefaultDigitsConfig(50))
	if !a.X.Equal(b.X) {
		t.Fatal("same seed produced different images")
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	c := SynthDigits(43, DefaultDigitsConfig(50))
	if a.X.Equal(c.X) {
		t.Fatal("different seeds produced identical images")
	}
}

func TestSynthDigitsShapeAndRange(t *testing.T) {
	d := SynthDigits(1, DefaultDigitsConfig(30))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.C != 1 || d.H != 28 || d.W != 28 || d.Classes != 10 {
		t.Fatalf("unexpected dataset geometry %+v", d)
	}
	if d.X.Min() < 0 || d.X.Max() > 1 {
		t.Fatalf("pixel range [%v, %v] outside [0,1]", d.X.Min(), d.X.Max())
	}
}

func TestSynthDigitsClassCoverage(t *testing.T) {
	d := SynthDigits(2, DefaultDigitsConfig(500))
	counts := d.ClassCounts()
	for c, n := range counts {
		if n < 20 {
			t.Fatalf("class %d has only %d samples in 500", c, n)
		}
	}
}

func TestSynthDigitsSignalPresent(t *testing.T) {
	// each image must contain bright stroke pixels and dark background
	cfg := DefaultDigitsConfig(20)
	cfg.Noise = 0
	d := SynthDigits(3, cfg)
	dim := d.SampleDim()
	for i := 0; i < d.N(); i++ {
		img := tensor.FromSlice(d.X.Data()[i*dim:(i+1)*dim], dim)
		if img.Max() < 0.5 {
			t.Fatalf("sample %d has no stroke (max %v)", i, img.Max())
		}
		if img.Min() > 0.2 {
			t.Fatalf("sample %d has no background (min %v)", i, img.Min())
		}
	}
}

func TestSynthDigitsMorphLabels(t *testing.T) {
	cfg := DefaultDigitsConfig(3000)
	cfg.MorphP = 1 // everything is a morph
	d := SynthDigits(4, cfg)
	valid := map[int]bool{}
	for _, p := range morphPairs {
		valid[p.withSeg] = true
		valid[p.without] = true
	}
	for i, y := range d.Y {
		if !valid[y] {
			t.Fatalf("morph sample %d has label %d outside any morph pair", i, y)
		}
	}
	// coin-flip labels: both sides of some pair must appear
	counts := d.ClassCounts()
	if counts[8] == 0 || counts[0] == 0 {
		t.Fatal("morph labelling never chose one side of the 8/0 pair")
	}
}

func TestSynthObjectsDeterminism(t *testing.T) {
	a := SynthObjects(7, DefaultObjectsConfig(30))
	b := SynthObjects(7, DefaultObjectsConfig(30))
	if !a.X.Equal(b.X) {
		t.Fatal("same seed produced different images")
	}
}

func TestSynthObjectsShapeAndRange(t *testing.T) {
	d := SynthObjects(8, DefaultObjectsConfig(30))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.C != 3 || d.H != 32 || d.W != 32 || d.Classes != 10 {
		t.Fatalf("unexpected dataset geometry %+v", d)
	}
	if d.X.Min() < 0 || d.X.Max() > 1 {
		t.Fatalf("pixel range [%v, %v] outside [0,1]", d.X.Min(), d.X.Max())
	}
}

func TestSubsetCopies(t *testing.T) {
	d := SynthDigits(9, DefaultDigitsConfig(20))
	s := d.Subset([]int{3, 7})
	if s.N() != 2 || s.Y[0] != d.Y[3] || s.Y[1] != d.Y[7] {
		t.Fatal("Subset selected wrong samples")
	}
	s.X.Fill(0)
	if d.X.Sum() == 0 {
		t.Fatal("Subset shares storage with parent")
	}
}

func TestHead(t *testing.T) {
	d := SynthDigits(10, DefaultDigitsConfig(20))
	h := d.Head(5)
	if h.N() != 5 {
		t.Fatalf("Head(5) has %d samples", h.N())
	}
	if h2 := d.Head(100); h2.N() != 20 {
		t.Fatalf("Head(100) of 20 has %d samples", h2.N())
	}
}

func TestBatchesCoverAllSamples(t *testing.T) {
	d := SynthDigits(11, DefaultDigitsConfig(25))
	batches := d.Batches(8, nil)
	if len(batches) != 4 {
		t.Fatalf("25 samples in batches of 8: got %d batches", len(batches))
	}
	total := 0
	for _, b := range batches {
		if b.X.Dim(0) != len(b.Y) {
			t.Fatal("batch X/Y length mismatch")
		}
		total += len(b.Y)
	}
	if total != 25 {
		t.Fatalf("batches cover %d of 25 samples", total)
	}
	// unshuffled batches preserve order
	if batches[0].Y[0] != d.Y[0] {
		t.Fatal("unshuffled batch reordered samples")
	}
}

func TestBatchesShuffleKeepsMultiset(t *testing.T) {
	d := SynthDigits(12, DefaultDigitsConfig(40))
	batches := d.Batches(7, rng.New(1))
	counts := make([]int, 10)
	for _, b := range batches {
		for _, y := range b.Y {
			counts[y]++
		}
	}
	want := d.ClassCounts()
	for c := range counts {
		if counts[c] != want[c] {
			t.Fatalf("shuffled batches changed class histogram: %v vs %v", counts, want)
		}
	}
}

func TestIDXRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := SynthDigits(13, DefaultDigitsConfig(10))
	path := filepath.Join(dir, "imgs.idx3")
	if err := WriteIDXImages(path, d.X, d.H, d.W); err != nil {
		t.Fatal(err)
	}
	x, h, w, err := ReadIDXImages(path)
	if err != nil {
		t.Fatal(err)
	}
	if h != 28 || w != 28 || x.Dim(0) != 10 {
		t.Fatalf("round trip geometry %dx%d n=%d", h, w, x.Dim(0))
	}
	// 8-bit quantization bound
	if !x.AllClose(d.X, 1.0/255+1e-9) {
		t.Fatal("round trip exceeded 8-bit quantization error")
	}
}

func TestReadIDXRejectsWrongMagic(t *testing.T) {
	dir := t.TempDir()
	d := SynthDigits(14, DefaultDigitsConfig(4))
	path := filepath.Join(dir, "imgs.idx3")
	if err := WriteIDXImages(path, d.X, d.H, d.W); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIDXLabels(path); err == nil {
		t.Fatal("label reader accepted an image file")
	}
}

func TestLoadMNISTMissing(t *testing.T) {
	if _, err := LoadMNIST(t.TempDir(), "train"); err == nil {
		t.Fatal("LoadMNIST of empty dir did not error")
	}
}

func TestValidateCatchesBadLabels(t *testing.T) {
	d := SynthDigits(15, DefaultDigitsConfig(5))
	d.Y[2] = 10
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range label")
	}
}

// Property: generation is size-prefix-stable per seed — the first k images of
// an n-image dataset equal the k-image dataset... not guaranteed by the
// implementation (one RNG stream), so instead check a weaker invariant: all
// images differ from each other (the renderer never degenerates).
func TestDigitsImagesDistinct(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		d := SynthDigits(seed, DefaultDigitsConfig(10))
		dim := d.SampleDim()
		for i := 0; i < d.N(); i++ {
			for j := i + 1; j < d.N(); j++ {
				a := tensor.FromSlice(d.X.Data()[i*dim:(i+1)*dim], dim)
				b := tensor.FromSlice(d.X.Data()[j*dim:(j+1)*dim], dim)
				if a.Equal(b) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 5})
	if err != nil {
		t.Error(err)
	}
}

func TestReadIDXGzip(t *testing.T) {
	dir := t.TempDir()
	d := SynthDigits(16, DefaultDigitsConfig(6))
	plain := filepath.Join(dir, "imgs.idx3")
	if err := WriteIDXImages(plain, d.X, d.H, d.W); err != nil {
		t.Fatal(err)
	}
	// gzip the file and read through the .gz path
	raw, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(dir, "imgs.idx3.gz")
	f, err := os.Create(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	x, h, w, err := ReadIDXImages(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	if h != 28 || w != 28 || x.Dim(0) != 6 {
		t.Fatalf("gzip round trip geometry %dx%d n=%d", h, w, x.Dim(0))
	}
	if !x.AllClose(d.X, 1.0/255+1e-9) {
		t.Fatal("gzip round trip exceeded quantization error")
	}
}
