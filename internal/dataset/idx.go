package dataset

import (
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"reramtest/internal/tensor"
)

// IDX magic numbers (LeCun's MNIST distribution format).
const (
	idxMagicImages = 0x00000803 // unsigned byte, 3 dimensions
	idxMagicLabels = 0x00000801 // unsigned byte, 1 dimension
)

// ReadIDXImages parses an IDX3 image file (optionally gzip-compressed by
// filename) into an (N, H*W) tensor scaled to [0, 1].
func ReadIDXImages(path string) (*tensor.Tensor, int, int, error) {
	rd, closeFn, err := openMaybeGzip(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer closeFn()

	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(rd, binary.BigEndian, &hdr[i]); err != nil {
			return nil, 0, 0, fmt.Errorf("dataset: reading IDX header of %s: %w", path, err)
		}
	}
	if hdr[0] != idxMagicImages {
		return nil, 0, 0, fmt.Errorf("dataset: %s has magic 0x%08x, want image magic 0x%08x", path, hdr[0], idxMagicImages)
	}
	n, h, w := int(hdr[1]), int(hdr[2]), int(hdr[3])
	buf := make([]byte, n*h*w)
	if _, err := io.ReadFull(rd, buf); err != nil {
		return nil, 0, 0, fmt.Errorf("dataset: reading %d IDX images from %s: %w", n, path, err)
	}
	t := tensor.New(n, h*w)
	td := t.Data()
	for i, b := range buf {
		td[i] = float64(b) / 255
	}
	return t, h, w, nil
}

// ReadIDXLabels parses an IDX1 label file (optionally gzip-compressed by
// filename) into an int slice.
func ReadIDXLabels(path string) ([]int, error) {
	rd, closeFn, err := openMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer closeFn()

	var magic, n uint32
	if err := binary.Read(rd, binary.BigEndian, &magic); err != nil {
		return nil, fmt.Errorf("dataset: reading IDX header of %s: %w", path, err)
	}
	if magic != idxMagicLabels {
		return nil, fmt.Errorf("dataset: %s has magic 0x%08x, want label magic 0x%08x", path, magic, idxMagicLabels)
	}
	if err := binary.Read(rd, binary.BigEndian, &n); err != nil {
		return nil, fmt.Errorf("dataset: reading IDX count of %s: %w", path, err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(rd, buf); err != nil {
		return nil, fmt.Errorf("dataset: reading %d IDX labels from %s: %w", n, path, err)
	}
	out := make([]int, n)
	for i, b := range buf {
		out[i] = int(b)
	}
	return out, nil
}

// WriteIDXImages writes an (N, H*W) tensor of [0,1] values as an IDX3 file.
func WriteIDXImages(path string, t *tensor.Tensor, h, w int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: creating %s: %w", path, err)
	}
	defer f.Close()
	n := t.Dim(0)
	hdr := []uint32{idxMagicImages, uint32(n), uint32(h), uint32(w)}
	for _, v := range hdr {
		if err := binary.Write(f, binary.BigEndian, v); err != nil {
			return fmt.Errorf("dataset: writing IDX header to %s: %w", path, err)
		}
	}
	buf := make([]byte, t.Len())
	for i, v := range t.Data() {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		buf[i] = byte(v*255 + 0.5)
	}
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("dataset: writing IDX data to %s: %w", path, err)
	}
	return nil
}

// LoadMNIST loads real MNIST IDX files from dir (train-images-idx3-ubyte,
// train-labels-idx1-ubyte, optionally .gz) if present. It exists so the
// synthetic stand-in can be swapped for the real dataset without touching
// callers.
func LoadMNIST(dir, split string) (*Dataset, error) {
	prefix := "train"
	if split == "test" {
		prefix = "t10k"
	}
	imgPath, err := findIDX(dir, prefix+"-images-idx3-ubyte")
	if err != nil {
		return nil, err
	}
	lblPath, err := findIDX(dir, prefix+"-labels-idx1-ubyte")
	if err != nil {
		return nil, err
	}
	x, h, w, err := ReadIDXImages(imgPath)
	if err != nil {
		return nil, err
	}
	y, err := ReadIDXLabels(lblPath)
	if err != nil {
		return nil, err
	}
	if x.Dim(0) != len(y) {
		return nil, fmt.Errorf("dataset: MNIST %s has %d images but %d labels", split, x.Dim(0), len(y))
	}
	d := &Dataset{Name: "mnist-" + split, Classes: 10, C: 1, H: h, W: w, X: x, Y: y}
	return d, d.Validate()
}

func findIDX(dir, base string) (string, error) {
	for _, cand := range []string{base, base + ".gz"} {
		p := filepath.Join(dir, cand)
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
	}
	return "", fmt.Errorf("dataset: %s(.gz) not found in %s", base, dir)
}

func openMaybeGzip(path string) (io.Reader, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: opening %s: %w", path, err)
	}
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("dataset: opening gzip %s: %w", path, err)
		}
		return gz, func() error {
			gz.Close()
			return f.Close()
		}, nil
	}
	return f, f.Close, nil
}
