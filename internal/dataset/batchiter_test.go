package dataset

import (
	"testing"

	"reramtest/internal/rng"
)

// TestBatchIteratorMatchesBatches: over several epochs, the reusable iterator
// must visit exactly the batches the legacy slice-of-batches API builds —
// same shuffle stream, same sample order, same data bits, same tail batch.
func TestBatchIteratorMatchesBatches(t *testing.T) {
	d := SynthDigits(7, DefaultDigitsConfig(50)) // 50 % 16 != 0 exercises the tail
	r1, r2 := rng.New(9), rng.New(9)
	it := d.BatchIterator(16)
	for epoch := 0; epoch < 3; epoch++ {
		want := d.Batches(16, r1)
		it.Reset(r2)
		for i, wb := range want {
			x, y, ok := it.Next()
			if !ok {
				t.Fatalf("epoch %d: iterator exhausted at batch %d, want %d batches", epoch, i, len(want))
			}
			if !x.Equal(wb.X) {
				t.Fatalf("epoch %d batch %d: iterator data diverges from Batches", epoch, i)
			}
			if len(y) != len(wb.Y) {
				t.Fatalf("epoch %d batch %d: %d labels, want %d", epoch, i, len(y), len(wb.Y))
			}
			for j := range y {
				if y[j] != wb.Y[j] {
					t.Fatalf("epoch %d batch %d: label[%d] = %d, want %d", epoch, i, j, y[j], wb.Y[j])
				}
			}
		}
		if _, _, ok := it.Next(); ok {
			t.Fatalf("epoch %d: iterator produced more batches than Batches", epoch)
		}
	}
}

// TestBatchIteratorNilRNGKeepsOrder: Reset(nil) must visit dataset order, like
// Batches(batchSize, nil).
func TestBatchIteratorNilRNGKeepsOrder(t *testing.T) {
	d := SynthDigits(8, DefaultDigitsConfig(20))
	want := d.Batches(8, nil)
	it := d.BatchIterator(8)
	it.Reset(nil)
	for i, wb := range want {
		x, _, ok := it.Next()
		if !ok || !x.Equal(wb.X) {
			t.Fatalf("batch %d diverges from unshuffled Batches", i)
		}
	}
}

// TestBatchIteratorAllocFree: after construction, an entire epoch — reshuffle
// included — performs zero heap allocations. This is the churn fix: the
// legacy API allocated every batch tensor every epoch.
func TestBatchIteratorAllocFree(t *testing.T) {
	d := SynthDigits(9, DefaultDigitsConfig(64))
	it := d.BatchIterator(16)
	r := rng.New(3)
	epoch := func() {
		it.Reset(r)
		for {
			if _, _, ok := it.Next(); !ok {
				return
			}
		}
	}
	epoch() // warm the cached tail view
	if a := testing.AllocsPerRun(5, epoch); a != 0 {
		t.Errorf("BatchIter epoch allocates %.1f objects, want 0", a)
	}
}
