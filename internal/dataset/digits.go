package dataset

import (
	"math"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// DigitsConfig controls SynthDigits generation.
type DigitsConfig struct {
	N          int     // number of images
	Noise      float64 // Gaussian pixel-noise std (0.10 default)
	Jitter     float64 // translation jitter in pixels (2.0 default)
	RotJitter  float64 // rotation jitter in radians (0.12 default)
	ScaleLo    float64 // min scale factor (0.85 default)
	ScaleHi    float64 // max scale factor (1.10 default)
	Thickness  float64 // nominal stroke half-width in pixels (1.1 default)
	ThickRange float64 // uniform thickness jitter (0.4 default)
	SegFade    float64 // probability a segment renders faintly (0.10 default)
	MorphP     float64 // probability of an ambiguous two-digit morph (0.04 default)
}

// DefaultDigitsConfig returns the generation parameters used by all
// experiments. Two mechanisms introduce the genuinely ambiguous images that
// real MNIST contains and the C-TP "corner data" selector depends on:
// SegFade randomly weakens one stroke, and MorphP renders true between-class
// morphs — a digit pair differing by exactly one segment, drawn with that
// segment at half intensity and labelled by coin flip, so the Bayes-optimal
// classifier sits on the decision boundary for them. Together they hold the
// trained model just below perfect accuracy, matching the paper's MNIST
// operating point.
func DefaultDigitsConfig(n int) DigitsConfig {
	return DigitsConfig{
		N: n, Noise: 0.10, Jitter: 2.0, RotJitter: 0.12,
		ScaleLo: 0.85, ScaleHi: 1.10, Thickness: 1.1, ThickRange: 0.4,
		SegFade: 0.02, MorphP: 0.03,
	}
}

// segment endpoints in a normalised digit box: x ∈ [0,1] (width), y ∈ [0,1]
// (height, 0 = top). Classic seven-segment layout.
type segment struct{ x0, y0, x1, y1 float64 }

var segGeom = map[byte]segment{
	'A': {0.05, 0.00, 0.95, 0.00}, // top
	'B': {1.00, 0.05, 1.00, 0.45}, // top-right
	'C': {1.00, 0.55, 1.00, 0.95}, // bottom-right
	'D': {0.05, 1.00, 0.95, 1.00}, // bottom
	'E': {0.00, 0.55, 0.00, 0.95}, // bottom-left
	'F': {0.00, 0.05, 0.00, 0.45}, // top-left
	'G': {0.05, 0.50, 0.95, 0.50}, // middle
}

var digitSegments = [10]string{
	"ABCDEF",  // 0
	"BC",      // 1
	"ABGED",   // 2
	"ABGCD",   // 3
	"FGBC",    // 4
	"AFGCD",   // 5
	"AFGEDC",  // 6
	"ABC",     // 7
	"ABCDEFG", // 8
	"ABCDFG",  // 9
}

// morphPairs lists digit pairs whose seven-segment encodings differ by
// exactly one segment: rendering that segment at half intensity produces an
// image genuinely between the two classes. withSeg is the digit whose
// encoding contains seg.
var morphPairs = []struct {
	withSeg, without int
	seg              byte
}{
	{8, 0, 'G'},
	{8, 9, 'E'},
	{8, 6, 'B'},
	{9, 3, 'F'},
	{6, 5, 'E'},
	{9, 5, 'B'},
	{7, 1, 'A'},
}

// SynthDigits renders a deterministic 10-class dataset of seven-segment
// digits with affine jitter and pixel noise: the repository's MNIST
// stand-in (28×28 grayscale).
func SynthDigits(seed int64, cfg DigitsConfig) *Dataset {
	const H, W = 28, 28
	r := rng.New(seed)
	d := &Dataset{Name: "synth-digits", Classes: 10, C: 1, H: H, W: W,
		X: tensor.New(cfg.N, H*W), Y: make([]int, cfg.N)}
	xd := d.X.Data()
	for i := 0; i < cfg.N; i++ {
		img := xd[i*H*W : (i+1)*H*W]
		if r.Bernoulli(cfg.MorphP) {
			pair := morphPairs[r.Intn(len(morphPairs))]
			renderSegments(img, H, W, digitSegments[pair.withSeg], pair.seg, r.Uniform(0.35, 0.65), r, cfg)
			if r.Bernoulli(0.5) {
				d.Y[i] = pair.withSeg
			} else {
				d.Y[i] = pair.without
			}
			continue
		}
		digit := i % 10 // balanced classes
		d.Y[i] = digit
		renderDigit(img, H, W, digit, r, cfg)
	}
	return d
}

// renderDigit draws one jittered digit into a zeroed H×W buffer.
func renderDigit(img []float64, h, w, digit int, r *rng.RNG, cfg DigitsConfig) {
	renderSegments(img, h, w, digitSegments[digit], 0, 1, r, cfg)
}

// renderSegments draws the given segment set with affine jitter and noise.
// If morphSeg is non-zero, that segment is drawn at morphGain instead of
// full intensity (the between-class morph).
func renderSegments(img []float64, h, w int, segs string, morphSeg byte, morphGain float64, r *rng.RNG, cfg DigitsConfig) {
	// digit box nominally spans rows 5..23, cols 9..19
	cx := float64(w)/2 + r.Uniform(-cfg.Jitter, cfg.Jitter)
	cy := float64(h)/2 + r.Uniform(-cfg.Jitter, cfg.Jitter)
	scale := r.Uniform(cfg.ScaleLo, cfg.ScaleHi)
	boxW := 10.0 * scale
	boxH := 18.0 * scale
	rot := r.Uniform(-cfg.RotJitter, cfg.RotJitter)
	sin, cos := math.Sin(rot), math.Cos(rot)
	thick := cfg.Thickness + r.Uniform(0, cfg.ThickRange)
	bright := r.Uniform(0.85, 1.0)

	// transform each segment into image coordinates; occasionally fade a
	// segment to create genuinely ambiguous digits
	type line struct {
		x0, y0, x1, y1 float64
		gain           float64
	}
	lines := make([]line, 0, len(segs))
	for k := 0; k < len(segs); k++ {
		g := segGeom[segs[k]]
		// normalised box coords → centred box coords → rotated image coords
		toImg := func(x, y float64) (float64, float64) {
			bx := (x - 0.5) * boxW
			by := (y - 0.5) * boxH
			return cx + bx*cos - by*sin, cy + bx*sin + by*cos
		}
		x0, y0 := toImg(g.x0, g.y0)
		x1, y1 := toImg(g.x1, g.y1)
		gain := 1.0
		switch {
		case segs[k] == morphSeg:
			gain = morphGain
		case r.Bernoulli(cfg.SegFade):
			gain = r.Uniform(0.15, 0.55)
		}
		lines = append(lines, line{x0, y0, x1, y1, gain})
	}

	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			fx, fy := float64(px), float64(py)
			var v float64
			for _, l := range lines {
				d := pointSegDist(fx, fy, l.x0, l.y0, l.x1, l.y1)
				var s float64
				switch {
				case d <= thick:
					s = bright * l.gain
				case d <= thick+1:
					s = bright * l.gain * (thick + 1 - d)
				}
				if s > v {
					v = s
				}
			}
			idx := py*w + px
			v += r.Normal(0, cfg.Noise)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			img[idx] = v
		}
	}
}

// pointSegDist returns the Euclidean distance from point (px,py) to the
// segment (x0,y0)-(x1,y1).
func pointSegDist(px, py, x0, y0, x1, y1 float64) float64 {
	dx, dy := x1-x0, y1-y0
	l2 := dx*dx + dy*dy
	t := 0.0
	if l2 > 0 {
		t = ((px-x0)*dx + (py-y0)*dy) / l2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	qx, qy := x0+t*dx, y0+t*dy
	return math.Hypot(px-qx, py-qy)
}
