package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	as, bs := a.Split(), b.Split()
	for i := 0; i < 50; i++ {
		if as.Float64() != bs.Float64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	children := r.SplitN(3)
	if len(children) != 3 {
		t.Fatalf("SplitN(3) returned %d children", len(children))
	}
	// children should produce different streams from each other
	a, b := children[0].Float64(), children[1].Float64()
	if a == b {
		t.Fatal("sibling split streams start identically")
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) returned %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) returned %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Normal(3,2) sample mean %v, want ≈3", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Errorf("Normal(3,2) sample std %v, want ≈2", std)
	}
}

func TestLogNormalMean(t *testing.T) {
	// E[e^N(0,σ²)] = e^(σ²/2)
	r := New(13)
	const n, sigma = 200000, 0.3
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.LogNormal(0, sigma)
	}
	want := math.Exp(sigma * sigma / 2)
	if got := sum / n; math.Abs(got-want) > 0.01 {
		t.Errorf("LogNormal(0,%v) sample mean %v, want ≈%v", sigma, got, want)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(19)
	const n, p = 100000, 0.137
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.005 {
		t.Errorf("Bernoulli(%v) hit rate %v", p, rate)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(29)
	s := []int{1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(s)
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle changed element multiset, sum=%d", sum)
	}
}

func TestFillNormalLength(t *testing.T) {
	r := New(31)
	buf := make([]float64, 64)
	r.FillNormal(buf, 0, 1)
	nonzero := 0
	for _, v := range buf {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 60 {
		t.Fatalf("FillNormal left %d zeros", 64-nonzero)
	}
}

func TestFillUniformRange(t *testing.T) {
	r := New(37)
	buf := make([]float64, 256)
	r.FillUniform(buf, 2, 3)
	for _, v := range buf {
		if v < 2 || v >= 3 {
			t.Fatalf("FillUniform produced %v outside [2,3)", v)
		}
	}
}
