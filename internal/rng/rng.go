// Package rng provides deterministic random number generation for the
// reproduction harness. Every stochastic component in the repository — weight
// initialization, synthetic dataset rendering, fault injection, test-pattern
// seeding — draws from an explicitly seeded RNG so that experiments are
// bit-reproducible across runs and machines.
package rng

import (
	"math"
	"math/rand"
)

// RNG is a deterministic pseudo-random source with the distribution helpers
// the fault models need. It is NOT safe for concurrent use; derive one per
// goroutine with Split.
type RNG struct {
	src *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Split derives a new, statistically independent RNG from this one. The
// derived stream is a pure function of the parent's current state, so a fixed
// sequence of Split calls always yields the same child streams.
func (r *RNG) Split() *RNG {
	return New(r.src.Int63())
}

// SplitN derives n independent child RNGs.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.src.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma^2)). With mu=0 this is the multiplicative
// programming-error factor e^theta used by the paper's ReRAM variation model.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.src.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes the integers in s in place.
func (r *RNG) Shuffle(s []int) {
	r.src.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// FillNormal fills dst with independent Gaussian samples.
func (r *RNG) FillNormal(dst []float64, mean, std float64) {
	for i := range dst {
		dst[i] = r.Normal(mean, std)
	}
}

// FillUniform fills dst with independent uniform samples in [lo, hi).
func (r *RNG) FillUniform(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = r.Uniform(lo, hi)
	}
}
