package experiments

import (
	"strings"
	"testing"
)

func TestAsciiChartBasics(t *testing.T) {
	out := asciiChart("test chart",
		[]float64{1, 2, 3},
		[]namedSeries{
			{"up", 'U', []float64{0, 0.5, 1}},
			{"down", 'D', []float64{1, 0.5, 0}},
		}, 5)
	if !strings.Contains(out, "test chart") {
		t.Fatal("chart missing title")
	}
	if !strings.Contains(out, "U=up") || !strings.Contains(out, "D=down") {
		t.Fatalf("chart missing legend:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// title + 5 grid rows + axis + labels + legend
	if len(lines) < 9 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), out)
	}
	// the increasing series must plot its max on the top grid row and its
	// min on the bottom one
	top, bottom := lines[1], lines[5]
	if !strings.Contains(top, "U") {
		t.Fatalf("max of rising series not on top row:\n%s", out)
	}
	if !strings.Contains(bottom, "U") {
		t.Fatalf("min of rising series not on bottom row:\n%s", out)
	}
	// collision handling: D and U share the middle value; later series wins
	if !strings.Contains(out, "D") {
		t.Fatalf("second series absent:\n%s", out)
	}
}

func TestAsciiChartFlatSeries(t *testing.T) {
	out := asciiChart("flat", []float64{1, 2}, []namedSeries{
		{"const", 'K', []float64{5, 5}},
	}, 4)
	if !strings.Contains(out, "K") {
		t.Fatalf("flat series not plotted:\n%s", out)
	}
}

func TestAsciiChartBoundedClamps(t *testing.T) {
	out := asciiChartBounded("clamped", []float64{1}, []namedSeries{
		{"over", 'O', []float64{5}}, // above the window
	}, 4, 0, 1)
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "O") {
		t.Fatalf("out-of-window point not clamped to top row:\n%s", out)
	}
}

func TestMethodSymbolsDistinct(t *testing.T) {
	seen := map[byte]string{}
	for _, m := range []string{"aet", "ctp", "otp", "plain"} {
		s := methodSymbol(m)
		if prev, dup := seen[s]; dup {
			t.Fatalf("methods %s and %s share symbol %c", prev, m, s)
		}
		seen[s] = m
	}
}

func TestFigChartsRender(t *testing.T) {
	e := env(t)
	if out := e.Fig3().Chart(); !strings.Contains(out, "A=AET") {
		t.Fatal("Fig3 chart missing AET series")
	}
	if out := e.Fig5().Chart(); !strings.Contains(out, "detection rate") {
		t.Fatal("Fig5 chart missing title")
	}
	if out := e.Fig8().Chart(); !strings.Contains(out, "P=Original") {
		t.Fatal("Fig8 chart missing plain baseline")
	}
}
