package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reramtest/internal/detect"
)

// tinyScale keeps the experiment tests to seconds: the heavy lifting (model
// training) is amortised through the testdata/weights cache, which exists in
// the repository; only tiny sweeps run live.
func tinyScale() Scale {
	return Scale{
		TrainN: 4000, TestN: 300, PoolN: 1500,
		Patterns: 10, FaultModels: 3, AccModels: 2, AccImages: 100,
		MaxPatterns: 25,
	}
}

// testEnv builds the shared environment once per test binary.
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if _, err := os.Stat(filepath.Join(RepoRoot(), "testdata", "weights", "lenet5.bin")); err != nil {
		t.Skip("trained weight cache missing; run `go run ./cmd/train` first")
	}
	if sharedEnv == nil {
		e, err := NewEnv(tinyScale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	return sharedEnv
}

func TestEnvLoadsModels(t *testing.T) {
	e := env(t)
	if acc := e.LeNet.Accuracy(e.DigitsTest.X, e.DigitsTest.Y, 64); acc < 0.9 {
		t.Fatalf("cached LeNet-5 accuracy %.2f, want >0.9", acc)
	}
	if acc := e.ConvNet.Accuracy(e.ObjectsTest.X, e.ObjectsTest.Y, 64); acc < 0.6 {
		t.Fatalf("cached ConvNet-7 accuracy %.2f, want >0.6", acc)
	}
}

func TestPatternsCachedAndSized(t *testing.T) {
	e := env(t)
	p1 := e.Patterns("lenet5", "ctp", 10)
	if p1.M() != 10 {
		t.Fatalf("ctp set has %d patterns", p1.M())
	}
	p2 := e.Patterns("lenet5", "ctp", 10)
	if p1 != p2 {
		t.Fatal("pattern cache miss on identical request")
	}
	if otp := e.PatternsDefault("lenet5", "otp"); otp.M() != 10 {
		t.Fatalf("default O-TP set has %d patterns, want classes=10", otp.M())
	}
}

func TestAccuracySweepShape(t *testing.T) {
	e := env(t)
	tab := e.Table1()
	if len(tab.Sigmas) != len(LeNetSigmas) || len(tab.MeanAcc) != len(LeNetSigmas) {
		t.Fatalf("Table1 has %d sigma rows", len(tab.MeanAcc))
	}
	if tab.CleanAcc < 0.9 {
		t.Fatalf("clean accuracy %.2f", tab.CleanAcc)
	}
	// paper Table I shape: degradation grows with σ
	if tab.MeanAcc[len(tab.MeanAcc)-1] >= tab.CleanAcc {
		t.Fatal("σ=0.5 accuracy did not drop below clean accuracy")
	}
	if !strings.Contains(tab.Render(), "accuracy") {
		t.Fatal("Render missing accuracy row")
	}
	// cached second call
	if e.Table1() != tab {
		t.Fatal("accuracy sweep not cached")
	}
}

func TestProgrammingErrorSweepShape(t *testing.T) {
	e := env(t)
	sw := e.ProgrammingErrorSweep("lenet5")
	if len(sw.Levels) != len(LeNetSigmas) {
		t.Fatalf("sweep has %d levels", len(sw.Levels))
	}
	for _, m := range Methods {
		if len(sw.Obs[m]) != len(sw.Levels) {
			t.Fatalf("method %s has %d level entries", m, len(sw.Obs[m]))
		}
		for li := range sw.Levels {
			if len(sw.Obs[m][li]) != e.Scale.FaultModels {
				t.Fatalf("method %s level %d has %d observations", m, li, len(sw.Obs[m][li]))
			}
		}
		dist := sw.MeanAllDist(m)
		if dist[0] >= dist[len(dist)-1] {
			t.Errorf("method %s all-dist not increasing: %v", m, dist)
		}
	}
	// cache works
	if e.ProgrammingErrorSweep("lenet5") != sw {
		t.Fatal("sweep not cached")
	}
}

func TestTable3ReportsAllCells(t *testing.T) {
	e := env(t)
	tab := e.Table3()
	for _, model := range tab.Models {
		for _, m := range Methods {
			for _, c := range detect.AllCriteria {
				r := tab.Rates[model][m][c]
				if r < 0 || r > 1 {
					t.Fatalf("rate %v out of range for %s/%s/%s", r, model, m, c)
				}
			}
		}
	}
	out := tab.Render()
	for _, want := range []string{"AET", "C-TP", "O-TP", "SDC-1", "SDC-A5%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table3 render missing %q", want)
		}
	}
}

func TestTable4CVRange(t *testing.T) {
	e := env(t)
	tab := e.Table4()
	for _, m := range Methods {
		if len(tab.CV[m]) != len(LeNetSigmas) {
			t.Fatalf("CV row for %s has %d entries", m, len(tab.CV[m]))
		}
		for _, cv := range tab.CV[m] {
			if cv < 0 {
				t.Fatalf("negative CV for %s: %v", m, cv)
			}
		}
	}
	if !strings.Contains(tab.Render(), "CV of confidence distance") {
		t.Fatal("Table4 render missing title")
	}
}

func TestFig3Shapes(t *testing.T) {
	e := env(t)
	f := e.Fig3()
	for _, model := range f.Models {
		for _, m := range Methods {
			if len(f.Top[model][m]) != len(f.Sigmas[model]) {
				t.Fatalf("fig3 %s/%s top series wrong length", model, m)
			}
		}
	}
	if !strings.Contains(f.Render(), "confidence distance") {
		t.Fatal("Fig3 render missing panel titles")
	}
}

func TestFig4And5And6Rates(t *testing.T) {
	e := env(t)
	for _, f := range []*RateFigResult{e.Fig4(), e.Fig5(), e.Fig6()} {
		for _, model := range f.Models {
			for _, m := range Methods {
				for _, c := range f.Criteria {
					series, ok := f.Rates[model][m][c]
					if !ok {
						t.Fatalf("%s missing series %s/%s/%s", f.Name, model, m, c)
					}
					for _, r := range series {
						if r < 0 || r > 1 {
							t.Fatalf("%s rate %v out of range", f.Name, r)
						}
					}
				}
			}
		}
		if f.Render() == "" {
			t.Fatalf("%s render empty", f.Name)
		}
	}
}

func TestFig7PatternSweep(t *testing.T) {
	e := env(t)
	f := e.Fig7()
	for _, model := range f.Models {
		for _, m := range Methods {
			counts := f.Counts[model][m]
			stds := f.Std[model][m]
			if len(counts) == 0 || len(counts) != len(stds) {
				t.Fatalf("fig7 %s/%s series lengths %d/%d", model, m, len(counts), len(stds))
			}
			for _, s := range stds {
				if s < 0 {
					t.Fatalf("negative std in fig7 %s/%s", model, m)
				}
			}
		}
	}
}

func TestFig8CalibrationExport(t *testing.T) {
	e := env(t)
	f := e.Fig8()
	if len(f.Accuracy) != len(f.Sigmas) {
		t.Fatalf("fig8 accuracy series length %d", len(f.Accuracy))
	}
	for _, m := range []string{"plain", "aet", "ctp", "otp"} {
		if len(f.Dist[m]) != len(f.Sigmas) {
			t.Fatalf("fig8 missing distance series for %s", m)
		}
	}
	dist, acc := f.CalibrationCurve("otp")
	if len(dist) != len(acc) || len(dist) == 0 {
		t.Fatal("calibration curve empty")
	}
	// O-TP distance must grow while accuracy falls (negative correlation) —
	// the property the accuracy estimator depends on
	if f.Slope["otp"] <= 0 {
		t.Fatalf("O-TP distance-vs-loss slope %v, want positive", f.Slope["otp"])
	}
	if !strings.Contains(f.Render(), "linearity") {
		t.Fatal("Fig8 render missing fit table")
	}
}

func TestSigmasFor(t *testing.T) {
	if len(SigmasFor("lenet5")) != 10 || len(SigmasFor("convnet7")) != 6 {
		t.Fatal("sigma grids wrong")
	}
}

func TestRepoRootFindsGoMod(t *testing.T) {
	if _, err := os.Stat(filepath.Join(RepoRoot(), "go.mod")); err != nil {
		t.Fatalf("RepoRoot()=%s has no go.mod", RepoRoot())
	}
}
