package experiments

import (
	"fmt"
	"math"
	"strings"
)

// namedSeries is one line of an ASCII chart.
type namedSeries struct {
	name   string
	symbol byte
	y      []float64
}

// asciiChart renders series over a shared x grid as a terminal line plot —
// the closest a text harness gets to the paper's figures. Points are
// plotted with per-series symbols; collisions show the later series. The
// y-axis spans the data range; asciiChartBounded pins it instead.
func asciiChart(title string, x []float64, series []namedSeries, height int) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if !(hi > lo) { // flat or empty data: open a window below
		hi, lo = lo, lo-1
	}
	return asciiChartBounded(title, x, series, height, lo, hi)
}

// asciiChartBounded renders with a fixed y-axis window.
func asciiChartBounded(title string, x []float64, series []namedSeries, height int, lo, hi float64) string {
	if height < 4 {
		height = 4
	}
	const colWidth = 7 // characters per x position
	width := colWidth * len(x)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		// top row = hi, bottom row = lo
		t := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - t)))
		if r < 0 {
			r = 0
		} else if r >= height {
			r = height - 1
		}
		return r
	}
	for _, s := range series {
		for i, v := range s.y {
			if i >= len(x) {
				break
			}
			c := i*colWidth + colWidth/2
			grid[row(v)][c] = s.symbol
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yLabel := func(r int) float64 {
		return hi - (hi-lo)*float64(r)/float64(height-1)
	}
	for r := 0; r < height; r++ {
		fmt.Fprintf(&b, "%8.3f |%s\n", yLabel(r), string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", width) + "\n")
	b.WriteString(strings.Repeat(" ", 10))
	for _, v := range x {
		fmt.Fprintf(&b, "%-*s", colWidth, trimFloat(v))
	}
	b.WriteByte('\n')
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", s.symbol, s.name)
	}
	fmt.Fprintf(&b, "%10s%s\n", "", strings.Join(legend, "  "))
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	if len(s) > 6 {
		s = s[:6]
	}
	return s
}

// methodSymbol assigns stable plot symbols to the evaluated methods.
func methodSymbol(m string) byte {
	switch m {
	case "aet":
		return 'A'
	case "ctp":
		return 'C'
	case "otp":
		return 'O'
	case "plain":
		return 'P'
	default:
		return '*'
	}
}

// Chart renders the Fig. 3 confidence-distance panels as ASCII plots.
func (f *Fig3Result) Chart() string {
	var b strings.Builder
	for _, model := range f.Models {
		for _, panel := range []struct {
			name string
			data map[string][]float64
		}{
			{"top-ranked confidence distance", f.Top[model]},
			{"all confidence distance", f.All[model]},
		} {
			var series []namedSeries
			for _, m := range Methods {
				series = append(series, namedSeries{methodLabel(m), methodSymbol(m), panel.data[m]})
			}
			b.WriteString(asciiChart(
				fmt.Sprintf("%s — %s vs σ", modelLabel(model), panel.name),
				f.Sigmas[model], series, 10))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Chart renders the detection-rate panels (Figs. 4-6) as ASCII plots.
func (f *RateFigResult) Chart() string {
	var b strings.Builder
	for _, model := range f.Models {
		for _, c := range f.Criteria {
			var series []namedSeries
			for _, m := range Methods {
				if m == "otp" && !otpApplies(c) {
					continue
				}
				series = append(series, namedSeries{methodLabel(m), methodSymbol(m), f.Rates[model][m][c]})
			}
			b.WriteString(asciiChartBounded(
				fmt.Sprintf("%s — detection rate (%s) vs %s", modelLabel(model), c, f.LevelName),
				f.Levels[model], series, 8, 0, 1))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Chart renders Fig. 8's distance-vs-σ series (with accuracy as its own
// line) as an ASCII plot.
func (f *Fig8Result) Chart() string {
	var series []namedSeries
	for _, m := range []string{"plain", "aet", "ctp", "otp"} {
		series = append(series, namedSeries{methodLabel(m), methodSymbol(m), f.Dist[m]})
	}
	return asciiChart("confidence distance vs σ (accuracy falls rightward; see table)",
		f.Sigmas, series, 10)
}
