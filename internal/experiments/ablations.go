package experiments

import (
	"fmt"
	"strings"

	"reramtest/internal/detect"
	"reramtest/internal/faults"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
	"reramtest/internal/stats"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's published evaluation: they quantify how sensitive each
// contribution is to its main hyper-parameter.

// AlphaAblationResult sweeps Eq. 1's α, the balance between the clean-model
// soft-label term and the fault-model hard-label term of O-TP generation.
// The paper fixes α = 0.5 ("equal importance"); this ablation shows what
// each extreme costs: small α over-weights the fault model (patterns become
// ordinary adversarial inputs for f_w'), large α over-weights flatness (the
// patterns stop encoding where errors push the outputs).
type AlphaAblationResult struct {
	Alphas []float64
	// CleanFlatness is the mean per-pattern std of clean-model confidences
	// (constraint 1: smaller = more confused clean model).
	CleanFlatness []float64
	// Dist is the mean all-class confidence distance against fault models at
	// the reference σ (sensitivity the monitor actually uses).
	Dist []float64
	// Iters is the number of optimization iterations consumed.
	Iters []int
}

// AblationOTPAlpha generates O-TP sets across α on LeNet-5 and scores each
// against a shared fault-model set at the reference σ.
func (e *Env) AblationOTPAlpha() *AlphaAblationResult {
	const model = "lenet5"
	net, _ := e.ModelFor(model)
	ref := faults.MakeFaulty(net, faults.LogNormal{Sigma: otpRefSigma(model)}, seedOTPRef)
	fms := faults.MakeFaultySet(net, faults.LogNormal{Sigma: otpRefSigma(model)}, e.Scale.FaultModels, seedFaultBase+333)

	res := &AlphaAblationResult{Alphas: []float64{0.1, 0.3, 0.5, 0.7, 0.9}}
	for _, alpha := range res.Alphas {
		fmt.Fprintf(e.Log, "ablation alpha=%.1f\n", alpha)
		cfg := testgen.DefaultOTPConfig()
		cfg.Alpha = alpha
		cfg.MaxIters = 300
		p, r := testgen.GenerateOTP(net, ref, 10, cfg, rng.New(seedOTPNoise))
		res.Iters = append(res.Iters, r.Iters)
		res.CleanFlatness = append(res.CleanFlatness, stats.Mean(r.CleanStd))

		golden := detect.Capture(net, p)
		dists := make([]float64, len(fms))
		for i, fm := range fms {
			dists[i] = golden.Observe(fm).AllDist
		}
		res.Dist = append(res.Dist, stats.Mean(dists))
	}
	return res
}

// Render prints the α ablation.
func (r *AlphaAblationResult) Render() string {
	tab := newTable(append([]string{"α"}, floatLabels(r.Alphas)...)...)
	tab.addFloatRow("clean flatness (std)", r.CleanFlatness, "%.4f")
	tab.addFloatRow("all-dist @ ref σ", r.Dist, "%.4f")
	iters := make([]string, len(r.Iters)+1)
	iters[0] = "iterations"
	for i, v := range r.Iters {
		iters[i+1] = fmt.Sprintf("%d", v)
	}
	tab.addRow(iters...)
	return "O-TP α ablation (LeNet-5, Eq. 1 balance)\n" + tab.String()
}

// PoolAblationResult sweeps the depth of the inference pool the C-TP
// selector mines. The paper selects 50 corner images out of the full 10K
// test split; this ablation shows that corner-data quality — and hence
// C-TP's sensitivity — depends directly on how deep into the distribution's
// tail the selector can reach. (It is also why this reproduction mines a
// dedicated large pool rather than its small evaluation split.)
type PoolAblationResult struct {
	PoolSizes []int
	// Flatness is the mean logit-std of the 50 selected corner images
	// (smaller = more corner-like).
	Flatness []float64
	// Dist is the mean all-class confidence distance at the reference σ.
	Dist []float64
}

// AblationCTPPool selects C-TP from progressively deeper pools on LeNet-5.
func (e *Env) AblationCTPPool() *PoolAblationResult {
	const model = "lenet5"
	net, _ := e.ModelFor(model)
	pool := e.PoolFor(model)
	fms := faults.MakeFaultySet(net, faults.LogNormal{Sigma: otpRefSigma(model)}, e.Scale.FaultModels, seedFaultBase+444)

	res := &PoolAblationResult{}
	for _, n := range []int{500, 1000, 2000, 4000, pool.N()} {
		if n > pool.N() {
			continue
		}
		fmt.Fprintf(e.Log, "ablation pool=%d\n", n)
		sub := pool.Head(n)
		m := e.Scale.Patterns
		if m > n {
			m = n
		}
		p := testgen.SelectCTP(net, sub, m)
		// mean logit std of the selection
		logits := net.Forward(p.X)
		k := logits.Dim(1)
		flat := 0.0
		for i := 0; i < p.M(); i++ {
			flat += tensor.FromSlice(logits.Data()[i*k:(i+1)*k], k).Std()
		}
		flat /= float64(p.M())

		golden := detect.Capture(net, p)
		dists := make([]float64, len(fms))
		for i, fm := range fms {
			dists[i] = golden.Observe(fm).AllDist
		}
		res.PoolSizes = append(res.PoolSizes, n)
		res.Flatness = append(res.Flatness, flat)
		res.Dist = append(res.Dist, stats.Mean(dists))
	}
	return res
}

// Render prints the pool-depth ablation.
func (r *PoolAblationResult) Render() string {
	labels := make([]string, len(r.PoolSizes)+1)
	labels[0] = "pool size"
	for i, n := range r.PoolSizes {
		labels[i+1] = fmt.Sprintf("%d", n)
	}
	tab := newTable(labels...)
	tab.addFloatRow("selection logit-std", r.Flatness, "%.3f")
	tab.addFloatRow("all-dist @ ref σ", r.Dist, "%.4f")
	return "C-TP pool-depth ablation (LeNet-5, 50 patterns)\n" + tab.String()
}

// ADCAblationResult sweeps converter resolution on the crossbar simulator:
// at what DAC/ADC precision does the analog path stop costing accuracy?
// (ISAAC-class designs budget 8 bits; the sweep shows where the knee is for
// this workload.)
type ADCAblationResult struct {
	Bits     []int // 0 = ideal converters
	Accuracy []float64
	Images   int
}

// AblationADCBits maps LeNet-5 onto ideal-device crossbars and measures
// analog-path accuracy at each converter resolution.
func (e *Env) AblationADCBits() *ADCAblationResult {
	net, test := e.ModelFor("lenet5")
	eval := test.Head(40) // analog path is ~1000× slower than digital
	res := &ADCAblationResult{Bits: []int{2, 4, 6, 8, 0}, Images: eval.N()}
	for _, bits := range res.Bits {
		fmt.Fprintf(e.Log, "ablation adc bits=%d\n", bits)
		cfg := reram.DefaultConfig()
		cfg.Device.ProgramSigma = 0
		cfg.Device.DriftRate = 0
		cfg.Device.DriftJitter = 0
		cfg.DACBits, cfg.ADCBits = bits, bits
		accel := reram.NewAccelerator(net, cfg, 77)
		// batched analog readout: the accelerator runs each sample through
		// the same crossbar MatVec sequence as a per-sample loop would, but
		// its inference workspaces are reused across the whole sweep
		correct := 0
		const chunk = 8
		dim := eval.SampleDim()
		xd := eval.X.Data()
		for s := 0; s < eval.N(); s += chunk {
			end := s + chunk
			if end > eval.N() {
				end = eval.N()
			}
			batch := tensor.FromSlice(xd[s*dim:end*dim], end-s, dim)
			logits := accel.Infer(batch)
			k := logits.Dim(1)
			ld := logits.Data()
			for j := 0; j < end-s; j++ {
				if tensor.FromSlice(ld[j*k:(j+1)*k], k).ArgMax() == eval.Y[s+j] {
					correct++
				}
			}
		}
		res.Accuracy = append(res.Accuracy, float64(correct)/float64(eval.N()))
	}
	return res
}

// Render prints the converter-resolution ablation.
func (r *ADCAblationResult) Render() string {
	labels := make([]string, len(r.Bits)+1)
	labels[0] = "DAC/ADC bits"
	for i, b := range r.Bits {
		if b == 0 {
			labels[i+1] = "ideal"
		} else {
			labels[i+1] = fmt.Sprintf("%d", b)
		}
	}
	tab := newTable(labels...)
	cells := []string{fmt.Sprintf("accuracy (%d imgs)", r.Images)}
	for _, a := range r.Accuracy {
		cells = append(cells, pct(a))
	}
	tab.addRow(cells...)
	return "Crossbar converter-resolution ablation (LeNet-5, ideal cells)\n" + tab.String()
}

// RefSigmaAblationResult sweeps the σ of the reference fault model used
// during O-TP generation: how much does pattern quality depend on guessing
// the deployment error level right?
type RefSigmaAblationResult struct {
	RefSigmas []float64
	// Dist[i][j] is the mean all-dist of patterns generated at RefSigmas[i],
	// evaluated against fault models at RefSigmas[j].
	Dist [][]float64
}

// AblationOTPRefSigma cross-evaluates O-TP sets generated against different
// reference fault intensities.
func (e *Env) AblationOTPRefSigma() *RefSigmaAblationResult {
	const model = "lenet5"
	net, _ := e.ModelFor(model)
	res := &RefSigmaAblationResult{RefSigmas: []float64{0.1, 0.3, 0.5}}
	for _, genSigma := range res.RefSigmas {
		fmt.Fprintf(e.Log, "ablation ref-sigma gen=%.1f\n", genSigma)
		ref := faults.MakeFaulty(net, faults.LogNormal{Sigma: genSigma}, seedOTPRef)
		cfg := testgen.DefaultOTPConfig()
		cfg.MaxIters = 300
		p, _ := testgen.GenerateOTP(net, ref, 10, cfg, rng.New(seedOTPNoise))
		golden := detect.Capture(net, p)
		row := make([]float64, len(res.RefSigmas))
		for j, evalSigma := range res.RefSigmas {
			fms := faults.MakeFaultySet(net, faults.LogNormal{Sigma: evalSigma}, e.Scale.FaultModels, seedFaultBase+555+int64(j))
			dists := make([]float64, len(fms))
			for i, fm := range fms {
				dists[i] = golden.Observe(fm).AllDist
			}
			row[j] = stats.Mean(dists)
		}
		res.Dist = append(res.Dist, row)
	}
	return res
}

// Render prints the reference-σ cross table.
func (r *RefSigmaAblationResult) Render() string {
	labels := []string{"generated at \\ evaluated at"}
	for _, s := range r.RefSigmas {
		labels = append(labels, fmt.Sprintf("σ=%.1f", s))
	}
	tab := newTable(labels...)
	for i, s := range r.RefSigmas {
		tab.addFloatRow(fmt.Sprintf("σref=%.1f", s), r.Dist[i], "%.4f")
	}
	var b strings.Builder
	b.WriteString("O-TP reference-σ ablation (LeNet-5, all-dist)\n")
	b.WriteString(tab.String())
	return b.String()
}
