package experiments

import (
	"fmt"
	"strings"
)

// table is a minimal fixed-width text-table builder for experiment output.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addFloatRow(label string, vals []float64, format string) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.addRow(cells...)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// methodLabel maps method keys to the paper's names.
func methodLabel(m string) string {
	switch m {
	case "aet":
		return "AET"
	case "ctp":
		return "C-TP"
	case "otp":
		return "O-TP"
	case "plain":
		return "Original"
	default:
		return m
	}
}

// modelLabel maps model keys to the paper's names.
func modelLabel(m string) string {
	switch m {
	case "lenet5":
		return "LeNet-5 (SynthDigits)"
	case "convnet7":
		return "ConvNet-7 (SynthObjects)"
	default:
		return m
	}
}
