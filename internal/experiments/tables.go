package experiments

import (
	"fmt"
	"strings"

	"reramtest/internal/detect"
	"reramtest/internal/faults"
	"reramtest/internal/stats"
)

// AccuracyTable reproduces Tables I/II: mean accuracy of fault models per
// programming-error σ, with the clean model's accuracy at σ = 0.
type AccuracyTable struct {
	Model    string
	CleanAcc float64
	Sigmas   []float64
	MeanAcc  []float64 // per σ, averaged over Scale.AccModels fault models
	StdAcc   []float64
}

// AccuracySweep measures (or returns cached) accuracy degradation per σ.
func (e *Env) AccuracySweep(model string) *AccuracyTable {
	if t, ok := e.accCache[model]; ok {
		return t
	}
	net, test := e.ModelFor(model)
	eval := test.Head(e.Scale.AccImages)
	t := &AccuracyTable{Model: model, Sigmas: SigmasFor(model)}
	t.CleanAcc = net.Accuracy(eval.X, eval.Y, 64)
	t.MeanAcc = make([]float64, len(t.Sigmas))
	t.StdAcc = make([]float64, len(t.Sigmas))
	for si, sigma := range t.Sigmas {
		fmt.Fprintf(e.Log, "accuracy sweep %s sigma=%.2f\n", model, sigma)
		accs := make([]float64, e.Scale.AccModels)
		fms := faults.MakeFaultySet(net, faults.LogNormal{Sigma: sigma}, e.Scale.AccModels, seedFaultBase+9000+int64(si)*131)
		for i, fm := range fms {
			accs[i] = fm.Accuracy(eval.X, eval.Y, 64)
		}
		t.MeanAcc[si] = stats.Mean(accs)
		t.StdAcc[si] = stats.Std(accs)
	}
	e.accCache[model] = t
	return t
}

// Render prints the table in the paper's row layout.
func (t *AccuracyTable) Render() string {
	tab := newTable(append([]string{"weight error (σ)", "0 (original)"}, floatLabels(t.Sigmas)...)...)
	cells := []string{"accuracy", pct(t.CleanAcc)}
	for _, a := range t.MeanAcc {
		cells = append(cells, pct(a))
	}
	tab.addRow(cells...)
	return fmt.Sprintf("%s accuracy vs programming error\n%s", modelLabel(t.Model), tab)
}

// Table1 reproduces Table I (LeNet-5 accuracy vs σ).
func (e *Env) Table1() *AccuracyTable { return e.AccuracySweep("lenet5") }

// Table2 reproduces Table II (ConvNet-7 accuracy vs σ).
func (e *Env) Table2() *AccuracyTable { return e.AccuracySweep("convnet7") }

// Table3Result reproduces Table III: average detection rate per method per
// criterion, over all σ, for both models. Following the paper, O-TP is
// scored only on the SDC-A criteria — its golden top-1 class is meaningless
// by construction (near-uniform confidences), so top-ranked criteria do not
// apply.
type Table3Result struct {
	Models []string
	// Rates[model][method][criterion]
	Rates map[string]map[string]map[detect.Criterion]float64
}

// Table3 computes the average detection rates from the programming-error
// sweeps.
func (e *Env) Table3() *Table3Result {
	res := &Table3Result{Models: []string{"lenet5", "convnet7"},
		Rates: make(map[string]map[string]map[detect.Criterion]float64)}
	for _, model := range res.Models {
		sw := e.ProgrammingErrorSweep(model)
		res.Rates[model] = make(map[string]map[detect.Criterion]float64)
		for _, m := range Methods {
			res.Rates[model][m] = make(map[detect.Criterion]float64)
			for _, c := range detect.AllCriteria {
				res.Rates[model][m][c] = sw.AvgRate(m, c)
			}
		}
	}
	return res
}

// otpApplies reports whether a criterion is meaningful for O-TP.
func otpApplies(c detect.Criterion) bool {
	return c == detect.SDCA3 || c == detect.SDCA5
}

// Render prints Table III in the paper's layout.
func (t *Table3Result) Render() string {
	var b strings.Builder
	for _, model := range t.Models {
		fmt.Fprintf(&b, "%s\n", modelLabel(model))
		tab := newTable("", "SDC-1", "SDC-5", "SDC-T5%", "SDC-T10%", "SDC-A3%", "SDC-A5%")
		for _, m := range Methods {
			cells := []string{methodLabel(m)}
			for _, c := range detect.AllCriteria {
				if m == "otp" && !otpApplies(c) {
					cells = append(cells, "-")
					continue
				}
				cells = append(cells, pct(t.Rates[model][m][c]))
			}
			tab.addRow(cells...)
		}
		b.WriteString(tab.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Table4Result reproduces Table IV: the coefficient of variation of the
// confidence distance across fault models, per σ, on LeNet-5.
type Table4Result struct {
	Sigmas []float64
	// CV[method] per σ
	CV map[string][]float64
}

// Table4 computes the stability metric from the LeNet-5 sweep.
func (e *Env) Table4() *Table4Result {
	sw := e.ProgrammingErrorSweep("lenet5")
	res := &Table4Result{Sigmas: sw.Levels, CV: make(map[string][]float64)}
	for _, m := range Methods {
		res.CV[m] = sw.CVAllDist(m)
	}
	return res
}

// Render prints Table IV in the paper's layout.
func (t *Table4Result) Render() string {
	tab := newTable(append([]string{"weight variance (σ)"}, floatLabels(t.Sigmas)...)...)
	for _, m := range Methods {
		tab.addFloatRow(methodLabel(m), t.CV[m], "%.2f")
	}
	return "CV of confidence distance (LeNet-5)\n" + tab.String()
}

func floatLabels(vals []float64) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%g", v)
	}
	return out
}
