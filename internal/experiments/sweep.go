package experiments

import (
	"fmt"

	"reramtest/internal/detect"
	"reramtest/internal/faults"
	"reramtest/internal/stats"
)

// SweepResult holds every observation of one error-model sweep: for each
// error level and each method, the detection observations of all fault
// models. Tables III/IV and Figs. 3-5 (programming error) and Fig. 6
// (random soft error) are all projections of this structure, so the
// expensive model evaluations run exactly once per (model, error-model)
// pair.
type SweepResult struct {
	Model     string
	LevelName string    // "sigma" for programming error, "p" for soft error
	Levels    []float64 // error intensities swept
	// Obs[method][level] holds one Observation per fault model.
	Obs map[string][][]detect.Observation
}

// injectorFor builds the level-i injector of the sweep.
type injectorFor func(level float64) faults.Injector

// sweep evaluates all methods against shared fault-model sets.
func (e *Env) sweep(model, levelName string, levels []float64, mk injectorFor) *SweepResult {
	key := fmt.Sprintf("%s-%s", model, levelName)
	if s, ok := e.sweepCache[key]; ok {
		return s
	}
	net, _ := e.ModelFor(model)
	res := &SweepResult{Model: model, LevelName: levelName, Levels: levels,
		Obs: make(map[string][][]detect.Observation)}

	// golden references are captured once per method
	goldens := make(map[string]*detect.Golden, len(Methods))
	for _, m := range Methods {
		goldens[m] = detect.Capture(net, e.PatternsDefault(model, m))
		res.Obs[m] = make([][]detect.Observation, len(levels))
	}

	for li, level := range levels {
		inj := mk(level)
		// the same fault models are scored by every method (fair comparison)
		fms := faults.MakeFaultySet(net, inj, e.Scale.FaultModels, seedFaultBase+int64(li)*977)
		fmt.Fprintf(e.Log, "sweep %s %s=%.3f: %d fault models\n", model, levelName, level, len(fms))
		for _, m := range Methods {
			obs := make([]detect.Observation, len(fms))
			for fi, fm := range fms {
				obs[fi] = goldens[m].Observe(fm)
			}
			res.Obs[m][li] = obs
		}
	}
	e.sweepCache[key] = res
	return res
}

// ProgrammingErrorSweep runs (or returns the cached) lognormal-variation
// sweep for the model, over the paper's σ grid.
func (e *Env) ProgrammingErrorSweep(model string) *SweepResult {
	return e.sweep(model, "sigma", SigmasFor(model), func(s float64) faults.Injector {
		return faults.LogNormal{Sigma: s}
	})
}

// RandomSoftSweep runs (or returns the cached) random-soft-error sweep over
// the paper's per-model probability grid.
func (e *Env) RandomSoftSweep(model string) *SweepResult {
	ps := LeNetSoftPs
	if model == "convnet7" {
		ps = ConvNetSoftPs
	}
	return e.sweep(model, "p", ps, func(p float64) faults.Injector {
		return faults.RandomSoft{P: p}
	})
}

// MeanTopDist returns the per-level mean top-ranked confidence distance for
// a method (Fig. 3 left panels).
func (s *SweepResult) MeanTopDist(method string) []float64 {
	return s.project(method, func(o detect.Observation) float64 { return o.TopDist })
}

// MeanAllDist returns the per-level mean all-class confidence distance
// (Fig. 3 right panels).
func (s *SweepResult) MeanAllDist(method string) []float64 {
	return s.project(method, func(o detect.Observation) float64 { return o.AllDist })
}

// CVAllDist returns the per-level coefficient of variation of the all-class
// confidence distance across fault models (Table IV's stability metric).
func (s *SweepResult) CVAllDist(method string) []float64 {
	out := make([]float64, len(s.Levels))
	for li := range s.Levels {
		xs := make([]float64, len(s.Obs[method][li]))
		for i, o := range s.Obs[method][li] {
			xs[i] = o.AllDist
		}
		out[li] = stats.CV(xs)
	}
	return out
}

// Rates returns the per-level detection rate of the method under one
// criterion (Figs. 4-6).
func (s *SweepResult) Rates(method string, c detect.Criterion) []float64 {
	out := make([]float64, len(s.Levels))
	for li := range s.Levels {
		n := 0
		for _, o := range s.Obs[method][li] {
			if o.Detect(c) {
				n++
			}
		}
		out[li] = float64(n) / float64(len(s.Obs[method][li]))
	}
	return out
}

// AvgRate averages the detection rate over all levels (Table III).
func (s *SweepResult) AvgRate(method string, c detect.Criterion) float64 {
	return stats.Mean(s.Rates(method, c))
}

func (s *SweepResult) project(method string, f func(detect.Observation) float64) []float64 {
	out := make([]float64, len(s.Levels))
	for li := range s.Levels {
		xs := make([]float64, len(s.Obs[method][li]))
		for i, o := range s.Obs[method][li] {
			xs[i] = f(o)
		}
		out[li] = stats.Mean(xs)
	}
	return out
}
