// Package experiments reproduces every table and figure of the paper's
// evaluation section. Each experiment is a pure function of a shared Env
// (trained models, datasets, pattern sets — all cached on disk under
// testdata/) and a Scale (how many fault models, evaluation images and
// patterns to use; the full paper scale is restored with REPRO_FULL=1 or
// FullScale()).
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"reramtest/internal/dataset"
	"reramtest/internal/faults"
	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/testgen"
)

// Deterministic seeds for every stochastic stage. Fixed so all runs — and
// the cached artifacts — agree bit-for-bit.
const (
	seedDigitsTrain  = 1001
	seedDigitsTest   = 1002
	seedDigitsPool   = 1003
	seedObjectsPool  = 2003
	seedObjectsTrain = 2001
	seedObjectsTest  = 2002
	seedLeNetInit    = 3001
	seedConvNetInit  = 3002
	seedOTPRef       = 4001 // reference fault model for O-TP generation
	seedOTPNoise     = 4002
	seedAET          = 4003
	seedFaultBase    = 5000 // per-sigma fault-model sets derive from this
)

// LeNetSigmas is the paper's programming-error sweep for LeNet-5 (Table I).
var LeNetSigmas = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}

// ConvNetSigmas is the paper's sweep for ConvNet-7 (Table II).
var ConvNetSigmas = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30}

// LeNetSoftPs and ConvNetSoftPs are the paper's random-soft-error
// probabilities (Fig. 6).
var (
	LeNetSoftPs   = []float64{0.005, 0.01}
	ConvNetSoftPs = []float64{0.001, 0.003}
)

// Methods lists the evaluated pattern-generation methods in the paper's
// reporting order.
var Methods = []string{"aet", "ctp", "otp"}

// Scale holds the experiment size knobs.
type Scale struct {
	// TrainN/TestN size the synthetic datasets.
	TrainN, TestN int
	// PoolN sizes the inference pool that C-TP corner data and AET source
	// images are drawn from (the paper uses the full 10K test split).
	PoolN int
	// Patterns is the concurrent-test set size per method (paper: 50).
	Patterns int
	// FaultModels is the number of independent fault models per error
	// setting (paper: 100).
	FaultModels int
	// AccModels is the number of fault models averaged for the accuracy
	// tables (Tables I/II).
	AccModels int
	// AccImages is the number of test images used per accuracy measurement.
	AccImages int
	// MaxPatterns bounds the Fig. 7 pattern-count sweep.
	MaxPatterns int
}

// DefaultScale returns a laptop-scale configuration (minutes, not hours, on
// one core); FullScale reproduces the paper's counts. REPRO_FULL=1 in the
// environment selects FullScale automatically.
func DefaultScale() Scale {
	if os.Getenv("REPRO_FULL") == "1" {
		return FullScale()
	}
	return Scale{
		TrainN: 4000, TestN: 1000, PoolN: 6000,
		Patterns: 50, FaultModels: 20, AccModels: 5, AccImages: 400,
		MaxPatterns: 200,
	}
}

// FullScale mirrors the paper: 100 fault models per setting and the full
// test split for accuracy.
func FullScale() Scale {
	return Scale{
		TrainN: 4000, TestN: 1000, PoolN: 10000,
		Patterns: 50, FaultModels: 100, AccModels: 20, AccImages: 1000,
		MaxPatterns: 200,
	}
}

// RepoRoot locates the repository root from this source file's position, so
// cached artifacts resolve identically under `go test`, benches and the
// cmd/ binaries.
func RepoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		panic("experiments: cannot locate source file for repo root")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// Env carries the trained models, datasets and cached pattern sets shared by
// all experiments.
type Env struct {
	Scale Scale
	Log   io.Writer

	DigitsTrain, DigitsTest   *dataset.Dataset
	ObjectsTrain, ObjectsTest *dataset.Dataset
	DigitsPool, ObjectsPool   *dataset.Dataset
	LeNet, ConvNet            *nn.Network

	patternCache map[string]*testgen.PatternSet
	sweepCache   map[string]*SweepResult
	accCache     map[string]*AccuracyTable
}

// NewEnv builds (or loads from testdata/) everything the experiments need.
// Training happens only on the first ever run; weights are cached under
// testdata/weights/.
func NewEnv(scale Scale, logw io.Writer) (*Env, error) {
	if logw == nil {
		logw = io.Discard
	}
	e := &Env{Scale: scale, Log: logw,
		patternCache: make(map[string]*testgen.PatternSet),
		sweepCache:   make(map[string]*SweepResult),
		accCache:     make(map[string]*AccuracyTable),
	}
	fmt.Fprintf(logw, "generating datasets (train=%d test=%d)...\n", scale.TrainN, scale.TestN)
	e.DigitsTrain = dataset.SynthDigits(seedDigitsTrain, dataset.DefaultDigitsConfig(scale.TrainN))
	e.DigitsTest = dataset.SynthDigits(seedDigitsTest, dataset.DefaultDigitsConfig(scale.TestN))
	e.ObjectsTrain = dataset.SynthObjects(seedObjectsTrain, dataset.DefaultObjectsConfig(scale.TrainN))
	e.ObjectsTest = dataset.SynthObjects(seedObjectsTest, dataset.DefaultObjectsConfig(scale.TestN))
	poolN := scale.PoolN
	if poolN < scale.TestN {
		poolN = scale.TestN
	}
	e.DigitsPool = dataset.SynthDigits(seedDigitsPool, dataset.DefaultDigitsConfig(poolN))
	e.ObjectsPool = dataset.SynthObjects(seedObjectsPool, dataset.DefaultObjectsConfig(poolN))

	weightsDir := filepath.Join(RepoRoot(), "testdata", "weights")
	var err error
	e.LeNet, err = models.TrainOrLoad(filepath.Join(weightsDir, "lenet5.bin"),
		func() *nn.Network { return models.LeNet5(rng.New(seedLeNetInit)) },
		func(net *nn.Network) {
			fmt.Fprintln(logw, "training LeNet-5 (first run only)...")
			cfg := models.DefaultTrainConfig()
			cfg.LR = 0.01
			cfg.Log = logw
			models.Train(net, e.DigitsTrain, e.DigitsTest, cfg)
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: LeNet-5: %w", err)
	}
	e.ConvNet, err = models.TrainOrLoad(filepath.Join(weightsDir, "convnet7.bin"),
		func() *nn.Network { return models.ConvNet7(rng.New(seedConvNetInit)) },
		func(net *nn.Network) {
			fmt.Fprintln(logw, "training ConvNet-7 (first run only)...")
			cfg := models.DefaultTrainConfig()
			cfg.LR = 0.01
			cfg.Log = logw
			models.Train(net, e.ObjectsTrain, e.ObjectsTest, cfg)
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: ConvNet-7: %w", err)
	}
	return e, nil
}

// ModelFor returns the trained network and its test set by model key
// ("lenet5" or "convnet7").
func (e *Env) ModelFor(model string) (*nn.Network, *dataset.Dataset) {
	switch model {
	case "lenet5":
		return e.LeNet, e.DigitsTest
	case "convnet7":
		return e.ConvNet, e.ObjectsTest
	default:
		panic(fmt.Sprintf("experiments: unknown model %q", model))
	}
}

// PoolFor returns the large inference pool that pattern selection draws
// from.
func (e *Env) PoolFor(model string) *dataset.Dataset {
	if model == "lenet5" {
		return e.DigitsPool
	}
	return e.ObjectsPool
}

// SigmasFor returns the paper's programming-error sweep for the model.
func SigmasFor(model string) []float64 {
	if model == "lenet5" {
		return LeNetSigmas
	}
	return ConvNetSigmas
}

// otpRefSigma is the programming-error level of the reference fault model
// used during O-TP generation (a mid-sweep value for each model).
func otpRefSigma(model string) float64 {
	if model == "lenet5" {
		return 0.3
	}
	return 0.2
}

// Patterns returns the pattern set for (model, method) with m patterns,
// generating and caching (memory + testdata/patterns/) on first use.
// Methods: "aet", "ctp", "otp", "plain".
func (e *Env) Patterns(model, method string, m int) *testgen.PatternSet {
	key := fmt.Sprintf("%s-%s-%d", model, method, m)
	if p, ok := e.patternCache[key]; ok {
		return p
	}
	dir := filepath.Join(RepoRoot(), "testdata", "patterns")
	path := filepath.Join(dir, key+".bin")
	if p, err := testgen.LoadPatternSet(path); err == nil && p.M() == m {
		e.patternCache[key] = p
		return p
	}
	net, _ := e.ModelFor(model)
	pool := e.PoolFor(model)
	fmt.Fprintf(e.Log, "generating pattern set %s...\n", key)
	var p *testgen.PatternSet
	switch method {
	case "ctp":
		p = testgen.SelectCTP(net, pool, m)
	case "aet":
		p = testgen.GenerateAET(net, pool, m, testgen.DefaultAETConfig(), rng.New(seedAET))
	case "plain":
		p = testgen.SelectPlain(pool, m)
	case "otp":
		ref := faults.MakeFaulty(net, faults.LogNormal{Sigma: otpRefSigma(model)}, seedOTPRef)
		cfg := testgen.DefaultOTPConfig()
		cfg.PerClass = (m + pool.Classes - 1) / pool.Classes
		p, _ = testgen.GenerateOTP(net, ref, pool.Classes, cfg, rng.New(seedOTPNoise))
		if p.M() > m {
			p = p.Head(m)
		}
	default:
		panic(fmt.Sprintf("experiments: unknown method %q", method))
	}
	if err := os.MkdirAll(dir, 0o755); err == nil {
		if err := p.Save(path); err != nil {
			fmt.Fprintf(e.Log, "warning: caching %s failed: %v\n", path, err)
		}
	}
	e.patternCache[key] = p
	return p
}

// OTPPatternCount is the paper's O-TP size: one pattern per class.
func (e *Env) OTPPatternCount(model string) int {
	_, pool := e.ModelFor(model)
	return pool.Classes
}

// PatternsDefault returns the evaluation-sized pattern set: Scale.Patterns
// for AET/C-TP (the paper's 50), and n (= classes) for O-TP, which the paper
// shows needs no more.
func (e *Env) PatternsDefault(model, method string) *testgen.PatternSet {
	m := e.Scale.Patterns
	if method == "otp" {
		m = e.OTPPatternCount(model)
	}
	return e.Patterns(model, method, m)
}
