package experiments

import (
	"fmt"
	"strings"

	"reramtest/internal/detect"
	"reramtest/internal/faults"
	"reramtest/internal/stats"
)

// Fig3Result reproduces Fig. 3: mean top-ranked and all-class confidence
// distances per σ for every method, on both models.
type Fig3Result struct {
	Models []string
	Sigmas map[string][]float64
	Top    map[string]map[string][]float64 // model → method → per-σ
	All    map[string]map[string][]float64
}

// Fig3 projects the programming-error sweeps onto confidence distances.
func (e *Env) Fig3() *Fig3Result {
	res := &Fig3Result{Models: []string{"lenet5", "convnet7"},
		Sigmas: make(map[string][]float64),
		Top:    make(map[string]map[string][]float64),
		All:    make(map[string]map[string][]float64)}
	for _, model := range res.Models {
		sw := e.ProgrammingErrorSweep(model)
		res.Sigmas[model] = sw.Levels
		res.Top[model] = make(map[string][]float64)
		res.All[model] = make(map[string][]float64)
		for _, m := range Methods {
			res.Top[model][m] = sw.MeanTopDist(m)
			res.All[model][m] = sw.MeanAllDist(m)
		}
	}
	return res
}

// Render prints the four panels as series tables followed by ASCII charts.
func (f *Fig3Result) Render() string {
	var b strings.Builder
	for _, model := range f.Models {
		for _, panel := range []struct {
			name string
			data map[string][]float64
		}{
			{"top-ranked confidence distance", f.Top[model]},
			{"all confidence distance", f.All[model]},
		} {
			fmt.Fprintf(&b, "%s — %s\n", modelLabel(model), panel.name)
			tab := newTable(append([]string{"σ"}, floatLabels(f.Sigmas[model])...)...)
			for _, m := range Methods {
				tab.addFloatRow(methodLabel(m), panel.data[m], "%.4f")
			}
			b.WriteString(tab.String())
			b.WriteByte('\n')
		}
	}
	b.WriteString(f.Chart())
	return b.String()
}

// RateFigResult is the common shape of Figs. 4, 5 and 6: detection rates per
// error level, per method, per criterion, for both models.
type RateFigResult struct {
	Name      string
	Models    []string
	LevelName string
	Levels    map[string][]float64
	// Rates[model][method][criterion] per level
	Rates map[string]map[string]map[detect.Criterion][]float64
	// Criteria reported by this figure
	Criteria []detect.Criterion
}

func (e *Env) rateFigure(name string, criteria []detect.Criterion, sweepFn func(string) *SweepResult) *RateFigResult {
	res := &RateFigResult{Name: name, Models: []string{"lenet5", "convnet7"},
		Levels:   make(map[string][]float64),
		Rates:    make(map[string]map[string]map[detect.Criterion][]float64),
		Criteria: criteria}
	for _, model := range res.Models {
		sw := sweepFn(model)
		res.LevelName = sw.LevelName
		res.Levels[model] = sw.Levels
		res.Rates[model] = make(map[string]map[detect.Criterion][]float64)
		for _, m := range Methods {
			res.Rates[model][m] = make(map[detect.Criterion][]float64)
			for _, c := range criteria {
				res.Rates[model][m][c] = sw.Rates(m, c)
			}
		}
	}
	return res
}

// Fig4 reproduces Fig. 4: detection rate vs σ on the confidence-distance
// criteria (SDC-T5%, SDC-T10%, SDC-A3%, SDC-A5%).
func (e *Env) Fig4() *RateFigResult {
	return e.rateFigure("Fig4",
		[]detect.Criterion{detect.SDCT5, detect.SDCT10, detect.SDCA3, detect.SDCA5},
		e.ProgrammingErrorSweep)
}

// Fig5 reproduces Fig. 5: detection rate vs σ on the class-change criteria
// (SDC-1, SDC-5).
func (e *Env) Fig5() *RateFigResult {
	return e.rateFigure("Fig5",
		[]detect.Criterion{detect.SDC1, detect.SDC5},
		e.ProgrammingErrorSweep)
}

// Fig6 reproduces Fig. 6: detection rates under random soft errors on all
// six criteria.
func (e *Env) Fig6() *RateFigResult {
	return e.rateFigure("Fig6", detect.AllCriteria, e.RandomSoftSweep)
}

// Render prints one series table per (model, criterion) panel.
func (f *RateFigResult) Render() string {
	var b strings.Builder
	for _, model := range f.Models {
		for _, c := range f.Criteria {
			fmt.Fprintf(&b, "%s — detection rate, %s\n", modelLabel(model), c)
			tab := newTable(append([]string{f.LevelName}, floatLabels(f.Levels[model])...)...)
			for _, m := range Methods {
				if m == "otp" && !otpApplies(c) {
					continue
				}
				rates := f.Rates[model][m][c]
				cells := []string{methodLabel(m)}
				for _, r := range rates {
					cells = append(cells, pct(r))
				}
				tab.addRow(cells...)
			}
			b.WriteString(tab.String())
			b.WriteByte('\n')
		}
	}
	b.WriteString(f.Chart())
	return b.String()
}

// Fig7Result reproduces Fig. 7: the standard deviation (across fault models)
// of the confidence distance as a function of the number of test patterns —
// the paper's pattern-budget efficiency analysis. AET/C-TP use top-ranked
// distance (panels a, c), O-TP all-class distance (panels b, d).
type Fig7Result struct {
	Models []string
	// Counts[model][method] — pattern budgets evaluated
	Counts map[string]map[string][]int
	// Std[model][method] — std of confidence distance at each budget
	Std map[string]map[string][]float64
}

// Fig7 sweeps the pattern budget at a fixed mid-range σ.
func (e *Env) Fig7() *Fig7Result {
	res := &Fig7Result{Models: []string{"lenet5", "convnet7"},
		Counts: make(map[string]map[string][]int),
		Std:    make(map[string]map[string][]float64)}
	for _, model := range res.Models {
		net, _ := e.ModelFor(model)
		sigma := otpRefSigma(model)
		fms := faults.MakeFaultySet(net, faults.LogNormal{Sigma: sigma}, e.Scale.FaultModels, seedFaultBase+7777)
		res.Counts[model] = make(map[string][]int)
		res.Std[model] = make(map[string][]float64)
		for _, m := range Methods {
			var counts []int
			if m == "otp" {
				n := e.OTPPatternCount(model)
				counts = capCounts([]int{n, 2 * n, 3 * n, 5 * n}, e.Scale.MaxPatterns)
			} else {
				counts = capCounts([]int{10, 25, 50, 100, 150, 200}, e.Scale.MaxPatterns)
			}
			full := e.Patterns(model, m, counts[len(counts)-1])
			var stds []float64
			for _, cnt := range counts {
				golden := detect.Capture(net, full.Head(cnt))
				dists := make([]float64, len(fms))
				for i, fm := range fms {
					o := golden.Observe(fm)
					if m == "otp" {
						dists[i] = o.AllDist
					} else {
						dists[i] = o.TopDist
					}
				}
				stds = append(stds, stats.Std(dists))
			}
			res.Counts[model][m] = counts
			res.Std[model][m] = stds
		}
	}
	return res
}

// capCounts drops pattern budgets above the scale's cap, always keeping at
// least the smallest.
func capCounts(counts []int, cap int) []int {
	out := counts[:1]
	for _, c := range counts[1:] {
		if c <= cap {
			out = append(out, c)
		}
	}
	return out
}

// Render prints one series per method.
func (f *Fig7Result) Render() string {
	var b strings.Builder
	for _, model := range f.Models {
		fmt.Fprintf(&b, "%s — std of confidence distance vs #patterns (σ fixed)\n", modelLabel(model))
		for _, m := range Methods {
			counts := f.Counts[model][m]
			labels := make([]string, len(counts))
			for i, c := range counts {
				labels[i] = fmt.Sprintf("%d", c)
			}
			tab := newTable(append([]string{"#patterns"}, labels...)...)
			tab.addFloatRow(methodLabel(m), f.Std[model][m], "%.4f")
			b.WriteString(tab.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig8Result reproduces Fig. 8: model accuracy and the confidence distance
// of each pattern type side by side per σ, exposing how well each method's
// signal tracks the true accuracy loss.
type Fig8Result struct {
	Model    string
	Sigmas   []float64
	Accuracy []float64
	// Dist[method] — mean all-class confidence distance per σ; includes the
	// "plain" original-test-image baseline.
	Dist map[string][]float64
	// Slope and R of the distance-vs-(1-accuracy) linear fit, per method:
	// the paper's linearity argument for O-TP.
	Slope map[string]float64
	R     map[string]float64
	// Levels is the paper's "levels of confidence distance" count: the
	// distance range in units of 0.01.
	Levels map[string]int
}

// Fig8 combines the accuracy sweep with per-method distances and adds the
// "plain" baseline series.
func (e *Env) Fig8() *Fig8Result {
	const model = "lenet5"
	acc := e.AccuracySweep(model)
	sw := e.ProgrammingErrorSweep(model)
	res := &Fig8Result{Model: model, Sigmas: sw.Levels, Accuracy: acc.MeanAcc,
		Dist: make(map[string][]float64), Slope: make(map[string]float64),
		R: make(map[string]float64), Levels: make(map[string]int)}
	for _, m := range Methods {
		res.Dist[m] = sw.MeanAllDist(m)
	}
	// the plain-images baseline is not part of the main sweep: score it here
	net, _ := e.ModelFor(model)
	golden := detect.Capture(net, e.Patterns(model, "plain", e.Scale.Patterns))
	plain := make([]float64, len(sw.Levels))
	for li := range sw.Levels {
		fms := faults.MakeFaultySet(net, faults.LogNormal{Sigma: sw.Levels[li]}, e.Scale.AccModels, seedFaultBase+int64(li)*977)
		dists := make([]float64, len(fms))
		for i, fm := range fms {
			dists[i] = golden.Observe(fm).AllDist
		}
		plain[li] = stats.Mean(dists)
	}
	res.Dist["plain"] = plain

	loss := make([]float64, len(res.Accuracy))
	for i, a := range res.Accuracy {
		loss[i] = 1 - a
	}
	for m, d := range res.Dist {
		slope, _, r := stats.LinearFit(loss, d)
		res.Slope[m] = slope
		res.R[m] = r
		lo, hi := stats.MinMax(d)
		res.Levels[m] = int((hi - lo) / 0.01)
	}
	return res
}

// CalibrationCurve exports the (distance, accuracy) pairs for a method —
// the input the runtime monitor's accuracy estimator consumes.
func (f *Fig8Result) CalibrationCurve(method string) (dist, acc []float64) {
	return f.Dist[method], f.Accuracy
}

// Render prints the joint accuracy/distance table and the linearity fits.
func (f *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — confidence distance vs model accuracy\n", modelLabel(f.Model))
	tab := newTable(append([]string{"σ"}, floatLabels(f.Sigmas)...)...)
	accRow := []string{"accuracy"}
	for _, a := range f.Accuracy {
		accRow = append(accRow, pct(a))
	}
	tab.addRow(accRow...)
	for _, m := range []string{"plain", "aet", "ctp", "otp"} {
		tab.addFloatRow(methodLabel(m)+" dist", f.Dist[m], "%.4f")
	}
	b.WriteString(tab.String())
	b.WriteString("\nlinearity of distance vs accuracy loss (higher |r| = better tracking):\n")
	fit := newTable("method", "slope", "r", "distance levels (0.01 units)")
	for _, m := range []string{"plain", "aet", "ctp", "otp"} {
		fit.addRow(methodLabel(m), fmt.Sprintf("%.3f", f.Slope[m]), fmt.Sprintf("%.3f", f.R[m]), fmt.Sprintf("%d", f.Levels[m]))
	}
	b.WriteString(fit.String())
	b.WriteByte('\n')
	b.WriteString(f.Chart())
	return b.String()
}
