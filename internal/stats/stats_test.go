package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean of empty not 0")
	}
}

func TestStdKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Std(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Std=%v, want 2", got)
	}
}

func TestSampleStdVsStd(t *testing.T) {
	xs := []float64{1, 2, 3}
	pop, samp := Std(xs), SampleStd(xs)
	if samp <= pop {
		t.Fatalf("sample std %v should exceed population std %v", samp, pop)
	}
	if SampleStd([]float64{5}) != 0 {
		t.Fatal("SampleStd of singleton not 0")
	}
}

func TestCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, std 2
	if got := CV(xs); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("CV=%v, want 0.4", got)
	}
	if CV([]float64{0, 0}) != 0 {
		t.Fatal("CV with zero mean should be 0")
	}
}

// Property: CV is scale-invariant for positive scalings.
func TestCVScaleInvariance(t *testing.T) {
	err := quick.Check(func(raw []float64, kRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Abs(math.Mod(v, 10)) + 1 // positive, bounded
		}
		k := float64(kRaw%9) + 1
		scaled := make([]float64, len(xs))
		for i, v := range xs {
			scaled[i] = k * v
		}
		return math.Abs(CV(xs)-CV(scaled)) < 1e-9
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax=(%v,%v)", lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v)=%v, want %v", c.q, got, c.want)
		}
	}
	// interpolation between order statistics
	if got := Quantile([]float64{0, 10}, 0.3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Quantile interpolation got %v, want 3", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile of empty not 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestLinearFitRecoversLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 2.5*v - 1
	}
	slope, intercept, r := LinearFit(x, y)
	if math.Abs(slope-2.5) > 1e-12 || math.Abs(intercept+1) > 1e-12 {
		t.Fatalf("fit %v,%v", slope, intercept)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect line has r=%v", r)
	}
}

func TestLinearFitNegativeCorrelation(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{3, 2, 1, 0}
	_, _, r := LinearFit(x, y)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("descending line has r=%v, want -1", r)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	slope, intercept, r := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if slope != 0 || intercept != 2 || r != 0 {
		t.Fatalf("constant-x fit gave %v,%v,%v", slope, intercept, r)
	}
}

func TestLinearFitLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, -5, 99}
	h := Histogram(xs, 0, 1, 4)
	if h[0] != 3 { // 0.1, 0.2 and clamped -5
		t.Fatalf("bin0=%d, want 3", h[0])
	}
	if h[3] != 2 { // 0.9 and clamped 99
		t.Fatalf("bin3=%d, want 2", h[3])
	}
	total := 0
	for _, n := range h {
		total += n
	}
	if total != len(xs) {
		t.Fatalf("histogram lost samples: %d of %d", total, len(xs))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
	if s.String() == "" {
		t.Fatal("Summary.String empty")
	}
}

func TestLinearFitEmptyAndSinglePoint(t *testing.T) {
	if slope, intercept, r := LinearFit(nil, nil); slope != 0 || intercept != 0 || r != 0 {
		t.Fatalf("empty fit gave %v,%v,%v", slope, intercept, r)
	}
	slope, intercept, r := LinearFit([]float64{3}, []float64{7})
	if slope != 0 || intercept != 7 || r != 0 {
		t.Fatalf("single-point fit gave %v,%v,%v, want 0,7,0", slope, intercept, r)
	}
	if math.IsNaN(slope) || math.IsNaN(intercept) || math.IsNaN(r) {
		t.Fatal("degenerate fit produced NaN")
	}
}
