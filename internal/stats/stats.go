// Package stats provides the small statistical toolkit the evaluation
// needs: means, deviations, the coefficient of variation used by the paper's
// stability analysis (Table IV), quantiles, histograms and least-squares
// fits for the confidence-distance-vs-accuracy correlation (Fig. 8).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// SampleStd returns the Bessel-corrected sample standard deviation.
func SampleStd(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CV returns the coefficient of variation σ/μ — the paper's stability metric
// for confidence distances (smaller is more stable). It returns 0 when the
// mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Std(xs) / m
}

// MinMax returns the smallest and largest elements of xs.
func MinMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear interpolation
// between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// LinearFit returns the least-squares slope and intercept of y on x, plus the
// Pearson correlation coefficient r. It panics if the lengths differ.
func LinearFit(x, y []float64) (slope, intercept, r float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: LinearFit length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if n == 0 {
		return 0, 0, 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 0
	}
	return slope, intercept, sxy / math.Sqrt(sxx*syy)
}

// Histogram bins xs into nbins equal-width bins over [lo, hi]; values outside
// the range are clamped into the first/last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 {
		panic(fmt.Sprintf("stats: Histogram needs positive bin count, got %d", nbins))
	}
	counts := make([]int, nbins)
	if hi <= lo {
		counts[0] = len(xs)
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		} else if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// Summary is a five-number-plus description of a sample.
type Summary struct {
	N                int
	Mean, Std, CV    float64
	Min, Median, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	lo, hi := MinMax(xs)
	if len(xs) == 0 {
		lo, hi = 0, 0
	}
	return Summary{
		N: len(xs), Mean: Mean(xs), Std: Std(xs), CV: CV(xs),
		Min: lo, Median: Quantile(xs, 0.5), Max: hi,
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f cv=%.3f min=%.4f med=%.4f max=%.4f",
		s.N, s.Mean, s.Std, s.CV, s.Min, s.Median, s.Max)
}
