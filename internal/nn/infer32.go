package nn

import (
	"math"

	"reramtest/internal/tensor"
)

// BatchInferF32 is the float32 fast-tier mirror of BatchInfer. The engine
// keeps a per-layer converted-parameter cache (sized by InferParamsF32,
// filled by LoadParamsF32 at compile/rebind time) so the hot path touches
// only float32 and makes no conversions and no allocations.
// ForwardBatchRangeF32 writes output rows [lo, hi) of dst (n × outVol),
// reading rows [lo, hi) of x (n × inVol), both bare row-major slices; vol
// arguments carry the per-sample volumes for layers that don't know their
// own (element-wise activations). scratch holds InferScratchF32() float32s
// private to the call, so disjoint ranges run concurrently.
//
// Contract: same window/loop order as the f64 reference, float32 arithmetic
// with the tensor package's documented fold order — bounded-ULP versus
// Forward, never bit-identical. Implementations must not touch training
// caches.
type BatchInferF32 interface {
	ForwardBatchRangeF32(dst, x []float32, n, inVol, outVol, lo, hi int, params, scratch []float32)
	// InferParamsF32 returns the converted-parameter cache size in float32s.
	InferParamsF32() int
	// LoadParamsF32 converts the layer's f64 parameters into the cache laid
	// out however ForwardBatchRangeF32 wants them.
	LoadParamsF32(dst []float32)
	// InferScratchF32 returns the per-call scratch requirement in float32s.
	InferScratchF32() int
}

// InferParamsF32 implements BatchInferF32: the transposed (Out, In) weight
// cache followed by the bias.
func (d *Dense) InferParamsF32() int { return d.in*d.out + d.out }

// LoadParamsF32 implements BatchInferF32: weights land TRANSPOSED (Out, In)
// so each output is a contiguous register dot product, bias follows.
func (d *Dense) LoadParamsF32(dst []float32) {
	wd := d.weight.Value.Data()
	for j := 0; j < d.out; j++ {
		row := dst[j*d.in : (j+1)*d.in]
		for k := 0; k < d.in; k++ {
			row[k] = float32(wd[k*d.out+j])
		}
	}
	bd := d.bias.Value.Data()
	for j, v := range bd {
		dst[d.in*d.out+j] = float32(v)
	}
}

// InferScratchF32 implements BatchInferF32.
func (d *Dense) InferScratchF32() int { return 0 }

// ForwardBatchRangeF32 implements BatchInferF32 via the fused dense kernel
// (without the ReLU epilogue — the engine fuses a following ReLU by calling
// ForwardBatchRangeF32Fused directly).
func (d *Dense) ForwardBatchRangeF32(dst, x []float32, n, _, _, lo, hi int, params, _ []float32) {
	d.ForwardBatchRangeF32Fused(dst, x, n, lo, hi, params, false)
}

// ForwardBatchRangeF32Fused is ForwardBatchRangeF32 with an optionally fused
// ReLU epilogue. Clamping the already rounded float32 sum is numerically
// identical to a separate ReLU pass, so the engine elides the activation
// step entirely when a ReLU follows a dense layer on the F32 tier.
func (d *Dense) ForwardBatchRangeF32Fused(dst, x []float32, n, lo, hi int, params []float32, relu bool) {
	wT := params[:d.in*d.out]
	bias := params[d.in*d.out:]
	tensor.DenseForwardF32(dst, x, wT, bias, n, d.in, d.out, lo, hi, relu)
}

// InferParamsF32 implements BatchInferF32: the (OutC, C·KH·KW) kernel matrix
// in its native layout followed by the bias.
func (c *Conv2D) InferParamsF32() int {
	ckk := c.geom.InC * c.geom.KH * c.geom.KW
	return c.outC*ckk + c.outC
}

// LoadParamsF32 implements BatchInferF32.
func (c *Conv2D) LoadParamsF32(dst []float32) {
	ckk := c.geom.InC * c.geom.KH * c.geom.KW
	tensor.ConvertF64ToF32(dst[:c.outC*ckk], c.weight.Value.Data())
	tensor.ConvertF64ToF32(dst[c.outC*ckk:c.outC*ckk+c.outC], c.bias.Value.Data())
}

// InferScratchF32 implements BatchInferF32: one f32 im2col column matrix.
func (c *Conv2D) InferScratchF32() int { return c.InferScratch() }

// ForwardBatchRangeF32 implements BatchInferF32: f32 im2col + f32 matmul per
// sample, same window and sample order as the f64 path.
func (c *Conv2D) ForwardBatchRangeF32(dst, x []float32, _, _, _, lo, hi int, params, scratch []float32) {
	inVol := c.sampleVolume()
	spatial := c.geom.OutH() * c.geom.OutW()
	ckk := c.geom.InC * c.geom.KH * c.geom.KW
	outVol := c.outC * spatial
	wd := params[:c.outC*ckk]
	bd := params[c.outC*ckk:]
	cols := scratch[:ckk*spatial]
	for s := lo; s < hi; s++ {
		tensor.Im2ColIntoF32(cols, x[s*inVol:(s+1)*inVol], c.geom)
		out := dst[s*outVol : (s+1)*outVol]
		tensor.MatMulSlicesF32(out, wd, cols, c.outC, ckk, spatial)
		for oc := 0; oc < c.outC; oc++ {
			b := bd[oc]
			row := out[oc*spatial : (oc+1)*spatial]
			for i := range row {
				row[i] += b
			}
		}
	}
}

// InferParamsF32 implements BatchInferF32.
func (p *MaxPool2D) InferParamsF32() int { return 0 }

// LoadParamsF32 implements BatchInferF32.
func (p *MaxPool2D) LoadParamsF32([]float32) {}

// InferScratchF32 implements BatchInferF32.
func (p *MaxPool2D) InferScratchF32() int { return 0 }

// ForwardBatchRangeF32 implements BatchInferF32: the Forward window sweep in
// float32. Comparisons are exact in any width, so the selected element per
// window matches the f64 path whenever the inputs round distinctly.
func (p *MaxPool2D) ForwardBatchRangeF32(dst, x []float32, _, _, _, lo, hi int, _, _ []float32) {
	g := p.geom
	inVol := g.InC * g.InH * g.InW
	outH, outW := g.OutH(), g.OutW()
	outVol := g.InC * outH * outW
	for s := lo; s < hi; s++ {
		sBase := s * inVol
		oBase := s * outVol
		oi := 0
		for c := 0; c < g.InC; c++ {
			chanBase := sBase + c*g.InH*g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := -1
					bestV := float32(0)
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							idx := chanBase + ih*g.InW + iw
							if best == -1 || x[idx] > bestV {
								best, bestV = idx, x[idx]
							}
						}
					}
					dst[oBase+oi] = bestV
					oi++
				}
			}
		}
	}
}

// InferParamsF32 implements BatchInferF32.
func (p *AvgPool2D) InferParamsF32() int { return 0 }

// LoadParamsF32 implements BatchInferF32.
func (p *AvgPool2D) LoadParamsF32([]float32) {}

// InferScratchF32 implements BatchInferF32.
func (p *AvgPool2D) InferScratchF32() int { return 0 }

// ForwardBatchRangeF32 implements BatchInferF32: the window-mean sweep with
// a float32 accumulator.
func (p *AvgPool2D) ForwardBatchRangeF32(dst, x []float32, _, _, _, lo, hi int, _, _ []float32) {
	g := p.geom
	inVol := g.InC * g.InH * g.InW
	outH, outW := g.OutH(), g.OutW()
	outVol := g.InC * outH * outW
	winSize := float32(g.KH * g.KW)
	for s := lo; s < hi; s++ {
		sBase := s * inVol
		oBase := s * outVol
		oi := 0
		for c := 0; c < g.InC; c++ {
			chanBase := sBase + c*g.InH*g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					sum := float32(0)
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							sum += x[chanBase+ih*g.InW+iw]
						}
					}
					dst[oBase+oi] = sum / winSize
					oi++
				}
			}
		}
	}
}

// InferParamsF32 implements BatchInferF32.
func (l *ReLU) InferParamsF32() int { return 0 }

// LoadParamsF32 implements BatchInferF32.
func (l *ReLU) LoadParamsF32([]float32) {}

// InferScratchF32 implements BatchInferF32.
func (l *ReLU) InferScratchF32() int { return 0 }

// ForwardBatchRangeF32 implements BatchInferF32: max(0, x). ReLU in float32
// equals float32(ReLU in float64) exactly, so this layer adds nothing to the
// tier's error envelope.
func (l *ReLU) ForwardBatchRangeF32(dst, x []float32, _, vol, _, lo, hi int, _, _ []float32) {
	for i := lo * vol; i < hi*vol; i++ {
		if v := x[i]; v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// InferParamsF32 implements BatchInferF32.
func (l *Tanh) InferParamsF32() int { return 0 }

// LoadParamsF32 implements BatchInferF32.
func (l *Tanh) LoadParamsF32([]float32) {}

// InferScratchF32 implements BatchInferF32.
func (l *Tanh) InferScratchF32() int { return 0 }

// ForwardBatchRangeF32 implements BatchInferF32: tanh evaluated through the
// f64 libm kernel on the f32 input, rounded once on store — within 1 ULP of
// rounding the reference output, on top of the input's own error.
func (l *Tanh) ForwardBatchRangeF32(dst, x []float32, _, vol, _, lo, hi int, _, _ []float32) {
	for i := lo * vol; i < hi*vol; i++ {
		dst[i] = float32(math.Tanh(float64(x[i])))
	}
}

// InferParamsF32 implements BatchInferF32.
func (l *Sigmoid) InferParamsF32() int { return 0 }

// LoadParamsF32 implements BatchInferF32.
func (l *Sigmoid) LoadParamsF32([]float32) {}

// InferScratchF32 implements BatchInferF32.
func (l *Sigmoid) InferScratchF32() int { return 0 }

// ForwardBatchRangeF32 implements BatchInferF32: the logistic through the
// f64 libm exp on the f32 input, rounded once on store.
func (l *Sigmoid) ForwardBatchRangeF32(dst, x []float32, _, vol, _, lo, hi int, _, _ []float32) {
	for i := lo * vol; i < hi*vol; i++ {
		dst[i] = float32(1 / (1 + math.Exp(-float64(x[i]))))
	}
}
