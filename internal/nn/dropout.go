package nn

import (
	"fmt"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// Dropout randomly zeroes activations with probability p during training and
// is the identity during inference (inverted-dropout scaling, so inference
// needs no rescale).
type Dropout struct {
	name     string
	p        float64
	r        *rng.RNG
	training bool
	mask     []float64
}

// NewDropout builds a dropout layer with drop probability p ∈ [0, 1).
func NewDropout(name string, r *rng.RNG, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout %q probability %v out of [0,1)", name, p))
	}
	return &Dropout{name: name, p: p, r: r}
}

// Name returns the layer name.
func (l *Dropout) Name() string { return l.name }

// Params returns nil: dropout is parameter-free.
func (l *Dropout) Params() []*Param { return nil }

// OutputShape implements Layer: dropout preserves shape.
func (l *Dropout) OutputShape(in []int) []int { return in }

// Clone returns an independent copy sharing nothing with the original. The
// clone gets its own RNG stream split from the source layer's.
func (l *Dropout) Clone() Layer {
	return &Dropout{name: l.name, p: l.p, r: l.r.Split(), training: l.training}
}

// SetTraining toggles dropout on (training) or off (inference).
func (l *Dropout) SetTraining(on bool) { l.training = on }

// Forward drops activations during training; identity otherwise.
func (l *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !l.training || l.p == 0 {
		l.mask = nil
		return x.Clone()
	}
	out := x.Clone()
	od := out.Data()
	if cap(l.mask) < len(od) {
		l.mask = make([]float64, len(od))
	}
	l.mask = l.mask[:len(od)]
	keep := 1 - l.p
	for i := range od {
		if l.r.Bernoulli(l.p) {
			l.mask[i] = 0
			od[i] = 0
		} else {
			l.mask[i] = 1 / keep
			od[i] *= 1 / keep
		}
	}
	return out
}

// Backward applies the same mask to the gradient.
func (l *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		return gradOut.Clone()
	}
	out := gradOut.Clone()
	od := out.Data()
	for i := range od {
		od[i] *= l.mask[i]
	}
	return out
}

// Flatten reshapes (N, C, H, W)-style batches to (N, D). Because layers in
// this package already carry batches as (N, volume), Flatten is a shape
// bookkeeping no-op that exists to make model definitions read like their
// paper counterparts.
type Flatten struct {
	name string
}

// NewFlatten builds a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name returns the layer name.
func (l *Flatten) Name() string { return l.name }

// Params returns nil.
func (l *Flatten) Params() []*Param { return nil }

// OutputShape collapses the per-sample shape to one axis.
func (l *Flatten) OutputShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// Clone returns an independent copy.
func (l *Flatten) Clone() Layer { return &Flatten{name: l.name} }

// Forward is the identity on the batched representation: it returns a
// reshaped view sharing x's storage (no copy — downstream layers only read
// their inputs, so aliasing is safe).
func (l *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward is the identity; like Forward it returns a view, not a copy.
func (l *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n := gradOut.Dim(0)
	return gradOut.Reshape(n, gradOut.Len()/n)
}
