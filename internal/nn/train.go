package nn

import (
	"math"

	"reramtest/internal/tensor"
)

// This file is the training twin of infer.go: destination-passing forward and
// backward kernels the batch-first training engine (internal/tengine) compiles
// against. The contract mirrors BatchInfer's, extended with gradients:
//
//   - TrainForwardRange must be bit-identical to Forward on the same rows and
//     must record whatever per-sample state Backward needs into the caller's
//     TrainCache (never into the layer — the layer's own training caches are
//     untouched, so legacy Forward/Backward keeps working side by side).
//   - TrainBackwardRange must produce, for every sample row, exactly the
//     contribution the legacy Backward would have accumulated for that sample:
//     parameter gradients go into the sample's shard row (the engine folds
//     shard rows over the sample axis in fixed order, reproducing the legacy
//     accumulation chain bit for bit), and dL/dx goes into gradIn (nil when
//     the caller does not need input gradients).
//
// Parallelism only ever partitions whole samples (forward/backward) or whole
// parameter elements (the shard fold) — never a summation axis — which is the
// same mechanism that makes the inference engine bit-identical to the serial
// path.

// TrainDims sizes the per-layer caches a train plan must preallocate.
type TrainDims struct {
	// IntsPerSample is the per-sample int cache requirement (e.g. max-pool
	// argmax routing).
	IntsPerSample int
	// FloatsPerSample is the per-sample float cache requirement (e.g. the
	// dropout mask).
	FloatsPerSample int
	// Scratch is the per-chunk float64 scratch requirement (private to one
	// concurrent range call, like BatchInfer.InferScratch).
	Scratch int
}

// TrainCache carries the preallocated buffers for one TrainKernel call. It is
// a value struct: kernels receive it by value and must not retain it.
type TrainCache struct {
	// Ints is the layer-wide int cache, n*IntsPerSample long; rows [lo, hi)
	// own the corresponding per-sample regions.
	Ints []int
	// Floats is the layer-wide float cache, n*FloatsPerSample long. It is
	// filled by TrainPrepass (serial) and read by the range kernels.
	Floats []float64
	// Scratch is the per-chunk scratch, private to the call.
	Scratch []float64
	// Shard is the (n, ShardVol) per-sample parameter-gradient workspace where
	// ShardVol is the layer's total parameter volume in Params() order. Range
	// kernels write rows [lo, hi); the engine folds rows over the sample axis.
	Shard []float64
}

// TrainKernel is the batched training fast path a layer exposes to the train
// engine. Implementations must satisfy the bit-identity contract documented
// above.
type TrainKernel interface {
	// TrainDims reports cache requirements given the per-sample input volume.
	TrainDims(inVol int) TrainDims
	// TrainForwardRange writes output rows [lo, hi) of the training-mode
	// forward pass into out (N, outVol), reading rows [lo, hi) of x (N, inVol)
	// and recording backward state into c.
	TrainForwardRange(out, x *tensor.Tensor, lo, hi int, c TrainCache)
	// TrainBackwardRange consumes gradOut rows [lo, hi) (dL/d out) together
	// with the forward input x and output out, writes the sample's parameter-
	// gradient contribution into c.Shard rows [lo, hi), and writes dL/dx rows
	// [lo, hi) into gradIn unless gradIn is nil.
	TrainBackwardRange(gradIn, gradOut, x, out *tensor.Tensor, lo, hi int, c TrainCache)
}

// TrainGradKernel is an optional TrainKernel extension for layers whose
// parameter gradients can be computed directly from the whole batch with an
// element-partitioned fold, skipping the per-sample shard workspace entirely.
// This matters for dense layers, where a (N, In*Out) shard would cost far
// more memory traffic than the gradient itself; convolutions keep the shard
// path because their parameter volume is small and their per-sample column
// expansion would otherwise be recomputed per worker.
//
// The bit-identity contract is the same as the shard fold's: units partition
// the parameter's gradient elements, and every element's whole sample fold
// runs inside one TrainGradRange call in ascending sample order — the legacy
// accumulation chain — so worker count never changes a bit.
type TrainGradKernel interface {
	// TrainGradUnits returns the length of the partitionable unit axis for
	// parameter i of Params(); a unit may own several contiguous gradient
	// elements (e.g. one weight-matrix row).
	TrainGradUnits(param int) int
	// TrainGradRange overwrites the batch gradient of units [lo, hi) of
	// parameter i of Params() in the parameter's Grad tensor, reading the
	// layer input x and dL/d(output) gradOut.
	TrainGradRange(param int, gradOut, x *tensor.Tensor, lo, hi int)
}

// TrainBackPrep is an optional TrainKernel extension: a serial hook the
// engine runs once per backward pass, before the chunked TrainBackwardRange
// dispatch, and only when the layer must produce dL/dx. Dense layers use it
// to refresh the transposed weight view their dx kernel streams row-wise;
// ranged bodies may then read what the hook prepared without synchronizing.
type TrainBackPrep interface {
	TrainBackPrep()
}

// TrainPrepass is implemented by kernels that must consume sequential state
// (an RNG stream) before their ranges run concurrently. The engine calls it
// once per ForwardBackward, serially, in layer order — exactly where the
// legacy per-layer Forward would have consumed the same stream.
type TrainPrepass interface {
	TrainPrepass(n int, c TrainCache)
}

// TrainPassthrough marks layers the train plan elides entirely: both their
// forward and backward passes are the identity (Flatten always; Dropout when
// inactive). The flag is sampled at compile time.
type TrainPassthrough interface {
	TrainPassthrough() bool
}

// TrainPassthrough implements the marker: flatten never moves data in either
// direction.
func (l *Flatten) TrainPassthrough() bool { return true }

// TrainPassthrough implements the marker: outside training mode (or with
// p = 0) dropout is the identity forward and backward.
func (l *Dropout) TrainPassthrough() bool { return !l.training || l.p == 0 }

// ---------------------------------------------------------------- Dense

// TrainDims implements TrainKernel: dense layers need no caches or scratch.
func (d *Dense) TrainDims(int) TrainDims { return TrainDims{} }

// TrainForwardRange implements TrainKernel via the shared inference kernel
// (dense layers cache nothing the backward pass cannot recover from x).
func (d *Dense) TrainForwardRange(out, x *tensor.Tensor, lo, hi int, _ TrainCache) {
	d.ForwardBatchRange(out, x, lo, hi, nil)
}

// TrainBackPrep implements the serial pre-backward hook: it refreshes the
// transposed weight view the ranged dx kernel streams row-wise. The engine
// calls it only when this layer must produce dL/dx, so plain training never
// pays for transposing an untapped first layer.
func (d *Dense) TrainBackPrep() {
	if d.wT == nil {
		d.wT = make([]float64, d.in*d.out)
	}
	wd := d.wT
	src := d.weight.Value.Data()
	for i := 0; i < d.in; i++ {
		row := src[i*d.out : (i+1)*d.out]
		for j, v := range row {
			wd[j*d.in+i] = v
		}
	}
}

// TrainBackwardRange implements TrainKernel: only dL/dx is sample-local for a
// dense layer — parameter gradients go through the direct TrainGradKernel
// fold below, so no shard rows are written.
func (d *Dense) TrainBackwardRange(gradIn, gradOut, _, _ *tensor.Tensor, lo, hi int, _ TrainCache) {
	if gradIn == nil {
		return
	}
	// One ranged matmul covering samples [lo, hi) against the weight view
	// TrainBackPrep transposed: every dL/dx element sums the same terms in
	// the same ascending order as the legacy g·Wᵀ register dot product, so
	// any sample partition yields the same bits as the legacy full-batch
	// call — pipelined across elements instead of serialized on add latency.
	gd, gid := gradOut.Data(), gradIn.Data()
	tensor.MatMulNoSkipSlices(gid[lo*d.in:hi*d.in], gd[lo*d.out:hi*d.out], d.wT, hi-lo, d.out, d.in)
}

// TrainGradUnits implements TrainGradKernel: weight gradients partition by
// input row (each row owns Out contiguous elements), bias gradients by
// element.
func (d *Dense) TrainGradUnits(param int) int {
	if param == 0 {
		return d.in
	}
	return d.out
}

// TrainGradRange implements TrainGradKernel. The weight fold computes the
// same per-element addition chain as the legacy MatMulTransAInto — samples
// ascending, same zero-skip — but iterates row-outer/sample-inner, so each
// 1×Out gradient row is zeroed and accumulated while cache-hot instead of the
// whole In×Out matrix being re-streamed once per sample: identical bits,
// a fraction of the memory traffic. The bias fold is the legacy sample-outer
// column sum restricted to columns [lo, hi).
func (d *Dense) TrainGradRange(param int, gradOut, x *tensor.Tensor, lo, hi int) {
	n := gradOut.Dim(0)
	gd := gradOut.Data()
	in, out := d.in, d.out
	if param == 0 {
		xd, wg := x.Data(), d.weight.Grad.Data()
		for j := lo * out; j < hi*out; j++ {
			wg[j] = 0
		}
		// sample-outer sweep over the x row segment [lo, hi) — the legacy
		// MatMulTransASlices loop shape (sequential x reads, ascending
		// gradient rows) restricted to this element range. Two samples per
		// sweep: each gradient row is loaded and stored once for both
		// contributions, and (old + av0·b0) + av1·b1 performs the same adds
		// on the same values in the same order as two single-sample sweeps,
		// so every element keeps the legacy addition chain.
		p := 0
		for ; p+1 < n; p += 2 {
			x0 := xd[p*in+lo : p*in+hi]
			x1 := xd[(p+1)*in+lo : (p+1)*in+hi]
			g0 := gd[p*out : (p+1)*out]
			g1 := gd[(p+1)*out : (p+2)*out]
			for di, av0 := range x0 {
				av1 := x1[di]
				i := lo + di
				if av0 != 0 && av1 != 0 {
					drow := wg[i*out : (i+1)*out]
					for j, b0 := range g0 {
						v := drow[j] + av0*b0
						drow[j] = v + av1*g1[j]
					}
				} else if av0 != 0 {
					drow := wg[i*out : (i+1)*out]
					for j, b0 := range g0 {
						drow[j] += av0 * b0
					}
				} else if av1 != 0 {
					drow := wg[i*out : (i+1)*out]
					for j, b1 := range g1 {
						drow[j] += av1 * b1
					}
				}
			}
		}
		if p < n {
			xrow := xd[p*in+lo : p*in+hi]
			grow := gd[p*out : (p+1)*out]
			for di, av := range xrow {
				if av == 0 {
					continue
				}
				i := lo + di
				drow := wg[i*out : (i+1)*out]
				for j, bv := range grow {
					drow[j] += av * bv
				}
			}
		}
		return
	}
	bg := d.bias.Grad.Data()
	for j := lo; j < hi; j++ {
		bg[j] = 0
	}
	for p := 0; p < n; p++ {
		row := gd[p*out : (p+1)*out]
		for j := lo; j < hi; j++ {
			bg[j] += row[j]
		}
	}
}

// ---------------------------------------------------------------- Conv2D

// TrainDims implements TrainKernel: scratch for one im2col column matrix plus
// one gradient column matrix.
func (c *Conv2D) TrainDims(int) TrainDims {
	cols := c.geom.InC * c.geom.KH * c.geom.KW * c.geom.OutH() * c.geom.OutW()
	return TrainDims{Scratch: 2 * cols}
}

// TrainForwardRange implements TrainKernel via the shared inference kernel;
// the backward pass re-expands im2col per sample instead of caching columns,
// exactly like the legacy Backward.
func (c *Conv2D) TrainForwardRange(out, x *tensor.Tensor, lo, hi int, tc TrainCache) {
	c.ForwardBatchRange(out, x, lo, hi, tc.Scratch)
}

// TrainBackwardRange implements TrainKernel. Per sample the shard row is
// [dW_s (OutC*CKK) | db_s (OutC)]: dW_s = g_s·cols_sᵀ and db_s the spatial row
// sums, via the same kernels and loop orders as the legacy per-sample
// Backward; dL/dx is Wᵀ·g_s scattered back through the shared col2im kernel.
// An empty Shard (a plan compiled without parameter gradients — the O-TP /
// FGSM input-gradient tap) skips the dW/db work entirely.
func (c *Conv2D) TrainBackwardRange(gradIn, gradOut, x, _ *tensor.Tensor, lo, hi int, tc TrainCache) {
	inVol := c.sampleVolume()
	spatial := c.geom.OutH() * c.geom.OutW()
	ckk := c.geom.InC * c.geom.KH * c.geom.KW
	outVol := c.outC * spatial
	cols := tc.Scratch[:ckk*spatial]
	gcol := tc.Scratch[ckk*spatial : 2*ckk*spatial]
	pv := c.outC*ckk + c.outC
	xd, gd, wd := x.Data(), gradOut.Data(), c.weight.Value.Data()
	for s := lo; s < hi; s++ {
		grow := gd[s*outVol : (s+1)*outVol]
		if len(tc.Shard) > 0 {
			tensor.Im2ColInto(cols, xd[s*inVol:(s+1)*inVol], c.geom)
			srow := tc.Shard[s*pv : (s+1)*pv]
			tensor.MatMulTransBSlices(srow[:c.outC*ckk], grow, cols, c.outC, spatial, ckk)
			for oc := 0; oc < c.outC; oc++ {
				row := grow[oc*spatial : (oc+1)*spatial]
				sum := 0.0
				for _, v := range row {
					sum += v
				}
				srow[c.outC*ckk+oc] = sum
			}
		}
		if gradIn != nil {
			tensor.MatMulTransASlices(gcol, wd, grow, c.outC, ckk, spatial)
			tensor.Col2ImInto(gradIn.Data()[s*inVol:(s+1)*inVol], gcol, c.geom)
		}
	}
}

// ---------------------------------------------------------------- MaxPool2D

// TrainDims implements TrainKernel: one argmax int per output element.
func (p *MaxPool2D) TrainDims(int) TrainDims {
	return TrainDims{IntsPerSample: p.geom.InC * p.geom.OutH() * p.geom.OutW()}
}

// TrainForwardRange implements TrainKernel: the inference window sweep, with
// the winning flat batch index of every window recorded into the caller's int
// cache (not the layer's argmax — legacy Forward/Backward stays independent).
func (p *MaxPool2D) TrainForwardRange(out, x *tensor.Tensor, lo, hi int, tc TrainCache) {
	g := p.geom
	inVol := g.InC * g.InH * g.InW
	outH, outW := g.OutH(), g.OutW()
	outVol := g.InC * outH * outW
	tensor.AssertDims("MaxPool2D.TrainForwardRange x", x, tensor.Wildcard, inVol)
	tensor.AssertDims("MaxPool2D.TrainForwardRange dst", out, x.Dim(0), outVol)
	xd, od := x.Data(), out.Data()
	for s := lo; s < hi; s++ {
		sBase := s * inVol
		oBase := s * outVol
		oi := 0
		for c := 0; c < g.InC; c++ {
			chanBase := sBase + c*g.InH*g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := -1
					bestV := 0.0
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							idx := chanBase + ih*g.InW + iw
							if best == -1 || xd[idx] > bestV {
								best, bestV = idx, xd[idx]
							}
						}
					}
					od[oBase+oi] = bestV
					tc.Ints[oBase+oi] = best
					oi++
				}
			}
		}
	}
}

// TrainBackwardRange implements TrainKernel: each output gradient routes to
// the input element that won its window, scattering in ascending output order
// within the sample — the legacy Backward's order restricted to one sample.
func (p *MaxPool2D) TrainBackwardRange(gradIn, gradOut, _, _ *tensor.Tensor, lo, hi int, tc TrainCache) {
	if gradIn == nil {
		return
	}
	g := p.geom
	inVol := g.InC * g.InH * g.InW
	outVol := g.InC * g.OutH() * g.OutW()
	gd, gid := gradOut.Data(), gradIn.Data()
	for s := lo; s < hi; s++ {
		grow := gid[s*inVol : (s+1)*inVol]
		for i := range grow {
			grow[i] = 0
		}
		for oi := s * outVol; oi < (s+1)*outVol; oi++ {
			if idx := tc.Ints[oi]; idx >= 0 {
				gid[idx] += gd[oi]
			}
		}
	}
}

// ---------------------------------------------------------------- AvgPool2D

// TrainDims implements TrainKernel: the spread is recomputed from geometry.
func (p *AvgPool2D) TrainDims(int) TrainDims { return TrainDims{} }

// TrainForwardRange implements TrainKernel via the shared inference kernel.
func (p *AvgPool2D) TrainForwardRange(out, x *tensor.Tensor, lo, hi int, _ TrainCache) {
	p.ForwardBatchRange(out, x, lo, hi, nil)
}

// TrainBackwardRange implements TrainKernel: each output gradient spreads
// uniformly over its window, same loops as the legacy Backward per sample.
func (p *AvgPool2D) TrainBackwardRange(gradIn, gradOut, _, _ *tensor.Tensor, lo, hi int, _ TrainCache) {
	if gradIn == nil {
		return
	}
	g := p.geom
	inVol := g.InC * g.InH * g.InW
	outH, outW := g.OutH(), g.OutW()
	outVol := g.InC * outH * outW
	gd, gid := gradOut.Data(), gradIn.Data()
	winSize := float64(g.KH * g.KW)
	for s := lo; s < hi; s++ {
		row := gid[s*inVol : (s+1)*inVol]
		for i := range row {
			row[i] = 0
		}
		sBase := s * inVol
		oBase := s * outVol
		oi := 0
		for c := 0; c < g.InC; c++ {
			chanBase := sBase + c*g.InH*g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					v := gd[oBase+oi] / winSize
					oi++
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							gid[chanBase+ih*g.InW+iw] += v
						}
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------- activations

// TrainDims implements TrainKernel: the gate is recovered from the output.
func (l *ReLU) TrainDims(int) TrainDims { return TrainDims{} }

// TrainForwardRange implements TrainKernel via the shared inference kernel.
func (l *ReLU) TrainForwardRange(out, x *tensor.Tensor, lo, hi int, _ TrainCache) {
	l.ForwardBatchRange(out, x, lo, hi, nil)
}

// TrainBackwardRange implements TrainKernel: the forward mask x > 0 is
// recovered as out > 0 (out = x exactly where x > 0, and 0 elsewhere), so no
// cache is needed.
func (l *ReLU) TrainBackwardRange(gradIn, gradOut, _, out *tensor.Tensor, lo, hi int, _ TrainCache) {
	if gradIn == nil {
		return
	}
	vol := elementwiseVol("ReLU.TrainBackwardRange gradIn", gradIn, gradOut)
	gd, od, gid := gradOut.Data(), out.Data(), gradIn.Data()
	for i := lo * vol; i < hi*vol; i++ {
		if od[i] > 0 {
			gid[i] = gd[i]
		} else {
			gid[i] = 0
		}
	}
}

// TrainDims implements TrainKernel: 1 - tanh² reads the output workspace.
func (l *Tanh) TrainDims(int) TrainDims { return TrainDims{} }

// TrainForwardRange implements TrainKernel via the shared inference kernel.
func (l *Tanh) TrainForwardRange(out, x *tensor.Tensor, lo, hi int, _ TrainCache) {
	l.ForwardBatchRange(out, x, lo, hi, nil)
}

// TrainBackwardRange implements TrainKernel: g·(1 - y²) with the same
// expression shape as the legacy Backward.
func (l *Tanh) TrainBackwardRange(gradIn, gradOut, _, out *tensor.Tensor, lo, hi int, _ TrainCache) {
	if gradIn == nil {
		return
	}
	vol := elementwiseVol("Tanh.TrainBackwardRange gradIn", gradIn, gradOut)
	gd, yd, gid := gradOut.Data(), out.Data(), gradIn.Data()
	for i := lo * vol; i < hi*vol; i++ {
		gid[i] = gd[i] * (1 - yd[i]*yd[i])
	}
}

// TrainDims implements TrainKernel: y·(1-y) reads the output workspace.
func (l *Sigmoid) TrainDims(int) TrainDims { return TrainDims{} }

// TrainForwardRange implements TrainKernel via the shared inference kernel.
func (l *Sigmoid) TrainForwardRange(out, x *tensor.Tensor, lo, hi int, _ TrainCache) {
	l.ForwardBatchRange(out, x, lo, hi, nil)
}

// TrainBackwardRange implements TrainKernel: g·y·(1-y), legacy expression
// shape.
func (l *Sigmoid) TrainBackwardRange(gradIn, gradOut, _, out *tensor.Tensor, lo, hi int, _ TrainCache) {
	if gradIn == nil {
		return
	}
	vol := elementwiseVol("Sigmoid.TrainBackwardRange gradIn", gradIn, gradOut)
	gd, yd, gid := gradOut.Data(), out.Data(), gradIn.Data()
	for i := lo * vol; i < hi*vol; i++ {
		gid[i] = gd[i] * (yd[i] * (1 - yd[i]))
	}
}

// ---------------------------------------------------------------- Dropout

// TrainDims implements TrainKernel (active dropout only — the engine elides
// inactive dropout via TrainPassthrough): one mask float per element.
func (l *Dropout) TrainDims(inVol int) TrainDims {
	return TrainDims{FloatsPerSample: inVol}
}

// TrainPrepass implements TrainPrepass: the Bernoulli mask draws must consume
// the layer's RNG stream in row-major batch order — exactly the order the
// legacy Forward draws — so it runs serially before the ranges fan out.
func (l *Dropout) TrainPrepass(_ int, c TrainCache) {
	keep := 1 - l.p
	for i := range c.Floats {
		if l.r.Bernoulli(l.p) {
			c.Floats[i] = 0
		} else {
			c.Floats[i] = 1 / keep
		}
	}
}

// TrainForwardRange implements TrainKernel: dropped positions are set to 0
// outright (not multiplied) to match the legacy Forward bit for bit.
func (l *Dropout) TrainForwardRange(out, x *tensor.Tensor, lo, hi int, c TrainCache) {
	vol := elementwiseVol("Dropout.TrainForwardRange dst", out, x)
	xd, od := x.Data(), out.Data()
	for i := lo * vol; i < hi*vol; i++ {
		if m := c.Floats[i]; m == 0 {
			od[i] = 0
		} else {
			od[i] = xd[i] * m
		}
	}
}

// TrainBackwardRange implements TrainKernel: the gradient multiplies the mask
// unconditionally, like the legacy Backward.
func (l *Dropout) TrainBackwardRange(gradIn, gradOut, _, _ *tensor.Tensor, lo, hi int, c TrainCache) {
	if gradIn == nil {
		return
	}
	vol := elementwiseVol("Dropout.TrainBackwardRange gradIn", gradIn, gradOut)
	gd, gid := gradOut.Data(), gradIn.Data()
	for i := lo * vol; i < hi*vol; i++ {
		gid[i] = gd[i] * c.Floats[i]
	}
}

// ---------------------------------------------------------------- losses

// CrossEntropyInto is the destination-passing CrossEntropy: it writes the
// logit gradient (softmax(z) - onehot(y)) / N into grad, reusing grad's
// storage, and returns the mean loss. Same softmax row kernel and mutation
// loop as CrossEntropy, so results are bit-identical with zero allocations.
func CrossEntropyInto(grad, logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	if len(labels) != n {
		panic("nn: CrossEntropyInto label count does not match batch")
	}
	k := logits.Len() / n
	tensor.AssertDims("nn.CrossEntropyInto grad", grad, n, k)
	pd := grad.Data()
	copy(pd, logits.Data())
	SoftmaxInPlace(grad)
	loss := 0.0
	inv := 1 / float64(n)
	for s, y := range labels {
		if y < 0 || y >= k {
			panic("nn: CrossEntropyInto label out of range")
		}
		p := pd[s*k+y]
		loss -= math.Log(math.Max(p, 1e-300))
		row := pd[s*k : (s+1)*k]
		for j := range row {
			row[j] *= inv
		}
		row[y] -= inv
	}
	return loss * inv
}

// SoftCrossEntropyInto is the destination-passing SoftCrossEntropy: it writes
// (softmax(z) - target) / N into grad and returns the mean loss, bit-identical
// to SoftCrossEntropy with zero allocations.
func SoftCrossEntropyInto(grad, logits, target *tensor.Tensor) float64 {
	if logits.Len() != target.Len() || grad.Len() != logits.Len() {
		panic("nn: SoftCrossEntropyInto shape mismatch")
	}
	n := logits.Dim(0)
	k := logits.Len() / n
	tensor.AssertDims("nn.SoftCrossEntropyInto grad", grad, n, k)
	pd, td := grad.Data(), target.Data()
	copy(pd, logits.Data())
	SoftmaxInPlace(grad)
	loss := 0.0
	inv := 1 / float64(n)
	for i, p := range pd {
		loss -= td[i] * math.Log(math.Max(p, 1e-300))
		pd[i] = (p - td[i]) * inv
	}
	return loss * inv
}
