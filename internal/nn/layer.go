// Package nn implements the neural-network substrate the paper's methods run
// on: layer-wise forward/backward propagation with gradients available both
// for the weights (training) and for the input (FGSM adversarial examples and
// the O-TP pattern-generation algorithm both differentiate the loss with
// respect to the input image).
//
// All layers operate on batched tensors whose leading axis is the batch
// dimension: images are (N, C*H*W) flattened row-major, feature vectors are
// (N, D). Layers are single-goroutine objects; clone the network to run
// concurrent inferences.
package nn

import (
	"reramtest/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// newParam allocates a parameter with a zeroed gradient of matching shape.
func newParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// clone deep-copies the parameter (gradients start zeroed).
func (p *Param) clone() *Param {
	return newParam(p.Name, p.Value.Clone())
}

// Layer is one differentiable stage of a network.
//
// Forward consumes a batch and returns the batch of outputs. Backward
// consumes dL/d(output) for the most recent Forward call and returns
// dL/d(input), accumulating parameter gradients into Params().Grad along the
// way. Layers cache whatever they need between Forward and Backward, so a
// Backward call must always be paired with the immediately preceding Forward.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	Params() []*Param
	Clone() Layer
	// OutputShape returns the per-sample output shape given the per-sample
	// input shape, without running data through the layer.
	OutputShape(in []int) []int
}

// trainable is implemented by layers whose behaviour differs between training
// and inference (e.g. Dropout).
type trainable interface {
	SetTraining(on bool)
}
