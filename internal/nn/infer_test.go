package nn

import (
	"testing"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// TestFlattenForwardIsView: the reshape-only layer must not copy — its output
// shares the input's storage.
func TestFlattenForwardIsView(t *testing.T) {
	f := NewFlatten("f")
	x := tensor.RandUniform(rng.New(1), 0, 1, 3, 8)
	y := f.Forward(x)
	if y.Dim(0) != 3 || y.Dim(1) != 8 {
		t.Fatalf("Forward shape %v", y.Shape())
	}
	x.Data()[0] = 42
	if y.Data()[0] != 42 {
		t.Fatal("Flatten.Forward copied instead of returning a view")
	}
	g := f.Backward(y)
	y.Data()[1] = 7
	if g.Data()[1] != 7 {
		t.Fatal("Flatten.Backward copied instead of returning a view")
	}
}

// TestFlattenBackpropStillTrains: regression for the view-returning Flatten —
// a conv→flatten→dense stack must still train (gradients flow through the
// aliased tensors and a step reduces the loss).
func TestFlattenBackpropStillTrains(t *testing.T) {
	r := rng.New(2)
	g := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	net := NewNetwork("flat", 36,
		NewConv2D("c", r, g, 2),
		NewReLU("r1"),
		NewFlatten("f"),
		NewDense("fc", r, 2*4*4, 3),
	)
	x := tensor.RandUniform(r, 0, 1, 8, 36)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}

	step := func() float64 {
		net.ZeroGrad()
		logits := net.Forward(x)
		loss, grad := CrossEntropy(logits, labels)
		net.Backward(grad)
		for _, p := range net.Params() {
			p.Value.AxpyInPlace(-0.1, p.Grad)
		}
		return loss
	}
	first := step()
	var last float64
	for i := 0; i < 20; i++ {
		last = step()
	}
	if !(last < first) {
		t.Fatalf("loss did not decrease through Flatten: first=%v last=%v", first, last)
	}
	// gradient must actually reach the conv layer below the flatten
	net.ZeroGrad()
	logits := net.Forward(x)
	_, grad := CrossEntropy(logits, labels)
	net.Backward(grad)
	if net.Layers()[0].Params()[0].Grad.L2Norm() == 0 {
		t.Fatal("no gradient reached the layer below Flatten")
	}
}

// TestSoftmaxInPlaceMatchesSoftmax: same kernel, bit-identical output.
func TestSoftmaxInPlaceMatchesSoftmax(t *testing.T) {
	r := rng.New(3)
	logits := tensor.Randn(r, 0, 3, 5, 7)
	want := Softmax(logits)
	got := logits.Clone()
	SoftmaxInPlace(got)
	if !got.Equal(want) {
		t.Fatal("SoftmaxInPlace differs from Softmax")
	}
}

// TestForwardBatchRangeMatchesForward: every BatchInfer layer must reproduce
// its Forward output bit-exactly, both over the full batch and assembled from
// partial row ranges.
func TestForwardBatchRangeMatchesForward(t *testing.T) {
	r := rng.New(4)
	convGeom := tensor.ConvGeom{InC: 2, InH: 7, InW: 7, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	poolGeom := tensor.ConvGeom{InC: 2, InH: 7, InW: 7, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	cases := []struct {
		name  string
		layer Layer
		inVol int
	}{
		{"dense", NewDense("d", r, 13, 9), 13},
		{"conv", NewConv2D("c", r, convGeom, 4), 2 * 7 * 7},
		{"maxpool", NewMaxPool2D("mp", poolGeom), 2 * 7 * 7},
		{"avgpool", NewAvgPool2D("ap", poolGeom), 2 * 7 * 7},
		{"relu", NewReLU("r"), 11},
		{"tanh", NewTanh("t"), 11},
		{"sigmoid", NewSigmoid("s"), 11},
	}
	const n = 5
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bl, ok := tc.layer.(BatchInfer)
			if !ok {
				t.Fatalf("%T does not implement BatchInfer", tc.layer)
			}
			x := tensor.Randn(rng.New(9), 0, 1, n, tc.inVol)
			want := tc.layer.Forward(x)
			outVol := want.Len() / n
			scratch := make([]float64, bl.InferScratch())
			full := tensor.New(n, outVol)
			bl.ForwardBatchRange(full, x, 0, n, scratch)
			if !full.Equal(want.Reshape(n, outVol)) {
				t.Fatal("full-range ForwardBatchRange differs from Forward")
			}
			ranged := tensor.New(n, outVol)
			bl.ForwardBatchRange(ranged, x, 0, 2, scratch)
			bl.ForwardBatchRange(ranged, x, 2, n, scratch)
			if !ranged.Equal(full) {
				t.Fatal("assembled row ranges differ from full range")
			}
		})
	}
}

// TestPassthroughMarkers: the layers the engine elides must say so.
func TestPassthroughMarkers(t *testing.T) {
	if !NewFlatten("f").InferencePassthrough() {
		t.Fatal("Flatten must be an inference passthrough")
	}
	if !NewDropout("d", rng.New(1), 0.5).InferencePassthrough() {
		t.Fatal("Dropout must be an inference passthrough")
	}
}
