package nn

import (
	"fmt"
	"math"
	"strings"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// Network is an ordered stack of layers ending in logits. Forward returns
// raw (pre-softmax) class scores — the paper's Z(X) — because both the C-TP
// selector (logit standard deviation) and the detection metrics operate on
// logits/confidences directly.
type Network struct {
	name   string
	layers []Layer
	inDim  int // per-sample flattened input size
}

// NewNetwork builds a network over the given layers. inDim is the flattened
// per-sample input size (e.g. 784 for 28×28 grayscale).
func NewNetwork(name string, inDim int, layers ...Layer) *Network {
	if inDim <= 0 {
		panic(fmt.Sprintf("nn: network %q needs positive input dim, got %d", name, inDim))
	}
	return &Network{name: name, layers: layers, inDim: inDim}
}

// Name returns the network name.
func (n *Network) Name() string { return n.name }

// InDim returns the flattened per-sample input size.
func (n *Network) InDim() int { return n.inDim }

// Layers returns the layer stack (do not mutate).
func (n *Network) Layers() []Layer { return n.layers }

// Params returns every trainable parameter in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Len()
	}
	return total
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// SetTraining switches training-only behaviour (dropout) on or off.
func (n *Network) SetTraining(on bool) {
	for _, l := range n.layers {
		if t, ok := l.(trainable); ok {
			t.SetTraining(on)
		}
	}
}

// Clone deep-copies the network: independent weights, zeroed gradients, no
// shared caches. Fault models are clones of the clean model with an injector
// applied to the clone's parameters.
func (n *Network) Clone() *Network {
	ls := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		ls[i] = l.Clone()
	}
	return &Network{name: n.name, layers: ls, inDim: n.inDim}
}

// Forward runs a (N, inDim) batch through the stack and returns logits.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != n.inDim {
		panic(fmt.Sprintf("nn: network %q expects (N, %d) input, got %v", n.name, n.inDim, x.Shape()))
	}
	cur := x
	for _, l := range n.layers {
		cur = l.Forward(cur)
	}
	return cur
}

// Backward back-propagates dL/d(logits) through the stack, accumulating
// parameter gradients, and returns dL/d(input) — the input gradient used by
// FGSM and the O-TP generator.
func (n *Network) Backward(gradLogits *tensor.Tensor) *tensor.Tensor {
	cur := gradLogits
	for i := len(n.layers) - 1; i >= 0; i-- {
		cur = n.layers[i].Backward(cur)
	}
	return cur
}

// Predict returns the argmax class for each sample in the batch.
func (n *Network) Predict(x *tensor.Tensor) []int {
	logits := n.Forward(x)
	nb := logits.Dim(0)
	k := logits.Len() / nb
	ld := logits.Data()
	out := make([]int, nb)
	for s := 0; s < nb; s++ {
		row := ld[s*k : (s+1)*k]
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[s] = bi
	}
	return out
}

// Accuracy evaluates top-1 accuracy of the network on inputs x with integer
// labels y, processing in batches of batchSize.
func (n *Network) Accuracy(x *tensor.Tensor, y []int, batchSize int) float64 {
	nb := x.Dim(0)
	if nb == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	correct := 0
	for s := 0; s < nb; s += batchSize {
		e := s + batchSize
		if e > nb {
			e = nb
		}
		batch := tensor.FromSlice(x.Data()[s*n.inDim:e*n.inDim], e-s, n.inDim)
		for i, p := range n.Predict(batch) {
			if p == y[s+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(nb)
}

// Summary renders a human-readable architecture table.
func (n *Network) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (input %d)\n", n.name, n.inDim)
	for _, l := range n.layers {
		np := 0
		for _, p := range l.Params() {
			np += p.Value.Len()
		}
		fmt.Fprintf(&b, "  %-24s params=%d\n", l.Name(), np)
	}
	fmt.Fprintf(&b, "  total params: %d\n", n.NumParams())
	return b.String()
}

// heInit draws a weight tensor of the given shape from N(0, sqrt(2/fanIn)),
// the standard initialisation for ReLU stacks.
func heInit(r *rng.RNG, fanIn int, shape ...int) *tensor.Tensor {
	std := math.Sqrt(2 / float64(fanIn))
	return tensor.Randn(r, 0, std, shape...)
}
