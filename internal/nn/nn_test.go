package nn

import (
	"math"
	"testing"
	"testing/quick"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		logits := tensor.Randn(rng.New(seed), 0, 5, 3, 7)
		probs := Softmax(logits)
		pd := probs.Data()
		for s := 0; s < 3; s++ {
			sum := 0.0
			for j := 0; j < 7; j++ {
				v := pd[s*7+j]
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	r := rng.New(1)
	logits := tensor.Randn(r, 0, 1, 2, 5)
	shifted := logits.Map(func(v float64) float64 { return v + 100 })
	if !Softmax(logits).AllClose(Softmax(shifted), 1e-12) {
		t.Fatal("softmax not invariant to constant shifts")
	}
}

func TestSoftmaxLargeLogitsStable(t *testing.T) {
	logits := tensor.FromSlice([]float64{1e4, 1e4 - 1, 0}, 1, 3)
	probs := Softmax(logits)
	for _, v := range probs.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", probs.Data())
		}
	}
	if probs.Data()[0] < probs.Data()[1] {
		t.Fatal("softmax ordering broken")
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	// logits strongly favouring the right class → near-zero loss
	logits := tensor.FromSlice([]float64{100, 0, 0}, 1, 3)
	loss, _ := CrossEntropy(logits, []int{0})
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction has loss %v", loss)
	}
}

func TestCrossEntropyUniformPrediction(t *testing.T) {
	logits := tensor.New(1, 4) // all-equal logits → uniform probs
	loss, _ := CrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform loss %v, want ln(4)=%v", loss, math.Log(4))
	}
}

func TestCrossEntropyLabelRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label did not panic")
		}
	}()
	CrossEntropy(tensor.New(1, 3), []int{3})
}

func TestOneHot(t *testing.T) {
	oh := OneHot([]int{2, 0}, 3)
	want := []float64{0, 0, 1, 1, 0, 0}
	for i, v := range oh.Data() {
		if v != want[i] {
			t.Fatalf("OneHot got %v", oh.Data())
		}
	}
}

func TestUniformLabels(t *testing.T) {
	u := UniformLabels(2, 5)
	for _, v := range u.Data() {
		if v != 0.2 {
			t.Fatalf("UniformLabels got %v", u.Data())
		}
	}
}

func TestNetworkCloneIndependence(t *testing.T) {
	r := rng.New(3)
	net := NewNetwork("n", 4, NewDense("fc", r, 4, 2))
	clone := net.Clone()
	clone.Params()[0].Value.Fill(0)
	if net.Params()[0].Value.Sum() == 0 {
		t.Fatal("clone shares weight storage with original")
	}
	x := tensor.Randn(r, 0, 1, 1, 4)
	a := net.Forward(x)
	b := clone.Forward(x)
	if a.AllClose(b, 1e-9) {
		t.Fatal("zeroed clone still produces original outputs")
	}
}

func TestNetworkPredictMatchesArgmax(t *testing.T) {
	r := rng.New(4)
	net := NewNetwork("n", 6, NewDense("fc", r, 6, 3))
	x := tensor.Randn(r, 0, 1, 5, 6)
	logits := net.Forward(x)
	preds := net.Predict(x)
	for s := 0; s < 5; s++ {
		row := tensor.FromSlice(logits.Data()[s*3:(s+1)*3], 3)
		if preds[s] != row.ArgMax() {
			t.Fatalf("Predict[%d]=%d, argmax=%d", s, preds[s], row.ArgMax())
		}
	}
}

func TestNetworkAccuracy(t *testing.T) {
	// identity-ish network: logits = x, so argmax of x decides
	r := rng.New(5)
	net := NewNetwork("n", 3, NewFlatten("f"))
	_ = r
	x := tensor.FromSlice([]float64{
		1, 0, 0,
		0, 0, 1,
		0, 1, 0,
	}, 3, 3)
	if acc := net.Accuracy(x, []int{0, 2, 1}, 2); acc != 1 {
		t.Fatalf("accuracy %v, want 1", acc)
	}
	if acc := net.Accuracy(x, []int{1, 2, 1}, 2); math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("accuracy %v, want 2/3", acc)
	}
}

func TestZeroGrad(t *testing.T) {
	r := rng.New(6)
	net := NewNetwork("n", 4, NewDense("fc", r, 4, 2))
	x := tensor.Randn(r, 0, 1, 2, 4)
	_, grad := CrossEntropy(net.Forward(x), []int{0, 1})
	net.Backward(grad)
	if net.Params()[0].Grad.L2Norm() == 0 {
		t.Fatal("backward accumulated no gradient")
	}
	net.ZeroGrad()
	for _, p := range net.Params() {
		if p.Grad.L2Norm() != 0 {
			t.Fatalf("ZeroGrad left %s non-zero", p.Name)
		}
	}
}

func TestDropoutTrainingVsInference(t *testing.T) {
	r := rng.New(7)
	l := NewDropout("do", r, 0.5)
	x := tensor.Ones(1, 1000)

	// inference: identity
	out := l.Forward(x)
	if !out.Equal(x) {
		t.Fatal("inference dropout is not identity")
	}

	// training: ≈half dropped, survivors scaled by 2
	l.SetTraining(true)
	out = l.Forward(x)
	zeros, twos := 0, 0
	for _, v := range out.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("dropout output %v, want 0 or 2", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout kept %d of 1000 at p=0.5", 1000-zeros)
	}
	// inverted scaling keeps the expectation ≈1
	if mean := out.Mean(); math.Abs(mean-1) > 0.1 {
		t.Fatalf("dropout mean %v, want ≈1", mean)
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	r := rng.New(8)
	l := NewDropout("do", r, 0.5)
	l.SetTraining(true)
	x := tensor.Ones(1, 100)
	out := l.Forward(x)
	grad := l.Backward(tensor.Ones(1, 100))
	for i, v := range out.Data() {
		if (v == 0) != (grad.Data()[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	g := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	l := NewMaxPool2D("p", g)
	x := tensor.FromSlice([]float64{1, 7, 3, 5}, 1, 4)
	out := l.Forward(x)
	if out.Len() != 1 || out.Data()[0] != 7 {
		t.Fatalf("maxpool got %v", out.Data())
	}
	grad := l.Backward(tensor.Ones(1, 1))
	want := []float64{0, 1, 0, 0}
	for i, v := range grad.Data() {
		if v != want[i] {
			t.Fatalf("maxpool grad %v", grad.Data())
		}
	}
}

func TestAvgPoolKnownValues(t *testing.T) {
	g := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	l := NewAvgPool2D("p", g)
	x := tensor.FromSlice([]float64{1, 7, 3, 5}, 1, 4)
	out := l.Forward(x)
	if out.Data()[0] != 4 {
		t.Fatalf("avgpool got %v", out.Data())
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1×1 kernel with weight 2, bias 1: output = 2x + 1
	r := rng.New(9)
	g := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	l := NewConv2D("c", r, g, 1)
	l.Params()[0].Value.Fill(2)
	l.Params()[1].Value.Fill(1)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	out := l.Forward(x)
	want := []float64{3, 5, 7, 9}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("conv got %v", out.Data())
		}
	}
}

func TestOutputShapes(t *testing.T) {
	r := rng.New(10)
	g := tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	conv := NewConv2D("c", r, g, 16)
	if s := conv.OutputShape(nil); s[0] != 16 || s[1] != 32 || s[2] != 32 {
		t.Fatalf("conv OutputShape %v", s)
	}
	d := NewDense("d", r, 100, 10)
	if s := d.OutputShape(nil); s[0] != 10 {
		t.Fatalf("dense OutputShape %v", s)
	}
	f := NewFlatten("f")
	if s := f.OutputShape([]int{4, 5, 6}); s[0] != 120 {
		t.Fatalf("flatten OutputShape %v", s)
	}
}

func TestNumParams(t *testing.T) {
	r := rng.New(11)
	net := NewNetwork("n", 4, NewDense("fc1", r, 4, 3), NewReLU("r"), NewDense("fc2", r, 3, 2))
	want := 4*3 + 3 + 3*2 + 2
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams=%d, want %d", got, want)
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	r := rng.New(12)
	l := NewDense("fc", r, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward before Forward did not panic")
		}
	}()
	l.Backward(tensor.New(1, 2))
}

func TestForwardWrongWidthPanics(t *testing.T) {
	r := rng.New(13)
	net := NewNetwork("n", 4, NewDense("fc", r, 4, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input width did not panic")
		}
	}()
	net.Forward(tensor.New(1, 5))
}

// TestBatchInvariance: running samples through a network one at a time must
// produce exactly the rows of the batched forward pass — pooling, conv and
// dense layers must not leak state across batch lanes.
func TestBatchInvariance(t *testing.T) {
	r := rng.New(20)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	pool := tensor.ConvGeom{InC: 3, InH: 8, InW: 8, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	net := NewNetwork("bi", 64,
		NewConv2D("c1", r, g, 3),
		NewReLU("r1"),
		NewMaxPool2D("p1", pool),
		NewFlatten("f"),
		NewDense("fc", r, 3*16, 5),
	)
	batch := tensor.RandUniform(r, 0, 1, 4, 64)
	whole := net.Forward(batch)
	for s := 0; s < 4; s++ {
		single := tensor.FromSlice(batch.Data()[s*64:(s+1)*64], 1, 64)
		got := net.Forward(single)
		want := tensor.FromSlice(whole.Data()[s*5:(s+1)*5], 1, 5)
		if !got.AllClose(want, 1e-12) {
			t.Fatalf("sample %d differs between batched and single forward", s)
		}
	}
}

// TestGradientAccumulation: two backward passes without ZeroGrad must sum
// gradients (the contract optimizers rely on for gradient accumulation).
func TestGradientAccumulation(t *testing.T) {
	r := rng.New(21)
	net := NewNetwork("acc", 6, NewDense("fc", r, 6, 3))
	x := tensor.RandUniform(r, 0, 1, 2, 6)
	y := []int{0, 2}

	_, g1 := CrossEntropy(net.Forward(x), y)
	net.ZeroGrad()
	net.Backward(g1)
	once := net.Params()[0].Grad.Clone()

	_, g2 := CrossEntropy(net.Forward(x), y)
	net.Backward(g2) // no ZeroGrad: accumulate
	twice := net.Params()[0].Grad
	if !twice.AllClose(once.Scale(2), 1e-12) {
		t.Fatal("gradients did not accumulate additively")
	}
}

// TestSoftmaxPreservesOrdering: softmax must be strictly monotone in logits.
func TestSoftmaxPreservesOrdering(t *testing.T) {
	r := rng.New(22)
	logits := tensor.Randn(r, 0, 2, 1, 8)
	probs := Softmax(logits)
	ld, pd := logits.Data(), probs.Data()
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if (ld[i] > ld[j]) != (pd[i] > pd[j]) {
				t.Fatalf("softmax broke ordering between %d and %d", i, j)
			}
		}
	}
}
