package nn

import (
	"math"
	"testing"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// numericalGrad estimates d(loss)/d(x[i]) by central differences, where loss
// is recomputed from scratch through f.
func numericalGrad(f func() float64, x []float64, i int) float64 {
	const h = 1e-6
	orig := x[i]
	x[i] = orig + h
	lp := f()
	x[i] = orig - h
	lm := f()
	x[i] = orig
	return (lp - lm) / (2 * h)
}

// checkLayerGradients validates both parameter and input gradients of a
// layer against finite differences, using sum-of-squares of the output as
// the scalar loss (gradient = 2·output).
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	loss := func() float64 {
		out := layer.Forward(x)
		s := 0.0
		for _, v := range out.Data() {
			s += v * v
		}
		return s
	}
	// analytic gradients
	out := layer.Forward(x)
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	gradIn := layer.Backward(out.Scale(2))

	// input gradient spot checks (a spread of indices)
	xd := x.Data()
	for _, i := range spotIndices(len(xd)) {
		want := numericalGrad(loss, xd, i)
		got := gradIn.Data()[i]
		if math.Abs(want-got) > tol*(1+math.Abs(want)) {
			t.Errorf("%s input grad[%d]: analytic %v vs numeric %v", layer.Name(), i, got, want)
		}
	}
	// parameter gradient spot checks
	for _, p := range layer.Params() {
		pd := p.Value.Data()
		for _, i := range spotIndices(len(pd)) {
			want := numericalGrad(loss, pd, i)
			got := p.Grad.Data()[i]
			if math.Abs(want-got) > tol*(1+math.Abs(want)) {
				t.Errorf("%s param %s grad[%d]: analytic %v vs numeric %v", layer.Name(), p.Name, i, got, want)
			}
		}
	}
}

// spotIndices picks a deterministic spread of indices to finite-difference.
func spotIndices(n int) []int {
	if n <= 8 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return []int{0, 1, n / 5, n / 3, n / 2, 2 * n / 3, 4 * n / 5, n - 1}
}

func TestDenseGradients(t *testing.T) {
	r := rng.New(1)
	l := NewDense("fc", r, 6, 4)
	x := tensor.Randn(r, 0, 1, 3, 6)
	checkLayerGradients(t, l, x, 1e-5)
}

func TestConv2DGradients(t *testing.T) {
	r := rng.New(2)
	g := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	l := NewConv2D("conv", r, g, 3)
	x := tensor.Randn(r, 0, 1, 2, 2*5*5)
	checkLayerGradients(t, l, x, 1e-5)
}

func TestConv2DStridedGradients(t *testing.T) {
	r := rng.New(3)
	g := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	l := NewConv2D("conv", r, g, 2)
	x := tensor.Randn(r, 0, 1, 2, 36)
	checkLayerGradients(t, l, x, 1e-5)
}

func TestMaxPoolGradients(t *testing.T) {
	r := rng.New(4)
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	l := NewMaxPool2D("pool", g)
	// well-separated values so the argmax never flips under the h perturbation
	x := tensor.RandUniform(r, 0, 100, 2, 32)
	checkLayerGradients(t, l, x, 1e-4)
}

func TestAvgPoolGradients(t *testing.T) {
	r := rng.New(5)
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	l := NewAvgPool2D("pool", g)
	x := tensor.Randn(r, 0, 1, 2, 16)
	checkLayerGradients(t, l, x, 1e-5)
}

func TestActivationGradients(t *testing.T) {
	r := rng.New(6)
	for _, l := range []Layer{NewTanh("tanh"), NewSigmoid("sig")} {
		x := tensor.Randn(r, 0, 1, 2, 10)
		checkLayerGradients(t, l, x, 1e-5)
	}
	// ReLU: keep values away from the kink
	x := tensor.RandUniform(r, 0.5, 2, 2, 10)
	neg := tensor.RandUniform(r, -2, -0.5, 2, 10)
	checkLayerGradients(t, NewReLU("relu"), x, 1e-5)
	checkLayerGradients(t, NewReLU("relu"), neg, 1e-5)
}

func TestNetworkInputGradient(t *testing.T) {
	// end-to-end input gradient through conv→relu→pool→dense vs numeric
	r := rng.New(7)
	g := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	pool := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	net := NewNetwork("tiny", 36,
		NewConv2D("c1", r, g, 2),
		NewTanh("t1"),
		NewMaxPool2D("p1", pool),
		NewDense("fc", r, 8, 3),
	)
	x := tensor.RandUniform(r, 0.1, 0.9, 1, 36)
	labels := []int{1}

	loss := func() float64 {
		l, _ := CrossEntropy(net.Forward(x), labels)
		return l
	}
	logits := net.Forward(x)
	_, grad := CrossEntropy(logits, labels)
	net.ZeroGrad()
	gin := net.Backward(grad)
	xd := x.Data()
	for _, i := range spotIndices(len(xd)) {
		want := numericalGrad(loss, xd, i)
		got := gin.Data()[i]
		if math.Abs(want-got) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("network input grad[%d]: analytic %v vs numeric %v", i, got, want)
		}
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	r := rng.New(8)
	logits := tensor.Randn(r, 0, 1, 2, 5)
	labels := []int{3, 0}
	loss := func() float64 {
		l, _ := CrossEntropy(logits.Clone(), labels)
		return l
	}
	_, grad := CrossEntropy(logits.Clone(), labels)
	ld := logits.Data()
	for _, i := range spotIndices(len(ld)) {
		want := numericalGrad(loss, ld, i)
		if got := grad.Data()[i]; math.Abs(want-got) > 1e-6 {
			t.Errorf("CE grad[%d]: analytic %v vs numeric %v", i, got, want)
		}
	}
}

func TestSoftCrossEntropyGradient(t *testing.T) {
	r := rng.New(9)
	logits := tensor.Randn(r, 0, 1, 2, 4)
	target := Softmax(tensor.Randn(r, 0, 1, 2, 4))
	loss := func() float64 {
		l, _ := SoftCrossEntropy(logits.Clone(), target)
		return l
	}
	_, grad := SoftCrossEntropy(logits.Clone(), target)
	ld := logits.Data()
	for _, i := range spotIndices(len(ld)) {
		want := numericalGrad(loss, ld, i)
		if got := grad.Data()[i]; math.Abs(want-got) > 1e-6 {
			t.Errorf("softCE grad[%d]: analytic %v vs numeric %v", i, got, want)
		}
	}
}

func TestMSEGradient(t *testing.T) {
	r := rng.New(10)
	pred := tensor.Randn(r, 0, 1, 2, 3)
	target := tensor.Randn(r, 0, 1, 2, 3)
	loss := func() float64 {
		l, _ := MSE(pred, target)
		return l
	}
	_, grad := MSE(pred, target)
	pd := pred.Data()
	for i := range pd {
		want := numericalGrad(loss, pd, i)
		if got := grad.Data()[i]; math.Abs(want-got) > 1e-6 {
			t.Errorf("MSE grad[%d]: analytic %v vs numeric %v", i, got, want)
		}
	}
}
