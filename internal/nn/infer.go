package nn

import (
	"math"

	"reramtest/internal/tensor"
)

// BatchInfer is the inference-only fast path a layer exposes to the batch
// execution engine. ForwardBatchRange writes output rows [lo, hi) of the
// layer's forward pass into dst (N, outVol), reading rows [lo, hi) of
// x (N, inVol). scratch must hold InferScratch() float64s and is private to
// the call, so disjoint ranges with separate scratch may run concurrently.
//
// Contract: ForwardBatchRange must be bit-identical to Forward on the same
// rows — same kernels, same per-sample loop and summation order — and must
// not touch the training caches (no argmax, no masks, no lastIn), so it never
// pairs with Backward. Layers whose inference pass is the identity implement
// InferencePassthrough instead.
type BatchInfer interface {
	ForwardBatchRange(dst, x *tensor.Tensor, lo, hi int, scratch []float64)
	// InferScratch returns the per-call scratch requirement in float64s.
	InferScratch() int
}

// InferencePassthrough marks layers that are the identity at inference time
// (Flatten always, Dropout outside training). The engine elides them from
// the compiled plan entirely.
type InferencePassthrough interface {
	InferencePassthrough() bool
}

// InferencePassthrough implements the marker: flatten never moves data.
func (l *Flatten) InferencePassthrough() bool { return true }

// InferencePassthrough implements the marker: the engine is inference-only,
// where dropout is the identity regardless of the training flag.
func (l *Dropout) InferencePassthrough() bool { return true }

// ForwardBatchRange implements BatchInfer: y = x·W + b for rows [lo, hi),
// via the same MatMulSlices kernel and per-row bias loop as Forward.
func (d *Dense) ForwardBatchRange(dst, x *tensor.Tensor, lo, hi int, _ []float64) {
	tensor.AssertDims("Dense.ForwardBatchRange x", x, tensor.Wildcard, d.in)
	tensor.AssertDims("Dense.ForwardBatchRange dst", dst, x.Dim(0), d.out)
	tensor.MatMulRowsInto(dst, x, d.weight.Value, lo, hi)
	od, bd := dst.Data(), d.bias.Value.Data()
	for s := lo; s < hi; s++ {
		row := od[s*d.out : (s+1)*d.out]
		for j := range row {
			row[j] += bd[j]
		}
	}
}

// InferScratch implements BatchInfer: dense layers need no scratch.
func (d *Dense) InferScratch() int { return 0 }

// ForwardBatchRange implements BatchInfer: im2col + matmul per sample for
// rows [lo, hi). scratch holds one (InC*KH*KW, OutH*OutW) column matrix; the
// expansion and multiply run through the same Im2ColInto/MatMulSlices kernels
// as Forward, so outputs are bit-identical.
func (c *Conv2D) ForwardBatchRange(dst, x *tensor.Tensor, lo, hi int, scratch []float64) {
	inVol := c.sampleVolume()
	spatial := c.geom.OutH() * c.geom.OutW()
	ckk := c.geom.InC * c.geom.KH * c.geom.KW
	outVol := c.outC * spatial
	tensor.AssertDims("Conv2D.ForwardBatchRange x", x, tensor.Wildcard, inVol)
	tensor.AssertDims("Conv2D.ForwardBatchRange dst", dst, x.Dim(0), outVol)
	if len(scratch) < ckk*spatial {
		panic("nn: Conv2D.ForwardBatchRange scratch too small")
	}
	cols := scratch[:ckk*spatial]
	xd, od, wd, bd := x.Data(), dst.Data(), c.weight.Value.Data(), c.bias.Value.Data()
	for s := lo; s < hi; s++ {
		tensor.Im2ColInto(cols, xd[s*inVol:(s+1)*inVol], c.geom)
		out := od[s*outVol : (s+1)*outVol]
		tensor.MatMulSlices(out, wd, cols, c.outC, ckk, spatial)
		for oc := 0; oc < c.outC; oc++ {
			b := bd[oc]
			row := out[oc*spatial : (oc+1)*spatial]
			for i := range row {
				row[i] += b
			}
		}
	}
}

// InferScratch implements BatchInfer: one im2col column matrix.
func (c *Conv2D) InferScratch() int {
	return c.geom.InC * c.geom.KH * c.geom.KW * c.geom.OutH() * c.geom.OutW()
}

// ForwardBatchRange implements BatchInfer: the Forward window sweep without
// the argmax cache.
func (p *MaxPool2D) ForwardBatchRange(dst, x *tensor.Tensor, lo, hi int, _ []float64) {
	g := p.geom
	inVol := g.InC * g.InH * g.InW
	outH, outW := g.OutH(), g.OutW()
	outVol := g.InC * outH * outW
	tensor.AssertDims("MaxPool2D.ForwardBatchRange x", x, tensor.Wildcard, inVol)
	tensor.AssertDims("MaxPool2D.ForwardBatchRange dst", dst, x.Dim(0), outVol)
	xd, od := x.Data(), dst.Data()
	for s := lo; s < hi; s++ {
		sBase := s * inVol
		oBase := s * outVol
		oi := 0
		for c := 0; c < g.InC; c++ {
			chanBase := sBase + c*g.InH*g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := -1
					bestV := 0.0
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							idx := chanBase + ih*g.InW + iw
							if best == -1 || xd[idx] > bestV {
								best, bestV = idx, xd[idx]
							}
						}
					}
					od[oBase+oi] = bestV
					oi++
				}
			}
		}
	}
}

// InferScratch implements BatchInfer.
func (p *MaxPool2D) InferScratch() int { return 0 }

// ForwardBatchRange implements BatchInfer: the Forward window-mean sweep.
func (p *AvgPool2D) ForwardBatchRange(dst, x *tensor.Tensor, lo, hi int, _ []float64) {
	g := p.geom
	inVol := g.InC * g.InH * g.InW
	outH, outW := g.OutH(), g.OutW()
	outVol := g.InC * outH * outW
	tensor.AssertDims("AvgPool2D.ForwardBatchRange x", x, tensor.Wildcard, inVol)
	tensor.AssertDims("AvgPool2D.ForwardBatchRange dst", dst, x.Dim(0), outVol)
	xd, od := x.Data(), dst.Data()
	winSize := float64(g.KH * g.KW)
	for s := lo; s < hi; s++ {
		sBase := s * inVol
		oBase := s * outVol
		oi := 0
		for c := 0; c < g.InC; c++ {
			chanBase := sBase + c*g.InH*g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					sum := 0.0
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							sum += xd[chanBase+ih*g.InW+iw]
						}
					}
					od[oBase+oi] = sum / winSize
					oi++
				}
			}
		}
	}
}

// InferScratch implements BatchInfer.
func (p *AvgPool2D) InferScratch() int { return 0 }

// elementwiseVol returns the flattened per-sample volume shared by dst and x
// for shape-preserving element-wise layers, panicking on mismatch.
func elementwiseVol(op string, dst, x *tensor.Tensor) int {
	vol := x.Dim(1)
	tensor.AssertDims(op, dst, x.Dim(0), vol)
	return vol
}

// ForwardBatchRange implements BatchInfer: max(0, x) without the mask cache.
func (l *ReLU) ForwardBatchRange(dst, x *tensor.Tensor, lo, hi int, _ []float64) {
	vol := elementwiseVol("ReLU.ForwardBatchRange dst", dst, x)
	xd, od := x.Data(), dst.Data()
	for i := lo * vol; i < hi*vol; i++ {
		if v := xd[i]; v > 0 {
			od[i] = v
		} else {
			od[i] = 0
		}
	}
}

// InferScratch implements BatchInfer.
func (l *ReLU) InferScratch() int { return 0 }

// ForwardBatchRange implements BatchInfer: tanh without the output cache.
func (l *Tanh) ForwardBatchRange(dst, x *tensor.Tensor, lo, hi int, _ []float64) {
	vol := elementwiseVol("Tanh.ForwardBatchRange dst", dst, x)
	xd, od := x.Data(), dst.Data()
	for i := lo * vol; i < hi*vol; i++ {
		od[i] = math.Tanh(xd[i])
	}
}

// InferScratch implements BatchInfer.
func (l *Tanh) InferScratch() int { return 0 }

// ForwardBatchRange implements BatchInfer: logistic without the output cache.
func (l *Sigmoid) ForwardBatchRange(dst, x *tensor.Tensor, lo, hi int, _ []float64) {
	vol := elementwiseVol("Sigmoid.ForwardBatchRange dst", dst, x)
	xd, od := x.Data(), dst.Data()
	for i := lo * vol; i < hi*vol; i++ {
		od[i] = 1 / (1 + math.Exp(-xd[i]))
	}
}

// InferScratch implements BatchInfer.
func (l *Sigmoid) InferScratch() int { return 0 }
