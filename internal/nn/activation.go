package nn

import (
	"math"

	"reramtest/internal/tensor"
)

// ReLU is the rectified-linear activation max(0, x).
type ReLU struct {
	name string
	mask []bool
}

// NewReLU builds a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name returns the layer name.
func (l *ReLU) Name() string { return l.name }

// Params returns nil: activations are parameter-free.
func (l *ReLU) Params() []*Param { return nil }

// OutputShape implements Layer: activations preserve shape.
func (l *ReLU) OutputShape(in []int) []int { return in }

// Clone returns an independent copy.
func (l *ReLU) Clone() Layer { return &ReLU{name: l.name} }

// Forward applies max(0, x) element-wise.
func (l *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	od := out.Data()
	if cap(l.mask) < len(od) {
		l.mask = make([]bool, len(od))
	}
	l.mask = l.mask[:len(od)]
	for i, v := range od {
		if v > 0 {
			l.mask[i] = true
		} else {
			l.mask[i] = false
			od[i] = 0
		}
	}
	return out
}

// Backward gates the gradient by the forward activation mask.
func (l *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	out := gradOut.Clone()
	od := out.Data()
	for i := range od {
		if !l.mask[i] {
			od[i] = 0
		}
	}
	return out
}

// Tanh is the hyperbolic-tangent activation used by the original LeNet-5.
type Tanh struct {
	name    string
	lastOut *tensor.Tensor
}

// NewTanh builds a tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name returns the layer name.
func (l *Tanh) Name() string { return l.name }

// Params returns nil: activations are parameter-free.
func (l *Tanh) Params() []*Param { return nil }

// OutputShape implements Layer: activations preserve shape.
func (l *Tanh) OutputShape(in []int) []int { return in }

// Clone returns an independent copy.
func (l *Tanh) Clone() Layer { return &Tanh{name: l.name} }

// Forward applies tanh element-wise.
func (l *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Map(math.Tanh)
	l.lastOut = out
	return out
}

// Backward multiplies by 1 - tanh².
func (l *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	out := gradOut.Clone()
	od, yd := out.Data(), l.lastOut.Data()
	for i := range od {
		od[i] *= 1 - yd[i]*yd[i]
	}
	return out
}

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct {
	name    string
	lastOut *tensor.Tensor
}

// NewSigmoid builds a sigmoid activation layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name returns the layer name.
func (l *Sigmoid) Name() string { return l.name }

// Params returns nil: activations are parameter-free.
func (l *Sigmoid) Params() []*Param { return nil }

// OutputShape implements Layer: activations preserve shape.
func (l *Sigmoid) OutputShape(in []int) []int { return in }

// Clone returns an independent copy.
func (l *Sigmoid) Clone() Layer { return &Sigmoid{name: l.name} }

// Forward applies the logistic function element-wise.
func (l *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Map(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	l.lastOut = out
	return out
}

// Backward multiplies by y·(1-y).
func (l *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	out := gradOut.Clone()
	od, yd := out.Data(), l.lastOut.Data()
	for i := range od {
		od[i] *= yd[i] * (1 - yd[i])
	}
	return out
}
