package nn

import (
	"fmt"
	"math"

	"reramtest/internal/tensor"
)

// Softmax converts a (N, n) batch of logits to row-wise probability
// distributions, numerically stabilised by max subtraction.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n := logits.Dim(0)
	k := logits.Len() / n
	out := logits.Clone().Reshape(n, k)
	SoftmaxInPlace(out)
	return out
}

// SoftmaxInPlace converts a (N, n) batch of logits to row-wise probability
// distributions in place, through the same max-subtracted row kernel as
// Softmax (bit-identical results, no allocation). The batch inference engine
// uses it to turn reused logit workspaces into confidences.
func SoftmaxInPlace(logits *tensor.Tensor) {
	n := logits.Dim(0)
	k := logits.Len() / n
	od := logits.Data()
	for s := 0; s < n; s++ {
		softmaxRow(od[s*k : (s+1)*k])
	}
}

func softmaxRow(row []float64) {
	m := math.Inf(-1)
	for _, v := range row {
		if v > m {
			m = v
		}
	}
	sum := 0.0
	for i, v := range row {
		e := math.Exp(v - m)
		row[i] = e
		sum += e
	}
	for i := range row {
		row[i] /= sum
	}
}

// CrossEntropy computes the mean softmax cross-entropy of a (N, n) logit
// batch against integer class labels, and the gradient with respect to the
// logits: (softmax(z) - onehot(y)) / N.
func CrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n := logits.Dim(0)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: CrossEntropy got %d labels for batch of %d", len(labels), n))
	}
	k := logits.Len() / n
	probs := Softmax(logits)
	pd := probs.Data()
	inv := 1 / float64(n)
	for s, y := range labels {
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: CrossEntropy label %d out of range [0,%d)", y, k))
		}
		p := pd[s*k+y]
		loss -= math.Log(math.Max(p, 1e-300))
		// grad = (p - onehot) / N, reusing the probability buffer
		row := pd[s*k : (s+1)*k]
		for j := range row {
			row[j] *= inv
		}
		row[y] -= inv
	}
	return loss * inv, probs
}

// SoftCrossEntropy computes the mean cross-entropy of a (N, n) logit batch
// against target probability distributions (same shape), and the gradient
// with respect to the logits: (softmax(z) - target) / N. This is the loss
// the O-TP generator minimises: the paper's Eq. 1 combines a uniform soft
// label on the clean model with a hard label on the fault model, both of
// which are instances of this loss.
func SoftCrossEntropy(logits, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if logits.Len() != target.Len() {
		panic(fmt.Sprintf("nn: SoftCrossEntropy shape mismatch %v vs %v", logits.Shape(), target.Shape()))
	}
	n := logits.Dim(0)
	probs := Softmax(logits)
	pd, td := probs.Data(), target.Data()
	inv := 1 / float64(n)
	for i, p := range pd {
		loss -= td[i] * math.Log(math.Max(p, 1e-300))
		pd[i] = (p - td[i]) * inv
	}
	return loss * inv, probs
}

// MSE computes the mean squared error between prediction and target batches
// and the gradient with respect to the prediction: 2(pred-target)/len.
func MSE(pred, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if pred.Len() != target.Len() {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	grad = tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	inv := 1 / float64(len(pd))
	for i, v := range pd {
		d := v - td[i]
		loss += d * d
		gd[i] = 2 * d * inv
	}
	return loss * inv, grad
}

// OneHot builds a (N, n) one-hot target batch from integer labels.
func OneHot(labels []int, classes int) *tensor.Tensor {
	out := tensor.New(len(labels), classes)
	od := out.Data()
	for s, y := range labels {
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: OneHot label %d out of range [0,%d)", y, classes))
		}
		od[s*classes+y] = 1
	}
	return out
}

// UniformLabels builds a (N, n) target batch where every class has equal
// probability 1/n — the paper's "soft label with equal confidence" for the
// clean model's O-TP constraint.
func UniformLabels(n, classes int) *tensor.Tensor {
	return tensor.Full(1/float64(classes), n, classes)
}
