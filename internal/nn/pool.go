package nn

import (
	"fmt"

	"reramtest/internal/tensor"
)

// MaxPool2D downsamples each channel by taking the maximum over
// non-overlapping (or strided) windows. The winning index of every window is
// cached during Forward so Backward can route the gradient to it.
type MaxPool2D struct {
	name   string
	geom   tensor.ConvGeom // KH/KW are the window, InC channels pooled independently
	argmax []int           // per batch: winning flat input index per output element
	lastN  int
}

// NewMaxPool2D builds a max-pooling layer. geom.InC/InH/InW describe the
// incoming feature map; geom.KH/KW and strides describe the window.
func NewMaxPool2D(name string, geom tensor.ConvGeom) *MaxPool2D {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	return &MaxPool2D{name: name, geom: geom}
}

// Name returns the layer name.
func (p *MaxPool2D) Name() string { return p.name }

// Params returns nil: pooling has no trainable parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// OutputShape implements Layer.
func (p *MaxPool2D) OutputShape([]int) []int {
	return []int{p.geom.InC, p.geom.OutH(), p.geom.OutW()}
}

// Clone returns an independent copy.
func (p *MaxPool2D) Clone() Layer {
	return &MaxPool2D{name: p.name, geom: p.geom}
}

// Forward pools a (N, C*H*W) batch into (N, C*OutH*OutW).
func (p *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	g := p.geom
	n := x.Dim(0)
	inVol := g.InC * g.InH * g.InW
	if x.Len() != n*inVol {
		panic(fmt.Sprintf("nn: %s forward input %v does not match geometry %+v", p.name, x.Shape(), g))
	}
	outH, outW := g.OutH(), g.OutW()
	outVol := g.InC * outH * outW
	out := tensor.New(n, outVol)
	if cap(p.argmax) < n*outVol {
		p.argmax = make([]int, n*outVol)
	}
	p.argmax = p.argmax[:n*outVol]
	p.lastN = n
	xd, od := x.Data(), out.Data()
	for s := 0; s < n; s++ {
		sBase := s * inVol
		oBase := s * outVol
		oi := 0
		for c := 0; c < g.InC; c++ {
			chanBase := sBase + c*g.InH*g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := -1
					bestV := 0.0
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							idx := chanBase + ih*g.InW + iw
							if best == -1 || xd[idx] > bestV {
								best, bestV = idx, xd[idx]
							}
						}
					}
					od[oBase+oi] = bestV
					p.argmax[oBase+oi] = best
					oi++
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to the input element that won its
// window.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := p.geom
	inVol := g.InC * g.InH * g.InW
	outVol := g.InC * g.OutH() * g.OutW()
	if gradOut.Len() != p.lastN*outVol {
		panic(fmt.Sprintf("nn: %s Backward grad %v does not match output", p.name, gradOut.Shape()))
	}
	gradIn := tensor.New(p.lastN, inVol)
	gd, gid := gradOut.Data(), gradIn.Data()
	for i, v := range gd {
		if idx := p.argmax[i]; idx >= 0 {
			gid[idx] += v
		}
	}
	return gradIn
}

// AvgPool2D downsamples each channel by averaging over windows.
type AvgPool2D struct {
	name  string
	geom  tensor.ConvGeom
	lastN int
}

// NewAvgPool2D builds an average-pooling layer with the same geometry
// conventions as NewMaxPool2D.
func NewAvgPool2D(name string, geom tensor.ConvGeom) *AvgPool2D {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	return &AvgPool2D{name: name, geom: geom}
}

// Name returns the layer name.
func (p *AvgPool2D) Name() string { return p.name }

// Params returns nil: pooling has no trainable parameters.
func (p *AvgPool2D) Params() []*Param { return nil }

// OutputShape implements Layer.
func (p *AvgPool2D) OutputShape([]int) []int {
	return []int{p.geom.InC, p.geom.OutH(), p.geom.OutW()}
}

// Clone returns an independent copy.
func (p *AvgPool2D) Clone() Layer { return &AvgPool2D{name: p.name, geom: p.geom} }

// Forward pools a (N, C*H*W) batch into (N, C*OutH*OutW) by window means.
func (p *AvgPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	g := p.geom
	n := x.Dim(0)
	inVol := g.InC * g.InH * g.InW
	if x.Len() != n*inVol {
		panic(fmt.Sprintf("nn: %s forward input %v does not match geometry %+v", p.name, x.Shape(), g))
	}
	outH, outW := g.OutH(), g.OutW()
	outVol := g.InC * outH * outW
	out := tensor.New(n, outVol)
	p.lastN = n
	xd, od := x.Data(), out.Data()
	winSize := float64(g.KH * g.KW)
	for s := 0; s < n; s++ {
		sBase := s * inVol
		oBase := s * outVol
		oi := 0
		for c := 0; c < g.InC; c++ {
			chanBase := sBase + c*g.InH*g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					sum := 0.0
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							sum += xd[chanBase+ih*g.InW+iw]
						}
					}
					od[oBase+oi] = sum / winSize
					oi++
				}
			}
		}
	}
	return out
}

// Backward spreads each output gradient uniformly over its window.
func (p *AvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := p.geom
	inVol := g.InC * g.InH * g.InW
	outH, outW := g.OutH(), g.OutW()
	outVol := g.InC * outH * outW
	if gradOut.Len() != p.lastN*outVol {
		panic(fmt.Sprintf("nn: %s Backward grad %v does not match output", p.name, gradOut.Shape()))
	}
	gradIn := tensor.New(p.lastN, inVol)
	gd, gid := gradOut.Data(), gradIn.Data()
	winSize := float64(g.KH * g.KW)
	for s := 0; s < p.lastN; s++ {
		sBase := s * inVol
		oBase := s * outVol
		oi := 0
		for c := 0; c < g.InC; c++ {
			chanBase := sBase + c*g.InH*g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					v := gd[oBase+oi] / winSize
					oi++
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							gid[chanBase+ih*g.InW+iw] += v
						}
					}
				}
			}
		}
	}
	return gradIn
}
