package nn

import (
	"fmt"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// Dense is a fully-connected layer computing y = x·W + b with W stored
// (In, Out).
type Dense struct {
	name   string
	in     int
	out    int
	weight *Param // (In, Out)
	bias   *Param // (Out)
	lastIn *tensor.Tensor
	gwTmp  *tensor.Tensor
	wT     []float64 // (Out, In) transposed-weight cache for the train dx kernel
}

// NewDense builds a fully-connected layer with He-initialised weights.
func NewDense(name string, r *rng.RNG, in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Dense %q needs positive dims, got %dx%d", name, in, out))
	}
	w := heInit(r, in, in, out)
	return &Dense{
		name:   name,
		in:     in,
		out:    out,
		weight: newParam(name+".weight", w),
		bias:   newParam(name+".bias", tensor.New(out)),
	}
}

// Name returns the layer name.
func (d *Dense) Name() string { return d.name }

// In returns the input width.
func (d *Dense) In() int { return d.in }

// Out returns the output width.
func (d *Dense) Out() int { return d.out }

// Params returns the weight matrix and bias vector.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// OutputShape implements Layer.
func (d *Dense) OutputShape([]int) []int { return []int{d.out} }

// Clone deep-copies the layer.
func (d *Dense) Clone() Layer {
	return &Dense{name: d.name, in: d.in, out: d.out, weight: d.weight.clone(), bias: d.bias.clone()}
}

// Forward maps a (N, In) batch to (N, Out).
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	if x.Len() != n*d.in {
		panic(fmt.Sprintf("nn: %s forward input %v does not match width %d", d.name, x.Shape(), d.in))
	}
	x2 := x.Reshape(n, d.in)
	d.lastIn = x2
	out := tensor.New(n, d.out)
	tensor.MatMulInto(out, x2, d.weight.Value)
	od, bd := out.Data(), d.bias.Value.Data()
	for s := 0; s < n; s++ {
		row := od[s*d.out : (s+1)*d.out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return out
}

// Backward accumulates dW = xᵀ·g and db = Σ g, and returns dx = g·Wᵀ.
func (d *Dense) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.lastIn == nil {
		panic(fmt.Sprintf("nn: %s Backward called before Forward", d.name))
	}
	n := d.lastIn.Dim(0)
	if gradOut.Len() != n*d.out {
		panic(fmt.Sprintf("nn: %s Backward grad %v does not match output width %d", d.name, gradOut.Shape(), d.out))
	}
	g := gradOut.Reshape(n, d.out)
	if d.gwTmp == nil {
		d.gwTmp = tensor.New(d.in, d.out)
	}
	tensor.MatMulTransAInto(d.gwTmp, d.lastIn, g)
	d.weight.Grad.AddInPlace(d.gwTmp)
	gb, gd := d.bias.Grad.Data(), g.Data()
	for s := 0; s < n; s++ {
		row := gd[s*d.out : (s+1)*d.out]
		for j, v := range row {
			gb[j] += v
		}
	}
	gradIn := tensor.New(n, d.in)
	tensor.MatMulTransBInto(gradIn, g, d.weight.Value)
	return gradIn
}
