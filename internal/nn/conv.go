package nn

import (
	"fmt"

	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// Conv2D is a 2-D convolution over (C, H, W) feature maps, implemented as
// im2col + matmul. The kernel is stored as a (OutC, InC*KH*KW) matrix — the
// same flattened layout the ReRAM crossbar mapper consumes, so a trained
// layer maps onto crossbar tiles without reshuffling.
type Conv2D struct {
	name    string
	geom    tensor.ConvGeom
	outC    int
	weight  *Param // (OutC, InC*KH*KW)
	bias    *Param // (OutC)
	lastIn  *tensor.Tensor
	colBuf  *tensor.Tensor // (InC*KH*KW, OutH*OutW) scratch
	gradCol *tensor.Tensor
	gwTmp   *tensor.Tensor
}

// NewConv2D builds a convolution layer with He-initialised weights.
func NewConv2D(name string, r *rng.RNG, geom tensor.ConvGeom, outC int) *Conv2D {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	if outC <= 0 {
		panic(fmt.Sprintf("nn: Conv2D %q needs positive output channels, got %d", name, outC))
	}
	fanIn := geom.InC * geom.KH * geom.KW
	w := heInit(r, fanIn, outC, fanIn)
	return &Conv2D{
		name:   name,
		geom:   geom,
		outC:   outC,
		weight: newParam(name+".weight", w),
		bias:   newParam(name+".bias", tensor.New(outC)),
	}
}

// Name returns the layer name.
func (c *Conv2D) Name() string { return c.name }

// Geom returns the convolution geometry.
func (c *Conv2D) Geom() tensor.ConvGeom { return c.geom }

// OutC returns the number of output channels.
func (c *Conv2D) OutC() int { return c.outC }

// Params returns the kernel and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// OutputShape implements Layer.
func (c *Conv2D) OutputShape([]int) []int {
	return []int{c.outC, c.geom.OutH(), c.geom.OutW()}
}

// Clone deep-copies the layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		name:   c.name,
		geom:   c.geom,
		outC:   c.outC,
		weight: c.weight.clone(),
		bias:   c.bias.clone(),
	}
}

func (c *Conv2D) sampleVolume() int { return c.geom.InC * c.geom.InH * c.geom.InW }

// Forward convolves a (N, InC*InH*InW) batch into (N, OutC*OutH*OutW).
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	inVol := c.sampleVolume()
	if x.Len() != n*inVol {
		panic(fmt.Sprintf("nn: %s forward input %v does not match geometry %+v", c.name, x.Shape(), c.geom))
	}
	outH, outW := c.geom.OutH(), c.geom.OutW()
	spatial := outH * outW
	ckk := c.geom.InC * c.geom.KH * c.geom.KW
	if c.colBuf == nil || c.colBuf.Len() != ckk*spatial {
		c.colBuf = tensor.New(ckk, spatial)
	}
	c.lastIn = x
	out := tensor.New(n, c.outC*spatial)
	xd, od, bd := x.Data(), out.Data(), c.bias.Value.Data()
	for s := 0; s < n; s++ {
		sample := tensor.FromSlice(xd[s*inVol:(s+1)*inVol], inVol)
		tensor.Im2Col(c.colBuf, sample, c.geom)
		dst := tensor.FromSlice(od[s*c.outC*spatial:(s+1)*c.outC*spatial], c.outC, spatial)
		tensor.MatMulInto(dst, c.weight.Value, c.colBuf)
		// add bias per output channel
		dd := dst.Data()
		for oc := 0; oc < c.outC; oc++ {
			b := bd[oc]
			row := dd[oc*spatial : (oc+1)*spatial]
			for i := range row {
				row[i] += b
			}
		}
	}
	return out
}

// Backward propagates gradients, recomputing im2col per sample rather than
// caching every column matrix (memory stays O(1) in batch size).
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic(fmt.Sprintf("nn: %s Backward called before Forward", c.name))
	}
	n := c.lastIn.Dim(0)
	inVol := c.sampleVolume()
	outH, outW := c.geom.OutH(), c.geom.OutW()
	spatial := outH * outW
	ckk := c.geom.InC * c.geom.KH * c.geom.KW
	if gradOut.Len() != n*c.outC*spatial {
		panic(fmt.Sprintf("nn: %s Backward grad %v does not match output", c.name, gradOut.Shape()))
	}
	if c.gradCol == nil || c.gradCol.Len() != ckk*spatial {
		c.gradCol = tensor.New(ckk, spatial)
	}
	if c.gwTmp == nil {
		c.gwTmp = tensor.New(c.outC, ckk)
	}
	gradIn := tensor.New(n, inVol)
	xd, gd, gid := c.lastIn.Data(), gradOut.Data(), gradIn.Data()
	gb := c.bias.Grad.Data()
	for s := 0; s < n; s++ {
		sample := tensor.FromSlice(xd[s*inVol:(s+1)*inVol], inVol)
		tensor.Im2Col(c.colBuf, sample, c.geom)
		g := tensor.FromSlice(gd[s*c.outC*spatial:(s+1)*c.outC*spatial], c.outC, spatial)
		// dW += g · colsᵀ
		tensor.MatMulTransBInto(c.gwTmp, g, c.colBuf)
		c.weight.Grad.AddInPlace(c.gwTmp)
		// db += row sums of g
		ggd := g.Data()
		for oc := 0; oc < c.outC; oc++ {
			row := ggd[oc*spatial : (oc+1)*spatial]
			sum := 0.0
			for _, v := range row {
				sum += v
			}
			gb[oc] += sum
		}
		// dCols = Wᵀ · g, then scatter back to image space
		tensor.MatMulTransAInto(c.gradCol, c.weight.Value, g)
		gsample := tensor.FromSlice(gid[s*inVol:(s+1)*inVol], inVol)
		tensor.Col2Im(gsample, c.gradCol, c.geom)
	}
	return gradIn
}
