package tengine

import (
	"fmt"

	"reramtest/internal/nn"
	"reramtest/internal/tensor"
)

// This file is the training half of the multi-precision tier: a self-contained
// float32 forward+backward plan for dense/ReLU stacks. The contract mirrors
// the inference engine's F32 tier — bounded error versus the f64 reference,
// never bit-identity — with one training-specific twist: the float64 Param
// tensors stay the masters. The plan narrows them into its f32 caches at the
// START of every step (the optimizer mutates the masters between steps), runs
// the whole pass in float32, and widens the batch gradients back into
// Param.Grad. Loss and its logit gradient are computed in float64 through the
// same nn.CrossEntropyInto the reference plan uses, on the widened logits, so
// the loss scalar callers train against is the exact f64 loss of the f32
// forward pass.
//
// The tier is deliberately narrow: only *nn.Dense and *nn.ReLU compute layers
// (plus the usual passthrough elisions) compile — the monitor-sized MLPs this
// repo retrains — and execution is serial; the f64 plan keeps the
// chunk-parallel golden path. PrecisionI8 is inference-only: int8 backward
// would need straight-through estimators the paper's repair loop never uses,
// so Compile rejects it with a typed error rather than silently degrading.

// f32TrainStep is one compiled compute layer of the f32 training plan.
// Exactly one of dense/relu semantics applies (dense == nil means ReLU).
type f32TrainStep struct {
	dense         *nn.Dense
	inVol, outVol int

	wT32 []float32 // (Out, In) transposed weight cache, resynced per step
	b32  []float32 // bias cache
	dW32 []float32 // (In, Out) weight-gradient scratch
	db32 []float32 // bias-gradient scratch

	outBuf  []float32 // forward output, cap ≥ capN·outVol
	gradBuf []float32 // dL/d(input), nil for an untapped first step

	in32, out32, grad32 []float32 // current-batch views
}

// f32TrainPlan owns the tier's workspaces. All buffers are sized by setBatch
// and reused: a steady stream of same-size batches allocates nothing.
type f32TrainPlan struct {
	steps []*f32TrainStep

	inBuf    []float32 // narrowed input batch
	lossBuf  []float32 // narrowed dL/d(logits)
	logitBuf []float64 // widened logits the f64 loss kernels read
	logits   *tensor.Tensor
	gradBuf  []float64 // widened dL/d(input) behind InputGrad()
	inGrad   *tensor.Tensor

	noParamGrads bool
}

// compileF32 builds the f32 training plan. Volumes and passthrough elision
// follow the reference walk exactly; only the kernel bindings differ.
func (e *Engine) compileF32(net *nn.Network, opts Options) error {
	p := &f32TrainPlan{noParamGrads: opts.NoParamGrads}
	shape := []int{net.InDim()}
	vol := net.InDim()
	for _, l := range net.Layers() {
		outShape := l.OutputShape(shape)
		outVol := volume(outShape)
		if isPassthrough(l) {
			shape, vol = outShape, outVol
			continue
		}
		s := &f32TrainStep{inVol: vol, outVol: outVol}
		switch ll := l.(type) {
		case *nn.Dense:
			s.dense = ll
			s.wT32 = make([]float32, ll.In()*ll.Out())
			s.b32 = make([]float32, ll.Out())
			if !opts.NoParamGrads {
				s.dW32 = make([]float32, ll.In()*ll.Out())
				s.db32 = make([]float32, ll.Out())
			}
		case *nn.ReLU:
			// no state
		default:
			return fmt.Errorf("tengine: layer %q (%T) has no float32 training path; PrecisionF32 trains dense/ReLU stacks only", l.Name(), l)
		}
		p.steps = append(p.steps, s)
		// the training engine's step bookkeeping (cost model, OutDim) reads
		// e.steps; mirror the volumes with kernel-less reference steps
		e.steps = append(e.steps, &step{layer: l, inVol: vol, outVol: outVol})
		shape, vol = outShape, outVol
	}
	if len(p.steps) == 0 {
		return fmt.Errorf("tengine: network %q has no trainable compute layers", net.Name())
	}
	e.outVol = vol
	e.f32 = p
	return nil
}

// setBatchF32 sizes the tier's workspaces for an n-sample batch.
func (e *Engine) setBatchF32(n int) {
	p := e.f32
	if n > e.capN {
		p.inBuf = make([]float32, n*e.inDim)
		for i, s := range p.steps {
			s.outBuf = make([]float32, n*s.outVol)
			if i > 0 || e.inputGrad {
				s.gradBuf = make([]float32, n*s.inVol)
			}
		}
		p.lossBuf = make([]float32, n*e.outVol)
		p.logitBuf = make([]float64, n*e.outVol)
		e.lossBuf = make([]float64, n*e.outVol)
		if e.inputGrad {
			p.gradBuf = make([]float64, n*e.inDim)
		}
		e.capN = n
		e.curN = 0
	}
	if n == e.curN {
		return
	}
	for _, s := range p.steps {
		s.out32 = s.outBuf[:n*s.outVol]
		if s.gradBuf != nil {
			s.grad32 = s.gradBuf[:n*s.inVol]
		}
	}
	p.logits = tensor.FromSlice(p.logitBuf[:n*e.outVol], n, e.outVol)
	e.lossGrad = tensor.FromSlice(e.lossBuf[:n*e.outVol], n, e.outVol)
	if e.inputGrad {
		p.inGrad = tensor.FromSlice(p.gradBuf[:n*e.inDim], n, e.inDim)
	}
	e.curN = n
}

// reloadF32 narrows the float64 parameter masters into the step caches —
// called at the start of every training step, because the optimizer advanced
// the masters since the last one.
func (p *f32TrainPlan) reload() {
	for _, s := range p.steps {
		if s.dense == nil {
			continue
		}
		in, out := s.dense.In(), s.dense.Out()
		w := s.dense.Params()[0].Value.Data()
		for j := 0; j < out; j++ {
			row := s.wT32[j*in : (j+1)*in]
			for k := range row {
				row[k] = float32(w[k*out+j])
			}
		}
		b := s.dense.Params()[1].Value.Data()
		for j, v := range b {
			s.b32[j] = float32(v)
		}
	}
}

// stepF32 is the f32 tier's ForwardBackward body: narrow, forward, f64 loss on
// widened logits, backward, widen gradients into Param.Grad.
func (e *Engine) stepF32(x *tensor.Tensor, loss func(logits *tensor.Tensor) float64) float64 {
	p := e.f32
	n := x.Dim(0)
	e.setBatchF32(n)
	p.reload()

	// forward
	xin := p.inBuf[:n*e.inDim]
	tensor.ConvertF64ToF32(xin, x.Data())
	cur := xin
	for _, s := range p.steps {
		s.in32 = cur
		if s.dense != nil {
			tensor.DenseForwardF32(s.out32, cur, s.wT32, s.b32, n, s.inVol, s.outVol, 0, n, false)
		} else {
			for i, v := range cur {
				if v < 0 {
					v = 0
				}
				s.out32[i] = v
			}
		}
		cur = s.out32
	}
	tensor.ConvertF32ToF64(p.logitBuf[:n*e.outVol], cur)

	// loss + dL/d(logits) in f64 through the reference kernels, then narrow
	lossVal := loss(p.logits)
	tensor.ConvertF64ToF32(p.lossBuf[:n*e.outVol], e.lossBuf[:n*e.outVol])

	// backward
	up := p.lossBuf[:n*e.outVol]
	for i := len(p.steps) - 1; i >= 0; i-- {
		s := p.steps[i]
		if s.dense != nil {
			in, out := s.inVol, s.outVol
			if !p.noParamGrads {
				// dW = xᵀ·g over the batch, db = column sums of g
				tensor.MatMulTransASlicesF32(s.dW32, s.in32, up, n, in, out)
				for j := range s.db32 {
					s.db32[j] = 0
				}
				for r := 0; r < n; r++ {
					grow := up[r*out : (r+1)*out]
					for j, v := range grow {
						s.db32[j] += v
					}
				}
				gw := s.dense.Params()[0].Grad.Data()
				for k, v := range s.dW32 {
					gw[k] = float64(v)
				}
				gb := s.dense.Params()[1].Grad.Data()
				for j, v := range s.db32 {
					gb[j] = float64(v)
				}
			}
			if s.grad32 != nil {
				// dx = g·Wᵀ — the forward cache is already (Out, In) row-major
				tensor.MatMulSlicesF32(s.grad32, up, s.wT32, n, out, in)
			}
		} else if s.grad32 != nil {
			for idx, v := range up {
				if s.out32[idx] > 0 {
					s.grad32[idx] = v
				} else {
					s.grad32[idx] = 0
				}
			}
		}
		if s.grad32 == nil {
			break
		}
		up = s.grad32
	}
	if e.inputGrad {
		tensor.ConvertF32ToF64(p.gradBuf[:n*e.inDim], p.steps[0].grad32)
	}
	return lossVal
}
