package tengine

import (
	"fmt"
	"strings"

	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// DropConnect wraps a compiled Engine with per-element Bernoulli weight
// masking: each training step independently zeroes a fraction p of every
// crossbar-mapped weight (parameters named "*.weight") for the duration of
// the forward+backward pass, then restores them. Dropped positions also get
// their gradient zeroed, so the optimizer never updates a weight the step
// never saw — the exact gradient of the masked objective.
//
// The point is fault-aware commissioning (the drop-connect hardening of
// arXiv:2404.15498): a stuck-at-0 cell is precisely a weight forced to zero,
// so training under random weight dropping teaches the network the
// redundancy that keeps accuracy flat when real cells later stick. Unlike
// regularising dropout there is NO 1/keep rescaling — a real fault is not
// compensated at inference time, so training must not pretend it is.
//
// Determinism contract: masks are drawn serially, in network parameter order
// and row-major element order, from the DropConnect's own RNG — the same
// serial-prepass discipline nn.Dropout uses inside the engine. All weight
// mutation happens outside the (possibly pooled) kernels, so pooled and
// serial engines over the same seed produce bit-identical weights, and a
// steady stream of same-size batches allocates nothing.
type DropConnect struct {
	eng    *Engine
	p      float64
	r      *rng.RNG
	params []*nn.Param // "*.weight" parameters, in network order
	masks  [][]bool    // per param: dropped this step
	saved  [][]float64 // per param: pre-mask values
}

// NewDropConnect builds the masking wrapper around a compiled engine.
// p in [0, 1) is the per-element drop probability; r is consumed serially,
// one Bernoulli draw per weight element per step.
func NewDropConnect(eng *Engine, p float64, r *rng.RNG) *DropConnect {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("tengine: drop-connect probability must be in [0,1), got %g", p))
	}
	d := &DropConnect{eng: eng, p: p, r: r}
	for _, par := range eng.Network().Params() {
		if !strings.HasSuffix(par.Name, ".weight") {
			continue // biases live in digital logic: no cells to stick
		}
		d.params = append(d.params, par)
		d.masks = append(d.masks, make([]bool, par.Value.Len()))
		d.saved = append(d.saved, make([]float64, par.Value.Len()))
	}
	return d
}

// Engine returns the wrapped engine.
func (d *DropConnect) Engine() *Engine { return d.eng }

// Step runs one masked training step: draw fresh masks, zero the dropped
// weights, ForwardBackward, restore the weights, zero the dropped
// positions' gradients. Param.Grad then holds the masked-objective batch
// gradient, ready for StepAndZero. Returns the loss; an ErrEmptyBatch from
// the engine propagates after the weights are restored (the masks were
// already applied), leaving gradients untouched.
func (d *DropConnect) Step(x *tensor.Tensor, labels []int) (float64, error) {
	// serial mask prepass: param order, row-major element order
	for pi, par := range d.params {
		data, mask, saved := par.Value.Data(), d.masks[pi], d.saved[pi]
		for j := range data {
			drop := d.r.Bernoulli(d.p)
			mask[j] = drop
			saved[j] = data[j]
			if drop {
				data[j] = 0
			}
		}
	}
	loss, err := d.eng.ForwardBackward(x, labels)
	for pi, par := range d.params {
		data, grad, mask, saved := par.Value.Data(), par.Grad.Data(), d.masks[pi], d.saved[pi]
		for j, drop := range mask {
			if drop {
				data[j] = saved[j]
				if err == nil {
					grad[j] = 0
				}
			}
		}
	}
	return loss, err
}
