// Package tengine compiles an nn.Network into a batch-first training plan:
// the forward AND backward passes run through destination-passing kernels
// over per-layer workspaces allocated once, so a steady-state
// ForwardBackward(batch) step — forward, loss, backprop, parameter gradients,
// optional input gradients — performs zero heap allocations.
//
// Gradient accumulation over the minibatch is parallel yet bit-identical to
// both the serial plan and the legacy per-layer Network.Backward path. The
// invariant: parallelism partitions parameter *elements* (each element's
// whole sample fold runs on one worker, in ascending sample order — a
// degenerate left-leaning reduction tree), never the sample axis of a sum, so
// the addition order never depends on worker count. Two mechanisms implement
// it: layers with a direct fold (nn.TrainGradKernel — dense layers, whose
// per-sample gradients would dwarf the gradient itself) compute Param.Grad
// straight from the batch with the legacy loop restricted to a unit range;
// the rest (convolutions) write sample s's contribution into row s of a
// (N, paramVol) shard workspace that the engine folds over the sample axis.
// The legacy path accumulates per-sample contributions into Param.Grad in
// exactly that sample order, so both mechanisms reproduce its IEEE addition
// chain bit for bit; a balanced reduction tree would be equally deterministic
// but would reassociate the sums away from the legacy chain and break the
// golden equivalence the migration relies on. See DESIGN.md §11.
//
// After ForwardBackward the batch gradient is stored into every Param.Grad
// (overwriting — equivalent to the legacy ZeroGrad-then-Backward sequence),
// ready for opt.SGD/Adam StepAndZero. An Engine is a single-goroutine object
// like the layers it wraps; clone the network and compile per goroutine for
// concurrent training.
package tengine

import (
	"errors"
	"fmt"
	"sync"

	"reramtest/internal/nn"
	"reramtest/internal/hwcost"
	"reramtest/internal/tensor"
)

// ErrEmptyBatch is returned by ForwardBackward and ForwardBackwardSoft when
// the batch has zero samples: there is no gradient and no loss to report, and
// silently returning 0 would let an empty training shard masquerade as a
// perfectly converged one.
var ErrEmptyBatch = errors.New("tengine: empty batch")

// Options tunes a compilation.
type Options struct {
	// MaxBatch pre-sizes the workspaces in samples. 0 defers allocation to
	// the first ForwardBackward; workspaces grow on demand either way.
	MaxBatch int
	// Workers caps the per-layer chunk parallelism. 0 uses the pool's worker
	// count; 1 forces serial execution.
	Workers int
	// Pool supplies the worker pool. nil selects tensor.SharedPool(), which
	// degrades to inline execution on a single-core host.
	Pool *tensor.Pool
	// InputGrad keeps the backward pass going through the first layer to
	// produce dL/d(input) — the tap the O-TP generator and FGSM read via
	// InputGrad(). Off by default: plain training never needs it and the
	// first layer's input-gradient matmul is pure overhead.
	InputGrad bool
	// NoParamGrads drops the parameter-gradient folds from the plan: no
	// shard workspaces, no reductions, Param.Grad tensors untouched. The
	// input-gradient consumers (O-TP synthesis, FGSM) set this — Eq. 1 only
	// ever reads dL/d(input), and the legacy path had no way to say so.
	NoParamGrads bool
	// Counter receives the plan's modeled hardware charges; nil compiles a
	// private one. Pass the owning device's counter (under ClassRepair for a
	// retraining repair) so training spend lands on the device's meter. The
	// type is identical to reram.Counter (an alias of hwcost.Counter).
	Counter *hwcost.Counter
	// CostTileRows/CostTileCols supply the crossbar organisation the per-step
	// cost is modeled against; ≤ 0 selects the hwcost defaults (which match
	// reram.DefaultConfig()).
	CostTileRows, CostTileCols int
	// Precision selects the numeric tier. The zero value (tensor.F64) is the
	// bit-exact reference plan. tensor.F32 compiles the float32 fast plan —
	// dense/ReLU stacks only, serial, bounded error versus the reference, f64
	// parameter masters resynced every step (see lowprec.go). tensor.I8 is an
	// inference-only tier and fails Compile with a typed error.
	Precision tensor.Precision
}

// step is one compiled compute layer: its kernels, its workspaces, and the
// precompiled bodies that run batch chunks and gradient folds through it.
type step struct {
	layer   nn.Layer
	tk      nn.TrainKernel
	prepass nn.TrainPrepass  // non-nil for RNG-consuming layers (dropout)
	bwdPrep nn.TrainBackPrep // non-nil for layers with a serial pre-backward hook

	inVol, outVol int
	paramVol      int // total parameter volume = shard row stride
	dims          nn.TrainDims

	outBuf   []float64 // forward output workspace, cap >= capN*outVol
	gradBuf  []float64 // dL/d(input) workspace, nil for an untapped first step
	shardBuf []float64 // per-sample parameter gradients, cap >= capN*paramVol
	intBuf   []int
	floatBuf []float64
	scratch  [][]float64 // per-chunk kernel scratch

	// current-batch views and prefixes, rebuilt only when the size changes
	out, grad *tensor.Tensor
	ints      []int
	floats    []float64
	shard     []float64

	in      *tensor.Tensor // input view, set each pass
	gradOut *tensor.Tensor // dL/d(output), set each backward pass

	fwdBody, bwdBody func(chunk, lo, hi int)
	redBodies        []func(chunk, lo, hi int) // one fixed-order fold per param
	redLens          []int
}

// Engine is a compiled batch-first forward+backward plan over an nn.Network.
type Engine struct {
	net       *nn.Network
	steps     []*step
	inDim     int
	outVol    int
	chunks    int
	pool      *tensor.Pool
	inputGrad bool
	wg        sync.WaitGroup

	prec tensor.Precision
	f32  *f32TrainPlan // non-nil iff prec == tensor.F32

	capN, curN int

	counter *hwcost.Counter // never nil after Compile
	perStep hwcost.Cost     // modeled hardware cost of one sample's fwd+bwd

	lossBuf  []float64      // dL/d(logits) workspace
	lossGrad *tensor.Tensor // (curN, outVol) view of lossBuf
}

// Compile builds a training plan for net. It fails if a layer neither
// implements nn.TrainKernel nor marks itself as a training passthrough — such
// a network has no batched training semantics. Mode-dependent layers
// (dropout) are planned according to their state at compile time: compile
// after net.SetTraining.
func Compile(net *nn.Network, opts Options) (*Engine, error) {
	e := &Engine{net: net, inDim: net.InDim(), pool: opts.Pool, inputGrad: opts.InputGrad}
	if e.pool == nil {
		e.pool = tensor.SharedPool()
	}
	e.chunks = opts.Workers
	if e.chunks <= 0 {
		e.chunks = e.pool.Workers()
	}
	e.prec = opts.Precision
	switch opts.Precision {
	case tensor.F64:
		if err := e.compileF64(net, opts); err != nil {
			return nil, err
		}
	case tensor.F32:
		if err := e.compileF32(net, opts); err != nil {
			return nil, err
		}
	case tensor.I8:
		return nil, fmt.Errorf("tengine: %v is an inference-only tier (int8 backward has no semantics here); train in f64 or f32 and compile the int8 plan with engine.Compile", opts.Precision)
	default:
		return nil, fmt.Errorf("tengine: unknown precision %v", opts.Precision)
	}
	e.counter = opts.Counter
	if e.counter == nil {
		e.counter = hwcost.NewCounter()
	}
	// One training step prices at 3× the forward model per sample: the
	// backward pass re-drives every layer twice (dL/d(input) plus the
	// parameter-gradient fold), the standard accounting for in-situ training.
	// The model is priced at the compiled tier — narrower elements mean less
	// buffer traffic (conversion energy only drops on the int8 inference tier,
	// which this engine refuses above).
	for _, s := range e.steps {
		e.perStep.Add(hwcost.ModelLayerCostPrec(s.layer, s.inVol, s.outVol,
			opts.CostTileRows, opts.CostTileCols, e.prec).Scale(3))
	}
	if opts.MaxBatch > 0 {
		e.sizeBatch(opts.MaxBatch)
	}
	return e, nil
}

// compileF64 is the reference-tier walk: bind every compute layer's training
// kernels and precompile the chunk bodies and gradient folds.
func (e *Engine) compileF64(net *nn.Network, opts Options) error {
	shape := []int{net.InDim()}
	vol := net.InDim()
	for _, l := range net.Layers() {
		outShape := l.OutputShape(shape)
		outVol := volume(outShape)
		if isPassthrough(l) {
			shape, vol = outShape, outVol
			continue
		}
		tk, ok := l.(nn.TrainKernel)
		if !ok {
			return fmt.Errorf("tengine: layer %q (%T) has no batched training path", l.Name(), l)
		}
		s := &step{layer: l, tk: tk, inVol: vol, outVol: outVol, dims: tk.TrainDims(vol)}
		if pp, ok := l.(nn.TrainPrepass); ok {
			s.prepass = pp
		}
		if bp, ok := l.(nn.TrainBackPrep); ok {
			s.bwdPrep = bp
		}
		directGrad, hasDirect := l.(nn.TrainGradKernel)
		if !hasDirect && !opts.NoParamGrads {
			for _, p := range l.Params() {
				s.paramVol += p.Value.Len()
			}
		}
		s.scratch = make([][]float64, e.chunks)
		for c := range s.scratch {
			s.scratch[c] = make([]float64, s.dims.Scratch)
		}
		s.fwdBody = func(chunk, lo, hi int) {
			s.tk.TrainForwardRange(s.out, s.in, lo, hi,
				nn.TrainCache{Ints: s.ints, Floats: s.floats, Scratch: s.scratch[chunk], Shard: s.shard})
		}
		s.bwdBody = func(chunk, lo, hi int) {
			s.tk.TrainBackwardRange(s.grad, s.gradOut, s.in, s.out, lo, hi,
				nn.TrainCache{Ints: s.ints, Floats: s.floats, Scratch: s.scratch[chunk], Shard: s.shard})
		}
		// one fold body per parameter: partition its elements (or the layer's
		// coarser units) across chunks; each element folds the whole sample
		// axis in order on one worker. Layers with a direct fold compute
		// gradients straight into Param.Grad; the rest reduce shard rows.
		if opts.NoParamGrads {
			// input-gradient-only plan: no folds at all
		} else if hasDirect {
			for pi := range l.Params() {
				pi := pi
				s.redBodies = append(s.redBodies, func(_, lo, hi int) {
					directGrad.TrainGradRange(pi, s.gradOut, s.in, lo, hi)
				})
				s.redLens = append(s.redLens, directGrad.TrainGradUnits(pi))
			}
		} else {
			off := 0
			for _, p := range l.Params() {
				gd := p.Grad.Data()
				colBase := off
				body := func(_, lo, hi int) {
					sd, pv, n := s.shard, s.paramVol, e.curN
					for j := lo; j < hi; j++ {
						col := colBase + j
						acc := 0.0
						for smp := 0; smp < n; smp++ {
							acc += sd[smp*pv+col]
						}
						gd[j] = acc
					}
				}
				s.redBodies = append(s.redBodies, body)
				s.redLens = append(s.redLens, p.Value.Len())
				off += p.Value.Len()
			}
		}
		e.steps = append(e.steps, s)
		shape, vol = outShape, outVol
	}
	if len(e.steps) == 0 {
		return fmt.Errorf("tengine: network %q has no trainable compute layers", net.Name())
	}
	e.outVol = vol
	return nil
}

// sizeBatch dispatches workspace sizing to the compiled tier.
func (e *Engine) sizeBatch(n int) {
	if e.prec == tensor.F32 {
		e.setBatchF32(n)
		return
	}
	e.setBatch(n)
}

// MustCompile is Compile for statically known-good networks; it panics on
// error.
func MustCompile(net *nn.Network, opts Options) *Engine {
	e, err := Compile(net, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Network returns the network the engine is bound to.
func (e *Engine) Network() *nn.Network { return e.net }

// InDim returns the flattened per-sample input size.
func (e *Engine) InDim() int { return e.inDim }

// OutDim returns the flattened per-sample output (logit) size.
func (e *Engine) OutDim() int { return e.outVol }

// StepCost returns the modeled per-sample hardware cost of one training step
// (forward + backward; see Options.CostTileRows/CostTileCols).
func (e *Engine) StepCost() hwcost.Cost { return e.perStep }

// Counter returns the counter the plan charges; never nil.
func (e *Engine) Counter() *hwcost.Counter { return e.counter }

// setBatch sizes workspaces and rebuilds the (n, vol) views. Buffers grow
// when n exceeds capacity; views are rebuilt only when n changes, so a steady
// stream of same-size batches allocates nothing.
func (e *Engine) setBatch(n int) {
	if n > e.capN {
		for i, s := range e.steps {
			s.outBuf = make([]float64, n*s.outVol)
			if i > 0 || e.inputGrad {
				s.gradBuf = make([]float64, n*s.inVol)
			}
			if s.paramVol > 0 {
				s.shardBuf = make([]float64, n*s.paramVol)
			}
			if s.dims.IntsPerSample > 0 {
				s.intBuf = make([]int, n*s.dims.IntsPerSample)
			}
			if s.dims.FloatsPerSample > 0 {
				s.floatBuf = make([]float64, n*s.dims.FloatsPerSample)
			}
		}
		e.lossBuf = make([]float64, n*e.outVol)
		e.capN = n
		e.curN = 0
	}
	if n == e.curN {
		return
	}
	for _, s := range e.steps {
		s.out = tensor.FromSlice(s.outBuf[:n*s.outVol], n, s.outVol)
		if s.gradBuf != nil {
			s.grad = tensor.FromSlice(s.gradBuf[:n*s.inVol], n, s.inVol)
		}
		s.ints = s.intBuf[:n*s.dims.IntsPerSample]
		s.floats = s.floatBuf[:n*s.dims.FloatsPerSample]
		s.shard = s.shardBuf[:n*s.paramVol]
	}
	e.lossGrad = tensor.FromSlice(e.lossBuf[:n*e.outVol], n, e.outVol)
	e.curN = n
}

// forward runs the batch through the plan and leaves logits in the last
// step's output workspace.
func (e *Engine) forward(x *tensor.Tensor) *tensor.Tensor {
	tensor.AssertDims("tengine.forward x", x, tensor.Wildcard, e.inDim)
	n := x.Dim(0)
	e.setBatch(n)
	cur := x
	for _, s := range e.steps {
		s.in = cur
		if s.prepass != nil {
			// serial: consumes the layer's RNG stream in row-major batch
			// order, exactly like the legacy per-layer Forward
			s.prepass.TrainPrepass(n, nn.TrainCache{Ints: s.ints, Floats: s.floats})
		}
		if e.chunks <= 1 || n == 1 {
			s.fwdBody(0, 0, n)
		} else {
			e.pool.RunWith(&e.wg, n, e.chunks, s.fwdBody)
		}
		cur = s.out
	}
	return cur
}

// backward consumes e.lossGrad (dL/d logits), back-propagates through the
// plan and folds every step's gradient shards into its Param.Grad tensors.
func (e *Engine) backward() {
	n := e.curN
	up := e.lossGrad
	for i := len(e.steps) - 1; i >= 0; i-- {
		s := e.steps[i]
		s.gradOut = up
		if s.bwdPrep != nil && s.grad != nil {
			// serial: whatever the hook prepares (e.g. a transposed weight
			// view) is read-only to the chunked bodies below
			s.bwdPrep.TrainBackPrep()
		}
		if e.chunks <= 1 || n == 1 {
			s.bwdBody(0, 0, n)
		} else {
			e.pool.RunWith(&e.wg, n, e.chunks, s.bwdBody)
		}
		for b, body := range s.redBodies {
			if e.chunks <= 1 {
				body(0, 0, s.redLens[b])
			} else {
				e.pool.RunWith(&e.wg, s.redLens[b], e.chunks, body)
			}
		}
		up = s.grad
	}
}

// ForwardBackward runs one training step's compute on a (N, inDim) batch with
// integer labels: forward pass, mean softmax cross-entropy, backward pass.
// Every Param.Grad holds the batch gradient afterwards (overwritten — on the
// F64 tier matching the legacy ZeroGrad-then-Backward sequence bit for bit)
// and the input gradient is available from InputGrad() when compiled with the
// tap. Returns the loss, or ErrEmptyBatch for an N=0 batch. Steady state
// performs zero heap allocations.
func (e *Engine) ForwardBackward(x *tensor.Tensor, labels []int) (float64, error) {
	n := x.Dim(0)
	if n == 0 {
		return 0, ErrEmptyBatch
	}
	e.counter.Charge(e.perStep.Scale(uint64(n)))
	if e.prec == tensor.F32 {
		return e.stepF32(x, func(logits *tensor.Tensor) float64 {
			return nn.CrossEntropyInto(e.lossGrad, logits, labels)
		}), nil
	}
	logits := e.forward(x)
	loss := nn.CrossEntropyInto(e.lossGrad, logits, labels)
	e.backward()
	return loss, nil
}

// ForwardBackwardSoft is ForwardBackward against target probability
// distributions (label smoothing, the O-TP soft/hard constraint terms).
func (e *Engine) ForwardBackwardSoft(x, target *tensor.Tensor) (float64, error) {
	n := x.Dim(0)
	if n == 0 {
		return 0, ErrEmptyBatch
	}
	e.counter.Charge(e.perStep.Scale(uint64(n)))
	if e.prec == tensor.F32 {
		return e.stepF32(x, func(logits *tensor.Tensor) float64 {
			return nn.SoftCrossEntropyInto(e.lossGrad, logits, target)
		}), nil
	}
	logits := e.forward(x)
	loss := nn.SoftCrossEntropyInto(e.lossGrad, logits, target)
	e.backward()
	return loss, nil
}

// Precision returns the numeric tier the plan compiled on.
func (e *Engine) Precision() tensor.Precision { return e.prec }

// Logits returns the (N, outDim) logits of the most recent pass as a view
// into the engine workspace, valid until the next call. On the F32 tier the
// view holds the widened float32 logits.
func (e *Engine) Logits() *tensor.Tensor {
	if e.f32 != nil {
		return e.f32.logits
	}
	return e.steps[len(e.steps)-1].out
}

// InputGrad returns dL/d(input) of the most recent backward pass as a
// (N, inDim) view into the engine workspace, valid until the next call. It
// panics unless the engine was compiled with Options.InputGrad. On the F32
// tier the view holds the widened float32 gradient.
func (e *Engine) InputGrad() *tensor.Tensor {
	if !e.inputGrad {
		panic("tengine: InputGrad requires Options.InputGrad at compile time")
	}
	if e.f32 != nil {
		return e.f32.inGrad
	}
	return e.steps[0].grad
}

// isPassthrough reports whether the layer is elided from training plans.
func isPassthrough(l nn.Layer) bool {
	p, ok := l.(nn.TrainPassthrough)
	return ok && p.TrainPassthrough()
}

func volume(shape []int) int {
	v := 1
	for _, d := range shape {
		v *= d
	}
	return v
}
