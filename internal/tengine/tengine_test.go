package tengine_test

import (
	"math"
	"runtime"
	"testing"
	"time"

	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/rng"
	"reramtest/internal/tengine"
	"reramtest/internal/tensor"
)

// seedModels enumerates every architecture the repo ships, plus one synthetic
// stack that exercises the passthrough elisions (Flatten, inference-mode
// Dropout would be elided; here Dropout runs in training mode) and the
// tanh/sigmoid backward kernels. The golden gate below demands exact float64
// equality against the legacy per-layer Forward/ZeroGrad/Backward path.
func seedModels() []struct {
	name    string
	build   func(r *rng.RNG) *nn.Network
	classes int
} {
	return []struct {
		name    string
		build   func(r *rng.RNG) *nn.Network
		classes int
	}{
		{"lenet5", models.LeNet5, 10},
		{"convnet7", models.ConvNet7, 10},
		{"mlp", func(r *rng.RNG) *nn.Network {
			return models.MLP(r, 16, []int{24, 16}, 6)
		}, 6},
		{"mlp-deep", func(r *rng.RNG) *nn.Network {
			return models.MLP(r, 32, []int{40, 32, 20}, 8)
		}, 8},
		{"dropout-flatten", func(r *rng.RNG) *nn.Network {
			return nn.NewNetwork("dp", 12,
				nn.NewDense("fc1", r, 12, 20),
				nn.NewTanh("t1"),
				nn.NewDropout("drop", r, 0.5),
				nn.NewFlatten("flat"),
				nn.NewDense("fc2", r, 20, 10),
				nn.NewSigmoid("s1"),
				nn.NewDense("fc3", r, 10, 4),
			)
		}, 4},
	}
}

// legacyStep is the reference gradient computation the rest of the repo used
// before the training engine existed: whole-batch layer-wise forward, loss on
// the logits, ZeroGrad, layer-wise backward. Returns the loss, a clone of the
// logits and the input gradient.
func legacyStep(net *nn.Network, x *tensor.Tensor, labels []int, target *tensor.Tensor) (float64, *tensor.Tensor, *tensor.Tensor) {
	logits := net.Forward(x)
	keep := logits.Clone()
	var loss float64
	var grad *tensor.Tensor
	if target != nil {
		loss, grad = nn.SoftCrossEntropy(logits, target)
	} else {
		loss, grad = nn.CrossEntropy(logits, labels)
	}
	net.ZeroGrad()
	gx := net.Backward(grad)
	return loss, keep, gx
}

func randBatch(seed int64, n, dim, classes int) (*tensor.Tensor, []int) {
	x := tensor.RandUniform(rng.New(seed), 0, 1, n, dim)
	labels := make([]int, n)
	for j := range labels {
		labels[j] = j % classes
	}
	return x, labels
}

// TestForwardBackwardMatchesLegacy is the golden bit-identity gate: every
// seed model, serial and pooled engines, batch sizes 1/7/32 streamed through
// ONE engine (so the workspace-view rebuild path is exercised), hard and
// smoothed-soft targets. Loss, logits, every parameter gradient and the input
// gradient must match the legacy path to the last bit. Dropout models are
// rebuilt from the same seed for each arm so both arms consume identical
// mask streams.
func TestForwardBackwardMatchesLegacy(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	configs := []struct {
		name string
		opts tengine.Options
	}{
		{"serial", tengine.Options{Workers: 1, MaxBatch: 32, InputGrad: true}},
		{"pool4", tengine.Options{Pool: pool, MaxBatch: 32, InputGrad: true}},
	}
	for _, m := range seedModels() {
		for _, cfg := range configs {
			t.Run(m.name+"/"+cfg.name, func(t *testing.T) {
				legacy := m.build(rng.New(3))
				subject := m.build(rng.New(3))
				legacy.SetTraining(true)
				subject.SetTraining(true)
				eng := tengine.MustCompile(subject, cfg.opts)
				for pass, n := range []int{1, 7, 32, 7} {
					x, labels := randBatch(int64(40+pass), n, legacy.InDim(), m.classes)
					var target *tensor.Tensor
					if pass == 3 { // one smoothed soft-target pass
						target = tensor.Full(0.1/float64(m.classes-1), n, m.classes)
						td := target.Data()
						for s, y := range labels {
							td[s*m.classes+y] = 0.9
						}
					}
					wantLoss, wantLogits, wantGX := legacyStep(legacy, x, labels, target)
					var gotLoss float64
					var stepErr error
					if target != nil {
						gotLoss, stepErr = eng.ForwardBackwardSoft(x, target)
					} else {
						gotLoss, stepErr = eng.ForwardBackward(x, labels)
					}
					if stepErr != nil {
						t.Fatalf("n=%d pass=%d: %v", n, pass, stepErr)
					}
					if math.Float64bits(wantLoss) != math.Float64bits(gotLoss) {
						t.Fatalf("n=%d pass=%d: loss %v != legacy %v", n, pass, gotLoss, wantLoss)
					}
					if !eng.Logits().Equal(wantLogits) {
						t.Fatalf("n=%d pass=%d: logits diverge from legacy", n, pass)
					}
					if !eng.InputGrad().Equal(wantGX) {
						t.Fatalf("n=%d pass=%d: input gradient diverges from legacy", n, pass)
					}
					wp, gp := legacy.Params(), subject.Params()
					for i := range wp {
						if !gp[i].Grad.Equal(wp[i].Grad) {
							t.Fatalf("n=%d pass=%d: gradient of %s diverges from legacy", n, pass, wp[i].Name)
						}
					}
				}
			})
		}
	}
}

// TestTrainingRunBitIdentical drives multi-step momentum-SGD training through
// three arms — legacy per-layer loop, serial engine, pooled engine — and
// demands bit-identical final weights. This is the determinism contract of
// the fixed-order shard reduction: parallelism must not move a single bit of
// the trained model.
func TestTrainingRunBitIdentical(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	for _, m := range seedModels() {
		if m.name == "convnet7" && testing.Short() {
			continue
		}
		t.Run(m.name, func(t *testing.T) {
			legacy := m.build(rng.New(5))
			serial := m.build(rng.New(5))
			pooled := m.build(rng.New(5))
			for _, net := range []*nn.Network{legacy, serial, pooled} {
				net.SetTraining(true)
			}
			const steps, batch = 8, 7
			lOpt := opt.NewSGD(legacy.Params(), 0.05, 0.9, 1e-4)
			sOpt := opt.NewSGD(serial.Params(), 0.05, 0.9, 1e-4)
			pOpt := opt.NewSGD(pooled.Params(), 0.05, 0.9, 1e-4)
			se := tengine.MustCompile(serial, tengine.Options{Workers: 1, MaxBatch: batch})
			pe := tengine.MustCompile(pooled, tengine.Options{Pool: pool, MaxBatch: batch})
			for step := 0; step < steps; step++ {
				x, labels := randBatch(int64(70+step), batch, legacy.InDim(), m.classes)
				logits := legacy.Forward(x)
				_, grad := nn.CrossEntropy(logits, labels)
				legacy.ZeroGrad()
				legacy.Backward(grad)
				lOpt.Step()
				se.ForwardBackward(x, labels)
				sOpt.StepAndZero()
				pe.ForwardBackward(x, labels)
				pOpt.StepAndZero()
			}
			lp, sp, pp := legacy.Params(), serial.Params(), pooled.Params()
			for i := range lp {
				if !sp[i].Value.Equal(lp[i].Value) {
					t.Errorf("serial engine weights of %s diverge from legacy", lp[i].Name)
				}
				if !pp[i].Value.Equal(lp[i].Value) {
					t.Errorf("pooled engine weights of %s diverge from legacy", lp[i].Name)
				}
			}
		})
	}
}

// TestForwardBackwardAllocFree pins the tentpole guarantee: after the first
// call sizes the workspaces, ForwardBackward and ForwardBackwardSoft perform
// zero heap allocations per step on every seed model, serial and pooled.
func TestForwardBackwardAllocFree(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	for _, m := range seedModels() {
		for _, cfg := range []struct {
			name string
			opts tengine.Options
		}{
			{"serial", tengine.Options{Workers: 1, MaxBatch: 8, InputGrad: true}},
			{"pool4", tengine.Options{Pool: pool, MaxBatch: 8, InputGrad: true}},
		} {
			t.Run(m.name+"/"+cfg.name, func(t *testing.T) {
				net := m.build(rng.New(9))
				net.SetTraining(true)
				eng := tengine.MustCompile(net, cfg.opts)
				x, labels := randBatch(99, 8, net.InDim(), m.classes)
				target := nn.UniformLabels(8, m.classes)
				eng.ForwardBackward(x, labels) // size workspaces
				eng.ForwardBackwardSoft(x, target)
				if a := testing.AllocsPerRun(10, func() { eng.ForwardBackward(x, labels) }); a != 0 {
					t.Errorf("ForwardBackward allocates %.1f objects/op, want 0", a)
				}
				if a := testing.AllocsPerRun(10, func() { eng.ForwardBackwardSoft(x, target) }); a != 0 {
					t.Errorf("ForwardBackwardSoft allocates %.1f objects/op, want 0", a)
				}
			})
		}
	}
}

// opaqueLayer implements nn.Layer but not the TrainKernel contract; Compile
// must reject it with a useful error instead of silently falling back.
type opaqueLayer struct{ nn.Layer }

func (o opaqueLayer) Name() string                           { return "opaque" }
func (o opaqueLayer) Forward(x *tensor.Tensor) *tensor.Tensor { return x }
func (o opaqueLayer) Backward(g *tensor.Tensor) *tensor.Tensor {
	return g
}
func (o opaqueLayer) Params() []*nn.Param        { return nil }
func (o opaqueLayer) Clone() nn.Layer            { return o }
func (o opaqueLayer) OutputShape(in []int) []int { return in }

func TestCompileRejectsUnsupportedLayer(t *testing.T) {
	net := nn.NewNetwork("bad", 4,
		nn.NewDense("fc", rng.New(1), 4, 4),
		opaqueLayer{},
	)
	if _, err := tengine.Compile(net, tengine.Options{}); err == nil {
		t.Fatal("Compile accepted a layer without a train kernel")
	}
}

// TestPoolShutdownNoGoroutineLeak compiles and runs a pooled engine, closes
// the pool, and verifies the worker goroutines drain — the leak check the
// race-enabled CI lane relies on.
func TestPoolShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	pool := tensor.NewPool(4)
	net := models.MLP(rng.New(2), 16, []int{24, 16}, 6)
	net.SetTraining(true)
	eng := tengine.MustCompile(net, tengine.Options{Pool: pool, MaxBatch: 8})
	x, labels := randBatch(1, 8, 16, 6)
	for i := 0; i < 5; i++ {
		eng.ForwardBackward(x, labels)
	}
	pool.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("pool workers leaked: %d goroutines before, %d after Close", before, runtime.NumGoroutine())
}
