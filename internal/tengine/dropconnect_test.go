package tengine_test

import (
	"strings"
	"testing"

	"reramtest/internal/dataset"
	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/rng"
	"reramtest/internal/tengine"
	"reramtest/internal/tensor"
)

func dcToy(seed int64) (*nn.Network, *dataset.Dataset) {
	train := dataset.SynthDigits(40, dataset.DefaultDigitsConfig(200))
	net := models.MLP(rng.New(seed), train.SampleDim(), []int{20}, 10)
	return net, train
}

// Drop-connect training must be bit-identical between a serial engine and a
// pooled one: masks are drawn serially outside the kernels, and the engine's
// fixed-order folds guarantee the rest.
func TestDropConnectSerialPooledBitIdentical(t *testing.T) {
	runDC := func(workers int) *nn.Network {
		net, train := dcToy(51)
		net.SetTraining(true)
		eng := tengine.MustCompile(net, tengine.Options{MaxBatch: 16, Workers: workers})
		dc := tengine.NewDropConnect(eng, 0.2, rng.New(52))
		sgd := opt.NewSGD(net.Params(), 0.05, 0.9, 0)
		it := train.BatchIterator(16)
		it.Reset(rng.New(53))
		for i := 0; i < 12; i++ {
			bx, by, ok := it.Next()
			if !ok {
				it.Reset(rng.New(int64(54 + i)))
				continue
			}
			dc.Step(bx, by)
			sgd.StepAndZero()
		}
		net.SetTraining(false)
		return net
	}
	serial, pooled := runDC(1), runDC(4)
	sp, pp := serial.Params(), pooled.Params()
	for i := range sp {
		sd, pd := sp[i].Value.Data(), pp[i].Value.Data()
		for j := range sd {
			if sd[j] != pd[j] {
				t.Fatalf("param %s[%d]: serial %v != pooled %v", sp[i].Name, j, sd[j], pd[j])
			}
		}
	}
}

// A step must leave the weights exactly as it found them (masking restored)
// — the optimizer, not the mask, is the only thing that moves weights.
func TestDropConnectStepRestoresWeights(t *testing.T) {
	net, train := dcToy(55)
	net.SetTraining(true)
	eng := tengine.MustCompile(net, tengine.Options{MaxBatch: 16})
	dc := tengine.NewDropConnect(eng, 0.3, rng.New(56))
	before := net.Clone()
	bx, by, _ := func() (*tensor.Tensor, []int, bool) {
		it := train.BatchIterator(16)
		it.Reset(rng.New(57))
		return it.Next()
	}()
	dc.Step(bx, by)
	bp, ap := before.Params(), net.Params()
	for i := range ap {
		bd, ad := bp[i].Value.Data(), ap[i].Value.Data()
		for j := range ad {
			if ad[j] != bd[j] {
				t.Fatalf("step moved weight %s[%d]: %v → %v", ap[i].Name, j, bd[j], ad[j])
			}
		}
	}
}

// Dropped positions must receive zero gradient: with p≈1 every weight is
// dropped every step, so weight gradients are all zero while bias gradients
// (never masked) still flow.
func TestDropConnectZeroesDroppedGradients(t *testing.T) {
	net, train := dcToy(58)
	net.SetTraining(true)
	eng := tengine.MustCompile(net, tengine.Options{MaxBatch: 16})
	dc := tengine.NewDropConnect(eng, 0.999999, rng.New(59))
	it := train.BatchIterator(16)
	it.Reset(rng.New(60))
	bx, by, _ := it.Next()
	dc.Step(bx, by)
	sawBiasGrad := false
	for _, p := range net.Params() {
		g := p.Grad.Data()
		if strings.HasSuffix(p.Name, ".weight") {
			for j := range g {
				if g[j] != 0 {
					t.Fatalf("dropped weight %s[%d] has gradient %v", p.Name, j, g[j])
				}
			}
		} else {
			for j := range g {
				if g[j] != 0 {
					sawBiasGrad = true
				}
			}
		}
	}
	if !sawBiasGrad {
		t.Fatal("bias gradients were masked too")
	}
}

func TestDropConnectSteadyStateAllocs(t *testing.T) {
	net, train := dcToy(61)
	net.SetTraining(true)
	eng := tengine.MustCompile(net, tengine.Options{MaxBatch: 16, Workers: 1})
	dc := tengine.NewDropConnect(eng, 0.2, rng.New(62))
	it := train.BatchIterator(16)
	it.Reset(rng.New(63))
	bx, by, _ := it.Next()
	dc.Step(bx, by) // warm up workspaces
	if allocs := testing.AllocsPerRun(20, func() { dc.Step(bx, by) }); allocs != 0 {
		t.Fatalf("drop-connect step allocates %v/op in steady state", allocs)
	}
}

func TestDropConnectRejectsBadP(t *testing.T) {
	net, _ := dcToy(64)
	eng := tengine.MustCompile(net, tengine.Options{MaxBatch: 4})
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%g accepted", p)
				}
			}()
			tengine.NewDropConnect(eng, p, rng.New(65))
		}()
	}
}
