package tengine_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/rng"
	"reramtest/internal/tengine"
	"reramtest/internal/tensor"
)

// TestForwardBackwardEmptyBatch is the N=0 regression for the typed
// sentinel: both step entry points must refuse an empty batch on every tier,
// without charging the counter or touching gradients.
func TestForwardBackwardEmptyBatch(t *testing.T) {
	for _, prec := range []tensor.Precision{tensor.F64, tensor.F32} {
		net := models.MLP(rng.New(3), 16, []int{24, 16}, 6)
		net.SetTraining(true)
		eng := tengine.MustCompile(net, tengine.Options{Workers: 1, Precision: prec})
		before := eng.Counter().Snapshot()
		empty := tensor.New(0, 16)
		if _, err := eng.ForwardBackward(empty, nil); !errors.Is(err, tengine.ErrEmptyBatch) {
			t.Fatalf("%v: ForwardBackward(empty) err = %v, want ErrEmptyBatch", prec, err)
		}
		if _, err := eng.ForwardBackwardSoft(empty, tensor.New(0, 6)); !errors.Is(err, tengine.ErrEmptyBatch) {
			t.Fatalf("%v: ForwardBackwardSoft(empty) err = %v, want ErrEmptyBatch", prec, err)
		}
		if after := eng.Counter().Snapshot(); after != before {
			t.Fatalf("%v: empty batch charged the hardware counter", prec)
		}
	}
}

// TestTrainF32GradientsTrackReference: one F32 step's gradients must agree
// with the f64 reference step's direction and magnitude within the forward
// error a float32 pipeline admits — a loose elementwise envelope scaled by
// the gradient's own magnitude, plenty to expose a transposed cache, a
// missing bias term or a wrong backward kernel (all order-1 relative errors).
func TestTrainF32GradientsTrackReference(t *testing.T) {
	build := func() *nn.Network {
		n := models.MLP(rng.New(21), 16, []int{24, 16}, 6)
		n.SetTraining(true)
		return n
	}
	refNet, f32Net := build(), build()
	ref := tengine.MustCompile(refNet, tengine.Options{Workers: 1, InputGrad: true})
	fast := tengine.MustCompile(f32Net, tengine.Options{Workers: 1, InputGrad: true, Precision: tensor.F32})
	if fast.Precision() != tensor.F32 {
		t.Fatal("Precision() does not report the compiled tier")
	}

	x := tensor.RandUniform(rng.New(22), 0, 1, 8, 16)
	labels := []int{0, 1, 2, 3, 4, 5, 0, 1}
	wantLoss, err := ref.ForwardBackward(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	gotLoss, err := fast.ForwardBackward(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotLoss-wantLoss) > 1e-4*(1+math.Abs(wantLoss)) {
		t.Fatalf("f32 loss %v too far from reference %v", gotLoss, wantLoss)
	}

	checkClose := func(name string, got, want *tensor.Tensor) {
		t.Helper()
		gd, wd := got.Data(), want.Data()
		scale := 1e-9
		for _, v := range wd {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := range wd {
			if e := math.Abs(gd[i] - wd[i]); e > 1e-4*scale {
				t.Fatalf("%s elem %d: |%g − %g| exceeds 1e-4·%g", name, i, gd[i], wd[i], scale)
			}
		}
	}
	rp, fp := refNet.Params(), f32Net.Params()
	for i := range rp {
		checkClose(rp[i].Name, fp[i].Grad, rp[i].Grad)
	}
	checkClose("logits", fast.Logits(), ref.Logits())
	checkClose("input-grad", fast.InputGrad(), ref.InputGrad())
}

// TestTrainF32Converges: the tier must actually train — SGD on the f64
// masters with f32-computed gradients drives the loss down on a toy problem.
func TestTrainF32Converges(t *testing.T) {
	net := models.MLP(rng.New(31), 8, []int{16}, 4)
	net.SetTraining(true)
	eng := tengine.MustCompile(net, tengine.Options{Workers: 1, Precision: tensor.F32, MaxBatch: 32})
	sgd := opt.NewSGD(net.Params(), 0.1, 0.9, 0)
	r := rng.New(32)
	x := tensor.RandUniform(r, 0, 1, 32, 8)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 4
	}
	first, err := eng.ForwardBackward(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	sgd.StepAndZero()
	var last float64
	for i := 0; i < 60; i++ {
		last, err = eng.ForwardBackward(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		sgd.StepAndZero()
	}
	if !(last < first/2) {
		t.Fatalf("f32 training did not converge: first loss %v, last %v", first, last)
	}
}

// TestTrainF32AllocFree: steady-state F32 steps allocate nothing.
func TestTrainF32AllocFree(t *testing.T) {
	net := models.MLP(rng.New(41), 16, []int{24, 16}, 6)
	net.SetTraining(true)
	eng := tengine.MustCompile(net, tengine.Options{Workers: 1, Precision: tensor.F32, MaxBatch: 16})
	x := tensor.RandUniform(rng.New(42), 0, 1, 16, 16)
	labels := make([]int, 16)
	eng.ForwardBackward(x, labels) // warmup
	if a := testing.AllocsPerRun(20, func() { eng.ForwardBackward(x, labels) }); a != 0 {
		t.Fatalf("f32 step allocates %v/op in steady state, want 0", a)
	}
}

// TestTrainPrecisionCompileErrors: I8 is inference-only and layers outside
// the dense/ReLU family have no f32 training path — both fail Compile with a
// diagnostic naming the limitation, never a silent fallback.
func TestTrainPrecisionCompileErrors(t *testing.T) {
	mlp := models.MLP(rng.New(5), 16, []int{24}, 6)
	if _, err := tengine.Compile(mlp, tengine.Options{Precision: tensor.I8}); err == nil ||
		!strings.Contains(err.Error(), "inference-only") {
		t.Fatalf("I8 compile error = %v, want inference-only diagnostic", err)
	}
	conv := models.LeNet5(rng.New(6))
	conv.SetTraining(true)
	if _, err := tengine.Compile(conv, tengine.Options{Precision: tensor.F32}); err == nil ||
		!strings.Contains(err.Error(), "float32 training path") {
		t.Fatalf("conv f32 compile error = %v, want no-f32-path diagnostic", err)
	}
}
