package campaign

import (
	"testing"

	"reramtest/internal/monitor"
	"reramtest/internal/rng"
)

// TestSoakGate is the PR's acceptance gate: across ≥20 seeded campaigns the
// hardened runtime must miss zero Critical-severity events, never flap the
// confirmed status on transient self-clearing glitches (while the raw
// un-debounced evidence demonstrably deviates in at least one window),
// recover ≥80% of repairable events to within the fidelity budget, and
// survive every poisoned readout without ever reporting it Healthy.
func TestSoakGate(t *testing.T) {
	if testing.Short() {
		t.Skip("soak gate needs the full campaign count")
	}
	cfg := DefaultConfig()
	results, err := RunMany(1000, 20, cfg)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	sc := Score(results, cfg.FidelityBudget)
	t.Logf("\n%s", sc)
	if err := sc.Gate(0.8); err != nil {
		t.Fatal(err)
	}
	if sc.TransientWindows == 0 {
		t.Fatal("no transient windows scored — flap criterion untested")
	}
	if sc.Persistent == 0 || sc.CriticalEvents == 0 {
		t.Fatalf("timelines too tame: persistent=%d critical=%d", sc.Persistent, sc.CriticalEvents)
	}
	if sc.RejectedReadouts == 0 || sc.RecoveredPanics == 0 {
		t.Fatalf("poisoned-readout paths unexercised: rejected=%d panics=%d",
			sc.RejectedReadouts, sc.RecoveredPanics)
	}
}

// TestPoisonedRoundsNeverHealthy asserts the ISSUE's survival criterion
// directly on the traces: every sensor-fault round must report a non-Healthy
// status.
func TestPoisonedRoundsNeverHealthy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 24
	results, err := RunMany(4000, 4, cfg)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	faultRounds := 0
	for _, res := range results {
		for _, rec := range res.Rounds {
			if !rec.SensorFault {
				continue
			}
			faultRounds++
			if rec.Raw == monitor.Healthy {
				t.Fatalf("seed %d round %d: sensor fault reported Healthy", res.Seed, rec.Round)
			}
		}
	}
	if faultRounds == 0 {
		t.Fatal("no sensor-fault rounds in 4 campaigns — poison glitches not firing")
	}
}

// TestRunDeterministic: same seed, same config → identical trace.
func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 20
	a, err := Run(99, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(99, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rounds) != len(b.Rounds) || len(a.Events) != len(b.Events) {
		t.Fatalf("trace shapes differ: %d/%d rounds, %d/%d events",
			len(a.Rounds), len(b.Rounds), len(a.Events), len(b.Events))
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("round %d differs:\n%+v\n%+v", i, a.Rounds[i], b.Rounds[i])
		}
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs:\n%+v\n%+v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestRandomTimelineShape sanity-checks the schedule generator.
func TestRandomTimelineShape(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		evs := RandomTimeline(rng.New(seed), 40)
		var noise, poison, persistent int
		last := 0
		for _, e := range evs {
			if e.Round <= last {
				t.Fatalf("seed %d: events out of order: %v", seed, evs)
			}
			last = e.Round
			switch {
			case e.Kind == KindGlitchNoise:
				noise++
			case e.Kind.Transient():
				poison++
			default:
				persistent++
			}
			if e.Round >= 40-4 {
				t.Fatalf("seed %d: event too late to repair: %v", seed, e)
			}
		}
		if noise == 0 || poison == 0 || persistent < 2 {
			t.Fatalf("seed %d: timeline missing mandatory events: %v", seed, evs)
		}
	}
}
