// The plant is the device-under-test a campaign soaks: a small trained MLP
// programmed onto simulated ReRAM crossbars, plus the probe set the harness
// uses to score functional recovery and the Repairer that executes the
// runtime's repair plan against the hardware.
//
// Fidelity is self-labelled: the probe labels are the *clean* model's own
// predictions, so commissioning fidelity is 1.0 by construction (modulo
// programming noise) and "recovered to within 2% of commissioning" is a pure
// statement about the accelerator's functional agreement with the model it
// was deployed with — no ground-truth dataset required, exactly like the
// concurrent-test setting itself.
package campaign

import (
	"context"
	"fmt"
	"math"
	"sync"

	"reramtest/internal/dataset"
	"reramtest/internal/engine"
	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// PlantConfig sizes the simulated device-under-test.
type PlantConfig struct {
	// In/Hidden/Classes shape the MLP workload.
	In      int
	Hidden  []int
	Classes int
	// TrainN/ProbeN size the self-labelled retraining and fidelity sets.
	TrainN, ProbeN int
	// Patterns is the concurrent-test set size (C-TP selection).
	Patterns int
	// ModelSeed fixes the workload (model + data); campaigns share it so the
	// expensive training happens once while fault timelines vary per seed.
	ModelSeed int64
	// Tile is the (square) crossbar array size.
	Tile int
	// ProgramSigma/DriftRate/DriftJitter are the device physics the plant
	// ages under.
	ProgramSigma, DriftRate, DriftJitter float64
	// RetrainEpochs bounds the fault-aware retraining repair.
	RetrainEpochs int

	// Ladder exposes the plant's pluggable repair-strategy suite
	// (scrub → remap → retrain) to the health runtime; when false the plant
	// repairs through the legacy fixed-action path only.
	Ladder bool
	// RetrainOnly restricts the exposed suite to the retrain strategy — the
	// lifetime soak's control arm, charged in the same cost units as the
	// full ladder.
	RetrainOnly bool
	// SpareRows provisions spare lines per crossbar for stuck-at remapping
	// (0 → 2 when Ladder is set).
	SpareRows int
	// ScrubTol is the relative conductance-error band for scrub/remap
	// diagnosis (0 → 0.25).
	ScrubTol float64
	// RemapMaxPerLine is the stuck-cell count above which a whole line is
	// remapped to a spare instead of corrected cell-by-cell (0 → 2).
	RemapMaxPerLine int

	// Harden fine-tunes the workload model under drop-connect weight masking
	// at commissioning, baking stuck-at tolerance into the weights before
	// they are ever programmed (arXiv:2404.15498).
	Harden bool
	// HardenP/HardenEpochs tune the hardening schedule (0 → 0.1 / 2).
	HardenP      float64
	HardenEpochs int
}

// DefaultPlantConfig returns a seconds-scale plant: a 3-layer MLP on 32×32
// crossbar tiles with mild programming noise.
func DefaultPlantConfig() PlantConfig {
	return PlantConfig{
		In: 16, Hidden: []int{24, 16}, Classes: 6,
		TrainN: 600, ProbeN: 256, Patterns: 16,
		ModelSeed: 7, Tile: 32,
		ProgramSigma: 0.02, DriftRate: 0.002, DriftJitter: 0.004,
		RetrainEpochs: 2,
	}
}

// template is the immutable, shareable part of a plant: the trained clean
// model, the self-labelled datasets and the pattern set. Campaigns only ever
// read it (repairs clone before mutating), so one template serves every seed
// of the same PlantConfig.
type template struct {
	clean    *nn.Network
	train    *dataset.Dataset // labels = clean model predictions
	probe    *dataset.Dataset
	patterns *testgen.PatternSet
}

var (
	templateMu    sync.Mutex
	templateCache = map[string]*template{}
)

// templateKey ignores the knobs that do not shape the template itself
// (repair-suite wiring, device spares), so the ladder and retrain-only arms
// of a lifetime soak share one trained workload model.
func templateKey(cfg PlantConfig) string {
	cfg.Ladder, cfg.RetrainOnly = false, false
	cfg.SpareRows, cfg.ScrubTol, cfg.RemapMaxPerLine = 0, 0, 0
	return fmt.Sprintf("%+v", cfg)
}

// buildTemplate trains the workload model on synthetic Gaussian-cluster data
// and self-labels the retrain/probe sets with its predictions.
func buildTemplate(cfg PlantConfig) *template {
	templateMu.Lock()
	defer templateMu.Unlock()
	if t, ok := templateCache[templateKey(cfg)]; ok {
		return t
	}
	r := rng.New(cfg.ModelSeed)
	pool := clusterData(r.Split(), cfg, cfg.TrainN+cfg.ProbeN+4*cfg.Patterns)
	net := models.MLP(r.Split(), cfg.In, cfg.Hidden, cfg.Classes)
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = 5
	tcfg.Seed = r.Int63()
	models.Train(net, pool, nil, tcfg)
	if cfg.Harden {
		// commissioning-time drop-connect hardening: the deployed weights are
		// fault-aware BEFORE self-labelling, so commissioning fidelity stays
		// 1.0 by construction against the hardened model
		hcfg := repair.DefaultHardenConfig()
		if cfg.HardenP > 0 {
			hcfg.DropP = cfg.HardenP
		}
		if cfg.HardenEpochs > 0 {
			hcfg.Epochs = cfg.HardenEpochs
		}
		hcfg.Seed = r.Int63()
		repair.HardenDropConnect(net, pool, nil, hcfg)
	}

	// self-label everything with the trained model's predictions
	pool.Y = net.Predict(pool.X)
	train := pool.Head(cfg.TrainN)
	probeIdx := make([]int, cfg.ProbeN)
	for i := range probeIdx {
		probeIdx[i] = cfg.TrainN + i
	}
	probe := pool.Subset(probeIdx)

	t := &template{clean: net, train: train, probe: probe,
		patterns: testgen.SelectCTP(net, pool, cfg.Patterns)}
	templateCache[templateKey(cfg)] = t
	return t
}

// clusterData renders a synthetic classification workload: one Gaussian
// prototype per class in [0,1]^In with per-sample jitter.
func clusterData(r *rng.RNG, cfg PlantConfig, n int) *dataset.Dataset {
	protos := make([][]float64, cfg.Classes)
	for c := range protos {
		protos[c] = make([]float64, cfg.In)
		for i := range protos[c] {
			protos[c][i] = r.Float64()
		}
	}
	x := tensor.New(n, cfg.In)
	y := make([]int, n)
	xd := x.Data()
	for s := 0; s < n; s++ {
		c := s % cfg.Classes
		y[s] = c
		row := xd[s*cfg.In : (s+1)*cfg.In]
		for i := range row {
			row[i] = clamp01(protos[c][i] + r.Normal(0, 0.12))
		}
	}
	return &dataset.Dataset{Name: "clusters", Classes: cfg.Classes, C: 1, H: 1, W: cfg.In, X: x, Y: y}
}

func clamp01(v float64) float64 { return math.Min(1, math.Max(0, v)) }

// GlitchMode is how a transient sensor glitch corrupts the readout.
type GlitchMode int

// Transient glitch modes. Noise perturbs confidences enough to cross a
// status threshold (the flap-inducing case); the other three are poisoned
// readouts the runtime must reject: NaN confidences, a wrong-shape tensor,
// and an Infer that panics outright.
const (
	GlitchNoise GlitchMode = iota
	GlitchNaN
	GlitchShape
	GlitchPanic
)

// String names the glitch mode.
func (g GlitchMode) String() string {
	switch g {
	case GlitchNoise:
		return "noise"
	case GlitchNaN:
		return "nan"
	case GlitchShape:
		return "shape"
	default:
		return "panic"
	}
}

// Plant is one campaign's device-under-test. It implements health.Repairer,
// and — when cfg.Ladder or cfg.RetrainOnly exposes the strategy suite —
// health.StrategyRepairer.
type Plant struct {
	cfg     PlantConfig
	tmpl    *template
	ref     *nn.Network // current reference weights (changes after retrain)
	accel   *reram.Accelerator
	r       *rng.RNG
	untyped int // repair-strategy errors that failed the typed-error contract

	round                  int // current campaign round, set by the runner
	glitchMode             GlitchMode
	glitchFrom, glitchUpto int // active round window [from, upto)

	// counter is the plant's lifetime hardware-cost meter. It is the plant's
	// own, not the accelerator's default: a module replacement swaps the
	// accelerator but the device's cost history spans parts, so the counter
	// re-attaches to every new accelerator and to the readout engine.
	counter *reram.Counter

	// eng is the compiled inference plan over the accelerator's cached
	// readout network; every monitored readout and fidelity probe reuses its
	// workspaces. It rebinds (or recompiles) when a module replacement swaps
	// the accelerator out from under it.
	eng *engine.Engine
}

// NewPlant programs the shared workload model onto a fresh simulated
// accelerator. seed individualises the device (programming noise, drift
// randomness), not the workload.
func NewPlant(seed int64, cfg PlantConfig) *Plant {
	tmpl := buildTemplate(cfg)
	// own clone of the shared template model: Forward passes use per-layer
	// scratch buffers, so concurrent plants (parallel campaigns, fleet
	// ticks) must never route through one shared instance
	p := &Plant{cfg: cfg, tmpl: tmpl, ref: tmpl.clean.Clone(), r: rng.New(seed),
		counter: reram.NewCounter()}
	p.accel = reram.NewAccelerator(p.ref, p.reramConfig(), p.r.Int63())
	p.accel.SetCounter(p.counter)
	return p
}

// CostCounter implements fleet.CostMetered: the plant's lifetime hardware
// spend, surviving module replacements and readout-engine recompiles.
func (p *Plant) CostCounter() *reram.Counter { return p.counter }

func (p *Plant) reramConfig() reram.Config {
	rc := reram.DefaultConfig()
	rc.TileRows, rc.TileCols = p.cfg.Tile, p.cfg.Tile
	rc.Device.ProgramSigma = p.cfg.ProgramSigma
	rc.Device.DriftRate = p.cfg.DriftRate
	rc.Device.DriftJitter = p.cfg.DriftJitter
	rc.Device.SpareRows = p.spareRows()
	return rc
}

// Ladder-knob defaults: only meaningful when cfg.Ladder (or RetrainOnly)
// exposes the strategy suite.
func (p *Plant) spareRows() int {
	if p.cfg.SpareRows > 0 {
		return p.cfg.SpareRows
	}
	if p.cfg.Ladder {
		return 2
	}
	return 0
}

func (p *Plant) scrubTol() float64 {
	if p.cfg.ScrubTol > 0 {
		return p.cfg.ScrubTol
	}
	// Tight by default: a scrub that leaves cells 25% off their programmed
	// level verifies at the monitor yet drags probe fidelity well below the
	// retrain-only control. 10% of the conductance window keeps the repaired
	// array functionally close to the reference.
	return 0.10
}

func (p *Plant) remapMaxPerLine() int {
	if p.cfg.RemapMaxPerLine > 0 {
		return p.cfg.RemapMaxPerLine
	}
	return 2
}

// Reference returns the model the monitor should currently be commissioned
// against.
func (p *Plant) Reference() *nn.Network { return p.ref }

// Patterns returns the concurrent-test pattern set.
func (p *Plant) Patterns() *testgen.PatternSet { return p.tmpl.patterns }

// Accelerator exposes the simulated hardware for event injection.
func (p *Plant) Accelerator() *reram.Accelerator { return p.accel }

// SetRound advances the plant's notion of campaign time; glitch windows are
// keyed to it so every readout retry within a poisoned round stays poisoned.
func (p *Plant) SetRound(round int) { p.round = round }

// StartGlitch arms a transient sensor glitch covering rounds
// [from, from+duration).
func (p *Plant) StartGlitch(mode GlitchMode, from, duration int) {
	p.glitchMode, p.glitchFrom, p.glitchUpto = mode, from, from+duration
}

func (p *Plant) glitchActive() bool {
	return p.round >= p.glitchFrom && p.round < p.glitchUpto
}

// readoutEngine refreshes the accelerator's cached readout network and
// returns the inference plan bound to it. The refresh mutates parameters in
// place, so in steady state the existing binding just sees the new weights;
// after a module replacement the new accelerator's readout rebinds into the
// same compiled plan (same architecture), reusing every workspace.
func (p *Plant) readoutEngine() *engine.Engine {
	ro := p.accel.RefreshReadout()
	if p.eng == nil || p.eng.Rebind(ro) != nil {
		p.eng = engine.MustCompile(ro, engine.Options{Counter: p.counter})
	}
	return p.eng
}

// BaseInfer is the unglitched readout path (weight-level view, matching the
// statistical abstraction the paper's sweeps use). The whole pattern batch
// runs through the plant's batched readout engine — bit-identical to the
// former per-sample Forward path, without its per-call clone of the readout
// network.
func (p *Plant) BaseInfer() monitor.Infer {
	return func(x *tensor.Tensor) *tensor.Tensor {
		return p.readoutEngine().Probs(x)
	}
}

// Infer is the monitored readout path, including any active transient
// glitch.
func (p *Plant) Infer() monitor.Infer {
	base := p.BaseInfer()
	return func(x *tensor.Tensor) *tensor.Tensor {
		if !p.glitchActive() {
			return base(x)
		}
		switch p.glitchMode {
		case GlitchPanic:
			panic("campaign: transient sensor glitch")
		case GlitchShape:
			return tensor.New(1, 1)
		case GlitchNaN:
			probs := base(x)
			probs.Data()[0] = math.NaN()
			return probs
		default: // GlitchNoise: mix confidences toward uniform, enough to
			// cross the Degraded threshold for exactly the glitch window
			probs := base(x)
			uniform := 1.0 / float64(probs.Dim(1))
			const alpha = 0.35
			probs.Apply(func(v float64) float64 { return (1-alpha)*v + alpha*uniform })
			return probs
		}
	}
}

// Fidelity measures the accelerator's functional agreement with the clean
// model on the probe set (1.0 = perfect agreement). The probe sweep runs
// through the batched readout engine with the same batching and argmax
// tie-breaking as nn.Network.Accuracy.
func (p *Plant) Fidelity() float64 {
	return p.readoutEngine().Accuracy(p.tmpl.probe.X, p.tmpl.probe.Y, 64)
}

// ShadowStatus classifies the accelerator's current raw severity through a
// fresh monitor commissioned against the current reference — the campaign's
// ground-truth label for an injected event. It bypasses glitches and leaves
// the runtime's monitor history untouched.
func (p *Plant) ShadowStatus(cfg monitor.Config) monitor.Status {
	shadow := monitor.MustNew(p.ref, p.tmpl.patterns, nil, cfg)
	return shadow.Check(p.BaseInfer()).Status
}

// Apply implements health.Repairer against the simulated hardware.
func (p *Plant) Apply(action repair.Action) (*nn.Network, error) {
	switch action {
	case repair.NoAction:
		return nil, nil
	case repair.Reprogram:
		p.accel.Reprogram()
		return nil, nil
	case repair.Retrain:
		// cloud-edge path: diagnose stuck cells (leaves arrays reprogrammed),
		// fine-tune the readout weights around the frozen faults on the
		// self-labelled set, redeploy, and hand the new reference back for
		// monitor recommissioning
		stuck, err := repair.DiagnoseStuck(p.accel, p.ref, 0.3)
		if err != nil {
			return nil, err
		}
		faulty := p.accel.ReadoutNetwork()
		rcfg := repair.DefaultRetrainConfig()
		rcfg.Epochs = p.cfg.RetrainEpochs
		rcfg.Seed = p.r.Int63()
		repair.RetrainAround(faulty, stuck, p.tmpl.train, nil, rcfg)
		p.accel.ProgramNetwork(faulty)
		p.ref = faulty
		return faulty, nil
	case repair.Replace:
		// module replacement: a fresh part programmed with the original
		// clean weights (cloned — the template stays shared and immutable)
		p.ref = p.tmpl.clean.Clone()
		p.accel = reram.NewAccelerator(p.ref, p.reramConfig(), p.r.Int63())
		p.accel.SetCounter(p.counter) // cost history spans the replacement
		// unlike fab-time commissioning, programming a replacement part in
		// the field is repair work the fleet pays for: charge the full write
		// pass to the repair class (integer bookkeeping only — device state
		// and numerics are untouched)
		p.counter.ChargeClass(reram.ClassRepair, p.accel.CommissionCost())
		return p.ref, nil
	default:
		return nil, fmt.Errorf("campaign: unknown repair action %v", action)
	}
}

// Diagnose implements health.StrategyRepairer: an RNG-free census of what is
// wrong with the hardware right now. Stuck counts only UNCOMPENSATED pair
// positions — a stuck cell whose differential partner already re-encodes the
// weight around it no longer motivates a remap.
func (p *Plant) Diagnose(confirmed monitor.Status) repair.Diagnosis {
	tol := p.scrubTol()
	_, uncompensated := p.accel.StuckStats(tol)
	return repair.Diagnosis{
		Status:  confirmed,
		Drifted: p.accel.DriftedCells(tol),
		Stuck:   uncompensated,
		Spares:  p.accel.SpareLines(),
	}
}

// Strategies implements health.StrategyRepairer: the plant's repair ladder in
// escalation order. Empty unless the campaign opted in (cfg.Ladder), which
// keeps legacy campaigns on the fixed-action path byte-for-byte. The
// RetrainOnly variant is the lifetime soak's control arm: the same cost
// accounting with the cloud-edge retrain as the only rung.
func (p *Plant) Strategies() []repair.Strategy {
	if !p.cfg.Ladder && !p.cfg.RetrainOnly {
		return nil
	}
	retrain := p.counted(p.retrainStrategy())
	if p.cfg.RetrainOnly {
		return []repair.Strategy{retrain}
	}
	tol := p.scrubTol()
	scrub := repair.NewScrub(p.accel, tol)
	return []repair.Strategy{
		// scrub is gated to drift-DOMINATED diagnoses: rewriting healthy
		// cells cannot clear stuck-at damage, and a rung that predictably
		// fails verification is budget burned before the rung that works
		p.counted(repair.Func{
			StrategyName: scrub.Name(), StrategyCost: scrub.Cost(),
			When: func(d repair.Diagnosis) bool { return scrub.Applicable(d) && d.Drifted > d.Stuck },
			Do:   scrub.Apply,
		}),
		p.counted(repair.NewRemap(p.accel, p.remapMaxPerLine(), tol)),
		retrain,
	}
}

// retrainStrategy wraps the shared retrain rung so a successful retrain also
// moves the plant's own reference pointer (the Report.NewRef hand-back only
// recommissions the monitor).
func (p *Plant) retrainStrategy() repair.Strategy {
	inner := repair.NewRetrain(p.accel, func() *nn.Network { return p.ref },
		p.tmpl.train, nil, 0.3, func() repair.RetrainConfig {
			rcfg := repair.DefaultRetrainConfig()
			rcfg.Epochs = p.cfg.RetrainEpochs
			rcfg.Seed = p.r.Int63()
			return rcfg
		})
	return repair.Func{
		StrategyName: inner.Name(), StrategyCost: inner.Cost(), When: inner.Applicable,
		Do: func(ctx context.Context, d repair.Diagnosis) (repair.Report, error) {
			rep, err := inner.Apply(ctx, d)
			if err == nil && rep.NewRef != nil {
				p.ref = rep.NewRef
			}
			return rep, err
		},
	}
}

// counted decorates a strategy with the typed-error audit the lifetime soak
// gates on: every Apply error must satisfy repair.IsTyped.
func (p *Plant) counted(s repair.Strategy) repair.Strategy {
	return repair.Func{
		StrategyName: s.Name(), StrategyCost: s.Cost(), When: s.Applicable,
		Do: func(ctx context.Context, d repair.Diagnosis) (repair.Report, error) {
			rep, err := s.Apply(ctx, d)
			if err != nil && !repair.IsTyped(err) {
				p.untyped++
			}
			return rep, err
		},
	}
}

// UntypedRepairErrors reports how many strategy applications returned errors
// outside the typed *repair.Error / *repair.DiagnosisError contract.
func (p *Plant) UntypedRepairErrors() int { return p.untyped }
