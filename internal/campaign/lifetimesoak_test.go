package campaign

import (
	"reflect"
	"testing"

	"reramtest/internal/repair"
)

// lifetimeGateSeed is the pinned demonstration seed for the lifetime-soak
// gate: on it the ladder beats the retrain-only control decisively (less
// than half the budget spend, no extra retirements, a better fidelity
// floor). The seed is pinned because the gate is a reproducible benchmark
// claim, not a statistical one — determinism per seed is what the test
// suite asserts; TestLifetimeSoakDeterministic proves it.
const lifetimeGateSeed = 11

// TestLifetimeSoakGate is the PR's acceptance property: the three-arm soak
// must pass every gate — ladder economics beat retrain-only at an
// equal-or-better fidelity floor, zero untyped strategy errors, and exact
// crash/restart parity on journaled strategy decisions.
func TestLifetimeSoakGate(t *testing.T) {
	if testing.Short() {
		t.Skip("lifetime soak gate is seconds-scale")
	}
	res, err := RunLifetimeSoak(lifetimeGateSeed, DefaultLifetimeSoakConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if !res.Pass() {
		t.Fatalf("lifetime soak gate failed:\n%s", res)
	}
	// the economics must be a strict win on the demonstration seed, not a tie
	if res.Ladder.CostSpent >= res.RetrainOnly.CostSpent {
		t.Errorf("ladder spend %d did not beat retrain-only %d",
			res.Ladder.CostSpent, res.RetrainOnly.CostSpent)
	}
	// the parity arm must actually have crashed and replayed — a soak that
	// never exercised the journal proves nothing about decision durability
	if want := len(DefaultLifetimeSoakConfig().Fleet.CrashAfter); res.Crashed.Replays != want {
		t.Errorf("crashed arm replays = %d, want %d", res.Crashed.Replays, want)
	}
	if res.Crashed.TruncatedBytes == 0 {
		t.Error("crashed arm never truncated a torn journal tail")
	}
	// the ladder arm must have used cheap rungs, not collapsed into a
	// retrain-only clone: at least one journaled decision below retrain cost
	cheap := false
	for _, id := range res.Ladder.Result.Devices {
		for _, d := range res.Ladder.Result.FinalSnapshot[id].Decisions {
			if d.Cost < repair.CostRetrain {
				cheap = true
			}
			if d.Strategy == "" || d.Cost < 0 {
				t.Errorf("malformed journaled decision for %s: %+v", id, d)
			}
		}
	}
	if !cheap {
		t.Error("no decision cheaper than retrain journaled — ladder never escalated from a cheap rung")
	}
}

// TestLifetimeSoakDeterministic pins the acceptance requirement that
// RunLifetimeSoak is deterministic per seed: two runs with the same seed and
// config must agree on every field — spend, retirements, fidelity floors,
// journaled decisions, verdicts.
func TestLifetimeSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("lifetime soak is seconds-scale")
	}
	a, err := RunLifetimeSoak(lifetimeGateSeed, DefaultLifetimeSoakConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLifetimeSoak(lifetimeGateSeed, DefaultLifetimeSoakConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("lifetime soak not deterministic per seed:\n%s\nvs\n%s", a, b)
	}
}

// TestPlantStrategySurface pins the Plant's StrategyRepairer contract: no
// ladder unless opted in (legacy campaigns stay on the fixed-action path),
// a single retrain rung for the control arm, and the full escalation ladder
// in cost order otherwise.
func TestPlantStrategySurface(t *testing.T) {
	cfg := DefaultPlantConfig()
	if got := NewPlant(1, cfg).Strategies(); got != nil {
		t.Fatalf("legacy plant exposes %d strategies, want none", len(got))
	}

	cfg.RetrainOnly = true
	control := NewPlant(1, cfg).Strategies()
	if len(control) != 1 || control[0].Name() != "retrain" {
		t.Fatalf("retrain-only plant strategies = %v, want [retrain]", names(control))
	}

	cfg.RetrainOnly = false
	cfg.Ladder = true
	ladder := NewPlant(1, cfg).Strategies()
	want := []string{"scrub", "remap", "retrain"}
	if !reflect.DeepEqual(names(ladder), want) {
		t.Fatalf("ladder strategies = %v, want %v", names(ladder), want)
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].Cost() < ladder[i-1].Cost() {
			t.Fatalf("ladder not in escalation order: %s cost %d after %s cost %d",
				ladder[i].Name(), ladder[i].Cost(), ladder[i-1].Name(), ladder[i-1].Cost())
		}
	}
	// the scrub rung is gated to drift-dominated diagnoses: rewriting cells
	// cannot clear stuck-at damage, so a stuck-heavy fault goes to remap
	if ladder[0].Applicable(repair.Diagnosis{Drifted: 1, Stuck: 3}) {
		t.Error("scrub applicable on a stuck-dominated diagnosis")
	}
	if !ladder[0].Applicable(repair.Diagnosis{Drifted: 3, Stuck: 1}) {
		t.Error("scrub not applicable on a drift-dominated diagnosis")
	}
	if ladder[2].Applicable(repair.Diagnosis{Commissioning: true}) {
		t.Error("retrain applicable during commissioning")
	}
}

func names(ss []repair.Strategy) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name()
	}
	return out
}
