package campaign

import (
	"fmt"
	"strings"
)

// FleetScorecard aggregates fleet crash-equivalence pairs into the
// robustness metrics the supervisor is gated on.
type FleetScorecard struct {
	Campaigns, Rounds, Devices int

	// crash/restart fidelity
	Replays           int // supervisor kill+replay cycles performed
	TornCrashes       int // crashes with garbage appended to the journal
	TruncatedBytes    int // corrupt journal tail bytes discarded across replays
	StateDivergences  int // replays whose reconstructed state differed from the crashed supervisor's
	StatusDivergences int // (round, device) confirmed statuses differing crashed vs uninterrupted
	FinalDivergences  int // devices whose final durable state differs crashed vs uninterrupted
	BudgetDivergences int // devices whose remaining repair budget differs crashed vs uninterrupted

	// routing
	Routed, Sheds, Misroutes int

	// breaker + repair exercise census
	BreakerTrips, Probes, ProbeRecoveries int
	SensorFaultRounds                     int
	Recovered, GaveUp, Retired            int
}

// ScoreFleet aggregates crash-equivalence pairs into a scorecard. Routing
// and exercise counters come from the crashed runs (the harder path); the
// divergence counters compare crashed against uninterrupted.
func ScoreFleet(pairs []FleetPairResult) FleetScorecard {
	var s FleetScorecard
	s.Campaigns = len(pairs)
	for _, pair := range pairs {
		c := pair.Crashed
		s.Rounds += len(c.Confirmed)
		if len(c.Devices) > s.Devices {
			s.Devices = len(c.Devices)
		}
		s.Replays += c.Replays
		s.TornCrashes += c.TornCrashes
		s.TruncatedBytes += c.TruncatedBytes
		s.StateDivergences += c.StateDivergences
		s.StatusDivergences += pair.StatusDivergences
		s.FinalDivergences += pair.FinalStateDivergences
		s.BudgetDivergences += pair.BudgetDivergences
		s.Routed += c.Routed
		s.Sheds += c.Sheds
		s.Misroutes += c.Misroutes
		s.BreakerTrips += c.BreakerTrips
		s.Probes += c.Probes
		s.ProbeRecoveries += c.ProbeRecoveries
		s.SensorFaultRounds += c.SensorFaultRounds
		s.Recovered += c.Recovered
		s.GaveUp += c.GaveUp
		s.Retired += c.Retired
	}
	return s
}

// Gate checks the fleet soak acceptance criteria and returns a descriptive
// error on the first violation: zero state divergence after journal replay
// (identical confirmed statuses and repair budgets versus an uninterrupted
// run), zero requests routed to quarantined or Impaired/Critical devices,
// corrupt journal tails truncated rather than trusted, and every crash,
// breaker and probe path actually exercised (a soak that exercised nothing
// proves nothing).
func (s FleetScorecard) Gate() error {
	if s.Campaigns == 0 || s.Replays == 0 || s.Routed == 0 {
		return fmt.Errorf("fleet gate: nothing exercised (campaigns=%d replays=%d routed=%d) — run more campaigns/rounds",
			s.Campaigns, s.Replays, s.Routed)
	}
	if s.BreakerTrips == 0 || s.Probes == 0 {
		return fmt.Errorf("fleet gate: breaker path unexercised (trips=%d probes=%d)", s.BreakerTrips, s.Probes)
	}
	if s.TornCrashes > 0 && s.TruncatedBytes == 0 {
		return fmt.Errorf("fleet gate: %d torn crashes injected but no journal bytes truncated — corrupt-tail recovery untested",
			s.TornCrashes)
	}
	if s.StateDivergences > 0 {
		return fmt.Errorf("fleet gate: %d replays reconstructed a different supervisor state", s.StateDivergences)
	}
	if s.StatusDivergences > 0 {
		return fmt.Errorf("fleet gate: %d confirmed statuses diverged between crashed and uninterrupted runs", s.StatusDivergences)
	}
	if s.BudgetDivergences > 0 {
		return fmt.Errorf("fleet gate: %d devices' repair budgets diverged after replay", s.BudgetDivergences)
	}
	if s.FinalDivergences > 0 {
		return fmt.Errorf("fleet gate: %d devices ended with different durable state after replay", s.FinalDivergences)
	}
	if s.Misroutes > 0 {
		return fmt.Errorf("fleet gate: %d requests routed to quarantined or Impaired/Critical devices", s.Misroutes)
	}
	return nil
}

// String renders the scorecard as a small report.
func (s FleetScorecard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet campaigns=%d rounds=%d devices=%d\n", s.Campaigns, s.Rounds, s.Devices)
	fmt.Fprintf(&b, "crashes: replays=%d torn=%d truncatedBytes=%d\n", s.Replays, s.TornCrashes, s.TruncatedBytes)
	fmt.Fprintf(&b, "fidelity: stateDiv=%d statusDiv=%d budgetDiv=%d finalDiv=%d\n",
		s.StateDivergences, s.StatusDivergences, s.BudgetDivergences, s.FinalDivergences)
	fmt.Fprintf(&b, "routing: routed=%d sheds=%d misroutes=%d\n", s.Routed, s.Sheds, s.Misroutes)
	fmt.Fprintf(&b, "breakers: trips=%d probes=%d probeRecoveries=%d retired=%d\n",
		s.BreakerTrips, s.Probes, s.ProbeRecoveries, s.Retired)
	fmt.Fprintf(&b, "repair: recovered=%d gaveUp=%d sensorFaultRounds=%d",
		s.Recovered, s.GaveUp, s.SensorFaultRounds)
	return b.String()
}
