package campaign

import (
	"context"
	"strings"
	"testing"
	"time"

	"reramtest/internal/loadgen"
	"reramtest/internal/netserve"
)

// smallNetSoak shrinks the default campaign to test scale.
func smallNetSoak() NetSoakConfig {
	cfg := DefaultNetSoakConfig()
	cfg.Load.Requests = 160
	cfg.Load.Concurrency = 16
	cfg.Load.StormEvery = 2 // segments are only ~5 waves each at this scale
	cfg.TickEvery = 3
	return cfg
}

func TestNetSoakPassesAtTestScale(t *testing.T) {
	res, err := RunNetSoak(31, smallNetSoak())
	if err != nil {
		t.Fatal(err)
	}
	if fails := res.Failures(); len(fails) != 0 {
		t.Fatalf("net soak failed gates: %v\nchaos report:\n%s", fails, res.Chaos)
	}
	if res.Chaos.Sent != 160 {
		t.Fatalf("chaos pass sent %d, want 160", res.Chaos.Sent)
	}
	if res.PostDrainOK == 0 {
		t.Fatal("no post-drain completions")
	}
	if res.Stats.Drains == 0 {
		t.Fatal("no drains recorded")
	}
	if res.Chaos.Storms == 0 {
		t.Fatal("no storm waves ran")
	}
	if len(res.Chaos.ByTenant) != 3 {
		t.Fatalf("tenant mix collapsed: %v", res.Chaos.ByTenant)
	}
}

func TestNetSoakValidation(t *testing.T) {
	cfg := smallNetSoak()
	cfg.Shards = 1
	if _, err := RunNetSoak(1, cfg); err == nil {
		t.Fatal("1-shard soak accepted — the drain gate would be unsatisfiable")
	}
	cfg = smallNetSoak()
	cfg.Load.Requests = 2
	if _, err := RunNetSoak(1, cfg); err == nil {
		t.Fatal("2-request soak accepted")
	}
}

// hangTarget never answers inside any deadline.
type hangTarget struct{}

func (hangTarget) Serve(ctx context.Context, _ loadgen.Request) loadgen.Outcome {
	<-ctx.Done()
	return loadgen.Outcome{Kind: "hung"}
}

func TestNetSoakGateDetectsHungTier(t *testing.T) {
	// prove the watchdog side of the gate actually bites: a tier that never
	// answers inside deadline+grace must fail Failures()
	rep, err := loadgen.Run(context.Background(), 5, hangTarget{}, loadgen.Config{
		Requests: 8, Concurrency: 4, InDim: 4, DeadlineMs: 10, Grace: 20 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hung != 8 {
		t.Fatalf("hung %d, want 8", rep.Hung)
	}
	res := NetSoakResult{
		Hung:        rep.Hung,
		Chaos:       rep,
		PostDrainOK: 1,
		Stats:       netserve.Stats{Drains: 1},
	}
	res.Chaos.OK = 1 // isolate the hung gate
	fails := res.Failures()
	found := false
	for _, f := range fails {
		if strings.Contains(f, "outlived deadline+grace") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Failures() missed the hung requests: %v", fails)
	}
}

func TestMergeReportsPoolsSegments(t *testing.T) {
	// the soak now folds segments through loadgen's exported Report.Merge;
	// this keeps the pooling contract pinned from the campaign side
	a := loadgen.Report{Sent: 10, OK: 8, Hung: 1, Storms: 1,
		ByKind: map[string]int{"ok": 8, "hung": 1, "deadline": 1},
		ByTenant: map[string]int{"t": 10},
		Latencies: []time.Duration{time.Millisecond}, Elapsed: time.Second}
	b := loadgen.Report{Sent: 5, OK: 5,
		ByKind: map[string]int{"ok": 5}, ByTenant: map[string]int{"u": 5},
		Latencies: []time.Duration{2 * time.Millisecond}, Elapsed: time.Second}
	m := a
	m.Merge(b)
	if m.Sent != 15 || m.OK != 13 || m.Hung != 1 || m.Storms != 1 {
		t.Fatalf("merged counts wrong: %+v", m)
	}
	if m.ByKind["ok"] != 13 || m.ByTenant["t"] != 10 || m.ByTenant["u"] != 5 {
		t.Fatalf("merged maps wrong: %v %v", m.ByKind, m.ByTenant)
	}
	if len(m.Latencies) != 2 || m.Elapsed != 2*time.Second {
		t.Fatalf("merged latencies/elapsed wrong: %d %v", len(m.Latencies), m.Elapsed)
	}
}
