// Network soak: chaos campaign against the sharded network-facing serving
// tier (internal/netserve) over a real loopback listener. Where the serve
// soak attacks one in-process frontend, this soak exercises the full wire
// path — HTTP decode, header deadlines, tenant quotas, consistent-hash
// placement, cross-shard retries — while injecting device-level chaos AND a
// mid-campaign graceful shard drain, then audits the tier's contract:
//
//   - zero hung requests: every wire call answers within its own deadline
//     plus a fixed grace, drain or not;
//   - zero silent drops: admitted == terminal typed outcomes in the tier's
//     own accounting, and received == invalid + quota + closed + admitted;
//   - zero untyped outcomes: every reply carries a known error kind and the
//     tier's Internal counter stays at zero;
//   - traffic survives the drain: requests keep completing on the remaining
//     shard after shard-0 retires mid-campaign;
//   - bounded tail latency: the chaos pass's p99 stays within a fixed
//     envelope of a same-seed no-chaos baseline;
//   - zero leaked goroutines across listener start, drain and close.
package campaign

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"reramtest/internal/fleet"
	"reramtest/internal/loadgen"
	"reramtest/internal/monitor"
	"reramtest/internal/netserve"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
	"reramtest/internal/serve"
	"reramtest/internal/tensor"
)

// NetSoakConfig parameterises one network chaos campaign.
type NetSoakConfig struct {
	// Shards and DevicesPerShard size the tier (shard-0 drains mid-campaign,
	// so Shards must be ≥ 2 for the post-drain gate to be satisfiable).
	Shards, DevicesPerShard int
	// Load is the traffic model (InDim is overwritten with the stock width).
	Load loadgen.Config
	// Fleet and Serve tune each shard's supervisor and frontend.
	Fleet fleet.Config
	Serve serve.Config
	// Net tunes the tier under test.
	Net netserve.Config

	// SlowP / SlowDelay / CrashP arm the device-level chaos tap (chaos pass
	// only), identical in kind to the serve soak's injections.
	SlowP     float64
	SlowDelay time.Duration
	CrashP    float64

	// DrainAfter is the fraction of the campaign after which shard-0 drains
	// gracefully (chaos pass only; 0 → 0.5).
	DrainAfter float64
	// ShardPrecision selects each shard's numeric tier; nil compiles every
	// shard on the tensor.F64 reference. The mixed-precision smoke maps
	// alternate shards onto tensor.F32 — every accounting and liveness gate
	// must hold unchanged, because the tier's contract is about request
	// plumbing, not about which kernels answered.
	ShardPrecision func(shard int) tensor.Precision
	// TickEvery runs a monitoring tick concurrently with every Nth wave's
	// traffic (0 disables ticks).
	TickEvery int
}

// DefaultNetSoakConfig returns the smoke-scale network chaos campaign; the
// full gate runs the same shape with Load.Requests raised to ~10⁶ from
// cmd/monitor or cmd/loadgen.
func DefaultNetSoakConfig() NetSoakConfig {
	fcfg := fleet.DefaultConfig()
	fcfg.Health = DefaultConfig().Health
	fcfg.Monitor = monitor.DefaultConfig()
	fcfg.BreakerOpenAfter = 2
	fcfg.BreakerCooldown = 2
	fcfg.MinServing = 1
	return NetSoakConfig{
		Shards: 2, DevicesPerShard: 2,
		Load: loadgen.Config{
			Requests: 600, Concurrency: 24,
			Tenants: []loadgen.TenantSpec{
				{Name: "alpha", Weight: 3, MaxRows: 3, MonitorP: 0.05},
				{Name: "beta", Weight: 2, MaxRows: 2},
				{Name: "gamma", Weight: 1, MaxRows: 1, MonitorP: 0.10},
			},
			DeadlineMs: 2000, StormEvery: 6, StormDeadlineMs: 2,
			Grace: 250 * time.Millisecond,
		},
		Fleet: fcfg,
		Serve: serve.Config{Workers: 4, QueueBulk: 64, QueueMonitor: 16,
			HedgeAfter: 5 * time.Millisecond, DefaultDeadline: 2 * time.Second},
		Net: netserve.Config{RetryMax: 1, MaxRows: 8,
			DefaultDeadline: 2 * time.Second, MaxDeadline: 5 * time.Second},
		SlowP: 0.05, SlowDelay: 10 * time.Millisecond,
		CrashP:     0.02,
		DrainAfter: 0.5,
		TickEvery:  4,
	}
}

// NetSoakResult is one network chaos campaign's trace and verdict inputs.
type NetSoakResult struct {
	Seed int64

	Baseline loadgen.Report // clean pass, same seeds
	Chaos    loadgen.Report // chaos pass: injections + mid-campaign drain

	Stats netserve.Stats // the chaos tier's final counters

	// Cost is the chaos tier's own response-granular hardware-cost ledger
	// (per tenant, per shard, fleet total); the cost gates reconcile it
	// against itself and against the client-observed spend in Chaos.Cost.
	Cost netserve.CostStats

	// gate inputs
	Hung          int   // wire calls that outlived deadline+grace
	SilentDrops   int64 // admitted - terminal in the tier's accounting
	AccountingGap int64 // received - (invalid+quota+closed+admitted)
	Untyped       int   // unknown client kinds + the tier's Internal counter
	Leaked        int   // goroutines alive after close + settle
	PostDrainOK   int   // requests completed after shard-0 drained

	// latency envelope
	BaselineP99, ChaosP99, P99Bound time.Duration
}

// Failures lists every violated gate (empty = campaign passed).
func (r NetSoakResult) Failures() []string {
	var fails []string
	if r.Hung > 0 {
		fails = append(fails, fmt.Sprintf("%d wire call(s) outlived deadline+grace", r.Hung))
	}
	if r.SilentDrops != 0 {
		fails = append(fails, fmt.Sprintf("accounting: admitted - terminal = %d (want 0)", r.SilentDrops))
	}
	if r.AccountingGap != 0 {
		fails = append(fails, fmt.Sprintf("accounting: received - classified = %d (want 0)", r.AccountingGap))
	}
	if r.Untyped > 0 {
		fails = append(fails, fmt.Sprintf("%d outcome(s) outside the typed kind set", r.Untyped))
	}
	if r.Leaked > 0 {
		fails = append(fails, fmt.Sprintf("%d goroutine(s) leaked past close", r.Leaked))
	}
	if r.ChaosP99 > r.P99Bound {
		fails = append(fails, fmt.Sprintf("chaos p99 %v exceeds bound %v (baseline %v)",
			r.ChaosP99, r.P99Bound, r.BaselineP99))
	}
	if r.Chaos.OK == 0 {
		fails = append(fails, "chaos campaign completed zero requests")
	}
	if r.PostDrainOK == 0 {
		fails = append(fails, "zero requests completed after the shard drain")
	}
	if r.Stats.Drains == 0 {
		fails = append(fails, "chaos pass recorded no shard drain")
	}
	// cost-ledger reconciliation: the tier accumulates tenant, shard and
	// fleet totals from the same response stream, so the sums must agree
	// exactly — any gap means a response was costed in one ledger and not
	// another
	var tenantSum, shardSum reram.Cost
	for _, c := range r.Cost.Tenants {
		tenantSum.Add(c)
	}
	for _, c := range r.Cost.Shards {
		shardSum.Add(c)
	}
	if tenantSum != r.Cost.Fleet {
		fails = append(fails, fmt.Sprintf("cost ledger: Σ tenants %+v ≠ fleet %+v", tenantSum, r.Cost.Fleet))
	}
	if shardSum != r.Cost.Fleet {
		fails = append(fails, fmt.Sprintf("cost ledger: Σ shards %+v ≠ fleet %+v", shardSum, r.Cost.Fleet))
	}
	if r.Chaos.OK > 0 && r.Cost.Fleet.IsZero() {
		fails = append(fails, "metered tier completed requests but reported zero hardware cost")
	}
	// the client sums the cost field of every decoded ok body; each such body
	// is a response the tier also costed, so the client-observed ledger can
	// never exceed the tier's (it may trail it: answers the client abandoned
	// past its own deadline still ran on silicon)
	if !costWithin(r.Chaos.Cost, r.Cost.Fleet) {
		fails = append(fails, fmt.Sprintf("client-observed cost %+v exceeds the tier's fleet ledger %+v",
			r.Chaos.Cost, r.Cost.Fleet))
	}
	return fails
}

// costWithin reports a ≤ b in every dimension.
func costWithin(a, b reram.Cost) bool {
	return a.ComputeCycles <= b.ComputeCycles &&
		a.DACConversions <= b.DACConversions &&
		a.ADCConversions <= b.ADCConversions &&
		a.CrossbarReads <= b.CrossbarReads &&
		a.CrossbarWrites <= b.CrossbarWrites &&
		a.EnergyFJ <= b.EnergyFJ &&
		a.BufferBytes <= b.BufferBytes
}

// RunNetSoak executes one seeded network chaos campaign: a clean baseline
// pass to calibrate the latency envelope, then the chaos pass with device
// injections armed and a graceful shard-0 drain at the campaign midpoint.
// Both passes run the identical seeded schedule over a live loopback
// listener. The returned result's Failures() is the gate.
func RunNetSoak(seed int64, cfg NetSoakConfig) (NetSoakResult, error) {
	if cfg.Shards < 2 || cfg.DevicesPerShard < 1 {
		return NetSoakResult{}, fmt.Errorf("campaign: net soak needs ≥ 2 shards and ≥ 1 device each, got %d×%d",
			cfg.Shards, cfg.DevicesPerShard)
	}
	if cfg.Load.Requests < 4 {
		return NetSoakResult{}, fmt.Errorf("campaign: net soak needs ≥ 4 requests, got %d", cfg.Load.Requests)
	}
	if cfg.DrainAfter <= 0 || cfg.DrainAfter >= 1 {
		cfg.DrainAfter = 0.5
	}
	res := NetSoakResult{Seed: seed}

	baseline, err := runNetPass(seed, cfg, false)
	if err != nil {
		return res, fmt.Errorf("campaign: net baseline pass: %w", err)
	}
	chaos, err := runNetPass(seed, cfg, true)
	if err != nil {
		return res, fmt.Errorf("campaign: net chaos pass: %w", err)
	}

	res.Baseline = baseline.report
	res.Chaos = chaos.report
	res.Stats = chaos.stats
	res.Cost = chaos.costs
	res.Hung = chaos.report.Hung
	res.SilentDrops = int64(chaos.stats.Admitted) - int64(chaos.stats.Terminal())
	res.AccountingGap = int64(chaos.stats.Received) -
		int64(chaos.stats.Invalid+chaos.stats.QuotaRejected+chaos.stats.ClosedRejected+chaos.stats.Admitted)
	res.Untyped = chaos.report.Untyped + int(chaos.stats.Internal)
	res.Leaked = chaos.leaked
	res.PostDrainOK = chaos.postDrainOK
	res.BaselineP99 = baseline.report.P(0.99)
	res.ChaosP99 = chaos.report.P(0.99)
	// same envelope rationale as the serve soak: chaos may cost one injected
	// stall plus scheduling slack over an inflated baseline, never an
	// unbounded stall
	floor := 4 * res.BaselineP99
	if floor < 5*time.Millisecond {
		floor = 5 * time.Millisecond
	}
	res.P99Bound = floor + cfg.SlowDelay + cfg.Load.Grace
	return res, nil
}

// netPassTrace is one pass's raw measurements.
type netPassTrace struct {
	report      loadgen.Report
	stats       netserve.Stats
	costs       netserve.CostStats
	postDrainOK int
	leaked      int
}

// runNetPass stands up a fresh tier behind a loopback listener and drives
// the full seeded campaign through it. The campaign runs as two segments
// with distinct seed streams; the chaos pass drains shard-0 synchronously
// between them, so segment two's completions prove post-drain liveness.
func runNetPass(seed int64, cfg NetSoakConfig, chaosOn bool) (netPassTrace, error) {
	var tr netPassTrace
	goroutinesBefore := runtime.NumGoroutine()

	r := rng.New(seed)
	chaos := &chaosInjector{r: r.Split(), enabled: chaosOn,
		slowP: cfg.SlowP, slowDelay: cfg.SlowDelay, crashP: cfg.CrashP}
	specs := make([]netserve.ShardSpec, cfg.Shards)
	for i := range specs {
		prec := tensor.F64
		if cfg.ShardPrecision != nil {
			prec = cfg.ShardPrecision(i)
		}
		scfg := cfg.Serve
		scfg.Precision = prec
		specs[i] = netserve.ShardSpec{
			Name:    fmt.Sprintf("shard-%d", i),
			Devices: engineDevices(r, cfg.DevicesPerShard, fmt.Sprintf("s%d", i), chaos, prec),
			Fleet:   cfg.Fleet,
			Serve:   scfg,
		}
	}
	f, err := netserve.New(specs, cfg.Net)
	if err != nil {
		return tr, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Close()
		return tr, err
	}
	hs := &http.Server{Handler: f.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	target := loadgen.NewHTTPTarget("http://"+ln.Addr().String(), nil)

	// monitoring ticks ride the progress hook but run concurrently with the
	// next wave's traffic — the contention is part of the soak
	var tickWG sync.WaitGroup
	progress := func(done int) {
		if cfg.TickEvery > 0 && cfg.Load.Concurrency > 0 &&
			(done/cfg.Load.Concurrency)%cfg.TickEvery == 0 {
			tickWG.Add(1)
			go func() { defer tickWG.Done(); f.Tick() }()
		}
	}

	lcfg := cfg.Load
	lcfg.InDim = StockInDim
	preDrain := int(float64(lcfg.Requests) * cfg.DrainAfter)
	ctx := context.Background()

	seg1 := lcfg
	seg1.Requests = preDrain
	rep1, err := loadgen.Run(ctx, seed, target, seg1, progress)
	if err != nil {
		f.Close()
		hs.Close()
		return tr, err
	}
	if chaosOn {
		// the graceful drain under audit: shard-0 retires between segments
		// while the tier keeps its listener up
		if derr := f.DrainShard("shard-0"); derr != nil {
			f.Close()
			hs.Close()
			return tr, fmt.Errorf("drain shard-0: %w", derr)
		}
	}
	seg2 := lcfg
	seg2.Requests = lcfg.Requests - preDrain
	rep2, err := loadgen.Run(ctx, seed+1, target, seg2, progress)
	if err != nil {
		f.Close()
		hs.Close()
		return tr, err
	}
	tickWG.Wait()
	tr.report = rep1
	tr.report.Merge(rep2)
	tr.postDrainOK = rep2.OK

	// teardown in dependency order: tier first (drains shards), then the
	// listener, then idle client connections, then the goroutine audit
	if err := f.Close(); err != nil {
		hs.Close()
		return tr, err
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = hs.Shutdown(sctx)
	scancel()
	if err != nil {
		return tr, err
	}
	if serr := <-serveErr; serr != nil && serr != http.ErrServerClosed {
		return tr, serr
	}
	target.CloseIdle()
	tr.stats = f.Stats()
	tr.costs = f.CostStats()

	settle := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(settle) {
		time.Sleep(5 * time.Millisecond)
	}
	if extra := runtime.NumGoroutine() - goroutinesBefore; extra > 0 {
		tr.leaked = extra
	}
	return tr, nil
}
