// Package campaign is the randomized fault-injection soak harness that
// proves the hardened runtime works. Each campaign seeds a timeline of
// multi-event damage — resistance drift spans, soft-error showers, stuck-at
// bursts, and transient sensor glitches that self-clear (including poisoned
// readouts: NaN confidences, wrong-shape tensors, panicking Infer
// callbacks) — runs health.Runtime's supervised detect→repair→verify loop
// against it round by round, and scores the outcome: missed detections,
// false alarms, status flaps on transients (against a shadow un-debounced
// tracker that demonstrably does flap), and repair-recovery rate.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"reramtest/internal/health"
	"reramtest/internal/monitor"
	"reramtest/internal/rng"
)

// EventKind is one class of injected field event.
type EventKind int

// Event kinds. The first three are persistent device damage (they last until
// a repair clears them); the glitch kinds are transient readout corruptions
// that self-clear after their window.
const (
	KindDrift EventKind = iota
	KindSoftShower
	KindStuckBurst
	KindGlitchNoise
	KindGlitchNaN
	KindGlitchShape
	KindGlitchPanic
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case KindDrift:
		return "drift"
	case KindSoftShower:
		return "soft-shower"
	case KindStuckBurst:
		return "stuck-burst"
	case KindGlitchNoise:
		return "glitch-noise"
	case KindGlitchNaN:
		return "glitch-nan"
	case KindGlitchShape:
		return "glitch-shape"
	default:
		return "glitch-panic"
	}
}

// Transient reports whether the kind self-clears without repair.
func (k EventKind) Transient() bool { return k >= KindGlitchNoise }

// glitchMode maps a transient kind to its plant glitch mode.
func (k EventKind) glitchMode() GlitchMode {
	switch k {
	case KindGlitchNoise:
		return GlitchNoise
	case KindGlitchNaN:
		return GlitchNaN
	case KindGlitchShape:
		return GlitchShape
	default:
		return GlitchPanic
	}
}

// Event is one scheduled field event plus the ground truth and outcome the
// runner fills in.
type Event struct {
	Round int
	Kind  EventKind

	// parameters (by kind)
	Hours    float64 // KindDrift: simulated hours advanced at once
	P        float64 // KindSoftShower: fraction of cells disturbed
	P0, P1   float64 // KindStuckBurst: SA0/SA1 probabilities
	Duration int     // glitches: rounds the corruption lasts

	// ground truth + outcome (filled during Run)
	Severity      monitor.Status // shadow raw severity right after injection
	MaxConfirmed  monitor.Status // highest confirmed status while active
	DetectedAt    int            // round the runtime confirmed ≥ Degraded; 0 = never
	Recovered     bool           // a supervised repair episode verified clean
	GaveUp        bool           // the repair loop exhausted its budget
	FidelityAfter float64        // probe fidelity after recovery (-1 until then)
}

// String renders the event schedule line.
func (e Event) String() string {
	switch e.Kind {
	case KindDrift:
		return fmt.Sprintf("r%02d %s(%.0fh)", e.Round, e.Kind, e.Hours)
	case KindSoftShower:
		return fmt.Sprintf("r%02d %s(%.1f%%)", e.Round, e.Kind, 100*e.P)
	case KindStuckBurst:
		return fmt.Sprintf("r%02d %s(sa0=%.1f%% sa1=%.1f%%)", e.Round, e.Kind, 100*e.P0, 100*e.P1)
	default:
		return fmt.Sprintf("r%02d %s(%d rounds)", e.Round, e.Kind, e.Duration)
	}
}

// Config parameterises one campaign run.
type Config struct {
	// Rounds is the soak length in monitoring rounds.
	Rounds int
	// Plant sizes the device-under-test.
	Plant PlantConfig
	// Health tunes the hardened runtime under test.
	Health health.Config
	// Monitor sets the decision thresholds.
	Monitor monitor.Config
	// FidelityBudget is the allowed agreement loss after repair (the
	// acceptance gate's "within 2% of commissioning": 0.02).
	FidelityBudget float64
}

// DefaultConfig returns the gate-scale campaign: 40 rounds against the
// default plant with the default hardened runtime.
func DefaultConfig() Config {
	hcfg := health.DefaultConfig()
	hcfg.Sleep = func(d time.Duration) {} // simulated time: no real backoff waits
	// Debounce depth must exceed the longest transient the deployment expects,
	// or a transient lasting exactly EscalateAfter rounds flaps the confirmed
	// status. Timelines glitch for up to 2 rounds, so confirm on 3.
	hcfg.EscalateAfter = 3
	return Config{
		Rounds:         40,
		Plant:          DefaultPlantConfig(),
		Health:         hcfg,
		Monitor:        monitor.DefaultConfig(),
		FidelityBudget: 0.02,
	}
}

// RoundRecord traces one monitoring round of a campaign.
type RoundRecord struct {
	Round       int
	Raw         monitor.Status // undebounced evidence (sensor-fault rounds report SensorFaultStatus)
	Confirmed   monitor.Status
	Changed     bool // confirmed status moved this round
	SensorFault bool
	Rejected    int // readout attempts rejected this round
	Repaired    bool
	Recovered   bool
	GaveUp      bool
}

// Result is one campaign's full trace plus ground truth.
type Result struct {
	Seed               int64
	Events             []Event
	Rounds             []RoundRecord
	CommissionFidelity float64
	RejectedReadouts   int
	RecoveredPanics    int
	EscalateAfter      int // copied from the runtime config for scoring windows
}

// RandomTimeline draws a randomized multi-event schedule: a drift span, a
// stuck-at burst, a flap-bait noise glitch and a poisoned-sensor glitch are
// always present (the gate exercises every subsystem every campaign); a soft
// shower and a second drift ride along randomly. Events are spaced so each
// repair episode settles before the next event lands.
func RandomTimeline(r *rng.RNG, rounds int) []Event {
	var events []Event
	next := 3 + r.Intn(3)
	gap := func() { next += 7 + r.Intn(4) }

	// flap bait first: short uniform-noise glitch on a healthy device
	events = append(events, Event{Round: next, Kind: KindGlitchNoise, Duration: 1 + r.Intn(1)})
	gap()

	// a drift span; magnitude spans Degraded..Critical territory
	events = append(events, Event{Round: next, Kind: KindDrift, Hours: 200 + 1200*r.Float64()})
	gap()

	// poisoned sensor: NaN, wrong shape, or panic for 1-2 rounds
	poison := []EventKind{KindGlitchNaN, KindGlitchShape, KindGlitchPanic}[r.Intn(3)]
	events = append(events, Event{Round: next, Kind: poison, Duration: 1 + r.Intn(2)})
	gap()

	// optional soft-error shower
	if r.Bernoulli(0.6) {
		events = append(events, Event{Round: next, Kind: KindSoftShower, P: 0.02 + 0.06*r.Float64()})
		gap()
	}

	// endurance stuck-at burst (the retraining path)
	events = append(events, Event{Round: next, Kind: KindStuckBurst,
		P0: 0.01 + 0.02*r.Float64(), P1: 0.005 + 0.01*r.Float64()})
	gap()

	// optional second drift span late in life
	if r.Bernoulli(0.5) {
		events = append(events, Event{Round: next, Kind: KindDrift, Hours: 150 + 800*r.Float64()})
	}

	out := events[:0]
	for _, e := range events {
		if e.Round < rounds-4 { // leave room to detect and repair
			out = append(out, e)
		}
	}
	return out
}

// Run executes one seeded campaign and returns its full trace.
func Run(seed int64, cfg Config) (Result, error) {
	plant := NewPlant(seed, cfg.Plant)
	mon, err := monitor.New(plant.Reference(), plant.Patterns(), nil, cfg.Monitor)
	if err != nil {
		return Result{}, err
	}
	rt, err := health.New(mon, cfg.Health)
	if err != nil {
		return Result{}, err
	}

	res := Result{Seed: seed, CommissionFidelity: plant.Fidelity(),
		EscalateAfter: cfg.Health.EscalateAfter}
	res.Events = RandomTimeline(rng.New(seed), cfg.Rounds)
	pending := res.Events
	var active []*Event // persistent events awaiting a verified repair

	infer := plant.Infer()
	for round := 1; round <= cfg.Rounds; round++ {
		plant.SetRound(round)
		for len(pending) > 0 && pending[0].Round == round {
			ev := &pending[0] // aliases res.Events' backing array
			pending = pending[1:]
			switch ev.Kind {
			case KindDrift:
				plant.Accelerator().AdvanceTime(ev.Hours)
			case KindSoftShower:
				plant.Accelerator().InjectSoftErrors(ev.P)
			case KindStuckBurst:
				plant.Accelerator().InjectStuckAt(ev.P0, ev.P1)
			default:
				plant.StartGlitch(ev.Kind.glitchMode(), round, ev.Duration)
			}
			ev.FidelityAfter = -1
			if !ev.Kind.Transient() {
				ev.Severity = plant.ShadowStatus(cfg.Monitor)
				active = append(active, ev)
			}
		}

		ep := rt.Supervise(infer, plant)

		rec := RoundRecord{
			Round:       round,
			Raw:         ep.Trigger.Raw,
			Confirmed:   ep.Trigger.Confirmed,
			Changed:     ep.Trigger.Changed,
			SensorFault: ep.Trigger.SensorFault,
			Rejected:    ep.Trigger.Rejected,
			Repaired:    ep.Repaired(),
			Recovered:   ep.Recovered,
			GaveUp:      ep.GaveUp,
		}
		res.Rounds = append(res.Rounds, rec)

		for _, ev := range active {
			if ep.Trigger.Confirmed > ev.MaxConfirmed {
				ev.MaxConfirmed = ep.Trigger.Confirmed
			}
			if ev.DetectedAt == 0 && ep.Trigger.Confirmed >= monitor.Degraded {
				ev.DetectedAt = round
			}
		}
		if ep.Repaired() {
			fid := plant.Fidelity()
			for _, ev := range active {
				ev.Recovered = ep.Recovered
				ev.GaveUp = ep.GaveUp
				ev.FidelityAfter = fid
			}
			if ep.Recovered {
				active = active[:0]
			}
		}
	}
	rej, pan := rt.RejectedReadouts()
	res.RejectedReadouts, res.RecoveredPanics = rej, pan
	return res, nil
}

// RunMany executes n seeded campaigns (seeds baseSeed, baseSeed+1, ...)
// across a bounded worker pool and returns their traces in seed order. Each
// campaign is seeded independently and plants never share mutable state
// (NewPlant clones the template model), so the parallel traces are
// bit-identical to a serial run.
func RunMany(baseSeed int64, n int, cfg Config) ([]Result, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	out := make([]Result, n)
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			out[i], errs[i] = Run(baseSeed+int64(i), cfg)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
