package campaign

import (
	"strings"
	"testing"
)

// smokeCrashSoakConfig shrinks the matrix for unit-test latency while still
// covering every fault column and a compaction-round crash point.
func smokeCrashSoakConfig() CrashSoakConfig {
	cfg := DefaultCrashSoakConfig()
	cfg.Devices = 2
	cfg.Rounds = 8
	cfg.CrashPoints = []int{4, 6}
	cfg.DegradedRounds = 2
	return cfg
}

// TestRunCrashSoakMatrix is the durable-state acceptance gate: every
// (crash point × disk fault) cell must recover bit-identically, surface its
// fault, lose zero acknowledged writes and keep the WAL bounded.
func TestRunCrashSoakMatrix(t *testing.T) {
	cfg := smokeCrashSoakConfig()
	res, err := RunCrashSoak(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.CrashPoints) * len(AllFaults()); len(res.Cells) != want {
		t.Fatalf("matrix ran %d cells, want %d", len(res.Cells), want)
	}
	for _, f := range res.Failures() {
		t.Error(f)
	}
	for _, c := range res.Cells {
		if !c.FaultSurfaced {
			t.Errorf("[round=%d fault=%s] fault never surfaced", c.Round, c.Fault)
		}
		if !c.StateMatch {
			t.Errorf("[round=%d fault=%s] recovered state diverged", c.Round, c.Fault)
		}
		if isFailStop(c.Fault) != c.Degraded {
			t.Errorf("[round=%d fault=%s] degraded=%v, want %v", c.Round, c.Fault, c.Degraded, isFailStop(c.Fault))
		}
		if c.RecoveredRound < c.LastAcked {
			t.Errorf("[round=%d fault=%s] acked round %d lost (recovered %d)", c.Round, c.Fault, c.LastAcked, c.RecoveredRound)
		}
	}
	if res.MaxWALBytes > res.WALBound {
		t.Fatalf("WAL peaked at %d bytes, bound %d", res.MaxWALBytes, res.WALBound)
	}
	if res.MaxWALBytes == 0 {
		t.Fatal("WAL telemetry never recorded a size")
	}
}

// TestCrashSoakRejectsBadConfig pins the config guards.
func TestCrashSoakRejectsBadConfig(t *testing.T) {
	cfg := smokeCrashSoakConfig()
	cfg.Fleet.CompactEvery = 0
	if _, err := RunCrashSoak(1, cfg); err == nil || !strings.Contains(err.Error(), "CompactEvery") {
		t.Fatalf("CompactEvery=0 accepted: %v", err)
	}
	cfg = smokeCrashSoakConfig()
	cfg.CrashPoints = []int{1} // before the first compaction
	if _, err := RunCrashSoak(1, cfg); err == nil {
		t.Fatal("crash point before the first compaction accepted")
	}
	cfg = smokeCrashSoakConfig()
	cfg.CrashPoints = []int{cfg.Rounds + 1}
	if _, err := RunCrashSoak(1, cfg); err == nil {
		t.Fatal("crash point past the campaign accepted")
	}
}
