package campaign

import (
	"reflect"
	"testing"
)

// smallFleetConfig shrinks the default fleet soak to test scale while
// keeping every gated path exercised: two crashes with torn journal tails,
// the deterministic sensor outage (breaker trip + probe recovery), and a
// correlated shower.
func smallFleetConfig() FleetSoakConfig {
	cfg := DefaultFleetSoakConfig()
	cfg.Devices = 3
	cfg.Rounds = 32
	cfg.CrashAfter = []int{9, 21}
	cfg.ShowerRound = 13
	return cfg
}

// TestFleetSoakPairGate is the PR's acceptance property at test scale: the
// same seeded fleet campaign run crashed and uninterrupted must agree on
// every confirmed status, every repair budget and every device's final
// durable state, with zero requests misrouted and corrupt journal tails
// truncated.
func TestFleetSoakPairGate(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak gate is seconds-scale")
	}
	cfg := smallFleetConfig()
	var pairs []FleetPairResult
	for seed := int64(1); seed <= 2; seed++ {
		pair, err := RunFleetPair(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pairs = append(pairs, pair)
	}
	s := ScoreFleet(pairs)
	t.Logf("\n%s", s)
	if err := s.Gate(); err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(cfg.CrashAfter); s.Replays != want {
		t.Errorf("replays = %d, want %d", s.Replays, want)
	}
	if s.TornCrashes != s.Replays {
		t.Errorf("torn crashes = %d, want every crash torn (%d)", s.TornCrashes, s.Replays)
	}
	if s.ProbeRecoveries == 0 {
		t.Error("deterministic sensor outage never produced a probe recovery")
	}
}

// TestRunFleetValidation rejects degenerate fleet shapes.
func TestRunFleetValidation(t *testing.T) {
	cfg := smallFleetConfig()
	cfg.Devices = 0
	if _, err := RunFleet(1, cfg); err == nil {
		t.Error("zero devices accepted")
	}
	cfg = smallFleetConfig()
	cfg.Rounds = 0
	if _, err := RunFleet(1, cfg); err == nil {
		t.Error("zero rounds accepted")
	}
}

// TestRunManyMatchesSerial pins the satellite requirement that the
// parallelized RunMany is bit-identical to a serial loop: same seeds, same
// traces, seed order preserved.
func TestRunManyMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 18
	const base, n = 100, 4
	par, err := RunMany(base, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != n {
		t.Fatalf("RunMany returned %d results, want %d", len(par), n)
	}
	for i := 0; i < n; i++ {
		serial, err := Run(base+int64(i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par[i], serial) {
			t.Errorf("seed %d: parallel trace diverges from serial run", base+int64(i))
		}
	}
}
