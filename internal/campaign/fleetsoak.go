// Fleet soak: the campaign harness scaled to the deployment the paper's
// economics assume — many accelerators aging independently under one
// supervisor, with live traffic routed around the damage. On top of the
// single-device event timelines this adds the failure modes only a fleet
// has: the supervisor process itself crashing mid-campaign (killed and
// replayed from its write-ahead journal, optionally with a torn/corrupt
// journal tail), and correlated multi-device fault showers (one cosmic-ray
// burst or voltage sag touching every device in a rack at once).
//
// The acceptance gate is resume fidelity: a campaign is run twice from the
// same seed — once uninterrupted, once with crash/restarts — and the
// replayed fleet must report byte-identical confirmed statuses, repair
// budgets, breaker positions and hysteresis streaks. Routing is gated by
// invariant: zero requests may ever land on a quarantined, retired or
// Impaired/Critical device, crashes or not.
package campaign

import (
	"fmt"
	"os"
	"reflect"

	"reramtest/internal/fleet"
	"reramtest/internal/health"
	"reramtest/internal/journal"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
	"reramtest/internal/testgen"
)

// fleetDevice adapts a campaign Plant to fleet.Device. The plant persists
// across supervisor crashes — it is the hardware.
type fleetDevice struct {
	id    string
	plant *Plant
}

func (d fleetDevice) ID() string                    { return d.id }
func (d fleetDevice) Infer() monitor.Infer          { return d.plant.Infer() }
func (d fleetDevice) Repairer() health.Repairer     { return d.plant }
func (d fleetDevice) Reference() *nn.Network        { return d.plant.Reference() }
func (d fleetDevice) Patterns() *testgen.PatternSet { return d.plant.Patterns() }

// CostCounter implements fleet.CostMetered: the supervisor journals the
// plant's cumulative per-class spend each tick and restores it on resume, so
// cost survives supervisor crashes the same way hysteresis state does.
func (d fleetDevice) CostCounter() *reram.Counter { return d.plant.CostCounter() }

// FleetSoakConfig parameterises one fleet campaign.
type FleetSoakConfig struct {
	// Devices is the fleet size; Rounds the soak length.
	Devices, Rounds int
	// Plant sizes each device-under-test (the workload model is shared and
	// trained once; device physics are seeded per device).
	Plant PlantConfig
	// Fleet tunes the supervisor under test.
	Fleet fleet.Config
	// RequestsPerRound is the synthetic traffic load the router must place.
	RequestsPerRound int
	// CrashAfter lists fleet rounds after which the supervisor is killed and
	// replayed from its journal.
	CrashAfter []int
	// CorruptTail appends garbage to the journal at every crash, simulating
	// a torn final write that the replay must truncate, not trust.
	CorruptTail bool
	// ShowerRound/ShowerP schedule a correlated soft-error shower hitting
	// every device at once (0 disables).
	ShowerRound int
	ShowerP     float64
	// JournalPath overrides the journal location ("" → a temp file removed
	// after the run).
	JournalPath string
}

// DefaultFleetSoakConfig returns the gate-scale fleet campaign: 4 devices,
// 40 rounds, two mid-campaign supervisor crashes with corrupt journal
// tails, and one correlated shower.
func DefaultFleetSoakConfig() FleetSoakConfig {
	fcfg := fleet.DefaultConfig()
	fcfg.Health = DefaultConfig().Health // simulated time + flap-proof debounce
	fcfg.Monitor = monitor.DefaultConfig()
	fcfg.BreakerOpenAfter = 2
	fcfg.BreakerCooldown = 3
	fcfg.RepairBudget = 10
	fcfg.MinServing = 1
	return FleetSoakConfig{
		Devices: 4, Rounds: 40,
		Plant:            DefaultPlantConfig(),
		Fleet:            fcfg,
		RequestsPerRound: 32,
		CrashAfter:       []int{13, 27},
		CorruptTail:      true,
		ShowerRound:      21, ShowerP: 0.03,
	}
}

// FleetResult is one fleet campaign's trace.
type FleetResult struct {
	Seed    int64
	Devices []string
	// Confirmed is the per-round, per-device confirmed-status matrix.
	Confirmed [][]monitor.Status
	// FinalSnapshot is every device's durable state after the last round.
	FinalSnapshot map[string]fleet.DeviceSnapshot

	// crash/restart trace
	Replays          int
	TornCrashes      int // crashes where garbage was appended to the journal
	TruncatedBytes   int // journal bytes discarded across all replays
	StateDivergences int // replays whose reconstructed state differed from the crashed supervisor's

	// routing trace
	Routed, Sheds int
	Misroutes     int // requests landing on quarantined/retired/Impaired+ devices (gate: 0)

	// health trace
	BreakerTrips, Probes, ProbeRecoveries int
	SensorFaultRounds                     int
	Recovered, GaveUp, Retired            int

	// repair-economics trace (the lifetime soak's raw material)
	RepairCostSpent     int                // budget units charged across all devices
	UntypedRepairErrors int                // strategy errors violating the typed-error contract (gate: 0)
	FinalFidelity       map[string]float64 // per-device functional agreement after the last round
}

// RunFleet executes one seeded fleet campaign and returns its trace.
func RunFleet(seed int64, cfg FleetSoakConfig) (FleetResult, error) {
	if cfg.Devices < 1 {
		return FleetResult{}, fmt.Errorf("campaign: fleet needs ≥ 1 device, got %d", cfg.Devices)
	}
	if cfg.Rounds < 1 {
		return FleetResult{}, fmt.Errorf("campaign: fleet needs ≥ 1 round, got %d", cfg.Rounds)
	}

	plants, pending, devices, ids := buildFleetHardware(seed, cfg.Devices, cfg.Rounds, cfg.Plant)
	res := FleetResult{Seed: seed, Devices: ids}
	// deterministic extended sensor outage on device 0: long enough to trip
	// the breaker and cool down, short enough that the half-open probe finds
	// the sensor alive again — every campaign exercises quarantine AND
	// probe-recovery
	outage := Event{Round: cfg.Rounds / 2, Kind: KindGlitchPanic,
		Duration: cfg.Fleet.BreakerOpenAfter + cfg.Fleet.BreakerCooldown - 1}

	path := cfg.JournalPath
	if path == "" {
		tmp, err := os.CreateTemp("", "fleet-soak-*.wal")
		if err != nil {
			return res, fmt.Errorf("campaign: fleet journal: %w", err)
		}
		path = tmp.Name()
		tmp.Close()
		defer os.Remove(path)
	}
	jw, err := journal.Create(path)
	if err != nil {
		return res, err
	}
	defer func() { jw.Close() }()

	sup, err := fleet.New(devices, cfg.Fleet, jw)
	if err != nil {
		return res, err
	}

	crashAfter := make(map[int]bool, len(cfg.CrashAfter))
	for _, round := range cfg.CrashAfter {
		crashAfter[round] = true
	}

	for round := 1; round <= cfg.Rounds; round++ {
		// inject this round's field events into the hardware
		applyRoundEvents(plants, pending, round)
		if round == outage.Round {
			applyEvent(plants[0], outage)
		}
		if cfg.ShowerRound > 0 && round == cfg.ShowerRound {
			// correlated shower: every device disturbed in the same round
			for _, p := range plants {
				p.Accelerator().InjectSoftErrors(cfg.ShowerP)
			}
		}

		results, err := sup.Tick()
		if err != nil {
			return res, fmt.Errorf("campaign: fleet round %d: %w", round, err)
		}
		row := make([]monitor.Status, len(results))
		for i, rr := range results {
			row[i] = rr.Confirmed
			if rr.SensorFault {
				res.SensorFaultRounds++
			}
			if rr.Tripped {
				res.BreakerTrips++
			}
			if rr.Probe {
				res.Probes++
				if rr.ProbeOK {
					res.ProbeRecoveries++
				}
			}
			if rr.Recovered {
				res.Recovered++
			}
			if rr.GaveUp {
				res.GaveUp++
			}
			res.RepairCostSpent += rr.CostSpent
		}
		res.Confirmed = append(res.Confirmed, row)

		// place this round's traffic and audit every placement
		quarantined := make(map[string]bool)
		for _, id := range sup.Quarantined() {
			quarantined[id] = true
		}
		var landed []string
		for q := 0; q < cfg.RequestsPerRound; q++ {
			id, ok := sup.Dispatch()
			if !ok {
				continue // shed, counted by the router
			}
			st, _ := sup.StatusOf(id)
			if quarantined[id] || st > monitor.Degraded {
				res.Misroutes++
			}
			landed = append(landed, id)
		}
		for _, id := range landed {
			sup.Complete(id)
		}

		// kill the supervisor process and replay its journal
		if crashAfter[round] {
			// the router's traffic counters die with the process — bank them
			routed, sheds := sup.Router().Stats()
			res.Routed += routed
			res.Sheds += sheds
			preCrash := sup.Snapshot()
			if err := jw.Close(); err != nil {
				return res, err
			}
			if cfg.CorruptTail {
				res.TornCrashes++
				if err := appendGarbage(path); err != nil {
					return res, err
				}
			}
			var payloads [][]byte
			var truncated int
			jw, payloads, truncated, err = journal.OpenAppend(path)
			if err != nil {
				return res, fmt.Errorf("campaign: reopen journal after crash at round %d: %w", round, err)
			}
			res.TruncatedBytes += truncated
			sup, err = fleet.Resume(devices, cfg.Fleet, jw, payloads)
			if err != nil {
				return res, fmt.Errorf("campaign: resume after crash at round %d: %w", round, err)
			}
			res.Replays++
			if !reflect.DeepEqual(sup.Snapshot(), preCrash) {
				res.StateDivergences++
			}
		}
	}

	res.FinalSnapshot = sup.Snapshot()
	routed, sheds := sup.Router().Stats()
	res.Routed += routed
	res.Sheds += sheds
	for _, snap := range res.FinalSnapshot {
		if snap.Retired {
			res.Retired++
		}
	}
	res.FinalFidelity = make(map[string]float64, len(plants))
	for i, p := range plants {
		res.FinalFidelity[res.Devices[i]] = p.Fidelity()
		res.UntypedRepairErrors += p.UntypedRepairErrors()
	}
	return res, nil
}

// buildFleetHardware constructs the seeded plants, their event timelines and
// fleet.Device adapters in a FIXED RNG call order: one r.Int63() then one
// r.Split() per device. Every arm of a parity comparison (RunFleetPair,
// RunCrashSoak) builds its hardware through this helper, so the same seed
// always yields bit-identical accelerators and schedules.
func buildFleetHardware(seed int64, devices, rounds int, pcfg PlantConfig) ([]*Plant, [][]Event, []fleet.Device, []string) {
	r := rng.New(seed)
	plants := make([]*Plant, devices)
	pending := make([][]Event, devices)
	devs := make([]fleet.Device, devices)
	ids := make([]string, devices)
	for i := range plants {
		plants[i] = NewPlant(r.Int63(), pcfg)
		pending[i] = RandomTimeline(r.Split(), rounds)
		ids[i] = fmt.Sprintf("accel-%02d", i)
		devs[i] = fleetDevice{id: ids[i], plant: plants[i]}
	}
	return plants, pending, devs, ids
}

// applyRoundEvents advances every plant's scripted time to round and lands
// the timeline events due this round (consuming them from pending).
func applyRoundEvents(plants []*Plant, pending [][]Event, round int) {
	for i, p := range plants {
		p.SetRound(round)
		for len(pending[i]) > 0 && pending[i][0].Round == round {
			applyEvent(p, pending[i][0])
			pending[i] = pending[i][1:]
		}
	}
}

// applyEvent lands one scheduled event on a plant.
func applyEvent(p *Plant, ev Event) {
	switch ev.Kind {
	case KindDrift:
		p.Accelerator().AdvanceTime(ev.Hours)
	case KindSoftShower:
		p.Accelerator().InjectSoftErrors(ev.P)
	case KindStuckBurst:
		p.Accelerator().InjectStuckAt(ev.P0, ev.P1)
	default:
		p.StartGlitch(ev.Kind.glitchMode(), ev.Round, ev.Duration)
	}
}

// appendGarbage simulates a torn final write: raw non-record bytes (starting
// with a record magic to make it look like a real torn frame) after the last
// committed record.
func appendGarbage(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte{0xA7, 0x40, 0x00, 0x00, 0x00, 0x13, 0x37, 0xde, 0xad, 0xbe, 0xef})
	return err
}

// FleetPairResult is one seed's crash-equivalence comparison: the same
// campaign run uninterrupted and with crash/restarts.
type FleetPairResult struct {
	Seed                   int64
	Uninterrupted, Crashed FleetResult
	StatusDivergences      int // (round, device) confirmed-status mismatches
	FinalStateDivergences  int // devices whose final durable state differs
	BudgetDivergences      int // devices whose remaining repair budget differs
}

// RunFleetPair runs the same seeded fleet campaign twice — once with the
// configured crash schedule, once uninterrupted — and counts divergence.
// Zero divergence is the PR's resume-fidelity acceptance criterion.
func RunFleetPair(seed int64, cfg FleetSoakConfig) (FleetPairResult, error) {
	clean := cfg
	clean.CrashAfter = nil
	clean.CorruptTail = false
	pair := FleetPairResult{Seed: seed}
	var err error
	if pair.Uninterrupted, err = RunFleet(seed, clean); err != nil {
		return pair, err
	}
	if pair.Crashed, err = RunFleet(seed, cfg); err != nil {
		return pair, err
	}

	a, b := pair.Uninterrupted, pair.Crashed
	for round := range a.Confirmed {
		for dev := range a.Confirmed[round] {
			if a.Confirmed[round][dev] != b.Confirmed[round][dev] {
				pair.StatusDivergences++
			}
		}
	}
	for _, id := range a.Devices {
		sa, sb := a.FinalSnapshot[id], b.FinalSnapshot[id]
		if sa.Budget != sb.Budget {
			pair.BudgetDivergences++
		}
		if !reflect.DeepEqual(sa, sb) {
			pair.FinalStateDivergences++
		}
	}
	return pair, nil
}
