// Lifetime soak: the acceptance gate for the pluggable repair-strategy
// ladder. One seeded fleet campaign is run three ways —
//
//   - ladder arm: scrub → remap → retrain, costs charged per strategy;
//   - retrain-only control: the same campaign where every repair is the
//     cloud-edge retrain, charged in the same cost units;
//   - crashed ladder arm: the ladder campaign with supervisor crashes and
//     torn journal tails, replayed from the write-ahead journal.
//
// and three properties are gated:
//
//  1. economics — the ladder must not spend more lifetime budget than
//     retrain-only, must not retire more devices, and must hold an
//     equal-or-better fidelity floor (within FidelityTol);
//  2. typed errors — zero strategy applications across all arms may return
//     an error outside the *repair.Error / *repair.DiagnosisError contract;
//  3. decision parity — the crashed ladder arm must replay to the exact
//     confirmed-status history, durable state AND journaled strategy
//     decisions of the uninterrupted one.
package campaign

import (
	"fmt"
	"math"
	"reflect"
	"strings"

	"reramtest/internal/monitor"
)

// LifetimeSoakConfig parameterises the three-arm lifetime soak.
type LifetimeSoakConfig struct {
	// Fleet is the shared campaign script: devices, rounds, event timelines,
	// crash schedule (applied to the parity arm only). Plant.Ladder /
	// Plant.RetrainOnly are overridden per arm.
	Fleet FleetSoakConfig
	// FidelityTol is the slack allowed on the ladder arm's fidelity floor
	// relative to the control arm (0 → 0.02, the campaign's recovery band).
	FidelityTol float64
}

// DefaultLifetimeSoakConfig returns the gate-scale soak: the default fleet
// campaign with drop-connect-hardened commissioning, spare rows provisioned,
// and a budget tight enough that repair economics actually bite.
func DefaultLifetimeSoakConfig() LifetimeSoakConfig {
	fcfg := DefaultFleetSoakConfig()
	fcfg.Plant.Harden = true
	fcfg.Plant.SpareRows = 2
	// A 16-pattern monitor is too coarse an oracle for the economics gates:
	// it verifies repairs that leave visible probe-fidelity damage, letting a
	// cheap rung "succeed" where the control's retrain actually restores the
	// array. 48 patterns keeps verification honest without slowing the soak
	// beyond gate scale.
	fcfg.Plant.Patterns = 48
	fcfg.Fleet.RepairBudget = 12
	return LifetimeSoakConfig{Fleet: fcfg, FidelityTol: 0.02}
}

// LifetimeArm is one arm's economic summary.
type LifetimeArm struct {
	Result    FleetResult
	CostSpent int // lifetime budget units charged fleet-wide
	Retired   int // devices retired to hardware service
	// FidelityFloor is the worst final fidelity across SERVING devices — the
	// ones the router actually dispatches to (not retired, confirmed at
	// worst Degraded). A quarantined wreck the arm kept limping does not
	// drag the floor: it receives no traffic, so it is not part of the
	// service the fleet delivers.
	FidelityFloor float64
	Serving       int
	UntypedErrors int
}

func summarizeArm(res FleetResult) LifetimeArm {
	arm := LifetimeArm{
		Result:        res,
		CostSpent:     res.RepairCostSpent,
		Retired:       res.Retired,
		FidelityFloor: 1,
		UntypedErrors: res.UntypedRepairErrors,
	}
	final := res.Confirmed[len(res.Confirmed)-1]
	for i, id := range res.Devices {
		if res.FinalSnapshot[id].Retired || final[i] > monitor.Degraded {
			continue
		}
		arm.Serving++
		arm.FidelityFloor = math.Min(arm.FidelityFloor, res.FinalFidelity[id])
	}
	if arm.Serving == 0 {
		arm.FidelityFloor = 0
	}
	return arm
}

// LifetimeSoakResult is the three-arm comparison and its gate verdicts.
type LifetimeSoakResult struct {
	Seed                int64
	Ladder, RetrainOnly LifetimeArm
	// Crashed is the ladder arm re-run with the configured crash schedule.
	Crashed FleetResult
	Parity  FleetPairResult

	// DecisionDivergences counts devices whose journaled strategy-decision
	// logs differ between the crashed and uninterrupted ladder arms.
	DecisionDivergences int
	// CommonFloorLadder/CommonFloorControl are the fidelity floors over the
	// devices serving in BOTH arms — the like-for-like comparison the
	// fidelity gate uses.
	CommonFloorLadder, CommonFloorControl float64

	// Gate verdicts.
	SpendOK    bool // ladder spend ≤ retrain-only spend
	RetireOK   bool // ladder retirements ≤ retrain-only retirements
	FidelityOK bool // ladder floor ≥ control floor − FidelityTol
	TypedOK    bool // zero untyped strategy errors across all arms
	ParityOK   bool // crash/restart replay is byte-equivalent, decisions included
}

// Pass reports whether every gate held.
func (r LifetimeSoakResult) Pass() bool {
	return r.SpendOK && r.RetireOK && r.FidelityOK && r.TypedOK && r.ParityOK
}

// String renders the verdict table.
func (r LifetimeSoakResult) String() string {
	var b strings.Builder
	mark := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	fmt.Fprintf(&b, "lifetime soak seed=%d\n", r.Seed)
	fmt.Fprintf(&b, "  spend    %s  ladder=%d retrain-only=%d\n", mark(r.SpendOK), r.Ladder.CostSpent, r.RetrainOnly.CostSpent)
	fmt.Fprintf(&b, "  retire   %s  ladder=%d retrain-only=%d\n", mark(r.RetireOK), r.Ladder.Retired, r.RetrainOnly.Retired)
	fmt.Fprintf(&b, "  fidelity %s  common floor ladder=%.4f retrain-only=%.4f (serving %d vs %d)\n", mark(r.FidelityOK),
		r.CommonFloorLadder, r.CommonFloorControl, r.Ladder.Serving, r.RetrainOnly.Serving)
	fmt.Fprintf(&b, "  typed    %s  untyped errors=%d\n", mark(r.TypedOK),
		r.Ladder.UntypedErrors+r.RetrainOnly.UntypedErrors+r.Crashed.UntypedRepairErrors)
	fmt.Fprintf(&b, "  parity   %s  status=%d state=%d decisions=%d replays=%d truncated=%dB\n", mark(r.ParityOK),
		r.Parity.StatusDivergences, r.Parity.FinalStateDivergences, r.DecisionDivergences, r.Crashed.Replays, r.Crashed.TruncatedBytes)
	fmt.Fprintf(&b, "  verdict  %s\n", mark(r.Pass()))
	return b.String()
}

// RunLifetimeSoak executes the three-arm soak for one seed. Deterministic:
// the same seed and config always produce the same result.
func RunLifetimeSoak(seed int64, cfg LifetimeSoakConfig) (LifetimeSoakResult, error) {
	if cfg.FidelityTol <= 0 {
		cfg.FidelityTol = 0.02
	}

	ladderCfg := cfg.Fleet
	ladderCfg.Plant.Ladder = true
	ladderCfg.Plant.RetrainOnly = false

	controlCfg := cfg.Fleet
	controlCfg.Plant.Ladder = false
	controlCfg.Plant.RetrainOnly = true
	controlCfg.CrashAfter = nil
	controlCfg.CorruptTail = false

	res := LifetimeSoakResult{Seed: seed}

	// arms 1 + 3: the ladder campaign, uninterrupted and crash-replayed
	pair, err := RunFleetPair(seed, ladderCfg)
	if err != nil {
		return res, fmt.Errorf("campaign: lifetime soak ladder arm: %w", err)
	}
	res.Parity = pair
	res.Ladder = summarizeArm(pair.Uninterrupted)
	res.Crashed = pair.Crashed

	// arm 2: the retrain-only control, same seed, same timelines
	control, err := RunFleet(seed, controlCfg)
	if err != nil {
		return res, fmt.Errorf("campaign: lifetime soak control arm: %w", err)
	}
	res.RetrainOnly = summarizeArm(control)

	// the fidelity floors are compared like-for-like, over devices serving
	// in BOTH arms: a device only the ladder kept in service is extra
	// capacity (credited by the retire gate), not a floor penalty, and a
	// device only the control kept is symmetric
	res.CommonFloorLadder, res.CommonFloorControl = 1, 1
	common := 0
	finalL := pair.Uninterrupted.Confirmed[len(pair.Uninterrupted.Confirmed)-1]
	finalC := control.Confirmed[len(control.Confirmed)-1]
	for i, id := range pair.Uninterrupted.Devices {
		servesL := !pair.Uninterrupted.FinalSnapshot[id].Retired && finalL[i] <= monitor.Degraded
		servesC := !control.FinalSnapshot[id].Retired && finalC[i] <= monitor.Degraded
		if !servesL || !servesC {
			continue
		}
		common++
		res.CommonFloorLadder = math.Min(res.CommonFloorLadder, pair.Uninterrupted.FinalFidelity[id])
		res.CommonFloorControl = math.Min(res.CommonFloorControl, control.FinalFidelity[id])
	}
	if common == 0 {
		res.CommonFloorLadder, res.CommonFloorControl = 0, 0
	}

	// decision parity, called out separately from the whole-state DeepEqual
	// so a divergence names the journaled artifact the gate is about
	for _, id := range pair.Uninterrupted.Devices {
		a := pair.Uninterrupted.FinalSnapshot[id].Decisions
		b := pair.Crashed.FinalSnapshot[id].Decisions
		if !reflect.DeepEqual(a, b) {
			res.DecisionDivergences++
		}
	}

	res.SpendOK = res.Ladder.CostSpent <= res.RetrainOnly.CostSpent
	res.RetireOK = res.Ladder.Retired <= res.RetrainOnly.Retired
	res.FidelityOK = res.CommonFloorLadder >= res.CommonFloorControl-cfg.FidelityTol
	res.TypedOK = res.Ladder.UntypedErrors == 0 && res.RetrainOnly.UntypedErrors == 0 &&
		res.Crashed.UntypedRepairErrors == 0
	res.ParityOK = res.Parity.StatusDivergences == 0 && res.Parity.FinalStateDivergences == 0 &&
		res.Parity.BudgetDivergences == 0 && res.DecisionDivergences == 0 &&
		res.Crashed.StateDivergences == 0 && res.Crashed.Misroutes == 0
	return res, nil
}
