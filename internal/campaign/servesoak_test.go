package campaign

import "testing"

// TestServeSoakSmoke is the serve-chaos gate at test scale: one seeded
// campaign with every injection armed must pass all of its own gates AND
// prove the chaos actually fired (a soak that injected nothing gates
// nothing). The full campaign sweep runs via `make serve-soak-smoke`.
func TestServeSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve soak needs real wall-clock for deadlines and hedges")
	}
	cfg := DefaultServeSoakConfig()
	cfg.Rounds = 8
	res, err := RunServeSoak(4242, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fails := res.Failures(); len(fails) != 0 {
		t.Fatalf("serve soak gate failed: %v\n(stats: %+v)", fails, res.Stats)
	}
	if res.InjectedSlows+res.InjectedCrashes == 0 {
		t.Fatal("chaos pass injected no faults — the soak gated nothing")
	}
	if res.StormRounds == 0 || res.Ticks == 0 {
		t.Fatalf("storms=%d ticks=%d — campaign did not exercise deadline storms or concurrent monitoring",
			res.StormRounds, res.Ticks)
	}
	if res.Stats.Admitted == 0 || res.Requests == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
}

func TestServeSoakRejectsBadConfig(t *testing.T) {
	if _, err := RunServeSoak(1, ServeSoakConfig{}); err == nil {
		t.Fatal("zero-device serve soak accepted")
	}
}
