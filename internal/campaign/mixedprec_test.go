package campaign

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"reramtest/internal/netserve"
	"reramtest/internal/tensor"
)

// TestMixedPrecisionNetSmoke runs the network soak with half the shards on
// the F32 fast tier and demands the tier's full contract unchanged: zero
// hung requests, zero silent drops, the received == invalid+quota+closed+
// admitted identity, zero untyped outcomes, post-drain liveness and the cost
// ledger reconciling — the numeric tier must be invisible to the request
// plumbing and its accounting.
func TestMixedPrecisionNetSmoke(t *testing.T) {
	cfg := smallNetSoak()
	cfg.ShardPrecision = func(shard int) tensor.Precision {
		if shard%2 == 0 {
			return tensor.F32
		}
		return tensor.F64
	}
	res, err := RunNetSoak(47, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fails := res.Failures(); len(fails) != 0 {
		t.Fatalf("mixed-precision soak failed gates: %v\nchaos report:\n%s", fails, res.Chaos)
	}
	if res.Stats.Received != res.Stats.Invalid+res.Stats.QuotaRejected+res.Stats.ClosedRejected+res.Stats.Admitted {
		t.Fatalf("admission identity broke under mixed precision: %+v", res.Stats)
	}
	if res.Untyped != 0 {
		t.Fatalf("%d untyped outcomes under mixed precision", res.Untyped)
	}
	if res.PostDrainOK == 0 {
		t.Fatal("no post-drain completions with an f32 shard in the mix")
	}
}

// TestMixedPrecisionSurfacesTier stands up a two-shard tier with one F32
// shard and checks the operator surfaces: Status, /v1/healthz and /statsz
// must all report each shard's numeric tier.
func TestMixedPrecisionSurfacesTier(t *testing.T) {
	cfg := smallNetSoak()
	s0 := cfg.Serve
	s0.Precision = tensor.F32
	specs := []netserve.ShardSpec{
		{Name: "shard-0", Devices: EngineDevicesPrecision(1, 1, "s0", tensor.F32), Fleet: cfg.Fleet, Serve: s0},
		{Name: "shard-1", Devices: EngineDevices(2, 1, "s1"), Fleet: cfg.Fleet, Serve: cfg.Serve},
	}
	f, err := netserve.New(specs, cfg.Net)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	want := map[string]string{"shard-0": "f32", "shard-1": "f64"}
	for _, st := range f.Status() {
		if st.Precision != want[st.Name] {
			t.Fatalf("Status %s precision = %q, want %q", st.Name, st.Precision, want[st.Name])
		}
	}

	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	var hz struct {
		Shards []struct {
			Name      string `json:"name"`
			Precision string `json:"precision"`
		} `json:"shards"`
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(hz.Shards) != 2 {
		t.Fatalf("healthz shards = %+v", hz.Shards)
	}
	for _, sh := range hz.Shards {
		if sh.Precision != want[sh.Name] {
			t.Fatalf("healthz %s precision = %q, want %q", sh.Name, sh.Precision, want[sh.Name])
		}
	}

	var sz struct {
		Precisions map[string]string `json:"precisions"`
	}
	resp, err = ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sz.Precisions["shard-0"] != "f32" || sz.Precisions["shard-1"] != "f64" {
		t.Fatalf("statsz precisions = %v", sz.Precisions)
	}
}
