package campaign

import (
	"fmt"

	"reramtest/internal/engine"
	"reramtest/internal/fleet"
	"reramtest/internal/models"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// Stock dimensions for the engine-backed accelerator set: a small MLP every
// soak and demo shares, so wire-level clients agree on the input width.
const (
	StockInDim  = 16
	StockOutDim = 6
)

// EngineDevices builds n engine-backed accelerator devices, each a clone of
// one seeded reference model with a shared test-pattern set — the stock
// device complement cmd/served, the examples and the network soak mount
// behind a fleet. IDs are prefix-00, prefix-01, … Pass a non-nil chaos tap
// via engineDevices to perturb readouts; this exported form runs clean.
func EngineDevices(seed int64, n int, prefix string) []fleet.Device {
	return engineDevices(rng.New(seed), n, prefix, nil, tensor.F64)
}

// EngineDevicesPrecision is EngineDevices with the device readout plans
// compiled on an explicit numeric tier. The stock soak devices never mutate
// their weights in place, so the fast tiers' compile-time parameter caches
// stay valid for the device's whole lifetime — the one situation where a
// fast tier needs no ReloadParams discipline. Pair with
// serve.Config.Precision so the tier's telemetry reports what the shard
// actually computes.
func EngineDevicesPrecision(seed int64, n int, prefix string, prec tensor.Precision) []fleet.Device {
	return engineDevices(rng.New(seed), n, prefix, nil, prec)
}

func engineDevices(r *rng.RNG, n int, prefix string, chaos *chaosInjector, prec tensor.Precision) []fleet.Device {
	pats := &testgen.PatternSet{
		Name: prefix + "-patterns", Method: "plain",
		X:      tensor.RandUniform(r.Split(), 0, 1, 8, StockInDim),
		Labels: make([]int, 8),
	}
	ref := models.MLP(rng.New(1), StockInDim, []int{24, 16}, StockOutDim)
	devices := make([]fleet.Device, n)
	for i := range devices {
		net := ref.Clone()
		devices[i] = &soakDevice{
			id: fmt.Sprintf("%s-%02d", prefix, i), net: net, pats: pats,
			eng:   engine.MustCompile(net, engine.Options{Workers: 1, Precision: prec}),
			chaos: chaos,
		}
	}
	return devices
}
