// Serve soak: chaos campaign against the concurrent serving frontend
// (internal/serve). Where the fleet soak attacks the supervisor's durable
// state, this soak attacks the request path itself — seeded slow readouts,
// mid-request device crashes and deadline storms, driven from many client
// goroutines while monitoring ticks run concurrently — and audits the
// frontend's liveness contract:
//
//   - zero hung requests: every Do call returns within its own deadline plus
//     a fixed grace, chaos or not;
//   - zero silent drops: every admitted request terminates in a response or
//     a typed error (admitted == terminal in the server's own accounting,
//     and no error escapes the typed set);
//   - bounded tail latency: the chaos run's p99 stays within a fixed
//     envelope of a no-chaos baseline run of the same campaign — hedging
//     must actually cut around slow devices, not just exist;
//   - zero leaked goroutines: after Close the process is back to its
//     pre-campaign goroutine count.
package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"reramtest/internal/engine"
	"reramtest/internal/fleet"
	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
	"reramtest/internal/serve"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"

	"context"

	"reramtest/internal/health"
)

// ServeSoakConfig parameterises one serving chaos campaign.
type ServeSoakConfig struct {
	// Devices is the fleet size; Rounds the number of traffic rounds.
	Devices, Rounds int
	// RequestsPerRound is the concurrent client fan-out per round.
	RequestsPerRound int
	// Fleet tunes the supervisor under the frontend.
	Fleet fleet.Config
	// Serve tunes the frontend under test.
	Serve serve.Config

	// SlowP is the per-readout probability of an injected SlowDelay stall.
	SlowP     float64
	SlowDelay time.Duration
	// CrashP is the per-readout probability of an injected mid-request panic.
	CrashP float64
	// StormEvery makes every Nth round a deadline storm: all of that round's
	// requests carry StormDeadline instead of the serve default (0 disables).
	StormEvery    int
	StormDeadline time.Duration
	// Grace is the hung-request watchdog slack: a Do call is hung if it
	// outlives its own deadline by more than this.
	Grace time.Duration
	// TickEvery runs a monitoring tick concurrently with every Nth round's
	// traffic (0 disables ticks).
	TickEvery int
}

// DefaultServeSoakConfig returns the gate-scale serving chaos campaign.
func DefaultServeSoakConfig() ServeSoakConfig {
	fcfg := fleet.DefaultConfig()
	fcfg.Health = DefaultConfig().Health // simulated time + flap-proof debounce
	fcfg.Monitor = monitor.DefaultConfig()
	fcfg.BreakerOpenAfter = 2
	fcfg.BreakerCooldown = 2
	fcfg.MinServing = 1
	return ServeSoakConfig{
		Devices: 3, Rounds: 12, RequestsPerRound: 24,
		Fleet: fcfg,
		Serve: serve.Config{Workers: 4, QueueBulk: 64, QueueMonitor: 16,
			HedgeAfter: 5 * time.Millisecond, DefaultDeadline: 2 * time.Second},
		SlowP: 0.08, SlowDelay: 10 * time.Millisecond,
		CrashP:     0.03,
		StormEvery: 5, StormDeadline: 2 * time.Millisecond,
		Grace:     250 * time.Millisecond,
		TickEvery: 3,
	}
}

// ServeSoakResult is one serving chaos campaign's trace and verdict inputs.
type ServeSoakResult struct {
	Seed     int64
	Requests int // Do calls attempted (chaos pass)

	Stats serve.Stats // the chaos server's final counters

	// gate inputs
	Hung          int    // Do calls that outlived deadline+grace
	SilentDrops   uint64 // admitted requests without a terminal outcome
	UntypedErrors int    // errors matching no serve sentinel
	Leaked        int    // goroutines still alive after Close + settle

	// chaos trace
	InjectedSlows, InjectedCrashes int
	StormRounds, Ticks             int

	// latency envelope
	BaselineP99, ChaosP99, P99Bound time.Duration
}

// Failures lists every violated gate (empty = campaign passed).
func (r ServeSoakResult) Failures() []string {
	var fails []string
	if r.Hung > 0 {
		fails = append(fails, fmt.Sprintf("%d hung request(s) outlived deadline+grace", r.Hung))
	}
	if r.SilentDrops > 0 {
		fails = append(fails, fmt.Sprintf("%d admitted request(s) silently dropped", r.SilentDrops))
	}
	if r.UntypedErrors > 0 {
		fails = append(fails, fmt.Sprintf("%d error(s) outside the typed set", r.UntypedErrors))
	}
	if r.Leaked > 0 {
		fails = append(fails, fmt.Sprintf("%d goroutine(s) leaked past Close", r.Leaked))
	}
	if r.ChaosP99 > r.P99Bound {
		fails = append(fails, fmt.Sprintf("chaos p99 %v exceeds bound %v (baseline %v)",
			r.ChaosP99, r.P99Bound, r.BaselineP99))
	}
	if r.Stats.Served == 0 {
		fails = append(fails, "chaos campaign served zero requests")
	}
	return fails
}

// chaosInjector perturbs device readouts from one seeded stream, shared by
// every device (attempt goroutines draw concurrently, so it locks).
type chaosInjector struct {
	mu        sync.Mutex
	r         *rng.RNG
	enabled   bool
	slowP     float64
	slowDelay time.Duration
	crashP    float64
	slows     int
	crashes   int
}

func (c *chaosInjector) disturb() {
	c.mu.Lock()
	if !c.enabled {
		c.mu.Unlock()
		return
	}
	slow := c.r.Bernoulli(c.slowP)
	crash := c.r.Bernoulli(c.crashP)
	if slow {
		c.slows++
	}
	if crash {
		c.crashes++
	}
	delay := c.slowDelay
	c.mu.Unlock()
	if slow {
		time.Sleep(delay)
	}
	if crash {
		panic("campaign: injected mid-request crash")
	}
}

// soakDevice is an engine-backed accelerator with a chaos tap on its readout
// path. The engine is single-goroutine, which is fine: the serve Station
// wrapping this device serialises all access.
type soakDevice struct {
	id    string
	net   *nn.Network
	pats  *testgen.PatternSet
	eng   *engine.Engine
	chaos *chaosInjector
}

func (d *soakDevice) ID() string                    { return d.id }
func (d *soakDevice) Reference() *nn.Network        { return d.net }
func (d *soakDevice) Patterns() *testgen.PatternSet { return d.pats }
func (d *soakDevice) Repairer() health.Repairer     { return nil }

// CostCounter implements fleet.CostMetered via the compiled engine's meter.
func (d *soakDevice) CostCounter() *reram.Counter { return d.eng.Counter() }
func (d *soakDevice) Infer() monitor.Infer {
	return func(x *tensor.Tensor) *tensor.Tensor {
		if d.chaos != nil {
			d.chaos.disturb()
		}
		return d.eng.Probs(x)
	}
}

// RunServeSoak executes one seeded serving chaos campaign: a no-chaos
// baseline pass to calibrate the latency envelope, then the chaos pass with
// all injections armed. The returned result's Failures() is the gate.
func RunServeSoak(seed int64, cfg ServeSoakConfig) (ServeSoakResult, error) {
	if cfg.Devices < 1 || cfg.Rounds < 1 || cfg.RequestsPerRound < 1 {
		return ServeSoakResult{}, fmt.Errorf("campaign: serve soak needs ≥ 1 device, round and request, got %+v",
			[3]int{cfg.Devices, cfg.Rounds, cfg.RequestsPerRound})
	}
	res := ServeSoakResult{Seed: seed}

	baseline, err := runServePass(seed, cfg, false)
	if err != nil {
		return res, fmt.Errorf("campaign: serve baseline pass: %w", err)
	}
	chaos, err := runServePass(seed, cfg, true)
	if err != nil {
		return res, fmt.Errorf("campaign: serve chaos pass: %w", err)
	}

	res.Requests = chaos.requests
	res.Stats = chaos.stats
	res.Hung = chaos.hung
	res.SilentDrops = chaos.stats.Admitted - chaos.stats.Terminal()
	res.UntypedErrors = chaos.untyped
	res.Leaked = chaos.leaked
	res.InjectedSlows = chaos.slows
	res.InjectedCrashes = chaos.crashes
	res.StormRounds = chaos.storms
	res.Ticks = chaos.ticks
	res.BaselineP99 = p99(baseline.latencies)
	res.ChaosP99 = p99(chaos.latencies)
	// the envelope: chaos may cost one injected stall plus scheduling slack
	// over an inflated baseline, but never an unbounded stall — that would
	// mean hedging failed to route around the slow device
	floor := 4 * res.BaselineP99
	if floor < 5*time.Millisecond {
		floor = 5 * time.Millisecond
	}
	res.P99Bound = floor + cfg.SlowDelay + cfg.Grace
	return res, nil
}

// passTrace is one pass's raw measurements.
type passTrace struct {
	requests       int
	stats          serve.Stats
	hung, untyped  int
	slows, crashes int
	storms, ticks  int
	leaked         int
	latencies      []time.Duration
}

// runServePass drives one full campaign against a fresh server.
func runServePass(seed int64, cfg ServeSoakConfig, chaosOn bool) (passTrace, error) {
	var tr passTrace
	goroutinesBefore := runtime.NumGoroutine()

	r := rng.New(seed)
	chaos := &chaosInjector{r: r.Split(), enabled: chaosOn,
		slowP: cfg.SlowP, slowDelay: cfg.SlowDelay, crashP: cfg.CrashP}
	pats := &testgen.PatternSet{
		Name: "serve-soak", Method: "plain",
		X:      tensor.RandUniform(r.Split(), 0, 1, 8, 16),
		Labels: make([]int, 8),
	}
	ref := models.MLP(rng.New(1), 16, []int{24, 16}, 6)
	devices := make([]fleet.Device, cfg.Devices)
	for i := range devices {
		net := ref.Clone()
		devices[i] = &soakDevice{
			id: fmt.Sprintf("accel-%02d", i), net: net, pats: pats,
			eng:   engine.MustCompile(net, engine.Options{Workers: 1}),
			chaos: chaos,
		}
	}

	srv, err := serve.New(devices, cfg.Fleet, cfg.Serve, nil)
	if err != nil {
		return tr, err
	}

	reqRNG := r.Split()
	var mu sync.Mutex // guards the trace fields updated by client goroutines

	for round := 1; round <= cfg.Rounds; round++ {
		storm := chaosOn && cfg.StormEvery > 0 && round%cfg.StormEvery == 0
		if storm {
			tr.storms++
		}

		var tickWG sync.WaitGroup
		if cfg.TickEvery > 0 && round%cfg.TickEvery == 0 {
			// monitoring runs concurrently with this round's traffic — the
			// contention between ticks and serving is exactly what we soak
			tr.ticks++
			tickWG.Add(1)
			go func() {
				defer tickWG.Done()
				srv.Tick()
			}()
		}

		// pre-generate this round's batches from the seeded stream (the RNG
		// is not shared with the client goroutines)
		batches := make([]*tensor.Tensor, cfg.RequestsPerRound)
		for q := range batches {
			batches[q] = tensor.RandUniform(reqRNG.Split(), 0, 1, 1+q%3, 16)
		}

		var wg sync.WaitGroup
		for q := 0; q < cfg.RequestsPerRound; q++ {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				prio := serve.Bulk
				if q == 0 {
					prio = serve.Monitor // every round carries test-pattern traffic
				}
				deadline := cfg.Serve.DefaultDeadline
				ctx := context.Background()
				var cancel context.CancelFunc
				if storm {
					deadline = cfg.StormDeadline
					ctx, cancel = context.WithTimeout(ctx, deadline)
					defer cancel()
				}
				start := time.Now()
				_, err := srv.Do(ctx, batches[q], prio)
				elapsed := time.Since(start)

				mu.Lock()
				defer mu.Unlock()
				tr.requests++
				if elapsed > deadline+cfg.Grace {
					tr.hung++
				}
				if err != nil && !errors.Is(err, serve.ErrOverloaded) &&
					!errors.Is(err, serve.ErrDeadline) && !errors.Is(err, serve.ErrNoDevices) &&
					!errors.Is(err, serve.ErrFaulted) && !errors.Is(err, serve.ErrClosed) {
					tr.untyped++
				}
				if !storm {
					tr.latencies = append(tr.latencies, elapsed)
				}
			}(q)
		}
		wg.Wait()
		tickWG.Wait()
	}

	if err := srv.Close(); err != nil {
		return tr, err
	}
	tr.stats = srv.Stats()
	tr.slows, tr.crashes = chaos.slows, chaos.crashes

	// settle-wait for background attempt goroutines the runtime hasn't
	// reaped yet, then count anything still alive as leaked
	settle := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(settle) {
		time.Sleep(5 * time.Millisecond)
	}
	if extra := runtime.NumGoroutine() - goroutinesBefore; extra > 0 {
		tr.leaked = extra
	}
	return tr, nil
}

// p99 returns the 99th-percentile of samples (0 when empty).
func p99(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
