// Crash soak: the durable-state torture matrix. Every cell of
// (crash point × disk fault) runs the same seeded fleet campaign over a
// snapshot-compacting journal.Store backed by a fault-injecting filesystem,
// kills the supervisor, recovers from whatever the disk holds, and compares
// the recovered state bit for bit against an uninterrupted baseline run of
// the identical hardware. The gates:
//
//   - lossless recovery: after a recoverable fault (plain crash, torn WAL
//     tail, torn snapshot publish, corrupt newest snapshot generation, torn
//     compaction rename) the recovered fleet must land on EXACTLY the crash
//     round with bit-identical state, and finishing the campaign must match
//     the baseline's final state.
//   - fail-stop honesty: a fault that poisons the WAL (short write, failed
//     fsync, ENOSPC, crash-at-byte) must surface as a typed error AND flip
//     the supervisor to Unjournaled — while supervision itself continues
//     bit-identically to the baseline, memory-only. Recovery then lands at
//     or after the last acknowledged round: zero writes acked then lost.
//   - bounded WAL: across every arm's whole lifetime the WAL never exceeds
//     ~2× the compaction threshold.
package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"reramtest/internal/fleet"
	"reramtest/internal/journal"
	"reramtest/internal/monitor"
)

// Disk-fault kinds, one per torture-matrix column.
const (
	// FaultNone is the control column: a clean kill, nothing injected.
	FaultNone = "none"
	// FaultTornTail appends a torn frame to the WAL after the kill.
	FaultTornTail = "torn-tail"
	// FaultTornSnapshotTmp leaves a half-written snapshot temp file behind,
	// as a crash between snapshot write and rename would.
	FaultTornSnapshotTmp = "torn-snapshot-tmp"
	// FaultCorruptSnapshot flips bytes in the newest snapshot generation;
	// recovery must fall back a generation, losslessly.
	FaultCorruptSnapshot = "corrupt-snapshot"
	// FaultTornRename fails the snapshot publish rename at a compaction
	// round; journaling must continue and the retried compaction succeed.
	FaultTornRename = "torn-rename"
	// FaultShortWrite tears one group-commit append mid-frame.
	FaultShortWrite = "short-write"
	// FaultSyncFail fails the group-commit fsync (fsyncgate semantics).
	FaultSyncFail = "fsync-fail"
	// FaultNoSpace turns the disk full, permanently.
	FaultNoSpace = "enospc"
	// FaultCrashAtByte kills the filesystem mid-write at a byte boundary.
	FaultCrashAtByte = "crash-at-byte"
)

// RecoverableFaults leave the on-disk history complete: recovery must be
// lossless to the exact crash round.
var RecoverableFaults = []string{
	FaultNone, FaultTornTail, FaultTornSnapshotTmp, FaultCorruptSnapshot, FaultTornRename,
}

// FailStopFaults poison the WAL mid-campaign: the supervisor must degrade to
// memory-only and the disk must still recover every acknowledged round.
var FailStopFaults = []string{
	FaultShortWrite, FaultSyncFail, FaultNoSpace, FaultCrashAtByte,
}

// AllFaults is the full torture-matrix column set.
func AllFaults() []string {
	return append(append([]string{}, RecoverableFaults...), FailStopFaults...)
}

// CrashSoakConfig parameterises the torture matrix.
type CrashSoakConfig struct {
	// Devices is the fleet size; Rounds the campaign length of every arm.
	Devices, Rounds int
	// Plant sizes each device-under-test.
	Plant PlantConfig
	// Fleet tunes the supervisor; Fleet.CompactEvery drives cadence
	// compaction (must be ≥ 1 so snapshot-dependent faults have a snapshot
	// to attack).
	Fleet fleet.Config
	// CompactBytes is the Store's size-compaction threshold and the base of
	// the WAL bound (max WAL ≤ 2×CompactBytes + one record).
	CompactBytes int64
	// CrashPoints are the rounds after which each fault column strikes.
	// Every point must be ≥ Fleet.CompactEvery and ≤ Rounds.
	CrashPoints []int
	// Faults selects the columns (nil → AllFaults()).
	Faults []string
	// DegradedRounds is how many extra memory-only ticks a fail-stop cell
	// runs after degrading, proving the fleet keeps supervising (0 → 2).
	DegradedRounds int
}

// DefaultCrashSoakConfig returns the gate-scale matrix: 3 devices, 12
// rounds, 3 crash points × all 9 fault columns = 27 cells plus a baseline.
func DefaultCrashSoakConfig() CrashSoakConfig {
	fcfg := fleet.DefaultConfig()
	fcfg.Health = DefaultConfig().Health
	fcfg.Monitor = monitor.DefaultConfig()
	fcfg.RepairBudget = 10
	fcfg.CompactEvery = 3
	return CrashSoakConfig{
		Devices: 3, Rounds: 12,
		Plant:          DefaultPlantConfig(),
		Fleet:          fcfg,
		CompactBytes:   16 << 10,
		CrashPoints:    []int{4, 7, 11},
		DegradedRounds: 2,
	}
}

// CrashCell is one (crash point × fault) outcome.
type CrashCell struct {
	Round int    // the crash point
	Fault string // the fault column

	FaultSurfaced  bool // the injected fault came back as a typed error
	Degraded       bool // the supervisor flipped to Unjournaled (fail-stop only)
	LastAcked      int  // last round acknowledged as durable before the kill
	RecoveredRound int  // round the recovery landed on
	StateMatch     bool // recovered state bit-identical to baseline at RecoveredRound
	FinalMatch     bool // campaign finished matching baseline (recoverable cells)
	MaxWALBytes    int64
	Failures       []string
}

// CrashSoakResult is the whole matrix's verdict.
type CrashSoakResult struct {
	Seed        int64
	Cells       []CrashCell
	MaxWALBytes int64 // across baseline and every cell
	WALBound    int64 // the bound the max was gated against
}

// Failures flattens every cell failure, prefixed with its cell coordinates.
func (r CrashSoakResult) Failures() []string {
	var out []string
	for _, c := range r.Cells {
		for _, f := range c.Failures {
			out = append(out, fmt.Sprintf("[round=%d fault=%s] %s", c.Round, c.Fault, f))
		}
	}
	return out
}

// crashBaseline is the uninterrupted arm: per-round durable-state snapshots
// (index = round; [0] is the commissioned state) plus WAL telemetry.
type crashBaseline struct {
	perRound  []map[string]fleet.DeviceSnapshot
	maxWAL    int64
	maxRecord int64 // largest single-tick WAL growth observed
}

// RunCrashSoak executes the torture matrix for one seed.
func RunCrashSoak(seed int64, cfg CrashSoakConfig) (CrashSoakResult, error) {
	if cfg.Devices < 1 || cfg.Rounds < 1 {
		return CrashSoakResult{}, fmt.Errorf("campaign: crash soak needs ≥ 1 device and round, got %d/%d", cfg.Devices, cfg.Rounds)
	}
	if cfg.Fleet.CompactEvery < 1 {
		return CrashSoakResult{}, errors.New("campaign: crash soak requires Fleet.CompactEvery ≥ 1 — snapshot faults need snapshots")
	}
	if cfg.CompactBytes <= 0 {
		cfg.CompactBytes = 16 << 10
	}
	if cfg.DegradedRounds == 0 {
		cfg.DegradedRounds = 2
	}
	faults := cfg.Faults
	if faults == nil {
		faults = AllFaults()
	}
	for _, p := range cfg.CrashPoints {
		if p < cfg.Fleet.CompactEvery || p > cfg.Rounds {
			return CrashSoakResult{}, fmt.Errorf("campaign: crash point %d outside [%d, %d]", p, cfg.Fleet.CompactEvery, cfg.Rounds)
		}
	}

	dir, err := os.MkdirTemp("", "crash-soak-*")
	if err != nil {
		return CrashSoakResult{}, err
	}
	defer os.RemoveAll(dir)

	res := CrashSoakResult{Seed: seed}
	base, err := runCrashBaseline(seed, cfg, filepath.Join(dir, "base"))
	if err != nil {
		return res, fmt.Errorf("campaign: crash-soak baseline: %w", err)
	}
	res.MaxWALBytes = base.maxWAL
	res.WALBound = 2*cfg.CompactBytes + base.maxRecord

	for _, point := range cfg.CrashPoints {
		for _, fault := range faults {
			cell := runCrashCell(seed, cfg, filepath.Join(dir, fmt.Sprintf("r%02d-%s", point, fault)), point, fault, base)
			if cell.MaxWALBytes > res.MaxWALBytes {
				res.MaxWALBytes = cell.MaxWALBytes
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	if res.MaxWALBytes > res.WALBound {
		res.Cells = append(res.Cells, CrashCell{Fault: "wal-bound", Failures: []string{
			fmt.Sprintf("WAL peaked at %d bytes, bound %d (2×%d + %d-byte record)",
				res.MaxWALBytes, res.WALBound, cfg.CompactBytes, base.maxRecord)}})
	}
	return res, nil
}

// runCrashBaseline runs the uninterrupted arm and records every round's
// durable state.
func runCrashBaseline(seed int64, cfg CrashSoakConfig, dir string) (*crashBaseline, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	plants, pending, devices, _ := buildFleetHardware(seed, cfg.Devices, cfg.Rounds, cfg.Plant)
	st, _, err := journal.OpenStore(filepath.Join(dir, "fleet.wal"),
		journal.StoreConfig{CompactBytes: cfg.CompactBytes})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	sup, err := fleet.NewStore(devices, cfg.Fleet, st)
	if err != nil {
		return nil, err
	}
	base := &crashBaseline{perRound: make([]map[string]fleet.DeviceSnapshot, cfg.Rounds+1)}
	base.perRound[0] = sup.Snapshot()
	base.maxWAL = st.Size()
	for round := 1; round <= cfg.Rounds; round++ {
		applyRoundEvents(plants, pending, round)
		before := st.Size()
		if _, err := sup.Tick(); err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		if grew := st.Size() - before; grew > base.maxRecord {
			base.maxRecord = grew
		}
		if st.Size() > base.maxWAL {
			base.maxWAL = st.Size()
		}
		base.perRound[round] = sup.Snapshot()
	}
	return base, nil
}

// isFailStop reports whether fault poisons the live WAL writer.
func isFailStop(fault string) bool {
	for _, f := range FailStopFaults {
		if f == fault {
			return true
		}
	}
	return false
}

// armFault schedules a fail-stop fault (or the torn rename) on the injected
// filesystem, to strike during the next tick's journaling.
func armFault(efs *journal.ErrFS, fault string) {
	switch fault {
	case FaultShortWrite:
		efs.ShortWriteNext(5)
	case FaultSyncFail:
		efs.FailNextSync(1)
	case FaultNoSpace:
		efs.SetNoSpace(true)
	case FaultCrashAtByte:
		efs.CrashAtByte(efs.BytesWritten() + 17)
	case FaultTornRename:
		efs.FailNextRename()
	}
}

// newestSnapshotFile returns the newest on-disk snapshot generation of the
// WAL at path ("" when none exists).
func newestSnapshotFile(path string) string {
	matches, err := filepath.Glob(path + ".snap-*")
	if err != nil {
		return ""
	}
	var gens []string
	for _, m := range matches {
		if !strings.HasSuffix(m, ".tmp") {
			gens = append(gens, m)
		}
	}
	if len(gens) == 0 {
		return ""
	}
	sort.Strings(gens) // %016x names sort lexicographically by generation
	return gens[len(gens)-1]
}

// runCrashCell executes one torture-matrix cell.
func runCrashCell(seed int64, cfg CrashSoakConfig, dir string, crashRound int, fault string, base *crashBaseline) CrashCell {
	cell := CrashCell{Round: crashRound, Fault: fault}
	fail := func(format string, args ...any) {
		cell.Failures = append(cell.Failures, fmt.Sprintf(format, args...))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail("mkdir: %v", err)
		return cell
	}
	plants, pending, devices, _ := buildFleetHardware(seed, cfg.Devices, cfg.Rounds, cfg.Plant)
	path := filepath.Join(dir, "fleet.wal")
	efs := journal.NewErrFS(nil)
	scfg := journal.StoreConfig{FS: efs, CompactBytes: cfg.CompactBytes}
	st, _, err := journal.OpenStore(path, scfg)
	if err != nil {
		fail("open store: %v", err)
		return cell
	}
	sup, err := fleet.NewStore(devices, cfg.Fleet, st)
	if err != nil {
		fail("commission: %v", err)
		return cell
	}

	failStop := isFailStop(fault)
	// the torn rename strikes the last compaction round at or before the
	// crash point — the only rounds where a snapshot publish happens
	renameRound := 0
	if fault == FaultTornRename {
		renameRound = crashRound - crashRound%cfg.Fleet.CompactEvery
	}

	trackWAL := func() {
		if st.Err() == nil {
			if sz := st.Size(); sz > cell.MaxWALBytes {
				cell.MaxWALBytes = sz
			}
		}
	}
	for round := 1; round <= crashRound; round++ {
		applyRoundEvents(plants, pending, round)
		strike := (failStop && round == crashRound) || round == renameRound
		if strike {
			armFault(efs, fault)
		}
		_, err := sup.Tick()
		switch {
		case strike && failStop:
			if !errors.Is(err, fleet.ErrUnjournaled) {
				fail("fail-stop fault returned %v, want ErrUnjournaled", err)
			} else {
				cell.FaultSurfaced = true
			}
			if !errors.Is(sup.JournalError(), journal.ErrInjected) {
				fail("JournalError %v does not surface the injected fault", sup.JournalError())
			}
		case strike: // torn rename: typed compaction error, WAL stays live
			if !errors.Is(err, journal.ErrInjected) {
				fail("torn rename returned %v, want ErrInjected", err)
			} else {
				cell.FaultSurfaced = true
			}
			if sup.Unjournaled() {
				fail("torn rename degraded the supervisor — the WAL was still healthy")
			}
			if sup.CompactionError() == nil {
				fail("torn rename not remembered in CompactionError")
			}
		case err != nil:
			fail("round %d: unexpected tick error %v", round, err)
		}
		if err == nil && !sup.Unjournaled() {
			cell.LastAcked = round
		}
		trackWAL()
	}
	if fault == FaultNone || fault == FaultTornTail || fault == FaultTornSnapshotTmp || fault == FaultCorruptSnapshot {
		cell.FaultSurfaced = true // these strike the dead disk; surfacing is judged at recovery
	}
	cell.Degraded = sup.Unjournaled()

	// fail-stop cells: the degraded fleet must keep supervising, memory-only,
	// bit-identical to the baseline
	postCrash := crashRound
	if failStop {
		if !cell.Degraded {
			fail("fail-stop fault did not flip the supervisor to Unjournaled")
		}
		end := crashRound + cfg.DegradedRounds
		if end > cfg.Rounds {
			end = cfg.Rounds
		}
		for round := crashRound + 1; round <= end; round++ {
			applyRoundEvents(plants, pending, round)
			if _, err := sup.Tick(); err != nil {
				fail("degraded round %d: %v", round, err)
			}
		}
		postCrash = end
		if !reflect.DeepEqual(sup.Snapshot(), base.perRound[postCrash]) {
			fail("degraded supervision diverged from baseline at round %d", postCrash)
		}
		if len(sup.Serving()) == 0 && len(servingOf(base.perRound[postCrash])) > 0 {
			fail("degraded fleet stopped serving while the baseline still served")
		}
	}

	// kill the process; dead-disk faults strike now
	st.Close() // poisoned stores return their sticky error; nothing to save
	switch fault {
	case FaultTornTail:
		if err := appendGarbage(path); err != nil {
			fail("append garbage: %v", err)
		}
	case FaultTornSnapshotTmp:
		tmp := fmt.Sprintf("%s.snap-%016x.tmp", path, uint64(999))
		if err := os.WriteFile(tmp, []byte("RSNP torn mid-publish"), 0o644); err != nil {
			fail("plant torn tmp: %v", err)
		}
	case FaultCorruptSnapshot:
		newest := newestSnapshotFile(path)
		if newest == "" {
			fail("no snapshot generation on disk to corrupt — compaction never ran before round %d", crashRound)
			return cell
		}
		img, err := os.ReadFile(newest)
		if err != nil {
			fail("read snapshot: %v", err)
			return cell
		}
		img[len(img)/2] ^= 0xFF
		img[len(img)-3] ^= 0xFF
		if err := os.WriteFile(newest, img, 0o644); err != nil {
			fail("corrupt snapshot: %v", err)
		}
	}

	// recover from whatever the disk holds
	efs.Heal()
	st2, rec, err := journal.OpenStore(path, scfg)
	if err != nil {
		fail("recovery open: %v", err)
		return cell
	}
	defer st2.Close()
	if fault == FaultCorruptSnapshot && rec.SnapshotsSkipped == 0 {
		fail("corrupt snapshot generation not detected during recovery")
	}
	sup2, err := fleet.ResumeStore(devices, cfg.Fleet, st2, rec)
	if err != nil {
		fail("resume: %v", err)
		return cell
	}
	cell.RecoveredRound = sup2.Round()

	// gate: zero acknowledged-then-lost writes
	if cell.RecoveredRound < cell.LastAcked {
		fail("acked round %d lost: recovery landed on %d", cell.LastAcked, cell.RecoveredRound)
	}
	// gate: recovered state bit-identical to the baseline at that round
	if cell.RecoveredRound <= cfg.Rounds &&
		reflect.DeepEqual(sup2.Snapshot(), base.perRound[cell.RecoveredRound]) {
		cell.StateMatch = true
	} else {
		fail("recovered state diverges from baseline at round %d", cell.RecoveredRound)
	}

	if failStop {
		cell.FinalMatch = cell.StateMatch
		return cell
	}

	// recoverable cells: recovery must be lossless to the exact crash round,
	// and finishing the campaign must match the baseline's final state
	if cell.RecoveredRound != crashRound {
		fail("recoverable fault lost rounds: recovered %d, crashed after %d", cell.RecoveredRound, crashRound)
	}
	for round := crashRound + 1; round <= cfg.Rounds; round++ {
		applyRoundEvents(plants, pending, round)
		if _, err := sup2.Tick(); err != nil {
			fail("post-recovery round %d: %v", round, err)
		}
		if st2.Err() == nil {
			if sz := st2.Size(); sz > cell.MaxWALBytes {
				cell.MaxWALBytes = sz
			}
		}
	}
	if reflect.DeepEqual(sup2.Snapshot(), base.perRound[cfg.Rounds]) {
		cell.FinalMatch = true
	} else {
		fail("final state diverges from the uninterrupted baseline")
	}
	return cell
}

// servingOf counts the devices a snapshot map shows as eligible to serve.
func servingOf(snaps map[string]fleet.DeviceSnapshot) []string {
	var out []string
	for id, s := range snaps {
		if !s.Retired && s.Breaker.State == fleet.BreakerClosed && s.State.Confirmed <= monitor.Degraded {
			out = append(out, id)
		}
	}
	return out
}
