package campaign

import (
	"fmt"
	"strings"

	"reramtest/internal/monitor"
)

// Scorecard aggregates campaign outcomes into the robustness metrics the
// hardened runtime is gated on.
type Scorecard struct {
	Campaigns, Rounds int

	// event census
	Persistent, CriticalEvents, Transients int

	// detection quality
	MissedCritical   int // persistent Critical-severity events never confirmed Critical
	MissedPersistent int // persistent events (≥ Degraded severity) never confirmed at all
	FalseAlarmFlips  int // confirmed escalations in rounds with no persistent fault active
	TransientFlaps   int // confirmed-status changes inside transient glitch windows
	RawFlapWindows   int // transient windows where the raw evidence deviated (an un-debounced monitor flaps)
	TransientWindows int // transient windows scored (no persistent fault active)

	// supervised repair quality
	Repairable, Recovered, GaveUp int

	// runtime survival
	SensorFaultRounds, RejectedReadouts, RecoveredPanics int
}

// RecoveryRate is the fraction of repairable (persistent, detected) events
// whose supervised repair verified clean AND restored probe fidelity within
// the campaign's budget.
func (s Scorecard) RecoveryRate() float64 {
	if s.Repairable == 0 {
		return 1
	}
	return float64(s.Recovered) / float64(s.Repairable)
}

// Score aggregates campaign results into a scorecard. fidelityBudget is the
// allowed post-repair agreement loss versus commissioning (e.g. 0.02).
func Score(results []Result, fidelityBudget float64) Scorecard {
	var s Scorecard
	s.Campaigns = len(results)
	for _, res := range results {
		s.Rounds += len(res.Rounds)
		s.RejectedReadouts += res.RejectedReadouts
		s.RecoveredPanics += res.RecoveredPanics

		// index persistent-fault activity per round: from injection until a
		// recovered repair round
		activeAt := make([]bool, len(res.Rounds)+2)
		for _, ev := range res.Events {
			if ev.Kind.Transient() {
				continue
			}
			until := len(res.Rounds)
			for _, rec := range res.Rounds {
				if rec.Round >= ev.Round && rec.Recovered {
					until = rec.Round
					break
				}
			}
			for r := ev.Round; r <= until && r < len(activeAt); r++ {
				activeAt[r] = true
			}
		}

		for _, rec := range res.Rounds {
			if rec.SensorFault {
				s.SensorFaultRounds++
			}
			if rec.Changed && rec.Confirmed > monitor.Healthy && !activeAt[rec.Round] {
				s.FalseAlarmFlips++
			}
		}

		for _, ev := range res.Events {
			if ev.Kind.Transient() {
				s.Transients++
				// score the window only when it does not overlap real damage
				lo, hi := ev.Round, ev.Round+ev.Duration+res.EscalateAfter
				overlaps := false
				for r := lo; r <= hi && r < len(activeAt); r++ {
					overlaps = overlaps || activeAt[r]
				}
				if overlaps {
					continue
				}
				s.TransientWindows++
				rawDeviated := false
				for _, rec := range res.Rounds {
					if rec.Round < lo || rec.Round > hi {
						continue
					}
					if rec.Changed {
						s.TransientFlaps++
					}
					if rec.Raw != monitor.Healthy || rec.SensorFault {
						rawDeviated = true
					}
				}
				if rawDeviated {
					s.RawFlapWindows++
				}
				continue
			}

			s.Persistent++
			if ev.Severity >= monitor.Critical {
				s.CriticalEvents++
				if ev.MaxConfirmed < monitor.Critical {
					s.MissedCritical++
				}
			}
			if ev.Severity >= monitor.Degraded && ev.DetectedAt == 0 {
				s.MissedPersistent++
			}
			if ev.Severity >= monitor.Degraded {
				s.Repairable++
				if ev.Recovered && ev.FidelityAfter >= res.CommissionFidelity-fidelityBudget {
					s.Recovered++
				}
				if ev.GaveUp {
					s.GaveUp++
				}
			}
		}
	}
	return s
}

// Gate checks the soak acceptance criteria and returns a descriptive error
// on the first violation: zero missed Critical events, zero confirmed flaps
// on transient glitches (while the raw evidence demonstrably deviates), and
// a recovery rate of at least minRecovery.
func (s Scorecard) Gate(minRecovery float64) error {
	// a soak that exercised nothing proves nothing: refuse the vacuous pass
	if s.Campaigns == 0 || s.Persistent == 0 || s.TransientWindows == 0 {
		return fmt.Errorf("campaign gate: nothing exercised (campaigns=%d persistent=%d transientWindows=%d) — run more campaigns/rounds",
			s.Campaigns, s.Persistent, s.TransientWindows)
	}
	if s.MissedCritical > 0 {
		return fmt.Errorf("campaign gate: %d/%d Critical-severity events missed", s.MissedCritical, s.CriticalEvents)
	}
	if s.MissedPersistent > 0 {
		return fmt.Errorf("campaign gate: %d/%d persistent events never detected", s.MissedPersistent, s.Persistent)
	}
	if s.TransientFlaps > 0 {
		return fmt.Errorf("campaign gate: %d confirmed-status flaps on transient glitches", s.TransientFlaps)
	}
	if s.TransientWindows > 0 && s.RawFlapWindows == 0 {
		return fmt.Errorf("campaign gate: no transient window perturbed the raw monitor — flap suppression untested")
	}
	if s.FalseAlarmFlips > 0 {
		return fmt.Errorf("campaign gate: %d false-alarm escalations on healthy rounds", s.FalseAlarmFlips)
	}
	if rate := s.RecoveryRate(); rate < minRecovery {
		return fmt.Errorf("campaign gate: recovery rate %.0f%% < %.0f%% (%d/%d, %d gave up)",
			100*rate, 100*minRecovery, s.Recovered, s.Repairable, s.GaveUp)
	}
	return nil
}

// String renders the scorecard as a small report.
func (s Scorecard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaigns=%d rounds=%d\n", s.Campaigns, s.Rounds)
	fmt.Fprintf(&b, "events: persistent=%d (critical=%d) transient=%d\n",
		s.Persistent, s.CriticalEvents, s.Transients)
	fmt.Fprintf(&b, "detection: missedCritical=%d missedPersistent=%d falseAlarms=%d\n",
		s.MissedCritical, s.MissedPersistent, s.FalseAlarmFlips)
	fmt.Fprintf(&b, "debounce: transientWindows=%d confirmedFlaps=%d rawFlapWindows=%d\n",
		s.TransientWindows, s.TransientFlaps, s.RawFlapWindows)
	fmt.Fprintf(&b, "repair: repairable=%d recovered=%d gaveUp=%d recoveryRate=%.0f%%\n",
		s.Repairable, s.Recovered, s.GaveUp, 100*s.RecoveryRate())
	fmt.Fprintf(&b, "survival: sensorFaultRounds=%d rejectedReadouts=%d recoveredPanics=%d",
		s.SensorFaultRounds, s.RejectedReadouts, s.RecoveredPanics)
	return b.String()
}
