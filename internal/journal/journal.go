// Package journal is the crash-safety substrate of the fleet supervisor: an
// append-only, checksummed write-ahead log of durable state transitions.
// Every record is framed as
//
//	magic(1) | length(uint32 LE) | crc32-IEEE(uint32 LE) | payload
//
// so a reader can walk the file record by record and stop at the first frame
// that does not check out. The failure model is a supervisor process dying at
// an arbitrary byte boundary (torn final write) or a storage layer flipping
// bits near the tail: on reopen the corrupt suffix is detected, measured and
// *truncated* — never replayed, never trusted. Everything before the first
// bad frame is intact by construction (CRC per record), so replaying a
// journal reconstructs exactly the state the supervisor had durably reached.
//
// The framing is deliberately tiny and dependency-free: DecodeAll is a pure
// function over a byte slice, which is what makes the decoder fuzzable
// (FuzzDecodeAll) — no file handles, no clocks, no allocation beyond the
// record slices themselves.
package journal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const (
	// recordMagic opens every frame; a mismatch marks the corrupt tail.
	recordMagic = 0xA7
	// headerSize is magic + length + crc.
	headerSize = 1 + 4 + 4
	// MaxRecord bounds a single payload. A length field larger than this is
	// treated as corruption rather than an instruction to allocate gigabytes.
	MaxRecord = 1 << 20
)

// Encode frames one payload as a journal record.
func Encode(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	out[0] = recordMagic
	putUint32(out[1:5], uint32(len(payload)))
	putUint32(out[5:9], crc32.ChecksumIEEE(payload))
	copy(out[headerSize:], payload)
	return out
}

// DecodeAll walks data from the front and returns every intact record plus
// the number of bytes consumed by them. It never fails and never panics:
// decoding stops at the first frame whose magic, length bound, size or CRC
// does not check out, and everything from there on — a torn tail, flipped
// bits, arbitrary garbage — is simply not consumed. The strong invariant
// (held by construction and enforced by the fuzz target) is
//
//	concat(Encode(r) for r in records) == data[:consumed]
func DecodeAll(data []byte) (records [][]byte, consumed int) {
	for {
		rec, n := decodeOne(data[consumed:])
		if n == 0 {
			return records, consumed
		}
		records = append(records, rec)
		consumed += n
	}
}

// decodeOne decodes the first frame of data, returning (payload, frameSize)
// or (nil, 0) when the front of data is not an intact frame.
func decodeOne(data []byte) ([]byte, int) {
	if len(data) < headerSize || data[0] != recordMagic {
		return nil, 0
	}
	length := int(getUint32(data[1:5]))
	if length > MaxRecord || headerSize+length > len(data) {
		return nil, 0 // absurd length or torn payload
	}
	payload := data[headerSize : headerSize+length]
	if crc32.ChecksumIEEE(payload) != getUint32(data[5:9]) {
		return nil, 0
	}
	// return a copy so callers can hold records while the caller's buffer is
	// reused or unmapped
	out := make([]byte, length)
	copy(out, payload)
	return out, headerSize + length
}

// ErrWriterFailed marks a Writer that has gone fail-stop: an earlier Append
// or Sync met an I/O error, so the file offset (and with an fsync failure,
// even the durability of already-written frames) is no longer trustworthy.
// Every later Append/Sync fails with an error matching this sentinel rather
// than landing bytes at an unknown position. The owner must recover by
// reopening the journal (OpenAppend truncates whatever the failed write
// tore) — or degrade to memory-only operation.
var ErrWriterFailed = errors.New("journal: writer failed — journal poisoned")

// Writer appends records to a journal file. Appends are synchronously
// flushed to the OS; Sync additionally forces them to stable storage. A
// Writer is not safe for concurrent use — the supervisor serialises appends.
//
// Writers are fail-stop: the first I/O error on Append or Sync poisons the
// writer permanently (see ErrWriterFailed).
type Writer struct {
	fs     FS
	f      File
	path   string
	size   int64 // bytes of intact frames written so far
	closed bool
	err    error // sticky: first I/O failure, fail-stop from then on
}

// Create opens a fresh journal at path, truncating any existing file.
func Create(path string) (*Writer, error) { return CreateFS(OS, path) }

// CreateFS is Create over an explicit filesystem.
func CreateFS(fsys FS, path string) (*Writer, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", path, err)
	}
	return &Writer{fs: fsys, f: f, path: path}, nil
}

// OpenAppend opens an existing journal (creating it when absent) for further
// appends after a crash. It replays the file, truncates any corrupt or torn
// tail, and returns the intact records plus how many trailing bytes were
// discarded. The returned writer appends immediately after the last intact
// record.
func OpenAppend(path string) (w *Writer, records [][]byte, truncated int, err error) {
	return OpenAppendFS(OS, path)
}

// OpenAppendFS is OpenAppend over an explicit filesystem.
func OpenAppendFS(fsys FS, path string) (w *Writer, records [][]byte, truncated int, err error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: open %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("journal: read %s: %w", path, err)
	}
	records, consumed := DecodeAll(data)
	truncated = len(data) - consumed
	if truncated > 0 {
		if err := f.Truncate(int64(consumed)); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("journal: truncate corrupt tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(consumed), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	return &Writer{fs: fsys, f: f, path: path, size: int64(consumed)}, records, truncated, nil
}

// Replay reads every intact record of the journal at path without opening it
// for writing. A missing file replays as empty — a fleet that never got to
// journal anything is a valid (blank) fleet.
func Replay(path string) (records [][]byte, truncated int, err error) {
	return ReplayFS(OS, path)
}

// ReplayFS is Replay over an explicit filesystem.
func ReplayFS(fsys FS, path string) (records [][]byte, truncated int, err error) {
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("journal: replay %s: %w", path, err)
	}
	records, consumed := DecodeAll(data)
	return records, len(data) - consumed, nil
}

// Append frames payload and writes it to the journal. A failed write leaves
// the writer fail-stop (ErrWriterFailed): the frame may have partially
// landed, so the append position is unknown and no later record may be
// trusted to start on a frame boundary.
func (w *Writer) Append(payload []byte) error {
	if w.err != nil {
		return fmt.Errorf("journal: append to %s: %w: %v", w.path, ErrWriterFailed, w.err)
	}
	if w.closed {
		return fmt.Errorf("journal: append to closed writer %s", w.path)
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecord %d", len(payload), MaxRecord)
	}
	frame := Encode(payload)
	n, err := w.f.Write(frame)
	if err != nil {
		w.err = fmt.Errorf("append of %d bytes landed %d: %w", len(frame), n, err)
		return fmt.Errorf("journal: append to %s: %w", w.path, err)
	}
	if n != len(frame) {
		// a short write without an error violates the io.Writer contract, but
		// the journal is the last line of defense — treat it as fatal anyway
		w.err = fmt.Errorf("short write: %d of %d bytes", n, len(frame))
		return fmt.Errorf("journal: append to %s: %w: %v", w.path, ErrWriterFailed, w.err)
	}
	w.size += int64(n)
	return nil
}

// Sync forces appended records to stable storage. The supervisor calls it
// once per fleet tick (group commit) rather than per record. A failed fsync
// poisons the writer (fail-stop): the kernel may have dropped the dirty
// pages, so nothing written since the last successful Sync is trustworthy.
func (w *Writer) Sync() error {
	if w.err != nil {
		return fmt.Errorf("journal: sync %s: %w: %v", w.path, ErrWriterFailed, w.err)
	}
	if w.closed {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("fsync: %w", err)
		return fmt.Errorf("journal: sync %s: %w", w.path, err)
	}
	return nil
}

// Close syncs and releases the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.err != nil {
		w.f.Close()
		return fmt.Errorf("journal: close %s: %w: %v", w.path, ErrWriterFailed, w.err)
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Err returns the sticky failure that made the writer fail-stop (nil while
// healthy).
func (w *Writer) Err() error { return w.err }

// Size returns the bytes of intact frames appended so far (the WAL length,
// excluding any torn tail a failed write may have left).
func (w *Writer) Size() int64 { return w.size }

// Path returns the journal's file path.
func (w *Writer) Path() string { return w.path }

func putUint32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
