package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// seqRec is the shape the store tests journal: a record that knows its own
// sequence number, like the fleet's round-stamped records.
type seqRec struct {
	Seq int    `json:"seq"`
	Pad string `json:"pad,omitempty"`
}

func encodeSeq(t *testing.T, seq int, pad int) []byte {
	t.Helper()
	p, err := json.Marshal(seqRec{Seq: seq, Pad: string(bytes.Repeat([]byte("x"), pad))})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func decodeSeq(rec []byte) int {
	var r seqRec
	if json.Unmarshal(rec, &r) != nil {
		return -1
	}
	return r.Seq
}

// keepAfter keeps records with Seq > n — the fleet's compaction predicate.
func keepAfter(n int) func([]byte) bool {
	return func(rec []byte) bool { return decodeSeq(rec) > n }
}

// TestWriterFailStopOnShortWrite is the satellite regression test: after an
// injected short write the writer must refuse every further append — the
// file offset is unknown, so appending again could land a frame inside the
// torn one and silently corrupt the WAL.
func TestWriterFailStopOnShortWrite(t *testing.T) {
	efs := NewErrFS(OS)
	path := tmpJournal(t)
	w, err := CreateFS(efs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	efs.ShortWriteNext(3)
	if err := w.Append([]byte("torn-in-flight")); !errors.Is(err, ErrInjected) {
		t.Fatalf("short write surfaced as %v, want ErrInjected", err)
	}
	// fail-stop: the next append must not touch the file
	before, _ := os.ReadFile(path)
	if err := w.Append([]byte("must-not-land")); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("append after short write returned %v, want ErrWriterFailed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("sync after short write returned %v, want ErrWriterFailed", err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("a poisoned writer still wrote bytes")
	}
	if w.Err() == nil {
		t.Fatal("poisoned writer reports nil Err")
	}
	w.Close()

	// recovery truncates the torn frame and keeps the committed record
	_, records, truncated, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || string(records[0]) != "good" || truncated != 3 {
		t.Fatalf("recovery after torn append: records=%q truncated=%d", records, truncated)
	}
}

// TestWriterFailStopOnSyncFailure: a failed fsync poisons the writer — the
// kernel may have dropped the dirty pages, so nothing after the failure may
// be acknowledged.
func TestWriterFailStopOnSyncFailure(t *testing.T) {
	efs := NewErrFS(OS)
	w, err := CreateFS(efs, tmpJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("r1")); err != nil {
		t.Fatal(err)
	}
	efs.FailNextSync(1)
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected fsync failure surfaced as %v", err)
	}
	if err := w.Append([]byte("r2")); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("append after failed fsync returned %v, want ErrWriterFailed", err)
	}
	if err := w.Close(); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("close of poisoned writer returned %v, want ErrWriterFailed", err)
	}
}

// TestWriterNoSpace: ENOSPC is a persistent fault; the first hit poisons the
// writer like any other append failure.
func TestWriterNoSpace(t *testing.T) {
	efs := NewErrFS(OS)
	w, err := CreateFS(efs, tmpJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	efs.SetNoSpace(true)
	if err := w.Append([]byte("r")); !errors.Is(err, ErrInjected) {
		t.Fatalf("ENOSPC surfaced as %v", err)
	}
	if err := w.Append([]byte("r")); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("append on full disk returned %v, want ErrWriterFailed", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	payload := []byte(`{"type":"snapshot","round":17}`)
	img := EncodeSnapshot(7, 17, payload)
	got, gen, seq, err := DecodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 || seq != 17 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: gen=%d seq=%d payload=%q", gen, seq, got)
	}
	// strictness: truncation, bit flips and trailing garbage all fail
	for cut := 1; cut < len(img); cut += 5 {
		if _, _, _, err := DecodeSnapshot(img[:len(img)-cut]); err == nil {
			t.Fatalf("truncated snapshot (cut %d) decoded", cut)
		}
	}
	flip := append([]byte(nil), img...)
	flip[len(flip)-1] ^= 0x01
	if _, _, _, err := DecodeSnapshot(flip); err == nil {
		t.Fatal("bit-flipped snapshot decoded")
	}
	if _, _, _, err := DecodeSnapshot(append(append([]byte(nil), img...), 0xA7)); err == nil {
		t.Fatal("snapshot with trailing garbage decoded")
	}
}

// driveStore appends seq-stamped records through a store, compacting after
// every compactEvery appends (seq is the record index, 1-based).
func driveStore(t *testing.T, s *Store, from, to, compactEvery int, lastSnapSeq *int) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		if err := s.Append(encodeSeq(t, seq, 120)); err != nil {
			t.Fatalf("append seq %d: %v", seq, err)
		}
		if err := s.Sync(); err != nil {
			t.Fatalf("sync seq %d: %v", seq, err)
		}
		if compactEvery > 0 && seq%compactEvery == 0 {
			snap := encodeSeq(t, seq, 0)
			if err := s.Compact(snap, uint64(seq), keepAfter(*lastSnapSeq)); err != nil {
				t.Fatalf("compact at seq %d: %v", seq, err)
			}
			*lastSnapSeq = seq
		}
	}
}

// TestStoreCompactionBoundsWAL: over a long run with periodic compaction the
// WAL retains exactly the records after the previous snapshot generation —
// bounded, and never fewer than a one-generation fallback needs.
func TestStoreCompactionBoundsWAL(t *testing.T) {
	path := tmpJournal(t)
	s, rec, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh store recovered %d records, snapshot=%v", len(rec.Records), rec.Snapshot != nil)
	}
	last := 0
	driveStore(t, s, 1, 40, 8, &last)
	// after the compaction at seq 40, the WAL holds records 33..40 (those
	// after the previous generation's seq 32)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	records, truncated, err := Replay(path)
	if err != nil || truncated != 0 {
		t.Fatalf("replay: truncated=%d err=%v", truncated, err)
	}
	if len(records) != 8 || decodeSeq(records[0]) != 33 || decodeSeq(records[7]) != 40 {
		seqs := make([]int, len(records))
		for i, r := range records {
			seqs[i] = decodeSeq(r)
		}
		t.Fatalf("post-compaction WAL holds seqs %v, want 33..40", seqs)
	}
	// only KeepSnapshots generations remain on disk
	gens, temps, err := listSnapshots(OS, path)
	if err != nil || len(temps) != 0 {
		t.Fatalf("listSnapshots: temps=%v err=%v", temps, err)
	}
	if len(gens) != 2 || gens[0] != 5 || gens[1] != 4 {
		t.Fatalf("retained generations %v, want [5 4]", gens)
	}

	// recovery prefers the newest snapshot + tail
	s2, rec2, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.Snapshot == nil || rec2.SnapshotGen != 5 || rec2.SnapshotSeq != 40 {
		t.Fatalf("recovered snapshot gen=%d seq=%d", rec2.SnapshotGen, rec2.SnapshotSeq)
	}
	if rec2.SnapshotsSkipped != 0 || len(rec2.Records) != 8 {
		t.Fatalf("recovered skipped=%d records=%d", rec2.SnapshotsSkipped, len(rec2.Records))
	}
}

// TestStoreFallbackOnCorruptSnapshot: flipping bytes in the newest
// generation makes recovery fall back one generation — and because the WAL
// keeps everything after that previous generation, no committed record is
// lost.
func TestStoreFallbackOnCorruptSnapshot(t *testing.T) {
	path := tmpJournal(t)
	s, _, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	driveStore(t, s, 1, 20, 8, &last) // generations at seq 8 (gen 1) and 16 (gen 2); WAL: 9..20
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	newest := snapshotPath(path, 2)
	img, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-4] ^= 0xFF
	if err := os.WriteFile(newest, img, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotsSkipped != 1 || rec.SnapshotGen != 1 || rec.SnapshotSeq != 8 {
		t.Fatalf("fallback: skipped=%d gen=%d seq=%d", rec.SnapshotsSkipped, rec.SnapshotGen, rec.SnapshotSeq)
	}
	// snapshot(8) + WAL records 9..20 = complete state: nothing lost
	want := 9
	for _, r := range rec.Records {
		if seq := decodeSeq(r); seq > 8 {
			if seq != want {
				t.Fatalf("fallback tail: got seq %d, want %d", seq, want)
			}
			want++
		}
	}
	if want != 21 {
		t.Fatalf("fallback tail covered up to %d, want 20", want-1)
	}
	// the next compaction must write ABOVE the corrupt generation
	if err := s2.Compact(encodeSeq(t, 20, 0), 20, keepAfter(8)); err != nil {
		t.Fatal(err)
	}
	if s2.Generation() != 3 {
		t.Fatalf("post-fallback compaction wrote generation %d, want 3", s2.Generation())
	}
	s2.Close()
}

// TestStoreIgnoresTornSnapshotPublish: a crash between snapshot temp write
// and rename leaves a ".tmp" file; recovery must ignore and remove it.
func TestStoreIgnoresTornSnapshotPublish(t *testing.T) {
	path := tmpJournal(t)
	s, _, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	driveStore(t, s, 1, 10, 8, &last)
	s.Close()
	tmp := snapshotPath(path, 99) + ".tmp"
	if err := os.WriteFile(tmp, []byte("RSNP torn halfway thro"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotGen != 1 || rec.SnapshotsSkipped != 0 {
		t.Fatalf("torn temp influenced recovery: gen=%d skipped=%d", rec.SnapshotGen, rec.SnapshotsSkipped)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("torn snapshot temp not cleaned up")
	}
}

// TestStoreTornRenameLeavesOldGenerationLive: an injected rename failure on
// the snapshot publish must leave the previous generation (and the whole
// WAL) authoritative.
func TestStoreTornRenameLeavesOldGenerationLive(t *testing.T) {
	efs := NewErrFS(OS)
	path := tmpJournal(t)
	s, _, err := OpenStore(path, StoreConfig{FS: efs})
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	driveStore(t, s, 1, 8, 8, &last) // gen 1 at seq 8
	driveStore(t, s, 9, 12, 0, &last)
	efs.FailNextRename()
	err = s.Compact(encodeSeq(t, 12, 0), 12, keepAfter(8))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn rename surfaced as %v", err)
	}
	// the store keeps working: appends land, and recovery sees gen 1 + full tail
	driveStore(t, s, 13, 14, 0, &last)
	s.Close()
	efs.Heal()
	_, rec, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotGen != 1 || rec.SnapshotSeq != 8 {
		t.Fatalf("after torn rename: gen=%d seq=%d, want 1/8", rec.SnapshotGen, rec.SnapshotSeq)
	}
	// gen 1's compaction kept everything after gen 0 (the whole history), and
	// the failed gen-2 publish must not have touched the WAL — so snapshot(8)
	// plus records 9..14 reconstruct the full state
	want := 9
	for _, r := range rec.Records {
		if seq := decodeSeq(r); seq > 8 {
			if seq != want {
				t.Fatalf("tail after torn rename: got seq %d, want %d", seq, want)
			}
			want++
		}
	}
	if want != 15 {
		t.Fatalf("tail after torn rename covered up to %d, want 14", want-1)
	}
}

// TestStoreCrashAtByte: the FS dies mid-frame at an arbitrary byte; the
// append surfaces a typed error, and recovery over the healed disk resumes
// from the last synced record with the torn tail truncated.
func TestStoreCrashAtByte(t *testing.T) {
	efs := NewErrFS(OS)
	path := tmpJournal(t)
	s, _, err := OpenStore(path, StoreConfig{FS: efs})
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	driveStore(t, s, 1, 5, 0, &last)
	efs.CrashAtByte(efs.BytesWritten() + 7) // tear 7 bytes into the next frame
	if err := s.Append(encodeSeq(t, 6, 120)); !errors.Is(err, ErrInjected) {
		t.Fatalf("crash-at-byte surfaced as %v", err)
	}
	if err := s.Append(encodeSeq(t, 7, 0)); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("append after crash returned %v, want ErrWriterFailed", err)
	}
	s.Close()
	efs.Heal()
	_, rec, err := OpenStore(path, StoreConfig{FS: efs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 5 || rec.Truncated != 7 {
		t.Fatalf("crash recovery: records=%d truncated=%d, want 5/7", len(rec.Records), rec.Truncated)
	}
	for i, r := range rec.Records {
		if decodeSeq(r) != i+1 {
			t.Fatalf("record %d decoded seq %d", i, decodeSeq(r))
		}
	}
}

// TestStoreShouldCompact tracks the size trigger across appends, compaction
// and reopen.
func TestStoreShouldCompact(t *testing.T) {
	path := tmpJournal(t)
	s, _, err := OpenStore(path, StoreConfig{CompactBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if s.ShouldCompact() {
		t.Fatal("empty store wants compaction")
	}
	last := 0
	for seq := 1; !s.ShouldCompact(); seq++ {
		if seq > 100 {
			t.Fatal("store never armed compaction")
		}
		driveStore(t, s, seq, seq, 0, &last)
	}
	if err := s.Compact(encodeSeq(t, 99, 0), 99, keepAfter(98)); err != nil {
		t.Fatal(err)
	}
	if s.ShouldCompact() {
		t.Fatalf("compaction left %d WAL bytes, still over threshold", s.Size())
	}
	s.Close()
}

// TestSnapshotPathParsing pins the name scheme the recovery walk depends on.
func TestSnapshotPathParsing(t *testing.T) {
	p := snapshotPath(filepath.Join("some", "dir", "fleet.wal"), 0x2a)
	dir, base := splitPath(p)
	if dir != filepath.Join("some", "dir") {
		t.Fatalf("dir %q", dir)
	}
	gen, ok := snapshotGen("fleet.wal", base)
	if !ok || gen != 0x2a {
		t.Fatalf("parse %q: gen=%d ok=%v", base, gen, ok)
	}
	for _, bad := range []string{
		"fleet.wal", "fleet.wal.snap-", "fleet.wal.snap-zzzz",
		fmt.Sprintf("other.wal.snap-%016x", 1),
		fmt.Sprintf("fleet.wal.snap-%016x.tmp", 1),
	} {
		if _, ok := snapshotGen("fleet.wal", bad); ok {
			t.Fatalf("foreign name %q parsed as a snapshot", bad)
		}
	}
}
