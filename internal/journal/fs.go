package journal

import (
	"io"
	"os"
)

// FS is the journal's pluggable storage seam. Production uses OS (thin
// wrappers over package os); tests and the crash-soak torture matrix use
// ErrFS to inject the disk failures a lifetime of field operation will
// eventually produce — short writes, failed fsyncs, ENOSPC, torn renames,
// a process dying at an arbitrary byte boundary. Everything in this package
// that touches storage goes through an FS, so every durability claim the
// package makes is testable against a hostile disk.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole file (os.ReadFile semantics: a missing file
	// returns an error satisfying os.IsNotExist).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDirNames lists the entry names of dir (order unspecified).
	ReadDirNames(dir string) ([]string, error)
}

// File is the open-file surface the journal needs.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// OS is the production filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// return a true nil interface, not a typed nil *os.File
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) ReadDirNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}
