package journal

import (
	"bytes"
	"testing"
)

// FuzzDecodeAll throws arbitrary bytes at the record decoder. The decoder
// guards the crash-recovery path, so its contract under hostile input is
// absolute: never panic, never consume more bytes than exist, and never
// "replay" a record that the framing does not prove intact — formalised as
// the prefix invariant: re-encoding the decoded records must reproduce
// exactly the consumed prefix of the input.
func FuzzDecodeAll(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode([]byte("one record")))
	f.Add(append(Encode([]byte("a")), Encode([]byte("b"))...))
	f.Add(Encode(nil))
	// torn tail: a record cut mid-payload
	torn := Encode([]byte("torn-in-half"))
	f.Add(append(Encode([]byte("intact")), torn[:len(torn)-5]...))
	// bit-flipped payload
	flipped := Encode([]byte("flip-me-please"))
	flipped[len(flipped)-2] ^= 0x01
	f.Add(flipped)
	// garbage and a frame that lies about its length
	f.Add([]byte{recordMagic, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{recordMagic}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, consumed := DecodeAll(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		var reencoded []byte
		for _, r := range records {
			if len(r) > MaxRecord {
				t.Fatalf("decoded record of %d bytes exceeds MaxRecord", len(r))
			}
			reencoded = append(reencoded, Encode(r)...)
		}
		if !bytes.Equal(reencoded, data[:consumed]) {
			t.Fatalf("prefix invariant violated: %d records re-encode to %d bytes, consumed %d",
				len(records), len(reencoded), consumed)
		}
		// the unconsumed remainder must not start with an intact frame
		if rest, n := DecodeAll(data[consumed:]); n != 0 || len(rest) != 0 {
			t.Fatalf("decoder stopped early: %d more records after consumed=%d", len(rest), consumed)
		}
	})
}
