package journal

import (
	"bytes"
	"testing"
)

// FuzzDecodeAll throws arbitrary bytes at the record decoder. The decoder
// guards the crash-recovery path, so its contract under hostile input is
// absolute: never panic, never consume more bytes than exist, and never
// "replay" a record that the framing does not prove intact — formalised as
// the prefix invariant: re-encoding the decoded records must reproduce
// exactly the consumed prefix of the input.
func FuzzDecodeAll(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode([]byte("one record")))
	f.Add(append(Encode([]byte("a")), Encode([]byte("b"))...))
	f.Add(Encode(nil))
	// torn tail: a record cut mid-payload
	torn := Encode([]byte("torn-in-half"))
	f.Add(append(Encode([]byte("intact")), torn[:len(torn)-5]...))
	// bit-flipped payload
	flipped := Encode([]byte("flip-me-please"))
	flipped[len(flipped)-2] ^= 0x01
	f.Add(flipped)
	// garbage and a frame that lies about its length
	f.Add([]byte{recordMagic, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{recordMagic}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, consumed := DecodeAll(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		var reencoded []byte
		for _, r := range records {
			if len(r) > MaxRecord {
				t.Fatalf("decoded record of %d bytes exceeds MaxRecord", len(r))
			}
			reencoded = append(reencoded, Encode(r)...)
		}
		if !bytes.Equal(reencoded, data[:consumed]) {
			t.Fatalf("prefix invariant violated: %d records re-encode to %d bytes, consumed %d",
				len(records), len(reencoded), consumed)
		}
		// the unconsumed remainder must not start with an intact frame
		if rest, n := DecodeAll(data[consumed:]); n != 0 || len(rest) != 0 {
			t.Fatalf("decoder stopped early: %d more records after consumed=%d", len(rest), consumed)
		}
	})
}

// FuzzDecodeSnapshot throws arbitrary bytes at the snapshot decoder. The
// decoder is the gate recovery trusts before abandoning the WAL's full
// history for a compacted image, so its contract mirrors DecodeAll's but
// stricter: never panic, and accept ONLY byte-exact images — anything a
// decode accepts must re-encode to exactly the input (no trailing garbage, no
// tolerated tearing; a snapshot is published atomically or not at all).
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSnapshot(0, 0, nil))
	f.Add(EncodeSnapshot(1, 42, []byte(`{"type":"snapshot","round":42}`)))
	f.Add(EncodeSnapshot(^uint64(0), ^uint64(0), []byte("edge")))
	// torn publish: an image cut mid-payload
	whole := EncodeSnapshot(3, 9, []byte("torn-snapshot-payload"))
	f.Add(whole[:len(whole)-6])
	// bit-flipped payload under an intact header
	flipped := EncodeSnapshot(2, 5, []byte("flip-me"))
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped)
	// trailing garbage after a valid image
	f.Add(append(EncodeSnapshot(1, 1, []byte("x")), 0xA7, 0x00))
	// wrong magic / wrong version
	f.Add([]byte("WALJ\x01\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(append([]byte("RSNP\x02"), make([]byte, 32)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, gen, seq, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSnapshot(gen, seq, payload), data) {
			t.Fatalf("decoded snapshot (gen=%d seq=%d, %d-byte payload) does not re-encode to the %d-byte input",
				gen, seq, len(payload), len(data))
		}
	})
}
