package journal

import (
	"fmt"
	"os"
)

// StoreConfig tunes a Store.
type StoreConfig struct {
	// FS is the storage seam (nil → OS).
	FS FS
	// CompactBytes is the WAL size that arms ShouldCompact (0 → 1 MiB).
	CompactBytes int64
	// KeepSnapshots is how many snapshot generations stay on disk (0 → 2).
	// Two is the floor that makes the corrupt-newest-generation fallback
	// lossless: the WAL always retains every record after the previous
	// generation (see Compact), so gen N-1 plus the WAL reconstructs the
	// exact state gen N held.
	KeepSnapshots int
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.FS == nil {
		c.FS = OS
	}
	if c.CompactBytes == 0 {
		c.CompactBytes = 1 << 20
	}
	if c.KeepSnapshots < 2 {
		c.KeepSnapshots = 2
	}
	return c
}

// Recovered is what OpenStore reconstructed from disk: the newest valid
// snapshot (nil when none exists — a legacy snapshot-less WAL, or a fleet
// too young to have compacted) plus every intact WAL record. The caller
// folds the snapshot first, then the records whose sequence exceeds
// SnapshotSeq — records at or below it predate the snapshot (a crash
// between snapshot publish and WAL rewrite leaves them behind, harmlessly).
type Recovered struct {
	Snapshot    []byte // newest valid snapshot payload (nil: none)
	SnapshotGen uint64
	SnapshotSeq uint64
	Records     [][]byte // intact WAL records, in append order
	// Truncated is the torn-tail bytes discarded from the WAL on reopen.
	Truncated int
	// SnapshotsSkipped counts newer snapshot generations that failed to
	// decode and were passed over — each one a fallback the caller may want
	// to alarm on.
	SnapshotsSkipped int
}

// Store bundles a WAL with its snapshot family: appends and group-commit
// syncs go to the WAL; Compact periodically folds the WAL into a fresh
// snapshot generation so the journal's disk footprint stays bounded over a
// device fleet's whole lifetime. A Store is not safe for concurrent use —
// it belongs to the supervisor's owner goroutine, like the Writer it wraps.
type Store struct {
	fs   FS
	cfg  StoreConfig
	path string
	w    *Writer
	gen  uint64 // newest generation on disk (valid or not); next Compact writes gen+1
}

// OpenStore opens (or creates) the durable state rooted at the WAL path:
// leftover snapshot temp files from a torn publish are removed, the newest
// decodable snapshot generation is loaded (falling back a generation per
// corrupt file), and the WAL is opened for appending with any torn tail
// truncated. A fresh directory opens as an empty store.
func OpenStore(path string, cfg StoreConfig) (*Store, Recovered, error) {
	cfg = cfg.withDefaults()
	s := &Store{fs: cfg.FS, cfg: cfg, path: path}
	var rec Recovered

	gens, temps, err := listSnapshots(s.fs, path)
	if err != nil {
		return nil, rec, err
	}
	for _, tmp := range temps {
		s.fs.Remove(tmp) // torn publish leftovers; best effort
	}
	if len(gens) > 0 {
		s.gen = gens[0]
	}
	for _, gen := range gens {
		data, err := s.fs.ReadFile(snapshotPath(path, gen))
		if err != nil {
			rec.SnapshotsSkipped++
			continue
		}
		payload, g, seq, err := DecodeSnapshot(data)
		if err != nil || g != gen {
			rec.SnapshotsSkipped++
			continue
		}
		rec.Snapshot, rec.SnapshotGen, rec.SnapshotSeq = payload, gen, seq
		break
	}

	w, records, truncated, err := OpenAppendFS(s.fs, path)
	if err != nil {
		return nil, rec, err
	}
	s.w = w
	rec.Records = records
	rec.Truncated = truncated
	return s, rec, nil
}

// Append frames payload onto the WAL (fail-stop on I/O error, like Writer).
func (s *Store) Append(payload []byte) error { return s.w.Append(payload) }

// Sync group-commits appended records to stable storage.
func (s *Store) Sync() error { return s.w.Sync() }

// Err returns the WAL writer's sticky failure (nil while healthy).
func (s *Store) Err() error { return s.w.Err() }

// Size returns the current WAL length in bytes.
func (s *Store) Size() int64 { return s.w.Size() }

// Generation returns the newest snapshot generation on disk.
func (s *Store) Generation() uint64 { return s.gen }

// Path returns the WAL path.
func (s *Store) Path() string { return s.path }

// ShouldCompact reports whether the WAL has crossed the compaction
// threshold.
func (s *Store) ShouldCompact() bool { return s.w.Size() >= s.cfg.CompactBytes }

// Compact publishes snapshot (at caller sequence seq) as the next
// generation, then rewrites the WAL keeping only the records for which keep
// returns true — the caller passes a predicate keeping everything *after
// the previous snapshot generation*, which is exactly what makes a
// fallback to that generation lossless. The write order is crash-safe at
// every step:
//
//  1. WAL is synced (nothing the snapshot supersedes is still in flight),
//  2. the snapshot is published temp → fsync → rename,
//  3. the filtered WAL is built as a temp sibling, fsynced, renamed over
//     the live WAL, and reopened for appending.
//
// A crash or injected fault between (2) and (3) leaves stale records in the
// WAL; recovery filters them by sequence. A failure in (2) leaves the old
// generation live and the WAL whole. Only a failure reopening the WAL in
// (3) poisons the store (ErrWriterFailed).
func (s *Store) Compact(snapshot []byte, seq uint64, keep func(rec []byte) bool) error {
	if err := s.w.Err(); err != nil {
		return fmt.Errorf("journal: compact %s: %w", s.path, err)
	}
	if err := s.w.Sync(); err != nil {
		return err
	}
	gen := s.gen + 1
	if err := WriteSnapshot(s.fs, s.path, gen, seq, snapshot); err != nil {
		return err
	}
	s.gen = gen

	// rewrite the WAL: everything since the previous generation survives
	data, err := s.fs.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("journal: compact read %s: %w", s.path, err)
	}
	records, _ := DecodeAll(data)
	tmp := s.path + ".compact.tmp"
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact temp %s: %w", tmp, err)
	}
	for _, rec := range records {
		if keep != nil && !keep(rec) {
			continue
		}
		frame := Encode(rec)
		if n, err := f.Write(frame); err != nil || n != len(frame) {
			f.Close()
			s.fs.Remove(tmp)
			if err == nil {
				err = fmt.Errorf("short write: %d of %d bytes", n, len(frame))
			}
			return fmt.Errorf("journal: compact write %s: %w", tmp, err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return fmt.Errorf("journal: compact fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("journal: compact close %s: %w", tmp, err)
	}
	// swap: close the live writer, rename the filtered WAL into place,
	// reopen for appending. The old WAL's content is a superset of the new
	// one, so a crash anywhere in the swap recovers to the same state.
	if err := s.w.Close(); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("journal: compact swap %s: %w", s.path, err)
	}
	renameErr := s.fs.Rename(tmp, s.path)
	w, _, _, err := OpenAppendFS(s.fs, s.path)
	if err != nil {
		// no live writer: the store is poisoned exactly like a failed append
		s.w = &Writer{fs: s.fs, path: s.path, closed: true, err: err}
		return fmt.Errorf("journal: compact reopen %s: %w: %v", s.path, ErrWriterFailed, err)
	}
	s.w = w
	if renameErr != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("journal: compact swap %s: %w", s.path, renameErr)
	}
	s.prune()
	return nil
}

// prune removes snapshot generations beyond cfg.KeepSnapshots, best effort.
func (s *Store) prune() {
	gens, _, err := listSnapshots(s.fs, s.path)
	if err != nil {
		return
	}
	for i, gen := range gens {
		if i >= s.cfg.KeepSnapshots {
			s.fs.Remove(snapshotPath(s.path, gen))
		}
	}
}

// Close syncs and releases the WAL.
func (s *Store) Close() error { return s.w.Close() }
