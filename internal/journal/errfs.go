package journal

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrInjected is the root of every fault ErrFS produces. Fault-injection
// tests and the crash-soak gate match it with errors.Is to prove the failure
// they scheduled is the failure that surfaced — any other error escaping the
// durable-state layer under injection is a bug, not a disk fault.
var ErrInjected = errors.New("journal: injected disk fault")

// ErrCrashed is returned by every operation after an ErrFS crash point has
// fired: the simulated process is dead and nothing more reaches the disk.
// It wraps ErrInjected.
var ErrCrashed = fmt.Errorf("%w: crashed", ErrInjected)

// ErrFS wraps a base FS and injects scheduled faults. It models the failure
// classes a WAL meets in the field:
//
//   - short write: a Write persists only a prefix and errors — the tail of
//     the frame never reached the disk, the file offset is untrustworthy.
//   - fsync failure: data may or may not be durable; the caller must treat
//     the writer as poisoned (fsyncgate semantics).
//   - ENOSPC: the disk is full; every subsequent write keeps failing.
//   - torn rename: the atomic-publish step of a snapshot fails, leaving the
//     temp file behind.
//   - crash at byte N: after N total bytes have been written through the FS
//     the "process" dies mid-write — the write tears at the boundary and
//     every later operation returns ErrCrashed.
//
// All methods are safe for concurrent use (the fleet's tick workers never
// touch the journal concurrently, but race tests do).
type ErrFS struct {
	base FS

	mu         sync.Mutex
	shortNext  int  // >0: next write lands only this many bytes, then errors
	shortArmed bool // distinguishes "short 0 bytes" from "not armed"
	syncFails  int  // number of upcoming Syncs to fail
	renameFail bool // next Rename fails (temp file left behind)
	noSpace    bool // every write fails with an ENOSPC-flavoured fault
	crashAt    int64
	crashArmed bool
	crashed    bool
	written    int64 // cumulative bytes written through this FS
	injected   int   // faults actually delivered
}

// NewErrFS wraps base (nil → OS) with a clean fault plan.
func NewErrFS(base FS) *ErrFS {
	if base == nil {
		base = OS
	}
	return &ErrFS{base: base}
}

// ShortWriteNext arms a one-shot short write: the next Write persists only n
// bytes of its payload and returns an error.
func (e *ErrFS) ShortWriteNext(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.shortNext, e.shortArmed = n, true
}

// FailNextSync arms n upcoming Sync calls to fail.
func (e *ErrFS) FailNextSync(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.syncFails = n
}

// FailNextRename arms a one-shot rename failure: the rename does not happen
// and the source (temp) file is left behind — a torn publish.
func (e *ErrFS) FailNextRename() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.renameFail = true
}

// SetNoSpace turns the persistent disk-full condition on or off.
func (e *ErrFS) SetNoSpace(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.noSpace = on
}

// CrashAtByte schedules a crash once total bytes written through the FS
// reach n: the write in flight tears at the boundary and all later
// operations fail with ErrCrashed. Calling it again re-arms a new crash
// point (and clears a fired one — "the process restarted").
func (e *ErrFS) CrashAtByte(n int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.crashAt, e.crashArmed, e.crashed = n, true, false
}

// Heal clears every armed fault and a fired crash. The byte counter keeps
// running — a healed FS is the same disk, recovered.
func (e *ErrFS) Heal() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.shortArmed, e.shortNext = false, 0
	e.syncFails = 0
	e.renameFail = false
	e.noSpace = false
	e.crashArmed, e.crashed = false, false
}

// Injected reports how many faults have actually been delivered.
func (e *ErrFS) Injected() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.injected
}

// BytesWritten reports the cumulative bytes written through the FS.
func (e *ErrFS) BytesWritten() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.written
}

func (e *ErrFS) dead() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		e.injected++
		return ErrCrashed
	}
	return nil
}

func (e *ErrFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := e.dead(); err != nil {
		return nil, err
	}
	f, err := e.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, f: f, name: name}, nil
}

func (e *ErrFS) ReadFile(name string) ([]byte, error) {
	if err := e.dead(); err != nil {
		return nil, err
	}
	return e.base.ReadFile(name)
}

func (e *ErrFS) Rename(oldpath, newpath string) error {
	if err := e.dead(); err != nil {
		return err
	}
	e.mu.Lock()
	if e.renameFail {
		e.renameFail = false
		e.injected++
		e.mu.Unlock()
		return fmt.Errorf("%w: torn rename %s → %s", ErrInjected, oldpath, newpath)
	}
	e.mu.Unlock()
	return e.base.Rename(oldpath, newpath)
}

func (e *ErrFS) Remove(name string) error {
	if err := e.dead(); err != nil {
		return err
	}
	return e.base.Remove(name)
}

func (e *ErrFS) ReadDirNames(dir string) ([]string, error) {
	if err := e.dead(); err != nil {
		return nil, err
	}
	return e.base.ReadDirNames(dir)
}

// errFile routes a File's operations back through its ErrFS's fault plan.
type errFile struct {
	fs   *ErrFS
	f    File
	name string
}

func (f *errFile) Read(p []byte) (int, error)          { return f.f.Read(p) }
func (f *errFile) Seek(off int64, w int) (int64, error) { return f.f.Seek(off, w) }
func (f *errFile) Truncate(size int64) error {
	if err := f.fs.dead(); err != nil {
		return err
	}
	return f.f.Truncate(size)
}

func (f *errFile) Write(p []byte) (int, error) {
	e := f.fs
	e.mu.Lock()
	if e.crashed {
		e.injected++
		e.mu.Unlock()
		return 0, ErrCrashed
	}
	// crash-at-byte: the frame tears exactly at the scheduled boundary
	if e.crashArmed && e.written+int64(len(p)) >= e.crashAt {
		room := e.crashAt - e.written
		if room < 0 {
			room = 0
		}
		if room > int64(len(p)) {
			room = int64(len(p))
		}
		e.crashed, e.crashArmed = true, false
		e.injected++
		e.written += room
		e.mu.Unlock()
		if room > 0 {
			f.f.Write(p[:room]) // best effort: the torn prefix may land
		}
		return int(room), fmt.Errorf("%w: crash at byte %d", ErrInjected, e.crashAt)
	}
	if e.shortArmed {
		n := e.shortNext
		if n > len(p) {
			n = len(p)
		}
		e.shortArmed, e.shortNext = false, 0
		e.injected++
		e.written += int64(n)
		e.mu.Unlock()
		if n > 0 {
			f.f.Write(p[:n])
		}
		return n, fmt.Errorf("%w: short write %d of %d bytes to %s", ErrInjected, n, len(p), f.name)
	}
	if e.noSpace {
		e.injected++
		e.mu.Unlock()
		return 0, fmt.Errorf("%w: no space left on device (%s)", ErrInjected, f.name)
	}
	e.mu.Unlock()
	n, err := f.f.Write(p)
	e.mu.Lock()
	e.written += int64(n)
	e.mu.Unlock()
	return n, err
}

func (f *errFile) Sync() error {
	e := f.fs
	e.mu.Lock()
	if e.crashed {
		e.injected++
		e.mu.Unlock()
		return ErrCrashed
	}
	if e.syncFails > 0 {
		e.syncFails--
		e.injected++
		e.mu.Unlock()
		return fmt.Errorf("%w: fsync failed on %s", ErrInjected, f.name)
	}
	e.mu.Unlock()
	return f.f.Sync()
}

func (f *errFile) Close() error {
	// closing is allowed even after a crash: the kernel closes descriptors
	// of dead processes too
	return f.f.Close()
}
