package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "fleet.wal")
}

func TestRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("alpha"), {}, []byte("a longer third record with bytes \x00\xff")}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	records, truncated, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncated != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", truncated)
	}
	if len(records) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(records), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(records[i], payloads[i]) {
			t.Fatalf("record %d: got %q want %q", i, records[i], payloads[i])
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	records, truncated, err := Replay(filepath.Join(t.TempDir(), "absent.wal"))
	if err != nil || truncated != 0 || len(records) != 0 {
		t.Fatalf("missing journal: records=%d truncated=%d err=%v", len(records), truncated, err)
	}
}

// TestReopenEmptyJournal is the regression test for the zero-length-WAL
// path: a journal file that exists but holds no records yet — created and
// crashed before the first append, or just touched by provisioning — must
// reopen as a valid empty journal (no records, nothing truncated, writer
// positioned at byte 0), not as an error. Both the never-written and the
// created-then-closed-empty variants are covered.
func TestReopenEmptyJournal(t *testing.T) {
	cases := map[string]func(t *testing.T, path string){
		"touched": func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"created-closed": func(t *testing.T, path string) {
			w, err := Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, setup := range cases {
		t.Run(name, func(t *testing.T) {
			path := tmpJournal(t)
			setup(t, path)
			w, records, truncated, err := OpenAppend(path)
			if err != nil {
				t.Fatalf("reopening an empty journal failed: %v", err)
			}
			if len(records) != 0 || truncated != 0 {
				t.Fatalf("empty journal replayed records=%d truncated=%d", len(records), truncated)
			}
			// and it must be fully usable from there
			if err := w.Append([]byte("first")); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			records, truncated, err = Replay(path)
			if err != nil || truncated != 0 || len(records) != 1 || string(records[0]) != "first" {
				t.Fatalf("post-reopen journal unusable: records=%q truncated=%d err=%v", records, truncated, err)
			}
		})
	}
}

// TestTornTailTruncated simulates a crash mid-append: the final frame is cut
// at every possible byte boundary, and the reopen must recover exactly the
// records before it.
func TestTornTailTruncated(t *testing.T) {
	full := append(Encode([]byte("first")), Encode([]byte("second"))...)
	second := Encode([]byte("second"))
	for cut := 1; cut < len(second); cut++ {
		path := tmpJournal(t)
		if err := os.WriteFile(path, full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, records, truncated, err := OpenAppend(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(records) != 1 || string(records[0]) != "first" {
			t.Fatalf("cut %d: replayed %d records, want just %q", cut, len(records), "first")
		}
		if truncated != len(second)-cut {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, truncated, len(second)-cut)
		}
		// the writer must append cleanly after the truncation point
		if err := w.Append([]byte("resumed")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		records, truncated, err = Replay(path)
		if err != nil || truncated != 0 {
			t.Fatalf("cut %d: post-resume replay truncated=%d err=%v", cut, truncated, err)
		}
		if len(records) != 2 || string(records[1]) != "resumed" {
			t.Fatalf("cut %d: post-resume records %q", cut, records)
		}
	}
}

// TestCorruptTailTruncated flips one byte in the last record; the reopen must
// drop that record entirely and keep the intact prefix.
func TestCorruptTailTruncated(t *testing.T) {
	path := tmpJournal(t)
	data := append(Encode([]byte("keep-me")), Encode([]byte("corrupt-me"))...)
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, records, truncated, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || string(records[0]) != "keep-me" {
		t.Fatalf("replayed %q, want just keep-me", records)
	}
	if truncated == 0 {
		t.Fatal("corrupt tail not reported as truncated")
	}
	if fi, _ := os.Stat(path); fi.Size() != int64(len(Encode([]byte("keep-me")))) {
		t.Fatalf("file not truncated to the intact prefix: %d bytes", fi.Size())
	}
}

// TestGarbageFile: a journal that is pure garbage replays as empty, not as
// an error and not as garbage records.
func TestGarbageFile(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, bytes.Repeat([]byte{0x13, 0x37}, 300), 0o644); err != nil {
		t.Fatal(err)
	}
	records, truncated, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 || truncated != 600 {
		t.Fatalf("garbage replay: records=%d truncated=%d", len(records), truncated)
	}
}

// TestAbsurdLengthRejected: a frame whose length field promises more than
// MaxRecord must be treated as corruption, not an allocation request.
func TestAbsurdLengthRejected(t *testing.T) {
	frame := Encode([]byte("ok"))
	bad := []byte{recordMagic, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}
	records, consumed := DecodeAll(append(frame, bad...))
	if len(records) != 1 || consumed != len(frame) {
		t.Fatalf("records=%d consumed=%d, want 1/%d", len(records), consumed, len(frame))
	}
}

func TestAppendAfterClose(t *testing.T) {
	w, err := Create(tmpJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("late")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	w, err := Create(tmpJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize append succeeded")
	}
}
