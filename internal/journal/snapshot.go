// Snapshots are the journal's compaction anchor: a full durable-state image
// at one point in the WAL, written as its own generation-numbered file next
// to the WAL. A snapshot file is
//
//	"RSNP" | version(1) | generation(uint64 LE) | seq(uint64 LE) | record frame
//
// where the record frame is the same magic/length/CRC framing the WAL uses
// (Encode), so the payload's integrity is provable with the same machinery
// the fuzz targets beat on. seq is a caller-owned sequence number — the
// fleet stores its round — letting recovery decide which WAL records the
// snapshot supersedes without parsing the payload.
//
// Snapshots are published atomically: written to a ".tmp" sibling, fsynced,
// then renamed into place. Recovery ignores temp files (a torn publish
// leaves one behind) and walks generations newest-first, falling back a
// generation when the newest file is corrupt.
package journal

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

const (
	// snapVersion is bumped on incompatible header changes.
	snapVersion = 1
	// snapHeaderSize is magic(4) + version(1) + generation(8) + seq(8).
	snapHeaderSize = 4 + 1 + 8 + 8
)

// snapMagic opens every snapshot file.
var snapMagic = []byte("RSNP")

// EncodeSnapshot renders one snapshot file image.
func EncodeSnapshot(gen, seq uint64, payload []byte) []byte {
	out := make([]byte, 0, snapHeaderSize+headerSize+len(payload))
	out = append(out, snapMagic...)
	out = append(out, snapVersion)
	out = appendUint64(out, gen)
	out = appendUint64(out, seq)
	return append(out, Encode(payload)...)
}

// DecodeSnapshot parses a snapshot file image. Unlike the WAL decoder it is
// strict: a snapshot is published atomically, so anything short, torn,
// oversized or trailing-garbage is corruption and fails loudly — the caller
// falls back a generation instead of trusting a half image.
func DecodeSnapshot(data []byte) (payload []byte, gen, seq uint64, err error) {
	if len(data) < snapHeaderSize+headerSize {
		return nil, 0, 0, fmt.Errorf("journal: snapshot of %d bytes shorter than any valid image", len(data))
	}
	if string(data[:4]) != string(snapMagic) {
		return nil, 0, 0, fmt.Errorf("journal: snapshot magic %q is not %q", data[:4], snapMagic)
	}
	if data[4] != snapVersion {
		return nil, 0, 0, fmt.Errorf("journal: snapshot version %d, want %d", data[4], snapVersion)
	}
	gen = getUint64(data[5:13])
	seq = getUint64(data[13:21])
	records, consumed := DecodeAll(data[snapHeaderSize:])
	if len(records) != 1 || snapHeaderSize+consumed != len(data) {
		return nil, 0, 0, fmt.Errorf("journal: snapshot body holds %d intact records over %d of %d bytes, want exactly 1 filling the file",
			len(records), consumed, len(data)-snapHeaderSize)
	}
	return records[0], gen, seq, nil
}

// snapshotPath names generation gen of the snapshot family anchored at the
// WAL path.
func snapshotPath(walPath string, gen uint64) string {
	return fmt.Sprintf("%s.snap-%016x", walPath, gen)
}

// snapshotGen parses a snapshot file name of walBase's family, returning
// (gen, true) on a match. Temp files and foreign names do not match.
func snapshotGen(walBase, name string) (uint64, bool) {
	prefix := walBase + ".snap-"
	if !strings.HasPrefix(name, prefix) || strings.HasSuffix(name, ".tmp") {
		return 0, false
	}
	var gen uint64
	if _, err := fmt.Sscanf(name[len(prefix):], "%016x", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// WriteSnapshot durably publishes generation gen: temp file → fsync →
// atomic rename. Any failure leaves at most a temp file behind (which
// recovery ignores) — the previous generation stays intact either way.
func WriteSnapshot(fsys FS, walPath string, gen, seq uint64, payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: snapshot payload of %d bytes exceeds MaxRecord %d", len(payload), MaxRecord)
	}
	final := snapshotPath(walPath, gen)
	tmp := final + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot temp %s: %w", tmp, err)
	}
	img := EncodeSnapshot(gen, seq, payload)
	if n, err := f.Write(img); err != nil || n != len(img) {
		f.Close()
		if err == nil {
			err = fmt.Errorf("short write: %d of %d bytes", n, len(img))
		}
		return fmt.Errorf("journal: snapshot write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: snapshot close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: snapshot publish %s: %w", final, err)
	}
	return nil
}

// listSnapshots returns the on-disk generations of walPath's snapshot
// family, descending (newest first), plus any leftover temp files found.
func listSnapshots(fsys FS, walPath string) (gens []uint64, temps []string, err error) {
	dir, base := splitPath(walPath)
	names, err := fsys.ReadDirNames(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("journal: list snapshots of %s: %w", walPath, err)
	}
	for _, name := range names {
		if gen, ok := snapshotGen(base, name); ok {
			gens = append(gens, gen)
		} else if strings.HasPrefix(name, base+".snap-") && strings.HasSuffix(name, ".tmp") {
			temps = append(temps, joinPath(dir, name))
		}
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] > gens[b] })
	return gens, temps, nil
}

// splitPath splits path into (dir, base) without importing path/filepath
// semantics beyond the separator — journal paths are OS paths.
func splitPath(path string) (dir, base string) {
	i := strings.LastIndexByte(path, os.PathSeparator)
	if i < 0 {
		return ".", path
	}
	if i == 0 {
		return string(os.PathSeparator), path[1:]
	}
	return path[:i], path[i+1:]
}

func joinPath(dir, name string) string {
	if dir == "." {
		return name
	}
	if strings.HasSuffix(dir, string(os.PathSeparator)) {
		return dir + name
	}
	return dir + string(os.PathSeparator) + name
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
