package models

import (
	"math"
	"testing"

	"reramtest/internal/dataset"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// legacyTrain replicates the pre-engine Train loop verbatim: slice-of-batches
// iteration, whole-batch layer-wise Forward/Backward, smoothLabels rebuilt
// per batch, Step without fused zeroing. It is the reference arm for the
// engine-migration bit-identity gate.
func legacyTrain(net *nn.Network, train *dataset.Dataset, cfg TrainConfig) float64 {
	r := rng.New(cfg.Seed)
	sgd := opt.NewSGD(net.Params(), cfg.LR, cfg.Momentum, cfg.Decay)
	net.SetTraining(true)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.LRStep > 0 {
			sgd.SetLR(opt.StepDecay(cfg.LR, 0.5, cfg.LRStep)(epoch))
		}
		for _, b := range train.Batches(cfg.BatchSize, r) {
			logits := net.Forward(b.X)
			var grad *tensor.Tensor
			if cfg.LabelSmooth > 0 {
				sm := tensor.Full(cfg.LabelSmooth/float64(train.Classes-1), len(b.Y), train.Classes)
				sd := sm.Data()
				for s, y := range b.Y {
					sd[s*train.Classes+y] = 1 - cfg.LabelSmooth
				}
				_, grad = nn.SoftCrossEntropy(logits, sm)
			} else {
				_, grad = nn.CrossEntropy(logits, b.Y)
			}
			net.ZeroGrad()
			net.Backward(grad)
			sgd.Step()
		}
	}
	net.SetTraining(false)
	return net.Accuracy(train.X, train.Y, 64)
}

// TestTrainEngineMatchesLegacy: Train (compiled engine + reusable batch
// iterator + fused optimizer step) must reproduce the legacy loop's final
// weights and accuracy to the last bit, with and without label smoothing.
func TestTrainEngineMatchesLegacy(t *testing.T) {
	train := dataset.SynthDigits(42, dataset.DefaultDigitsConfig(80))
	for _, smooth := range []float64{0, 0.1} {
		cfg := TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9,
			Decay: 1e-4, LRStep: 1, LabelSmooth: smooth, Seed: 7}
		legacy := MLP(rng.New(6), train.SampleDim(), []int{32}, train.Classes)
		subject := MLP(rng.New(6), train.SampleDim(), []int{32}, train.Classes)
		wantAcc := legacyTrain(legacy, train, cfg)
		gotAcc := Train(subject, train, nil, cfg)
		if math.Float64bits(wantAcc) != math.Float64bits(gotAcc) {
			t.Errorf("smooth=%v: accuracy %v != legacy %v", smooth, gotAcc, wantAcc)
		}
		lp, sp := legacy.Params(), subject.Params()
		for i := range lp {
			if !sp[i].Value.Equal(lp[i].Value) {
				t.Errorf("smooth=%v: weights of %s diverge from legacy loop", smooth, lp[i].Name)
			}
		}
	}
}
