// Package models defines the two evaluation networks from the paper —
// LeNet-5 for the MNIST-class workload and ConvNet-7 (4 convolutional +
// 3 fully-connected layers) for the CIFAR10-class workload — together with
// weight serialization and a training loop with on-disk caching so
// experiments never retrain.
package models

import (
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// LeNet5 builds the classic LeCun '98 architecture for 28×28 grayscale
// input: conv(5×5, 6) → pool → conv(5×5, 16) → pool → FC120 → FC84 → FC10.
// ReLU activations are used in place of the original tanh, per modern
// practice (the paper trains to 99.04% on MNIST; ReLU reaches that operating
// point far faster on CPU).
func LeNet5(r *rng.RNG) *nn.Network {
	conv1 := tensor.ConvGeom{InC: 1, InH: 28, InW: 28, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	pool1 := tensor.ConvGeom{InC: 6, InH: 28, InW: 28, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	conv2 := tensor.ConvGeom{InC: 6, InH: 14, InW: 14, KH: 5, KW: 5, StrideH: 1, StrideW: 1}
	pool2 := tensor.ConvGeom{InC: 16, InH: 10, InW: 10, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	return nn.NewNetwork("lenet5", 28*28,
		nn.NewConv2D("conv1", r, conv1, 6),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", pool1),
		nn.NewConv2D("conv2", r, conv2, 16),
		nn.NewReLU("relu2"),
		nn.NewMaxPool2D("pool2", pool2),
		nn.NewFlatten("flatten"),
		nn.NewDense("fc1", r, 16*5*5, 120),
		nn.NewReLU("relu3"),
		nn.NewDense("fc2", r, 120, 84),
		nn.NewReLU("relu4"),
		nn.NewDense("fc3", r, 84, 10),
	)
}

// ConvNet7 builds the paper's customised 7-layer CIFAR10 network: four 3×3
// convolutional layers and three fully-connected layers. The exact channel
// widths are not published; these are sized for single-core CPU training
// while keeping the 4-conv + 3-FC structure.
func ConvNet7(r *rng.RNG) *nn.Network {
	conv1 := tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	pool1 := tensor.ConvGeom{InC: 12, InH: 32, InW: 32, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	conv2 := tensor.ConvGeom{InC: 12, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	pool2 := tensor.ConvGeom{InC: 24, InH: 16, InW: 16, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	conv3 := tensor.ConvGeom{InC: 24, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	conv4 := tensor.ConvGeom{InC: 32, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	pool4 := tensor.ConvGeom{InC: 32, InH: 8, InW: 8, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	return nn.NewNetwork("convnet7", 3*32*32,
		nn.NewConv2D("conv1", r, conv1, 12),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", pool1),
		nn.NewConv2D("conv2", r, conv2, 24),
		nn.NewReLU("relu2"),
		nn.NewMaxPool2D("pool2", pool2),
		nn.NewConv2D("conv3", r, conv3, 32),
		nn.NewReLU("relu3"),
		nn.NewConv2D("conv4", r, conv4, 32),
		nn.NewReLU("relu4"),
		nn.NewMaxPool2D("pool4", pool4),
		nn.NewFlatten("flatten"),
		nn.NewDense("fc1", r, 32*4*4, 128),
		nn.NewReLU("relu5"),
		nn.NewDense("fc2", r, 128, 64),
		nn.NewReLU("relu6"),
		nn.NewDense("fc3", r, 64, 10),
	)
}

// MLP builds a small fully-connected classifier, used by fast-running unit
// tests and the quickstart example where a convolutional stack would be
// overkill.
func MLP(r *rng.RNG, in int, hidden []int, out int) *nn.Network {
	var layers []nn.Layer
	prev := in
	for i, h := range hidden {
		layers = append(layers,
			nn.NewDense(denseName("fc", i+1), r, prev, h),
			nn.NewReLU(denseName("relu", i+1)))
		prev = h
	}
	layers = append(layers, nn.NewDense(denseName("fc", len(hidden)+1), r, prev, out))
	return nn.NewNetwork("mlp", in, layers...)
}

func denseName(prefix string, i int) string {
	const digits = "0123456789"
	if i < 10 {
		return prefix + digits[i:i+1]
	}
	return prefix + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}
