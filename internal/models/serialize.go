package models

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"reramtest/internal/nn"
)

// weightsMagic identifies the repository's binary weight file format.
const weightsMagic = 0x52524e57 // "RRNW" — ReRam Network Weights

// SaveWeights writes every parameter of net to path in a self-describing
// little-endian binary format (magic, version, param count, then per param:
// name, shape, float64 data).
func SaveWeights(path string, net *nn.Network) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("models: creating %s: %w", path, err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	params := net.Params()
	if err := writeHeader(w, len(params)); err != nil {
		return fmt.Errorf("models: writing header to %s: %w", path, err)
	}
	for _, p := range params {
		if err := writeParam(w, p); err != nil {
			return fmt.Errorf("models: writing param %s to %s: %w", p.Name, path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("models: flushing %s: %w", path, err)
	}
	return nil
}

// LoadWeights reads a weight file written by SaveWeights into net. Parameter
// names and shapes must match exactly — a mismatch means the file belongs to
// a different architecture and is reported as an error rather than silently
// misloaded.
func LoadWeights(path string, net *nn.Network) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("models: opening %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	count, err := readHeader(r)
	if err != nil {
		return fmt.Errorf("models: reading header of %s: %w", path, err)
	}
	params := net.Params()
	if count != len(params) {
		return fmt.Errorf("models: %s holds %d params, network %s has %d", path, count, net.Name(), len(params))
	}
	for _, p := range params {
		if err := readParam(r, p); err != nil {
			return fmt.Errorf("models: reading param %s from %s: %w", p.Name, path, err)
		}
	}
	return nil
}

func writeHeader(w io.Writer, count int) error {
	for _, v := range []uint32{weightsMagic, 1, uint32(count)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readHeader(r io.Reader) (count int, err error) {
	var magic, version, n uint32
	for _, p := range []*uint32{&magic, &version, &n} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return 0, err
		}
	}
	if magic != weightsMagic {
		return 0, fmt.Errorf("bad magic 0x%08x", magic)
	}
	if version != 1 {
		return 0, fmt.Errorf("unsupported version %d", version)
	}
	return int(n), nil
}

func writeParam(w io.Writer, p *nn.Param) error {
	if err := writeString(w, p.Name); err != nil {
		return err
	}
	shape := p.Value.Shape()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
		return err
	}
	for _, d := range shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	buf := make([]byte, 8*p.Value.Len())
	for i, v := range p.Value.Data() {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readParam(r io.Reader, p *nn.Param) error {
	name, err := readString(r)
	if err != nil {
		return err
	}
	if name != p.Name {
		return fmt.Errorf("file has param %q, network expects %q", name, p.Name)
	}
	var rank uint32
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return err
	}
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return err
		}
		shape[i] = int(d)
		vol *= shape[i]
	}
	if vol != p.Value.Len() {
		return fmt.Errorf("file shape %v (volume %d) does not match param volume %d", shape, vol, p.Value.Len())
	}
	buf := make([]byte, 8*vol)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	vd := p.Value.Data()
	for i := range vd {
		vd[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("string length %d implausibly large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
