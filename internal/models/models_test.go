package models

import (
	"os"
	"path/filepath"
	"testing"

	"reramtest/internal/dataset"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

func TestLeNet5Architecture(t *testing.T) {
	net := LeNet5(rng.New(1))
	if net.InDim() != 784 {
		t.Fatalf("LeNet-5 input dim %d, want 784", net.InDim())
	}
	// the classic parameter count: 61,706
	if got := net.NumParams(); got != 61706 {
		t.Fatalf("LeNet-5 has %d params, want 61706", got)
	}
	out := net.Forward(tensor.New(2, 784))
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("LeNet-5 output %v, want (2, 10)", out.Shape())
	}
}

func TestConvNet7Architecture(t *testing.T) {
	net := ConvNet7(rng.New(2))
	if net.InDim() != 3*32*32 {
		t.Fatalf("ConvNet-7 input dim %d", net.InDim())
	}
	// 4 conv + 3 FC weight-bearing layers
	convs, denses := 0, 0
	for _, l := range net.Layers() {
		switch l.(type) {
		case *nn.Conv2D:
			convs++
		case *nn.Dense:
			denses++
		}
	}
	if convs != 4 || denses != 3 {
		t.Fatalf("ConvNet-7 has %d conv + %d FC, want 4 + 3", convs, denses)
	}
	out := net.Forward(tensor.New(1, 3*32*32))
	if out.Dim(1) != 10 {
		t.Fatalf("ConvNet-7 output width %d", out.Dim(1))
	}
}

func TestMLPShapes(t *testing.T) {
	net := MLP(rng.New(3), 20, []int{8, 4}, 3)
	out := net.Forward(tensor.New(5, 20))
	if out.Dim(0) != 5 || out.Dim(1) != 3 {
		t.Fatalf("MLP output %v", out.Shape())
	}
	want := 20*8 + 8 + 8*4 + 4 + 4*3 + 3
	if got := net.NumParams(); got != want {
		t.Fatalf("MLP params %d, want %d", got, want)
	}
}

func TestBuildersDeterministic(t *testing.T) {
	a, b := LeNet5(rng.New(7)), LeNet5(rng.New(7))
	for i := range a.Params() {
		if !a.Params()[i].Value.Equal(b.Params()[i].Value) {
			t.Fatal("same seed produced different initial weights")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := MLP(rng.New(4), 6, []int{5}, 3)
	path := filepath.Join(t.TempDir(), "w.bin")
	if err := SaveWeights(path, net); err != nil {
		t.Fatal(err)
	}
	other := MLP(rng.New(99), 6, []int{5}, 3) // different init
	if err := LoadWeights(path, other); err != nil {
		t.Fatal(err)
	}
	for i := range net.Params() {
		if !net.Params()[i].Value.Equal(other.Params()[i].Value) {
			t.Fatalf("param %s differs after round trip", net.Params()[i].Name)
		}
	}
}

func TestLoadWeightsRejectsWrongArchitecture(t *testing.T) {
	net := MLP(rng.New(5), 6, []int{5}, 3)
	path := filepath.Join(t.TempDir(), "w.bin")
	if err := SaveWeights(path, net); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(path, MLP(rng.New(5), 6, []int{4}, 3)); err == nil {
		t.Fatal("loaded weights into mismatched architecture")
	}
	if err := LoadWeights(path, MLP(rng.New(5), 6, []int{5, 2}, 3)); err == nil {
		t.Fatal("loaded weights into network with different param count")
	}
}

func TestLoadWeightsRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(path, MLP(rng.New(6), 4, nil, 2)); err == nil {
		t.Fatal("garbage file loaded without error")
	}
}

func TestTrainFitsSmallDataset(t *testing.T) {
	train := dataset.SynthDigits(50, dataset.DefaultDigitsConfig(400))
	net := MLP(rng.New(7), train.SampleDim(), []int{32}, 10)
	cfg := TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.03, Momentum: 0.9, Seed: 1}
	acc := Train(net, train, nil, cfg)
	if acc < 0.85 {
		t.Fatalf("training reached only %.1f%% on its own training set", 100*acc)
	}
}

func TestTrainWithLabelSmoothing(t *testing.T) {
	train := dataset.SynthDigits(51, dataset.DefaultDigitsConfig(300))
	net := MLP(rng.New(8), train.SampleDim(), []int{24}, 10)
	cfg := TrainConfig{Epochs: 4, BatchSize: 32, LR: 0.03, Momentum: 0.9, LabelSmooth: 0.1, Seed: 2}
	acc := Train(net, train, nil, cfg)
	if acc < 0.8 {
		t.Fatalf("smoothed training reached only %.1f%%", 100*acc)
	}
	// smoothing caps confidence: max softmax output should stay below ~0.95
	logits := net.Forward(train.Input(0))
	probs := nn.Softmax(logits)
	if probs.Max() > 0.995 {
		t.Errorf("label smoothing left confidence at %v", probs.Max())
	}
}

func TestTrainOrLoadCaches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache", "model.bin")
	train := dataset.SynthDigits(52, dataset.DefaultDigitsConfig(100))
	builds, trains := 0, 0
	build := func() *nn.Network {
		builds++
		return MLP(rng.New(9), train.SampleDim(), nil, 10)
	}
	trainFn := func(net *nn.Network) {
		trains++
		Train(net, train, nil, TrainConfig{Epochs: 1, BatchSize: 32, LR: 0.01, Seed: 3})
	}
	first, err := TrainOrLoad(path, build, trainFn)
	if err != nil {
		t.Fatal(err)
	}
	if trains != 1 {
		t.Fatalf("first call trained %d times", trains)
	}
	second, err := TrainOrLoad(path, build, trainFn)
	if err != nil {
		t.Fatal(err)
	}
	if trains != 1 {
		t.Fatalf("second call retrained (total %d)", trains)
	}
	for i := range first.Params() {
		if !first.Params()[i].Value.Equal(second.Params()[i].Value) {
			t.Fatal("cached weights differ from trained weights")
		}
	}
}

func TestTrainOrLoadCorruptCacheErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	if err := os.WriteFile(path, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := TrainOrLoad(path,
		func() *nn.Network { return MLP(rng.New(10), 4, nil, 2) },
		func(*nn.Network) {})
	if err == nil {
		t.Fatal("corrupt cache silently accepted")
	}
}
