package models

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"reramtest/internal/dataset"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/rng"
	"reramtest/internal/tengine"
	"reramtest/internal/tensor"
)

// TrainConfig controls the supervised training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	Decay     float64 // L2 weight decay
	LRStep    int     // halve LR every LRStep epochs (0 = constant)
	// LabelSmooth is the label-smoothing mass ε: targets become 1-ε on the
	// true class and ε/(n-1) elsewhere. Smoothing calibrates the model's
	// confidences, which matters here beyond its usual regularisation role:
	// the C-TP corner-data selector needs genuinely soft outputs near
	// decision boundaries, and an unsmoothed over-confident model hides
	// them.
	LabelSmooth float64
	Seed        int64 // shuffling seed
	Log         io.Writer
}

// DefaultTrainConfig returns the settings used to train both evaluation
// models.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.05, Momentum: 0.9, Decay: 1e-4, LRStep: 3, LabelSmooth: 0.1, Seed: 7}
}

// Train runs mini-batch SGD on net over train, reporting per-epoch loss and
// (if test is non-nil) test accuracy. It returns the final test accuracy, or
// final train accuracy when test is nil.
//
// The loop runs through a compiled tengine plan and the reusable batch
// iterator, so the steady state allocates nothing; batches, losses, gradients
// and final weights are bit-identical to the legacy per-layer
// Forward/CrossEntropy/Backward/Step sequence (asserted by
// TestTrainEngineMatchesLegacy).
func Train(net *nn.Network, train, test *dataset.Dataset, cfg TrainConfig) float64 {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	r := rng.New(cfg.Seed)
	sgd := opt.NewSGD(net.Params(), cfg.LR, cfg.Momentum, cfg.Decay)
	net.SetTraining(true)
	eng := tengine.MustCompile(net, tengine.Options{MaxBatch: cfg.BatchSize})
	it := train.BatchIterator(cfg.BatchSize)
	smooth := newSmoothTargets(cfg.BatchSize, train.Classes, cfg.LabelSmooth)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.LRStep > 0 {
			sgd.SetLR(opt.StepDecay(cfg.LR, 0.5, cfg.LRStep)(epoch))
		}
		start := time.Now()
		totalLoss, nBatches := 0.0, 0
		it.Reset(r)
		for {
			bx, by, ok := it.Next()
			if !ok {
				break
			}
			var loss float64
			// iterator batches are never empty (Next reported ok)
			if cfg.LabelSmooth > 0 {
				loss, _ = eng.ForwardBackwardSoft(bx, smooth.fill(by))
			} else {
				loss, _ = eng.ForwardBackward(bx, by)
			}
			sgd.StepAndZero()
			totalLoss += loss
			nBatches++
		}
		fmt.Fprintf(logw, "epoch %d/%d: loss=%.4f lr=%.4f (%.1fs)\n",
			epoch+1, cfg.Epochs, totalLoss/float64(nBatches), sgd.LR(), time.Since(start).Seconds())
	}
	net.SetTraining(false)
	eval := test
	if eval == nil {
		eval = train
	}
	acc := net.Accuracy(eval.X, eval.Y, 64)
	fmt.Fprintf(logw, "%s final accuracy on %s: %.2f%%\n", net.Name(), eval.Name, 100*acc)
	return acc
}

// smoothTargets is a reusable label-smoothing target buffer: one workspace
// sized to the full batch, refilled in place every fill call (the tail batch
// rebuilds only the view header). Values match the legacy smoothLabels
// construction exactly: ε/(n-1) everywhere, 1-ε on the true class.
type smoothTargets struct {
	classes int
	eps     float64
	buf     []float64
	t       *tensor.Tensor
	n       int
}

func newSmoothTargets(batchSize, classes int, eps float64) *smoothTargets {
	return &smoothTargets{classes: classes, eps: eps, buf: make([]float64, batchSize*classes)}
}

func (st *smoothTargets) fill(labels []int) *tensor.Tensor {
	off := st.eps / float64(st.classes-1)
	b := len(labels)
	data := st.buf[:b*st.classes]
	for i := range data {
		data[i] = off
	}
	for s, y := range labels {
		data[s*st.classes+y] = 1 - st.eps
	}
	if st.t == nil || st.n != b {
		st.t = tensor.FromSlice(data, b, st.classes)
		st.n = b
	}
	return st.t
}

// TrainOrLoad returns a trained network, loading cached weights from path if
// the file exists and otherwise training from scratch with trainFn and
// caching the result. build must deterministically construct the (untrained)
// architecture.
func TrainOrLoad(path string, build func() *nn.Network, trainFn func(net *nn.Network)) (*nn.Network, error) {
	net := build()
	if _, err := os.Stat(path); err == nil {
		if err := LoadWeights(path, net); err != nil {
			return nil, fmt.Errorf("models: cached weights at %s are unreadable: %w", path, err)
		}
		net.SetTraining(false)
		return net, nil
	}
	trainFn(net)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("models: creating cache dir for %s: %w", path, err)
	}
	if err := SaveWeights(path, net); err != nil {
		return nil, fmt.Errorf("models: caching weights: %w", err)
	}
	return net, nil
}
