package engine

import (
	"errors"
	"math"
	"strings"
	"testing"

	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// f32ULPBound is the documented F32-tier acceptance envelope, in row-scaled
// float32 ULPs: for every logit, |f32 − f64| ≤ bound · 2⁻²⁴ · max|row|.
// The row scale makes the bound meaningful for outputs produced by
// cancellation, where a raw ULP distance explodes on correct kernels.
// Forward error through an L-layer stack is O(Σ kᵢ) ULPs; the deepest seed
// model sums ~350 inner elements, so 1024 leaves honest headroom while still
// catching any real defect (a transposed weight, a dropped bias, a stale
// cache are all millions of scaled ULPs out).
const f32ULPBound = 1024

// maxScaledULP measures the largest per-row scaled-ULP error of got versus
// the f64 reference want, both (n, k) tensors.
func maxScaledULP(got, want *tensor.Tensor) float64 {
	n, k := want.Dim(0), want.Dim(1)
	gd, wd := got.Data(), want.Data()
	worst := 0.0
	for i := 0; i < n; i++ {
		scale := 1e-12
		for j := 0; j < k; j++ {
			if a := math.Abs(wd[i*k+j]); a > scale {
				scale = a
			}
		}
		for j := 0; j < k; j++ {
			e := math.Abs(gd[i*k+j]-wd[i*k+j]) / (0x1p-24 * scale)
			if e > worst {
				worst = e
			}
		}
	}
	return worst
}

// TestEngineF32WithinULPOfReference runs every seed model on the F32 tier
// and gates each batch against the documented scaled-ULP envelope of the F64
// reference arm; pooled and serial F32 plans must agree bit-for-bit (rows
// are partition-independent).
func TestEngineF32WithinULPOfReference(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	for _, m := range seedModels() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			net := m.build(rng.New(11))
			ref := MustCompile(net, Options{Workers: 1})
			serial := MustCompile(net, Options{Workers: 1, Precision: tensor.F32})
			pooled := MustCompile(net, Options{Pool: pool, Precision: tensor.F32})
			if serial.Precision() != tensor.F32 {
				t.Fatal("Precision() does not report the compiled tier")
			}
			for _, n := range []int{1, 3, 7} {
				x := tensor.RandUniform(rng.New(int64(300+n)), 0, 1, n, net.InDim())
				want := mustForward(t, ref, nil, x)
				got := mustForward(t, serial, nil, x)
				if ulp := maxScaledULP(got, want); ulp > f32ULPBound {
					t.Fatalf("n=%d: f32 tier is %.0f scaled ULPs from the reference, bound %d", n, ulp, f32ULPBound)
				}
				pgot := mustForward(t, pooled, nil, x)
				if !pgot.Equal(got) {
					t.Fatalf("n=%d: pooled f32 differs from serial f32", n)
				}
			}
		})
	}
}

// i8Oracle is the model-level quantize-then-f64 oracle: dense layers
// quantize activations and weights with the SAME tensor helpers the engine
// uses, run the integer matmul through the f64 reference kernel (exact — the
// values are integers far below 2⁵³), and dequantize through the SAME shared
// expression; every other layer runs its ordinary f64 forward. The I8 tier
// must match this bitwise.
func i8Oracle(net *nn.Network, x *tensor.Tensor) *tensor.Tensor {
	cur := x
	for _, l := range net.Layers() {
		d, isDense := l.(*nn.Dense)
		if !isDense {
			cur = l.Forward(cur)
			continue
		}
		n := cur.Dim(0)
		in, out := d.In(), d.Out()
		wqT := make([]int8, in*out)
		sw := make([]float64, out)
		rowSum := make([]int32, out)
		tensor.QuantizeWeightsI8(wqT, sw, rowSum, d.Params()[0].Value.Data(), in, out)
		bias := d.Params()[1].Value.Data()
		// integer matmul in f64: xq64 (n×in) · wq64 (in×out), exact
		xq := make([]int8, in)
		xq64 := make([]float64, n*in)
		rqs := make([]tensor.RowQuantI8, n)
		cd := cur.Data()
		for i := 0; i < n; i++ {
			rqs[i] = tensor.QuantizeRowI8(xq, cd[i*in:(i+1)*in])
			for k, q := range xq {
				xq64[i*in+k] = float64(q)
			}
		}
		wq64 := make([]float64, in*out)
		for j := 0; j < out; j++ {
			for k := 0; k < in; k++ {
				wq64[k*out+j] = float64(wqT[j*in+k])
			}
		}
		acc64 := make([]float64, n*out)
		tensor.MatMulSlices(acc64, xq64, wq64, n, in, out)
		y := tensor.New(n, out)
		yd := y.Data()
		for i := 0; i < n; i++ {
			for j := 0; j < out; j++ {
				yd[i*out+j] = tensor.DequantI8(int32(acc64[i*out+j]), rqs[i], sw[j], bias[j], rowSum[j])
			}
		}
		cur = y
	}
	return cur
}

// TestEngineI8ExactVsQuantOracle: the quantized tier must equal the
// quantize-then-f64 oracle bit for bit — the int8 kernels change the
// arithmetic domain, not the arithmetic — for dense stacks including mixed
// stacks with non-dense stages, serial and pooled.
func TestEngineI8ExactVsQuantOracle(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	nets := []struct {
		name  string
		build func(r *rng.RNG) *nn.Network
	}{
		{"mlp", func(r *rng.RNG) *nn.Network { return models.MLP(r, 16, []int{24, 16}, 6) }},
		{"mlp-deep", func(r *rng.RNG) *nn.Network { return models.MLP(r, 32, []int{40, 32, 20}, 8) }},
		{"tanh-sigmoid", func(r *rng.RNG) *nn.Network {
			return nn.NewNetwork("ts", 12,
				nn.NewDense("fc1", r, 12, 20), nn.NewTanh("t1"),
				nn.NewDense("fc2", r, 20, 10), nn.NewSigmoid("s1"),
				nn.NewDense("fc3", r, 10, 4),
			)
		}},
	}
	for _, m := range nets {
		m := m
		t.Run(m.name, func(t *testing.T) {
			net := m.build(rng.New(17))
			serial := MustCompile(net, Options{Workers: 1, Precision: tensor.I8})
			pooled := MustCompile(net, Options{Pool: pool, Precision: tensor.I8})
			for _, n := range []int{1, 5, 9} {
				x := tensor.RandUniform(rng.New(int64(400+n)), -1, 1, n, net.InDim())
				want := i8Oracle(m.build(rng.New(17)), x)
				got := mustForward(t, serial, nil, x)
				if !got.Equal(want) {
					t.Fatalf("n=%d: i8 tier differs from the quantize-then-f64 oracle", n)
				}
				if !mustForward(t, pooled, nil, x).Equal(want) {
					t.Fatalf("n=%d: pooled i8 differs from the oracle", n)
				}
			}
		})
	}
}

// TestForwardBatchEmptyBatch: the N=0 regression for the typed sentinel —
// both the reference tier and the fast tiers must refuse an empty batch with
// ErrEmptyBatch instead of silently producing an empty readout.
func TestForwardBatchEmptyBatch(t *testing.T) {
	net := models.MLP(rng.New(5), 16, []int{24, 16}, 6)
	empty := tensor.New(0, 16)
	for _, prec := range []tensor.Precision{tensor.F64, tensor.F32, tensor.I8} {
		eng := MustCompile(net, Options{Workers: 1, Precision: prec})
		out, err := eng.ForwardBatch(nil, empty)
		if !errors.Is(err, ErrEmptyBatch) {
			t.Fatalf("%v: ForwardBatch(empty) err = %v, want ErrEmptyBatch", prec, err)
		}
		if out != nil {
			t.Fatalf("%v: ForwardBatch(empty) returned a tensor alongside the error", prec)
		}
		if got := eng.Predict(empty); len(got) != 0 {
			t.Fatalf("%v: Predict(empty) = %v, want none", prec, got)
		}
	}
}

// TestEngineFastTierAllocFree: the fast tiers must keep the engine's
// steady-state 0 allocs/op guarantee, serial and pooled.
func TestEngineFastTierAllocFree(t *testing.T) {
	net := models.MLP(rng.New(41), 16, []int{24, 16}, 6)
	x := tensor.RandUniform(rng.New(42), 0, 1, 16, 16)
	pool := tensor.NewPool(4)
	defer pool.Close()
	for _, prec := range []tensor.Precision{tensor.F32, tensor.I8} {
		for _, cfg := range []struct {
			label string
			opts  Options
		}{
			{"serial", Options{Workers: 1, MaxBatch: 16}},
			{"pool4", Options{Pool: pool, MaxBatch: 16}},
		} {
			cfg.opts.Precision = prec
			eng := MustCompile(net, cfg.opts)
			eng.Probs(x) // warmup: builds views and probs buffer
			if allocs := testing.AllocsPerRun(50, func() { eng.Probs(x) }); allocs != 0 {
				t.Errorf("%v/%s: %v allocs/op in steady state, want 0", prec, cfg.label, allocs)
			}
		}
	}
}

// TestEngineFastTierRebindAndReload: Rebind must reload the converted
// caches (outputs track the new network), and ReloadParams must pick up
// in-place weight mutations the caches would otherwise hide.
func TestEngineFastTierRebindAndReload(t *testing.T) {
	for _, prec := range []tensor.Precision{tensor.F32, tensor.I8} {
		net := models.MLP(rng.New(31), 16, []int{24, 16}, 6)
		eng := MustCompile(net, Options{Workers: 1, Precision: prec})
		x := tensor.RandUniform(rng.New(32), 0, 1, 4, 16)
		base := mustForward(t, eng, nil, x).Clone()

		clone := net.Clone()
		for _, p := range clone.Params() {
			p.Value.ScaleInPlace(1.5)
		}
		if err := eng.Rebind(clone); err != nil {
			t.Fatalf("%v: rebind clone: %v", prec, err)
		}
		rebound := mustForward(t, eng, nil, x).Clone()
		if rebound.Equal(base) {
			t.Fatalf("%v: rebind did not reload the parameter caches", prec)
		}
		fresh := MustCompile(clone, Options{Workers: 1, Precision: prec})
		if !mustForward(t, fresh, nil, x).Equal(rebound) {
			t.Fatalf("%v: rebound engine differs from a fresh compile of the same net", prec)
		}

		// in-place mutation is invisible until ReloadParams
		for _, p := range clone.Params() {
			p.Value.ScaleInPlace(0.5)
		}
		if !mustForward(t, eng, nil, x).Equal(rebound) {
			t.Fatalf("%v: cache unexpectedly tracked an in-place mutation", prec)
		}
		eng.ReloadParams()
		reloaded := mustForward(t, eng, nil, x)
		if reloaded.Equal(rebound) {
			t.Fatalf("%v: ReloadParams did not refresh the caches", prec)
		}
		if !MustCompile(clone, Options{Workers: 1, Precision: prec}).
			MustForwardForTest(x).Equal(reloaded) {
			t.Fatalf("%v: reloaded engine differs from a fresh compile", prec)
		}

		// mismatched architectures still bounce with the engine intact
		deeper := models.MLP(rng.New(35), 16, []int{24, 16, 8}, 6)
		if err := eng.Rebind(deeper); err == nil {
			t.Fatalf("%v: rebind accepted a deeper network", prec)
		}
		if !mustForward(t, eng, nil, x).Equal(reloaded) {
			t.Fatalf("%v: failed rebind perturbed the engine", prec)
		}
	}
}

// TestEngineF32RejectsUnbatchable: compiling a layer without an f32 kernel
// on the F32 tier must fail with a tier-specific error.
func TestEngineF32RejectsUnbatchable(t *testing.T) {
	net := nn.NewNetwork("odd", 4, &unbatchable{})
	if _, err := Compile(net, Options{Precision: tensor.F32}); err == nil ||
		!strings.Contains(err.Error(), "float32 inference path") {
		t.Fatalf("compile error = %v, want f32-unbatchable error", err)
	}
	if _, err := Compile(net, Options{Precision: tensor.I8}); err == nil ||
		!strings.Contains(err.Error(), "no batched inference path") {
		t.Fatalf("compile error = %v, want i8-unbatchable error", err)
	}
}

// TestEngineFastTierCostReflectsPrecision: a plan's modeled per-sample cost
// must get cheaper with the tier — narrower buffers on F32, narrower buffers
// AND cheaper conversions on I8 — while event counts stay put.
func TestEngineFastTierCostReflectsPrecision(t *testing.T) {
	net := models.MLP(rng.New(7), 16, []int{24, 16}, 6)
	f64c := MustCompile(net, Options{Workers: 1}).PlanCost()
	f32c := MustCompile(net, Options{Workers: 1, Precision: tensor.F32}).PlanCost()
	i8c := MustCompile(net, Options{Workers: 1, Precision: tensor.I8}).PlanCost()
	if f32c.DACConversions != f64c.DACConversions || f32c.ADCConversions != f64c.ADCConversions ||
		i8c.DACConversions != f64c.DACConversions || i8c.ADCConversions != f64c.ADCConversions {
		t.Fatal("conversion counts must not depend on the tier")
	}
	if !(f32c.BufferBytes < f64c.BufferBytes && i8c.BufferBytes < f32c.BufferBytes) {
		t.Fatalf("buffer traffic must narrow with the tier: f64=%d f32=%d i8=%d",
			f64c.BufferBytes, f32c.BufferBytes, i8c.BufferBytes)
	}
	if f32c.EnergyFJ != f64c.EnergyFJ {
		t.Fatalf("f32 conversions charge the sticker energy: f64=%d f32=%d", f64c.EnergyFJ, f32c.EnergyFJ)
	}
	if i8c.EnergyFJ >= f64c.EnergyFJ {
		t.Fatalf("i8 conversions must be cheaper than the f64 sticker model: f64=%d i8=%d",
			f64c.EnergyFJ, i8c.EnergyFJ)
	}
}

// MustForwardForTest is a test-only convenience: ForwardBatch(nil, x) or
// panic.
func (e *Engine) MustForwardForTest(x *tensor.Tensor) *tensor.Tensor {
	out, err := e.ForwardBatch(nil, x)
	if err != nil {
		panic(err)
	}
	return out
}
