// Package engine compiles an nn.Network into a batch-first inference plan:
// per-layer output workspaces are allocated once, layers execute through
// their destination-passing BatchInfer kernels, and the whole (N, inDim)
// pattern batch flows through the stack with zero steady-state allocations.
//
// On the default F64 tier, outputs are bit-identical to the per-sample
// nn.Network.Forward path: every layer kernel processes batch rows
// independently with the same inner-loop and summation order as its
// training-path twin, and parallelism only ever partitions whole samples
// across pool chunks (never a reduction axis). The golden equivalence tests
// in this package assert exact float64 equality for every seed model, which
// is what lets the monitor, detect, campaign and fleet layers route their
// readouts through an engine without perturbing a single metric, soak gate
// or journal fingerprint.
//
// Options.Precision opts a plan into a fast tier (see DESIGN.md §16): F32
// compiles the float32 kernel mirror with fused dense+bias(+ReLU) steps and
// converted-weight caches, accepted within a documented ULP envelope of the
// F64 reference; I8 compiles dense layers onto the int8×int8→int32 quantized
// kernels matching the reram DAC/ADC resolution, exactly equal to a
// model-level quantize-then-f64 oracle. Both tiers keep the preallocated-
// workspace guarantee: 0 allocs/op in the steady state. Dispatch is chosen
// once at Compile, never per call. Fast-tier plans snapshot parameters into
// their caches at Compile/Rebind; callers that mutate weights in place under
// a live plan refresh the caches with ReloadParams.
//
// An Engine is a single-goroutine object, like the layers it wraps; clone
// the network and compile per goroutine for concurrent inference (the fleet
// does exactly that, one plant engine per device).
package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"reramtest/internal/nn"
	"reramtest/internal/reram"
	"reramtest/internal/tensor"
)

// ErrEmptyBatch is returned by ForwardBatch for an N=0 batch: an empty
// forward pass has no logits, and silently returning an empty view let
// callers score nothing and read it as a healthy readout.
var ErrEmptyBatch = errors.New("engine: empty batch")

// Options tunes a compilation.
type Options struct {
	// MaxBatch pre-sizes the workspaces in samples. 0 defers allocation to
	// the first ForwardBatch; workspaces grow on demand either way.
	MaxBatch int
	// Workers caps the per-layer chunk parallelism. 0 uses the pool's worker
	// count; 1 forces serial execution.
	Workers int
	// Pool supplies the worker pool. nil selects tensor.SharedPool(), which
	// degrades to inline execution on a single-core host.
	Pool *tensor.Pool
	// Counter receives the plan's modeled hardware cost: each ForwardBatch
	// charges N × PlanCost() into it (one call, zero allocations, numerically
	// invisible — counters are integers off the float64 path). nil allocates
	// a fresh counter, so an engine is always metered; pass the device's
	// counter to pool spend with the analog path, and pass the SAME counter
	// across Rebind/recompile cycles so cumulative spend survives fault-model
	// sweeps and accelerator replacement.
	Counter *reram.Counter
	// CostModel supplies the crossbar organisation the per-sample cost is
	// modeled against. The zero value selects reram.DefaultConfig().
	CostModel reram.Config
	// Precision selects the numeric tier the plan computes in. The zero
	// value is tensor.F64, the bit-exact reference arm. tensor.F32 and
	// tensor.I8 are explicit opt-ins: their outputs differ from the
	// reference within the tier's documented contract, and the plan's
	// modeled hardware cost (PlanCost) reflects the cheaper conversions and
	// narrower buffer traffic of the tier actually compiled.
	Precision tensor.Precision
}

// step is one compiled compute layer: its kernel, its workspace, and the
// parallel body that runs a chunk of the batch through it.
type step struct {
	layer      nn.Layer
	bl         nn.BatchInfer
	inVol      int
	outVol     int
	scratchLen int
	buf        []float64      // output workspace, cap >= capN*outVol
	out        *tensor.Tensor // (curN, outVol) view of buf
	in         *tensor.Tensor // input view, set each ForwardBatch
	scratch    [][]float64    // per-chunk kernel scratch
	body       func(chunk, lo, hi int)
}

// Engine is a compiled batch-first forward plan over an nn.Network.
type Engine struct {
	net    *nn.Network
	steps  []*step // F64 plan (also reused for non-dense stages of I8)
	inDim  int
	outVol int
	chunks int
	pool   *tensor.Pool
	wg     sync.WaitGroup

	prec tensor.Precision
	f32  *f32Plan  // non-nil iff prec == tensor.F32
	i8   []i8Stage // non-empty iff prec == tensor.I8

	capN, curN int

	probsBuf []float64
	probs    *tensor.Tensor
	probsN   int

	counter   *reram.Counter // never nil after Compile
	perSample reram.Cost     // modeled hardware cost of one sample
}

// layerSpec is one non-passthrough layer with its per-sample volumes, the
// shape-walk every tier's compile and rebind share.
type layerSpec struct {
	layer  nn.Layer
	inVol  int
	outVol int
}

// planSpecs walks net's layer stack, eliding inference passthroughs, and
// returns the compute-layer specs plus the final per-sample output volume.
func planSpecs(net *nn.Network) ([]layerSpec, int) {
	shape := []int{net.InDim()}
	vol := net.InDim()
	var specs []layerSpec
	for _, l := range net.Layers() {
		outShape := l.OutputShape(shape)
		outVol := volume(outShape)
		if !isPassthrough(l) {
			specs = append(specs, layerSpec{layer: l, inVol: vol, outVol: outVol})
		}
		shape, vol = outShape, outVol
	}
	return specs, vol
}

// Compile builds an execution plan for net on the requested precision tier.
// It fails if a layer has no batched inference path on that tier: every
// compute layer must implement nn.BatchInfer (F64, and the non-dense stages
// of I8), nn.BatchInferF32 (F32), or be an *nn.Dense narrow enough for the
// int8 accumulator (I8 dense stages).
func Compile(net *nn.Network, opts Options) (*Engine, error) {
	e := &Engine{net: net, inDim: net.InDim(), pool: opts.Pool, prec: opts.Precision}
	if e.pool == nil {
		e.pool = tensor.SharedPool()
	}
	e.chunks = opts.Workers
	if e.chunks <= 0 {
		e.chunks = e.pool.Workers()
	}
	specs, outVol := planSpecs(net)
	e.outVol = outVol
	var err error
	switch opts.Precision {
	case tensor.F64:
		err = e.compileF64(specs)
	case tensor.F32:
		err = e.compileF32(specs)
	case tensor.I8:
		err = e.compileI8(specs)
	default:
		err = fmt.Errorf("engine: unknown precision %v", opts.Precision)
	}
	if err != nil {
		return nil, err
	}
	e.counter = opts.Counter
	if e.counter == nil {
		e.counter = reram.NewCounter()
	}
	costCfg := opts.CostModel
	if costCfg.TileRows <= 0 || costCfg.TileCols <= 0 {
		costCfg = reram.DefaultConfig()
	}
	for _, sp := range specs {
		e.perSample.Add(reram.ModelLayerCostPrec(sp.layer, sp.inVol, sp.outVol, costCfg, e.prec))
	}
	if opts.MaxBatch > 0 {
		e.setBatch(opts.MaxBatch)
	}
	return e, nil
}

// compileF64 builds the reference-tier steps.
func (e *Engine) compileF64(specs []layerSpec) error {
	for _, sp := range specs {
		s, err := e.newF64Step(sp)
		if err != nil {
			return err
		}
		e.steps = append(e.steps, s)
	}
	return nil
}

// newF64Step builds one float64 BatchInfer step; the I8 compile reuses it
// for every non-dense stage.
func (e *Engine) newF64Step(sp layerSpec) (*step, error) {
	bl, ok := sp.layer.(nn.BatchInfer)
	if !ok {
		return nil, fmt.Errorf("engine: layer %q (%T) has no batched inference path", sp.layer.Name(), sp.layer)
	}
	s := &step{layer: sp.layer, bl: bl, inVol: sp.inVol, outVol: sp.outVol, scratchLen: bl.InferScratch()}
	s.scratch = make([][]float64, e.chunks)
	for c := range s.scratch {
		s.scratch[c] = make([]float64, s.scratchLen)
	}
	s.body = func(chunk, lo, hi int) {
		s.bl.ForwardBatchRange(s.out, s.in, lo, hi, s.scratch[chunk])
	}
	return s, nil
}

// MustCompile is Compile for statically known-good networks; it panics on
// error.
func MustCompile(net *nn.Network, opts Options) *Engine {
	e, err := Compile(net, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Network returns the network the engine is currently bound to.
func (e *Engine) Network() *nn.Network { return e.net }

// InDim returns the flattened per-sample input size.
func (e *Engine) InDim() int { return e.inDim }

// OutDim returns the flattened per-sample output size.
func (e *Engine) OutDim() int { return e.outVol }

// Precision returns the numeric tier the plan was compiled for.
func (e *Engine) Precision() tensor.Precision { return e.prec }

// PlanCost returns the modeled per-sample hardware cost of the compiled
// plan (see Options.CostModel and Options.Precision). Rebind does not change
// it: the plan's architecture and tier — the only cost inputs — are
// invariant across rebinds.
func (e *Engine) PlanCost() reram.Cost { return e.perSample }

// Counter returns the counter the plan charges; never nil.
func (e *Engine) Counter() *reram.Counter { return e.counter }

// Rebind points the compiled plan at another network with the same
// architecture (typically a clone of the original with different weights:
// a fault model, a refreshed crossbar readout). Workspaces, views and
// precompiled bodies are all reused — only the layer bindings swap, and on
// the fast tiers the converted/quantized parameter caches are reloaded from
// the new network. It returns an error, leaving the engine untouched, if
// net's layer stack does not match the plan; callers then fall back to a
// fresh Compile.
func (e *Engine) Rebind(net *nn.Network) error {
	if net == e.net {
		// The reference tier reads the parameter tensors at call time, so
		// rebinding a network to itself is a no-op. The fast tiers snapshot
		// parameters at compile time — a same-network rebind is a sweep's way
		// of saying "the weights may have moved", so refresh the converted
		// caches (no-op on tensor.F64).
		e.ReloadParams()
		return nil
	}
	if net.InDim() != e.inDim {
		return fmt.Errorf("engine: rebind input dim %d != %d", net.InDim(), e.inDim)
	}
	specs, _ := planSpecs(net)
	var err error
	switch e.prec {
	case tensor.F32:
		err = e.rebindF32(specs)
	case tensor.I8:
		err = e.rebindI8(specs)
	default:
		err = e.rebindF64(specs)
	}
	if err != nil {
		return err
	}
	e.net = net
	return nil
}

// rebindF64 swaps the reference-tier step bindings.
func (e *Engine) rebindF64(specs []layerSpec) error {
	if len(specs) != len(e.steps) {
		return fmt.Errorf("engine: rebind network has %d compute layers, plan has %d", len(specs), len(e.steps))
	}
	pending := make([]nn.BatchInfer, len(specs))
	for i, sp := range specs {
		s := e.steps[i]
		bl, ok := sp.layer.(nn.BatchInfer)
		if !ok {
			return fmt.Errorf("engine: rebind layer %q (%T) has no batched inference path", sp.layer.Name(), sp.layer)
		}
		if fmt.Sprintf("%T", sp.layer) != fmt.Sprintf("%T", s.layer) ||
			s.inVol != sp.inVol || s.outVol != sp.outVol || s.scratchLen != bl.InferScratch() {
			return fmt.Errorf("engine: rebind layer %q does not match compiled step %q", sp.layer.Name(), s.layer.Name())
		}
		pending[i] = bl
	}
	for i, s := range e.steps {
		s.bl = pending[i]
		s.layer = s.bl.(nn.Layer)
	}
	return nil
}

// setBatch sizes workspaces and rebuilds the batch-length views for the
// compiled tier. Buffers grow when n exceeds the current capacity; views are
// rebuilt only when n changes, so a steady stream of same-size batches
// allocates nothing.
func (e *Engine) setBatch(n int) {
	switch e.prec {
	case tensor.F32:
		e.setBatchF32(n)
	case tensor.I8:
		e.setBatchI8(n)
	default:
		e.setBatchF64(n)
	}
}

func (e *Engine) setBatchF64(n int) {
	if n > e.capN {
		for _, s := range e.steps {
			s.buf = make([]float64, n*s.outVol)
		}
		e.capN = n
		e.curN = 0
	}
	if n == e.curN {
		return
	}
	for _, s := range e.steps {
		s.out = tensor.FromSlice(s.buf[:n*s.outVol], n, s.outVol)
	}
	e.curN = n
}

// runStep executes one f64 step body across the pool (shared by the F64 plan
// and the non-dense stages of the I8 plan).
func (e *Engine) runStep(s *step, cur *tensor.Tensor, n int) *tensor.Tensor {
	s.in = cur
	if e.chunks <= 1 || n == 1 {
		s.body(0, 0, n)
	} else {
		e.pool.RunWith(&e.wg, n, e.chunks, s.body)
	}
	return s.out
}

// ForwardBatch runs the (N, inDim) batch x through the plan and returns the
// (N, outDim) logits. When dst is non-nil the logits are copied into it and
// dst is returned; when dst is nil the engine's internal output view is
// returned, valid until the next call. Either way the computation happens in
// the preallocated workspaces: the steady state (same batch size, dst nil)
// performs no allocations. An N=0 batch returns ErrEmptyBatch — there are no
// logits to produce, and the silent empty output it used to return scored as
// a healthy readout downstream.
func (e *Engine) ForwardBatch(dst, x *tensor.Tensor) (*tensor.Tensor, error) {
	tensor.AssertDims("engine.ForwardBatch x", x, tensor.Wildcard, e.inDim)
	n := x.Dim(0)
	if n == 0 {
		return nil, ErrEmptyBatch
	}
	e.setBatch(n)
	e.counter.Charge(e.perSample.Scale(uint64(n)))
	var cur *tensor.Tensor
	switch e.prec {
	case tensor.F32:
		cur = e.forwardF32(x, n)
	case tensor.I8:
		cur = e.forwardI8(x, n)
	default:
		cur = x
		for _, s := range e.steps {
			cur = e.runStep(s, cur, n)
		}
	}
	if dst == nil {
		return cur, nil
	}
	tensor.AssertDims("engine.ForwardBatch dst", dst, n, e.outVol)
	copy(dst.Data(), cur.Data())
	return dst, nil
}

// Probs runs ForwardBatch and applies the row-wise softmax, returning the
// (N, outDim) confidence batch in a reused internal buffer (valid until the
// next call). Its method value satisfies the monitor's Infer signature, which
// is how a monitor Check feeds all M patterns through the accelerator model
// in one allocation-free call. It panics on an empty batch — readout
// consumers always probe with at least one pattern.
func (e *Engine) Probs(x *tensor.Tensor) *tensor.Tensor {
	logits, err := e.ForwardBatch(nil, x)
	if err != nil {
		panic(err)
	}
	n := logits.Dim(0)
	if need := n * e.outVol; need > cap(e.probsBuf) {
		e.probsBuf = make([]float64, need)
		e.probsN = 0
	}
	if n != e.probsN {
		e.probs = tensor.FromSlice(e.probsBuf[:n*e.outVol], n, e.outVol)
		e.probsN = n
	}
	copy(e.probs.Data(), logits.Data())
	nn.SoftmaxInPlace(e.probs)
	return e.probs
}

// ProbsInto runs ForwardBatch and applies the row-wise softmax, writing the
// (N, outDim) confidence batch into dst and returning it. Unlike Probs the
// result does not alias any engine workspace, so the caller owns it outright
// — this is the snapshot primitive that lets one compiled plan serve
// multiple consumers (see Shared). It panics on an empty batch.
func (e *Engine) ProbsInto(dst, x *tensor.Tensor) *tensor.Tensor {
	logits, err := e.ForwardBatch(nil, x)
	if err != nil {
		panic(err)
	}
	n := logits.Dim(0)
	tensor.AssertDims("engine.ProbsInto dst", dst, n, e.outVol)
	copy(dst.Data(), logits.Data())
	nn.SoftmaxInPlace(dst)
	return dst
}

// Predict returns the argmax class per sample, matching nn.Network.Predict.
// An empty batch predicts nothing.
func (e *Engine) Predict(x *tensor.Tensor) []int {
	if x.Dim(0) == 0 {
		return nil
	}
	logits, err := e.ForwardBatch(nil, x)
	if err != nil {
		panic(err)
	}
	n := logits.Dim(0)
	k := e.outVol
	ld := logits.Data()
	out := make([]int, n)
	for s := 0; s < n; s++ {
		row := ld[s*k : (s+1)*k]
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[s] = bi
	}
	return out
}

// Accuracy evaluates top-1 accuracy on inputs x with labels y in batches of
// batchSize, mirroring nn.Network.Accuracy (same batching, same argmax
// tie-breaking) so engine-backed fidelity probes report identical numbers.
func (e *Engine) Accuracy(x *tensor.Tensor, y []int, batchSize int) float64 {
	nb := x.Dim(0)
	if nb == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	correct := 0
	for s := 0; s < nb; s += batchSize {
		end := s + batchSize
		if end > nb {
			end = nb
		}
		batch := tensor.FromSlice(x.Data()[s*e.inDim:end*e.inDim], end-s, e.inDim)
		for i, p := range e.Predict(batch) {
			if p == y[s+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(nb)
}

// isPassthrough reports whether the layer is elided from inference plans.
func isPassthrough(l nn.Layer) bool {
	p, ok := l.(nn.InferencePassthrough)
	return ok && p.InferencePassthrough()
}

func volume(shape []int) int {
	v := 1
	for _, d := range shape {
		v *= d
	}
	return v
}
