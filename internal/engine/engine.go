// Package engine compiles an nn.Network into a batch-first inference plan:
// per-layer output workspaces are allocated once, layers execute through
// their destination-passing BatchInfer kernels, and the whole (N, inDim)
// pattern batch flows through the stack with zero steady-state allocations.
//
// Outputs are bit-identical to the per-sample nn.Network.Forward path: every
// layer kernel processes batch rows independently with the same inner-loop
// and summation order as its training-path twin, and parallelism only ever
// partitions whole samples across pool chunks (never a reduction axis). The
// golden equivalence tests in this package assert exact float64 equality for
// every seed model, which is what lets the monitor, detect, campaign and
// fleet layers route their readouts through an engine without perturbing a
// single metric, soak gate or journal fingerprint.
//
// An Engine is a single-goroutine object, like the layers it wraps; clone
// the network and compile per goroutine for concurrent inference (the fleet
// does exactly that, one plant engine per device).
package engine

import (
	"fmt"
	"math"
	"sync"

	"reramtest/internal/nn"
	"reramtest/internal/reram"
	"reramtest/internal/tensor"
)

// Options tunes a compilation.
type Options struct {
	// MaxBatch pre-sizes the workspaces in samples. 0 defers allocation to
	// the first ForwardBatch; workspaces grow on demand either way.
	MaxBatch int
	// Workers caps the per-layer chunk parallelism. 0 uses the pool's worker
	// count; 1 forces serial execution.
	Workers int
	// Pool supplies the worker pool. nil selects tensor.SharedPool(), which
	// degrades to inline execution on a single-core host.
	Pool *tensor.Pool
	// Counter receives the plan's modeled hardware cost: each ForwardBatch
	// charges N × PlanCost() into it (one call, zero allocations, numerically
	// invisible — counters are integers off the float64 path). nil allocates
	// a fresh counter, so an engine is always metered; pass the device's
	// counter to pool spend with the analog path, and pass the SAME counter
	// across Rebind/recompile cycles so cumulative spend survives fault-model
	// sweeps and accelerator replacement.
	Counter *reram.Counter
	// CostModel supplies the crossbar organisation the per-sample cost is
	// modeled against. The zero value selects reram.DefaultConfig().
	CostModel reram.Config
}

// step is one compiled compute layer: its kernel, its workspace, and the
// parallel body that runs a chunk of the batch through it.
type step struct {
	layer      nn.Layer
	bl         nn.BatchInfer
	inVol      int
	outVol     int
	scratchLen int
	buf        []float64      // output workspace, cap >= capN*outVol
	out        *tensor.Tensor // (curN, outVol) view of buf
	in         *tensor.Tensor // input view, set each ForwardBatch
	scratch    [][]float64    // per-chunk kernel scratch
	body       func(chunk, lo, hi int)
}

// Engine is a compiled batch-first forward plan over an nn.Network.
type Engine struct {
	net    *nn.Network
	steps  []*step
	inDim  int
	outVol int
	chunks int
	pool   *tensor.Pool
	wg     sync.WaitGroup

	capN, curN int

	probsBuf []float64
	probs    *tensor.Tensor
	probsN   int

	counter   *reram.Counter // never nil after Compile
	perSample reram.Cost     // modeled hardware cost of one sample
}

// Compile builds an execution plan for net. It fails if a layer neither
// implements nn.BatchInfer nor marks itself as an inference passthrough —
// such a network has no batched inference semantics.
func Compile(net *nn.Network, opts Options) (*Engine, error) {
	e := &Engine{net: net, inDim: net.InDim(), pool: opts.Pool}
	if e.pool == nil {
		e.pool = tensor.SharedPool()
	}
	e.chunks = opts.Workers
	if e.chunks <= 0 {
		e.chunks = e.pool.Workers()
	}
	shape := []int{net.InDim()}
	vol := net.InDim()
	for _, l := range net.Layers() {
		outShape := l.OutputShape(shape)
		outVol := volume(outShape)
		if isPassthrough(l) {
			shape, vol = outShape, outVol
			continue
		}
		bl, ok := l.(nn.BatchInfer)
		if !ok {
			return nil, fmt.Errorf("engine: layer %q (%T) has no batched inference path", l.Name(), l)
		}
		s := &step{layer: l, bl: bl, inVol: vol, outVol: outVol, scratchLen: bl.InferScratch()}
		s.scratch = make([][]float64, e.chunks)
		for c := range s.scratch {
			s.scratch[c] = make([]float64, s.scratchLen)
		}
		s.body = func(chunk, lo, hi int) {
			s.bl.ForwardBatchRange(s.out, s.in, lo, hi, s.scratch[chunk])
		}
		e.steps = append(e.steps, s)
		shape, vol = outShape, outVol
	}
	e.outVol = vol
	e.counter = opts.Counter
	if e.counter == nil {
		e.counter = reram.NewCounter()
	}
	costCfg := opts.CostModel
	if costCfg.TileRows <= 0 || costCfg.TileCols <= 0 {
		costCfg = reram.DefaultConfig()
	}
	for _, s := range e.steps {
		e.perSample.Add(reram.ModelLayerCost(s.layer, s.inVol, s.outVol, costCfg))
	}
	if opts.MaxBatch > 0 {
		e.setBatch(opts.MaxBatch)
	}
	return e, nil
}

// MustCompile is Compile for statically known-good networks; it panics on
// error.
func MustCompile(net *nn.Network, opts Options) *Engine {
	e, err := Compile(net, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Network returns the network the engine is currently bound to.
func (e *Engine) Network() *nn.Network { return e.net }

// InDim returns the flattened per-sample input size.
func (e *Engine) InDim() int { return e.inDim }

// OutDim returns the flattened per-sample output size.
func (e *Engine) OutDim() int { return e.outVol }

// PlanCost returns the modeled per-sample hardware cost of the compiled
// plan (see Options.CostModel). Rebind does not change it: the plan's
// architecture — the only cost input — is invariant across rebinds.
func (e *Engine) PlanCost() reram.Cost { return e.perSample }

// Counter returns the counter the plan charges; never nil.
func (e *Engine) Counter() *reram.Counter { return e.counter }

// Rebind points the compiled plan at another network with the same
// architecture (typically a clone of the original with different weights:
// a fault model, a refreshed crossbar readout). Workspaces, views and
// precompiled bodies are all reused — only the layer bindings swap. It
// returns an error, leaving the engine untouched, if net's layer stack does
// not match the plan; callers then fall back to a fresh Compile.
func (e *Engine) Rebind(net *nn.Network) error {
	if net == e.net {
		return nil
	}
	if net.InDim() != e.inDim {
		return fmt.Errorf("engine: rebind input dim %d != %d", net.InDim(), e.inDim)
	}
	pending := make([]nn.BatchInfer, 0, len(e.steps))
	shape := []int{net.InDim()}
	vol := net.InDim()
	si := 0
	for _, l := range net.Layers() {
		outShape := l.OutputShape(shape)
		outVol := volume(outShape)
		if isPassthrough(l) {
			shape, vol = outShape, outVol
			continue
		}
		bl, ok := l.(nn.BatchInfer)
		if !ok {
			return fmt.Errorf("engine: rebind layer %q (%T) has no batched inference path", l.Name(), l)
		}
		if si >= len(e.steps) {
			return fmt.Errorf("engine: rebind network has more compute layers than the plan (%d)", len(e.steps))
		}
		s := e.steps[si]
		if fmt.Sprintf("%T", l) != fmt.Sprintf("%T", s.layer) ||
			s.inVol != vol || s.outVol != outVol || s.scratchLen != bl.InferScratch() {
			return fmt.Errorf("engine: rebind layer %q does not match compiled step %q", l.Name(), s.layer.Name())
		}
		pending = append(pending, bl)
		shape, vol = outShape, outVol
		si++
	}
	if si != len(e.steps) {
		return fmt.Errorf("engine: rebind network has %d compute layers, plan has %d", si, len(e.steps))
	}
	for i, s := range e.steps {
		s.bl = pending[i]
		s.layer = s.bl.(nn.Layer)
	}
	e.net = net
	return nil
}

// setBatch sizes workspaces and rebuilds the (n, vol) views. Buffers grow
// when n exceeds the current capacity; view headers are rebuilt only when n
// changes, so a steady stream of same-size batches allocates nothing.
func (e *Engine) setBatch(n int) {
	if n > e.capN {
		for _, s := range e.steps {
			s.buf = make([]float64, n*s.outVol)
		}
		e.capN = n
		e.curN = 0
	}
	if n == e.curN {
		return
	}
	for _, s := range e.steps {
		s.out = tensor.FromSlice(s.buf[:n*s.outVol], n, s.outVol)
	}
	e.curN = n
}

// ForwardBatch runs the (N, inDim) batch x through the plan and returns the
// (N, outDim) logits. When dst is non-nil the logits are copied into it and
// dst is returned; when dst is nil the engine's internal output view is
// returned, valid until the next call. Either way the computation happens in
// the preallocated workspaces: the steady state (same batch size, dst nil)
// performs no allocations.
func (e *Engine) ForwardBatch(dst, x *tensor.Tensor) *tensor.Tensor {
	tensor.AssertDims("engine.ForwardBatch x", x, tensor.Wildcard, e.inDim)
	n := x.Dim(0)
	e.setBatch(n)
	e.counter.Charge(e.perSample.Scale(uint64(n)))
	cur := x
	for _, s := range e.steps {
		s.in = cur
		if e.chunks <= 1 || n == 1 {
			s.body(0, 0, n)
		} else {
			e.pool.RunWith(&e.wg, n, e.chunks, s.body)
		}
		cur = s.out
	}
	if dst == nil {
		return cur
	}
	tensor.AssertDims("engine.ForwardBatch dst", dst, n, e.outVol)
	copy(dst.Data(), cur.Data())
	return dst
}

// Probs runs ForwardBatch and applies the row-wise softmax, returning the
// (N, outDim) confidence batch in a reused internal buffer (valid until the
// next call). Its method value satisfies the monitor's Infer signature, which
// is how a monitor Check feeds all M patterns through the accelerator model
// in one allocation-free call.
func (e *Engine) Probs(x *tensor.Tensor) *tensor.Tensor {
	logits := e.ForwardBatch(nil, x)
	n := logits.Dim(0)
	if need := n * e.outVol; need > cap(e.probsBuf) {
		e.probsBuf = make([]float64, need)
		e.probsN = 0
	}
	if n != e.probsN {
		e.probs = tensor.FromSlice(e.probsBuf[:n*e.outVol], n, e.outVol)
		e.probsN = n
	}
	copy(e.probs.Data(), logits.Data())
	nn.SoftmaxInPlace(e.probs)
	return e.probs
}

// ProbsInto runs ForwardBatch and applies the row-wise softmax, writing the
// (N, outDim) confidence batch into dst and returning it. Unlike Probs the
// result does not alias any engine workspace, so the caller owns it outright
// — this is the snapshot primitive that lets one compiled plan serve
// multiple consumers (see Shared).
func (e *Engine) ProbsInto(dst, x *tensor.Tensor) *tensor.Tensor {
	logits := e.ForwardBatch(nil, x)
	n := logits.Dim(0)
	tensor.AssertDims("engine.ProbsInto dst", dst, n, e.outVol)
	copy(dst.Data(), logits.Data())
	nn.SoftmaxInPlace(dst)
	return dst
}

// Predict returns the argmax class per sample, matching nn.Network.Predict.
func (e *Engine) Predict(x *tensor.Tensor) []int {
	logits := e.ForwardBatch(nil, x)
	n := logits.Dim(0)
	k := e.outVol
	ld := logits.Data()
	out := make([]int, n)
	for s := 0; s < n; s++ {
		row := ld[s*k : (s+1)*k]
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[s] = bi
	}
	return out
}

// Accuracy evaluates top-1 accuracy on inputs x with labels y in batches of
// batchSize, mirroring nn.Network.Accuracy (same batching, same argmax
// tie-breaking) so engine-backed fidelity probes report identical numbers.
func (e *Engine) Accuracy(x *tensor.Tensor, y []int, batchSize int) float64 {
	nb := x.Dim(0)
	if nb == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	correct := 0
	for s := 0; s < nb; s += batchSize {
		end := s + batchSize
		if end > nb {
			end = nb
		}
		batch := tensor.FromSlice(x.Data()[s*e.inDim:end*e.inDim], end-s, e.inDim)
		for i, p := range e.Predict(batch) {
			if p == y[s+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(nb)
}

// isPassthrough reports whether the layer is elided from inference plans.
func isPassthrough(l nn.Layer) bool {
	p, ok := l.(nn.InferencePassthrough)
	return ok && p.InferencePassthrough()
}

func volume(shape []int) int {
	v := 1
	for _, d := range shape {
		v *= d
	}
	return v
}
