package engine

import (
	"strings"
	"sync"
	"testing"

	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// TestSharedConcurrentCallersBitIdentical: one compiled plan behind a Shared
// wrapper, hammered by concurrent goroutines with different batches — every
// caller must get exactly the confidences a private engine would have
// produced for its batch, because results are copied out of the shared
// workspaces before the plan lock is released. Run under -race this is also
// the locking regression test for serve's per-device plan reuse.
func TestSharedConcurrentCallersBitIdentical(t *testing.T) {
	r := rng.New(11)
	net := models.MLP(r, 16, []int{24, 16}, 6)
	shared := NewShared(MustCompile(net, Options{}))

	const workers, iters = 8, 50
	batches := make([]*tensor.Tensor, workers)
	want := make([]*tensor.Tensor, workers)
	for w := range batches {
		n := 1 + w%4 // mixed batch sizes stress the workspace resizing path
		batches[w] = tensor.RandUniform(rng.New(int64(100+w)), 0, 1, n, 16)
		// golden per-batch answer from a private, serial engine
		want[w] = MustCompile(net, Options{}).Probs(batches[w]).Clone()
	}

	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := tensor.New(batches[w].Dim(0), 6)
			for i := 0; i < iters; i++ {
				var got *tensor.Tensor
				if i%2 == 0 {
					got = shared.Probs(batches[w])
				} else {
					got = shared.ProbsInto(dst, batches[w])
				}
				if !got.Equal(want[w]) {
					errs <- "shared engine returned confidences from someone else's batch"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// seedModels enumerates every architecture the repo ships. The golden
// equivalence gate below runs each one through the engine and demands exact
// float64 equality against the per-sample training-path forward — this is the
// contract that lets the monitor, detect and fleet layers adopt the batched
// readout without moving a single distance metric or journal fingerprint.
func seedModels() []struct {
	name  string
	build func(r *rng.RNG) *nn.Network
} {
	return []struct {
		name  string
		build func(r *rng.RNG) *nn.Network
	}{
		{"lenet5", models.LeNet5},
		{"convnet7", models.ConvNet7},
		{"mlp", func(r *rng.RNG) *nn.Network {
			return models.MLP(r, 16, []int{24, 16}, 6)
		}},
		{"mlp-deep", func(r *rng.RNG) *nn.Network {
			return models.MLP(r, 32, []int{40, 32, 20}, 8)
		}},
		{"dropout-flatten", func(r *rng.RNG) *nn.Network {
			// exercises both passthrough elisions plus tanh/sigmoid kernels
			return nn.NewNetwork("dp", 12,
				nn.NewDense("fc1", r, 12, 20),
				nn.NewTanh("t1"),
				nn.NewDropout("drop", r, 0.5),
				nn.NewFlatten("flat"),
				nn.NewDense("fc2", r, 20, 10),
				nn.NewSigmoid("s1"),
				nn.NewDense("fc3", r, 10, 4),
			)
		}},
	}
}

// mustForward runs ForwardBatch and fails the test on error; the suites here
// never send empty batches.
func mustForward(t testing.TB, eng *Engine, dst, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out, err := eng.ForwardBatch(dst, x)
	if err != nil {
		t.Fatalf("ForwardBatch: %v", err)
	}
	return out
}

// serialForward is the reference path: one sample at a time through the
// training-path Network.Forward, reassembled into a batch.
func serialForward(net *nn.Network, x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	in := x.Len() / n
	var out *tensor.Tensor
	for s := 0; s < n; s++ {
		row := tensor.FromSlice(x.Data()[s*in:(s+1)*in], 1, in)
		y := net.Forward(row)
		if out == nil {
			out = tensor.New(n, y.Len())
		}
		copy(out.Data()[s*y.Len():], y.Data())
	}
	return out
}

// TestEngineGoldenEquivalence is the table-driven bit-identity gate over all
// seed models, for serial and pooled engines and several batch sizes
// (including re-running the same engine at a different size, which exercises
// the workspace-view rebuild).
func TestEngineGoldenEquivalence(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	for _, m := range seedModels() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			net := m.build(rng.New(11))
			batches := []int{1, 3, 7}
			if strings.HasPrefix(m.name, "mlp") || m.name == "dropout-flatten" {
				batches = []int{1, 3, 7, 64}
			}
			configs := []struct {
				label string
				opts  Options
			}{
				{"serial", Options{Workers: 1}},
				{"pool4", Options{Pool: pool}},
			}
			for _, cfg := range configs {
				eng, err := Compile(net, cfg.opts)
				if err != nil {
					t.Fatalf("%s: compile: %v", cfg.label, err)
				}
				for _, n := range batches {
					x := tensor.RandUniform(rng.New(int64(100+n)), 0, 1, n, net.InDim())
					want := serialForward(net, x)
					got := mustForward(t, eng, nil, x)
					if !got.Equal(want) {
						t.Fatalf("%s n=%d: batched forward is not bit-identical to serial", cfg.label, n)
					}
					// dst-passing variant must produce the same bits too
					dst := tensor.New(n, eng.OutDim())
					mustForward(t, eng, dst, x)
					if !dst.Equal(want) {
						t.Fatalf("%s n=%d: dst-passing forward differs", cfg.label, n)
					}
					// Probs must match the training-path softmax exactly
					wantP := nn.Softmax(want)
					if !eng.Probs(x).Equal(wantP) {
						t.Fatalf("%s n=%d: Probs differs from nn.Softmax(Forward)", cfg.label, n)
					}
				}
			}
		})
	}
}

// TestEnginePredictAccuracyParity: the convenience evaluators must agree with
// their nn.Network counterparts sample for sample.
func TestEnginePredictAccuracyParity(t *testing.T) {
	net := models.MLP(rng.New(21), 16, []int{24, 16}, 6)
	eng := MustCompile(net, Options{Workers: 1})
	x := tensor.RandUniform(rng.New(22), 0, 1, 150, 16)
	wantPred := net.Predict(x)
	gotPred := eng.Predict(x)
	for i := range wantPred {
		if gotPred[i] != wantPred[i] {
			t.Fatalf("sample %d: engine predicted %d, network %d", i, gotPred[i], wantPred[i])
		}
	}
	y := make([]int, 150)
	for i := range y {
		y[i] = i % 6
	}
	if got, want := eng.Accuracy(x, y, 64), net.Accuracy(x, y, 64); got != want {
		t.Fatalf("accuracy: engine %v, network %v", got, want)
	}
	if got, want := eng.Accuracy(x, y, 0), net.Accuracy(x, y, 64); got != want {
		t.Fatalf("accuracy default batch: engine %v, network %v", got, want)
	}
}

// TestEngineRebind: swapping an architecturally identical clone in must reuse
// the plan and track the clone's weights; mismatched networks must be
// rejected with the engine left intact.
func TestEngineRebind(t *testing.T) {
	net := models.MLP(rng.New(31), 16, []int{24, 16}, 6)
	eng := MustCompile(net, Options{Workers: 1})
	x := tensor.RandUniform(rng.New(32), 0, 1, 9, 16)
	base := mustForward(t, eng, nil, x).Clone()

	clone := net.Clone()
	for _, p := range clone.Params() {
		p.Value.ScaleInPlace(1.5)
	}
	if err := eng.Rebind(clone); err != nil {
		t.Fatalf("rebind clone: %v", err)
	}
	if eng.Network() != clone {
		t.Fatal("Network() does not report the rebound net")
	}
	got := mustForward(t, eng, nil, x)
	if !got.Equal(serialForward(clone, x)) {
		t.Fatal("rebound engine is not bit-identical to the clone's forward")
	}
	if got.Equal(base) {
		t.Fatal("rebound engine still produces the original network's output")
	}

	// restore, then verify rejection paths leave the binding untouched
	if err := eng.Rebind(net); err != nil {
		t.Fatalf("rebind original: %v", err)
	}
	other := models.MLP(rng.New(33), 16, []int{25, 16}, 6)
	if err := eng.Rebind(other); err == nil {
		t.Fatal("rebind accepted a mismatched architecture")
	}
	wider := models.MLP(rng.New(34), 17, []int{24, 16}, 6)
	if err := eng.Rebind(wider); err == nil {
		t.Fatal("rebind accepted a mismatched input dim")
	}
	deeper := models.MLP(rng.New(35), 16, []int{24, 16, 8}, 6)
	if err := eng.Rebind(deeper); err == nil {
		t.Fatal("rebind accepted a deeper network")
	}
	if !mustForward(t, eng, nil, x).Equal(base) {
		t.Fatal("failed rebinds perturbed the engine")
	}
}

// TestEngineCompileRejectsUnbatchable: a layer without a batched kernel must
// fail compilation with a useful error, not silently fall back.
func TestEngineCompileRejectsUnbatchable(t *testing.T) {
	net := nn.NewNetwork("odd", 4, &unbatchable{})
	if _, err := Compile(net, Options{}); err == nil ||
		!strings.Contains(err.Error(), "no batched inference path") {
		t.Fatalf("compile error = %v, want unbatchable-layer error", err)
	}
}

// unbatchable is a Layer with neither a BatchInfer kernel nor a passthrough
// marker.
type unbatchable struct{}

func (u *unbatchable) Name() string                             { return "unbatchable" }
func (u *unbatchable) Forward(x *tensor.Tensor) *tensor.Tensor  { return x }
func (u *unbatchable) Backward(g *tensor.Tensor) *tensor.Tensor { return g }
func (u *unbatchable) Params() []*nn.Param                      { return nil }
func (u *unbatchable) Clone() nn.Layer                          { return &unbatchable{} }
func (u *unbatchable) OutputShape(in []int) []int               { return in }

// TestEngineSteadyStateAllocFree: after warmup, same-size batches must not
// allocate — serial and pooled — which is the property the bench-smoke gate
// enforces on the default monitor model.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	net := models.MLP(rng.New(41), 16, []int{24, 16}, 6)
	x := tensor.RandUniform(rng.New(42), 0, 1, 16, 16)
	pool := tensor.NewPool(4)
	defer pool.Close()
	for _, cfg := range []struct {
		label string
		opts  Options
	}{
		{"serial", Options{Workers: 1, MaxBatch: 16}},
		{"pool4", Options{Pool: pool, MaxBatch: 16}},
	} {
		eng := MustCompile(net, cfg.opts)
		eng.Probs(x) // warmup: builds views and probs buffer
		if allocs := testing.AllocsPerRun(50, func() { eng.Probs(x) }); allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", cfg.label, allocs)
		}
	}
}

// TestEnginesShareOnePool drives several engines over one pool concurrently
// (the fleet topology); run under -race via the Makefile race target.
func TestEnginesShareOnePool(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	net := models.MLP(rng.New(51), 16, []int{24, 16}, 6)
	x := tensor.RandUniform(rng.New(52), 0, 1, 12, 16)
	want := serialForward(net, x)
	done := make(chan error, 6)
	for g := 0; g < 6; g++ {
		go func() {
			eng := MustCompile(net.Clone(), Options{Pool: pool})
			for iter := 0; iter < 40; iter++ {
				out, err := eng.ForwardBatch(nil, x)
				if err != nil || !out.Equal(want) {
					done <- errDiverged
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 6; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errDiverged = errorString("concurrent engine diverged from serial forward")

type errorString string

func (e errorString) Error() string { return string(e) }
