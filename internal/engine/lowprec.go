// Fast-tier plans: the float32 pipeline and the int8 quantized pipeline.
// Both keep the engine's workspace discipline — everything sized at compile
// or first batch, nothing allocated per call — and both snapshot parameters
// into converted caches at compile/rebind (or ReloadParams) rather than
// reading the f64 masters on the hot path.
//
// F32: the input batch is narrowed once, every step runs the nn.BatchInferF32
// kernels over bare float32 workspaces, and the final activation is widened
// once into an f64 view so downstream consumers (softmax, monitor scoring,
// serve) are tier-blind. A Dense step whose successor is a ReLU fuses the
// activation into the dense kernel's epilogue and elides the ReLU step —
// numerically identical to running it separately, one whole workspace pass
// cheaper.
//
// I8: dense layers run as quantized stages (per-row affine int8 activations
// against per-column int8 weights, int32 accumulation, f64 dequantization —
// the digital twin of the reram DAC→crossbar→ADC path); every other layer
// runs its ordinary f64 BatchInfer step, so inter-stage activations stay
// float64 and the plan accepts any network the F64 tier accepts, as long as
// its dense layers fit the int8 accumulator (tensor.MaxI8K).
package engine

import (
	"fmt"

	"reramtest/internal/nn"
	"reramtest/internal/tensor"
)

// stepF32 is one compiled float32 compute layer.
type stepF32 struct {
	layer      nn.Layer
	bl         nn.BatchInferF32
	dense      *nn.Dense // non-nil for the fused dense kernel
	fusedRelu  bool      // dense step absorbed the following ReLU
	inVol      int
	outVol     int
	scratchLen int
	params     []float32 // converted-parameter cache
	buf        []float32 // output workspace, cap >= capN*outVol
	scratch    [][]float32
	in         []float32 // input slice, set each ForwardBatch
	n          int       // current batch size, set each ForwardBatch
	body       func(chunk, lo, hi int)
}

// f32Plan is the float32 pipeline: narrowed input, f32 steps, widened output.
type f32Plan struct {
	steps  []*stepF32
	inBuf  []float32      // narrowed input batch, cap >= capN*inDim
	outBuf []float64      // widened output batch, cap >= capN*outVol
	out    *tensor.Tensor // (curN, outVol) view of outBuf
}

// compileF32 builds the float32 plan with the dense+ReLU peephole.
func (e *Engine) compileF32(specs []layerSpec) error {
	p := &f32Plan{}
	for i := 0; i < len(specs); i++ {
		sp := specs[i]
		bl, ok := sp.layer.(nn.BatchInferF32)
		if !ok {
			return fmt.Errorf("engine: layer %q (%T) has no float32 inference path; PrecisionF32 needs nn.BatchInferF32 on every compute layer", sp.layer.Name(), sp.layer)
		}
		s := &stepF32{layer: sp.layer, bl: bl, inVol: sp.inVol, outVol: sp.outVol, scratchLen: bl.InferScratchF32()}
		if d, isDense := sp.layer.(*nn.Dense); isDense {
			s.dense = d
			if i+1 < len(specs) {
				if _, isReLU := specs[i+1].layer.(*nn.ReLU); isReLU {
					s.fusedRelu = true
					i++ // the ReLU is the dense kernel's epilogue now
				}
			}
		}
		s.params = make([]float32, bl.InferParamsF32())
		bl.LoadParamsF32(s.params)
		s.scratch = make([][]float32, e.chunks)
		for c := range s.scratch {
			s.scratch[c] = make([]float32, s.scratchLen)
		}
		s.body = func(chunk, lo, hi int) {
			dst := s.buf[:s.n*s.outVol]
			if s.dense != nil {
				s.dense.ForwardBatchRangeF32Fused(dst, s.in, s.n, lo, hi, s.params, s.fusedRelu)
			} else {
				s.bl.ForwardBatchRangeF32(dst, s.in, s.n, s.inVol, s.outVol, lo, hi, s.params, s.scratch[chunk])
			}
		}
		p.steps = append(p.steps, s)
	}
	e.f32 = p
	return nil
}

// rebindF32 swaps the float32 step bindings and reloads the converted caches.
func (e *Engine) rebindF32(specs []layerSpec) error {
	want := e.f32.steps
	type bind struct {
		bl    nn.BatchInferF32
		dense *nn.Dense
	}
	pending := make([]bind, len(want))
	si := 0
	for i := 0; i < len(specs); i++ {
		sp := specs[i]
		if si >= len(want) {
			return fmt.Errorf("engine: rebind network has more compute layers than the f32 plan (%d)", len(want))
		}
		s := want[si]
		bl, ok := sp.layer.(nn.BatchInferF32)
		if !ok {
			return fmt.Errorf("engine: rebind layer %q (%T) has no float32 inference path", sp.layer.Name(), sp.layer)
		}
		if fmt.Sprintf("%T", sp.layer) != fmt.Sprintf("%T", s.layer) ||
			s.inVol != sp.inVol || s.outVol != sp.outVol ||
			s.scratchLen != bl.InferScratchF32() || len(s.params) != bl.InferParamsF32() {
			return fmt.Errorf("engine: rebind layer %q does not match compiled f32 step %q", sp.layer.Name(), s.layer.Name())
		}
		b := bind{bl: bl}
		if d, isDense := sp.layer.(*nn.Dense); isDense {
			b.dense = d
			if s.fusedRelu {
				if i+1 >= len(specs) {
					return fmt.Errorf("engine: rebind network is missing the ReLU fused into step %q", s.layer.Name())
				}
				if _, isReLU := specs[i+1].layer.(*nn.ReLU); !isReLU {
					return fmt.Errorf("engine: rebind layer %q (%T) where the f32 plan fused a ReLU", specs[i+1].layer.Name(), specs[i+1].layer)
				}
				i++
			}
		} else if s.dense != nil {
			return fmt.Errorf("engine: rebind layer %q does not match compiled f32 dense step %q", sp.layer.Name(), s.layer.Name())
		}
		pending[si] = b
		si++
	}
	if si != len(want) {
		return fmt.Errorf("engine: rebind network has %d compute layers, f32 plan has %d", si, len(want))
	}
	for i, s := range want {
		s.bl = pending[i].bl
		s.dense = pending[i].dense
		s.layer = s.bl.(nn.Layer)
		s.bl.LoadParamsF32(s.params)
	}
	return nil
}

func (e *Engine) setBatchF32(n int) {
	p := e.f32
	if n > e.capN {
		p.inBuf = make([]float32, n*e.inDim)
		for _, s := range p.steps {
			s.buf = make([]float32, n*s.outVol)
		}
		p.outBuf = make([]float64, n*e.outVol)
		e.capN = n
		e.curN = 0
	}
	if n == e.curN {
		return
	}
	p.out = tensor.FromSlice(p.outBuf[:n*e.outVol], n, e.outVol)
	e.curN = n
}

// forwardF32 narrows the batch, runs the f32 steps, widens the result.
func (e *Engine) forwardF32(x *tensor.Tensor, n int) *tensor.Tensor {
	p := e.f32
	tensor.ConvertF64ToF32(p.inBuf[:n*e.inDim], x.Data())
	cur := p.inBuf[:n*e.inDim]
	for _, s := range p.steps {
		s.in = cur
		s.n = n
		if e.chunks <= 1 || n == 1 {
			s.body(0, 0, n)
		} else {
			e.pool.RunWith(&e.wg, n, e.chunks, s.body)
		}
		cur = s.buf[:n*s.outVol]
	}
	tensor.ConvertF32ToF64(p.outBuf[:n*e.outVol], cur)
	return p.out
}

// stepI8 is one quantized dense stage.
type stepI8 struct {
	dense   *nn.Dense
	in, out int
	// weight-side caches, refreshed at compile/rebind/ReloadParams
	wqT    []int8  // (out, in) transposed quantized weights
	sw     []float64
	rowSum []int32
	bias   []float64
	// per-batch activation workspaces
	xq   []int8               // (capN, in) quantized input rows
	rq   []tensor.RowQuantI8  // per-row affine codes
	buf  []float64            // (capN, out) dequantized output
	outT *tensor.Tensor       // (curN, out) view of buf
	inT  *tensor.Tensor       // f64 input view, set each ForwardBatch
	body func(chunk, lo, hi int)
}

// i8Stage is one stage of the quantized plan: exactly one of gen (an
// ordinary f64 BatchInfer step) or q (a quantized dense stage) is set.
type i8Stage struct {
	gen *step
	q   *stepI8
}

// compileI8 builds the mixed quantized plan.
func (e *Engine) compileI8(specs []layerSpec) error {
	for _, sp := range specs {
		if d, isDense := sp.layer.(*nn.Dense); isDense {
			if d.In() > tensor.MaxI8K {
				return fmt.Errorf("engine: dense layer %q is %d wide; the int8 accumulator caps at %d (tensor.MaxI8K)", d.Name(), d.In(), tensor.MaxI8K)
			}
			q := newI8Step(d)
			e.i8 = append(e.i8, i8Stage{q: q})
			continue
		}
		s, err := e.newF64Step(sp)
		if err != nil {
			return err
		}
		e.i8 = append(e.i8, i8Stage{gen: s})
	}
	return nil
}

func newI8Step(d *nn.Dense) *stepI8 {
	q := &stepI8{dense: d, in: d.In(), out: d.Out()}
	q.wqT = make([]int8, q.in*q.out)
	q.sw = make([]float64, q.out)
	q.rowSum = make([]int32, q.out)
	q.bias = make([]float64, q.out)
	q.loadParams()
	q.body = func(_, lo, hi int) { q.run(lo, hi) }
	return q
}

// loadParams requantizes the weight columns and snapshots the bias from the
// bound dense layer's f64 masters.
func (q *stepI8) loadParams() {
	params := q.dense.Params()
	tensor.QuantizeWeightsI8(q.wqT, q.sw, q.rowSum, params[0].Value.Data(), q.in, q.out)
	copy(q.bias, params[1].Value.Data())
}

// run quantizes input rows [lo, hi) and computes their dequantized outputs.
// Rows are independent — quantization parameters are per row — so any chunk
// partition produces identical results.
func (q *stepI8) run(lo, hi int) {
	xd := q.inT.Data()
	for i := lo; i < hi; i++ {
		xrow := xd[i*q.in : (i+1)*q.in]
		qrow := q.xq[i*q.in : (i+1)*q.in]
		rq := tensor.QuantizeRowI8(qrow, xrow)
		q.rq[i] = rq
		drow := q.buf[i*q.out : (i+1)*q.out]
		for j := 0; j < q.out; j++ {
			acc := tensor.DotI8(qrow, q.wqT[j*q.in:(j+1)*q.in])
			drow[j] = tensor.DequantI8(acc, rq, q.sw[j], q.bias[j], q.rowSum[j])
		}
	}
}

// rebindI8 swaps the stage bindings and requantizes the weight caches.
func (e *Engine) rebindI8(specs []layerSpec) error {
	if len(specs) != len(e.i8) {
		return fmt.Errorf("engine: rebind network has %d compute layers, i8 plan has %d", len(specs), len(e.i8))
	}
	type bind struct {
		bl    nn.BatchInfer
		dense *nn.Dense
	}
	pending := make([]bind, len(specs))
	for i, sp := range specs {
		st := e.i8[i]
		if d, isDense := sp.layer.(*nn.Dense); isDense {
			if st.q == nil || st.q.in != d.In() || st.q.out != d.Out() {
				return fmt.Errorf("engine: rebind dense layer %q does not match i8 plan stage %d", d.Name(), i)
			}
			pending[i] = bind{dense: d}
			continue
		}
		if st.gen == nil {
			return fmt.Errorf("engine: rebind layer %q (%T) where the i8 plan has a quantized dense stage", sp.layer.Name(), sp.layer)
		}
		s := st.gen
		bl, ok := sp.layer.(nn.BatchInfer)
		if !ok {
			return fmt.Errorf("engine: rebind layer %q (%T) has no batched inference path", sp.layer.Name(), sp.layer)
		}
		if fmt.Sprintf("%T", sp.layer) != fmt.Sprintf("%T", s.layer) ||
			s.inVol != sp.inVol || s.outVol != sp.outVol || s.scratchLen != bl.InferScratch() {
			return fmt.Errorf("engine: rebind layer %q does not match compiled step %q", sp.layer.Name(), s.layer.Name())
		}
		pending[i] = bind{bl: bl}
	}
	for i, st := range e.i8 {
		if st.q != nil {
			st.q.dense = pending[i].dense
			st.q.loadParams()
			continue
		}
		st.gen.bl = pending[i].bl
		st.gen.layer = st.gen.bl.(nn.Layer)
	}
	return nil
}

func (e *Engine) setBatchI8(n int) {
	if n > e.capN {
		for _, st := range e.i8 {
			if st.gen != nil {
				st.gen.buf = make([]float64, n*st.gen.outVol)
				continue
			}
			st.q.xq = make([]int8, n*st.q.in)
			st.q.rq = make([]tensor.RowQuantI8, n)
			st.q.buf = make([]float64, n*st.q.out)
		}
		e.capN = n
		e.curN = 0
	}
	if n == e.curN {
		return
	}
	for _, st := range e.i8 {
		if st.gen != nil {
			st.gen.out = tensor.FromSlice(st.gen.buf[:n*st.gen.outVol], n, st.gen.outVol)
		} else {
			st.q.outT = tensor.FromSlice(st.q.buf[:n*st.q.out], n, st.q.out)
		}
	}
	e.curN = n
}

// forwardI8 runs the mixed quantized pipeline; activations between stages
// stay float64.
func (e *Engine) forwardI8(x *tensor.Tensor, n int) *tensor.Tensor {
	cur := x
	for _, st := range e.i8 {
		if st.gen != nil {
			cur = e.runStep(st.gen, cur, n)
			continue
		}
		q := st.q
		q.inT = cur
		if e.chunks <= 1 || n == 1 {
			q.body(0, 0, n)
		} else {
			e.pool.RunWith(&e.wg, n, e.chunks, q.body)
		}
		cur = q.outT
	}
	return cur
}

// ReloadParams refreshes the fast tiers' parameter caches from the bound
// network's current f64 masters. The F64 tier reads live parameters and
// needs no reload; the fast tiers snapshot at Compile/Rebind, so callers
// that mutate weights in place under a live plan (crossbar refreshes,
// scrubs, fault sweeps) call this before the next ForwardBatch.
func (e *Engine) ReloadParams() {
	switch e.prec {
	case tensor.F32:
		for _, s := range e.f32.steps {
			s.bl.LoadParamsF32(s.params)
		}
	case tensor.I8:
		for _, st := range e.i8 {
			if st.q != nil {
				st.q.loadParams()
			}
		}
	}
}
