// Shared: one compiled plan, many goroutines. An Engine is a
// single-goroutine object — its per-layer workspaces are reused across
// calls, so two concurrent ForwardBatch calls would trample each other's
// activations. The serving frontend, however, wants the monitoring tick and
// inference requests to reuse ONE plan per device rather than compile (and
// allocate) a private plan per goroutine. Shared provides exactly that: a
// mutex serialises plan execution, and results are copied out of the
// workspaces *before* the lock is released, so a caller's batch can never be
// overwritten by whoever grabs the plan next.
//
// The cost is one (N, outDim) allocation + copy per call — for the
// concurrent-test workloads that is a few hundred float64s against a matmul
// stack thousands of times larger, and only the concurrent consumers pay it;
// single-owner paths (campaign plants inside their own tick, benchmarks)
// keep calling the zero-alloc Engine methods directly.
package engine

import (
	"sync"

	"reramtest/internal/tensor"
)

// Shared wraps a compiled Engine for concurrent use.
type Shared struct {
	mu sync.Mutex
	e  *Engine
}

// NewShared wraps e. The engine must not be used directly (unlocked) while
// the Shared wrapper is in circulation.
func NewShared(e *Engine) *Shared { return &Shared{e: e} }

// Probs runs the (N, inDim) batch x through the shared plan and returns a
// freshly allocated (N, outDim) softmax confidence batch owned by the
// caller. Its method value satisfies monitor.Infer, like Engine.Probs.
func (s *Shared) Probs(x *tensor.Tensor) *tensor.Tensor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.ProbsInto(tensor.New(x.Dim(0), s.e.OutDim()), x)
}

// ProbsInto is Probs with a caller-supplied destination — the allocation-free
// variant for callers that pool their own response buffers.
func (s *Shared) ProbsInto(dst, x *tensor.Tensor) *tensor.Tensor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.ProbsInto(dst, x)
}

// WithEngine runs f with exclusive access to the underlying engine — the
// escape hatch for rebinds and other plan surgery that must not interleave
// with inference.
func (s *Shared) WithEngine(f func(e *Engine) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f(s.e)
}
