package engine

import (
	"testing"

	"reramtest/internal/models"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// TestEngineChargesPerSample: a compiled plan charges exactly
// PlanCost × batch size per forward pass, into the class the counter's owner
// selected.
func TestEngineChargesPerSample(t *testing.T) {
	net := models.MLP(rng.New(41), 16, []int{24, 16}, 6)
	ctr := reram.NewCounter()
	eng := MustCompile(net, Options{Counter: ctr})
	if eng.Counter() != ctr {
		t.Fatal("engine ignored the supplied counter")
	}
	per := eng.PlanCost()
	if per.IsZero() || per.DACConversions == 0 || per.CrossbarReads == 0 {
		t.Fatalf("implausible plan cost %+v", per)
	}

	x := tensor.RandUniform(rng.New(42), 0, 1, 5, 16)
	eng.ForwardBatch(nil, x)
	if got := ctr.Snapshot().Serving; got != per.Scale(5) {
		t.Fatalf("5-sample batch charged %+v, want %+v", got, per.Scale(5))
	}

	prev := ctr.SetClass(reram.ClassMonitor)
	eng.Probs(tensor.FromSlice(x.Data()[:2*16], 2, 16))
	ctr.SetClass(prev)
	snap := ctr.Snapshot()
	if snap.Monitor != per.Scale(2) {
		t.Fatalf("monitor-class batch charged %+v, want %+v", snap.Monitor, per.Scale(2))
	}
	if snap.Serving != per.Scale(5) {
		t.Fatal("monitor-class batch leaked into serving")
	}
}

// TestRebindPreservesCost is the Rebind accounting regression: re-binding a
// plan to refreshed parameters (the fault-model sweep's per-round readout
// swap) must neither reset the cumulative counter nor re-charge work already
// accounted — spend accrued before the swap survives, and the per-sample rate
// after the swap is unchanged.
func TestRebindPreservesCost(t *testing.T) {
	net := models.MLP(rng.New(51), 16, []int{24, 16}, 6)
	eng := MustCompile(net, Options{})
	ctr := eng.Counter() // default: engine made its own
	per := eng.PlanCost()
	x := tensor.RandUniform(rng.New(52), 0, 1, 3, 16)

	eng.ForwardBatch(nil, x)
	before := ctr.Snapshot()
	if before.Total() != per.Scale(3) {
		t.Fatalf("pre-rebind charge %+v, want %+v", before.Total(), per.Scale(3))
	}

	clone := net.Clone()
	for _, p := range clone.Params() {
		p.Value.ScaleInPlace(0.5)
	}
	if err := eng.Rebind(clone); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	if eng.Counter() != ctr {
		t.Fatal("rebind swapped the counter")
	}
	if got := ctr.Snapshot(); got != before {
		t.Fatalf("rebind itself charged or reset: %+v vs %+v", got, before)
	}
	if eng.PlanCost() != per {
		t.Fatal("rebind changed the per-sample plan cost of an identical architecture")
	}

	// a failed rebind must also leave the meter untouched
	if err := eng.Rebind(models.MLP(rng.New(53), 16, []int{25, 16}, 6)); err == nil {
		t.Fatal("rebind accepted a mismatched architecture")
	}
	if got := ctr.Snapshot(); got != before {
		t.Fatal("rejected rebind perturbed the meter")
	}

	eng.ForwardBatch(nil, x)
	if got := ctr.Snapshot().Total(); got != per.Scale(6) {
		t.Fatalf("post-rebind cumulative %+v, want %+v (no reset, no double-count)", got, per.Scale(6))
	}
}
