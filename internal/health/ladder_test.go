package health

import (
	"context"
	"errors"
	"testing"

	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/tensor"
)

// scriptedLadder is a StrategyRepairer whose rungs are scripted: damage
// clears only when the strategy named fixedBy applies cleanly, and rungs in
// failing error out of Apply.
type scriptedLadder struct {
	diag    repair.Diagnosis
	fixedBy string
	fixed   bool
	failing map[string]bool
	applied []string
}

func (s *scriptedLadder) Apply(repair.Action) (*nn.Network, error) {
	return nil, errors.New("scriptedLadder: legacy action path must not run")
}

func (s *scriptedLadder) Diagnose(monitor.Status) repair.Diagnosis { return s.diag }

func (s *scriptedLadder) rung(name string, cost int, when func(repair.Diagnosis) bool) repair.Strategy {
	return repair.Func{
		StrategyName: name, StrategyCost: cost, When: when,
		Do: func(ctx context.Context, _ repair.Diagnosis) (repair.Report, error) {
			s.applied = append(s.applied, name)
			if s.failing[name] {
				return repair.Report{}, &repair.Error{Strategy: name, Op: "apply", Err: errors.New("actuator offline")}
			}
			if name == s.fixedBy {
				s.fixed = true
			}
			return repair.Report{Strategy: name}, nil
		},
	}
}

func (s *scriptedLadder) Strategies() []repair.Strategy {
	return []repair.Strategy{
		s.rung("scrub", repair.CostScrub, func(d repair.Diagnosis) bool { return !d.Commissioning && d.Drifted > 0 }),
		s.rung("remap", repair.CostRemap, func(d repair.Diagnosis) bool { return !d.Commissioning && d.Stuck > 0 }),
		s.rung("retrain", repair.CostRetrain, func(d repair.Diagnosis) bool { return !d.Commissioning }),
	}
}

// ladderInfer reads Degraded until the scripted repair lands.
func ladderInfer(net *nn.Network, s *scriptedLadder) monitor.Infer {
	return func(x *tensor.Tensor) *tensor.Tensor {
		d := 0.04
		if s.fixed {
			d = 0
		}
		probs := nn.Softmax(net.Forward(x))
		probs.Apply(func(v float64) float64 { return v + d + 1e-9 })
		return probs
	}
}

func TestLadderEscalatesAndChargesCosts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	rt, net := testRuntime(t, cfg)
	sl := &scriptedLadder{diag: repair.Diagnosis{Drifted: 3, Stuck: 2}, fixedBy: "retrain"}

	ep := rt.SuperviseBudget(ladderInfer(net, sl), sl, 10)
	if !ep.Recovered || ep.GaveUp {
		t.Fatalf("ladder episode did not recover: %s", ep)
	}
	want := []string{"scrub", "remap", "retrain"}
	if len(sl.applied) != len(want) {
		t.Fatalf("applied %v, want %v", sl.applied, want)
	}
	for i := range want {
		if sl.applied[i] != want[i] {
			t.Fatalf("applied %v, want %v", sl.applied, want)
		}
	}
	if ep.CostSpent != repair.CostScrub+repair.CostRemap+repair.CostRetrain {
		t.Fatalf("CostSpent %d, want %d", ep.CostSpent, repair.CostScrub+repair.CostRemap+repair.CostRetrain)
	}
	if len(ep.Attempts) != 3 {
		t.Fatalf("attempts %d, want 3", len(ep.Attempts))
	}
	for i, a := range ep.Attempts {
		if a.Strategy != want[i] {
			t.Fatalf("attempt %d strategy %q, want %q", i, a.Strategy, want[i])
		}
	}
	if !ep.Attempts[2].Verified || ep.Attempts[0].Verified {
		t.Fatalf("verification flags wrong: %s", ep)
	}
	if rt.Confirmed() != monitor.Healthy {
		t.Fatalf("confirmed %s after verified ladder repair", rt.Confirmed())
	}
}

func TestLadderSkipsInapplicableRungs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	rt, net := testRuntime(t, cfg)
	// no drift: the scrub rung must never run
	sl := &scriptedLadder{diag: repair.Diagnosis{Stuck: 4}, fixedBy: "remap"}

	ep := rt.SuperviseBudget(ladderInfer(net, sl), sl, 10)
	if !ep.Recovered {
		t.Fatalf("episode did not recover: %s", ep)
	}
	if len(sl.applied) != 1 || sl.applied[0] != "remap" {
		t.Fatalf("applied %v, want [remap]", sl.applied)
	}
	if ep.CostSpent != repair.CostRemap {
		t.Fatalf("CostSpent %d, want %d", ep.CostSpent, repair.CostRemap)
	}
}

func TestLadderStopsBeforeOverspendingKeepsDeviceWhenCheapRungRemains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	rt, net := testRuntime(t, cfg)
	// drift only: scrub (cost 1) and retrain (cost 4) apply; nothing fixes
	sl := &scriptedLadder{diag: repair.Diagnosis{Drifted: 1}, fixedBy: ""}

	ep := rt.SuperviseBudget(ladderInfer(net, sl), sl, 3)
	if ep.Recovered || !ep.GaveUp {
		t.Fatalf("unfixable episode: %s", ep)
	}
	// scrub ran (cost 1); retrain at cost 4 exceeds the remaining 2 and must
	// NOT have been applied
	if len(sl.applied) != 1 || sl.applied[0] != "scrub" {
		t.Fatalf("applied %v, want [scrub]", sl.applied)
	}
	if ep.CostSpent != repair.CostScrub {
		t.Fatalf("CostSpent %d, want %d", ep.CostSpent, repair.CostScrub)
	}
	// a future episode can still afford a scrub: the device must not be
	// condemned yet
	if ep.RetireAdvised {
		t.Fatalf("retire advised while the cheapest applicable rung still fits: %s", ep)
	}
}

func TestLadderAdvisesRetirementWhenCheapestRungExceedsBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	rt, net := testRuntime(t, cfg)
	// stuck only: remap (cost 2) and retrain (cost 4) apply; nothing fixes
	sl := &scriptedLadder{diag: repair.Diagnosis{Stuck: 1}, fixedBy: ""}

	ep := rt.SuperviseBudget(ladderInfer(net, sl), sl, 3)
	if ep.Recovered || !ep.GaveUp {
		t.Fatalf("unfixable episode: %s", ep)
	}
	// remap ran (cost 2), leaving 1: no applicable rung fits ever again
	if !ep.RetireAdvised {
		t.Fatalf("retirement not advised with 1 budget left and cheapest rung at cost 2: %s", ep)
	}
	if ep.CostSpent != repair.CostRemap {
		t.Fatalf("CostSpent %d, want %d", ep.CostSpent, repair.CostRemap)
	}
}

func TestLadderAdvisesRetirementWhenNothingApplies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	rt, net := testRuntime(t, cfg)
	// a commissioning-shaped diagnosis in the field: no rung applies
	sl := &scriptedLadder{diag: repair.Diagnosis{Commissioning: true}, fixedBy: ""}

	ep := rt.SuperviseBudget(ladderInfer(net, sl), sl, 10)
	if !ep.GaveUp || !ep.RetireAdvised {
		t.Fatalf("no-applicable-strategy episode must give up and advise retirement: %s", ep)
	}
	if len(ep.Attempts) != 0 || ep.CostSpent != 0 {
		t.Fatalf("no rung applies but attempts=%d cost=%d", len(ep.Attempts), ep.CostSpent)
	}
}

func TestLadderChargesCostOnApplyError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	rt, net := testRuntime(t, cfg)
	sl := &scriptedLadder{
		diag:    repair.Diagnosis{Drifted: 1},
		fixedBy: "retrain",
		failing: map[string]bool{"scrub": true},
	}

	ep := rt.SuperviseBudget(ladderInfer(net, sl), sl, 10)
	if !ep.Recovered {
		t.Fatalf("episode did not recover past the failing rung: %s", ep)
	}
	if ep.Attempts[0].ApplyErr == nil || !repair.IsTyped(ep.Attempts[0].ApplyErr) {
		t.Fatalf("failing rung's typed error not recorded: %+v", ep.Attempts[0])
	}
	// hardware wear is charged even when the actuator errors
	if ep.CostSpent != repair.CostScrub+repair.CostRetrain {
		t.Fatalf("CostSpent %d, want %d", ep.CostSpent, repair.CostScrub+repair.CostRetrain)
	}
}

func TestLadderAttemptsCappedByMaxRepairAttempts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	cfg.MaxRepairAttempts = 1
	rt, net := testRuntime(t, cfg)
	sl := &scriptedLadder{diag: repair.Diagnosis{Drifted: 1, Stuck: 1}, fixedBy: ""}

	ep := rt.SuperviseBudget(ladderInfer(net, sl), sl, 100)
	if len(ep.Attempts) != 1 {
		t.Fatalf("attempts %d, want 1 (MaxRepairAttempts)", len(ep.Attempts))
	}
}

func TestLadderCanceledCtxCondemnsNothing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	rt, net := testRuntime(t, cfg)
	sl := &scriptedLadder{diag: repair.Diagnosis{Drifted: 1}, fixedBy: "scrub"}
	rt.Check(ladderInfer(net, sl))
	if rt.Confirmed() < monitor.Degraded {
		t.Fatalf("setup: confirmed %s", rt.Confirmed())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ep := rt.SuperviseBudgetCtx(ctx, ladderInfer(net, sl), sl, 10)
	if len(sl.applied) != 0 {
		t.Fatalf("canceled episode still applied rungs: %v", sl.applied)
	}
	if ep.GaveUp || ep.RetireAdvised {
		t.Fatalf("drain-time cancellation condemned the device: %s", ep)
	}
}
