// Supervised repair: the closed loop the paper motivates, hardened. A
// confirmed degradation plans the cheapest adequate repair (repair.PlanFor),
// applies it, then *verifies* recovery with fresh concurrent-test rounds.
// Verification failure escalates to the next costlier mechanism
// (reprogram → retrain → replace); exhausting the budget gives up gracefully
// with a hardware-service recommendation instead of looping forever or
// declaring victory open-loop.
package health

import (
	"context"
	"fmt"
	"strings"

	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/reram"
	"reramtest/internal/tensor"
)

// Repairer executes repair actions against the physical accelerator. Apply
// returns a non-nil network when the repair changed the deployed reference
// weights (retraining, module replacement) — the runtime then recommissions
// the monitor against it so golden outputs track the model actually on the
// device.
type Repairer interface {
	Apply(action repair.Action) (newRef *nn.Network, err error)
}

// RepairerFunc adapts a function to the Repairer interface.
type RepairerFunc func(action repair.Action) (*nn.Network, error)

// Apply implements Repairer.
func (f RepairerFunc) Apply(a repair.Action) (*nn.Network, error) { return f(a) }

// Attempt records one (apply, verify) cycle of a repair episode.
type Attempt struct {
	Action         repair.Action
	Strategy       string  // strategy name on the ladder path; "" on the action path
	Cost           int     // budget units charged (1 on the action path)
	ApplyErr       error   // the action itself failed (episode escalates)
	Verified       bool    // all verification rounds came back Healthy
	VerifyDist     float64 // worst AllDist seen across verification rounds
	Recommissioned bool    // the monitor's golden reference was recaptured
	// Measured is the hardware spend the apply actually charged to the
	// device's cost counter (ClassRepair delta across the application) —
	// the measured figure next to the ladder's sticker Cost. Zero when no
	// counter is attached (SetCostCounter) or the repair ran off-meter.
	Measured reram.Cost
}

// String renders the attempt on one line.
func (a Attempt) String() string {
	label := a.Action.String()
	if a.Strategy != "" {
		label = a.Strategy
	}
	if a.ApplyErr != nil {
		return fmt.Sprintf("%s: apply failed: %v", label, a.ApplyErr)
	}
	verdict := "FAILED verification"
	if a.Verified {
		verdict = "verified"
	}
	recom := ""
	if a.Recommissioned {
		recom = ", recommissioned"
	}
	return fmt.Sprintf("%s: %s (worst verify dist %.4f%s)", label, verdict, a.VerifyDist, recom)
}

// Episode is the outcome of one Supervise call.
type Episode struct {
	// Trigger is the monitoring round that opened the episode.
	Trigger Round
	// Attempts lists the repair cycles run, in escalation order (empty when
	// the trigger round was healthy).
	Attempts []Attempt
	// Recovered reports that some attempt verified clean.
	Recovered bool
	// GaveUp reports that the budget was exhausted without verification;
	// the confirmed status stays elevated and Recommendation names the
	// hardware-service escalation.
	GaveUp bool
	// Recommendation is the standing advice after the episode.
	Recommendation string
	// Final is the runtime's confirmed status after the episode.
	Final monitor.Status
	// CostSpent is the budget charge for this episode: the sum of strategy
	// Cost() on the ladder path, or one unit per attempt on the action path.
	CostSpent int
	// Measured is the summed measured hardware spend of the episode's repair
	// applications (see Attempt.Measured).
	Measured reram.Cost
	// RetireAdvised reports that no applicable strategy fits the remaining
	// budget (or nothing is applicable at all): spending more rounds on this
	// device cannot help, so the fleet should retire it rather than wait for
	// the budget to bleed to zero.
	RetireAdvised bool
}

// Repaired reports whether any repair work ran this episode.
func (e Episode) Repaired() bool { return len(e.Attempts) > 0 }

// String renders the episode for logs.
func (e Episode) String() string {
	if !e.Repaired() {
		return fmt.Sprintf("episode: %s, no repair", e.Final)
	}
	parts := make([]string, len(e.Attempts))
	for i, a := range e.Attempts {
		parts[i] = a.String()
	}
	verdict := "RECOVERED"
	if !e.Recovered {
		verdict = "GAVE UP"
	}
	return fmt.Sprintf("episode: trigger=%s attempts=[%s] %s → %s",
		e.Trigger.Status(), strings.Join(parts, "; "), verdict, e.Recommendation)
}

// Supervise runs one hardened monitoring round and, when the debounced
// status confirms damage (≥ Degraded), drives the detect→repair→verify loop
// until the accelerator verifies clean, the escalation ladder tops out, or
// the attempt budget runs dry. It never panics.
//
// accel is typically batch-first: monitor.NetworkInfer and the campaign
// plants hand back engine-backed Infers (internal/engine) whose one call per
// round runs the whole pattern set through preallocated workspaces,
// bit-identical to a per-sample forward — so the debounce thresholds and
// verification distances behave exactly as they would on the serial path.
func (rt *Runtime) Supervise(accel monitor.Infer, rep Repairer) Episode {
	return rt.SuperviseBudget(accel, rep, rt.cfg.MaxRepairAttempts)
}

// SuperviseCtx is Supervise with a cancellation context: see
// SuperviseBudgetCtx for the abort semantics.
func (rt *Runtime) SuperviseCtx(ctx context.Context, accel monitor.Infer, rep Repairer) Episode {
	return rt.SuperviseBudgetCtx(ctx, accel, rep, rt.cfg.MaxRepairAttempts)
}

// SuperviseBudget is Supervise with an explicit cap on this episode's
// (apply, verify) cycles, for callers that account repair spend across
// episodes — the fleet supervisor grants each episode
// min(MaxRepairAttempts, lifetime budget remaining). With budget ≤ 0 no
// repair is attempted: a confirmed-damaged round then reports GaveUp
// immediately, which is the fleet's cue to retire the device to hardware
// service.
func (rt *Runtime) SuperviseBudget(accel monitor.Infer, rep Repairer, budget int) Episode {
	return rt.SuperviseBudgetCtx(context.Background(), accel, rep, budget)
}

// SuperviseBudgetCtx is SuperviseBudget with a cancellation context. A ctx
// that expires aborts retry/backoff sleeps promptly (see CheckCtx) and stops
// the escalation ladder between attempts: no new repair cycle starts once
// ctx is done, so a shutting-down supervisor drains in bounded time instead
// of finishing a full escalate-and-verify schedule nobody is waiting for.
// An attempt already applying or verifying runs to completion — repairs are
// transactions, and tearing one down halfway would leave the hardware in a
// state the journal cannot describe.
func (rt *Runtime) SuperviseBudgetCtx(ctx context.Context, accel monitor.Infer, rep Repairer, budget int) Episode {
	round := rt.CheckCtx(ctx, accel)
	ep := Episode{Trigger: round, Final: rt.confirmed, Recommendation: "none"}
	if round.Confirmed < monitor.Degraded || rep == nil {
		return ep
	}

	action := repair.PlanFor(round.Confirmed)
	if action == repair.NoAction {
		return ep
	}
	if budget <= 0 {
		ep.GaveUp = true
		ep.RetireAdvised = true
		ep.Recommendation = "hardware service: repair budget exhausted"
		return ep
	}
	// a repairer that exposes a strategy ladder takes the cost-accounted
	// path: budget is in cost units there (NOT clamped to MaxRepairAttempts,
	// which caps attempts separately)
	if sr, ok := rep.(StrategyRepairer); ok {
		if strats := sr.Strategies(); len(strats) > 0 {
			return rt.superviseLadder(ctx, accel, sr, strats, budget, ep)
		}
	}
	if budget > rt.cfg.MaxRepairAttempts {
		budget = rt.cfg.MaxRepairAttempts
	}
	for len(ep.Attempts) < budget {
		if ctx.Err() != nil {
			break
		}
		att := Attempt{Action: action, Cost: 1}
		var newRef *nn.Network
		var err error
		rt.meterRepair(&att, func() { newRef, err = rep.Apply(action) })
		if err != nil {
			att.ApplyErr = err
		} else {
			if newRef != nil {
				rt.mon.Recommission(newRef)
				att.Recommissioned = true
			}
			att.Verified, att.VerifyDist = rt.verify(ctx, accel)
		}
		ep.Attempts = append(ep.Attempts, att)
		ep.Measured.Add(att.Measured)
		if att.Verified {
			// verification rounds are authoritative evidence of recovery;
			// bypass the de-escalation delay
			rt.forceConfirmed(monitor.Healthy)
			ep.Recovered = true
			ep.Recommendation = "none"
			break
		}
		next, ok := escalate(action)
		if !ok {
			// the ladder is exhausted: even Replace did not verify
			break
		}
		action = next
	}
	ep.Final = rt.confirmed
	ep.CostSpent = len(ep.Attempts)
	if !ep.Recovered {
		if ctx.Err() != nil {
			// the caller canceled, the hardware was not exonerated or
			// condemned — the episode ends without a service verdict so a
			// drain-time cancellation cannot retire a repairable device
			ep.Recommendation = fmt.Sprintf("episode aborted: %v", ctx.Err())
		} else {
			ep.GaveUp = true
			ep.Recommendation = "hardware service: spare-array remapping or module replacement"
		}
	}
	return ep
}

// verify runs cfg.VerifyRounds guarded raw checks and succeeds only if every
// one of them reads back finite, well-shaped and Healthy. The checks go
// through the wrapped monitor (so they appear in its history) but bypass the
// hysteresis tracker: they are part of the repair transaction, and success
// resets the tracker wholesale via forceConfirmed.
func (rt *Runtime) verify(ctx context.Context, accel monitor.Infer) (ok bool, worstDist float64) {
	// verification readouts are concurrent-test work, not serving
	prevClass := rt.counter.SetClass(reram.ClassMonitor)
	defer rt.counter.SetClass(prevClass)
	ok = true
	for v := 0; v < rt.cfg.VerifyRounds; v++ {
		probs, rejected, err := rt.readout(ctx, accel)
		rt.rejects += rejected
		if err != nil {
			return false, worstDist
		}
		repRaw := rt.mon.Check(func(*tensor.Tensor) *tensor.Tensor { return probs })
		if repRaw.AllDist > worstDist {
			worstDist = repRaw.AllDist
		}
		if repRaw.Status != monitor.Healthy {
			ok = false
		}
	}
	return ok, worstDist
}

// meterRepair runs one repair application with the device counter switched
// to ClassRepair and records the measured spend delta into att.Measured.
// With no counter attached both snapshots are zero and the class switch is a
// no-op.
func (rt *Runtime) meterRepair(att *Attempt, apply func()) {
	prevClass := rt.counter.SetClass(reram.ClassRepair)
	before := rt.counter.Snapshot().Repair
	apply()
	att.Measured = rt.counter.Snapshot().Repair.Minus(before)
	rt.counter.SetClass(prevClass)
}

// escalate returns the next costlier repair mechanism.
func escalate(a repair.Action) (repair.Action, bool) {
	switch a {
	case repair.NoAction:
		return repair.Reprogram, true
	case repair.Reprogram:
		return repair.Retrain, true
	case repair.Retrain:
		return repair.Replace, true
	default:
		return repair.Replace, false
	}
}
