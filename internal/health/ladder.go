// Strategy-ladder supervision: instead of the fixed action escalation
// (reprogram → retrain → replace), a StrategyRepairer exposes an ordered
// suite of repair.Strategy rungs (scrub → remap → retrain → …) with
// per-strategy costs. The supervise loop walks the ladder from the cheapest
// applicable rung, charges each application against the episode's cost
// budget, verifies recovery after each rung, and advises retirement when the
// cheapest strategy still applicable no longer fits the remaining budget —
// so the fleet retires a device the moment further spend cannot help, not
// after the budget bleeds to zero one failed retrain at a time.
package health

import (
	"context"
	"fmt"

	"reramtest/internal/monitor"
	"reramtest/internal/repair"
)

// StrategyRepairer is a Repairer that additionally exposes a cost-ordered
// repair-strategy ladder. When a repairer implements this interface (and
// Strategies returns a non-empty suite), SuperviseBudgetCtx takes the
// cost-accounted ladder path: budget is interpreted in strategy cost units
// rather than attempt counts, and each episode walks the ladder cheapest
// rung first.
type StrategyRepairer interface {
	Repairer
	// Strategies returns the ladder in escalation order (cheapest first).
	// The slice must be stable across calls within an episode.
	Strategies() []repair.Strategy
	// Diagnose inspects the hardware and summarises what is wrong, given the
	// currently confirmed status; strategies gate their Applicable on it.
	Diagnose(confirmed monitor.Status) repair.Diagnosis
}

// superviseLadder drives one repair episode over a strategy ladder. budget
// is in cost units; the number of (apply, verify) cycles is additionally
// capped by cfg.MaxRepairAttempts so a pathological suite of zero-cost
// strategies cannot loop unboundedly. Each rung is tried at most once per
// episode: a rung that fails verification escalates to the next applicable
// rung above it.
func (rt *Runtime) superviseLadder(ctx context.Context, accel monitor.Infer, sr StrategyRepairer, strats []repair.Strategy, budget int, ep Episode) Episode {
	next := 0 // lowest rung still eligible this episode
	for len(ep.Attempts) < rt.cfg.MaxRepairAttempts {
		if ctx.Err() != nil {
			break
		}
		diag := sr.Diagnose(rt.confirmed)
		pick := -1
		for i := next; i < len(strats); i++ {
			if strats[i].Applicable(diag) {
				pick = i
				break
			}
		}
		if pick < 0 {
			// no rung at or above the current one applies; the post-loop
			// cheapest-applicable check decides whether to advise retirement
			break
		}
		s := strats[pick]
		if s.Cost() > budget-ep.CostSpent {
			// the cheapest eligible rung no longer fits this episode's
			// budget; stop before spending what we cannot afford
			break
		}
		att := Attempt{Strategy: s.Name(), Cost: s.Cost()}
		var rep repair.Report
		var err error
		rt.meterRepair(&att, func() { rep, err = s.Apply(ctx, diag) })
		// the cost is charged even when the application fails: the hardware
		// operation ran (or partially ran) and the fleet's lifetime budget
		// models wear, not success
		ep.CostSpent += s.Cost()
		att.Action = rep.Action
		if err != nil {
			att.ApplyErr = err
		} else {
			if rep.NewRef != nil {
				rt.mon.Recommission(rep.NewRef)
				att.Recommissioned = true
			}
			att.Verified, att.VerifyDist = rt.verify(ctx, accel)
		}
		ep.Attempts = append(ep.Attempts, att)
		ep.Measured.Add(att.Measured)
		if att.Verified {
			rt.forceConfirmed(monitor.Healthy)
			ep.Recovered = true
			ep.Recommendation = "none"
			break
		}
		next = pick + 1
	}
	ep.Final = rt.confirmed
	if !ep.Recovered {
		if ctx.Err() != nil {
			ep.Recommendation = fmt.Sprintf("episode aborted: %v", ctx.Err())
		} else {
			ep.GaveUp = true
			// retire only when the cheapest strategy still applicable — a
			// future episode restarts at rung 0 — exceeds what is left, or
			// nothing applies at all: keeping the device costs rounds and
			// can never produce a repair
			diag := sr.Diagnose(rt.confirmed)
			cheapest := -1
			for _, s := range strats {
				if s.Applicable(diag) && (cheapest < 0 || s.Cost() < cheapest) {
					cheapest = s.Cost()
				}
			}
			if cheapest < 0 {
				ep.RetireAdvised = true
				ep.Recommendation = "hardware service: no applicable repair strategy"
			} else if cheapest > budget-ep.CostSpent {
				ep.RetireAdvised = true
				ep.Recommendation = "hardware service: cheapest applicable strategy exceeds remaining budget"
			} else {
				ep.Recommendation = "hardware service: ladder exhausted without verification"
			}
		}
	}
	return ep
}
