// Durable runtime state. A deployed supervisor journals every transition of
// this state (see internal/journal and internal/fleet); after a crash the
// journal is replayed into RestoreState and the runtime continues exactly
// where the last durable round left it — same confirmed status, same
// hysteresis streaks, same counters. The monitor's report history and the
// round ring buffer are deliberately NOT part of the durable state: they are
// diagnostics, rebuildable from logs, and excluding them keeps journal
// records small enough to write every round.
package health

import (
	"fmt"

	"reramtest/internal/monitor"
	"reramtest/internal/reram"
)

// State is the durable snapshot of a Runtime's decision state: everything
// the hysteresis tracker and the fleet's accounting need to survive a
// supervisor crash.
type State struct {
	// Seq is the number of rounds the runtime has run.
	Seq int `json:"seq"`
	// Confirmed is the debounced status.
	Confirmed monitor.Status `json:"confirmed"`
	// UpStreak/UpMin and DownStreak/DownMax are the directional hysteresis
	// streaks (see Runtime).
	UpStreak   int            `json:"upStreak"`
	UpMin      monitor.Status `json:"upMin"`
	DownStreak int            `json:"downStreak"`
	DownMax    monitor.Status `json:"downMax"`
	// Flips, Rejects and Panics are the lifetime robustness counters.
	Flips   int `json:"flips"`
	Rejects int `json:"rejects"`
	Panics  int `json:"panics"`
}

// Validate rejects snapshots no runtime could have produced — a journal that
// replays into an invalid State was corrupted above the framing layer and
// must not be trusted.
func (s State) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{{"Seq", s.Seq}, {"UpStreak", s.UpStreak}, {"DownStreak", s.DownStreak},
		{"Flips", s.Flips}, {"Rejects", s.Rejects}, {"Panics", s.Panics}} {
		if f.v < 0 {
			return fmt.Errorf("health: state %s must be ≥ 0, got %d", f.name, f.v)
		}
	}
	for _, f := range []struct {
		name string
		v    monitor.Status
	}{{"Confirmed", s.Confirmed}, {"UpMin", s.UpMin}, {"DownMax", s.DownMax}} {
		if f.v < monitor.Healthy || f.v > monitor.Critical {
			return fmt.Errorf("health: state %s out of range: %d", f.name, int(f.v))
		}
	}
	if s.Panics > s.Rejects {
		return fmt.Errorf("health: state counts %d panics but only %d rejects", s.Panics, s.Rejects)
	}
	return nil
}

// ExportState snapshots the runtime's durable state.
func (rt *Runtime) ExportState() State {
	return State{
		Seq:       rt.seq,
		Confirmed: rt.confirmed,
		UpStreak:  rt.upStreak, UpMin: rt.upMin,
		DownStreak: rt.downStreak, DownMax: rt.downMax,
		Flips: rt.flips, Rejects: rt.rejects, Panics: rt.panics,
	}
}

// RestoreState overwrites the runtime's decision state with a snapshot
// previously produced by ExportState (typically replayed from a journal).
// The round history is not restored — it restarts empty, which is why Seq
// keeps counting from the snapshot rather than from the history length.
func (rt *Runtime) RestoreState(s State) error {
	if err := s.Validate(); err != nil {
		return err
	}
	rt.seq = s.Seq
	rt.confirmed = s.Confirmed
	rt.upStreak, rt.upMin = s.UpStreak, s.UpMin
	rt.downStreak, rt.downMax = s.DownStreak, s.DownMax
	rt.flips, rt.rejects, rt.panics = s.Flips, s.Rejects, s.Panics
	return nil
}

// Probe performs one single-attempt validated readout: no retries, no
// backoff, no hysteresis update, no history entry. It is the cheap liveness
// check a circuit breaker uses while a device is quarantined — the whole
// point of the breaker is to stop burning the full retry budget on a sensor
// that has been failing for rounds on end.
func (rt *Runtime) Probe(accel monitor.Infer) error {
	prevClass := rt.counter.SetClass(reram.ClassMonitor)
	defer rt.counter.SetClass(prevClass)
	probs, err := rt.safeInfer(accel)
	if err == nil {
		err = rt.validate(probs)
	}
	if err != nil {
		rt.rejects++
	}
	return err
}
