package health

import (
	"testing"
	"time"

	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// TestStateRoundTrip drives a runtime into a non-trivial hysteresis state,
// exports it into a fresh runtime over an identically commissioned monitor,
// and requires the two to agree on every subsequent confirmed status —
// the single-runtime version of crash/restart equivalence.
func TestStateRoundTrip(t *testing.T) {
	rt, net := testRuntime(t, DefaultConfig())

	healthy := monitor.NetworkInfer(net)
	bad := shiftInfer(net, 0.2)
	// one degraded round: an in-flight escalation streak, not yet confirmed
	rt.Check(healthy)
	rt.Check(bad)

	snap := rt.ExportState()
	if snap.Seq != 2 || snap.UpStreak != 1 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}

	// "restart": a second runtime commissioned exactly like the first
	rt2, _ := testRuntime(t, DefaultConfig())
	if rt.Monitor().Fingerprint() != rt2.Monitor().Fingerprint() {
		t.Fatal("identically commissioned monitors disagree on Fingerprint")
	}
	if err := rt2.RestoreState(snap); err != nil {
		t.Fatal(err)
	}

	for i, infer := range []monitor.Infer{bad, bad, healthy, healthy, healthy, healthy} {
		a, b := rt.Check(infer), rt2.Check(infer)
		if a.Confirmed != b.Confirmed || a.Changed != b.Changed || a.Seq != b.Seq {
			t.Fatalf("round %d diverged after restore: %+v vs %+v", i, a, b)
		}
	}
	if rt.ExportState() != rt2.ExportState() {
		t.Fatalf("final states diverged:\n%+v\n%+v", rt.ExportState(), rt2.ExportState())
	}
}

func TestFingerprintDistinguishesCommissions(t *testing.T) {
	rt, _ := testRuntime(t, DefaultConfig())
	other := models.MLP(rng.New(77), 16, []int{12}, 5)
	patterns := &testgen.PatternSet{
		Name: "t", Method: "plain",
		X:      tensor.RandUniform(rng.New(2), 0, 1, 8, 16),
		Labels: make([]int, 8),
	}
	mon2 := monitor.MustNew(other, patterns, nil, monitor.DefaultConfig())
	if rt.Monitor().Fingerprint() == mon2.Fingerprint() {
		t.Fatal("different reference models hashed to the same fingerprint")
	}
}

func TestRestoreRejectsInvalidState(t *testing.T) {
	rt, _ := testRuntime(t, DefaultConfig())
	bad := []State{
		{Seq: -1},
		{Confirmed: monitor.Status(9)},
		{UpStreak: -2},
		{Rejects: 1, Panics: 2},
		{DownMax: monitor.Status(-1)},
	}
	for i, s := range bad {
		if err := rt.RestoreState(s); err == nil {
			t.Fatalf("invalid state %d accepted: %+v", i, s)
		}
	}
	if rt.Confirmed() != monitor.Healthy || rt.ExportState().Seq != 0 {
		t.Fatal("failed restore mutated the runtime")
	}
}

// TestProbe: a probe is one attempt — no retries, no hysteresis movement —
// and rejected probes are counted.
func TestProbe(t *testing.T) {
	rt, net := testRuntime(t, DefaultConfig())
	calls := 0
	poisoned := func(*tensor.Tensor) *tensor.Tensor { calls++; panic("probe: dead sensor") }
	if err := rt.Probe(poisoned); err == nil {
		t.Fatal("probe of a panicking sensor succeeded")
	}
	if calls != 1 {
		t.Fatalf("probe made %d attempts, want exactly 1 (no retries)", calls)
	}
	if rej, pan := rt.RejectedReadouts(); rej != 1 || pan != 1 {
		t.Fatalf("probe accounting: rejects=%d panics=%d", rej, pan)
	}
	if rt.ExportState().Seq != 0 {
		t.Fatal("probe advanced the round sequence")
	}
	if err := rt.Probe(monitor.NetworkInfer(net)); err != nil {
		t.Fatalf("healthy probe failed: %v", err)
	}
	if rt.Confirmed() != monitor.Healthy {
		t.Fatal("probe moved the confirmed status")
	}
}

// TestSuperviseBudgetZero: with no budget left, a confirmed-damaged round
// gives up immediately instead of attempting repairs.
func TestSuperviseBudgetZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	rt, net := testRuntime(t, cfg)
	applied := 0
	rep := RepairerFunc(func(repair.Action) (*nn.Network, error) {
		applied++
		return nil, nil
	})
	ep := rt.SuperviseBudget(shiftInfer(net, 0.2), rep, 0)
	if ep.Repaired() || applied != 0 {
		t.Fatalf("zero-budget episode ran repairs: attempts=%d applied=%d", len(ep.Attempts), applied)
	}
	if !ep.GaveUp {
		t.Fatal("zero-budget episode on confirmed damage did not give up")
	}
	// a positive budget below MaxRepairAttempts caps the episode
	ep = rt.SuperviseBudget(shiftInfer(net, 0.2), rep, 1)
	if len(ep.Attempts) > 1 {
		t.Fatalf("budget 1 episode ran %d attempts", len(ep.Attempts))
	}
}

func TestConfigValidateBackoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BackoffBase = 100 * time.Millisecond
	cfg.BackoffMax = 10 * time.Millisecond
	if err := cfg.Validate(); err == nil {
		t.Fatal("BackoffBase > BackoffMax accepted")
	}
}
