// Package health hardens the one-shot concurrent-test monitor into a
// runtime that can be trusted in the field. internal/monitor answers "what
// does this round's readout say"; this package answers "what should the
// system believe and do", surviving the failure modes a deployed monitor
// actually meets:
//
//   - read noise: a single noisy readout must not flap the reported status
//     HEALTHY↔DEGRADED. The Runtime debounces with hysteresis — a new level
//     is confirmed only after K consecutive rounds of agreeing evidence
//     (escalation and de-escalation each have their own K).
//   - broken readouts: an Infer that returns NaN/Inf confidences, a
//     wrong-shape tensor, or panics outright is rejected, retried with
//     bounded exponential backoff, and counted. A poisoned readout never
//     crashes the runtime and never yields a Healthy verdict.
//   - unbounded state: the per-round history is a bounded ring buffer.
//   - open-loop repair: see supervise.go — repairs are verified, escalated
//     on verification failure, and abandoned gracefully when the retry
//     budget is exhausted.
package health

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"reramtest/internal/monitor"
	"reramtest/internal/reram"
	"reramtest/internal/tensor"
)

// Config tunes the hardened runtime.
type Config struct {
	// EscalateAfter is the number of consecutive rounds the raw status must
	// sit at a new higher level before the confirmed status escalates.
	EscalateAfter int
	// DeescalateAfter is the analogous count for relaxing to a lower level.
	// De-escalation is typically slower than escalation: missing real damage
	// costs more than lingering caution.
	DeescalateAfter int
	// MaxReadRetries is how many times a rejected readout (NaN/Inf, wrong
	// shape, panic) is retried within one round before the round is declared
	// a sensor fault.
	MaxReadRetries int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it up to BackoffMax.
	BackoffBase, BackoffMax time.Duration
	// Sleep is the backoff clock; nil means time.Sleep. Tests and simulated
	// campaigns inject a no-op.
	Sleep func(time.Duration)
	// MaxHistory bounds the retained Round ring buffer (0 → 256).
	MaxHistory int
	// MaxRepairAttempts is the supervised repair loop's escalation budget:
	// how many (apply, verify) cycles may run for one fault episode before
	// the runtime gives up and recommends hardware service.
	MaxRepairAttempts int
	// VerifyRounds is how many consecutive clean raw checks a repair must
	// pass before it is accepted (>1 makes verification itself noise-proof).
	VerifyRounds int
}

// DefaultConfig returns field-reasonable hardening parameters: escalate on 2
// agreeing rounds, relax only after 3, retry a bad readout 3 times, keep 256
// rounds of history, and give a repair episode 3 escalation attempts with
// 2-round verification.
func DefaultConfig() Config {
	return Config{
		EscalateAfter:     2,
		DeescalateAfter:   3,
		MaxReadRetries:    3,
		BackoffBase:       2 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		MaxHistory:        256,
		MaxRepairAttempts: 3,
		VerifyRounds:      2,
	}
}

// Validate rejects configurations the runtime cannot operate under.
func (c Config) Validate() error {
	if c.EscalateAfter < 1 {
		return fmt.Errorf("health: EscalateAfter must be ≥ 1, got %d", c.EscalateAfter)
	}
	if c.DeescalateAfter < 1 {
		return fmt.Errorf("health: DeescalateAfter must be ≥ 1, got %d", c.DeescalateAfter)
	}
	if c.MaxReadRetries < 0 {
		return fmt.Errorf("health: MaxReadRetries must be ≥ 0, got %d", c.MaxReadRetries)
	}
	if c.BackoffBase < 0 || c.BackoffMax < 0 {
		return fmt.Errorf("health: backoff durations must be ≥ 0")
	}
	if c.BackoffBase > c.BackoffMax {
		return fmt.Errorf("health: BackoffBase %v exceeds BackoffMax %v", c.BackoffBase, c.BackoffMax)
	}
	if c.MaxRepairAttempts < 1 {
		return fmt.Errorf("health: MaxRepairAttempts must be ≥ 1, got %d", c.MaxRepairAttempts)
	}
	if c.VerifyRounds < 1 {
		return fmt.Errorf("health: VerifyRounds must be ≥ 1, got %d", c.VerifyRounds)
	}
	return nil
}

// Round is the runtime's per-check record: the raw monitor evidence plus the
// debounced verdict.
type Round struct {
	// Seq numbers runtime rounds from 1.
	Seq int
	// Report is the raw monitor report (zero-valued when ReadoutOK=false:
	// every readout attempt this round was rejected).
	Report monitor.Report
	// Raw is the undebounced evidence this round fed to the hysteresis
	// tracker. For a sensor-fault round it is the synthetic SensorFaultStatus.
	Raw monitor.Status
	// Confirmed is the debounced status after this round.
	Confirmed monitor.Status
	// Changed reports whether Confirmed moved this round.
	Changed bool
	// ReadoutOK is false when no readout attempt survived validation.
	ReadoutOK bool
	// Rejected counts readout attempts discarded this round (NaN/Inf, shape
	// mismatch, panic).
	Rejected int
	// SensorFault marks a round whose every readout was rejected.
	SensorFault bool
	// Err describes the last rejection when SensorFault is set.
	Err error
}

// Status is the health level the runtime stands behind for this round. It
// is the debounced Confirmed level, floored at Degraded while the sensor
// itself is faulted — an unobservable accelerator is never "Healthy".
func (r Round) Status() monitor.Status {
	s := r.Confirmed
	if r.SensorFault && s < monitor.Degraded {
		s = monitor.Degraded
	}
	return s
}

// String renders the round on one line.
func (r Round) String() string {
	if !r.ReadoutOK {
		return fmt.Sprintf("round %d: SENSOR FAULT (%d readouts rejected, last: %v) confirmed=%s",
			r.Seq, r.Rejected, r.Err, r.Confirmed)
	}
	flap := ""
	if r.Changed {
		flap = " [confirmed changed]"
	}
	return fmt.Sprintf("round %d: raw=%s confirmed=%s allDist=%.4f rejected=%d%s",
		r.Seq, r.Raw, r.Confirmed, r.Report.AllDist, r.Rejected, flap)
}

// SensorFaultStatus is the severity a fully failed readout round feeds to
// the hysteresis tracker: the accelerator is unobservable, which warrants
// escalating toward repair if it persists, without jumping straight to
// Critical on one glitch.
const SensorFaultStatus = monitor.Impaired

// Runtime wraps a commissioned monitor with status hysteresis, readout
// validation/retry and a bounded history. It is not safe for concurrent use.
type Runtime struct {
	mon *monitor.Monitor
	cfg Config

	confirmed monitor.Status
	// directional hysteresis state: consecutive rounds of above-confirmed
	// (resp. below-confirmed) evidence and the most conservative level seen
	// during each streak. Tracking a level range instead of one candidate
	// means raw evidence oscillating between, say, Impaired and Critical
	// still escalates (to Impaired — every round agreed it is at least that
	// bad) instead of resetting the streak forever.
	upStreak, downStreak int
	upMin, downMax       monitor.Status

	rounds  []Round // ring buffer
	start   int
	seq     int
	flips   int // confirmed-status changes since commissioning
	rejects int // total rejected readouts
	panics  int // rejected readouts caused by a panicking Infer

	// counter, when set, is the device's cost counter: the runtime switches
	// it to ClassMonitor around test-pattern readouts and ClassRepair around
	// repair applications, so the hardware work those trigger lands in the
	// right attribution class. nil disables attribution (charges keep the
	// caller's class).
	counter *reram.Counter
}

// New wraps mon in a hardened runtime. mon must be non-nil and already
// commissioned.
func New(mon *monitor.Monitor, cfg Config) (*Runtime, error) {
	if mon == nil {
		return nil, errors.New("health: nil monitor")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxHistory <= 0 {
		cfg.MaxHistory = 256
	}
	return &Runtime{mon: mon, cfg: cfg, confirmed: monitor.Healthy}, nil
}

// Monitor exposes the wrapped monitor (read-mostly: trend, history,
// calibration).
func (rt *Runtime) Monitor() *monitor.Monitor { return rt.mon }

// SetCostCounter attaches the device's cost counter so the runtime can
// attribute readout work to ClassMonitor and repair work to ClassRepair.
// Pass the same counter the device's engines charge; nil detaches.
func (rt *Runtime) SetCostCounter(c *reram.Counter) { rt.counter = c }

// CostCounter returns the attached cost counter (nil when unmetered).
func (rt *Runtime) CostCounter() *reram.Counter { return rt.counter }

// Confirmed returns the current debounced status.
func (rt *Runtime) Confirmed() monitor.Status { return rt.confirmed }

// StatusFlips returns how many times the confirmed status has changed since
// commissioning — the flap count a debounce exists to minimise.
func (rt *Runtime) StatusFlips() int { return rt.flips }

// RejectedReadouts returns the total number of discarded readout attempts
// and how many of those were panics recovered from the Infer callback.
func (rt *Runtime) RejectedReadouts() (rejected, panics int) { return rt.rejects, rt.panics }

// History returns the retained rounds in chronological order.
func (rt *Runtime) History() []Round {
	out := make([]Round, 0, len(rt.rounds))
	out = append(out, rt.rounds[rt.start:]...)
	out = append(out, rt.rounds[:rt.start]...)
	return out
}

// Check runs one hardened monitoring round: guarded readout (with retries),
// raw classification by the wrapped monitor, then hysteresis update. It
// never panics, whatever accel does.
func (rt *Runtime) Check(accel monitor.Infer) Round {
	return rt.CheckCtx(context.Background(), accel)
}

// CheckCtx is Check with a cancellation context: a ctx that expires or is
// canceled aborts the retry/backoff schedule promptly — the remaining
// attempts (and their sleeps) are skipped and the round is recorded as a
// sensor fault whose Err wraps ctx.Err(). Cancellation never interrupts an
// attempt already executing (Infer is synchronous); it cuts the waits
// between attempts, which is where a shutting-down supervisor actually
// spends its time.
func (rt *Runtime) CheckCtx(ctx context.Context, accel monitor.Infer) Round {
	rt.seq++
	round := Round{Seq: rt.seq}

	// the readout drives the device with test patterns: monitor spend
	prevClass := rt.counter.SetClass(reram.ClassMonitor)
	probs, rejected, err := rt.readout(ctx, accel)
	rt.counter.SetClass(prevClass)
	round.Rejected = rejected
	rt.rejects += rejected
	if err != nil {
		round.ReadoutOK = false
		round.SensorFault = true
		round.Err = err
		round.Raw = SensorFaultStatus
	} else {
		round.ReadoutOK = true
		round.Report = rt.mon.Check(func(*tensor.Tensor) *tensor.Tensor { return probs })
		round.Raw = round.Report.Status
	}

	round.Confirmed, round.Changed = rt.debounce(round.Raw)
	rt.record(round)
	return round
}

// debounce feeds one round of raw evidence into the hysteresis tracker and
// returns the (possibly moved) confirmed status.
func (rt *Runtime) debounce(raw monitor.Status) (monitor.Status, bool) {
	switch {
	case raw == rt.confirmed:
		// agreeing evidence: both pending streaks collapse
		rt.upStreak, rt.downStreak = 0, 0
	case raw > rt.confirmed:
		if rt.upStreak == 0 || raw < rt.upMin {
			rt.upMin = raw
		}
		rt.upStreak++
		rt.downStreak = 0
		if rt.upStreak >= rt.cfg.EscalateAfter {
			rt.confirmed = rt.upMin
			rt.upStreak, rt.downStreak = 0, 0
			rt.flips++
			return rt.confirmed, true
		}
	default: // raw < rt.confirmed
		if rt.downStreak == 0 || raw > rt.downMax {
			rt.downMax = raw
		}
		rt.downStreak++
		rt.upStreak = 0
		if rt.downStreak >= rt.cfg.DeescalateAfter {
			rt.confirmed = rt.downMax
			rt.upStreak, rt.downStreak = 0, 0
			rt.flips++
			return rt.confirmed, true
		}
	}
	return rt.confirmed, false
}

// forceConfirmed pins the debounced status (used after a verified repair:
// the verification rounds are authoritative, waiting DeescalateAfter more
// rounds would only delay the all-clear).
func (rt *Runtime) forceConfirmed(s monitor.Status) {
	if rt.confirmed != s {
		rt.flips++
	}
	rt.confirmed, rt.upStreak, rt.downStreak = s, 0, 0
}

// record appends the round to the bounded ring buffer.
func (rt *Runtime) record(r Round) {
	if len(rt.rounds) < rt.cfg.MaxHistory {
		rt.rounds = append(rt.rounds, r)
		return
	}
	rt.rounds[rt.start] = r
	rt.start = (rt.start + 1) % len(rt.rounds)
}

// readout obtains one validated confidence batch from accel, retrying
// rejected attempts with bounded exponential backoff. It returns the batch,
// the number of rejected attempts, and the last rejection when every attempt
// failed. A canceled ctx short-circuits the remaining schedule: the error
// then wraps ctx.Err() so callers can distinguish "sensor broken" from
// "caller gave up waiting".
func (rt *Runtime) readout(ctx context.Context, accel monitor.Infer) (probs *tensor.Tensor, rejected int, err error) {
	backoff := rt.cfg.BackoffBase
	for attempt := 0; attempt <= rt.cfg.MaxReadRetries; attempt++ {
		if attempt > 0 {
			if cerr := rt.sleepCtx(ctx, backoff); cerr != nil {
				return nil, rejected, fmt.Errorf("health: readout retries aborted after %d rejections (last: %v): %w", rejected, err, cerr)
			}
			backoff *= 2
			if backoff > rt.cfg.BackoffMax {
				backoff = rt.cfg.BackoffMax
			}
		}
		var p *tensor.Tensor
		p, err = rt.safeInfer(accel)
		if err == nil {
			err = rt.validate(p)
		}
		if err == nil {
			return p, rejected, nil
		}
		rejected++
	}
	return nil, rejected, err
}

// safeInfer calls accel under a panic recovery barrier.
func (rt *Runtime) safeInfer(accel monitor.Infer) (probs *tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			rt.panics++
			probs = nil
			err = fmt.Errorf("health: Infer panicked: %v", r)
		}
	}()
	return accel(rt.mon.Input()), nil
}

// validate rejects readouts the monitor must not score: nil or wrong-shape
// batches and any NaN/Inf confidence entry.
func (rt *Runtime) validate(probs *tensor.Tensor) error {
	if probs == nil {
		return errors.New("health: Infer returned nil")
	}
	m, n := rt.mon.PatternCount(), rt.mon.Classes()
	if probs.Rank() != 2 || probs.Dim(0) != m || probs.Dim(1) != n {
		return fmt.Errorf("health: readout shape %v, want (%d, %d)", probs.Shape(), m, n)
	}
	for _, v := range probs.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("health: readout contains non-finite confidence %v", v)
		}
	}
	return nil
}

// sleepCtx waits d on the configured clock, returning early (with ctx.Err())
// when ctx is canceled first. With an injected Sleep the cancellation check
// runs before the callback — simulated-time campaigns see the same prompt
// abort semantics without a real timer.
func (rt *Runtime) sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	if rt.cfg.Sleep != nil {
		rt.cfg.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
